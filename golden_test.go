// Golden determinism tests: the scheduler's virtual timings are part of
// the repository's contract — every calibration table and selection
// decision is derived from them — so they are pinned here to seed-era
// values, bit for bit. Any scheduler, simulator, or sweep-engine change
// that shifts these constants is a behavioural regression even if every
// other test still passes.
package mpicollperf

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/perturb"
)

// goldenProfile is Grisou restricted to a 16-node noisy cluster
// (NoiseAmplitude 0.03, NoiseSeed 1001 — the profile's own values).
func goldenProfile(t *testing.T) cluster.Profile {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// goldenBcast pins the exact MakeSpan (hex float: bit-identical, no
// rounding slop) and transfer count of one 1 MiB broadcast per algorithm,
// captured at the seed-era scheduler.
var goldenBcast = []struct {
	alg       coll.BcastAlgorithm
	makeSpan  float64
	transfers int64
}{
	{coll.BcastLinear, 0x1.c07afec14849cp-07, 15},
	{coll.BcastChain, 0x1.07d915ba9807p-09, 1920},
	{coll.BcastKChain, 0x1.fdd95d0b1454ap-09, 1920},
	{coll.BcastBinary, 0x1.1ec443cb22a98p-09, 1920},
	{coll.BcastSplitBinary, 0x1.3c3ff8a20aefap-09, 975},
	{coll.BcastBinomial, 0x1.fbe9c0d540dfap-09, 1920},
}

// goldenSweepMeans pins the adaptive-measurement means of the full
// six-algorithm grid at three sizes (same platform, Settings{0.95, 0.025,
// 3, 10, 1}), in grid order: sizes-major over {8 KiB, 128 KiB, 1 MiB}.
var goldenSweepMeans = []float64{
	0x1.42c88478723bap-13, 0x1.dd7372df1acc4p-11, 0x1.0ca02beebee9bp-12,
	0x1.fd5ab5dc9feabp-13, 0x1.fd5ab5dc9feabp-13, 0x1.fd4a96f15ffe3p-13,
	0x1.cac9f825bb175p-10, 0x1.110a367538c31p-10, 0x1.672b3c2e5cb68p-11,
	0x1.efbf45faeadb5p-12, 0x1.e5708b39e80fbp-12, 0x1.603c2d248cd85p-11,
	0x1.bfe4c1d59cf1bp-07, 0x1.07e28612a52a7p-09, 0x1.fdd38d2a5d4fdp-09,
	0x1.1edf870e95c49p-09, 0x1.3bc0bbba1c176p-09, 0x1.fc4bb21d923b8p-09,
}

// goldenPerturbed pins two canonical perturbed scenarios on the golden
// platform: one straggler node and one degraded link, the full
// six-algorithm grid at 128 KiB. Both specs are time-invariant, so the
// replay engine must reproduce them without falling back — the pins are
// the perturbation layer's determinism contract across both engines.
var goldenPerturbed = []struct {
	spec  string
	means []float64
}{
	{"straggler:node=3,cpu=1.5,nic=2", []float64{
		0x1.cac9f825bb175p-10, 0x1.32c4d6ecc3c2ep-10, 0x1.683fa54a90b39p-11,
		0x1.7010bb4ef14b3p-11, 0x1.48909256ef8d5p-11, 0x1.603c2d248cd85p-11,
	}},
	{"link:src=0,dst=5,lat=3,bw=4", []float64{
		0x1.0f884f9cfb81ep-09, 0x1.110a367538c31p-10, 0x1.219487b79113dp-10,
		0x1.efbf45faeadb5p-12, 0x1.e5708b39e80fbp-12, 0x1.603c2d248cd85p-11,
	}},
}

// TestGoldenPerturbedSweepDeterminism asserts that the two canonical
// perturbed runs reproduce their pinned means bit-identically on every
// engine and worker count. A forced replay engine is included: these
// specs are time-invariant, so the fallback path must not trigger.
func TestGoldenPerturbedSweepDeterminism(t *testing.T) {
	pr := goldenProfile(t)
	set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1}
	grid := experiment.BcastGrid(16, coll.BcastAlgorithms(), []int{131072}, pr.SegmentSize)
	for _, g := range goldenPerturbed {
		spec, err := perturb.Parse(g.spec)
		if err != nil {
			t.Fatal(err)
		}
		prp := pr.Perturbed(spec)
		for _, engine := range []experiment.Engine{experiment.EngineScheduler, experiment.EngineAuto, experiment.EngineReplay} {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/engine=%v/workers=%d", g.spec, engine, workers), func(t *testing.T) {
					set := set
					set.Engine = engine
					sw := experiment.Sweep{Profile: prp, Settings: set, Workers: workers}
					results, err := sw.Run(context.Background(), grid)
					if err != nil {
						t.Fatal(err)
					}
					for i, r := range results {
						if r.Meas.Mean != g.means[i] {
							t.Errorf("point %v: mean = %x, golden %x", r.Point, r.Meas.Mean, g.means[i])
						}
						if r.Meas.Fallback != experiment.FallbackNone {
							t.Errorf("point %v: unexpected fallback %q", r.Point, r.Meas.Fallback)
						}
					}
				})
			}
		}
	}
}

// TestGoldenBcastDeterminism asserts that MakeSpan and Transfers of every
// broadcast algorithm are bit-identical to the pinned seed-era values,
// under both a single OS thread and real parallelism — the virtual
// timings must not depend on the Go scheduler.
func TestGoldenBcastDeterminism(t *testing.T) {
	pr := goldenProfile(t)
	for _, gomaxprocs := range []int{1, 4} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", gomaxprocs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gomaxprocs))
			for _, g := range goldenBcast {
				res, err := mpi.Run(pr.Net, 16, func(p *mpi.Proc) error {
					coll.Bcast(p, g.alg, 0, coll.Synthetic(1<<20), pr.SegmentSize)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.MakeSpan != g.makeSpan {
					t.Errorf("%v: MakeSpan = %x, golden %x", g.alg, res.MakeSpan, g.makeSpan)
				}
				if res.Transfers != g.transfers {
					t.Errorf("%v: Transfers = %d, golden %d", g.alg, res.Transfers, g.transfers)
				}
			}
		})
	}
}

// TestGoldenSweepDeterminism asserts that the sweep engine reproduces the
// pinned per-point means bit-identically regardless of worker count,
// execution engine, and plan-template caching — worker-local Runner reuse,
// scheduling order, the plan-replay fast path, and the template rebind
// fast path must not leak into the measurements. The replay engine is
// forced (no scheduler fallback) in its sub-tests, so the pinned seed-era
// constants double as the replay engine's golden contract, with templates
// on and off.
func TestGoldenSweepDeterminism(t *testing.T) {
	pr := goldenProfile(t)
	set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1}
	grid := experiment.BcastGrid(16, coll.BcastAlgorithms(), []int{8192, 131072, 1 << 20}, pr.SegmentSize)
	if len(grid) != len(goldenSweepMeans) {
		t.Fatalf("grid size %d != golden table %d", len(grid), len(goldenSweepMeans))
	}
	for _, engine := range []experiment.Engine{experiment.EngineScheduler, experiment.EngineAuto, experiment.EngineReplay} {
		for _, workers := range []int{1, 8} {
			for _, noTemplates := range []bool{false, true} {
				if noTemplates && engine == experiment.EngineScheduler {
					continue // the scheduler engine never consults templates
				}
				t.Run(fmt.Sprintf("engine=%v/workers=%d/templates=%v", engine, workers, !noTemplates), func(t *testing.T) {
					set := set
					set.Engine = engine
					sw := experiment.Sweep{Profile: pr, Settings: set, Workers: workers, DisableTemplates: noTemplates}
					results, err := sw.Run(context.Background(), grid)
					if err != nil {
						t.Fatal(err)
					}
					for i, r := range results {
						if r.Meas.Mean != goldenSweepMeans[i] {
							t.Errorf("point %v: mean = %x, golden %x", r.Point, r.Meas.Mean, goldenSweepMeans[i])
						}
					}
				})
			}
		}
	}
}

// goldenGridClasses counts the distinct structure classes of a bcast
// grid — the number of scheduler captures a serial templated sweep does.
func goldenGridClasses(grid []experiment.Point) int {
	keys := make(map[string]bool)
	for _, pt := range grid {
		keys[coll.BcastClassKey(pt.Alg, pt.Procs, pt.MsgBytes, pt.SegSize)] = true
	}
	return len(keys)
}

// TestGoldenSweepMetricsInvariance is the observability layer's
// correctness contract: attaching a metrics registry to the sweep must
// not perturb a single bit of any measured mean — metrics observe virtual
// timings, never feed back into them. The same pinned constants as
// TestGoldenSweepDeterminism are checked with a registry attached, and
// the registry itself must come back populated (instrumentation that
// silently records nothing would pass the invariance half vacuously).
func TestGoldenSweepMetricsInvariance(t *testing.T) {
	pr := goldenProfile(t)
	set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1}
	grid := experiment.BcastGrid(16, coll.BcastAlgorithms(), []int{8192, 131072, 1 << 20}, pr.SegmentSize)
	for _, engine := range []experiment.Engine{experiment.EngineScheduler, experiment.EngineAuto, experiment.EngineReplay} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("engine=%v/workers=%d", engine, workers), func(t *testing.T) {
				set := set
				set.Engine = engine
				reg := obs.NewRegistry()
				sw := experiment.Sweep{Profile: pr, Settings: set, Workers: workers, Metrics: reg}
				results, err := sw.Run(context.Background(), grid)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range results {
					if r.Meas.Mean != goldenSweepMeans[i] {
						t.Errorf("point %v: mean = %x, golden %x (metrics registry perturbed the sweep)",
							r.Point, r.Meas.Mean, goldenSweepMeans[i])
					}
				}
				if got := reg.Counter("sweep_points_measured_total").Value(); got != int64(len(grid)) {
					t.Errorf("sweep_points_measured_total = %d, want %d", got, len(grid))
				}
				wantReps := obs.Name("experiment_reps_total", "engine", "replay")
				if engine == experiment.EngineScheduler {
					wantReps = obs.Name("experiment_reps_total", "engine", "scheduler")
				}
				if reg.Counter(wantReps).Value() == 0 {
					t.Errorf("%s not populated", wantReps)
				}
				if reg.Counter("mpi_runs_total").Value() == 0 {
					t.Error("mpi_runs_total not populated")
				}
				tpls := reg.Counter("experiment_plan_templates_total").Value()
				rebinds := reg.Counter("experiment_plan_rebinds_total").Value()
				if engine == experiment.EngineScheduler {
					if tpls != 0 || rebinds != 0 {
						t.Errorf("scheduler engine touched the template cache: %d templates, %d rebinds", tpls, rebinds)
					}
				} else {
					// Every point is either captured (publishing a template)
					// or rebound, and the class-aware scheduler's single-flight
					// election makes capture exactly once-per-class at EVERY
					// worker count — duplicated captures were the parallel
					// sweep's defect, so any duplicate here is a regression.
					classes := int64(goldenGridClasses(grid))
					if tpls+rebinds != int64(len(grid)) {
						t.Errorf("%d templates + %d rebinds != %d grid points", tpls, rebinds, len(grid))
					}
					if tpls != classes {
						t.Errorf("workers=%d sweep captured %d times for %d structure classes — capture is not once-per-class", workers, tpls, classes)
					}
					if groups := reg.Gauge("experiment_sweep_class_groups").Value(); groups != float64(classes) {
						t.Errorf("experiment_sweep_class_groups = %v, want %d", groups, classes)
					}
					dedup := reg.Counter("experiment_sweep_capture_dedup_total").Value()
					if dedup > rebinds {
						t.Errorf("experiment_sweep_capture_dedup_total = %d > %d rebinds", dedup, rebinds)
					}
					if workers == 1 && dedup != 0 {
						t.Errorf("serial sweep deduplicated %d captures — nothing runs concurrently at workers=1", dedup)
					}
					if waits := reg.Histogram("experiment_sweep_singleflight_wait_seconds").Count(); waits != dedup {
						t.Errorf("%d single-flight waits recorded for %d deduplicated captures", waits, dedup)
					}
					if n := reg.Counter(obs.Name("experiment_fallbacks_total", "reason", "rebind-divergence")).Value(); n != 0 {
						t.Errorf("%d unexplained rebind-divergence fallbacks", n)
					}
				}
			})
		}
	}
}
