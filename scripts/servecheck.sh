#!/bin/sh
# servecheck: end-to-end smoke test of the mpicollperfd daemon and the
# mpicollperf serve client. Boots the daemon on an ephemeral port,
# drives a full calibration cycle (submit → poll → select, broadcast
# plus one extended collective), verifies that cancelling a full-scale
# job is observed promptly, and checks that SIGTERM drains to a clean
# exit.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

$GO build -o "$TMP/mpicollperfd" ./cmd/mpicollperfd
$GO build -o "$TMP/mpicollperf" ./cmd/mpicollperf

"$TMP/mpicollperfd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" \
    -store "$TMP/store" -workers 1 &
DPID=$!

i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "servecheck: daemon never published its address" >&2
        exit 1
    fi
    sleep 0.1
done
URL="http://$(cat "$TMP/addr")"
echo "servecheck: daemon at $URL"

# Full cycle: a quick 16-node calibration including one extended
# collective family, then selection queries against the result.
ID=$("$TMP/mpicollperf" serve submit -server "$URL" -profile grisou \
    -nodes 16 -procs 8 -sizes 8192,65536,524288 -ops gather -fast -id-only)
echo "servecheck: submitted $ID"
"$TMP/mpicollperf" serve wait -server "$URL" -id "$ID" -timeout 2m
"$TMP/mpicollperf" serve select -server "$URL" -profile grisou -p 16 -m 1048576
"$TMP/mpicollperf" serve select -server "$URL" -profile grisou -op gather -p 16 -m 8192

# Cancellation: a full-scale gros calibration takes far longer than the
# quick one; cancelling right after submit must be observed within one
# sweep chunk, long before the sweep could finish.
ID2=$("$TMP/mpicollperf" serve submit -server "$URL" -profile gros -procs 64 -id-only)
echo "servecheck: submitted $ID2 (full scale), cancelling"
"$TMP/mpicollperf" serve cancel -server "$URL" -id "$ID2" > /dev/null
"$TMP/mpicollperf" serve wait -server "$URL" -id "$ID2" -want cancelled -timeout 60s
"$TMP/mpicollperf" serve list -server "$URL"

# Graceful shutdown: SIGTERM must drain to exit code 0.
kill -TERM "$DPID"
if wait "$DPID"; then
    DPID=""
else
    echo "servecheck: daemon exited non-zero after SIGTERM" >&2
    DPID=""
    exit 1
fi

echo "servecheck: OK"
