// Customcluster shows that the model-based selector adapts to the
// platform — the property hard-coded decision functions lack. It
// calibrates the selector on two very different networks (a high-latency
// commodity Ethernet cluster and a low-latency fat-pipe one) and prints
// how the chosen algorithm changes while Open MPI's decision, being
// platform-blind, stays the same.
//
//	go run ./examples/customcluster
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mpicollperf"
)

func main() {
	// Two synthetic platforms with 32 nodes each.
	slowNet, err := mpicollperf.CustomCluster("campus-1g", 32, 80e-6, 0.125e9) // 1 GbE, 80 µs
	if err != nil {
		log.Fatal(err)
	}
	fastNet, err := mpicollperf.CustomCluster("hpc-100g", 32, 2e-6, 12.5e9) // 100 Gb, 2 µs
	if err != nil {
		log.Fatal(err)
	}

	selectors := make(map[string]*mpicollperf.Selector, 2)
	for _, pr := range []mpicollperf.Profile{slowNet, fastNet} {
		sel, err := mpicollperf.Calibrate(context.Background(), pr)
		if err != nil {
			log.Fatal(err)
		}
		selectors[pr.Name] = sel
		fmt.Printf("calibrated %-10s gamma(7)=%.2f\n", pr.Name, sel.Models.Gamma.At(7))
	}

	const P = 32
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "\nm (B)\t%s pick\t%s pick\topen mpi (platform-blind)\n", slowNet.Name, fastNet.Name)
	differs := 0
	for _, m := range []int{4096, 32768, 262144, 1 << 20, 4 << 20} {
		a, err := selectors[slowNet.Name].Best(P, m)
		if err != nil {
			log.Fatal(err)
		}
		b, err := selectors[fastNet.Name].Best(P, m)
		if err != nil {
			log.Fatal(err)
		}
		if a.Alg != b.Alg {
			differs++
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\n", m, a, b, mpicollperf.OpenMPIDecision(P, m))
	}
	w.Flush()
	fmt.Printf("\nthe two platforms disagree on %d of 5 sizes — the fixed decision cannot express that.\n", differs)
}
