// Decisiontable shows the deployment path for the paper's method: compile
// a calibrated model set into a static decision table (the shape of Open
// MPI's hard-coded decision function, but derived from models and
// regenerable per platform), then use it for zero-floating-point run-time
// selection — including a generated Go function a library could vendor.
//
//	go run ./examples/decisiontable
package main

import (
	"context"
	"fmt"
	"log"

	"mpicollperf"
	"mpicollperf/internal/decision"
	"mpicollperf/internal/selection"
)

func main() {
	profile, err := mpicollperf.Grisou().WithNodes(32)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := mpicollperf.Calibrate(context.Background(), profile,
		mpicollperf.WithMeasureSettings(mpicollperf.DefaultMeasureSettings()))
	if err != nil {
		log.Fatal(err)
	}

	table, err := decision.Compile(sel.Models, decision.CompileConfig{MaxProcs: profile.Nodes})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("compiled rules:")
	for _, row := range table.Rows {
		fmt.Printf("  P <= %d:\n", row.Procs)
		for i, rule := range row.Rules {
			if i == len(row.Rules)-1 {
				fmt.Printf("    otherwise     -> %s\n", rule.Alg)
			} else {
				fmt.Printf("    m <= %-8d -> %s\n", rule.MaxBytes, rule.Alg)
			}
		}
	}

	// The table agrees with live model evaluation.
	fmt.Println("\ntable lookup vs live model evaluation:")
	disagreements := 0
	for _, p := range []int{4, 16, 32} {
		for _, m := range []int{2048, 65536, 1 << 20, 4 << 20} {
			compiled, err := table.Lookup(p, m)
			if err != nil {
				log.Fatal(err)
			}
			live, err := sel.Best(p, m)
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if compiled != live.Alg.String() {
				mark = "!"
				disagreements++
			}
			fmt.Printf("  %s P=%-3d m=%-8d table=%-14s live=%v\n", mark, p, m, compiled, live.Alg)
		}
	}
	fmt.Printf("disagreements: %d (grid-boundary effects only)\n\n", disagreements)

	// Contrast with the platform-blind Open MPI rule at one point.
	const p, m = 32, 4 << 20
	compiled, _ := table.Lookup(p, m)
	fmt.Printf("at P=%d, m=%d: compiled-for-%s says %s, Open MPI's fixed rule says %v\n",
		p, m, table.Cluster, compiled, selection.OpenMPIFixed(p, m))

	// And the vendorable artifact:
	fmt.Println("\ngenerated Go (excerpt):")
	src := table.GoSource("selectBcastGrisou")
	if len(src) > 600 {
		src = src[:600] + "\n\t... (truncated)\n"
	}
	fmt.Println(src)
}
