// Autotune demonstrates the end-to-end payoff of model-based selection on
// an application-shaped workload: an iterative master-worker computation
// (think parameter sweep or synchronous SGD) that each iteration
// broadcasts a model/state buffer from rank 0 and gathers small per-rank
// results back.
//
// The same application is run three ways on the simulated cluster —
// broadcast algorithm chosen by Open MPI 3.1's fixed decision function, by
// the paper's model-based selector, and by an exhaustive oracle — and the
// total virtual run times are compared.
//
//	go run ./examples/autotune
package main

import (
	"context"
	"fmt"
	"log"

	"mpicollperf"
	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/selection"
)

const (
	nprocs     = 32
	iterations = 20
	// The broadcast payload grows across phases, crossing the decision
	// boundaries where different algorithms win.
	resultBytes = 2048
	computeTime = 200e-6 // per-iteration local work, virtual seconds
)

var phases = []int{16384, 262144, 2 << 20} // broadcast sizes per phase

// runApp executes the application with the broadcast algorithm chosen by
// pick and returns the virtual makespan.
func runApp(pr cluster.Profile, pick func(P, m int) selection.Choice) (float64, error) {
	net, err := pr.Network()
	if err != nil {
		return 0, err
	}
	res, err := mpi.RunOn(net, nprocs, func(p *mpi.Proc) error {
		for _, m := range phases {
			choice := pick(p.Size(), m) // every rank computes the same choice
			for it := 0; it < iterations; it++ {
				coll.Bcast(p, choice.Alg, 0, coll.Synthetic(m), choice.SegSize)
				p.Sleep(computeTime)
				if p.Rank() == 0 {
					coll.Gather(p, coll.GatherLinearNoSync, 0,
						coll.Synthetic(resultBytes*p.Size()), resultBytes)
				} else {
					coll.Gather(p, coll.GatherLinearNoSync, 0,
						coll.Synthetic(resultBytes), resultBytes)
				}
			}
		}
		return nil
	}, mpi.Options{})
	if err != nil {
		return 0, err
	}
	return res.MakeSpan, nil
}

func main() {
	profile, err := cluster.Grisou().WithNodes(nprocs)
	if err != nil {
		log.Fatal(err)
	}
	set := experiment.DefaultSettings()

	// One measurement cache serves both the calibration and the oracle:
	// everything fans out over the sweep engine's default worker pool,
	// and a re-run of either stage against the same cache is free. The
	// calibration goes through the facade's options API.
	cache := mpicollperf.NewMeasurementCache()
	sel, err := mpicollperf.Calibrate(context.Background(), profile,
		mpicollperf.WithMeasureSettings(set),
		mpicollperf.WithCache(cache))
	if err != nil {
		log.Fatal(err)
	}

	// Oracle choices per phase, measured once up front through the shared
	// sweep engine.
	sw := experiment.Sweep{Profile: profile, Settings: set, Cache: cache}
	oracleChoice := make(map[int]selection.Choice, len(phases))
	for _, m := range phases {
		o, err := selection.OracleSweep(context.Background(), sw, nprocs, m)
		if err != nil {
			log.Fatal(err)
		}
		oracleChoice[m] = selection.Choice{Alg: o.Best, SegSize: profile.SegmentSize}
	}

	pickers := []struct {
		name string
		pick func(P, m int) selection.Choice
	}{
		{"open mpi fixed decision", selection.OpenMPIFixed},
		{"model-based (this paper)", func(P, m int) selection.Choice {
			c, err := sel.Best(P, m)
			if err != nil {
				log.Fatal(err)
			}
			return c
		}},
		{"oracle (exhaustive)", func(P, m int) selection.Choice { return oracleChoice[m] }},
	}

	fmt.Printf("master-worker application: %d ranks, %d iterations x %d phases\n\n",
		nprocs, iterations, len(phases))
	var baseline float64
	for i, pk := range pickers {
		total, err := runApp(profile, pk.pick)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = total
			fmt.Printf("%-26s %.4f s (baseline)\n", pk.name, total)
			continue
		}
		fmt.Printf("%-26s %.4f s (%.1f%% faster than open mpi)\n",
			pk.name, total, (baseline/total-1)*100)
	}
	fmt.Println("\nper-phase selections:")
	for _, m := range phases {
		c, _ := sel.Best(nprocs, m)
		fmt.Printf("  m=%-8d open mpi: %-18v model: %-16v oracle: %v\n",
			m, selection.OpenMPIFixed(nprocs, m), c, oracleChoice[m])
	}
}
