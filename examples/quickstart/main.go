// Quickstart: calibrate the model-based selector on a simulated cluster
// and ask it which broadcast algorithm to use.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mpicollperf"
)

func main() {
	// A scaled-down Grisou so the offline calibration finishes in seconds;
	// use mpicollperf.Grisou() unmodified for the paper-scale platform.
	profile, err := mpicollperf.Grisou().WithNodes(24)
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase (once per cluster): estimate γ(P) and per-algorithm
	// Hockney parameters from collective communication experiments. The
	// defaults reproduce the paper's methodology; see the With* options
	// for workers, caching, engine selection, and metrics.
	sel, err := mpicollperf.Calibrate(context.Background(), profile)
	if err != nil {
		log.Fatal(err)
	}

	// Online phase (per MPI_Bcast call): evaluate six closed forms, take
	// the argmin. Compare against Open MPI 3.1's hard-coded decision.
	fmt.Printf("%-10s %-22s %-22s\n", "m", "model-based selection", "open mpi 3.1 decision")
	for _, m := range []int{1024, 8192, 131072, 1 << 20, 4 << 20} {
		choice, err := sel.Best(profile.Nodes, m)
		if err != nil {
			log.Fatal(err)
		}
		ompi := mpicollperf.OpenMPIDecision(profile.Nodes, m)
		fmt.Printf("%-10d %-22v %-22v\n", m, choice, ompi)
	}

	// The models also answer "how long would algorithm X take?".
	fmt.Println("\npredicted times for a 1 MB broadcast:")
	for alg, t := range sel.PredictAll(profile.Nodes, 1<<20) {
		fmt.Printf("  %-14v %.4f s\n", alg, t)
	}
}
