// Modelaccuracy reproduces the paper's central methodological claim in
// miniature: implementation-derived models with per-algorithm parameters
// predict measured broadcast times well enough to rank algorithms, where
// textbook models with ping-pong parameters do not (Fig. 1).
//
// For every algorithm and a sweep of message sizes it prints the measured
// time, the implementation-derived prediction, the traditional textbook
// prediction, and both relative errors.
//
//	go run ./examples/modelaccuracy
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"mpicollperf"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/hockney"
	"mpicollperf/internal/stats"
)

func main() {
	profile, err := mpicollperf.Gros().WithNodes(32)
	if err != nil {
		log.Fatal(err)
	}
	set := mpicollperf.DefaultMeasureSettings()

	// The paper's estimation pipeline, through the facade's options API...
	sel, err := mpicollperf.Calibrate(context.Background(), profile,
		mpicollperf.WithMeasureSettings(set))
	if err != nil {
		log.Fatal(err)
	}
	// ...and the traditional one it replaces.
	pingPong, err := hockney.EstimatePingPong(profile, []int{0, 8192, 131072, 1 << 20}, set)
	if err != nil {
		log.Fatal(err)
	}

	const P = 32
	sizes := stats.LogSpaceBytes(8192, 2<<20, 5)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tm (B)\tmeasured (s)\tmodel (s)\terr\ttraditional (s)\terr")
	var modelErrs, tradErrs []float64
	for _, alg := range coll.BcastAlgorithms() {
		for _, m := range sizes {
			measured, err := sel.MeasureBcast(alg, P, m, set)
			if err != nil {
				log.Fatal(err)
			}
			predicted, err := sel.Predict(alg, P, m)
			if err != nil {
				log.Fatal(err)
			}
			trad := hockney.TraditionalBcast(alg, pingPong, P, m, profile.SegmentSize)
			me := math.Abs(predicted/measured - 1)
			te := math.Abs(trad/measured - 1)
			modelErrs = append(modelErrs, me)
			tradErrs = append(tradErrs, te)
			fmt.Fprintf(w, "%v\t%d\t%.6f\t%.6f\t%.0f%%\t%.6f\t%.0f%%\n",
				alg, m, measured, predicted, me*100, trad, te*100)
		}
	}
	w.Flush()
	fmt.Printf("\nmean relative error: implementation-derived %.0f%%, traditional %.0f%%\n",
		stats.Mean(modelErrs)*100, stats.Mean(tradErrs)*100)
}
