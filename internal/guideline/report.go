package guideline

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
)

// CheckResult is the verdict of one guideline at one configuration — the
// row format of the JSON artifact and the rendered violation table.
type CheckResult struct {
	Guideline string  `json:"guideline"`
	Family    Family  `json:"family"`
	Platform  string  `json:"platform"`
	Quiet     bool    `json:"quiet"`
	Procs     int     `json:"procs"`
	MsgBytes  int     `json:"msg_bytes"`
	Left      string  `json:"left"`
	Right     string  `json:"right"`
	LeftSec   float64 `json:"left_seconds"`
	RightSec  float64 `json:"right_seconds"`
	Ratio     float64 `json:"ratio"`
	Tolerance float64 `json:"tolerance"`
	Violated  bool    `json:"violated"`
	Engine    string  `json:"engine"`
	Fallback  string  `json:"fallback,omitempty"`
}

// Report aggregates a harness run: every check in deterministic grid
// order plus run-level context.
type Report struct {
	Engine    string
	Workers   int
	Platforms []string
	Elapsed   float64
	Checks    []CheckResult
}

// Violations returns the checks that failed, in grid order.
func (r *Report) Violations() []CheckResult {
	var out []CheckResult
	for _, c := range r.Checks {
		if c.Violated {
			out = append(out, c)
		}
	}
	return out
}

// FamilyCount returns how many distinct guideline families were checked.
func (r *Report) FamilyCount() int {
	seen := make(map[Family]bool)
	for _, c := range r.Checks {
		seen[c.Family] = true
	}
	return len(seen)
}

// Summary is the per-guideline aggregate of the JSON artifact.
type Summary struct {
	Guideline  string  `json:"guideline"`
	Family     Family  `json:"family"`
	Checks     int     `json:"checks"`
	Violations int     `json:"violations"`
	MaxRatio   float64 `json:"max_ratio"`
}

// Summarize folds the checks into one row per guideline, sorted by name.
func (r *Report) Summarize() []Summary {
	byName := make(map[string]*Summary)
	for _, c := range r.Checks {
		s := byName[c.Guideline]
		if s == nil {
			s = &Summary{Guideline: c.Guideline, Family: c.Family, MaxRatio: math.Inf(-1)}
			byName[c.Guideline] = s
		}
		s.Checks++
		if c.Violated {
			s.Violations++
		}
		if c.Ratio > s.MaxRatio {
			s.MaxRatio = c.Ratio
		}
	}
	out := make([]Summary, 0, len(byName))
	for _, s := range byName {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Guideline < out[j].Guideline })
	return out
}

// artifact is the JSON document WriteJSON emits: run context, the
// per-guideline summary, and the full violation rows (clean checks are
// summarized, not enumerated, to keep artifacts reviewable).
type artifact struct {
	Engine     string        `json:"engine"`
	Workers    int           `json:"workers"`
	Platforms  []string      `json:"platforms"`
	Elapsed    float64       `json:"elapsed_seconds"`
	Checks     int           `json:"checks"`
	ViolCount  int           `json:"violations"`
	Summary    []Summary     `json:"summary"`
	Violations []CheckResult `json:"violation_rows"`
}

// WriteJSON writes the structured artifact to path, creating parent
// directories as needed. Non-finite ratios are clamped to -1 (JSON has no
// encoding for infinities).
func (r *Report) WriteJSON(path string) error {
	viol := r.Violations()
	if viol == nil {
		viol = []CheckResult{}
	}
	for i := range viol {
		if !isFinite(viol[i].Ratio) {
			viol[i].Ratio = -1
		}
	}
	sum := r.Summarize()
	for i := range sum {
		if !isFinite(sum[i].MaxRatio) {
			sum[i].MaxRatio = -1
		}
	}
	a := artifact{
		Engine:     r.Engine,
		Workers:    r.Workers,
		Platforms:  r.Platforms,
		Elapsed:    r.Elapsed,
		Checks:     len(r.Checks),
		ViolCount:  len(viol),
		Summary:    sum,
		Violations: viol,
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render writes the human-readable run summary: one row per guideline,
// then one row per violation with the measured evidence.
func (r *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "guideline verification: %d checks, %d violations, %d platforms, %.1fs\n\n",
		len(r.Checks), len(r.Violations()), len(r.Platforms), r.Elapsed)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GUIDELINE\tFAMILY\tCHECKS\tVIOLATIONS\tMAX RATIO")
	for _, s := range r.Summarize() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.4f\n", s.Guideline, s.Family, s.Checks, s.Violations, s.MaxRatio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	viol := r.Violations()
	if len(viol) == 0 {
		fmt.Fprintln(w, "\nall guidelines hold")
		return nil
	}
	fmt.Fprintln(w, "\nVIOLATIONS")
	tw = tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GUIDELINE\tPLATFORM\tP\tBYTES\tLEFT\tRIGHT\tRATIO\tTOL\tENGINE\tFALLBACK")
	for _, c := range viol {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s=%.3e\t%s=%.3e\t%.4f\t%.2f\t%s\t%s\n",
			c.Guideline, c.Platform, c.Procs, c.MsgBytes,
			c.Left, c.LeftSec, c.Right, c.RightSec, c.Ratio, c.Tolerance, c.Engine, c.Fallback)
	}
	return tw.Flush()
}

func isFinite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }
