package guideline

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/perturb"
)

func meas(mean, hw float64) experiment.Measurement {
	var m experiment.Measurement
	m.Mean = mean
	m.CI.HalfWidth = hw
	return m
}

func TestHolds(t *testing.T) {
	cases := []struct {
		name        string
		left, right experiment.Measurement
		tol         float64
		want        bool
	}{
		{"equal", meas(1, 0), meas(1, 0), 0, true},
		{"strictly-less", meas(0.5, 0), meas(1, 0), 0, true},
		{"within-tolerance", meas(1.04, 0), meas(1, 0), 0.05, true},
		{"beyond-tolerance", meas(1.2, 0), meas(1, 0), 0.05, false},
		{"noise-overlap", meas(1.2, 0.15), meas(1, 0.1), 0.0, true},
		{"noise-separated", meas(1.5, 0.01), meas(1, 0.01), 0.0, false},
		{"negative-tolerance-clamped", meas(1, 0), meas(1, 0), -1, true},
	}
	for _, c := range cases {
		if got := Holds(c.left, c.right, c.tol); got != c.want {
			t.Errorf("%s: Holds = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(meas(2, 0), meas(1, 0)); r != 2 {
		t.Errorf("Ratio(2, 1) = %v", r)
	}
	if r := Ratio(meas(1, 0), meas(0, 0)); !math.IsInf(r, 1) {
		t.Errorf("Ratio(1, 0) = %v, want +Inf", r)
	}
	if r := Ratio(meas(0, 0), meas(0, 0)); r != 1 {
		t.Errorf("Ratio(0, 0) = %v, want 1", r)
	}
}

func TestAppliesTo(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := pr.Perturbed(&perturb.Spec{Stragglers: []perturb.Straggler{{Node: 0, Compute: 2}}})
	even := func(cfg Config) bool { return cfg.MsgBytes%2 == 0 }
	g := Guideline{
		Left:  Recipe{OK: even},
		Right: Recipe{OK: func(cfg Config) bool { return cfg.MsgBytes%3 == 0 }},
	}
	cases := []struct {
		name string
		g    Guideline
		cfg  Config
		want bool
	}{
		{"ok", g, Config{Profile: pr, Procs: 4, MsgBytes: 6}, true},
		{"procs-too-small", g, Config{Profile: pr, Procs: 1, MsgBytes: 6}, false},
		{"procs-exceed-nodes", g, Config{Profile: pr, Procs: 17, MsgBytes: 6}, false},
		{"no-bytes", g, Config{Profile: pr, Procs: 4, MsgBytes: 0}, false},
		{"left-ok-rejects", g, Config{Profile: pr, Procs: 4, MsgBytes: 9}, false},
		{"right-ok-rejects", g, Config{Profile: pr, Procs: 4, MsgBytes: 4}, false},
		{"quiet-only-on-perturbed", Guideline{QuietOnly: true}, Config{Profile: perturbed, Procs: 4, MsgBytes: 6}, false},
		{"quiet-only-on-quiet", Guideline{QuietOnly: true}, Config{Profile: pr, Procs: 4, MsgBytes: 6}, true},
		{"guideline-predicate", Guideline{Applies: func(Config) bool { return false }}, Config{Profile: pr, Procs: 4, MsgBytes: 6}, false},
	}
	for _, c := range cases {
		if got := c.g.AppliesTo(c.cfg); got != c.want {
			t.Errorf("%s: AppliesTo = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRegistryShape pins the structural contract of the built-in set:
// all five families present, names unique, both sides of every guideline
// runnable, and the fuzz-facing Invariant subset restricted to the
// perturbation-robust families.
func TestRegistryShape(t *testing.T) {
	gls := Registry()
	if len(gls) < 20 {
		t.Fatalf("Registry has %d guidelines", len(gls))
	}
	names := make(map[string]bool)
	for _, g := range gls {
		if names[g.Name] {
			t.Errorf("duplicate guideline name %q", g.Name)
		}
		names[g.Name] = true
		if g.Left.Measure == nil || g.Right.Measure == nil {
			t.Errorf("%s: missing measure func", g.Name)
		}
		if g.Doc == "" || g.Tolerance <= 0 {
			t.Errorf("%s: incomplete declaration (doc %q, tolerance %v)", g.Name, g.Doc, g.Tolerance)
		}
	}
	fams := Families(gls)
	if len(fams) != 5 {
		t.Errorf("Registry families = %v, want all 5", fams)
	}
	for _, fam := range Families(Invariant()) {
		if fam != FamilyPattern && fam != FamilyMonotoneSize {
			t.Errorf("Invariant includes non-robust family %q", fam)
		}
	}
	for _, g := range Registry() {
		switch g.Family {
		case FamilyMonotoneProcs, FamilySpecialized, FamilySanity:
			if !g.QuietOnly {
				t.Errorf("%s: family %s must be quiet-only", g.Name, g.Family)
			}
		}
	}
}

func TestReportSummaryAndArtifact(t *testing.T) {
	rep := &Report{
		Engine:    "auto",
		Workers:   2,
		Platforms: []string{"grisou"},
		Checks: []CheckResult{
			{Guideline: "g1", Family: FamilyPattern, Platform: "grisou", Procs: 4, MsgBytes: 1024, Ratio: 0.5},
			{Guideline: "g1", Family: FamilyPattern, Platform: "grisou", Procs: 8, MsgBytes: 1024, Ratio: 0.7},
			{Guideline: "g2", Family: FamilyMonotoneSize, Platform: "grisou", Procs: 4, MsgBytes: 1024,
				Ratio: math.Inf(1), Violated: true, Tolerance: 0.02},
		},
	}
	if n := rep.FamilyCount(); n != 2 {
		t.Errorf("FamilyCount = %d, want 2", n)
	}
	if v := rep.Violations(); len(v) != 1 || v[0].Guideline != "g2" {
		t.Errorf("Violations = %+v", v)
	}
	sums := rep.Summarize()
	if len(sums) != 2 || sums[0].Guideline != "g1" || sums[0].Checks != 2 || sums[0].MaxRatio != 0.7 {
		t.Errorf("Summarize = %+v", sums)
	}
	if sums[1].Violations != 1 {
		t.Errorf("g2 summary = %+v", sums[1])
	}

	var buf strings.Builder
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VIOLATIONS") || !strings.Contains(out, "g2") {
		t.Errorf("Render output missing violation table:\n%s", out)
	}

	path := filepath.Join(t.TempDir(), "sub", "guidelines.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Engine     string        `json:"engine"`
		Checks     int           `json:"checks"`
		Violations int           `json:"violations"`
		Summary    []Summary     `json:"summary"`
		Rows       []CheckResult `json:"violation_rows"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Engine != "auto" || art.Checks != 3 || art.Violations != 1 || len(art.Summary) != 2 || len(art.Rows) != 1 {
		t.Errorf("artifact = %+v", art)
	}
	// JSON cannot encode ±Inf; the writer clamps non-finite ratios to -1.
	if art.Rows[0].Ratio != -1 || art.Summary[1].MaxRatio != -1 {
		t.Errorf("non-finite ratios serialized as %v / %v, want -1", art.Rows[0].Ratio, art.Summary[1].MaxRatio)
	}
}

func TestHarnessContextCancellation(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1}
	if _, err := Check(ctx, pr, Invariant(), []int{4}, []int{1 << 10}, set); err == nil {
		t.Fatal("cancelled context did not stop the run")
	}
}
