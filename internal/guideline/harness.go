package guideline

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/perturb"
	"mpicollperf/internal/selection"
)

// Harness fans a guideline × (P, m) × profile × perturbation grid out
// over the sweep machinery: per-platform Runner pools, the plan-template
// cache, and a memo that measures each distinct recipe atom once per
// platform no matter how many guidelines share it. Results are
// deterministic — grid order, measurement values, and verdicts do not
// depend on Workers or on which engine computes them.
type Harness struct {
	// Profiles are the base platforms; empty means the canonical pair
	// (grisou and gros, both truncated to 16 nodes).
	Profiles []cluster.Profile
	// Perturbations are explicit perturbation specs; each is composed
	// onto every base profile as an additional platform.
	Perturbations []*perturb.Spec
	// RandomPerturbations adds this many deterministic random platforms
	// per profile, drawn from perturb.Random(Seed+i, Intensity, nics).
	RandomPerturbations int
	// Seed feeds the random perturbation generator (default 1).
	Seed int64
	// Intensity scales the random perturbations (default 0.5).
	Intensity float64
	// Procs are the communicator sizes; empty means {4, 8, 16} clipped to
	// each profile's node count.
	Procs []int
	// Sizes are the total message sizes in bytes; empty means
	// {1 KiB, 16 KiB, 128 KiB, 1 MiB}.
	Sizes []int
	// Guidelines is the set to check; empty means Registry().
	Guidelines []Guideline
	// Settings drive the adaptive measurements; the zero value uses the
	// experiment defaults.
	Settings experiment.Settings
	// Workers bounds per-platform concurrency: 0 means
	// runtime.GOMAXPROCS(0), 1 reproduces the serial path bit for bit.
	Workers int
	// Metrics, if non-nil, receives guideline_checks_total,
	// guideline_violations_total, per-guideline ratio histograms, and the
	// guideline_run_seconds span.
	Metrics *obs.Registry
	// FitProcs is the communicator size of the algorithm-sanity model
	// fit; 0 uses the estimate package default (half the platform).
	FitProcs int
}

// task is one grid cell: guideline gi at configuration cfg.
type task struct {
	gi  int
	cfg Config
}

// Run checks the whole grid and returns the aggregated report. A
// cancelled ctx stops the run promptly with the context's error.
func (h Harness) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	if h.Metrics != nil {
		defer h.Metrics.Span("guideline_run_seconds").End()
	}
	profiles := h.Profiles
	if len(profiles) == 0 {
		var err error
		if profiles, err = defaultProfiles(); err != nil {
			return nil, err
		}
	}
	gls := h.Guidelines
	if len(gls) == 0 {
		gls = Registry()
	}
	sizes := h.Sizes
	if len(sizes) == 0 {
		sizes = []int{1 << 10, 16 << 10, 128 << 10, 1 << 20}
	}
	workers := h.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	seed := h.Seed
	if seed == 0 {
		seed = 1
	}
	intensity := h.Intensity
	if intensity == 0 {
		intensity = 0.5
	}
	needFit := false
	for _, g := range gls {
		if g.Family == FamilySanity {
			needFit = true
		}
	}

	rep := &Report{Engine: h.Settings.Engine.String(), Workers: workers}
	for _, base := range profiles {
		platforms := []cluster.Profile{base}
		for _, spec := range h.Perturbations {
			platforms = append(platforms, base.Perturbed(spec))
		}
		for i := 0; i < h.RandomPerturbations; i++ {
			spec := perturb.Random(seed+int64(i), intensity, base.Net.NICs())
			platforms = append(platforms, base.Perturbed(spec))
		}
		for _, pr := range platforms {
			checks, err := h.runPlatform(ctx, pr, gls, sizes, workers, needFit)
			if err != nil {
				return nil, err
			}
			rep.Checks = append(rep.Checks, checks...)
			rep.Platforms = append(rep.Platforms, pr.Name)
		}
	}
	rep.Elapsed = time.Since(start).Seconds()
	h.observe(rep)
	return rep, nil
}

// runPlatform checks every guideline × (P, m) cell of one platform. The
// task list is enumerated deterministically and results land at their
// task index, so the output order is identical for any worker count.
func (h Harness) runPlatform(ctx context.Context, pr cluster.Profile, gls []Guideline, sizes []int, workers int, needFit bool) ([]CheckResult, error) {
	procs := h.Procs
	if len(procs) == 0 {
		for _, p := range []int{4, 8, 16} {
			if p <= pr.Nodes {
				procs = append(procs, p)
			}
		}
		if len(procs) == 0 {
			procs = []int{pr.Nodes}
		}
	}

	var tasks []task
	for gi, g := range gls {
		for _, p := range procs {
			for _, m := range sizes {
				cfg := Config{Profile: pr, Procs: p, MsgBytes: m}
				if g.AppliesTo(cfg) {
					tasks = append(tasks, task{gi: gi, cfg: cfg})
				}
			}
		}
	}
	if len(tasks) == 0 {
		return nil, nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	pool, err := experiment.NewRunnerPool(pr, workers, h.Metrics)
	if err != nil {
		return nil, err
	}
	plat := &platform{pr: pr, set: h.Settings, tmpl: pool.Templates()}
	if needFit && pr.Net.Perturb.Empty() {
		plat.fitSel = h.selectorFitter(ctx, pr, workers)
	}

	results := make([]CheckResult, len(tasks))
	errs := make([]error, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r, err := pool.Get()
			if err != nil {
				errs[w] = err
				return
			}
			defer pool.Put(r)
			env := &Env{Runner: r, plat: plat}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				res, err := runCheck(env, gls[tasks[i].gi], tasks[i].cfg, h.Settings)
				if err != nil {
					errs[w] = fmt.Errorf("%s at %s: %w", gls[tasks[i].gi].Name, tasks[i].cfg, err)
					return
				}
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// selectorFitter returns the lazy single-flight model fit for pr: the
// calibration sweep runs at most once per platform, and only if an
// algorithm-sanity recipe actually executes.
func (h Harness) selectorFitter(ctx context.Context, pr cluster.Profile, workers int) func() (selection.ModelBased, error) {
	return func() (selection.ModelBased, error) {
		models, _, err := estimate.ModelsCtx(ctx, pr, estimate.AlphaBetaConfig{
			Procs:    h.FitProcs,
			Settings: h.Settings,
			Workers:  workers,
			Metrics:  h.Metrics,
		})
		if err != nil {
			return selection.ModelBased{}, fmt.Errorf("fitting models for %s: %w", pr.Name, err)
		}
		return selection.ModelBased{Models: models}, nil
	}
}

// runCheck evaluates one guideline at one configuration.
func runCheck(env *Env, g Guideline, cfg Config, set experiment.Settings) (CheckResult, error) {
	left, err := g.Left.Measure(env, cfg)
	if err != nil {
		return CheckResult{}, fmt.Errorf("left %s: %w", g.Left.Name, err)
	}
	right, err := g.Right.Measure(env, cfg)
	if err != nil {
		return CheckResult{}, fmt.Errorf("right %s: %w", g.Right.Name, err)
	}
	res := CheckResult{
		Guideline: g.Name,
		Family:    g.Family,
		Platform:  cfg.Profile.Name,
		Quiet:     cfg.Quiet(),
		Procs:     cfg.Procs,
		MsgBytes:  cfg.MsgBytes,
		Left:      g.Left.Name,
		Right:     g.Right.Name,
		LeftSec:   left.Mean,
		RightSec:  right.Mean,
		Ratio:     Ratio(left, right),
		Tolerance: g.Tolerance,
		Violated:  !Holds(left, right, g.Tolerance),
		Engine:    set.Engine.String(),
	}
	if left.Fallback != experiment.FallbackNone {
		res.Fallback = string(left.Fallback)
	} else if right.Fallback != experiment.FallbackNone {
		res.Fallback = string(right.Fallback)
	}
	return res, nil
}

// observe publishes the run's counters and per-guideline ratio
// histograms.
func (h Harness) observe(rep *Report) {
	if h.Metrics == nil {
		return
	}
	h.Metrics.Counter("guideline_checks_total").Add(int64(len(rep.Checks)))
	h.Metrics.Counter("guideline_violations_total").Add(int64(len(rep.Violations())))
	for _, c := range rep.Checks {
		h.Metrics.Histogram(obs.Name("guideline_ratio", "guideline", c.Guideline)).Observe(c.Ratio)
	}
}

// Check is the one-call form: verify gls over a (procs × sizes) grid on a
// single platform with default harness wiring.
func Check(ctx context.Context, pr cluster.Profile, gls []Guideline, procs, sizes []int, set experiment.Settings) (*Report, error) {
	h := Harness{
		Profiles:   []cluster.Profile{pr},
		Guidelines: gls,
		Procs:      procs,
		Sizes:      sizes,
		Settings:   set,
	}
	return h.Run(ctx)
}

// defaultProfiles is the canonical platform pair, truncated to 16 nodes
// so the default grid matches the repository's golden profile scale.
func defaultProfiles() ([]cluster.Profile, error) {
	var out []cluster.Profile
	for _, name := range []string{"grisou", "gros"} {
		pr, err := cluster.ByName(name)
		if err != nil {
			return nil, err
		}
		if pr.Nodes > 16 {
			if pr, err = pr.WithNodes(16); err != nil {
				return nil, err
			}
		}
		out = append(out, pr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
