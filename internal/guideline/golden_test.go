// Golden verdict tests: the guideline checker's verdicts are part of the
// repository's determinism contract. On the canonical golden platform
// (Grisou at 16 nodes, the same profile golden_test.go pins the sweep
// engine to) the full registry must pass clean, and every execution
// engine and worker count must produce the identical check list bit for
// bit — the replay/template engines are differentially checked against
// the scheduler through the verdicts they emit.
package guideline

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/obs"
)

func goldenProfile(t *testing.T) cluster.Profile {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// goldenSettings mirrors the root golden_test.go sweep settings.
var goldenSettings = experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1}

func goldenHarness(pr cluster.Profile, engine experiment.Engine, workers int, reg *obs.Registry) Harness {
	set := goldenSettings
	set.Engine = engine
	return Harness{
		Profiles: []cluster.Profile{pr},
		Procs:    []int{4, 8},
		Sizes:    []int{1 << 10, 64 << 10},
		Settings: set,
		Workers:  workers,
		Metrics:  reg,
	}
}

// TestGoldenGuidelineVerdicts runs the full registry on the golden
// platform across engines × worker counts: zero violations everywhere,
// and — the differential contract — every combination must reproduce the
// scheduler/workers=1 check list bit-identically (same grid order, same
// measured means, same ratios, same verdicts).
func TestGoldenGuidelineVerdicts(t *testing.T) {
	pr := goldenProfile(t)
	var baseline []CheckResult
	for _, engine := range []experiment.Engine{experiment.EngineScheduler, experiment.EngineAuto, experiment.EngineReplay} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("engine=%v/workers=%d", engine, workers), func(t *testing.T) {
				h := goldenHarness(pr, engine, workers, nil)
				rep, err := h.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Checks) == 0 {
					t.Fatal("no checks ran")
				}
				if rep.FamilyCount() != 5 {
					t.Errorf("checked %d families, want 5", rep.FamilyCount())
				}
				for _, v := range rep.Violations() {
					t.Errorf("violation on the clean golden platform: %s at P=%d m=%d (ratio %.4f)",
						v.Guideline, v.Procs, v.MsgBytes, v.Ratio)
				}
				if baseline == nil {
					baseline = rep.Checks
					return
				}
				if len(rep.Checks) != len(baseline) {
					t.Fatalf("%d checks, baseline has %d", len(rep.Checks), len(baseline))
				}
				for i, c := range rep.Checks {
					want := baseline[i]
					// The engine labels itself; everything else — including
					// the measured seconds, bit for bit — must match.
					c.Engine = want.Engine
					if c != want {
						t.Errorf("check %d diverged from the scheduler baseline:\n got %+v\nwant %+v", i, c, want)
					}
				}
			})
		}
	}
}

// TestGoldenInvertedComparator is the harness's self-test: deliberately
// inverting the pattern guidelines (composition ≾ best single collective
// — false by construction) must produce violations, a rendered violation
// table, and a violation-carrying artifact. A checker that cannot fail
// proves nothing by passing.
func TestGoldenInvertedComparator(t *testing.T) {
	pr := goldenProfile(t)
	var inverted []Guideline
	for _, g := range Registry() {
		if g.Family != FamilyPattern {
			continue
		}
		g.Name = "inverted:" + g.Name
		g.Left, g.Right = g.Right, g.Left
		inverted = append(inverted, g)
	}
	if len(inverted) != 3 {
		t.Fatalf("expected 3 pattern guidelines, got %d", len(inverted))
	}
	rep, err := Check(context.Background(), pr, inverted, []int{8}, []int{64 << 10}, goldenSettings)
	if err != nil {
		t.Fatal(err)
	}
	viol := rep.Violations()
	if len(viol) != len(rep.Checks) || len(viol) == 0 {
		t.Fatalf("inverted comparator: %d of %d checks violated, want all", len(viol), len(rep.Checks))
	}
	for _, v := range viol {
		if v.Ratio <= 1+v.Tolerance {
			t.Errorf("%s: ratio %.4f does not exceed tolerance %v", v.Guideline, v.Ratio, v.Tolerance)
		}
	}
	var buf strings.Builder
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VIOLATIONS") {
		t.Error("violation table missing from rendered report")
	}
	if err := rep.WriteJSON(t.TempDir() + "/inverted.json"); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenGuidelineMetricsInvariance mirrors the sweep-engine metrics
// contract for the guideline layer: attaching a registry must not change
// a single verdict or measured mean, and the registry must come back
// populated with the run's counters.
func TestGoldenGuidelineMetricsInvariance(t *testing.T) {
	pr := goldenProfile(t)
	bare, err := goldenHarness(pr, experiment.EngineAuto, 4, nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	withReg, err := goldenHarness(pr, experiment.EngineAuto, 4, reg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(withReg.Checks) != len(bare.Checks) {
		t.Fatalf("%d checks with metrics, %d without", len(withReg.Checks), len(bare.Checks))
	}
	for i, c := range withReg.Checks {
		if c != bare.Checks[i] {
			t.Errorf("check %d: metrics registry perturbed the verdict:\n got %+v\nwant %+v", i, c, bare.Checks[i])
		}
	}
	if got := reg.Counter("guideline_checks_total").Value(); got != int64(len(withReg.Checks)) {
		t.Errorf("guideline_checks_total = %d, want %d", got, len(withReg.Checks))
	}
	if got := reg.Counter("guideline_violations_total").Value(); got != 0 {
		t.Errorf("guideline_violations_total = %d, want 0", got)
	}
	name := obs.Name("guideline_ratio", "guideline", withReg.Checks[0].Guideline)
	if reg.Histogram(name).Count() == 0 {
		t.Errorf("%s not populated", name)
	}
}
