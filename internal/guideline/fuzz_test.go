package guideline

import (
	"context"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/perturb"
)

// FuzzGuidelines fuzzes the perturbation-robust invariant set (pattern
// equivalences and monotonicity in m, see Invariant) over random cluster
// shapes — node count, processes per node, α (latency), β (inverse
// bandwidth) — random perturbation specs, and random (P, m) points. The
// profiles are built with zero noise amplitude, so the simulator core is
// deterministic and the invariants are exact: any violation is a checker
// or simulator bug, not measurement luck. (Random perturbations stay
// time-invariant multiplicative under zero noise — the jitter family
// scales the platform's noise amplitude, which is zero here.)
func FuzzGuidelines(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint16(20), uint8(2), int64(1), uint8(0), uint8(4), uint8(4))
	f.Add(uint8(5), uint8(2), uint16(3), uint8(0), int64(7), uint8(40), uint8(2), uint8(16))
	f.Add(uint8(12), uint8(1), uint16(100), uint8(3), int64(42), uint8(100), uint8(6), uint8(1))
	f.Add(uint8(4), uint8(3), uint16(55), uint8(1), int64(-3), uint8(75), uint8(3), uint8(63))
	f.Add(uint8(10), uint8(2), uint16(7), uint8(2), int64(1001), uint8(25), uint8(8), uint8(8))
	f.Fuzz(func(t *testing.T, nodes, ppn uint8, latMicro uint16, bwSel uint8, seed int64, pertCent, pSel, mScale uint8) {
		n := 3 + int(nodes)%10 // 3..12 process slots
		lat := (1 + float64(latMicro%200)) * 1e-6
		bw := []float64{1e8, 1e9, 2.5e9, 1e10}[int(bwSel)%4]
		pr, err := cluster.Custom("fuzz", n, lat, bw)
		if err != nil {
			t.Fatal(err)
		}
		pr.Net.NoiseAmplitude = 0
		if p := 1 + int(ppn)%3; p > 1 {
			pr.Net.ProcsPerNode = p
			pr.Net.IntraNodeLatency = lat / 20
			pr.Net.IntraNodeByteTime = 1e-10
		}
		if intensity := float64(pertCent%101) / 100; intensity > 0 {
			pr = pr.Perturbed(perturb.Random(seed, intensity, pr.Net.NICs()))
		}
		procs := 2 + int(pSel)%(n-1)            // 2..n
		m := procs * (1 + int(mScale)%64) * 128 // P | m, up to P·8 KiB
		set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 8, Warmup: 1}
		rep, err := Check(context.Background(), pr, Invariant(), []int{procs}, []int{m}, set)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Checks) == 0 {
			t.Fatalf("no applicable checks at P=%d m=%d on %d nodes", procs, m, n)
		}
		for _, c := range rep.Checks {
			if c.Violated {
				t.Errorf("invariant %s violated at P=%d m=%d (ratio %.4f, %s=%.3e vs %s=%.3e)",
					c.Guideline, c.Procs, c.MsgBytes, c.Ratio, c.Left, c.LeftSec, c.Right, c.RightSec)
			}
		}
	})
}
