// Package guideline mechanically verifies performance guidelines —
// self-consistency laws a sane collective library must obey — against the
// simulator, reproducing the methodology of Hunold & Carpen-Amarie
// ("Tuning MPI Collectives by Verifying Performance Guidelines",
// arXiv:1707.09965) on top of this repository's measurement engines.
//
// A guideline is a declarative statement "left ≾ right": the measured
// time of the left recipe must not exceed the measured time of the right
// recipe beyond a tolerance, at every applicable configuration. Four
// families are implemented:
//
//   - pattern equivalences: a collective must not lose to a composition
//     of collectives that implements it (Bcast ≾ Scatter+Allgather,
//     Allreduce ≾ Reduce+Bcast, Allgather ≾ Gather+Bcast);
//   - monotonicity: per algorithm, more bytes (or more processes) must
//     not be faster (T(P, m) ≾ T(P, 2m), T(P, m) ≾ T(2P, m));
//   - specialized ≾ generic: a collective that does strictly less work
//     must not be slower (Reduce ≾ Allreduce, Gather ≾ Allgather,
//     Scatter ≾ Bcast, ReduceScatter ≾ Allreduce);
//   - algorithm sanity: the algorithm the fitted model selects must be
//     within tolerance of the best measured algorithm.
//
// The checker (Check, Harness) fans a guideline × (P, m) × profile ×
// perturbation grid out over the sweep machinery — warm Runner pools, the
// plan-template cache, memoised measurements shared between guidelines —
// so thousands of configurations verify in seconds, and reports
// violations as structured artifacts. Verdicts are engine-independent:
// the replay/template engines produce measurements bit-identical to the
// scheduler, so the same grid yields the same verdict set on every
// engine and worker count.
package guideline

import (
	"fmt"
	"math"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
)

// Family groups guidelines by the self-consistency law they instantiate.
type Family string

const (
	// FamilyPattern is the pattern-equivalence family: a collective ≾ a
	// composition of collectives implementing it.
	FamilyPattern Family = "pattern"
	// FamilyMonotoneSize: per algorithm, T(P, m) ≾ T(P, m') for m ≤ m'.
	FamilyMonotoneSize Family = "monotone-m"
	// FamilyMonotoneProcs: per algorithm, T(P, m) ≾ T(P', m) for P ≤ P'.
	FamilyMonotoneProcs Family = "monotone-P"
	// FamilySpecialized: a collective doing strictly less work ≾ the
	// generic collective subsuming it.
	FamilySpecialized Family = "specialized"
	// FamilySanity: the model-selected algorithm ≾ every other measured
	// algorithm (within tolerance of the oracle).
	FamilySanity Family = "algorithm-sanity"
)

// Config is one checkable configuration cell: a platform (perturbation
// already composed into the profile), a communicator size, and a total
// message size.
type Config struct {
	// Profile is the platform the check runs on; a perturbed platform
	// carries its perturbation in Profile.Net.Perturb (and its name
	// carries the spec's compact form, see cluster.Profile.Perturbed).
	Profile cluster.Profile
	// Procs is the communicator size P.
	Procs int
	// MsgBytes is the total message size m in bytes. Block collectives
	// (scatter, gather, allgather, alltoall, reduce-scatter) divide it
	// into P blocks, so their recipes require P | m.
	MsgBytes int
}

// Quiet reports whether the configuration's platform is unperturbed.
func (c Config) Quiet() bool { return c.Profile.Net.Perturb.Empty() }

func (c Config) String() string {
	return fmt.Sprintf("%s P=%d m=%d", c.Profile.Name, c.Procs, c.MsgBytes)
}

// Recipe measures one side of a guideline at a configuration. Recipes are
// built from the package's measurement atoms (single collectives,
// compositions, minima over algorithm sets) and run inside an Env — a
// warm Runner, the platform's plan-template store, and a per-platform
// measurement memo shared by every guideline of the run.
type Recipe struct {
	// Name labels the recipe in reports ("min(bcast)", "scatter+allgather").
	Name string
	// OK, if non-nil, restricts the recipe's applicability (block
	// divisibility, communicator bounds). A guideline applies to a
	// configuration only when both sides' OK accept it.
	OK func(cfg Config) bool
	// Measure produces the recipe's measurement at cfg.
	Measure func(env *Env, cfg Config) (experiment.Measurement, error)
}

// Guideline is one declarative performance law: Left ≾ Right within
// Tolerance at every configuration the predicates accept.
type Guideline struct {
	// Name identifies the guideline in reports and metrics
	// ("pattern:bcast<=scatter+allgather").
	Name string
	// Family is the self-consistency family the guideline instantiates.
	Family Family
	// Doc is a one-line statement of the law.
	Doc string
	// Left and Right are the guideline's two measurement recipes; the law
	// is Left ≾ Right.
	Left, Right Recipe
	// Tolerance is the relative slack of the ≾ comparator: the guideline
	// holds when Left ≤ (1+Tolerance)·Right, or when measurement noise
	// makes the ordering unresolvable (see Holds).
	Tolerance float64
	// QuietOnly restricts the guideline to unperturbed platforms —
	// deliberate faults may legitimately break the law (a straggler
	// joining at higher P inverts monotonicity in P, a degraded-link
	// oracle diverges from the quiet-fitted model).
	QuietOnly bool
	// Applies, if non-nil, adds a guideline-level applicability predicate
	// on top of QuietOnly and the recipes' OK predicates.
	Applies func(cfg Config) bool
}

// AppliesTo reports whether the guideline is checkable at cfg: the
// platform admits it, both recipes accept it, and any guideline-level
// predicate passes.
func (g Guideline) AppliesTo(cfg Config) bool {
	if cfg.Procs < 2 || cfg.Procs > cfg.Profile.Nodes || cfg.MsgBytes <= 0 {
		return false
	}
	if g.QuietOnly && !cfg.Quiet() {
		return false
	}
	if g.Applies != nil && !g.Applies(cfg) {
		return false
	}
	if g.Left.OK != nil && !g.Left.OK(cfg) {
		return false
	}
	if g.Right.OK != nil && !g.Right.OK(cfg) {
		return false
	}
	return true
}

// Holds applies the tolerance-aware ≾ comparator: left ≾ right holds
// when left's mean does not exceed right's mean by more than the relative
// tolerance — or, honoring measurement noise, when the two Student-t
// confidence intervals overlap, in which case the ordering is not
// resolvable at the measurements' confidence level and no violation can
// be claimed. A violation therefore requires the whole left interval to
// sit above the tolerance-scaled right interval.
func Holds(left, right experiment.Measurement, tol float64) bool {
	if tol < 0 {
		tol = 0
	}
	if left.Mean <= (1+tol)*right.Mean {
		return true
	}
	return left.Mean-left.CI.HalfWidth <= (1+tol)*(right.Mean+right.CI.HalfWidth)
}

// Ratio is the observed left/right mean ratio reported for a check (∞
// when the right mean is zero).
func Ratio(left, right experiment.Measurement) float64 {
	if right.Mean == 0 {
		if left.Mean == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return left.Mean / right.Mean
}
