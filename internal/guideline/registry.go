package guideline

import (
	"fmt"

	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
)

// Tolerances per family. Pattern equivalences are structurally guaranteed
// (the left minimum contains a program identical to the right
// composition), so their slack only needs to cover floating-point
// summary-statistics jitter. Monotonicity is exact in the simulator's
// deterministic core; its slack covers sampling noise at points where the
// true time difference is tiny. The empirical families (specialized ≾
// generic, algorithm sanity) compare genuinely different programs and get
// honest engineering slack, matching the ~10% / oracle-gap tolerances of
// Hunold & Carpen-Amarie's guideline runs.
const (
	tolPattern     = 0.01
	tolMonotone    = 0.02
	tolSpecialized = 0.10
	tolSanity      = 0.25
)

// Registry returns the full built-in guideline set: every family, every
// applicable collective algorithm. The slice is freshly built per call —
// callers may filter or reorder it freely.
func Registry() []Guideline {
	var gls []Guideline
	gls = append(gls, patternGuidelines()...)
	gls = append(gls, monotoneSizeGuidelines()...)
	gls = append(gls, monotoneProcsGuidelines()...)
	gls = append(gls, specializedGuidelines()...)
	gls = append(gls, sanityGuidelines()...)
	return gls
}

// Invariant returns the guidelines that hold by construction on any
// platform the simulator can express, perturbed or not — the pattern
// equivalences (the left minimum contains the right composition verbatim)
// and monotonicity in m (the same algorithm on the same link set with
// every transfer strictly larger). Monotonicity in P is deliberately NOT
// in this set: an algorithm's link set at P need not embed in its link
// set at 2P (bruck's modular peer pattern, a ring's wrap-around edge), so
// an adversarial perturbation of exactly the links only the smaller
// communicator crosses can legitimately invert it. This is the set
// FuzzGuidelines throws random cluster shapes, perturbations, and (P, m)
// points at.
func Invariant() []Guideline {
	var gls []Guideline
	gls = append(gls, patternGuidelines()...)
	gls = append(gls, monotoneSizeGuidelines()...)
	return gls
}

// Families lists the distinct families in gls, in first-seen order.
func Families(gls []Guideline) []Family {
	seen := make(map[Family]bool)
	var out []Family
	for _, g := range gls {
		if !seen[g.Family] {
			seen[g.Family] = true
			out = append(out, g.Family)
		}
	}
	return out
}

// --- atom sets ----------------------------------------------------------

func bcastAtoms() []atom {
	var out []atom
	for _, alg := range coll.BcastAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("bcast/%v", alg),
			run: func(env *Env, cfg Config) (m experiment.Measurement, err error) {
				return measureBcast(env, cfg, alg, cfg.Profile.SegmentSize)
			},
		})
	}
	for _, v := range []coll.VanDeGeijnVariant{coll.VanDeGeijnRing, coll.VanDeGeijnRecDoubling} {
		v := v
		out = append(out, atom{
			name: fmt.Sprintf("bcast/vdg_%v", v),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureVanDeGeijn(env, cfg, v)
			},
		})
	}
	return out
}

// modelBcastAtoms is the algorithm set the model-based selector chooses
// from: coll.BcastAlgorithms() at the platform segment size, without the
// van de Geijn compositions (the fitted models do not cover them).
func modelBcastAtoms() []atom {
	var out []atom
	for _, alg := range coll.BcastAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("bcast/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureBcast(env, cfg, alg, cfg.Profile.SegmentSize)
			},
		})
	}
	return out
}

func scatterAtoms() []atom {
	var out []atom
	for _, alg := range coll.ScatterAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("scatter/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureScatter(env, cfg, alg)
			},
		})
	}
	return out
}

func gatherAtoms() []atom {
	var out []atom
	for _, alg := range coll.GatherAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("gather/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureGather(env, cfg, alg)
			},
		})
	}
	return out
}

func allgatherAtoms() []atom {
	var out []atom
	for _, alg := range coll.AllgatherAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("allgather/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureAllgather(env, cfg, alg)
			},
		})
	}
	return out
}

func alltoallAtoms() []atom {
	var out []atom
	for _, alg := range coll.AlltoallAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("alltoall/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureAlltoall(env, cfg, alg)
			},
		})
	}
	return out
}

func reduceAtoms() []atom {
	var out []atom
	for _, alg := range coll.ReduceAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("reduce/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureReduce(env, cfg, alg)
			},
		})
	}
	return out
}

func allreduceAtoms() []atom {
	var out []atom
	for _, alg := range coll.AllreduceAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("allreduce/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureAllreduce(env, cfg, alg)
			},
		})
	}
	return out
}

func reduceScatterAtoms() []atom {
	var out []atom
	for _, alg := range coll.ReduceScatterAlgorithms() {
		alg := alg
		out = append(out, atom{
			name: fmt.Sprintf("reducescatter/%v", alg),
			run: func(env *Env, cfg Config) (experiment.Measurement, error) {
				return measureReduceScatter(env, cfg, alg)
			},
		})
	}
	return out
}

// --- family builders ----------------------------------------------------

func patternGuidelines() []Guideline {
	return []Guideline{
		{
			Name:      "pattern:bcast<=scatter+allgather",
			Family:    FamilyPattern,
			Doc:       "the best broadcast must not lose to a binomial scatter followed by a ring allgather of the pieces",
			Left:      bestOf("min(bcast)", nil, bcastAtoms()...),
			Right:     Recipe{Name: "scatter(binomial)+allgather(ring)", Measure: measureScatterAllgather},
			Tolerance: tolPattern,
		},
		{
			Name:      "pattern:allreduce<=reduce+bcast",
			Family:    FamilyPattern,
			Doc:       "the best allreduce must not lose to a binomial reduce followed by a binomial broadcast",
			Left:      bestOf("min(allreduce)", nil, allreduceAtoms()...),
			Right:     Recipe{Name: "reduce(binomial)+bcast(binomial)", Measure: measureReduceThenBcast},
			Tolerance: tolPattern,
		},
		{
			Name:      "pattern:allgather<=gather+bcast",
			Family:    FamilyPattern,
			Doc:       "the best allgather must not lose to a binomial gather followed by a binomial broadcast of the blocks",
			Left:      bestOf("min(allgather)", divisibleBlocks, allgatherAtoms()...),
			Right:     Recipe{Name: "gather(binomial)+bcast(binomial)", OK: divisibleBlocks, Measure: measureGatherThenBcast},
			Tolerance: tolPattern,
		},
	}
}

// Remaps of the monotone families. doubleProcs keeps the message fixed —
// the right statement for the full-vector collectives (bcast, reduce,
// allreduce), where m is every rank's payload. doubleProcsScaled doubles
// the total alongside P so the per-rank block m/P stays constant — the
// right statement for the block collectives (scatter, gather, allgather,
// alltoall, reduce-scatter), matching the literature's "fixed message
// size per process" convention. Holding the *total* fixed instead would
// be a false law: at 2P each block halves, so a platform whose bottleneck
// NIC carries per-block traffic can legitimately finish the larger
// communicator first.
func doubleSize(cfg Config) Config        { cfg.MsgBytes *= 2; return cfg }
func doubleProcs(cfg Config) Config       { cfg.Procs *= 2; return cfg }
func doubleProcsScaled(cfg Config) Config { cfg.Procs *= 2; cfg.MsgBytes *= 2; return cfg }

// monotoneSize expands an atom set into one monotone-m guideline per
// algorithm: T(P, m) ≾ T(P, 2m).
func monotoneSize(atoms []atom, ok func(Config) bool) []Guideline {
	var gls []Guideline
	for _, a := range atoms {
		left := single(a, ok)
		gls = append(gls, Guideline{
			Name:      "monotone-m:" + a.name,
			Family:    FamilyMonotoneSize,
			Doc:       fmt.Sprintf("%s must not get faster when the message doubles", a.name),
			Left:      left,
			Right:     left.at(a.name+"@2m", doubleSize),
			Tolerance: tolMonotone,
		})
	}
	return gls
}

// monotoneProcs expands an atom set into one monotone-P guideline per
// algorithm: T(P, m) ≾ T(2P, remap(m)). The family is quiet-only: a
// deliberate fault on a link only the smaller communicator crosses (a
// ring's wrap-around edge, bruck's modular peers) legitimately inverts
// the law.
func monotoneProcs(atoms []atom, ok func(Config) bool, remap func(Config) Config, suffix string) []Guideline {
	var gls []Guideline
	for _, a := range atoms {
		left := single(a, ok)
		gls = append(gls, Guideline{
			Name:      "monotone-P:" + a.name,
			Family:    FamilyMonotoneProcs,
			Doc:       fmt.Sprintf("%s must not get faster when the communicator doubles", a.name),
			Left:      left,
			Right:     left.at(a.name+suffix, remap),
			Tolerance: tolMonotone,
			QuietOnly: true,
		})
	}
	return gls
}

func monotoneSizeGuidelines() []Guideline {
	var gls []Guideline
	gls = append(gls, monotoneSize(bcastAtoms(), nil)...)
	gls = append(gls, monotoneSize(scatterAtoms(), divisibleBlocks)...)
	gls = append(gls, monotoneSize(gatherAtoms(), divisibleBlocks)...)
	gls = append(gls, monotoneSize(allgatherAtoms(), divisibleBlocks)...)
	gls = append(gls, monotoneSize(alltoallAtoms(), divisibleBlocks)...)
	gls = append(gls, monotoneSize(reduceAtoms(), nil)...)
	gls = append(gls, monotoneSize(allreduceAtoms(), nil)...)
	gls = append(gls, monotoneSize(reduceScatterAtoms(), divisibleBlocks)...)
	return gls
}

// stable filters an atom set down to algorithms whose communication
// structure varies smoothly with P. Algorithms with non-power-of-two
// fallbacks (recursive doubling, split-binary, recursive halving) switch
// to a different program when P crosses a power of two, which can
// legitimately invert monotonicity in P; they are checked for monotone-m
// but excluded here.
func stable(atoms []atom, exclude ...string) []atom {
	drop := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		drop[n] = true
	}
	var out []atom
	for _, a := range atoms {
		if !drop[a.name] {
			out = append(out, a)
		}
	}
	return out
}

func monotoneProcsGuidelines() []Guideline {
	var gls []Guideline
	// Full-vector collectives: the message is every rank's payload and
	// stays fixed as the communicator doubles.
	gls = append(gls, monotoneProcs(
		stable(bcastAtoms(), "bcast/split_binary", "bcast/vdg_scatter_rdb_allgather"),
		nil, doubleProcs, "@2P")...)
	gls = append(gls, monotoneProcs(reduceAtoms(), nil, doubleProcs, "@2P")...)
	gls = append(gls, monotoneProcs(
		stable(allreduceAtoms(), "allreduce/recursive_doubling"),
		nil, doubleProcs, "@2P")...)
	// Block collectives: the per-rank block m/P stays fixed, so the total
	// doubles alongside P (divisibility of the remapped side, 2P | 2m,
	// is equivalent to P | m).
	gls = append(gls, monotoneProcs(scatterAtoms(), divisibleBlocks, doubleProcsScaled, "@2P,2m")...)
	gls = append(gls, monotoneProcs(gatherAtoms(), divisibleBlocks, doubleProcsScaled, "@2P,2m")...)
	gls = append(gls, monotoneProcs(
		stable(allgatherAtoms(), "allgather/recursive_doubling"),
		divisibleBlocks, doubleProcsScaled, "@2P,2m")...)
	gls = append(gls, monotoneProcs(alltoallAtoms(), divisibleBlocks, doubleProcsScaled, "@2P,2m")...)
	gls = append(gls, monotoneProcs(
		stable(reduceScatterAtoms(), "reducescatter/recursive_halving"),
		divisibleBlocks, doubleProcsScaled, "@2P,2m")...)
	return gls
}

// specializedGuidelines compares genuinely different programs, so the
// family is quiet-only: deliberate heavy faults can legitimately reorder
// implementations that stress different links (a degraded path into the
// root slows the rooted collective while the symmetric one routes around
// it).
func specializedGuidelines() []Guideline {
	return []Guideline{
		{
			Name:      "specialized:reduce<=allreduce",
			Family:    FamilySpecialized,
			Doc:       "a rooted reduce does strictly less work than an allreduce and must not be slower",
			Left:      bestOf("min(reduce)", nil, reduceAtoms()...),
			Right:     bestOf("min(allreduce)", nil, allreduceAtoms()...),
			Tolerance: tolSpecialized,
			QuietOnly: true,
		},
		{
			Name:      "specialized:gather<=allgather",
			Family:    FamilySpecialized,
			Doc:       "a rooted gather does strictly less work than an allgather and must not be slower",
			Left:      bestOf("min(gather)", divisibleBlocks, gatherAtoms()...),
			Right:     bestOf("min(allgather)", divisibleBlocks, allgatherAtoms()...),
			Tolerance: tolSpecialized,
			QuietOnly: true,
		},
		{
			Name:      "specialized:scatter<=bcast",
			Family:    FamilySpecialized,
			Doc:       "scattering P blocks moves a fraction of a broadcast's bytes and must not be slower",
			Left:      bestOf("min(scatter)", divisibleBlocks, scatterAtoms()...),
			Right:     bestOf("min(bcast)", nil, bcastAtoms()...),
			Tolerance: tolSpecialized,
			QuietOnly: true,
		},
		{
			Name:      "specialized:reducescatter<=allreduce",
			Family:    FamilySpecialized,
			Doc:       "a reduce-scatter is an allreduce minus the allgather phase and must not be slower",
			Left:      bestOf("min(reducescatter)", divisibleBlocks, reduceScatterAtoms()...),
			Right:     bestOf("min(allreduce)", nil, allreduceAtoms()...),
			Tolerance: tolSpecialized,
			QuietOnly: true,
		},
	}
}

func sanityGuidelines() []Guideline {
	return []Guideline{
		{
			Name:   "algorithm-sanity:model-selected-bcast",
			Family: FamilySanity,
			Doc:    "the broadcast algorithm the fitted model selects must be within tolerance of the measured best",
			Left: Recipe{
				Name: "selected(bcast)",
				Measure: func(env *Env, cfg Config) (experiment.Measurement, error) {
					sel, err := env.Selector()
					if err != nil {
						return experiment.Measurement{}, err
					}
					ch, err := sel.Select(cfg.Procs, cfg.MsgBytes)
					if err != nil {
						return experiment.Measurement{}, err
					}
					return measureBcast(env, cfg, ch.Alg, ch.SegSize)
				},
			},
			Right:     bestOf("min(bcast@model-segsize)", nil, modelBcastAtoms()...),
			Tolerance: tolSanity,
			QuietOnly: true,
		},
	}
}
