package guideline

import (
	"fmt"
	"sync"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/selection"
)

// platform is the state one checked platform shares across every worker
// and guideline of a run: the plan-template store feeding the replay fast
// path, the measurement memo (each distinct recipe atom is measured once
// per platform no matter how many guidelines reference it), and the
// lazily fitted model-based selector for the algorithm-sanity family.
type platform struct {
	pr   cluster.Profile
	set  experiment.Settings
	tmpl *mpi.TemplateStore
	memo sync.Map // string -> *memoEntry

	selOnce sync.Once
	sel     selection.ModelBased
	selErr  error
	fitSel  func() (selection.ModelBased, error)
}

type memoEntry struct {
	once sync.Once
	meas experiment.Measurement
	err  error
}

// Env is the execution environment a Recipe measures in: one worker's
// warm Runner plus the platform state shared by all workers. Measurements
// are deterministic per (platform, program, settings) — which worker's
// Runner computes a memo entry never changes the result.
type Env struct {
	// Runner is this worker's Runner for the platform.
	Runner *mpi.Runner

	plat *platform
}

// NewEnv builds a standalone single-worker environment for pr — the way
// tests and one-off recipe evaluations measure without a Harness. The
// template store may be nil (every measurement then captures its own
// plan).
func NewEnv(pr cluster.Profile, set experiment.Settings, r *mpi.Runner, tmpl *mpi.TemplateStore) *Env {
	return &Env{Runner: r, plat: &platform{pr: pr, set: set, tmpl: tmpl}}
}

// Measure runs the composed stages at nprocs on the environment's
// platform in Completion mode, memoised under key: the first caller of a
// key computes (single-flight), everyone else gets the cached
// measurement. classKey, when non-empty, names the composition's
// plan-template structure class (see experiment.MeasureComposedClass).
func (e *Env) Measure(key, classKey string, nprocs int, stages ...experiment.Op) (experiment.Measurement, error) {
	v, _ := e.plat.memo.LoadOrStore(key, &memoEntry{})
	ent := v.(*memoEntry)
	ent.once.Do(func() {
		ent.meas, ent.err = experiment.MeasureComposedClass(
			e.Runner, e.plat.pr, nprocs, e.plat.set, experiment.Completion, classKey, e.plat.tmpl, stages...)
	})
	return ent.meas, ent.err
}

// Selector returns the platform's fitted model-based broadcast selector,
// fitting it on first use (single-flight). It errors when the harness did
// not arm model fitting for this platform — the algorithm-sanity family
// is then inapplicable.
func (e *Env) Selector() (selection.ModelBased, error) {
	if e.plat.fitSel == nil {
		return selection.ModelBased{}, fmt.Errorf("guideline: no fitted models for %s (algorithm-sanity needs a Harness with sanity guidelines armed)", e.plat.pr.Name)
	}
	e.plat.selOnce.Do(func() { e.plat.sel, e.plat.selErr = e.plat.fitSel() })
	return e.plat.sel, e.plat.selErr
}

// --- measurement atoms -------------------------------------------------
//
// Each atom measures one collective algorithm at a configuration, in
// Completion mode with synthetic messages, memoised per platform. Block
// collectives interpret cfg.MsgBytes as the total buffer (block size
// m/P), matching the guideline literature's convention that both sides of
// a comparison move the same total payload. Class keys encode the
// communication structure only — algorithm, P, and segment count where
// segmented — never raw byte counts, which the template rebind harvests
// per point; a too-coarse key only costs a capture fallback, it cannot
// change results.

func measureBcast(env *Env, cfg Config, alg coll.BcastAlgorithm, segSize int) (experiment.Measurement, error) {
	m := cfg.MsgBytes
	key := fmt.Sprintf("bcast/%v/seg=%d/P=%d/m=%d", alg, segSize, cfg.Procs, m)
	class := coll.BcastClassKey(alg, cfg.Procs, m, segSize)
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		coll.Bcast(p, alg, 0, coll.Synthetic(m), segSize)
	})
}

func measureVanDeGeijn(env *Env, cfg Config, variant coll.VanDeGeijnVariant) (experiment.Measurement, error) {
	m := cfg.MsgBytes
	key := fmt.Sprintf("bcast/vdg_%v/P=%d/m=%d", variant, cfg.Procs, m)
	class := fmt.Sprintf("guideline/vdg/%v/P=%d", variant, cfg.Procs)
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		coll.BcastVanDeGeijn(p, variant, 0, coll.Synthetic(m))
	})
}

func measureScatter(env *Env, cfg Config, alg coll.ScatterAlgorithm) (experiment.Measurement, error) {
	m, bs := cfg.MsgBytes, cfg.MsgBytes/cfg.Procs
	key := fmt.Sprintf("scatter/%v/P=%d/m=%d", alg, cfg.Procs, m)
	class := fmt.Sprintf("guideline/scatter/%v/P=%d", alg, cfg.Procs)
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			coll.Scatter(p, alg, 0, coll.Synthetic(m), bs)
		} else {
			coll.Scatter(p, alg, 0, coll.Synthetic(bs), bs)
		}
	})
}

func measureGather(env *Env, cfg Config, alg coll.GatherAlgorithm) (experiment.Measurement, error) {
	m, bs := cfg.MsgBytes, cfg.MsgBytes/cfg.Procs
	key := fmt.Sprintf("gather/%v/P=%d/m=%d", alg, cfg.Procs, m)
	class := fmt.Sprintf("guideline/gather/%v/P=%d", alg, cfg.Procs)
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			coll.Gather(p, alg, 0, coll.Synthetic(m), bs)
		} else {
			coll.Gather(p, alg, 0, coll.Synthetic(bs), bs)
		}
	})
}

func measureAllgather(env *Env, cfg Config, alg coll.AllgatherAlgorithm) (experiment.Measurement, error) {
	m, bs := cfg.MsgBytes, cfg.MsgBytes/cfg.Procs
	key := fmt.Sprintf("allgather/%v/P=%d/m=%d", alg, cfg.Procs, m)
	class := fmt.Sprintf("guideline/allgather/%v/P=%d", alg, cfg.Procs)
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		coll.Allgather(p, alg, coll.Synthetic(m), bs)
	})
}

func measureAlltoall(env *Env, cfg Config, alg coll.AlltoallAlgorithm) (experiment.Measurement, error) {
	m, bs := cfg.MsgBytes, cfg.MsgBytes/cfg.Procs
	key := fmt.Sprintf("alltoall/%v/P=%d/m=%d", alg, cfg.Procs, m)
	class := fmt.Sprintf("guideline/alltoall/%v/P=%d", alg, cfg.Procs)
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		coll.Alltoall(p, alg, coll.Synthetic(m), coll.Synthetic(m), bs)
	})
}

func measureReduce(env *Env, cfg Config, alg coll.ReduceAlgorithm) (experiment.Measurement, error) {
	m, seg := cfg.MsgBytes, cfg.Profile.SegmentSize
	key := fmt.Sprintf("reduce/%v/seg=%d/P=%d/m=%d", alg, seg, cfg.Procs, m)
	class := fmt.Sprintf("guideline/reduce/%v/P=%d/segs=%d", alg, cfg.Procs, coll.NumSegments(m, seg))
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		coll.Reduce(p, alg, 0, coll.Synthetic(m), nil, seg)
	})
}

func measureAllreduce(env *Env, cfg Config, alg coll.AllreduceAlgorithm) (experiment.Measurement, error) {
	m, seg := cfg.MsgBytes, cfg.Profile.SegmentSize
	key := fmt.Sprintf("allreduce/%v/seg=%d/P=%d/m=%d", alg, seg, cfg.Procs, m)
	class := fmt.Sprintf("guideline/allreduce/%v/P=%d/segs=%d", alg, cfg.Procs, coll.NumSegments(m, seg))
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		coll.Allreduce(p, alg, coll.Synthetic(m), nil, seg)
	})
}

func measureReduceScatter(env *Env, cfg Config, alg coll.ReduceScatterAlgorithm) (experiment.Measurement, error) {
	m, bs := cfg.MsgBytes, cfg.MsgBytes/cfg.Procs
	key := fmt.Sprintf("reducescatter/%v/P=%d/m=%d", alg, cfg.Procs, m)
	class := fmt.Sprintf("guideline/reducescatter/%v/P=%d", alg, cfg.Procs)
	return env.Measure(key, class, cfg.Procs, func(p *mpi.Proc) {
		coll.ReduceScatter(p, alg, coll.Synthetic(m), nil, bs)
	})
}

// --- composed right-hand sides -----------------------------------------
//
// The pattern-equivalence compositions replicate, stage for stage and
// byte for byte, the library's own composed algorithms
// (coll.BcastVanDeGeijn ≡ scatter+allgather, coll.AllreduceReduceBcast ≡
// reduce+bcast, coll.AllgatherGatherBcast ≡ gather+bcast). That identity
// is what makes the pattern guidelines mechanically sound on every
// platform, perturbed or not: the left side minimises over a set that
// contains a program with the exact same event schedule as the right
// side, so min(left) ≤ right holds by construction and a violation can
// only ever signal a harness or simulator defect.

func measureScatterAllgather(env *Env, cfg Config) (experiment.Measurement, error) {
	P, m := cfg.Procs, cfg.MsgBytes
	bs := (m + P - 1) / P
	padded := P * bs
	key := fmt.Sprintf("composed/scatter+allgather/P=%d/m=%d", P, m)
	class := fmt.Sprintf("guideline/composed/scatter+allgather/P=%d", P)
	return env.Measure(key, class, P,
		func(p *mpi.Proc) {
			if p.Rank() == 0 {
				coll.Scatter(p, coll.ScatterBinomial, 0, coll.Synthetic(padded), bs)
			} else {
				coll.Scatter(p, coll.ScatterBinomial, 0, coll.Synthetic(bs), bs)
			}
		},
		func(p *mpi.Proc) {
			coll.Allgather(p, coll.AllgatherRing, coll.Synthetic(padded), bs)
		})
}

func measureReduceThenBcast(env *Env, cfg Config) (experiment.Measurement, error) {
	P, m, seg := cfg.Procs, cfg.MsgBytes, cfg.Profile.SegmentSize
	key := fmt.Sprintf("composed/reduce+bcast/seg=%d/P=%d/m=%d", seg, P, m)
	class := fmt.Sprintf("guideline/composed/reduce+bcast/P=%d/segs=%d", P, coll.NumSegments(m, seg))
	return env.Measure(key, class, P,
		func(p *mpi.Proc) {
			coll.Reduce(p, coll.ReduceBinomial, 0, coll.Synthetic(m), nil, seg)
		},
		func(p *mpi.Proc) {
			coll.Bcast(p, coll.BcastBinomial, 0, coll.Synthetic(m), seg)
		})
}

func measureGatherThenBcast(env *Env, cfg Config) (experiment.Measurement, error) {
	P, m := cfg.Procs, cfg.MsgBytes
	bs := m / P
	key := fmt.Sprintf("composed/gather+bcast/P=%d/m=%d", P, m)
	class := fmt.Sprintf("guideline/composed/gather+bcast/P=%d", P)
	return env.Measure(key, class, P,
		func(p *mpi.Proc) {
			if p.Rank() == 0 {
				coll.Gather(p, coll.GatherBinomial, 0, coll.Synthetic(m), bs)
			} else {
				coll.Gather(p, coll.GatherBinomial, 0, coll.Synthetic(bs), bs)
			}
		},
		func(p *mpi.Proc) {
			coll.Bcast(p, coll.BcastBinomial, 0, coll.Synthetic(m), bs)
		})
}

// --- recipe combinators -------------------------------------------------

// atom is one measurable program variant inside a min-over-algorithms
// recipe.
type atom struct {
	name string
	run  func(env *Env, cfg Config) (experiment.Measurement, error)
}

// bestOf builds the min-over-algorithms recipe: measure every atom and
// return the fastest. The measured minimum is the "library does its best"
// left side of pattern and specialized guidelines.
func bestOf(name string, ok func(Config) bool, atoms ...atom) Recipe {
	return Recipe{
		Name: name,
		OK:   ok,
		Measure: func(env *Env, cfg Config) (experiment.Measurement, error) {
			var best experiment.Measurement
			for i, a := range atoms {
				meas, err := a.run(env, cfg)
				if err != nil {
					return experiment.Measurement{}, fmt.Errorf("%s: %w", a.name, err)
				}
				if i == 0 || meas.Mean < best.Mean {
					best = meas
				}
			}
			return best, nil
		},
	}
}

// single wraps one atom as a recipe.
func single(a atom, ok func(Config) bool) Recipe {
	return Recipe{Name: a.name, OK: ok, Measure: a.run}
}

// at rewrites the configuration a recipe measures at — the derived side of
// the monotonicity guidelines (same platform, scaled m or P).
func (r Recipe) at(name string, remap func(Config) Config) Recipe {
	return Recipe{
		Name: name,
		OK: func(cfg Config) bool {
			cfg2 := remap(cfg)
			if cfg2.Procs < 2 || cfg2.Procs > cfg2.Profile.Nodes || cfg2.MsgBytes <= 0 {
				return false
			}
			return r.OK == nil || r.OK(cfg2)
		},
		Measure: func(env *Env, cfg Config) (experiment.Measurement, error) {
			return r.Measure(env, remap(cfg))
		},
	}
}

// divisibleBlocks accepts configurations whose total message splits into
// P equal blocks — the applicability domain of the block collectives.
func divisibleBlocks(cfg Config) bool { return cfg.MsgBytes%cfg.Procs == 0 }
