package perturb

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestParseNone(t *testing.T) {
	for _, text := range []string{"", "none", "  none  "} {
		spec, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if spec != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", text, spec)
		}
		if !spec.Empty() || !spec.TimeInvariant() || spec.Validate(4) != nil {
			t.Fatalf("nil spec must be empty, time-invariant and valid")
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"straggler:node=3,cpu=1.5,nic=2",
		"straggler:node=0,cpu=1,nic=1",
		"link:src=0,dst=5,lat=3,bw=4",
		"brownout:src=0,dst=1,start=0.001,end=0.002,bw=50",
		"jitter:pareto,alpha=1.5",
		"jitter:exponential",
		"straggler:node=1,cpu=2,nic=1;link:src=2,dst=3,lat=1,bw=2;jitter:pareto,alpha=2",
	}
	for _, text := range specs {
		spec, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", text, spec.String(), err)
		}
		if spec.String() != again.String() {
			t.Fatalf("round trip of %q: %q != %q", text, spec.String(), again.String())
		}
	}
}

// TestParseJitterClause is the regression test for the jitter clause's
// grammar: it leads with a bare distribution name, not a key=value pair.
func TestParseJitterClause(t *testing.T) {
	cases := []struct {
		text  string
		dist  JitterDist
		alpha float64
	}{
		{"jitter:uniform", JitterUniform, 0},
		{"jitter:exponential", JitterExponential, 0},
		{"jitter:pareto", JitterPareto, 0},
		{"jitter:pareto,alpha=1.5", JitterPareto, 1.5},
		{"jitter: pareto , alpha=2", JitterPareto, 2},
	}
	for _, c := range cases {
		spec, err := Parse(c.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.text, err)
		}
		if spec.Jitter != c.dist || spec.ParetoAlpha != c.alpha {
			t.Fatalf("Parse(%q) = dist %v alpha %v, want %v %v",
				c.text, spec.Jitter, spec.ParetoAlpha, c.dist, c.alpha)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"straggler:cpu=2",               // missing node
		"straggler:node=1,turbo=2",      // unknown key
		"straggler:node=x",              // not an integer
		"link:src=0",                    // missing dst
		"link:src=0,dst=1,bw",           // not key=value
		"brownout:src=0,start=0,end=1",  // missing dst
		"jitter:gaussian",               // unknown distribution
		"jitter:pareto,tail=2",          // unknown key
		"meteor:strike=1",               // unknown clause kind
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q): expected error", text)
		}
	}
}

func TestValidate(t *testing.T) {
	valid := &Spec{
		Stragglers: []Straggler{{Node: 3, Compute: 1.5, NIC: 2}},
		Links:      []LinkRule{{Src: 0, Dst: 1, Latency: 2, Bandwidth: 3}},
		Brownouts:  []Brownout{{Src: 1, Dst: 0, Start: 0, End: 1e-3, Bandwidth: 10}},
		Jitter:     JitterPareto,
	}
	if err := valid.Validate(4); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []*Spec{
		{Stragglers: []Straggler{{Node: 4}}},                                    // node out of range
		{Stragglers: []Straggler{{Node: 0, Compute: -1}}},                       // negative factor
		{Stragglers: []Straggler{{Node: 0, NIC: math.NaN()}}},                   // NaN factor
		{Links: []LinkRule{{Src: 0, Dst: 4}}},                                   // dst out of range
		{Links: []LinkRule{{Src: 2, Dst: 2}}},                                   // self-link
		{Links: []LinkRule{{Src: 0, Dst: 1, Bandwidth: math.Inf(1)}}},           // infinite factor
		{Brownouts: []Brownout{{Src: 0, Dst: 1, Start: 1, End: 1, Bandwidth: 2}}}, // empty window
		{Brownouts: []Brownout{{Src: 0, Dst: 1, Start: -1, End: 1, Bandwidth: 2}}}, // negative start
		{Brownouts: []Brownout{{Src: 0, Dst: 1, Start: 0, End: 1}}},             // zero bandwidth factor
		{Jitter: JitterDist(9)},                                                 // unknown distribution
		{ParetoAlpha: -1},                                                       // negative alpha
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestTimeInvariant(t *testing.T) {
	ti := &Spec{Stragglers: []Straggler{{Node: 0, NIC: 2}}, Jitter: JitterPareto}
	if !ti.TimeInvariant() {
		t.Fatal("straggler+jitter spec must be time-invariant")
	}
	tv := &Spec{Brownouts: []Brownout{{Src: 0, Dst: 1, Start: 0, End: 1, Bandwidth: 2}}}
	if tv.TimeInvariant() {
		t.Fatal("brownout spec must not be time-invariant")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, 0.6, 32)
	b := Random(7, 0.6, 32)
	if a == nil || b == nil {
		t.Fatal("Random returned nil for positive intensity")
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if Random(8, 0.6, 32).String() == a.String() {
		t.Fatal("different seeds produced the same spec")
	}
	if !a.TimeInvariant() {
		t.Fatal("Random specs must be brownout-free (replay-safe)")
	}
	if err := a.Validate(32); err != nil {
		t.Fatalf("Random spec invalid: %v", err)
	}
}

func TestRandomEdgeCases(t *testing.T) {
	if Random(1, 0, 32) != nil {
		t.Fatal("intensity 0 must yield nil")
	}
	if Random(1, -1, 32) != nil {
		t.Fatal("negative intensity must yield nil")
	}
	if Random(1, 0.5, 1) != nil {
		t.Fatal("single-node cluster must yield nil")
	}
	// Intensity above 1 clamps rather than exploding.
	s := Random(1, 5, 8)
	if s == nil {
		t.Fatal("clamped intensity must still perturb")
	}
	if err := s.Validate(8); err != nil {
		t.Fatal(err)
	}
	// Heavy intensity switches to a Pareto tail.
	if s.Jitter != JitterPareto {
		t.Fatalf("intensity 1 jitter = %v, want pareto", s.Jitter)
	}
}

func TestJitterFactor(t *testing.T) {
	const amp = 0.03
	// Uniform is bit-identical to the legacy 1 + amplitude·u expression.
	for _, u := range []float64{0, 0.25, 0.5, 0.999} {
		if got, want := JitterUniform.Factor(amp, 0, u), 1+amp*u; got != want {
			t.Fatalf("uniform Factor(%v) = %x, want %x", u, got, want)
		}
	}
	// Every distribution maps u=0 to exactly 1 (no slowdown) and is
	// non-decreasing in u.
	for _, d := range []JitterDist{JitterUniform, JitterExponential, JitterPareto} {
		if f := d.Factor(amp, 2, 0); f != 1 {
			t.Fatalf("%v Factor(0) = %v, want 1", d, f)
		}
		prev := 0.0
		for u := 0.0; u < 1; u += 0.01 {
			f := d.Factor(amp, 2, u)
			if f < prev {
				t.Fatalf("%v not monotone at u=%v", d, u)
			}
			if f < 1 || math.IsNaN(f) {
				t.Fatalf("%v Factor(%v) = %v out of range", d, u, f)
			}
			prev = f
		}
	}
	// Pareto's tail is heavier than exponential's, which is heavier than
	// uniform's bounded one.
	u := 0.999
	if !(JitterPareto.Factor(amp, 1.5, u) > JitterExponential.Factor(amp, 0, u)) ||
		!(JitterExponential.Factor(amp, 0, u) > JitterUniform.Factor(amp, 0, u)) {
		t.Fatal("tail ordering violated")
	}
	// Alpha below 1 clamps to 1 instead of diverging harder.
	if JitterPareto.Factor(amp, 0.5, 0.9) != JitterPareto.Factor(amp, 1, 0.9) {
		t.Fatal("alpha < 1 must clamp to 1")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	// Specs are part of measurement-cache keys; they must serialise
	// faithfully, and the empty spec must serialise compactly.
	spec, err := Parse("straggler:node=1,cpu=2,nic=3;brownout:src=0,dst=1,start=0,end=0.5,bw=9;jitter:pareto,alpha=1.75")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != spec.String() {
		t.Fatalf("JSON round trip: %q != %q", back.String(), spec.String())
	}
	if blob, _ := json.Marshal(&Spec{}); string(blob) != "{}" {
		t.Fatalf("empty spec serialises to %s, want {}", blob)
	}
}

func TestStringEmpty(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.String() != "none" || (&Spec{}).String() != "none" {
		t.Fatal("empty specs must render as \"none\"")
	}
	if s, _ := Parse("jitter:pareto,alpha=1.5"); !strings.Contains(s.String(), "pareto") {
		t.Fatal("pareto jitter must appear in String()")
	}
}
