// Package perturb describes deterministic, seed-reproducible fault and
// perturbation scenarios that compose onto a simnet cluster. The paper's
// selector is validated on a quiet, homogeneous platform; this package
// opens the "imperfect cluster" scenario family — stragglers, degraded
// links, transient brownouts, heavy-tailed jitter — so that selection
// quality can be stress-tested under exactly the platform shifts that make
// hard-coded decision functions mis-rank algorithms.
//
// A Spec is pure data: it never draws randomness of its own at simulation
// time. Random builds a spec from a seed and an intensity knob, and the
// same (seed, intensity, node count) always yields the same spec, so
// perturbed experiments are as reproducible as unperturbed ones. All
// perturbations except brownouts are time-invariant: the effective link
// parameters do not depend on virtual time, which is what lets the
// plan-replay measurement engine re-time perturbed repetitions. Brownouts
// are time-windowed and force the scheduler engine (the measurement
// harness falls back automatically and reports why).
//
// The package is a leaf: simnet imports it, never the reverse.
package perturb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// JitterDist selects the distribution of the multiplicative transmission
// jitter (1+ε). All distributions consume exactly one uniform draw per
// noisy transfer, so the scheduler and replay engines stay in lockstep on
// the noise stream regardless of the distribution.
type JitterDist int

const (
	// JitterUniform is the default: ε uniform on [0, amplitude], the
	// model the unperturbed simulator has always used.
	JitterUniform JitterDist = iota
	// JitterExponential draws ε = amplitude·Exp(1): light tail, but
	// unbounded — occasional transfers are much slower than the mean.
	JitterExponential
	// JitterPareto draws ε = amplitude·(Pareto(α)-1): a heavy tail whose
	// index α (ParetoAlpha) controls how extreme the stragglers are;
	// α ≤ 2 has infinite variance. This models the OS/switch interference
	// bursts that dominate collective tuning noise in practice.
	JitterPareto
)

// String names the distribution as Parse accepts it.
func (d JitterDist) String() string {
	switch d {
	case JitterUniform:
		return "uniform"
	case JitterExponential:
		return "exponential"
	case JitterPareto:
		return "pareto"
	}
	return fmt.Sprintf("JitterDist(%d)", int(d))
}

// Factor maps one uniform draw u ∈ [0,1) to the multiplicative (1+ε)
// transmission-time factor. For JitterUniform this is exactly the
// 1 + amplitude·u of the unperturbed simulator, bit for bit; the other
// distributions transform the same draw, so one transfer always consumes
// one stream position. alpha is the Pareto tail index (ParetoAlpha; values
// below 1 are clamped to 1).
func (d JitterDist) Factor(amplitude, alpha, u float64) float64 {
	switch d {
	case JitterExponential:
		return 1 + amplitude*(-math.Log(1-u))
	case JitterPareto:
		if alpha < 1 {
			alpha = 1
		}
		return 1 + amplitude*(math.Pow(1-u, -1/alpha)-1)
	default:
		return 1 + amplitude*u
	}
}

// Straggler slows one physical node down. Factors are multiplicative time
// scalings (≥ 1 slows the node; a zero field means "unperturbed").
type Straggler struct {
	// Node is the physical node (NIC index) affected.
	Node int
	// Compute scales the node's CPU overheads (send/receive overhead).
	Compute float64
	// NIC scales the node's per-byte port times in both directions (its
	// injection and drain bandwidth both drop by this factor).
	NIC float64
}

// LinkRule degrades one directed NIC-pair link. Factors are multiplicative
// time scalings (≥ 1 degrades; zero means "unperturbed").
type LinkRule struct {
	// Src and Dst are physical node (NIC) indices; the rule applies to
	// transfers from Src to Dst only. Add the mirrored rule for a
	// symmetric degradation.
	Src, Dst int
	// Latency scales the wire latency of the link.
	Latency float64
	// Bandwidth scales the per-byte transfer time of the link (a factor of
	// 4 means the link runs at a quarter of its bandwidth).
	Bandwidth float64
}

// Brownout is a transient, time-windowed bandwidth collapse on one
// directed link: transfers whose transmission starts in [Start, End) have
// their per-byte time scaled by Bandwidth. Brownouts are the only
// time-varying perturbation and therefore force the scheduler measurement
// engine (replay cannot re-time them, because which repetitions fall in
// the window depends on the timing being recomputed).
type Brownout struct {
	Src, Dst   int
	Start, End float64 // virtual-time window, seconds
	Bandwidth  float64 // per-byte time scaling during the window
}

// Spec is a complete perturbation scenario. The zero value (and nil) is
// the unperturbed platform. Specs are pure data and safe to share; they
// serialise to JSON, which makes them part of measurement-cache keys.
type Spec struct {
	Stragglers []Straggler `json:",omitempty"`
	Links      []LinkRule  `json:",omitempty"`
	Brownouts  []Brownout  `json:",omitempty"`
	// Jitter selects the transmission-jitter distribution; the amplitude
	// stays the platform's NoiseAmplitude.
	Jitter JitterDist `json:",omitempty"`
	// ParetoAlpha is the tail index of JitterPareto (default 2 when zero).
	ParetoAlpha float64 `json:",omitempty"`
}

// Empty reports whether the spec perturbs nothing at all.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.Stragglers) == 0 && len(s.Links) == 0 &&
		len(s.Brownouts) == 0 && s.Jitter == JitterUniform)
}

// TimeInvariant reports whether every perturbation in the spec is
// independent of virtual time. Time-invariant specs can be re-timed by the
// plan-replay measurement engine; specs with brownouts cannot and fall
// back to the scheduler.
func (s *Spec) TimeInvariant() bool {
	return s == nil || len(s.Brownouts) == 0
}

// factorValid reports whether a perturbation factor field is usable: zero
// (meaning "leave unperturbed") or strictly positive.
func factorValid(f float64) bool {
	return f == 0 || (f > 0 && !math.IsInf(f, 1) && !math.IsNaN(f))
}

// Validate checks the spec against a cluster of nics physical nodes.
func (s *Spec) Validate(nics int) error {
	if s == nil {
		return nil
	}
	for _, st := range s.Stragglers {
		if st.Node < 0 || st.Node >= nics {
			return fmt.Errorf("perturb: straggler node %d outside 0..%d", st.Node, nics-1)
		}
		if !factorValid(st.Compute) || !factorValid(st.NIC) {
			return fmt.Errorf("perturb: straggler node %d: factors must be positive (compute=%v nic=%v)", st.Node, st.Compute, st.NIC)
		}
	}
	for _, l := range s.Links {
		if l.Src < 0 || l.Src >= nics || l.Dst < 0 || l.Dst >= nics {
			return fmt.Errorf("perturb: link %d->%d outside 0..%d", l.Src, l.Dst, nics-1)
		}
		if l.Src == l.Dst {
			return fmt.Errorf("perturb: link rule on self-link %d", l.Src)
		}
		if !factorValid(l.Latency) || !factorValid(l.Bandwidth) {
			return fmt.Errorf("perturb: link %d->%d: factors must be positive (latency=%v bandwidth=%v)", l.Src, l.Dst, l.Latency, l.Bandwidth)
		}
	}
	for _, b := range s.Brownouts {
		if b.Src < 0 || b.Src >= nics || b.Dst < 0 || b.Dst >= nics {
			return fmt.Errorf("perturb: brownout %d->%d outside 0..%d", b.Src, b.Dst, nics-1)
		}
		if b.Src == b.Dst {
			return fmt.Errorf("perturb: brownout on self-link %d", b.Src)
		}
		if !(b.End > b.Start) || b.Start < 0 {
			return fmt.Errorf("perturb: brownout %d->%d window [%v, %v) is empty or negative", b.Src, b.Dst, b.Start, b.End)
		}
		if b.Bandwidth <= 0 || math.IsInf(b.Bandwidth, 1) || math.IsNaN(b.Bandwidth) {
			return fmt.Errorf("perturb: brownout %d->%d: bandwidth factor %v must be positive", b.Src, b.Dst, b.Bandwidth)
		}
	}
	if s.Jitter < JitterUniform || s.Jitter > JitterPareto {
		return fmt.Errorf("perturb: unknown jitter distribution %d", int(s.Jitter))
	}
	if s.ParetoAlpha < 0 || math.IsNaN(s.ParetoAlpha) {
		return fmt.Errorf("perturb: negative Pareto alpha %v", s.ParetoAlpha)
	}
	return nil
}

// String renders the spec in the compact form Parse accepts.
func (s *Spec) String() string {
	if s.Empty() {
		return "none"
	}
	var parts []string
	for _, st := range s.Stragglers {
		parts = append(parts, fmt.Sprintf("straggler:node=%d,cpu=%g,nic=%g", st.Node, orOne(st.Compute), orOne(st.NIC)))
	}
	for _, l := range s.Links {
		parts = append(parts, fmt.Sprintf("link:src=%d,dst=%d,lat=%g,bw=%g", l.Src, l.Dst, orOne(l.Latency), orOne(l.Bandwidth)))
	}
	for _, b := range s.Brownouts {
		parts = append(parts, fmt.Sprintf("brownout:src=%d,dst=%d,start=%g,end=%g,bw=%g", b.Src, b.Dst, b.Start, b.End, b.Bandwidth))
	}
	if s.Jitter != JitterUniform {
		j := "jitter:" + s.Jitter.String()
		if s.Jitter == JitterPareto && s.ParetoAlpha > 0 {
			j += fmt.Sprintf(",alpha=%g", s.ParetoAlpha)
		}
		parts = append(parts, j)
	}
	return strings.Join(parts, ";")
}

func orOne(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

// Parse reads the compact spec syntax used by command-line flags:
// semicolon-separated clauses, each "kind:key=value,key=value,...".
//
//	straggler:node=3,cpu=1.5,nic=2
//	link:src=0,dst=5,lat=3,bw=4
//	brownout:src=0,dst=1,start=0.001,end=0.002,bw=50
//	jitter:pareto,alpha=1.5
//
// "none" (or the empty string) parses to nil, the unperturbed platform.
// Factors default to 1 when omitted. The result is structurally validated
// except for node ranges, which need the cluster size (Spec.Validate).
func Parse(text string) (*Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return nil, nil
	}
	spec := &Spec{}
	for _, clause := range strings.Split(text, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, _ := strings.Cut(clause, ":")
		var kv kvSet
		if kind != "jitter" { // jitter leads with a bare distribution name
			var err error
			if kv, err = parseKV(rest); err != nil {
				return nil, fmt.Errorf("perturb: clause %q: %w", clause, err)
			}
		}
		switch kind {
		case "straggler":
			st := Straggler{Node: -1}
			if err := kv.take(map[string]any{"node": &st.Node, "cpu": &st.Compute, "nic": &st.NIC}); err != nil {
				return nil, fmt.Errorf("perturb: clause %q: %w", clause, err)
			}
			if st.Node < 0 {
				return nil, fmt.Errorf("perturb: clause %q: missing node", clause)
			}
			spec.Stragglers = append(spec.Stragglers, st)
		case "link":
			l := LinkRule{Src: -1, Dst: -1}
			if err := kv.take(map[string]any{"src": &l.Src, "dst": &l.Dst, "lat": &l.Latency, "bw": &l.Bandwidth}); err != nil {
				return nil, fmt.Errorf("perturb: clause %q: %w", clause, err)
			}
			if l.Src < 0 || l.Dst < 0 {
				return nil, fmt.Errorf("perturb: clause %q: missing src or dst", clause)
			}
			spec.Links = append(spec.Links, l)
		case "brownout":
			b := Brownout{Src: -1, Dst: -1, Bandwidth: 1}
			if err := kv.take(map[string]any{"src": &b.Src, "dst": &b.Dst, "start": &b.Start, "end": &b.End, "bw": &b.Bandwidth}); err != nil {
				return nil, fmt.Errorf("perturb: clause %q: %w", clause, err)
			}
			if b.Src < 0 || b.Dst < 0 {
				return nil, fmt.Errorf("perturb: clause %q: missing src or dst", clause)
			}
			spec.Brownouts = append(spec.Brownouts, b)
		case "jitter":
			name, rest, _ := strings.Cut(rest, ",")
			switch strings.TrimSpace(name) {
			case "uniform":
				spec.Jitter = JitterUniform
			case "exponential":
				spec.Jitter = JitterExponential
			case "pareto":
				spec.Jitter = JitterPareto
			default:
				return nil, fmt.Errorf("perturb: unknown jitter distribution %q", name)
			}
			if rest != "" {
				kv, err := parseKV(rest)
				if err != nil {
					return nil, fmt.Errorf("perturb: clause %q: %w", clause, err)
				}
				if err := kv.take(map[string]any{"alpha": &spec.ParetoAlpha}); err != nil {
					return nil, fmt.Errorf("perturb: clause %q: %w", clause, err)
				}
			}
		default:
			return nil, fmt.Errorf("perturb: unknown clause kind %q (straggler, link, brownout, jitter)", kind)
		}
	}
	return spec, nil
}

// kvSet is a parsed key=value clause body.
type kvSet map[string]string

func parseKV(text string) (kvSet, error) {
	kv := kvSet{}
	for _, pair := range strings.Split(text, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("expected key=value, got %q", pair)
		}
		kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kv, nil
}

// take assigns every present key into its destination (*int or *float64)
// and rejects keys with no destination.
func (kv kvSet) take(dst map[string]any) error {
	for k, v := range kv {
		d, ok := dst[k]
		if !ok {
			keys := make([]string, 0, len(dst))
			for dk := range dst {
				keys = append(keys, dk)
			}
			sort.Strings(keys)
			return fmt.Errorf("unknown key %q (have %s)", k, strings.Join(keys, ", "))
		}
		switch p := d.(type) {
		case *int:
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
				return fmt.Errorf("key %q: %q is not an integer", k, v)
			}
			*p = n
		case *float64:
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
				return fmt.Errorf("key %q: %q is not a number", k, v)
			}
			*p = f
		}
	}
	return nil
}

// Random builds a time-invariant perturbation scenario of the given
// intensity on a cluster of nics physical nodes, deterministically from
// seed: the same (seed, intensity, nics) always yields the same spec.
//
// intensity 0 yields nil (the unperturbed platform). As intensity grows
// toward 1 the scenario gains more stragglers and degraded links with
// stronger factors, and the jitter tail gets heavier: intensity ≥ 0.25
// switches the jitter to Pareto with a tail index that falls from 3
// toward 1.5. The spec is brownout-free so that robustness sweeps stay on
// the fast replay measurement engine; compose brownouts explicitly when a
// scenario needs them.
func Random(seed int64, intensity float64, nics int) *Spec {
	if intensity <= 0 || nics < 2 {
		return nil
	}
	if intensity > 1 {
		intensity = 1
	}
	rng := rand.New(rand.NewSource(seed))
	spec := &Spec{}
	// Stragglers: up to a quarter of the nodes at full intensity, at least
	// one, each slowed by up to 1+2·intensity (NIC) and 1+intensity (CPU).
	nStrag := 1 + int(intensity*float64(nics)/4)
	for _, node := range rng.Perm(nics)[:min(nStrag, nics)] {
		spec.Stragglers = append(spec.Stragglers, Straggler{
			Node:    node,
			Compute: 1 + intensity*rng.Float64(),
			NIC:     1 + 2*intensity*rng.Float64(),
		})
	}
	// Degraded links: the same order of magnitude, random directed pairs,
	// latency up to 1+4·intensity and bandwidth up to 1+6·intensity.
	nLinks := 1 + int(intensity*float64(nics)/4)
	for i := 0; i < nLinks; i++ {
		src := rng.Intn(nics)
		dst := rng.Intn(nics - 1)
		if dst >= src {
			dst++
		}
		spec.Links = append(spec.Links, LinkRule{
			Src: src, Dst: dst,
			Latency:   1 + 4*intensity*rng.Float64(),
			Bandwidth: 1 + 6*intensity*rng.Float64(),
		})
	}
	if intensity >= 0.25 {
		spec.Jitter = JitterPareto
		spec.ParetoAlpha = 3 - 1.5*intensity
	}
	return spec
}
