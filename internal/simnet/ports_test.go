package simnet

import (
	"math/rand"
	"testing"
)

func portsConfig(procs int) Config {
	return Config{
		Nodes:             procs,
		Latency:           20e-6,
		ByteTimeSend:      1e-9,
		ByteTimeRecv:      1e-9,
		SendOverhead:      1e-6,
		RecvOverhead:      1e-6,
		ProcsPerNode:      2,
		IntraNodeLatency:  1e-6,
		IntraNodeByteTime: 1e-10,
	}
}

// TestPortArraysSizedByNICs pins the port-array sizing: ports exist per
// physical NIC (ceil(Nodes/ProcsPerNode)), not per process endpoint.
func TestPortArraysSizedByNICs(t *testing.T) {
	cfg := portsConfig(10)
	if got := cfg.NICs(); got != 5 {
		t.Fatalf("NICs() = %d, want 5", got)
	}
	cfg.Nodes = 9 // odd endpoint count: last node half-populated
	if got := cfg.NICs(); got != 5 {
		t.Fatalf("NICs() = %d for 9 endpoints, want 5", got)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.sendFree) != 5 || len(n.recvFree) != 5 {
		t.Fatalf("port arrays sized %d/%d, want 5 (NIC count)", len(n.sendFree), len(n.recvFree))
	}
	p, err := n.NewPorts(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NICs() != 5 || p.Lanes() != 3 {
		t.Fatalf("Ports = %d NICs x %d lanes, want 5 x 3", p.NICs(), p.Lanes())
	}
	if len(p.sendFree) != 15 || len(p.recvFree) != 15 {
		t.Fatalf("lane stripes sized %d/%d, want 15", len(p.sendFree), len(p.recvFree))
	}
}

// TestPortsTransmitMatchesNetwork drives the same randomized transfer
// sequence through Network.Transmit and Ports.Transmit/TransmitLocal and
// asserts bit-identical send-completion and delivery times — the
// arithmetic the replay engine depends on never drifting from the
// scheduler's.
func TestPortsTransmitMatchesNetwork(t *testing.T) {
	cfg := portsConfig(8)
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 99
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ports, err := net.NewPorts(1)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-draw the jitter a fresh stream with the same seed will produce,
	// in order; inter-NIC transfers consume it one factor at a time.
	rng := rand.New(rand.NewSource(cfg.NoiseSeed))
	order := rand.New(rand.NewSource(7))
	now := 0.0
	for i := 0; i < 200; i++ {
		src := order.Intn(cfg.Nodes)
		dst := order.Intn(cfg.Nodes)
		if src == dst {
			continue
		}
		bytes := order.Intn(1 << 16)
		tr, err := net.Transmit(src, dst, bytes, now)
		if err != nil {
			t.Fatal(err)
		}
		var sc, delivered float64
		lt := net.TimingFor(src, dst, bytes)
		if lt.Local {
			sc, delivered = ports.TransmitLocal(lt, now)
		} else {
			jitter := 1.0
			if lt.TxTime > 0 {
				jitter = 1 + cfg.NoiseAmplitude*rng.Float64()
			}
			sc, delivered = ports.Transmit(0, cfg.NIC(src), cfg.NIC(dst), lt, now, jitter)
		}
		if sc != tr.SendComplete || delivered != tr.Delivered {
			t.Fatalf("transfer %d (%d->%d, %dB): ports %x/%x, network %x/%x",
				i, src, dst, bytes, sc, delivered, tr.SendComplete, tr.Delivered)
		}
		// Non-decreasing issue times, as the scheduler guarantees.
		now += float64(order.Intn(3)) * 1e-6
	}
}

// TestPortsSeedLaneChains verifies lane chaining: seeding lane 1 from lane
// 0 and continuing a transfer sequence there matches continuing it on a
// single-lane state.
func TestPortsSeedLaneChains(t *testing.T) {
	cfg := portsConfig(4)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := net.NewPorts(1)
	if err != nil {
		t.Fatal(err)
	}
	double, err := net.NewPorts(2)
	if err != nil {
		t.Fatal(err)
	}
	lt := LinkTiming{TxTime: 1e-9, RxTime: 1e-9}
	// First transfer on lane 0 of both.
	s1, d1 := single.Transmit(0, 0, 1, lt, 0, 1)
	s2, d2 := double.Transmit(0, 0, 1, lt, 0, 1)
	if s1 != s2 || d1 != d2 {
		t.Fatal("lane 0 diverged")
	}
	// Continue on lane 1 after seeding it from lane 0.
	double.SeedLane(1, 0)
	s1, d1 = single.Transmit(0, 0, 1, lt, d1, 1)
	s2, d2 = double.Transmit(1, 0, 1, lt, d2, 1)
	if s1 != s2 || d1 != d2 {
		t.Fatalf("seeded lane diverged: %x/%x vs %x/%x", s2, d2, s1, d1)
	}
}

// TestDrawJitterInto pins the stream semantics: the drawn factors are
// exactly what the next Transmit calls would have used, and a noise-free
// network yields all-ones without a stream.
func TestDrawJitterInto(t *testing.T) {
	cfg := portsConfig(4)
	cfg.NoiseAmplitude = 0.04
	cfg.NoiseSeed = 123
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Noisy() {
		t.Fatal("network with noise amplitude should be noisy")
	}
	buf := make([]float64, 8)
	net.DrawJitterInto(buf)
	ref := rand.New(rand.NewSource(cfg.NoiseSeed))
	for i, f := range buf {
		want := 1 + cfg.NoiseAmplitude*ref.Float64()
		if f != want {
			t.Fatalf("draw %d = %x, want %x", i, f, want)
		}
		if f < 1 || f > 1+cfg.NoiseAmplitude {
			t.Fatalf("draw %d = %v outside [1, 1+amp]", i, f)
		}
	}
	cfg.NoiseAmplitude = 0
	quiet, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Noisy() {
		t.Fatal("noise-free network reported noisy")
	}
	quiet.DrawJitterInto(buf)
	for i, f := range buf {
		if f != 1 {
			t.Fatalf("noise-free draw %d = %v, want 1", i, f)
		}
	}
}

// TestNewPortsValidation covers the lane-count check.
func TestNewPortsValidation(t *testing.T) {
	net, err := New(portsConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewPorts(0); err == nil {
		t.Fatal("0 lanes accepted")
	}
}
