package simnet

// This file composes a perturb.Spec onto the cluster: at construction the
// spec is expanded into dense per-NIC and per-link tables of *effective*
// timing parameters, so the transfer hot path pays one indexed load per
// parameter instead of rule matching. A nil pertState (the unperturbed
// platform) keeps Transmit on the exact arithmetic the simulator has
// always used — perturbation support is bit-invisible until a spec is
// configured.

import "mpicollperf/internal/perturb"

// LinkTiming is the complete set of effective timing parameters of one
// transfer: the per-transfer port occupancies (bytes times the effective
// per-byte times), the wire latency, and the endpoint CPU overheads —
// after any time-invariant perturbations (stragglers, link degradation)
// have been applied. It is the unit the plan-replay engine stores per
// captured transfer, so scheduler and replay cannot disagree about what a
// perturbation did to a link.
type LinkTiming struct {
	// Local marks a transfer between co-located processes (shared NIC):
	// no port is occupied, no jitter is drawn, and Latency/TxTime hold the
	// intra-node parameters (RxTime is zero).
	Local bool
	// TxTime is the sender-port occupancy of the transfer (or the full
	// copy time when Local).
	TxTime float64
	// RxTime is the receiver-port occupancy of the transfer.
	RxTime float64
	// Latency is the effective wire latency of the link.
	Latency float64
	// SendOv and RecvOv are the effective CPU overheads of the sending and
	// receiving process.
	SendOv, RecvOv float64
}

// pertState is a perturbation spec expanded against a concrete cluster.
type pertState struct {
	nics int
	spec *perturb.Spec
	// Per-link effective parameters, indexed srcNIC*nics + dstNIC.
	lat  []float64
	txBT []float64
	rxBT []float64
	// Per-NIC effective CPU overheads.
	sendOv []float64
	recvOv []float64
	// brown holds the time-windowed brownouts per link (same index).
	brown map[int][]perturb.Brownout
	// jitter distribution of the (1+ε) transmission factor.
	jitter perturb.JitterDist
	alpha  float64
}

// newPertState expands cfg.Perturb, or returns nil for the unperturbed
// platform. cfg must already be validated.
func newPertState(cfg Config) *pertState {
	spec := cfg.Perturb
	if spec.Empty() {
		return nil
	}
	nics := cfg.NICs()
	p := &pertState{
		nics:   nics,
		spec:   spec,
		lat:    make([]float64, nics*nics),
		txBT:   make([]float64, nics*nics),
		rxBT:   make([]float64, nics*nics),
		sendOv: make([]float64, nics),
		recvOv: make([]float64, nics),
		jitter: spec.Jitter,
		alpha:  spec.ParetoAlpha,
	}
	if p.alpha == 0 {
		p.alpha = 2
	}
	cpuF := make([]float64, nics)
	nicF := make([]float64, nics)
	for i := range cpuF {
		cpuF[i], nicF[i] = 1, 1
	}
	// Multiple straggler entries on one node compose multiplicatively.
	for _, s := range spec.Stragglers {
		if s.Compute > 0 {
			cpuF[s.Node] *= s.Compute
		}
		if s.NIC > 0 {
			nicF[s.Node] *= s.NIC
		}
	}
	for i := 0; i < nics; i++ {
		p.sendOv[i] = cfg.SendOverhead * cpuF[i]
		p.recvOv[i] = cfg.RecvOverhead * cpuF[i]
	}
	for s := 0; s < nics; s++ {
		for d := 0; d < nics; d++ {
			l := s*nics + d
			p.lat[l] = cfg.Latency
			p.txBT[l] = cfg.ByteTimeSend * nicF[s]
			p.rxBT[l] = cfg.ByteTimeRecv * nicF[d]
		}
	}
	for _, r := range spec.Links {
		l := r.Src*nics + r.Dst
		if r.Latency > 0 {
			p.lat[l] *= r.Latency
		}
		if r.Bandwidth > 0 {
			p.txBT[l] *= r.Bandwidth
			p.rxBT[l] *= r.Bandwidth
		}
	}
	if len(spec.Brownouts) > 0 {
		p.brown = make(map[int][]perturb.Brownout)
		for _, b := range spec.Brownouts {
			l := b.Src*nics + b.Dst
			p.brown[l] = append(p.brown[l], b)
		}
	}
	return p
}

// brownFactor returns the combined bandwidth collapse factor of the
// brownouts active on link src->dst at virtual time t (1 when none).
func (p *pertState) brownFactor(srcNIC, dstNIC int, t float64) float64 {
	f := 1.0
	for _, b := range p.brown[srcNIC*p.nics+dstNIC] {
		if t >= b.Start && t < b.End {
			f *= b.Bandwidth
		}
	}
	return f
}

// TimingFor returns the effective timing parameters of a transfer of
// bytes from process src to process dst, with every time-invariant
// perturbation applied (brownouts, being time-windowed, are applied
// inside Transmit only). On an unperturbed network it returns exactly the
// Config's parameters.
func (n *Network) TimingFor(src, dst, bytes int) LinkTiming {
	srcNIC, dstNIC := n.cfg.nic(src), n.cfg.nic(dst)
	if srcNIC == dstNIC {
		lt := LinkTiming{
			Local:   true,
			TxTime:  float64(bytes) * n.cfg.IntraNodeByteTime,
			Latency: n.cfg.IntraNodeLatency,
			SendOv:  n.cfg.SendOverhead,
			RecvOv:  n.cfg.RecvOverhead,
		}
		if n.pert != nil {
			// Co-located transfers bypass the NIC, but the endpoint CPU
			// overheads still run on a (possibly straggling) node.
			lt.SendOv = n.pert.sendOv[srcNIC]
			lt.RecvOv = n.pert.recvOv[dstNIC]
		}
		return lt
	}
	if n.pert == nil {
		return LinkTiming{
			TxTime:  float64(bytes) * n.cfg.ByteTimeSend,
			RxTime:  float64(bytes) * n.cfg.ByteTimeRecv,
			Latency: n.cfg.Latency,
			SendOv:  n.cfg.SendOverhead,
			RecvOv:  n.cfg.RecvOverhead,
		}
	}
	l := srcNIC*n.pert.nics + dstNIC
	return LinkTiming{
		TxTime:  float64(bytes) * n.pert.txBT[l],
		RxTime:  float64(bytes) * n.pert.rxBT[l],
		Latency: n.pert.lat[l],
		SendOv:  n.pert.sendOv[srcNIC],
		RecvOv:  n.pert.recvOv[dstNIC],
	}
}

// SendOverheadOf returns the effective send overhead of a process — the
// Config's SendOverhead scaled by any compute straggler on the process's
// node. The mpi scheduler charges it to a rank's clock after a
// non-blocking send.
func (n *Network) SendOverheadOf(proc int) float64 {
	if n.pert == nil {
		return n.cfg.SendOverhead
	}
	return n.pert.sendOv[n.cfg.nic(proc)]
}

// ReplayInvariant reports whether the network's effective timing
// parameters are independent of virtual time. Time-windowed perturbations
// (brownouts) make them time-varying, and a captured plan cannot be
// re-timed under them: the measurement harness must stay on the scheduler
// engine and reports the fallback.
func (n *Network) ReplayInvariant() bool {
	return n.pert == nil || n.pert.spec.TimeInvariant()
}

// jitterFactor draws the (1+ε) transmission factor for one transfer from
// the network's noise stream, under the configured jitter distribution.
// Callers must have checked n.rng != nil.
func (n *Network) jitterFactor() float64 {
	u := n.rng.Float64()
	if n.pert == nil {
		return 1 + n.cfg.NoiseAmplitude*u
	}
	return n.pert.jitter.Factor(n.cfg.NoiseAmplitude, n.pert.alpha, u)
}
