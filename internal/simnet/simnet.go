// Package simnet implements a deterministic discrete-event model of a
// switched, homogeneous compute cluster. It is the hardware substrate of
// the reproduction: the paper measures Open MPI broadcast algorithms on the
// Grid'5000 Grisou and Gros clusters, and this package plays the role of
// those clusters.
//
// The model is deliberately first-order but captures exactly the phenomena
// the paper's implementation-derived models exploit:
//
//   - each node has one NIC send port and one NIC receive port, and every
//     port serialises the transfers that cross it (a transfer of m bytes
//     occupies a port for m·G seconds). Serialisation at the sender port is
//     what makes a non-blocking linear broadcast to P-1 children slower
//     than a single point-to-point transfer — the paper's γ(P) parameter;
//   - send and receive ports are independent, so an interior node of a
//     chain or tree can receive segment i+1 while forwarding segment i —
//     the pipelining that makes segmented algorithms win for large
//     messages;
//   - a fixed wire latency L and per-byte time G give the α/β structure of
//     the Hockney model that all the analytical formulas are built on.
//
// Timing of one transfer of m bytes from s to d issued at sender time t:
//
//	startTx   = max(t + SendOverhead, sendPortFree[s])
//	txTime    = m·ByteTimeSend·(1+ε)         (ε optional seeded noise)
//	arrival   = startTx + txTime + Latency
//	startRx   = max(arrival, recvPortFree[d])
//	delivered = startRx + m·ByteTimeRecv + RecvOverhead
//
// The caller (the mpi runtime) must initiate transfers in non-decreasing
// virtual-time order; under that contract, and with homogeneous latency,
// the greedy port bookkeeping above is globally consistent.
package simnet

import (
	"fmt"
	"math/rand"

	"mpicollperf/internal/perturb"
)

// Config describes a homogeneous cluster.
type Config struct {
	// Nodes is the number of process endpoints (one process per node in
	// all of the paper's experiments). When ProcsPerNode > 1 it still
	// counts process endpoints, not physical nodes: consecutive groups of
	// ProcsPerNode endpoints share one physical node and NIC, so the
	// cluster has NICs() = ceil(Nodes/ProcsPerNode) physical nodes.
	Nodes int
	// Latency is the end-to-end wire latency L in seconds.
	Latency float64
	// ByteTimeSend is the per-byte occupancy G of a sender NIC port, in
	// seconds per byte (the reciprocal of the injection bandwidth).
	ByteTimeSend float64
	// ByteTimeRecv is the per-byte occupancy of a receiver NIC port, in
	// seconds per byte (the reciprocal of the drain bandwidth).
	ByteTimeRecv float64
	// SendOverhead is the CPU time o_s a process spends initiating a send.
	SendOverhead float64
	// RecvOverhead is the CPU time o_r a process spends completing a receive.
	RecvOverhead float64
	// NoiseAmplitude, if positive, multiplies every transmission time by
	// (1+ε) with ε drawn uniformly from [0, NoiseAmplitude] using NoiseSeed.
	// This models OS and switch jitter and is what makes repeated
	// measurements vary, exercising the paper's statistical methodology.
	NoiseAmplitude float64
	// NoiseSeed seeds the jitter generator. Two networks with identical
	// configs produce identical event histories.
	NoiseSeed int64
	// ProcsPerNode co-locates that many consecutive process endpoints on
	// one physical node sharing a NIC (the paper's Grisou runs one process
	// per CPU, two CPUs per node). Zero or one means one process per
	// node. Transfers between co-located processes bypass the NIC and use
	// the intra-node parameters below; shared-memory bandwidth contention
	// is not modelled.
	ProcsPerNode int
	// IntraNodeLatency and IntraNodeByteTime parameterise transfers
	// between processes on the same node; both must be set (positive
	// latency) when ProcsPerNode > 1.
	IntraNodeLatency  float64
	IntraNodeByteTime float64
	// Perturb composes a fault/perturbation scenario onto the cluster:
	// per-node stragglers, degraded links, transient brownouts, and
	// heavy-tailed jitter (package perturb). Nil (or an empty spec) is the
	// unperturbed platform, whose timings are bit-identical to a
	// perturbation-free build of this package. Perturbations are part of
	// the platform identity: the spec serialises with the Config, so
	// measurement-cache keys distinguish perturbed runs.
	Perturb *perturb.Spec `json:",omitempty"`
}

// procsPerNode returns the effective co-location factor.
func (c Config) procsPerNode() int {
	if c.ProcsPerNode < 1 {
		return 1
	}
	return c.ProcsPerNode
}

// nic returns the physical node (NIC index) of a process endpoint.
func (c Config) nic(proc int) int { return proc / c.procsPerNode() }

// NIC returns the physical node (NIC index) of a process endpoint.
func (c Config) NIC(proc int) int { return c.nic(proc) }

// NICs returns the number of physical nodes, each with one send and one
// receive port: ceil(Nodes/ProcsPerNode).
func (c Config) NICs() int {
	ppn := c.procsPerNode()
	return (c.Nodes + ppn - 1) / ppn
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("simnet: Nodes = %d, need >= 1", c.Nodes)
	case c.Latency < 0, c.ByteTimeSend < 0, c.ByteTimeRecv < 0:
		return fmt.Errorf("simnet: negative link parameters")
	case c.SendOverhead < 0, c.RecvOverhead < 0:
		return fmt.Errorf("simnet: negative overheads")
	case c.NoiseAmplitude < 0:
		return fmt.Errorf("simnet: negative noise amplitude")
	}
	if c.ProcsPerNode > 1 {
		if c.IntraNodeLatency <= 0 || c.IntraNodeByteTime < 0 {
			return fmt.Errorf("simnet: ProcsPerNode %d needs positive IntraNodeLatency and non-negative IntraNodeByteTime", c.ProcsPerNode)
		}
	}
	if err := c.Perturb.Validate(c.NICs()); err != nil {
		return err
	}
	return nil
}

// Transfer records the complete timing of one message transmission.
type Transfer struct {
	Src, Dst int
	Bytes    int
	// Issued is the sender-side virtual time the transfer was initiated.
	Issued float64
	// StartTx is when the first byte enters the sender port.
	StartTx float64
	// SendComplete is when the last byte has left the sender port; a
	// non-blocking send's buffer is reusable from this moment.
	SendComplete float64
	// Arrival is when the last byte reaches the receiver port.
	Arrival float64
	// Delivered is when the message is fully available to the receiving
	// process (after receive-port drain and CPU overhead).
	Delivered float64
}

// Network is the live simulator state: per-node port bookkeeping plus the
// jitter stream. It is not safe for concurrent use; the mpi scheduler is
// single-threaded by design.
type Network struct {
	cfg      Config
	sendFree []float64
	recvFree []float64
	rng      *rand.Rand
	nTx      int64
	trace    func(Transfer)
	// used records whether any port state or noise draw has been consumed
	// since the last Reset, letting Reset skip the port sweep and reseed on
	// an already-pristine network — the common case on the replay warm
	// path, where echo validation touches no network state between runs.
	used bool
	// pert holds the expanded perturbation tables; nil on an unperturbed
	// network, which keeps the hot path on the exact legacy arithmetic.
	pert *pertState
}

// New builds a network from cfg.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Ports exist per NIC, not per process endpoint: with co-location
	// (ProcsPerNode > 1) only ceil(Nodes/ProcsPerNode) NICs are ever
	// indexed.
	n := &Network{
		cfg:      cfg,
		sendFree: make([]float64, cfg.NICs()),
		recvFree: make([]float64, cfg.NICs()),
	}
	if cfg.NoiseAmplitude > 0 {
		n.rng = rand.New(rand.NewSource(cfg.NoiseSeed))
	}
	n.pert = newPertState(cfg)
	return n, nil
}

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Transfers returns the number of transfers simulated so far.
func (n *Network) Transfers() int64 { return n.nTx }

// SetTrace installs a hook invoked for every completed Transmit call.
// Pass nil to disable tracing.
func (n *Network) SetTrace(fn func(Transfer)) { n.trace = fn }

// Transmit simulates moving bytes from src to dst, with the send initiated
// at sender virtual time now. It updates the port bookkeeping and returns
// the full timing. src and dst must be distinct valid nodes.
//
// Callers must invoke Transmit in non-decreasing order of now across the
// whole network (the mpi scheduler guarantees this).
func (n *Network) Transmit(src, dst, bytes int, now float64) (Transfer, error) {
	if src < 0 || src >= n.cfg.Nodes || dst < 0 || dst >= n.cfg.Nodes {
		return Transfer{}, fmt.Errorf("simnet: transfer %d->%d outside 0..%d", src, dst, n.cfg.Nodes-1)
	}
	if src == dst {
		return Transfer{}, fmt.Errorf("simnet: self-transfer on node %d", src)
	}
	if bytes < 0 {
		return Transfer{}, fmt.Errorf("simnet: negative size %d", bytes)
	}
	n.used = true
	t := Transfer{Src: src, Dst: dst, Bytes: bytes, Issued: now}
	srcNIC, dstNIC := n.cfg.nic(src), n.cfg.nic(dst)
	lt := n.TimingFor(src, dst, bytes)
	if lt.Local {
		// Co-located processes: shared-memory transfer, no NIC involved.
		t.StartTx = now + lt.SendOv
		t.SendComplete = t.StartTx + lt.TxTime
		t.Arrival = t.SendComplete + lt.Latency
		t.Delivered = t.Arrival + lt.RecvOv
		n.nTx++
		if n.trace != nil {
			n.trace(t)
		}
		return t, nil
	}
	txTime := lt.TxTime
	if n.rng != nil && txTime > 0 {
		txTime *= n.jitterFactor()
	}
	t.StartTx = max(now+lt.SendOv, n.sendFree[srcNIC])
	if n.pert != nil && n.pert.brown != nil {
		// Brownout membership is decided by the (jitter-free) port grant
		// time, so it is deterministic for a given seed and spec.
		if f := n.pert.brownFactor(srcNIC, dstNIC, t.StartTx); f != 1 {
			txTime *= f
		}
	}
	t.SendComplete = t.StartTx + txTime
	n.sendFree[srcNIC] = t.SendComplete
	t.Arrival = t.SendComplete + lt.Latency
	startRx := max(t.Arrival, n.recvFree[dstNIC])
	drained := startRx + lt.RxTime
	n.recvFree[dstNIC] = drained
	t.Delivered = drained + lt.RecvOv
	n.nTx++
	if n.trace != nil {
		n.trace(t)
	}
	return t, nil
}

// PointToPointTime returns the noise-free duration of a single isolated
// m-byte transfer on an idle network: the Hockney T_p2p(m) = α + β·m of
// this substrate, with α = SendOverhead + Latency + RecvOverhead and
// β = ByteTimeSend + ByteTimeRecv. Useful as ground truth in tests.
func (c Config) PointToPointTime(bytes int) float64 {
	return c.SendOverhead + c.Latency + c.RecvOverhead +
		float64(bytes)*(c.ByteTimeSend+c.ByteTimeRecv)
}

// Reset returns all ports to idle at time zero and restarts the jitter
// stream, so that consecutive experiments on the same Network are
// independent and reproducible. The existing generator is reseeded in
// place — Reset allocates nothing, which matters inside measurement
// sweeps that Reset once per repetition. Resetting a network that has not
// transmitted or drawn noise since its last Reset is a no-op, so
// back-to-back Resets on the warm path cost one branch.
func (n *Network) Reset() {
	if !n.used {
		return
	}
	for i := range n.sendFree {
		n.sendFree[i] = 0
		n.recvFree[i] = 0
	}
	if n.rng != nil {
		n.rng.Seed(n.cfg.NoiseSeed)
	}
	n.nTx = 0
	n.used = false
}
