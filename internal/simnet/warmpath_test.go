package simnet

import "testing"

// TestResetFastPathPreservesDeterminism checks that the Reset no-op on an
// untouched network cannot be observed: jitter streams and port state
// behave exactly as if every Reset did the full sweep.
func TestResetFastPathPreservesDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 77
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []float64 {
		out := make([]float64, 16)
		n.DrawJitterInto(out)
		return out
	}
	n.Reset() // pristine network: no-op, but must still leave it pristine
	first := draw()
	n.Reset() // consumed draws: must reseed
	n.Reset() // back-to-back: no-op
	second := draw()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("draw %d after Reset: %v != %v", i, second[i], first[i])
		}
	}

	// Transfers mark the network used too: Reset must clear port state.
	if _, err := n.Transmit(0, 1, 4096, 0); err != nil {
		t.Fatal(err)
	}
	tr1, err := n.Transmit(0, 1, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.StartTx == cfg.SendOverhead {
		t.Fatal("second transfer did not queue behind the first")
	}
	n.Reset()
	tr2, err := n.Transmit(0, 1, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.StartTx != cfg.SendOverhead {
		t.Fatalf("post-Reset transfer StartTx = %v, want %v (idle port)", tr2.StartTx, cfg.SendOverhead)
	}
	if n.Transfers() != 1 {
		t.Fatalf("Transfers() = %d after Reset+1, want 1", n.Transfers())
	}
}

// TestSnapshotPortsIntoReuse checks that re-snapshotting into a recycled
// Ports — growing and shrinking the lane count — is indistinguishable
// from a fresh NewPorts.
func TestSnapshotPortsIntoReuse(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy some ports so snapshots carry real state.
	for i := 0; i < 3; i++ {
		if _, err := n.Transmit(0, 1, 1<<16, 0); err != nil {
			t.Fatal(err)
		}
	}
	var recycled *Ports
	lt := n.TimingFor(2, 3, 8192)
	for _, lanes := range []int{4, 1, 6} {
		fresh, err := n.NewPorts(lanes)
		if err != nil {
			t.Fatal(err)
		}
		recycled, err = n.SnapshotPortsInto(recycled, lanes)
		if err != nil {
			t.Fatal(err)
		}
		if recycled.Lanes() != lanes || recycled.NICs() != fresh.NICs() {
			t.Fatalf("lanes=%d: shape %d×%d, want %d×%d",
				lanes, recycled.Lanes(), recycled.NICs(), fresh.Lanes(), fresh.NICs())
		}
		for l := 0; l < lanes; l++ {
			s1, d1 := fresh.Transmit(l, 2, 3, lt, float64(l)*1e-6, 1.01)
			s2, d2 := recycled.Transmit(l, 2, 3, lt, float64(l)*1e-6, 1.01)
			if s1 != s2 || d1 != d2 {
				t.Fatalf("lanes=%d lane %d: (%v,%v) != (%v,%v)", lanes, l, s2, d2, s1, d1)
			}
		}
	}
	if _, err := n.SnapshotPortsInto(nil, 0); err == nil {
		t.Fatal("0 lanes accepted")
	}
}
