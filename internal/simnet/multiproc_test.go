package simnet

import (
	"math"
	"testing"
)

func dualConfig() Config {
	cfg := testConfig()
	cfg.ProcsPerNode = 2
	cfg.IntraNodeLatency = 1e-6
	cfg.IntraNodeByteTime = 0.05e-9
	return cfg
}

func TestDualSocketValidation(t *testing.T) {
	good := dualConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.IntraNodeLatency = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("ProcsPerNode > 1 without intra-node latency should fail")
	}
	bad = good
	bad.IntraNodeByteTime = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative intra-node byte time should fail")
	}
}

func TestIntraNodeTransferBypassesNIC(t *testing.T) {
	cfg := dualConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Procs 0 and 1 share node 0.
	const m = 1 << 20
	intra, err := n.Transmit(0, 1, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantIntra := cfg.SendOverhead + float64(m)*cfg.IntraNodeByteTime +
		cfg.IntraNodeLatency + cfg.RecvOverhead
	if math.Abs(intra.Delivered-wantIntra) > 1e-15 {
		t.Fatalf("intra delivery %v, want %v", intra.Delivered, wantIntra)
	}
	// The NIC send port is untouched: a subsequent inter-node transfer
	// starts immediately.
	inter, err := n.Transmit(0, 2, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inter.StartTx != cfg.SendOverhead {
		t.Fatalf("NIC port blocked by intra-node traffic: %v", inter.StartTx)
	}
	if inter.Delivered <= intra.Delivered {
		t.Fatal("inter-node transfer should be slower than shared memory")
	}
}

func TestCoLocatedProcessesShareNIC(t *testing.T) {
	cfg := dualConfig()
	n, _ := New(cfg)
	const m = 1 << 16
	// Procs 0 and 1 (node 0) send to different remote nodes at once:
	// their transfers serialise on the shared NIC send port.
	a, _ := n.Transmit(0, 2, m, 0)
	b, _ := n.Transmit(1, 4, m, 0)
	if b.StartTx < a.SendComplete {
		t.Fatalf("co-located senders did not serialise: %v < %v", b.StartTx, a.SendComplete)
	}
	// With one process per node the same pattern is fully parallel.
	single, _ := New(testConfig())
	a2, _ := single.Transmit(0, 2, m, 0)
	b2, _ := single.Transmit(1, 4, m, 0)
	if b2.StartTx != a2.StartTx {
		t.Fatal("independent nodes should start together")
	}
}

func TestDualSocketIncastSharesRecvPort(t *testing.T) {
	cfg := dualConfig()
	n, _ := New(cfg)
	const m = 1 << 16
	// Two remote senders target procs 0 and 1 (same node): the second
	// delivery waits for the shared receive port.
	a, _ := n.Transmit(2, 0, m, 0)
	b, _ := n.Transmit(4, 1, m, 0)
	gap := b.Delivered - a.Delivered
	want := float64(m) * cfg.ByteTimeRecv
	if math.Abs(gap-want) > 1e-12 {
		t.Fatalf("recv-port sharing gap %v, want %v", gap, want)
	}
}

func TestSelfTransferStillRejected(t *testing.T) {
	n, _ := New(dualConfig())
	if _, err := n.Transmit(3, 3, 10, 0); err == nil {
		t.Fatal("self transfer must stay invalid even with co-location")
	}
}
