package simnet

import "fmt"

// This file is the timing-replay side of the simulator. A captured
// execution plan (package mpi) re-times a communication structure many
// times without re-running the scheduler; the per-NIC port bookkeeping and
// the transfer arithmetic it needs live here, next to Transmit, so the two
// code paths cannot drift apart. Replayed transfers are bit-identical to
// Transmit on the same inputs: both use the same expressions in the same
// order.
//
// Replay evaluates repetitions in noise "lanes": a batch of K successive
// repetitions shares one struct-of-arrays port state (lane-major stripes),
// and the jitter factors for the whole batch are drawn up front from the
// network's single noise stream in plan order — lane 0 consumes the draws
// of the first repetition, lane 1 the next, and so on, exactly as the
// scheduler would have consumed them. Lanes are chained, not independent:
// repetition k+1 starts from the barrier-aligned state repetition k left
// behind, so SeedLane copies a predecessor stripe before a lane is walked.

// Ports is lane-parallel per-NIC port-free bookkeeping for timing replay.
// The per-transfer link constants travel with each replayed event as a
// LinkTiming (captured from TimingFor at plan-compile time), so perturbed
// links and straggling nodes replay with exactly the parameters the
// scheduler used. Stripes are lane-major: lane l's port state for NIC i
// lives at [l*NICs() + i].
type Ports struct {
	nics  int
	lanes int
	// SendFree and RecvFree hold, per lane and NIC, the virtual time the
	// port becomes idle.
	sendFree []float64
	recvFree []float64
}

// NewPorts snapshots the network's current port state into every lane of a
// fresh Ports. lanes must be at least 1.
func (n *Network) NewPorts(lanes int) (*Ports, error) {
	return n.SnapshotPortsInto(nil, lanes)
}

// SnapshotPortsInto re-snapshots the network's current port state into
// every lane of p, reshaping p to lanes lanes and reusing its backing
// stripes when they are large enough (they grow monotonically, so a
// recycled Ports stops allocating once it has seen the largest lane
// count). A nil p builds a fresh Ports. lanes must be at least 1.
func (n *Network) SnapshotPortsInto(p *Ports, lanes int) (*Ports, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("simnet: %d replay lanes, need >= 1", lanes)
	}
	nics := n.cfg.NICs()
	if p == nil {
		p = &Ports{}
	}
	p.nics, p.lanes = nics, lanes
	need := lanes * nics
	if cap(p.sendFree) < need {
		p.sendFree = make([]float64, need)
		p.recvFree = make([]float64, need)
	}
	p.sendFree = p.sendFree[:need]
	p.recvFree = p.recvFree[:need]
	for l := 0; l < lanes; l++ {
		copy(p.sendFree[l*nics:(l+1)*nics], n.sendFree)
		copy(p.recvFree[l*nics:(l+1)*nics], n.recvFree)
	}
	return p, nil
}

// NICs returns the number of NICs per lane.
func (p *Ports) NICs() int { return p.nics }

// Lanes returns the number of lanes.
func (p *Ports) Lanes() int { return p.lanes }

// SeedLane copies lane from's port state into lane to: lane to will replay
// the repetition that follows the one lane from just finished.
func (p *Ports) SeedLane(to, from int) {
	if to == from {
		return
	}
	copy(p.sendFree[to*p.nics:(to+1)*p.nics], p.sendFree[from*p.nics:(from+1)*p.nics])
	copy(p.recvFree[to*p.nics:(to+1)*p.nics], p.recvFree[from*p.nics:(from+1)*p.nics])
}

// Transmit replays one inter-NIC transfer on the given lane: lt carries
// the event's effective timing parameters (captured from TimingFor at
// plan-compile time), now is the sender's virtual time, and jitter is the
// (1+ε) factor drawn for this event (1 when the network is noise-free).
// It returns the send-completion and delivery times, bit-identical to
// Network.Transmit on the same inputs.
func (p *Ports) Transmit(lane, srcNIC, dstNIC int, lt LinkTiming, now, jitter float64) (sendComplete, delivered float64) {
	sf := p.sendFree[lane*p.nics:]
	rf := p.recvFree[lane*p.nics:]
	tx := lt.TxTime
	if tx > 0 {
		tx = tx * jitter
	}
	startTx := max(now+lt.SendOv, sf[srcNIC])
	sendComplete = startTx + tx
	sf[srcNIC] = sendComplete
	arrival := sendComplete + lt.Latency
	startRx := max(arrival, rf[dstNIC])
	drained := startRx + lt.RxTime
	rf[dstNIC] = drained
	delivered = drained + lt.RecvOv
	return sendComplete, delivered
}

// TransmitLocal replays a transfer between co-located processes (shared
// NIC): no port is occupied and no jitter is drawn. lt.TxTime is the
// precomputed bytes·IntraNodeByteTime and lt.Latency the intra-node
// latency.
func (p *Ports) TransmitLocal(lt LinkTiming, now float64) (sendComplete, delivered float64) {
	startTx := now + lt.SendOv
	sendComplete = startTx + lt.TxTime
	arrival := sendComplete + lt.Latency
	delivered = arrival + lt.RecvOv
	return sendComplete, delivered
}

// Noisy reports whether Transmit draws a jitter factor per transfer on
// this network (replay must consume the stream for exactly the transfers
// the scheduler would have).
func (n *Network) Noisy() bool { return n.rng != nil }

// DrawJitterInto fills dst with (1+ε) transmission-time factors drawn from
// the network's live noise stream under the configured jitter
// distribution, one per element, in order — the exact factors the next
// len(dst) noisy Transmit calls would have used (each noisy transfer
// consumes exactly one uniform draw regardless of distribution). On a
// noise-free network every factor is 1 and the (absent) stream is
// untouched.
func (n *Network) DrawJitterInto(dst []float64) {
	if n.rng == nil {
		for i := range dst {
			dst[i] = 1
		}
		return
	}
	if len(dst) > 0 {
		n.used = true
	}
	for i := range dst {
		dst[i] = n.jitterFactor()
	}
}
