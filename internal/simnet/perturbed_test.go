package simnet

import (
	"testing"

	"mpicollperf/internal/perturb"
)

// perturbedConfig composes a spec onto the noise-free 8-node test config.
func perturbedConfig(spec *perturb.Spec) Config {
	cfg := testConfig()
	cfg.Perturb = spec
	return cfg
}

// TestTimingForUnperturbedIdentity pins the perturbation layer's
// bit-compatibility contract: with no spec configured, TimingFor returns
// the configuration's exact values — not recomputed ones — so unperturbed
// simulations cannot drift by a ULP.
func TestTimingForUnperturbedIdentity(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m = 123457
	lt := n.TimingFor(0, 5, m)
	if lt.Local {
		t.Fatal("cross-node transfer marked local")
	}
	if lt.TxTime != float64(m)*cfg.ByteTimeSend ||
		lt.RxTime != float64(m)*cfg.ByteTimeRecv ||
		lt.Latency != cfg.Latency ||
		lt.SendOv != cfg.SendOverhead ||
		lt.RecvOv != cfg.RecvOverhead {
		t.Fatalf("unperturbed TimingFor diverged from config: %+v", lt)
	}
	if !n.ReplayInvariant() {
		t.Fatal("unperturbed network must be replay-invariant")
	}
}

func TestStragglerSlowsOnlyItsNode(t *testing.T) {
	spec := &perturb.Spec{Stragglers: []perturb.Straggler{{Node: 2, Compute: 3, NIC: 2}}}
	cfg := perturbedConfig(spec)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m = 1 << 16
	// Straggler as sender: overhead ×3, injection byte time ×2.
	lt := n.TimingFor(2, 5, m)
	if lt.SendOv != 3*cfg.SendOverhead {
		t.Errorf("straggler SendOv = %v, want %v", lt.SendOv, 3*cfg.SendOverhead)
	}
	if lt.TxTime != 2*float64(m)*cfg.ByteTimeSend {
		t.Errorf("straggler TxTime = %v, want %v", lt.TxTime, 2*float64(m)*cfg.ByteTimeSend)
	}
	// Straggler as receiver: drain byte time ×2, recv overhead ×3.
	lt = n.TimingFor(5, 2, m)
	if lt.RxTime != 2*float64(m)*cfg.ByteTimeRecv || lt.RecvOv != 3*cfg.RecvOverhead {
		t.Errorf("straggler receive timing = %+v", lt)
	}
	// Uninvolved pair: exactly the quiet platform.
	lt = n.TimingFor(4, 7, m)
	if lt.TxTime != float64(m)*cfg.ByteTimeSend || lt.SendOv != cfg.SendOverhead {
		t.Errorf("uninvolved link perturbed: %+v", lt)
	}
	if !n.ReplayInvariant() {
		t.Fatal("straggler spec must be replay-invariant")
	}
	if got := n.SendOverheadOf(2); got != 3*cfg.SendOverhead {
		t.Errorf("SendOverheadOf(2) = %v", got)
	}
	if got := n.SendOverheadOf(3); got != cfg.SendOverhead {
		t.Errorf("SendOverheadOf(3) = %v", got)
	}
}

func TestStragglersComposeMultiplicatively(t *testing.T) {
	spec := &perturb.Spec{Stragglers: []perturb.Straggler{
		{Node: 1, NIC: 2},
		{Node: 1, NIC: 3},
	}}
	cfg := perturbedConfig(spec)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m = 4096
	lt := n.TimingFor(1, 0, m)
	if lt.TxTime != 6*float64(m)*cfg.ByteTimeSend {
		t.Errorf("stacked stragglers TxTime = %v, want ×6", lt.TxTime)
	}
}

func TestLinkRuleIsDirectional(t *testing.T) {
	spec := &perturb.Spec{Links: []perturb.LinkRule{{Src: 0, Dst: 1, Latency: 3, Bandwidth: 4}}}
	cfg := perturbedConfig(spec)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m = 8192
	lt := n.TimingFor(0, 1, m)
	if lt.Latency != 3*cfg.Latency {
		t.Errorf("degraded link latency = %v, want %v", lt.Latency, 3*cfg.Latency)
	}
	if lt.TxTime != 4*float64(m)*cfg.ByteTimeSend {
		t.Errorf("degraded link TxTime = %v, want ×4", lt.TxTime)
	}
	// The reverse direction is untouched.
	back := n.TimingFor(1, 0, m)
	if back.Latency != cfg.Latency || back.TxTime != float64(m)*cfg.ByteTimeSend {
		t.Errorf("reverse direction perturbed: %+v", back)
	}
}

func TestBrownoutWindow(t *testing.T) {
	// A brownout that collapses 0->1 bandwidth by 100× during
	// [1ms, 2ms): transfers starting inside the window crawl, transfers
	// before and after run at full speed.
	spec := &perturb.Spec{Brownouts: []perturb.Brownout{
		{Src: 0, Dst: 1, Start: 1e-3, End: 2e-3, Bandwidth: 100},
	}}
	cfg := perturbedConfig(spec)
	const m = 1 << 16
	base := float64(m) * cfg.ByteTimeSend

	// Compare absolute completion times (SendComplete is StartTx + txTime
	// computed in float; recomputing the same sum keeps the check
	// bit-exact).
	txAt := func(now float64, want float64) {
		t.Helper()
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := n.Transmit(0, 1, m, now)
		if err != nil {
			t.Fatal(err)
		}
		if tr.SendComplete != tr.StartTx+want {
			t.Errorf("transfer at t=%v: tx = %v, want %v", now, tr.SendComplete-tr.StartTx, want)
		}
	}
	txAt(0, base)            // before the window
	txAt(1.5e-3, 100*base)   // inside: bandwidth collapsed 100×
	txAt(2.5e-3, base)       // after: recovered

	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.ReplayInvariant() {
		t.Fatal("brownout network must not be replay-invariant")
	}
	// The other direction, and other links, never brown out.
	tr, err := n.Transmit(1, 0, m, 1.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SendComplete != tr.StartTx+base {
		t.Error("reverse direction browned out")
	}
}

// TestPerturbedDeterminism: same config ⇒ bit-identical transfer stream,
// even with jitter and a full perturbation stack.
func TestPerturbedDeterminism(t *testing.T) {
	spec, err := perturb.Parse("straggler:node=0,cpu=2,nic=1.5;link:src=1,dst=2,lat=2,bw=3;jitter:pareto,alpha=1.5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := perturbedConfig(spec)
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 42

	run := func() []float64 {
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		now := 0.0
		for i := 0; i < 50; i++ {
			tr, err := n.Transmit(i%4, (i+1)%4, 1000*(i+1), now)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tr.Delivered)
			now = tr.StartTx
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d diverged: %x != %x", i, a[i], b[i])
		}
	}
}

// TestPerturbValidateAtNew asserts that New rejects a spec that refers to
// nodes outside the cluster.
func TestPerturbValidateAtNew(t *testing.T) {
	cfg := perturbedConfig(&perturb.Spec{Stragglers: []perturb.Straggler{{Node: 99, NIC: 2}}})
	if _, err := New(cfg); err == nil {
		t.Fatal("New must reject out-of-range straggler node")
	}
}
