package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Nodes:        8,
		Latency:      20e-6,
		ByteTimeSend: 1e-9,
		ByteTimeRecv: 1e-9,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
	}
}

func TestValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Nodes: 0},
		{Nodes: 2, Latency: -1},
		{Nodes: 2, ByteTimeSend: -1},
		{Nodes: 2, SendOverhead: -1},
		{Nodes: 2, RecvOverhead: -1},
		{Nodes: 2, NoiseAmplitude: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(Config{Nodes: -3}); err == nil {
		t.Error("New should reject invalid config")
	}
}

func TestSingleTransferTiming(t *testing.T) {
	cfg := testConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m = 1 << 20
	tr, err := n.Transmit(0, 1, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.StartTx != cfg.SendOverhead {
		t.Errorf("StartTx = %v", tr.StartTx)
	}
	wantSendDone := cfg.SendOverhead + float64(m)*cfg.ByteTimeSend
	if math.Abs(tr.SendComplete-wantSendDone) > 1e-15 {
		t.Errorf("SendComplete = %v, want %v", tr.SendComplete, wantSendDone)
	}
	wantDelivered := cfg.PointToPointTime(m)
	if math.Abs(tr.Delivered-wantDelivered) > 1e-12 {
		t.Errorf("Delivered = %v, want %v", tr.Delivered, wantDelivered)
	}
}

func TestSendPortSerialisation(t *testing.T) {
	// P-1 back-to-back sends from node 0 must serialise on its send port:
	// this is the physical origin of the paper's γ(P) > 1.
	cfg := testConfig()
	n, _ := New(cfg)
	const m = 8192
	var last Transfer
	for dst := 1; dst <= 5; dst++ {
		tr, err := n.Transmit(0, dst, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dst > 1 && tr.StartTx < last.SendComplete {
			t.Fatalf("send to %d started at %v before previous completed at %v",
				dst, tr.StartTx, last.SendComplete)
		}
		last = tr
	}
	// The 5th transfer leaves the port only after 5 transmissions' worth of
	// byte time.
	wantMin := cfg.SendOverhead + 5*float64(m)*cfg.ByteTimeSend
	if last.SendComplete < wantMin-1e-15 {
		t.Fatalf("SendComplete = %v, want >= %v", last.SendComplete, wantMin)
	}
}

func TestRecvPortSerialisation(t *testing.T) {
	cfg := testConfig()
	n, _ := New(cfg)
	const m = 1 << 16
	a, _ := n.Transmit(1, 0, m, 0)
	b, _ := n.Transmit(2, 0, m, 0)
	// Both arrive around the same moment; the second must wait for the
	// receive port to drain the first.
	if b.Delivered <= a.Delivered {
		t.Fatalf("second delivery %v not after first %v", b.Delivered, a.Delivered)
	}
	gap := b.Delivered - a.Delivered
	wantGap := float64(m) * cfg.ByteTimeRecv
	if math.Abs(gap-wantGap) > 1e-12 {
		t.Fatalf("delivery gap = %v, want %v", gap, wantGap)
	}
}

func TestFullDuplexPorts(t *testing.T) {
	// A node forwarding (receiving on one port, sending on the other) must
	// not serialise the two directions; this is what enables pipelining.
	cfg := testConfig()
	n, _ := New(cfg)
	const m = 1 << 20
	in, _ := n.Transmit(0, 1, m, 0)
	out, _ := n.Transmit(1, 2, m, 0)
	// The outgoing transfer from node 1 starts immediately, regardless of
	// the inbound transfer occupying node 1's receive port.
	if out.StartTx > cfg.SendOverhead+1e-15 {
		t.Fatalf("outbound blocked by inbound: StartTx = %v", out.StartTx)
	}
	_ = in
}

func TestTransmitErrors(t *testing.T) {
	n, _ := New(testConfig())
	if _, err := n.Transmit(0, 0, 10, 0); err == nil {
		t.Error("self transfer should fail")
	}
	if _, err := n.Transmit(-1, 1, 10, 0); err == nil {
		t.Error("negative src should fail")
	}
	if _, err := n.Transmit(0, 99, 10, 0); err == nil {
		t.Error("dst out of range should fail")
	}
	if _, err := n.Transmit(0, 1, -5, 0); err == nil {
		t.Error("negative size should fail")
	}
}

func TestZeroByteTransfer(t *testing.T) {
	cfg := testConfig()
	n, _ := New(cfg)
	tr, err := n.Transmit(0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.SendOverhead + cfg.Latency + cfg.RecvOverhead
	if math.Abs(tr.Delivered-want) > 1e-15 {
		t.Fatalf("zero-byte delivery = %v, want pure latency %v", tr.Delivered, want)
	}
}

func TestNoiseDeterminismAndBounds(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseAmplitude = 0.1
	cfg.NoiseSeed = 1234
	n1, _ := New(cfg)
	n2, _ := New(cfg)
	base := cfg
	base.NoiseAmplitude = 0
	clean, _ := New(base)
	for i := 0; i < 100; i++ {
		a, _ := n1.Transmit(0, 1, 8192, float64(i))
		b, _ := n2.Transmit(0, 1, 8192, float64(i))
		c, _ := clean.Transmit(0, 1, 8192, float64(i))
		if a.Delivered != b.Delivered {
			t.Fatal("identical configs diverged")
		}
		if a.Delivered < c.Delivered-1e-15 {
			t.Fatal("noise made a transfer faster than noise-free")
		}
		if a.SendComplete > c.SendComplete*(1+0.1)+1e-9 {
			t.Fatal("noise exceeded amplitude bound")
		}
	}
}

func TestReset(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 7
	n, _ := New(cfg)
	first, _ := n.Transmit(0, 1, 4096, 0)
	for i := 0; i < 10; i++ {
		_, _ = n.Transmit(2, 3, 1024, float64(i))
	}
	if n.Transfers() != 11 {
		t.Fatalf("Transfers = %d", n.Transfers())
	}
	n.Reset()
	if n.Transfers() != 0 {
		t.Fatal("Reset should clear counter")
	}
	again, _ := n.Transmit(0, 1, 4096, 0)
	if again.Delivered != first.Delivered {
		t.Fatalf("Reset did not restore reproducibility: %v vs %v",
			again.Delivered, first.Delivered)
	}
}

func TestTraceHook(t *testing.T) {
	n, _ := New(testConfig())
	var seen []Transfer
	n.SetTrace(func(tr Transfer) { seen = append(seen, tr) })
	_, _ = n.Transmit(0, 1, 100, 0)
	_, _ = n.Transmit(1, 2, 200, 1)
	if len(seen) != 2 || seen[0].Bytes != 100 || seen[1].Src != 1 {
		t.Fatalf("trace = %+v", seen)
	}
	n.SetTrace(nil)
	_, _ = n.Transmit(2, 3, 1, 2)
	if len(seen) != 2 {
		t.Fatal("trace not disabled")
	}
}

func TestPointToPointTimeLinearInBytes(t *testing.T) {
	cfg := testConfig()
	t0 := cfg.PointToPointTime(0)
	t1 := cfg.PointToPointTime(1000)
	t2 := cfg.PointToPointTime(2000)
	if math.Abs((t2-t1)-(t1-t0)) > 1e-18 {
		t.Fatal("PointToPointTime not affine in message size")
	}
}

// Property: causality — every transfer is delivered strictly after it was
// issued, and timing fields are monotonically ordered.
func TestTransferCausalityProperty(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseAmplitude = 0.2
	cfg.NoiseSeed = 99
	n, _ := New(cfg)
	now := 0.0
	f := func(srcRaw, dstRaw uint8, size uint16, dt uint8) bool {
		src := int(srcRaw) % cfg.Nodes
		dst := int(dstRaw) % cfg.Nodes
		if src == dst {
			return true
		}
		now += float64(dt) * 1e-6
		tr, err := n.Transmit(src, dst, int(size), now)
		if err != nil {
			return false
		}
		return tr.Issued <= tr.StartTx &&
			tr.StartTx <= tr.SendComplete &&
			tr.SendComplete < tr.Arrival &&
			tr.Arrival <= tr.Delivered &&
			tr.Delivered > tr.Issued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: with noise disabled, transfer duration is non-decreasing in
// message size when the network is otherwise idle.
func TestMonotoneInSizeProperty(t *testing.T) {
	cfg := testConfig()
	f := func(a, b uint32) bool {
		sa, sb := int(a%(1<<22)), int(b%(1<<22))
		if sa > sb {
			sa, sb = sb, sa
		}
		return cfg.PointToPointTime(sa) <= cfg.PointToPointTime(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
