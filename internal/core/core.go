// Package core ties the reproduction together into the library's
// user-facing workflow, mirroring how the paper intends its method to be
// deployed inside an MPI library:
//
//  1. Calibrate once per platform (offline): estimate γ(P) from
//     non-blocking linear broadcast experiments and per-algorithm α/β from
//     broadcast+gather experiments (§4).
//  2. Select at run time (online): for each MPI_Bcast call, evaluate six
//     closed-form models and take the argmin — a few hundred nanoseconds,
//     as cheap as Open MPI's hard-coded decision function but adaptive to
//     the platform.
//
// Calibrations can be persisted to JSON and reloaded, so the expensive
// offline phase runs once per cluster.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/selection"
)

// Daemon-facing sentinel errors: long-running servers map failures to
// HTTP status codes with errors.Is instead of string matching, so the
// distinctions the handlers need are pinned here. Returners wrap them
// with context (fmt.Errorf("...: %w", ...)).
var (
	// ErrNotCalibrated reports a selection query against a (profile,
	// collective) pair that has no fitted models yet — the caller should
	// calibrate first (or wait for a calibration job to finish).
	ErrNotCalibrated = errors.New("not calibrated")
	// ErrUnknownProfile reports a query referencing a platform profile
	// this process does not know.
	ErrUnknownProfile = errors.New("unknown profile")
)

// Selector is a calibrated run-time algorithm selector for one platform.
type Selector struct {
	// Profile is the platform the selector was calibrated on.
	Profile cluster.Profile
	// Models holds γ and the per-algorithm Hockney parameters.
	Models model.BcastModels
	// GammaDetail keeps the raw γ estimation diagnostics.
	GammaDetail estimate.GammaResult
	// Extended holds per-family extended-collective selectors keyed by
	// family name ("allgather", "reduce", ...), populated by
	// CalibrateExtendedOp. BestFor consults it for every non-broadcast
	// collective; nil or missing entries report ErrNotCalibrated.
	Extended map[string]*selection.ExtendedSelector
}

// Calibrate runs the full offline estimation pipeline (§4) on the profile
// and returns a ready selector. cfg.Settings defaults to the paper's
// methodology; cfg.Procs defaults to half the platform.
func Calibrate(pr cluster.Profile, cfg estimate.AlphaBetaConfig) (*Selector, error) {
	return CalibrateCtx(context.Background(), pr, cfg)
}

// CalibrateCtx is Calibrate with cancellation: a cancelled ctx stops the
// calibration sweep promptly.
func CalibrateCtx(ctx context.Context, pr cluster.Profile, cfg estimate.AlphaBetaConfig) (*Selector, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	bm, gr, err := estimate.ModelsCtx(ctx, pr, cfg)
	if err != nil {
		return nil, err
	}
	return &Selector{Profile: pr, Models: bm, GammaDetail: gr}, nil
}

// Best returns the algorithm with the minimal predicted broadcast time for
// m bytes over P processes (the run-time decision function).
func (s *Selector) Best(P, m int) (selection.Choice, error) {
	return selection.ModelBased{Models: s.Models}.Select(P, m)
}

// OpBcast is the collective-family name of the broadcast models every
// Selector carries; the extended families take their names from
// estimate.AllSpecFamilies.
const OpBcast = "bcast"

// OpChoice is a collective-agnostic selection result: the winning
// algorithm of one collective family for (P, m), in the query shape the
// daemon's wire API and the library facade share.
type OpChoice struct {
	// Op is the collective family the query was about ("bcast",
	// "allgather", ...).
	Op string
	// Algorithm names the winning algorithm, family-qualified
	// ("bcast/binomial", "allgather/ring").
	Algorithm string
	// SegSize is the segment size the algorithm should run with
	// (0 = unsegmented).
	SegSize int
	// Predicted is the winning algorithm's modelled time in seconds.
	Predicted float64
}

// bcastAlgs and bcastOpNames are hoisted so BestFor allocates nothing:
// the run-time decision sits on the daemon's hot select path.
var (
	bcastAlgs    = coll.BcastAlgorithms()
	bcastOpNames = func() []string {
		names := make([]string, len(bcastAlgs))
		for i, alg := range bcastAlgs {
			names[i] = OpBcast + "/" + alg.String()
		}
		return names
	}()
)

// BestFor generalises Best across collective families: op selects the
// family ("" or "bcast" for the broadcast models; any calibrated extended
// family otherwise), and the result carries the family-qualified winner
// plus its predicted time. Querying a family with no fitted models
// reports ErrNotCalibrated. BestFor performs no allocation on the happy
// path — it is the daemon's hot selection primitive.
func (s *Selector) BestFor(op string, P, m int) (OpChoice, error) {
	if op == "" || op == OpBcast {
		best, bestT := -1, 0.0
		for i, alg := range bcastAlgs {
			t, err := s.Models.Predict(alg, P, m)
			if err != nil {
				continue
			}
			if best < 0 || t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			return OpChoice{}, fmt.Errorf("core: no broadcast models on %s: %w", s.Models.Cluster, ErrNotCalibrated)
		}
		return OpChoice{Op: OpBcast, Algorithm: bcastOpNames[best], SegSize: s.Models.SegSize, Predicted: bestT}, nil
	}
	es := s.Extended[op]
	if es == nil || len(es.Specs) == 0 {
		return OpChoice{}, fmt.Errorf("core: collective %q on %s: %w", op, s.Models.Cluster, ErrNotCalibrated)
	}
	i, name := es.Best(P, m)
	return OpChoice{Op: op, Algorithm: name, SegSize: es.SegSize, Predicted: es.Predict(i, P, m)}, nil
}

// CalibrateExtendedOp fits the named extended collective family ("gather",
// "allreduce", ... — see estimate.AllSpecFamilies) on the selector's
// platform, reusing the already-estimated γ, and attaches the result so
// BestFor can answer queries for it. The per-spec estimations check ctx
// between specs, so a cancelled context stops the calibration at the next
// algorithm boundary.
func (s *Selector) CalibrateExtendedOp(ctx context.Context, op string, cfg estimate.AlphaBetaConfig) error {
	specs, ok := estimate.AllSpecFamilies()[op]
	if !ok {
		return fmt.Errorf("core: unknown collective family %q", op)
	}
	sel := &selection.ExtendedSelector{
		Cluster: s.Profile.Name,
		SegSize: s.Profile.SegmentSize,
		Gamma:   s.Models.Gamma,
		Specs:   specs,
		Params:  make([]model.Hockney, len(specs)),
	}
	for i, spec := range specs {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := estimate.AlphaBetaCollective(s.Profile, spec, s.Models.Gamma, cfg)
		if err != nil {
			return fmt.Errorf("core: calibrating %s: %w", spec.Name, err)
		}
		sel.Params[i] = res.Params
	}
	if s.Extended == nil {
		s.Extended = make(map[string]*selection.ExtendedSelector)
	}
	s.Extended[op] = sel
	return nil
}

// Predict returns the modelled time of one algorithm.
func (s *Selector) Predict(alg coll.BcastAlgorithm, P, m int) (float64, error) {
	return s.Models.Predict(alg, P, m)
}

// PredictAll returns every algorithm's predicted time.
func (s *Selector) PredictAll(P, m int) map[coll.BcastAlgorithm]float64 {
	return selection.ModelBased{Models: s.Models}.PredictAll(P, m)
}

// MeasureBcast runs the algorithm on the simulated platform and returns
// its measured mean execution time — the "ground truth" the models are
// judged against.
func (s *Selector) MeasureBcast(alg coll.BcastAlgorithm, P, m int, set experiment.Settings) (float64, error) {
	meas, err := experiment.MeasureBcast(s.Profile, P, alg, m, s.Profile.SegmentSize, set)
	if err != nil {
		return 0, err
	}
	return meas.Mean, nil
}

// CalibrationSchemaVersion is the current calibration file schema
// version. Bump it when the schema changes incompatibly; LoadModels
// rejects files carrying any other version (including files from before
// versioning, which parse as version 0) with an
// *UnsupportedVersionError. The daemon's content-addressed store keys
// its files by profile digest plus this version, so a schema bump makes
// old cache entries invisible instead of unreadable.
const CalibrationSchemaVersion = 1

// UnsupportedVersionError reports a calibration file whose schema version
// this build does not understand — newer than this library, or predating
// schema versioning entirely.
type UnsupportedVersionError struct {
	// Path is the file that was rejected.
	Path string
	// Version is the version the file declared (0 when absent).
	Version int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("core: calibration %s has unsupported schema version %d (supported: %d); recalibrate with this library version",
		e.Path, e.Version, CalibrationSchemaVersion)
}

// calibrationFile is the JSON persistence schema. Algorithm keys are
// stored by name so the file is stable across enum reorderings.
type calibrationFile struct {
	Version  int                `json:"version"`
	Cluster  string             `json:"cluster"`
	SegSize  int                `json:"segment_size"`
	GammaTab map[string]float64 `json:"gamma"` // "P" -> γ(P)
	GammaFit struct {
		Intercept float64 `json:"intercept"`
		Slope     float64 `json:"slope"`
	} `json:"gamma_fit"`
	Params map[string]struct {
		Alpha float64 `json:"alpha"`
		Beta  float64 `json:"beta"`
	} `json:"params"`
}

// SaveModels writes the calibrated models to a JSON file.
func (s *Selector) SaveModels(path string) error {
	var f calibrationFile
	f.Version = CalibrationSchemaVersion
	f.Cluster = s.Models.Cluster
	f.SegSize = s.Models.SegSize
	f.GammaTab = make(map[string]float64, len(s.Models.Gamma.Table))
	for p, g := range s.Models.Gamma.Table {
		f.GammaTab[fmt.Sprint(p)] = g
	}
	f.GammaFit.Intercept = s.Models.Gamma.Fit.Intercept
	f.GammaFit.Slope = s.Models.Gamma.Fit.Slope
	f.Params = make(map[string]struct {
		Alpha float64 `json:"alpha"`
		Beta  float64 `json:"beta"`
	}, len(s.Models.Params))
	for alg, par := range s.Models.Params {
		f.Params[alg.String()] = struct {
			Alpha float64 `json:"alpha"`
			Beta  float64 `json:"beta"`
		}{par.Alpha, par.Beta}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModels reads a calibration JSON and attaches it to the profile,
// returning a selector that skips the offline phase.
func LoadModels(pr cluster.Profile, path string) (*Selector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		// Keep the underlying error in the chain: a missing file must stay
		// distinguishable (errors.Is(err, fs.ErrNotExist)) from a corrupt
		// one, so a calibration store can answer "not yet calibrated"
		// instead of surfacing an opaque failure.
		return nil, fmt.Errorf("core: loading calibration %s: %w", path, err)
	}
	var f calibrationFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", path, err)
	}
	if f.Version != CalibrationSchemaVersion {
		return nil, &UnsupportedVersionError{Path: path, Version: f.Version}
	}
	if f.Cluster != pr.Name {
		return nil, fmt.Errorf("core: calibration is for %q, profile is %q", f.Cluster, pr.Name)
	}
	table := make(map[int]float64, len(f.GammaTab))
	for k, v := range f.GammaTab {
		var p int
		if _, err := fmt.Sscanf(k, "%d", &p); err != nil {
			return nil, fmt.Errorf("core: bad gamma key %q", k)
		}
		table[p] = v
	}
	g, err := model.NewGamma(table)
	if err != nil {
		return nil, err
	}
	bm := model.BcastModels{
		Cluster: f.Cluster,
		SegSize: f.SegSize,
		Gamma:   g,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney, len(f.Params)),
	}
	for name, par := range f.Params {
		alg, err := coll.ParseBcastAlgorithm(name)
		if err != nil {
			return nil, err
		}
		bm.Params[alg] = model.Hockney{Alpha: par.Alpha, Beta: par.Beta}
	}
	if len(bm.Params) == 0 {
		return nil, fmt.Errorf("core: calibration %s has no algorithm parameters", path)
	}
	return &Selector{Profile: pr, Models: bm}, nil
}
