// Package core ties the reproduction together into the library's
// user-facing workflow, mirroring how the paper intends its method to be
// deployed inside an MPI library:
//
//  1. Calibrate once per platform (offline): estimate γ(P) from
//     non-blocking linear broadcast experiments and per-algorithm α/β from
//     broadcast+gather experiments (§4).
//  2. Select at run time (online): for each MPI_Bcast call, evaluate six
//     closed-form models and take the argmin — a few hundred nanoseconds,
//     as cheap as Open MPI's hard-coded decision function but adaptive to
//     the platform.
//
// Calibrations can be persisted to JSON and reloaded, so the expensive
// offline phase runs once per cluster.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/selection"
)

// Selector is a calibrated run-time algorithm selector for one platform.
type Selector struct {
	// Profile is the platform the selector was calibrated on.
	Profile cluster.Profile
	// Models holds γ and the per-algorithm Hockney parameters.
	Models model.BcastModels
	// GammaDetail keeps the raw γ estimation diagnostics.
	GammaDetail estimate.GammaResult
}

// Calibrate runs the full offline estimation pipeline (§4) on the profile
// and returns a ready selector. cfg.Settings defaults to the paper's
// methodology; cfg.Procs defaults to half the platform.
func Calibrate(pr cluster.Profile, cfg estimate.AlphaBetaConfig) (*Selector, error) {
	return CalibrateCtx(context.Background(), pr, cfg)
}

// CalibrateCtx is Calibrate with cancellation: a cancelled ctx stops the
// calibration sweep promptly.
func CalibrateCtx(ctx context.Context, pr cluster.Profile, cfg estimate.AlphaBetaConfig) (*Selector, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	bm, gr, err := estimate.ModelsCtx(ctx, pr, cfg)
	if err != nil {
		return nil, err
	}
	return &Selector{Profile: pr, Models: bm, GammaDetail: gr}, nil
}

// Best returns the algorithm with the minimal predicted broadcast time for
// m bytes over P processes (the run-time decision function).
func (s *Selector) Best(P, m int) (selection.Choice, error) {
	return selection.ModelBased{Models: s.Models}.Select(P, m)
}

// Predict returns the modelled time of one algorithm.
func (s *Selector) Predict(alg coll.BcastAlgorithm, P, m int) (float64, error) {
	return s.Models.Predict(alg, P, m)
}

// PredictAll returns every algorithm's predicted time.
func (s *Selector) PredictAll(P, m int) map[coll.BcastAlgorithm]float64 {
	return selection.ModelBased{Models: s.Models}.PredictAll(P, m)
}

// MeasureBcast runs the algorithm on the simulated platform and returns
// its measured mean execution time — the "ground truth" the models are
// judged against.
func (s *Selector) MeasureBcast(alg coll.BcastAlgorithm, P, m int, set experiment.Settings) (float64, error) {
	meas, err := experiment.MeasureBcast(s.Profile, P, alg, m, s.Profile.SegmentSize, set)
	if err != nil {
		return 0, err
	}
	return meas.Mean, nil
}

// calibrationFileVersion is the current calibration file schema version.
// Bump it when the schema changes incompatibly; LoadModels rejects files
// carrying any other version (including files from before versioning,
// which parse as version 0) with an *UnsupportedVersionError.
const calibrationFileVersion = 1

// UnsupportedVersionError reports a calibration file whose schema version
// this build does not understand — newer than this library, or predating
// schema versioning entirely.
type UnsupportedVersionError struct {
	// Path is the file that was rejected.
	Path string
	// Version is the version the file declared (0 when absent).
	Version int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("core: calibration %s has unsupported schema version %d (supported: %d); recalibrate with this library version",
		e.Path, e.Version, calibrationFileVersion)
}

// calibrationFile is the JSON persistence schema. Algorithm keys are
// stored by name so the file is stable across enum reorderings.
type calibrationFile struct {
	Version  int                `json:"version"`
	Cluster  string             `json:"cluster"`
	SegSize  int                `json:"segment_size"`
	GammaTab map[string]float64 `json:"gamma"` // "P" -> γ(P)
	GammaFit struct {
		Intercept float64 `json:"intercept"`
		Slope     float64 `json:"slope"`
	} `json:"gamma_fit"`
	Params map[string]struct {
		Alpha float64 `json:"alpha"`
		Beta  float64 `json:"beta"`
	} `json:"params"`
}

// SaveModels writes the calibrated models to a JSON file.
func (s *Selector) SaveModels(path string) error {
	var f calibrationFile
	f.Version = calibrationFileVersion
	f.Cluster = s.Models.Cluster
	f.SegSize = s.Models.SegSize
	f.GammaTab = make(map[string]float64, len(s.Models.Gamma.Table))
	for p, g := range s.Models.Gamma.Table {
		f.GammaTab[fmt.Sprint(p)] = g
	}
	f.GammaFit.Intercept = s.Models.Gamma.Fit.Intercept
	f.GammaFit.Slope = s.Models.Gamma.Fit.Slope
	f.Params = make(map[string]struct {
		Alpha float64 `json:"alpha"`
		Beta  float64 `json:"beta"`
	}, len(s.Models.Params))
	for alg, par := range s.Models.Params {
		f.Params[alg.String()] = struct {
			Alpha float64 `json:"alpha"`
			Beta  float64 `json:"beta"`
		}{par.Alpha, par.Beta}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModels reads a calibration JSON and attaches it to the profile,
// returning a selector that skips the offline phase.
func LoadModels(pr cluster.Profile, path string) (*Selector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f calibrationFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("core: parsing %s: %w", path, err)
	}
	if f.Version != calibrationFileVersion {
		return nil, &UnsupportedVersionError{Path: path, Version: f.Version}
	}
	if f.Cluster != pr.Name {
		return nil, fmt.Errorf("core: calibration is for %q, profile is %q", f.Cluster, pr.Name)
	}
	table := make(map[int]float64, len(f.GammaTab))
	for k, v := range f.GammaTab {
		var p int
		if _, err := fmt.Sscanf(k, "%d", &p); err != nil {
			return nil, fmt.Errorf("core: bad gamma key %q", k)
		}
		table[p] = v
	}
	g, err := model.NewGamma(table)
	if err != nil {
		return nil, err
	}
	bm := model.BcastModels{
		Cluster: f.Cluster,
		SegSize: f.SegSize,
		Gamma:   g,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney, len(f.Params)),
	}
	for name, par := range f.Params {
		alg, err := coll.ParseBcastAlgorithm(name)
		if err != nil {
			return nil, err
		}
		bm.Params[alg] = model.Hockney{Alpha: par.Alpha, Beta: par.Beta}
	}
	if len(bm.Params) == 0 {
		return nil, fmt.Errorf("core: calibration %s has no algorithm parameters", path)
	}
	return &Selector{Profile: pr, Models: bm}, nil
}
