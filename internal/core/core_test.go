package core

import (
	"os"
	"path/filepath"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
)

func fastSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

func calibrateSmall(t *testing.T) *Selector {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Calibrate(pr, estimate.AlphaBetaConfig{
		Procs:    8,
		Sizes:    []int{8192, 65536, 524288, 2 << 20},
		Settings: fastSettings(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestCalibrateAndSelect(t *testing.T) {
	sel := calibrateSmall(t)
	choice, err := sel.Best(16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if choice.SegSize != sel.Profile.SegmentSize {
		t.Fatalf("choice segment size %d", choice.SegSize)
	}
	if choice.Alg == coll.BcastLinear {
		t.Fatal("linear must not win a 1MB broadcast at P=16")
	}
	all := sel.PredictAll(16, 1<<20)
	if len(all) != len(coll.BcastAlgorithms()) {
		t.Fatalf("PredictAll covered %d algorithms", len(all))
	}
	if all[choice.Alg] > all[coll.BcastLinear] {
		t.Fatal("selected algorithm is not the argmin")
	}
	if v, err := sel.Predict(coll.BcastBinomial, 16, 8192); err != nil || v <= 0 {
		t.Fatalf("Predict = %v, %v", v, err)
	}
	if tm, err := sel.MeasureBcast(choice.Alg, 16, 1<<20, fastSettings()); err != nil || tm <= 0 {
		t.Fatalf("MeasureBcast = %v, %v", tm, err)
	}
}

func TestCalibrateRejectsInvalidProfile(t *testing.T) {
	if _, err := Calibrate(cluster.Profile{}, estimate.AlphaBetaConfig{}); err == nil {
		t.Fatal("invalid profile should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sel := calibrateSmall(t)
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := sel.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(sel.Profile, path)
	if err != nil {
		t.Fatal(err)
	}
	// Selections and predictions must be identical after a round trip.
	for _, m := range []int{8192, 262144, 4 << 20} {
		a, err1 := sel.Best(16, m)
		b, err2 := loaded.Best(16, m)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("m=%d: %v/%v vs %v/%v", m, a, err1, b, err2)
		}
		for _, alg := range coll.BcastAlgorithms() {
			pa, _ := sel.Predict(alg, 16, m)
			pb, _ := loaded.Predict(alg, 16, m)
			if diff := pa - pb; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%v at m=%d: %v vs %v", alg, m, pa, pb)
			}
		}
	}
}

func TestLoadModelsValidation(t *testing.T) {
	sel := calibrateSmall(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	if err := sel.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	// Wrong cluster.
	if _, err := LoadModels(cluster.Gros(), path); err == nil {
		t.Fatal("cluster mismatch should fail")
	}
	// Missing file.
	if _, err := LoadModels(sel.Profile, filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing file should fail")
	}
	// Corrupt file.
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(sel.Profile, bad); err == nil {
		t.Fatal("corrupt file should fail")
	}
	// Valid JSON but empty params.
	empty := filepath.Join(dir, "empty.json")
	if err := writeFile(empty, `{"cluster":"grisou","segment_size":8192,"gamma":{"3":1.1},"params":{}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(sel.Profile, empty); err == nil {
		t.Fatal("empty params should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
