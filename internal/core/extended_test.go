package core

import (
	"context"
	"errors"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/estimate"
)

// TestBestForBcast pins that the collective-generic query agrees with the
// bcast-only decision function and carries the winning predicted time.
func TestBestForBcast(t *testing.T) {
	sel := calibrateSmall(t)
	choice, err := sel.Best(16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"", OpBcast} {
		oc, err := sel.BestFor(op, 16, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Op != OpBcast {
			t.Fatalf("op = %q", oc.Op)
		}
		if want := OpBcast + "/" + choice.Alg.String(); oc.Algorithm != want {
			t.Fatalf("BestFor = %q, Best = %q", oc.Algorithm, want)
		}
		if oc.SegSize != choice.SegSize {
			t.Fatalf("seg size %d != %d", oc.SegSize, choice.SegSize)
		}
		pred, err := sel.Predict(choice.Alg, 16, 1<<20)
		if err != nil || oc.Predicted != pred {
			t.Fatalf("predicted %v, want %v (%v)", oc.Predicted, pred, err)
		}
	}
}

// TestBestForZeroAlloc pins the hot-path contract the daemon's select
// endpoint builds on: a warm BestFor performs no allocation.
func TestBestForZeroAlloc(t *testing.T) {
	sel := calibrateSmall(t)
	if err := sel.CalibrateExtendedOp(context.Background(), "gather", estimate.AlphaBetaConfig{
		Procs: 8, Sizes: []int{4096, 65536}, Settings: fastSettings(),
	}); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{OpBcast, "gather"} {
		if _, err := sel.BestFor(op, 16, 1<<20); err != nil { // warm-up
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := sel.BestFor(op, 16, 1<<20); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("BestFor(%q) allocates %.1f per run, want 0", op, allocs)
		}
	}
}

// TestBestForExtended covers the extended-family path end to end:
// calibrate one family, query it, and check the typed error shapes for
// everything that is not calibrated.
func TestBestForExtended(t *testing.T) {
	sel := calibrateSmall(t)
	if _, err := sel.BestFor("allgather", 8, 65536); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("uncalibrated family: err = %v, want ErrNotCalibrated", err)
	}
	cfg := estimate.AlphaBetaConfig{Procs: 8, Sizes: []int{4096, 65536}, Settings: fastSettings()}
	if err := sel.CalibrateExtendedOp(context.Background(), "allgather", cfg); err != nil {
		t.Fatal(err)
	}
	oc, err := sel.BestFor("allgather", 8, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(oc.Algorithm, "allgather/") || oc.Op != "allgather" {
		t.Fatalf("extended choice = %+v", oc)
	}
	if oc.Predicted <= 0 {
		t.Fatalf("predicted time %v", oc.Predicted)
	}
	if err := sel.CalibrateExtendedOp(context.Background(), "frobnicate", cfg); err == nil {
		t.Fatal("unknown family should fail")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sel.CalibrateExtendedOp(cancelled, "reduce", cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled calibration: err = %v", err)
	}
	if _, ok := sel.Extended["reduce"]; ok {
		t.Fatal("cancelled calibration must not attach a selector")
	}
}

// TestLoadModelsMissingFile pins that a missing calibration file stays
// distinguishable from a corrupt one: the error wraps fs.ErrNotExist.
func TestLoadModelsMissingFile(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadModels(pr, filepath.Join(t.TempDir(), "absent.json"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist in the chain", err)
	}
	if !strings.Contains(err.Error(), "absent.json") {
		t.Fatalf("error should name the file: %v", err)
	}
}
