// Package logp implements the classic point-to-point communication model
// parameter measurements that the paper's §2.2 surveys as prior art:
//
//   - LogP (Culler et al.): latency L, send overhead o_s, receive overhead
//     o_r, and gap g between consecutive small-message transmissions;
//   - LogGP: the additional per-byte Gap G for long messages;
//   - PLogP (Kielmann et al.): overheads and gap as functions of the
//     message size.
//
// All estimators run the traditional micro-benchmarks (overhead probes,
// saturation trains, round trips) on the simulated cluster. Because the
// simulator's configuration *is* a LogGP-style parameterisation, the tests
// can verify the measurement procedures against ground truth — and the
// package doubles as a bridge for users who want to seed Hockney models
// from LogP-style measurements (ToHockney).
package logp

import (
	"fmt"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/stats"
)

// Params are LogGP parameters (LogP plus the per-byte gap G).
type Params struct {
	// L is the wire latency in seconds.
	L float64
	// Os is the sender CPU overhead per message.
	Os float64
	// Or is the receiver CPU overhead per message.
	Or float64
	// G is the small-message gap: the minimum interval between consecutive
	// message injections.
	G float64
	// GapPerByte is LogGP's G: the per-byte injection cost for long
	// messages.
	GapPerByte float64
}

// ToHockney converts LogGP parameters to the Hockney (α, β) form used by
// the traditional models: α = L + o_s + o_r, β = GapPerByte.
func (p Params) ToHockney() (alpha, beta float64) {
	return p.L + p.Os + p.Or, p.GapPerByte
}

// probeSize is the small-message size used for the LogP probes.
const probeSize = 64

// Estimate measures LogGP parameters on the profile with the traditional
// micro-benchmarks:
//
//	o_s: mean time for a non-blocking send to return;
//	g:   saturation — N back-to-back sends, divided by N;
//	G:   long-message saturation at two sizes, slope per byte;
//	L:   one-way small-message time minus the overheads;
//	o_r: receive completion cost for an already-arrived message.
func Estimate(pr cluster.Profile, set experiment.Settings) (Params, error) {
	var out Params

	// o_s: issue cost of a non-blocking send, measured on the sender.
	osMeas, err := measure(pr, set, experiment.RootTime, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			r := p.Isend(1, 0, nil, probeSize)
			defer p.Wait(r)
		} else {
			p.Recv(0, 0, nil)
		}
	})
	if err != nil {
		return Params{}, fmt.Errorf("logp: o_s: %w", err)
	}
	out.Os = osMeas

	// g: a train of N small messages saturates the injection port; the
	// per-message interval is the gap.
	const train = 64
	trainTime, err := measure(pr, set, experiment.RootTime, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			reqs := make([]*mpi.Request, train)
			for i := range reqs {
				reqs[i] = p.Isend(1, 0, nil, probeSize)
			}
			p.WaitAll(reqs...)
		} else {
			for i := 0; i < train; i++ {
				p.Recv(0, 0, nil)
			}
		}
	})
	if err != nil {
		return Params{}, fmt.Errorf("logp: g: %w", err)
	}
	out.G = trainTime / train

	// GapPerByte: long-message trains at two sizes; slope of per-message
	// time over size.
	var longTimes [2]float64
	longSizes := [2]int{64 << 10, 256 << 10}
	for i, sz := range longSizes {
		sz := sz
		tt, err := measure(pr, set, experiment.RootTime, func(p *mpi.Proc) {
			if p.Rank() == 0 {
				reqs := make([]*mpi.Request, 8)
				for j := range reqs {
					reqs[j] = p.Isend(1, 0, nil, sz)
				}
				p.WaitAll(reqs...)
			} else {
				for j := 0; j < 8; j++ {
					p.Recv(0, 0, nil)
				}
			}
		})
		if err != nil {
			return Params{}, fmt.Errorf("logp: G at %d: %w", sz, err)
		}
		longTimes[i] = tt / 8
	}
	out.GapPerByte = (longTimes[1] - longTimes[0]) / float64(longSizes[1]-longSizes[0])

	// One-way time for a small message (completion mode = full delivery),
	// from which L = t - o_s - o_r - payload time.
	oneWay, err := measure(pr, set, experiment.Completion, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, probeSize)
		} else {
			p.Recv(0, 0, nil)
		}
	})
	if err != nil {
		return Params{}, fmt.Errorf("logp: L: %w", err)
	}

	// o_r: post the receive long after delivery; its cost is the receive
	// overhead alone. In this runtime a late receive completes instantly
	// (the overhead was charged at delivery), so measure it as the
	// difference between a one-way transfer and its network components;
	// for robustness we simply reuse o_s as the symmetric estimate when
	// the subtraction goes negative.
	out.Or = oneWay - out.Os - pr.Net.Latency - float64(probeSize)*out.GapPerByte
	if out.Or < 0 {
		out.Or = out.Os
	}
	out.L = oneWay - out.Os - out.Or - float64(probeSize)*out.GapPerByte
	if out.L < 0 {
		out.L = 0
	}
	return out, nil
}

// measure wraps experiment.Measure on a fresh 2-node network.
func measure(pr cluster.Profile, set experiment.Settings, mode experiment.Mode, op experiment.Op) (float64, error) {
	p2, err := pr.WithNodes(2)
	if err != nil {
		// The profile may already be 2 nodes.
		p2 = pr
	}
	net, err := p2.Network()
	if err != nil {
		return 0, err
	}
	meas, err := experiment.Measure(net, 2, set, mode, op)
	if err != nil {
		return 0, err
	}
	return meas.Mean, nil
}

// PLogP holds the parametrised-LogP tables: per-size send overhead,
// receive-side delivery time and gap.
type PLogP struct {
	L     float64
	Sizes []int
	// Os[i], Gap[i] correspond to Sizes[i].
	Os  []float64
	Gap []float64
}

// EstimatePLogP measures the PLogP size-dependent parameters over the
// given grid.
func EstimatePLogP(pr cluster.Profile, sizes []int, set experiment.Settings) (PLogP, error) {
	if len(sizes) == 0 {
		sizes = stats.LogSpaceBytes(64, 1<<20, 8)
	}
	base, err := Estimate(pr, set)
	if err != nil {
		return PLogP{}, err
	}
	out := PLogP{L: base.L, Sizes: sizes}
	for _, m := range sizes {
		m := m
		osM, err := measure(pr, set, experiment.RootTime, func(p *mpi.Proc) {
			if p.Rank() == 0 {
				r := p.Isend(1, 0, nil, m)
				defer p.Wait(r)
			} else {
				p.Recv(0, 0, nil)
			}
		})
		if err != nil {
			return PLogP{}, err
		}
		const train = 16
		tt, err := measure(pr, set, experiment.RootTime, func(p *mpi.Proc) {
			if p.Rank() == 0 {
				reqs := make([]*mpi.Request, train)
				for j := range reqs {
					reqs[j] = p.Isend(1, 0, nil, m)
				}
				p.WaitAll(reqs...)
			} else {
				for j := 0; j < train; j++ {
					p.Recv(0, 0, nil)
				}
			}
		})
		if err != nil {
			return PLogP{}, err
		}
		out.Os = append(out.Os, osM)
		out.Gap = append(out.Gap, tt/train)
	}
	return out, nil
}

// GapAt returns the interpolated gap for an arbitrary message size
// (linear between grid points, clamped outside).
func (p PLogP) GapAt(m int) float64 {
	return interp(p.Sizes, p.Gap, m)
}

// OsAt returns the interpolated send overhead for an arbitrary size.
func (p PLogP) OsAt(m int) float64 {
	return interp(p.Sizes, p.Os, m)
}

func interp(xs []int, ys []float64, x int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	last := len(xs) - 1
	if x >= xs[last] {
		return ys[last]
	}
	for i := 1; i <= last; i++ {
		if x <= xs[i] {
			f := float64(x-xs[i-1]) / float64(xs[i]-xs[i-1])
			return ys[i-1] + f*(ys[i]-ys[i-1])
		}
	}
	return ys[last]
}
