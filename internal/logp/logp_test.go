package logp

import (
	"math"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
)

func fastSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

// quietGrisou removes the jitter so the micro-benchmarks can be checked
// against the simulator's exact configuration.
func quietGrisou(t *testing.T) cluster.Profile {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(2)
	if err != nil {
		t.Fatal(err)
	}
	pr.Net.NoiseAmplitude = 0
	return pr
}

func TestEstimateRecoversGroundTruth(t *testing.T) {
	pr := quietGrisou(t)
	par, err := Estimate(pr, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pr.Net
	// o_s is the runtime's send overhead exactly.
	if math.Abs(par.Os-cfg.SendOverhead) > 0.2e-6 {
		t.Errorf("o_s = %v, ground truth %v", par.Os, cfg.SendOverhead)
	}
	// GapPerByte is the sender port's per-byte time.
	if math.Abs(par.GapPerByte-cfg.ByteTimeSend) > 0.1e-9 {
		t.Errorf("G = %v, ground truth %v", par.GapPerByte, cfg.ByteTimeSend)
	}
	// The small-message gap is o_s + probe bytes on the port, roughly.
	if par.G <= 0 || par.G > 10e-6 {
		t.Errorf("g = %v out of plausible range", par.G)
	}
	// L reconstructs the configured latency to within the o_r ambiguity.
	if par.L < cfg.Latency*0.5 || par.L > cfg.Latency*1.5 {
		t.Errorf("L = %v, configured %v", par.L, cfg.Latency)
	}
	if par.Or < 0 {
		t.Errorf("o_r = %v negative", par.Or)
	}
}

func TestToHockney(t *testing.T) {
	p := Params{L: 40e-6, Os: 2e-6, Or: 2e-6, GapPerByte: 0.8e-9}
	alpha, beta := p.ToHockney()
	if math.Abs(alpha-44e-6) > 1e-12 || math.Abs(beta-0.8e-9) > 1e-18 {
		t.Fatalf("(α,β) = (%v,%v)", alpha, beta)
	}
}

func TestEstimatePLogP(t *testing.T) {
	pr := quietGrisou(t)
	sizes := []int{64, 4096, 65536, 524288}
	pl, err := EstimatePLogP(pr, sizes, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Os) != len(sizes) || len(pl.Gap) != len(sizes) {
		t.Fatalf("table sizes wrong: %d/%d", len(pl.Os), len(pl.Gap))
	}
	// The gap must grow with the message size (per-byte port occupancy);
	// this is PLogP's whole reason to exist.
	for i := 1; i < len(sizes); i++ {
		if pl.Gap[i] <= pl.Gap[i-1] {
			t.Errorf("gap(%d) = %v not above gap(%d) = %v",
				sizes[i], pl.Gap[i], sizes[i-1], pl.Gap[i-1])
		}
	}
	// g(64KB) should be roughly 64K·G.
	want := 65536 * pr.Net.ByteTimeSend
	if math.Abs(pl.GapAt(65536)-want) > 0.3*want {
		t.Errorf("gap(64KB) = %v, want ≈ %v", pl.GapAt(65536), want)
	}
}

func TestPLogPInterpolation(t *testing.T) {
	pl := PLogP{
		Sizes: []int{100, 200, 400},
		Os:    []float64{1, 2, 4},
		Gap:   []float64{10, 20, 40},
	}
	cases := []struct {
		m    int
		gap  float64
		over float64
	}{
		{50, 10, 1},    // clamped low
		{100, 10, 1},   // exact
		{150, 15, 1.5}, // interpolated
		{300, 30, 3},
		{1000, 40, 4}, // clamped high
	}
	for _, c := range cases {
		if got := pl.GapAt(c.m); math.Abs(got-c.gap) > 1e-12 {
			t.Errorf("GapAt(%d) = %v, want %v", c.m, got, c.gap)
		}
		if got := pl.OsAt(c.m); math.Abs(got-c.over) > 1e-12 {
			t.Errorf("OsAt(%d) = %v, want %v", c.m, got, c.over)
		}
	}
	if (PLogP{}).GapAt(10) != 0 {
		t.Error("empty table should yield 0")
	}
}

func TestEstimatePLogPDefaultsGrid(t *testing.T) {
	pr := quietGrisou(t)
	pl, err := EstimatePLogP(pr, nil, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Sizes) < 4 {
		t.Fatalf("default grid too small: %v", pl.Sizes)
	}
}
