package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpicollperf/internal/simnet"
)

// sizedPattern is replayPattern with parametrised byte counts: the same
// structure class (pipeline chain, per-rank compute, ack fan-in) at
// different sizes — exactly the shape of two grid points that share a
// plan template. The request slice is fixed-size so the steady-state
// allocation test can run the pattern allocation-free.
func sizedPattern(p *Proc, seg, ack int) {
	n, r := p.Size(), p.Rank()
	const segs = 3
	if r == 0 {
		for s := 0; s < segs; s++ {
			p.Send(1, s, nil, seg)
		}
	} else {
		var fwd [segs]*Request
		k := 0
		for s := 0; s < segs; s++ {
			p.Recv(r-1, s, nil)
			if r+1 < n {
				fwd[k] = p.Isend(r+1, s, nil, seg)
				k++
			}
		}
		if k > 0 {
			p.WaitAll(fwd[:k]...)
		}
	}
	p.Sleep(float64(r) * 1e-7)
	if r == 0 {
		for d := 1; d < n; d++ {
			p.Recv(d, 99, nil)
		}
	} else {
		p.Send(0, 99, nil, ack+r)
	}
}

// captureSized captures one marked repetition of sizedPattern on a fresh
// Runner and compiles it, as captureOneRep does for replayPattern.
func captureSized(t testing.TB, cfg simnet.Config, nprocs, seg, ack int) (*Runner, *Plan, Result) {
	t.Helper()
	r, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, cap, err := r.RunCapture(nprocs, func(p *Proc) error {
		root := p.Rank() == 0
		if root {
			p.Mark()
		}
		p.Barrier()
		if root {
			p.Mark()
		}
		sizedPattern(p, seg, ack)
		p.Barrier()
		if root {
			p.Mark()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := r.CompilePlan(cap, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	return r, plan, res
}

// rebindClosure is the repetition body a rebind re-executes against a
// captureSized template: the plan's span without the boundary mark.
func rebindClosure(seg, ack int) func(*Proc) error {
	return func(p *Proc) error {
		root := p.Rank() == 0
		p.Barrier()
		if root {
			p.Mark()
		}
		sizedPattern(p, seg, ack)
		p.Barrier()
		if root {
			p.Mark()
		}
		return nil
	}
}

// TestRebindMatchesCapture is the template differential: rebinding a
// captured plan to new byte sizes must produce a plan equivalent — bind
// for bind — to a fresh capture of the resized pattern, and replaying
// both from identical state must yield bit-identical marks and clocks.
func TestRebindMatchesCapture(t *testing.T) {
	const nprocs = 8
	for name, cfg := range map[string]simnet.Config{
		"one_per_node": replayTestConfig(nprocs),
		"two_per_node": replayDualConfig(nprocs),
		"noise_free":   testConfig(nprocs),
	} {
		t.Run(name, func(t *testing.T) {
			tplR, tpl, _ := captureSized(t, cfg, nprocs, 8192, 256)
			refR, ref, refRes := captureSized(t, cfg, nprocs, 4096, 512)

			got, err := tplR.Rebind(tpl, rebindClosure(4096, 512))
			if err != nil {
				t.Fatalf("rebind: %v", err)
			}
			if !got.EquivalentTo(ref) {
				t.Fatal("rebound plan not equivalent to a fresh capture of the resized pattern")
			}
			// Rebinding back to the template's own sizes reproduces it.
			same, err := tplR.Rebind(tpl, rebindClosure(8192, 256))
			if err != nil {
				t.Fatalf("identity rebind: %v", err)
			}
			if !same.EquivalentTo(tpl) {
				t.Fatal("identity rebind diverges from its own template")
			}
			// Replay differential from identical state: reset both networks
			// (noise stream to position 0) and replay from the reference's
			// finish clocks.
			got, err = tplR.Rebind(tpl, rebindClosure(4096, 512))
			if err != nil {
				t.Fatalf("re-rebind: %v", err)
			}
			tplR.Network().Reset()
			refR.Network().Reset()
			const lanes = 4
			want, err := NewReplayer(refR.Network(), ref, refRes.FinishTimes, lanes)
			if err != nil {
				t.Fatal(err)
			}
			have, err := tplR.NewReplayer(got, refRes.FinishTimes, lanes)
			if err != nil {
				t.Fatal(err)
			}
			want.DiscardEchoClocks()
			have.DiscardEchoClocks()
			for batch, k := range []int{1, lanes, lanes - 1} {
				wm, wok := want.Replay(k)
				hm, hok := have.Replay(k)
				if !wok || !hok {
					t.Fatalf("batch %d: replay ok %v vs %v", batch, hok, wok)
				}
				for i := range wm {
					if hm[i] != wm[i] {
						t.Fatalf("batch %d mark %d: %x != %x", batch, i, hm[i], wm[i])
					}
				}
			}
			wc, hc := want.Clocks(), have.Clocks()
			for i := range wc {
				if hc[i] != wc[i] {
					t.Fatalf("clock %d: %x != %x", i, hc[i], wc[i])
				}
			}
		})
	}
}

// TestRebindDetectsDivergence: every way a program's structure can drift
// from its template must surface as a typed *RebindError, and a failed
// rebind must leave the Runner able to rebind (and run) again.
func TestRebindDetectsDivergence(t *testing.T) {
	const nprocs = 6
	cfg := replayTestConfig(nprocs)
	r, tpl, _ := captureSized(t, cfg, nprocs, 8192, 256)

	divergent := map[string]func(*Proc) error{
		"extra_sleep": func(p *Proc) error {
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			sizedPattern(p, 8192, 256)
			p.Sleep(1e-9)
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			return nil
		},
		"short_stream": func(p *Proc) error {
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			return nil
		},
		"wrong_tag": func(p *Proc) error {
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			n, rank := p.Size(), p.Rank()
			if rank == 0 {
				for s := 0; s < 3; s++ {
					p.Send(1, s+7, nil, 8192) // tags diverge
				}
			} else {
				var fwd [3]*Request
				k := 0
				for s := 0; s < 3; s++ {
					p.Recv(rank-1, s+7, nil)
					if rank+1 < n {
						fwd[k] = p.Isend(rank+1, s+7, nil, 8192)
						k++
					}
				}
				if k > 0 {
					p.WaitAll(fwd[:k]...)
				}
			}
			p.Sleep(float64(rank) * 1e-7)
			if rank == 0 {
				for d := 1; d < n; d++ {
					p.Recv(d, 99, nil)
				}
			} else {
				p.Send(0, 99, nil, 256+rank)
			}
			p.Barrier()
			if rank == 0 {
				p.Mark()
			}
			return nil
		},
		"payload_send": func(p *Proc) error {
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			data := make([]byte, 8192)
			n, rank := p.Size(), p.Rank()
			if rank == 0 {
				for s := 0; s < 3; s++ {
					p.Send(1, s, data, -1)
				}
			} else {
				var fwd [3]*Request
				k := 0
				for s := 0; s < 3; s++ {
					p.Recv(rank-1, s, nil)
					if rank+1 < n {
						fwd[k] = p.Isend(rank+1, s, nil, 8192)
						k++
					}
				}
				if k > 0 {
					p.WaitAll(fwd[:k]...)
				}
			}
			p.Sleep(float64(rank) * 1e-7)
			if rank == 0 {
				for d := 1; d < n; d++ {
					p.Recv(d, 99, nil)
				}
			} else {
				p.Send(0, 99, nil, 256+rank)
			}
			p.Barrier()
			if rank == 0 {
				p.Mark()
			}
			return nil
		},
	}
	for name, fn := range divergent {
		if _, err := r.Rebind(tpl, fn); err == nil {
			t.Errorf("%s: divergent rebind accepted", name)
		} else {
			var re *RebindError
			if !errors.As(err, &re) {
				t.Errorf("%s: error %v is not a *RebindError", name, err)
			}
		}
	}

	// Plan-level mismatch: a network too small for the template.
	small, err := NewRunner(replayTestConfig(nprocs-2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Rebind(tpl, rebindClosure(8192, 256)); err == nil {
		t.Error("template accepted on a network with too few nodes")
	} else {
		var re *RebindError
		if !errors.As(err, &re) || re.Rank != -1 {
			t.Errorf("plan-level mismatch reported as %v, want *RebindError with Rank -1", err)
		}
	}

	// The Runner recovers: a faithful rebind and a normal run still work.
	if _, err := r.Rebind(tpl, rebindClosure(4096, 64)); err != nil {
		t.Fatalf("faithful rebind after failures: %v", err)
	}
	if _, err := r.Run(nprocs, func(p *Proc) error { p.Barrier(); return nil }); err != nil {
		t.Fatalf("runner broken after failed rebinds: %v", err)
	}
}

// TestRebindSteadyStateAllocs pins the template fast path's allocation
// contract: once the Runner's rebind and replay buffers have grown to the
// plan's shape, a full rebind + replay of a point allocates nothing. The
// pattern uses only blocking operations (whose wait goes through the
// Proc's fixed buffer); a closure that builds its own request slices
// charges those to itself on every engine, not to the rebind machinery.
func TestRebindSteadyStateAllocs(t *testing.T) {
	const nprocs, lanes = 8, 4
	cfg := replayTestConfig(nprocs)
	blocking := func(seg int) func(*Proc) error {
		return func(p *Proc) error {
			root := p.Rank() == 0
			p.Barrier()
			if root {
				p.Mark()
			}
			n, rank := p.Size(), p.Rank()
			for s := 0; s < 3; s++ {
				if rank == 0 {
					p.Send(1, s, nil, seg)
				} else {
					p.Recv(rank-1, s, nil)
					if rank+1 < n {
						p.Send(rank+1, s, nil, seg)
					}
				}
			}
			p.Sleep(float64(rank) * 1e-7)
			p.Barrier()
			if root {
				p.Mark()
			}
			return nil
		}
	}
	r, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, cap, err := r.RunCapture(nprocs, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Mark()
		}
		return blocking(8192)(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := r.CompilePlan(cap, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	fn := blocking(4096)
	start := make([]float64, nprocs)
	point := func() {
		plan, err := r.Rebind(tpl, fn)
		if err != nil {
			t.Fatal(err)
		}
		r.Network().Reset()
		rp, err := r.NewReplayer(plan, start, lanes)
		if err != nil {
			t.Fatal(err)
		}
		rp.DiscardEchoClocks()
		if _, ok := rp.Replay(lanes); !ok {
			t.Fatal("replay failed")
		}
	}
	point() // grow the buffers
	if avg := testing.AllocsPerRun(20, point); avg > 0 {
		t.Errorf("steady-state rebind+replay allocates %v times per point, want 0", avg)
	}
}

// TestTemplateStoreConcurrent exercises the sharded store under
// concurrent publishers and readers (meaningful under -race): clones in,
// shared plans out, equivalent throughout.
func TestTemplateStoreConcurrent(t *testing.T) {
	const nprocs = 4
	_, plan, _ := captureSized(t, replayTestConfig(nprocs), nprocs, 8192, 256)
	store := NewTemplateStore()
	const keys, workers = 24, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("class/%d", i)
				if got := store.Get(key); got != nil && !got.EquivalentTo(plan) {
					t.Errorf("key %s: stored template diverged", key)
					return
				}
				store.Put(key, plan)
			}
		}()
	}
	wg.Wait()
	if store.Len() != keys {
		t.Fatalf("store holds %d templates, want %d", store.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		got := store.Get(fmt.Sprintf("class/%d", i))
		if got == nil || !got.EquivalentTo(plan) {
			t.Fatalf("key class/%d: missing or diverged template", i)
		}
		if got == plan {
			t.Fatal("store returned the caller's plan, want a private clone")
		}
	}
	if store.Get("absent") != nil {
		t.Fatal("absent key returned a template")
	}
}

// TestTemplateStoreSingleFlight: many goroutines Acquire one class at
// once; exactly one is elected leader (non-nil release), and once it
// publishes, every waiter unblocks with the published plan — nobody is
// told to capture a second time. Meaningful under -race.
func TestTemplateStoreSingleFlight(t *testing.T) {
	const nprocs = 4
	_, plan, _ := captureSized(t, replayTestConfig(nprocs), nprocs, 8192, 256)
	store := NewTemplateStore()
	const workers = 16
	var (
		start   = make(chan struct{})
		leaders atomic.Int64
		got     [workers]*Plan
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			p, release, _ := store.Acquire("class")
			if release != nil {
				leaders.Add(1)
				store.Put("class", plan)
				release()
				p = store.Get("class")
			}
			got[w] = p
		}(w)
	}
	close(start)
	wg.Wait()
	if n := leaders.Load(); n != 1 {
		t.Fatalf("%d leaders elected for one class, want exactly 1", n)
	}
	published := store.Get("class")
	if published == nil || !published.EquivalentTo(plan) {
		t.Fatal("published template missing or diverged")
	}
	for w, p := range got {
		if p != published {
			t.Fatalf("worker %d got plan %p, want the shared published template %p", w, p, published)
		}
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d templates, want 1", store.Len())
	}
	// A later Acquire of the published class never blocks or leads.
	p, release, waited := store.Acquire("class")
	if p != published || release != nil || waited != 0 {
		t.Fatal("Acquire of a published class did not return it immediately")
	}
}

// TestTemplateStoreAbandon: a leader that releases without publishing
// unblocks its waiters empty-handed and forgets the flight, so the next
// Acquire elects a fresh leader. release is idempotent and, after a Put,
// a no-op — it can never take down a published template.
func TestTemplateStoreAbandon(t *testing.T) {
	const nprocs = 4
	_, plan, _ := captureSized(t, replayTestConfig(nprocs), nprocs, 8192, 256)
	store := NewTemplateStore()

	_, release, _ := store.Acquire("class")
	if release == nil {
		t.Fatal("first Acquire was not elected leader")
	}
	waiterPlan := make(chan *Plan)
	go func() {
		p, rel, _ := store.Acquire("class")
		if rel != nil {
			t.Error("waiter elected leader while a flight was pending")
		}
		waiterPlan <- p
	}()
	// The waiter parks on the flight; abandon must wake it with nil.
	// (A brief sleep makes the park likely but the test is correct
	// without it — abandon wakes waiters whenever they arrive.)
	time.Sleep(time.Millisecond)
	release()
	if p := <-waiterPlan; p != nil {
		t.Fatalf("abandoned flight delivered plan %p, want nil", p)
	}
	release() // idempotent
	if store.Len() != 0 {
		t.Fatalf("store holds %d templates after an abandoned flight, want 0", store.Len())
	}

	// The class is forgotten: a fresh leader is elected and can publish.
	_, release2, _ := store.Acquire("class")
	if release2 == nil {
		t.Fatal("no new leader elected after an abandoned flight")
	}
	store.Put("class", plan)
	release2() // after Put: no-op
	if got := store.Get("class"); got == nil || !got.EquivalentTo(plan) {
		t.Fatal("template missing after publish; release after Put must not remove it")
	}
	// And the first flight's stale release can't touch the new state.
	release()
	if store.Get("class") == nil {
		t.Fatal("stale release from an earlier flight removed the published template")
	}
}
