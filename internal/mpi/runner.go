package mpi

import (
	"fmt"

	"mpicollperf/internal/simnet"
)

// Runner executes simulated MPI programs back to back on one network,
// reusing the scheduler between runs. A fresh scheduler allocates its
// channels, queues, and matching state on every Run/RunOn call; a Runner
// pays that cost once, after which the steady-state per-operation path is
// allocation-free (operations and requests come from freelists, and every
// queue keeps its capacity). Measurement sweeps, which execute thousands
// of short programs per grid point, are the intended caller.
//
// Runs on a Runner are bit-identical to Run/RunOn with the same network
// configuration: the network is Reset before every run (ports idle, noise
// stream reseeded), and scheduler reuse only recycles memory, never
// timing state.
//
// A Runner is not safe for concurrent use; each worker goroutine should
// own one. The number of ranks may vary from run to run (the scheduler
// grows its per-rank structures as needed), bounded by the network size.
type Runner struct {
	net   *simnet.Network
	opts  Options
	sched *scheduler
	procs []*Proc
}

// NewRunner builds a Runner with a fresh network from cfg.
func NewRunner(cfg simnet.Config, opts Options) (*Runner, error) {
	net, err := simnet.New(cfg)
	if err != nil {
		return nil, err
	}
	return NewRunnerOn(net, opts), nil
}

// NewRunnerOn builds a Runner on an existing network, which every Run will
// Reset. The caller must not use the network concurrently with the Runner.
func NewRunnerOn(net *simnet.Network, opts Options) *Runner {
	return &Runner{net: net, opts: opts, sched: &scheduler{}}
}

// Network returns the network the Runner executes on.
func (r *Runner) Network() *simnet.Network { return r.net }

// Run executes fn on nprocs ranks, like RunOn, reusing the Runner's warm
// scheduler state.
func (r *Runner) Run(nprocs int, fn func(*Proc) error) (Result, error) {
	if nprocs < 1 {
		return Result{}, fmt.Errorf("mpi: nprocs = %d, need >= 1", nprocs)
	}
	if nprocs > r.net.Nodes() {
		return Result{}, fmt.Errorf("mpi: nprocs %d exceeds cluster size %d", nprocs, r.net.Nodes())
	}
	r.net.Reset()
	s := r.sched
	s.reset(r.net, nprocs, r.opts)
	for len(r.procs) < nprocs {
		r.procs = append(r.procs, &Proc{rank: len(r.procs)})
	}
	for i := 0; i < nprocs; i++ {
		p := r.procs[i]
		p.size = nprocs
		p.sched = s
		p.resume = s.resumes[i]
		p.clock = 0
		p.seq = 0
		go runRank(p, fn)
	}
	return s.loop()
}
