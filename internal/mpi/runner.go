package mpi

import (
	"fmt"

	"mpicollperf/internal/obs"
	"mpicollperf/internal/simnet"
)

// Runner executes simulated MPI programs back to back on one network,
// reusing the scheduler between runs. A fresh scheduler allocates its
// channels, queues, and matching state on every Run/RunOn call; a Runner
// pays that cost once, after which the steady-state per-operation path is
// allocation-free (operations and requests come from freelists, and every
// queue keeps its capacity). Measurement sweeps, which execute thousands
// of short programs per grid point, are the intended caller.
//
// Runs on a Runner are bit-identical to Run/RunOn with the same network
// configuration: the network is Reset before every run (ports idle, noise
// stream reseeded), and scheduler reuse only recycles memory, never
// timing state.
//
// A Runner is not safe for concurrent use; each worker goroutine should
// own one. The number of ranks may vary from run to run (the scheduler
// grows its per-rank structures as needed), bounded by the network size.
type Runner struct {
	net   *simnet.Network
	opts  Options
	sched *scheduler
	procs []*Proc
	rec   *capture // recycled across RunCapture calls
	// Recycled across CompilePlan calls.
	plan        *Plan
	planScratch *planScratch
	// Recycled across NewReplayer calls.
	replayer *Replayer
	// Recycled across Rebind calls (rebind.go): the rebound plan header,
	// its grow-only binding buffer, and the pass's cursor.
	rebound     *Plan
	rebindBinds []planBind
	rebindCur   rebindRank
}

// NewRunner builds a Runner with a fresh network from cfg.
func NewRunner(cfg simnet.Config, opts Options) (*Runner, error) {
	net, err := simnet.New(cfg)
	if err != nil {
		return nil, err
	}
	return NewRunnerOn(net, opts), nil
}

// NewRunnerOn builds a Runner on an existing network, which every Run will
// Reset. The caller must not use the network concurrently with the Runner.
func NewRunnerOn(net *simnet.Network, opts Options) *Runner {
	return &Runner{net: net, opts: opts, sched: &scheduler{}}
}

// Network returns the network the Runner executes on.
func (r *Runner) Network() *simnet.Network { return r.net }

// Metrics returns the registry from the Runner's Options (possibly nil),
// so layers that drive a Runner — the replay engine, the sweep pool — can
// record into the same registry without threading it separately.
func (r *Runner) Metrics() *obs.Registry { return r.opts.Metrics }

// Run executes fn on nprocs ranks, like RunOn, reusing the Runner's warm
// scheduler state.
func (r *Runner) Run(nprocs int, fn func(*Proc) error) (Result, error) {
	res, _, err := r.run(nprocs, fn, false)
	return res, err
}

// RunCapture executes fn like Run while recording the program's complete
// structural trace — every transfer with its matched receive, every wait,
// barrier, and Proc.Mark — in scheduler processing order. Recording never
// changes timing: the Result is bit-identical to Run of the same fn, and
// a fn differing only in Mark calls times identically too.
//
// Trace segments between marks compile into immutable Plans
// (Capture.Plan) that a Replayer can re-time without running the
// scheduler; the measurement harness captures the first repetition of an
// experiment this way and replays the rest.
//
// The returned Capture shares the Runner's recycled trace buffers: it is
// valid only until the next RunCapture on this Runner. Plans compiled
// from it copy everything they need and stay valid indefinitely.
func (r *Runner) RunCapture(nprocs int, fn func(*Proc) error) (Result, *Capture, error) {
	return r.run(nprocs, fn, true)
}

// CompilePlan compiles a trace segment exactly like Capture.Plan but
// reuses the Runner's plan buffers: the returned Plan is valid only
// until the next CompilePlan on this Runner. A measurement sweep
// compiles one plan per grid point, so the recycled buffers make the
// per-point compilation cost amortize to the walk itself.
func (r *Runner) CompilePlan(cap *Capture, fromMark, toMark int) (*Plan, error) {
	if r.plan == nil {
		r.plan = &Plan{}
		r.planScratch = &planScratch{}
	}
	p, err := cap.plan(r.plan, r.planScratch, fromMark, toMark)
	if err == nil {
		r.opts.Metrics.Histogram("mpi_plan_events").Observe(float64(p.Events()))
	}
	return p, err
}

// NewReplayer builds a Replayer for plan on the Runner's network exactly
// like the package-level NewReplayer, but recycles the Runner's replay
// buffers: the returned Replayer is valid only until the next NewReplayer
// on this Runner. Replays are bit-identical to a fresh Replayer's. A
// measurement sweep builds one replayer per grid point, so the recycled
// buffers flatten what was the largest per-point allocation.
func (r *Runner) NewReplayer(plan *Plan, clocks []float64, lanes int) (*Replayer, error) {
	if r.replayer == nil {
		r.replayer = &Replayer{}
	}
	if err := r.replayer.reinit(r.net, plan, clocks, lanes); err != nil {
		return nil, err
	}
	return r.replayer, nil
}

func (r *Runner) run(nprocs int, fn func(*Proc) error, record bool) (Result, *Capture, error) {
	if nprocs < 1 {
		return Result{}, nil, fmt.Errorf("mpi: nprocs = %d, need >= 1", nprocs)
	}
	if nprocs > r.net.Nodes() {
		return Result{}, nil, fmt.Errorf("mpi: nprocs %d exceeds cluster size %d", nprocs, r.net.Nodes())
	}
	r.net.Reset()
	s := r.sched
	s.reset(r.net, nprocs, r.opts)
	if record {
		if r.rec == nil {
			r.rec = newCapture(r.net, nprocs, s.barrierCost())
		} else {
			r.rec.reset(r.net, nprocs, s.barrierCost())
		}
		s.rec = r.rec
	} else {
		s.rec = nil
	}
	for len(r.procs) < nprocs {
		r.procs = append(r.procs, &Proc{rank: len(r.procs)})
	}
	for i := 0; i < nprocs; i++ {
		p := r.procs[i]
		p.size = nprocs
		p.sched = s
		p.resume = s.resumes[i]
		p.clock = 0
		p.seq = 0
		p.echo = nil
		p.rebind = nil
		go runRank(p, fn)
	}
	res, err := s.loop()
	if err == nil {
		if m := r.opts.Metrics; m != nil {
			m.Counter("mpi_runs_total").Inc()
			m.Counter("mpi_operations_total").Add(res.Ops)
			m.Counter("mpi_transfers_total").Add(res.Transfers)
		}
	}
	var cap *Capture
	if rec := s.rec; rec != nil {
		s.rec = nil
		if err == nil {
			cap = &Capture{
				nprocs:      rec.nprocs,
				net:         rec.net,
				cfg:         rec.cfg,
				barrierCost: rec.barrierCost,
				slots:       int(rec.nextSlot),
				payload:     rec.payload,
				events:      rec.events,
				waitSlots:   rec.waitSlots,
				marks:       rec.marks,
			}
		}
	}
	return res, cap, err
}
