package mpi

import (
	"fmt"
)

// Plan rebinding: the replay engine's template fast path. Capturing a
// grid point costs one full scheduler run (goroutines, channels, message
// matching) plus an echo validation; but the captured Plan's *structure* —
// event kinds, peers, tags, slots, wait sets — is a function of the
// operation's shape (algorithm, communicator size, segment count), not of
// its byte sizes. Two grid points of the same structure class therefore
// share a skeleton, and the second point only needs a new binding: byte
// counts harvested from its closures, link timings recomputed from the
// network, jitter-draw flags and durations re-derived.
//
// Rebind produces that binding without a single goroutine: each rank's
// closure runs sequentially on the caller's goroutine with the scheduler
// switched off, every submitted operation checked against the template's
// skeleton (any mismatch is a typed RebindError — the caller falls back
// to a full capture) while its sizes are written into the new binding.
// Clocks are frozen during the pass: the closures under measurement never
// read Proc.Now, and all virtual times are produced later by the Replayer,
// which is bit-identical to the scheduler.
//
// Soundness: the template was echo-validated when it was captured (its
// structure does not depend on the jitter drawn), and the rebind pass
// structurally compares every operation of the new point against it. What
// the pass cannot see is a program whose *sizes* depend on received data
// or on virtual time — Request.Bytes reads 0 and Now is frozen during the
// pass — so callers must key templates by everything that determines
// structure and sizes (the experiment layer's structure-class keys do).
// The shipped collective operations read neither.

// RebindError reports that a program's operation stream diverged from the
// template it was being rebound against. It is the typed signal for the
// measurement harness to fall back to a full capture of the point.
type RebindError struct {
	// Rank is the rank whose stream diverged (-1 for plan-level
	// mismatches such as a wrong network shape).
	Rank int
	// Why describes the divergence.
	Why string
}

func (e *RebindError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("mpi: rebind: %s", e.Why)
	}
	return fmt.Sprintf("mpi: rebind: rank %d: %s", e.Rank, e.Why)
}

// rebindRank is one rank's cursor over the template during a rebind pass.
// The plan's skeleton slices alias the template's; only binds is written.
type rebindRank struct {
	plan *Plan // the rebound plan under construction
	next int32 // next unconsumed event in the rank's slice
	end  int32
}

// rebindStep validates one submitted operation against the template's
// skeleton and harvests its sizes into the new binding. The rank's clock
// is frozen; divergence panics with a *RebindError (recovered by Rebind).
func (p *Proc) rebindStep(op *operation) {
	rb := p.rebind
	if rb.next >= rb.end {
		p.rebindFail(op, "past the end of the template")
	}
	idx := rb.next
	rb.next++
	pe := &rb.plan.events[idx]
	pb := &rb.plan.binds[idx]
	*pb = planBind{}
	want := evKind(0)
	switch op.kind {
	case opSleep:
		want = evSleep
		pb.dur = op.dur
	case opMark:
		want = evMark
	case opBarrier:
		want = evBarrier
	case opIsend:
		want = evSend
		if pe.kind == evSend {
			if op.data != nil {
				p.rebindFail(op, "send carries payload bytes")
			}
			if pe.peer != op.peer || pe.tag != op.tag {
				p.rebindFail(op, "destination or tag diverges from the template")
			}
			pb.bytes = op.bytes
			op.req.slot = pe.slot
		}
	case opIrecv:
		want = evRecv
		if pe.kind == evRecv && (pe.peer != op.peer || pe.tag != op.tag) {
			p.rebindFail(op, "source or tag diverges from the template")
		}
		op.req.slot = pe.slot
		op.req.bytes = 0
	case opWait:
		want = evWait
		if pe.kind == evWait {
			if int(pe.wLen) != len(op.reqs) {
				p.rebindFail(op, "request count diverges from the template")
			}
			for i, r := range op.reqs {
				if r.slot != rb.plan.waitSlots[pe.wOff+int32(i)] {
					p.rebindFail(op, "request set diverges from the template")
				}
			}
		}
	default:
		p.rebindFail(op, "operation kind not replayable")
	}
	if pe.kind != want {
		p.rebindFail(op, fmt.Sprintf("template has %v here, got %v", pe.kind, op.kind))
	}
}

func (p *Proc) rebindFail(op *operation, why string) {
	panic(&RebindError{Rank: p.rank, Why: fmt.Sprintf("%v: %s", op.kind, why)})
}

// Rebind binds the template tpl to a new operation: fn is re-executed for
// every rank, sequentially and goroutine-free, against the template's
// structural skeleton. Each submitted operation must match the skeleton's
// kind, peer, tag, and request wiring — any divergence returns a
// *RebindError, telling the caller to fall back to a full capture — while
// its byte counts and sleep durations are harvested into a fresh binding.
// Link timings, jitter-draw flags, and the barrier cost are then
// recomputed from the Runner's network exactly as a capture of the new
// point would have computed them, so replaying the rebound plan is
// bit-identical to capture-then-replay of that point.
//
// The returned Plan aliases the template's skeleton (which stays
// untouched) and the Runner's recycled binding buffer: it is valid only
// until the next Rebind on this Runner, and the template must not be
// mutated concurrently (TemplateStore hands out immutable clones). The
// network must have the shape the template was captured on (same NIC
// count, at least Procs nodes); the caller keys templates per profile.
//
// Clocks are frozen at zero during the pass: fn must not branch on
// Proc.Now or on received message sizes (Request.Bytes reads 0). The
// measurement closures and the shipped collectives satisfy this; the
// differential fuzz target FuzzRebindMatchesCapture guards it.
func (r *Runner) Rebind(tpl *Plan, fn func(*Proc) error) (*Plan, error) {
	n := tpl.nprocs
	cfg := r.net.Config()
	if n > r.net.Nodes() {
		return nil, &RebindError{Rank: -1, Why: fmt.Sprintf("template spans %d ranks, network has %d nodes", n, r.net.Nodes())}
	}
	if tpl.nics != cfg.NICs() {
		return nil, &RebindError{Rank: -1, Why: fmt.Sprintf("template captured on %d NICs, network has %d", tpl.nics, cfg.NICs())}
	}
	if r.rebound == nil {
		r.rebound = &Plan{}
	}
	// The binding buffer is Runner-owned and grow-only (the rebound plan's
	// binds field aliases it, so it must not be recycled through the plan:
	// *p = *tpl overwrites that field with the template's own array).
	r.rebindBinds = grow(r.rebindBinds, len(tpl.events))
	p := r.rebound
	*p = *tpl // alias the immutable skeleton slices
	p.binds = r.rebindBinds
	p.draws = 0
	p.barrierCost = barrierCostFor(r.opts, cfg, n)

	for len(r.procs) < n {
		r.procs = append(r.procs, &Proc{rank: len(r.procs)})
	}
	r.rebindCur.plan = p
	for rank := 0; rank < n; rank++ {
		proc := r.procs[rank]
		proc.size = n
		proc.clock = 0
		proc.seq = 0
		proc.echo = nil
		r.rebindCur.next = tpl.rankOff[rank]
		r.rebindCur.end = tpl.rankOff[rank+1]
		proc.rebind = &r.rebindCur
		err := runRebindRank(proc, fn)
		proc.rebind = nil
		if err != nil {
			r.rebindCur.plan = nil
			if re, ok := err.(*RebindError); ok {
				return nil, re
			}
			return nil, &RebindError{Rank: rank, Why: err.Error()}
		}
	}
	r.rebindCur.plan = nil

	// Second pass: recompute every send's effective link timing and jitter
	// draw from the new byte counts, and back-fill receive byte counts
	// from their matched sends — exactly what Capture.plan computes for a
	// fresh capture of this point.
	noisy := cfg.NoiseAmplitude > 0
	for rank := 0; rank < n; rank++ {
		for i := tpl.rankOff[rank]; i < tpl.rankOff[rank+1]; i++ {
			pe := &tpl.events[i]
			if pe.kind != evSend {
				continue
			}
			pb := &p.binds[i]
			pb.lt = r.net.TimingFor(rank, pe.peer, pb.bytes)
			if !pb.lt.Local && noisy && pb.lt.TxTime > 0 {
				pb.draws = true
				p.draws++
			}
			if ps := pe.peerSlot; ps >= 0 {
				p.binds[tpl.slotEvent[ps]].bytes = pb.bytes
			}
		}
	}
	return p, nil
}

// runRebindRank runs one rank's closure in rebind mode, converting panics
// (divergence, API misuse) into errors and checking that the rank
// consumed exactly its slice of the template.
func runRebindRank(p *Proc, fn func(*Proc) error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("mpi: rebind: rank %d panicked: %v", p.rank, rec)
			}
		}
		if err == nil && p.rebind.next != p.rebind.end {
			err = &RebindError{Rank: p.rank, Why: fmt.Sprintf("stopped %d events short of the template", p.rebind.end-p.rebind.next)}
		}
	}()
	err = fn(p)
	return err
}
