package mpi

import (
	"testing"
)

// The BenchmarkScheduler* family measures the runtime's hot path in
// isolation: a warm Runner executing programs whose cost is dominated by
// scheduler work (admit, the pending min-heap, message matching, release)
// rather than by the simulated algorithms. allocs/op is the number to
// watch — the steady-state path must stay at zero per operation (a small
// per-run constant remains: rank goroutines, the FinishTimes copy).

// BenchmarkSchedulerPingPong measures one warm-Runner run of 100 blocking
// round trips between two ranks — 400 operations through the full
// submit/schedule/match/resume cycle per iteration.
func BenchmarkSchedulerPingPong(b *testing.B) {
	b.ReportAllocs()
	r, err := NewRunner(testConfig(2), Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog := func(p *Proc) error {
		for i := 0; i < 100; i++ {
			if p.Rank() == 0 {
				p.Send(1, 0, nil, 8192)
				p.Recv(1, 1, nil)
			} else {
				p.Recv(0, 0, nil)
				p.Send(0, 1, nil, 8192)
			}
		}
		return nil
	}
	if _, err := r.Run(2, prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(2, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerFanIn stresses the pending queue: 64 ranks all
// sending to rank 0, so the scheduler's frontier stays wide and the
// min-heap (formerly an O(n) scan) does the selection work.
func BenchmarkSchedulerFanIn(b *testing.B) {
	b.ReportAllocs()
	const n = 64
	r, err := NewRunner(testConfig(n), Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog := func(p *Proc) error {
		const rounds = 8
		if p.Rank() == 0 {
			for i := 0; i < rounds*(n-1); i++ {
				p.Recv(1+i%(n-1), 0, nil)
			}
		} else {
			for i := 0; i < rounds; i++ {
				p.Send(0, 0, nil, 1024)
			}
		}
		return nil
	}
	if _, err := r.Run(n, prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(n, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerBarrierStorm measures repeated full-communicator
// barriers — the synchronisation pattern of the measurement harness's
// repetition loop.
func BenchmarkSchedulerBarrierStorm(b *testing.B) {
	b.ReportAllocs()
	const n = 32
	r, err := NewRunner(testConfig(n), Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog := func(p *Proc) error {
		for i := 0; i < 20; i++ {
			p.Barrier()
		}
		return nil
	}
	if _, err := r.Run(n, prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(n, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerRunOverhead measures the fixed cost of one minimal
// warm-Runner run (16 ranks, one barrier): goroutine spawn, scheduler
// reset, and result assembly — the part of a measurement that is not
// per-operation work.
func BenchmarkSchedulerRunOverhead(b *testing.B) {
	b.ReportAllocs()
	const n = 16
	r, err := NewRunner(testConfig(n), Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog := func(p *Proc) error {
		p.Barrier()
		return nil
	}
	if _, err := r.Run(n, prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(n, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerColdRun is the non-reusing baseline: the same program
// as BenchmarkSchedulerPingPong through the one-shot Run entry point,
// paying network construction and scheduler allocation every time. The
// delta against BenchmarkSchedulerPingPong is what a Runner saves.
func BenchmarkSchedulerColdRun(b *testing.B) {
	b.ReportAllocs()
	cfg := testConfig(2)
	prog := func(p *Proc) error {
		for i := 0; i < 100; i++ {
			if p.Rank() == 0 {
				p.Send(1, 0, nil, 8192)
				p.Recv(1, 1, nil)
			} else {
				p.Recv(0, 0, nil)
				p.Send(0, 1, nil, 8192)
			}
		}
		return nil
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, 2, prog); err != nil {
			b.Fatal(err)
		}
	}
}
