package mpi

import (
	"fmt"

	"mpicollperf/internal/simnet"
)

// Plan capture: a Runner.RunCapture run records, in scheduler processing
// order, the complete structure of the program — every transfer with its
// matched receive, every wait with the requests it joins, every barrier
// release and marker — while changing nothing about timing. A repetition's
// slice of that trace, compiled by Capture.Plan, is an immutable Plan that
// a Replayer (replay.go) can re-time without goroutines, channels, or
// matching.
//
// The trace is structural: it holds ranks, NICs, byte counts, and request
// wiring, never virtual times. Whether a given structure is valid for
// every repetition is decided by the caller, by capturing two repetitions
// and byte-comparing their Plans (EquivalentTo): identical structure under
// two different jitter draws is the gate for replaying the rest; a
// mismatch (timing-dependent control flow) falls back to the scheduler.

// evKind enumerates plan/trace event kinds.
type evKind uint8

const (
	evSleep evKind = iota
	evSend
	evRecv
	evWait
	evBarrier
	evMark
)

// capEvent is one recorded trace event. Slot numbers are capture-global
// (assigned in processing order) and remapped to plan-local slots by
// Capture.Plan.
type capEvent struct {
	kind evKind
	rank int32
	// send / recv
	peer     int   // send: destination rank; recv: source rank
	tag      int   // message tag
	bytes    int   // send: message size
	slot     int32 // send/recv request slot
	peerSlot int32 // send: the recv slot the message binds, -1 if never received
	posted   bool  // send: recv was posted first; recv: message arrived first
	// sleep
	dur float64
	// wait: slots live at waitSlots[wOff : wOff+wLen]
	wOff, wLen int32
}

// capKey identifies one unexpected-message FIFO during capture.
type capKey struct {
	dst int
	src int
	tag int
}

// capture records the trace of one run. It is owned by the scheduler
// goroutine; all methods are called from there.
type capture struct {
	nprocs      int
	net         *simnet.Network
	cfg         simnet.Config
	barrierCost float64
	events      []capEvent
	waitSlots   []int32
	marks       []int32 // indices into events, in order
	nextSlot    int32   // slot ids live on the requests themselves (Request.slot)
	payload     bool    // some send carried real payload bytes
	// unexp mirrors the scheduler's unexpected-message queues with the
	// indices of the send events whose messages sit in them, so a receive
	// that pops an unexpected message can be wired to the send that
	// produced it.
	unexp map[capKey][]int32
}

func newCapture(net *simnet.Network, nprocs int, barrierCost float64) *capture {
	return &capture{
		nprocs:      nprocs,
		net:         net,
		cfg:         net.Config(),
		barrierCost: barrierCost,
		unexp:       make(map[capKey][]int32),
	}
}

// reset re-arms a capture for another run, keeping the capacity of every
// buffer — a Runner recycles one capture across RunCapture calls so a
// measurement sweep pays the trace allocation once per worker, not once
// per grid point.
func (c *capture) reset(net *simnet.Network, nprocs int, barrierCost float64) {
	c.nprocs = nprocs
	c.net = net
	c.cfg = net.Config()
	c.barrierCost = barrierCost
	c.events = c.events[:0]
	c.waitSlots = c.waitSlots[:0]
	c.marks = c.marks[:0]
	c.nextSlot = 0
	c.payload = false
	// A completed run leaves the unexpected-message mirror empty unless it
	// ended with undelivered sends; clear any leftovers.
	for k := range c.unexp {
		delete(c.unexp, k)
	}
}

func (c *capture) sleep(op *operation) {
	c.events = append(c.events, capEvent{kind: evSleep, rank: int32(op.rank), dur: op.dur})
}

func (c *capture) mark(op *operation) {
	c.marks = append(c.marks, int32(len(c.events)))
	c.events = append(c.events, capEvent{kind: evMark, rank: int32(op.rank)})
}

func (c *capture) wait(op *operation) {
	off := int32(len(c.waitSlots))
	for _, r := range op.reqs {
		c.waitSlots = append(c.waitSlots, r.slot)
	}
	c.events = append(c.events, capEvent{kind: evWait, rank: int32(op.rank), wOff: off, wLen: int32(len(op.reqs))})
}

func (c *capture) barrier() {
	c.events = append(c.events, capEvent{kind: evBarrier})
}

// send records a transmitted message; the matching outcome is filled in by
// the deliverPosted/deliverUnexpected/recvPending hook that follows.
func (c *capture) send(op *operation) {
	slot := c.nextSlot
	c.nextSlot++
	op.req.slot = slot
	if op.data != nil {
		c.payload = true
	}
	c.events = append(c.events, capEvent{
		kind: evSend, rank: int32(op.rank), peer: op.peer, tag: op.tag,
		bytes: op.bytes, slot: slot, peerSlot: -1,
	})
}

// deliverPosted wires the send event just recorded to the already-posted
// receive it matched.
func (c *capture) deliverPosted(recvOp *operation) {
	e := &c.events[len(c.events)-1]
	e.peerSlot = recvOp.req.slot
	e.posted = true
}

// deliverUnexpected parks the send event just recorded in the mirror of
// the destination's unexpected queue.
func (c *capture) deliverUnexpected(dst int, key matchKey) {
	k := capKey{dst: dst, src: key.src, tag: key.tag}
	c.unexp[k] = append(c.unexp[k], int32(len(c.events)-1))
}

// recvPosted records a receive that was queued to wait for its message.
func (c *capture) recvPosted(op *operation) {
	slot := c.nextSlot
	c.nextSlot++
	op.req.slot = slot
	c.events = append(c.events, capEvent{kind: evRecv, rank: int32(op.rank), peer: op.peer, tag: op.tag, slot: slot})
}

// recvPending records a receive that popped an already-delivered
// unexpected message, and wires the matching send event to it.
func (c *capture) recvPending(op *operation, key matchKey) {
	slot := c.nextSlot
	c.nextSlot++
	op.req.slot = slot
	k := capKey{dst: op.rank, src: key.src, tag: key.tag}
	q := c.unexp[k]
	sendIdx := q[0]
	c.unexp[k] = q[1:]
	c.events[sendIdx].peerSlot = slot
	c.events[sendIdx].posted = false
	c.events = append(c.events, capEvent{kind: evRecv, rank: int32(op.rank), peer: op.peer, tag: op.tag, slot: slot, posted: true})
}

// Capture is the immutable trace of one RunCapture run.
type Capture struct {
	nprocs      int
	net         *simnet.Network
	cfg         simnet.Config
	barrierCost float64
	slots       int
	payload     bool
	events      []capEvent
	waitSlots   []int32
	marks       []int32
}

// MarkCount returns the number of Mark calls recorded.
func (c *Capture) MarkCount() int { return len(c.marks) }

// HasPayload reports whether any send in the trace carried real payload
// bytes. Payload delivery cannot be reproduced by an echo validation run
// (plans record structure, not data), so payload-carrying programs must
// stay on the scheduler engine.
func (c *Capture) HasPayload() bool { return c.payload }

// planEvent is one structural event of a compiled Plan: the part of an
// event that is a function of the program's communication pattern alone —
// kind, endpoints, request wiring — and therefore shared by every grid
// point of the same structure class. The owning rank is implicit: events
// are stored rank-major (see Plan.rankOff). Per-point quantities (byte
// counts, link timings, sleep durations, jitter-draw flags) live in the
// parallel planBind array, so a template's skeleton can be rebound to a
// new operation without recompiling (Runner.Rebind).
type planEvent struct {
	kind   evKind
	srcNIC int32
	dstNIC int32
	slot   int32
	// send: the recv slot the message binds, -1 if never received.
	peerSlot int32
	// peer rank and message tag, kept so an echo or rebind pass can
	// compare a re-executed operation stream against the plan.
	peer int
	tag  int
	wOff int32
	wLen int32
}

// planBind is the per-point binding of one plan event: everything replay
// reads that depends on the operation's sizes rather than its structure.
// All times are precomputed constants (the send's effective LinkTiming
// from simnet.Network.TimingFor, which folds in any time-invariant
// perturbations); virtual times are produced only at replay.
type planBind struct {
	// bytes is the message size (for a receive: the matched message's
	// size, back-filled from the send).
	bytes int
	// lt is the send's effective timing parameters (zero for non-sends);
	// lt.Local marks a co-located send: shared NIC, no ports, no jitter.
	lt simnet.LinkTiming
	// dur is the sleep duration (zero for non-sleeps).
	dur float64
	// draws reports that the send consumes one jitter factor.
	draws bool
}

// Plan is the immutable, replayable structure of one repetition: the
// events between two marks of a captured trace, in canonical form. Build
// one with Capture.Plan; replay it with a Replayer.
//
// The canonical form is rank-major: each rank's events in its own program
// order, with barriers (global separators in the trace) appearing once in
// every rank's sequence, and request slots numbered in rank-major
// introduction order. The trace's global interleaving — which depends on
// the jitter drawn during the captured repetition — is deliberately
// erased: two repetitions of a timing-independent program compile to
// byte-identical Plans under any noise (the EquivalentTo gate), and the
// Replayer recomputes the interleaving per repetition exactly as the
// scheduler would have.
type Plan struct {
	nprocs      int
	nics        int
	slots       int
	draws       int // jitter factors consumed per replay pass
	marks       int // mark events per replay pass
	sends       int // send events per replay pass (precomputed for Sends)
	barrierCost float64
	// rankOff[r]..rankOff[r+1] bound rank r's events; len nprocs+1.
	rankOff []int32
	// events is the structural skeleton; binds is its parallel per-point
	// binding (binds[i] belongs to events[i]). A rebound plan
	// (Runner.Rebind) aliases a template's skeleton slices and owns only
	// a fresh binds array.
	events    []planEvent
	binds     []planBind
	waitSlots []int32
	// slotOwner is the rank whose send/recv introduced each slot; slotPend
	// is the number of halves that must complete before the slot's request
	// is bound (1 for a send, 2 for a matched receive: the receive itself
	// and its message's delivery). slotEvent maps each slot to the event
	// that introduced it, so a rebind can back-fill receive byte counts
	// from their matched sends without a scratch pass.
	slotOwner []int32
	slotPend  []uint8
	slotEvent []int32
}

// Procs returns the number of ranks the plan spans.
func (p *Plan) Procs() int { return p.nprocs }

// Marks returns the number of mark events one replay pass produces.
func (p *Plan) Marks() int { return p.marks }

// Draws returns the number of jitter factors one replay pass consumes.
func (p *Plan) Draws() int { return p.draws }

// Events returns the number of events one replay pass walks.
func (p *Plan) Events() int { return len(p.events) }

// Sends returns the number of send events one replay pass walks — the
// transfers a single replayed repetition simulates. The count is
// precomputed at compile time; Sends is a field read, never a scan.
func (p *Plan) Sends() int { return p.sends }

// BarrierCost returns the analytical cost of one barrier under the plan's
// runtime options — the constant a replay adds at every barrier release.
// The measurement harness uses it to reconstruct the capturing program's
// calibrated preamble clocks when replaying a rebound plan from scratch.
func (p *Plan) BarrierCost() float64 { return p.barrierCost }

// Clone returns a deep, independently-owned copy of the plan. Plans
// compiled by Runner.CompilePlan (and rebound by Runner.Rebind) share the
// Runner's recycled buffers; a caller that wants to outlive the next
// compilation — a template store in particular — clones first.
func (p *Plan) Clone() *Plan {
	q := &Plan{}
	*q = *p
	q.rankOff = append([]int32(nil), p.rankOff...)
	q.events = append([]planEvent(nil), p.events...)
	q.binds = append([]planBind(nil), p.binds...)
	q.waitSlots = append([]int32(nil), p.waitSlots...)
	q.slotOwner = append([]int32(nil), p.slotOwner...)
	q.slotPend = append([]uint8(nil), p.slotPend...)
	q.slotEvent = append([]int32(nil), p.slotEvent...)
	return q
}

// planScratch holds the temporary arrays of one Plan compilation, kept
// so a Runner can recycle them across grid points (Runner.CompilePlan).
type planScratch struct {
	counts, bucketOff, buckets, fill, remap []int32
	bound                                   []bool
}

// growI32 returns a length-n int32 slice reusing s's capacity. The
// contents are unspecified; callers overwrite every entry they read.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Plan compiles the trace segment between two marks into a Plan: the
// events strictly after mark fromMark up to (and excluding) mark toMark,
// or to the end of the trace when toMark is negative. Marks between the
// boundaries are part of the plan (a replay pass reports the replayed
// clock at each).
//
// It fails if the segment's communication does not close over itself —
// a send matched by a receive outside the segment, a wait on such a
// receive, or a request posted outside the segment; such a structure
// cannot be replayed in isolation.
func (c *Capture) Plan(fromMark, toMark int) (*Plan, error) {
	return c.plan(&Plan{}, &planScratch{}, fromMark, toMark)
}

func (c *Capture) plan(p *Plan, scratch *planScratch, fromMark, toMark int) (*Plan, error) {
	if fromMark < 0 || fromMark >= len(c.marks) || (toMark >= 0 && (toMark >= len(c.marks) || toMark <= fromMark)) {
		return nil, fmt.Errorf("mpi: plan marks %d..%d outside trace with %d marks", fromMark, toMark, len(c.marks))
	}
	lo := int(c.marks[fromMark]) + 1
	hi := len(c.events)
	if toMark >= 0 {
		hi = int(c.marks[toMark])
	}
	*p = Plan{
		nprocs:      c.nprocs,
		nics:        c.cfg.NICs(),
		barrierCost: c.barrierCost,
		rankOff:     growI32(p.rankOff, c.nprocs+1),
		events:      p.events[:0],
		binds:       p.binds[:0],
		waitSlots:   p.waitSlots[:0],
		slotOwner:   p.slotOwner[:0],
		slotPend:    p.slotPend[:0],
		slotEvent:   p.slotEvent[:0],
	}
	if cap(p.events) < hi-lo {
		p.events = make([]planEvent, 0, hi-lo)
	}
	if cap(p.binds) < hi-lo {
		p.binds = make([]planBind, 0, hi-lo)
	}
	// Bucket the trace per rank. A rank's own events keep its program
	// order under any jitter; barriers release only once every rank has
	// arrived, so they are global separators and enter every sequence.
	// Bucket entries are trace indices, or -1 for a barrier marker.
	counts := growI32(scratch.counts, c.nprocs)
	scratch.counts = counts
	for i := range counts {
		counts[i] = 0
	}
	nbar := int32(0)
	for i := lo; i < hi; i++ {
		if c.events[i].kind == evBarrier {
			nbar++
		} else {
			counts[c.events[i].rank]++
		}
	}
	bucketOff := growI32(scratch.bucketOff, c.nprocs+1)
	scratch.bucketOff = bucketOff
	bucketOff[0] = 0
	for r := 0; r < c.nprocs; r++ {
		bucketOff[r+1] = bucketOff[r] + counts[r] + nbar
	}
	buckets := growI32(scratch.buckets, int(bucketOff[c.nprocs]))
	scratch.buckets = buckets
	fill := growI32(scratch.fill, c.nprocs)
	scratch.fill = fill
	copy(fill, bucketOff[:c.nprocs])
	for i := lo; i < hi; i++ {
		e := &c.events[i]
		if e.kind == evBarrier {
			for r := 0; r < c.nprocs; r++ {
				buckets[fill[r]] = -1
				fill[r]++
			}
			continue
		}
		buckets[fill[e.rank]] = int32(i)
		fill[e.rank]++
	}
	perRank := func(r int) []int32 { return buckets[bucketOff[r]:bucketOff[r+1]] }
	// Canonical slot numbers: rank-major introduction order. Capture slot
	// ids are dense, so the remap is a plain array (-1 = not in segment).
	remap := growI32(scratch.remap, c.slots)
	scratch.remap = remap
	for i := range remap {
		remap[i] = -1
	}
	nslots := int32(0)
	for r := 0; r < c.nprocs; r++ {
		for _, i := range perRank(r) {
			if i < 0 {
				continue
			}
			e := &c.events[i]
			if e.kind == evSend || e.kind == evRecv {
				remap[e.slot] = nslots
				nslots++
				p.slotOwner = append(p.slotOwner, int32(r))
				pend := uint8(1)
				if e.kind == evRecv {
					pend = 2
				}
				p.slotPend = append(p.slotPend, pend)
			}
		}
	}
	// bound marks canonical recv slots matched in-segment; p.slotEvent maps
	// each canonical slot to its introducing event index (kept on the plan:
	// a rebind pass reuses it to back-fill receive byte counts).
	if cap(scratch.bound) < int(nslots) {
		scratch.bound = make([]bool, nslots)
	}
	bound := scratch.bound[:nslots]
	for i := range bound {
		bound[i] = false
	}
	p.slotEvent = growI32(p.slotEvent, int(nslots))
	noisy := c.cfg.NoiseAmplitude > 0
	for r := 0; r < c.nprocs; r++ {
		p.rankOff[r] = int32(len(p.events))
		for _, i := range perRank(r) {
			if i < 0 {
				p.events = append(p.events, planEvent{kind: evBarrier, peerSlot: -1})
				p.binds = append(p.binds, planBind{})
				continue
			}
			e := &c.events[i]
			pe := planEvent{kind: e.kind, peerSlot: -1, peer: e.peer, tag: e.tag}
			pb := planBind{bytes: e.bytes, dur: e.dur}
			switch e.kind {
			case evSend:
				pe.slot = remap[e.slot]
				pe.srcNIC = int32(c.cfg.NIC(int(e.rank)))
				pe.dstNIC = int32(c.cfg.NIC(e.peer))
				pb.lt = c.net.TimingFor(int(e.rank), e.peer, e.bytes)
				if !pb.lt.Local {
					pb.draws = noisy && pb.lt.TxTime > 0
					if pb.draws {
						p.draws++
					}
				}
				p.sends++
				p.slotEvent[pe.slot] = int32(len(p.events))
				if e.peerSlot >= 0 {
					m := remap[e.peerSlot]
					if m < 0 {
						return nil, fmt.Errorf("mpi: plan: send matched by a receive outside the segment")
					}
					pe.peerSlot = m
					bound[m] = true
				}
			case evRecv:
				pe.slot = remap[e.slot]
				p.slotEvent[pe.slot] = int32(len(p.events))
			case evWait:
				pe.wOff = int32(len(p.waitSlots))
				pe.wLen = e.wLen
				for _, s := range c.waitSlots[e.wOff : e.wOff+e.wLen] {
					m := remap[s]
					if m < 0 {
						return nil, fmt.Errorf("mpi: plan: wait on request posted outside the segment")
					}
					p.waitSlots = append(p.waitSlots, m)
				}
			case evMark:
				p.marks++
			case evSleep:
				// nothing beyond the common fields
			}
			p.events = append(p.events, pe)
			p.binds = append(p.binds, pb)
		}
	}
	p.rankOff[c.nprocs] = int32(len(p.events))
	p.slots = int(nslots)
	// A receive's byte count is the matched message's size, known only at
	// the send event; copy it over now that every event is emitted.
	for i := range p.events {
		if e := &p.events[i]; e.kind == evSend && e.peerSlot >= 0 {
			p.binds[p.slotEvent[e.peerSlot]].bytes = p.binds[i].bytes
		}
	}
	// A waited receive whose message never arrives within the segment
	// would park its rank forever.
	for _, m := range p.waitSlots {
		if p.slotPend[m] == 2 && !bound[m] {
			return nil, fmt.Errorf("mpi: plan: wait on a receive matched outside the segment")
		}
	}
	return p, nil
}

// EquivalentTo reports whether two plans describe bit-for-bit the same
// communication structure: same per-rank programs, same NICs, byte
// times, request wiring, and barrier cost. The canonical form erases the
// captured interleaving, so two repetitions of a timing-independent
// program are equivalent under any jitter draws — that equivalence is
// the gate for replaying further repetitions from either plan.
func (p *Plan) EquivalentTo(q *Plan) bool {
	if p.nprocs != q.nprocs || p.nics != q.nics || p.slots != q.slots ||
		p.draws != q.draws || p.marks != q.marks || p.sends != q.sends ||
		p.barrierCost != q.barrierCost ||
		len(p.events) != len(q.events) || len(p.waitSlots) != len(q.waitSlots) {
		return false
	}
	for i, o := range p.rankOff {
		if o != q.rankOff[i] {
			return false
		}
	}
	for i := range p.events {
		if p.events[i] != q.events[i] || p.binds[i] != q.binds[i] {
			return false
		}
	}
	for i := range p.waitSlots {
		if p.waitSlots[i] != q.waitSlots[i] {
			return false
		}
	}
	for i := range p.slotOwner {
		if p.slotOwner[i] != q.slotOwner[i] || p.slotPend[i] != q.slotPend[i] {
			return false
		}
	}
	return true
}
