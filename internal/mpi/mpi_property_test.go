package mpi

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

// randomProgram builds a deterministic random communication schedule: a
// list of (src, dst, tag, size) messages. Every rank sends its messages in
// schedule order (non-blocking) and receives the ones addressed to it in
// schedule order (also non-blocking), then waits for everything — a
// pattern that is deadlock-free by construction for the lockstep runtime.
type scheduledMsg struct {
	src, dst, tag, size int
}

func randomSchedule(rng *rand.Rand, nprocs, n int) []scheduledMsg {
	msgs := make([]scheduledMsg, n)
	for i := range msgs {
		src := rng.Intn(nprocs)
		dst := rng.Intn(nprocs - 1)
		if dst >= src {
			dst++
		}
		msgs[i] = scheduledMsg{src: src, dst: dst, tag: rng.Intn(3), size: rng.Intn(5000)}
	}
	return msgs
}

func runSchedule(cfgSeed int64, nprocs int, msgs []scheduledMsg) (Result, error) {
	cfg := testConfig(nprocs)
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = cfgSeed
	return Run(cfg, nprocs, func(p *Proc) error {
		var reqs []*Request
		for _, m := range msgs {
			if m.src == p.Rank() {
				reqs = append(reqs, p.Isend(m.dst, m.tag, nil, m.size))
			}
			if m.dst == p.Rank() {
				reqs = append(reqs, p.Irecv(m.src, m.tag, nil))
			}
		}
		p.WaitAll(reqs...)
		return nil
	})
}

// Property: any random matched schedule completes without deadlock and is
// bit-deterministic across repeated executions.
func TestRandomSchedulesCompleteAndDeterministic(t *testing.T) {
	f := func(seed int64, npRaw, nRaw uint8) bool {
		nprocs := int(npRaw%10) + 2
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		msgs := randomSchedule(rng, nprocs, n)
		r1, err1 := runSchedule(seed, nprocs, msgs)
		r2, err2 := runSchedule(seed, nprocs, msgs)
		if err1 != nil || err2 != nil {
			return false
		}
		if r1.MakeSpan != r2.MakeSpan || r1.Transfers != r2.Transfers {
			return false
		}
		return r1.Transfers == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: receives posted in a different order than the sends still
// match correctly by (source, tag) FIFO.
func TestOutOfOrderPostingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 12
		sizes := make([]int, n)
		tags := make([]int, n)
		for i := range sizes {
			sizes[i] = rng.Intn(2000) + 1
			tags[i] = rng.Intn(2)
		}
		// Receiver posts its receives in shuffled order; matching must
		// still pair the k-th send of (tag t) with the k-th receive of
		// (tag t). We verify by size since payloads are synthetic.
		perm := rng.Perm(n)
		ok := true
		_, err := Run(testConfig(2), 2, func(p *Proc) error {
			if p.Rank() == 0 {
				for i := 0; i < n; i++ {
					p.Send(1, tags[i], nil, sizes[i])
				}
				return nil
			}
			reqs := make([]*Request, n)
			order := make([]int, n) // order[i] = original index whose recv this is
			nextOfTag := map[int][]int{}
			for i := 0; i < n; i++ {
				nextOfTag[tags[i]] = append(nextOfTag[tags[i]], i)
			}
			taken := map[int]int{}
			for _, i := range perm {
				tg := tags[i]
				k := taken[tg]
				taken[tg]++
				order[i] = nextOfTag[tg][k]
				reqs[i] = p.Irecv(0, tg, nil)
			}
			p.WaitAll(reqs...)
			for _, i := range perm {
				if reqs[i].Bytes() != sizes[order[i]] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	// Run many programs, including failing ones, and check the goroutine
	// count returns to baseline.
	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		_, _ = Run(testConfig(6), 6, func(p *Proc) error {
			if p.Rank() == i%6 && i%3 == 0 {
				return fmt.Errorf("induced failure %d", i)
			}
			p.Barrier()
			if p.Rank() == 0 {
				for d := 1; d < 6; d++ {
					p.Send(d, 0, nil, 128)
				}
			} else {
				p.Recv(0, 0, nil)
			}
			p.Barrier()
			return nil
		})
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d -> %d", base, runtime.NumGoroutine())
}

func TestManyUnexpectedMessages(t *testing.T) {
	// A flood of eager messages buffered before any receive is posted.
	const n = 500
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			reqs := make([]*Request, n)
			for i := range reqs {
				reqs[i] = p.Isend(1, i%7, nil, 64)
			}
			p.WaitAll(reqs...)
			return nil
		}
		p.Sleep(1) // let everything arrive unexpected
		reqs := make([]*Request, n)
		for i := range reqs {
			reqs[i] = p.Irecv(0, i%7, nil)
		}
		p.WaitAll(reqs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedBarriersAndTraffic(t *testing.T) {
	// Repeated barrier-separated phases with rotating communication
	// topology; clock coherence must hold (monotone per rank).
	const nprocs, phases = 8, 12
	_, err := Run(testConfig(nprocs), nprocs, func(p *Proc) error {
		last := 0.0
		for ph := 0; ph < phases; ph++ {
			to := (p.Rank() + ph + 1) % nprocs
			from := (p.Rank() - ph - 1 + nprocs*phases) % nprocs
			if to != p.Rank() && from != p.Rank() {
				rs := p.Isend(to, ph, nil, 256*ph+1)
				rr := p.Irecv(from, ph, nil)
				p.WaitAll(rs, rr)
			}
			p.Barrier()
			if p.Now() < last {
				return fmt.Errorf("clock went backwards: %v -> %v", last, p.Now())
			}
			last = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteTrafficSemantics(t *testing.T) {
	// Zero-byte messages must still synchronise (deliver after latency).
	cfg := testConfig(2)
	var recvAt float64
	_, err := Run(cfg, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 0)
		} else {
			p.Recv(0, 0, nil)
			recvAt = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.SendOverhead + cfg.Latency + cfg.RecvOverhead
	if recvAt != want {
		t.Fatalf("zero-byte delivery at %v, want %v", recvAt, want)
	}
}
