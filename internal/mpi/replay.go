package mpi

import (
	"fmt"
	"math"

	"mpicollperf/internal/simnet"
)

// Replayer re-times a captured Plan: one replay pass evaluates the same
// virtual-time arithmetic the scheduler would have — port occupancy
// through simnet.Ports, request binding through plan-local slots, barrier
// alignment through the plan's barrier cost — without goroutines,
// channels, or message matching. The global processing order, which fixes
// both the order jitter factors are drawn in and the order NIC ports are
// claimed in, is recomputed per repetition with the scheduler's exact
// discipline: every rank has at most one schedulable operation, and the
// one with the smallest (virtual time, rank) is processed next. The
// replayed clocks are therefore bit-identical to the scheduler's.
//
// Repetitions are evaluated in noise lanes (struct-of-arrays): Replay(k)
// draws the jitter factors for k successive repetitions from the
// network's single noise stream up front (lane l holds the stream stripe
// of repetition l of the batch), then walks each lane over its own port
// stripe, chained from its predecessor's barrier-aligned end state. The
// steady-state pass allocates nothing: every buffer is sized at
// construction.
type Replayer struct {
	plan  *Plan
	net   *simnet.Network
	ports *simnet.Ports
	lanes int
	// clocks holds per-lane rank clocks, lane-major stripes of nprocs.
	clocks []float64
	// jit holds the batch's jitter factors, lane-major stripes of
	// plan.Draws().
	jit []float64
	// marks holds the batch's mark clocks, lane-major stripes of
	// plan.Marks().
	marks []float64
	// last is the lane holding the most recently replayed repetition's
	// end state; the next batch chains from it.
	last int

	// Per-lane scratch, reset at the start of each lane's walk.
	cursor []int32   // per-rank index of the next unprocessed event
	reqAt  []float64 // per-slot bound completion time (max of its halves)
	pend   []uint8   // per-slot halves still outstanding
	parked []bool    // per-rank: cursor points at a wait with unbound slots
	heap   []heapEnt // schedulable frontier, min-(key, rank)
	// clk records each event's release clock — the virtual time the owning
	// rank's program resumes at after the event — for the most recently
	// replayed lane; an echo run (Runner.EchoRun) replays user code against
	// these times. Nil once DiscardEchoClocks is called: the stores are
	// pure overhead after the echo validation has passed. barrierIdx tracks
	// each rank's pending barrier event so the release can stamp all of
	// them at once.
	clk        []float64
	barrierIdx []int32
	// clkBuf is the backing store for clk. It survives DiscardEchoClocks so
	// that a recycled Replayer (Runner.NewReplayer) can re-enable echo-clock
	// recording for the next plan without reallocating.
	clkBuf []float64

	lane       int
	laneClock  []float64 // current lane's stripe of clocks
	barrierN   int
	barrierMax float64
	ji, mi     int
}

// heapEnt is one frontier entry: rank's next event becomes processable at
// virtual time key. At most one entry per rank exists, so (key, rank) is
// the scheduler's full tie-breaking order.
type heapEnt struct {
	key  float64
	rank int32
}

// NewReplayer builds a Replayer for plan continuing the execution state of
// net (whose ports are snapshotted now and whose noise stream the replays
// will consume) with the given per-rank clocks — normally the FinishTimes
// of the capturing run. lanes bounds the batch size of Replay.
func NewReplayer(net *simnet.Network, plan *Plan, clocks []float64, lanes int) (*Replayer, error) {
	r := &Replayer{}
	if err := r.reinit(net, plan, clocks, lanes); err != nil {
		return nil, err
	}
	return r, nil
}

// reinit (re)shapes r for plan, reusing every backing buffer that is
// already large enough. Buffers grow monotonically: a Replayer recycled
// across a sweep's grid points stops allocating once it has seen the
// largest plan. Replays after reinit are bit-identical to a fresh
// NewReplayer — every buffer a lane reads is seeded or overwritten before
// use, and echo-clock recording is re-enabled even if the previous plan
// discarded it.
func (r *Replayer) reinit(net *simnet.Network, plan *Plan, clocks []float64, lanes int) error {
	if lanes < 1 {
		return fmt.Errorf("mpi: %d replay lanes, need >= 1", lanes)
	}
	if len(clocks) != plan.nprocs {
		return fmt.Errorf("mpi: %d start clocks for a %d-rank plan", len(clocks), plan.nprocs)
	}
	ports, err := net.SnapshotPortsInto(r.ports, lanes)
	if err != nil {
		return err
	}
	r.plan, r.net, r.ports, r.lanes = plan, net, ports, lanes
	r.clocks = grow(r.clocks, lanes*plan.nprocs)
	r.jit = grow(r.jit, lanes*plan.draws)
	r.marks = grow(r.marks, lanes*plan.marks)
	r.cursor = grow(r.cursor, plan.nprocs)
	r.reqAt = grow(r.reqAt, plan.slots)
	r.pend = grow(r.pend, plan.slots)
	r.parked = grow(r.parked, plan.nprocs)
	if cap(r.heap) < plan.nprocs {
		r.heap = make([]heapEnt, 0, plan.nprocs)
	}
	r.heap = r.heap[:0]
	r.clkBuf = grow(r.clkBuf, len(plan.events))
	r.clk = r.clkBuf
	r.barrierIdx = grow(r.barrierIdx, plan.nprocs)
	r.last = 0
	copy(r.clocks[:plan.nprocs], clocks)
	return nil
}

// grow returns s resized to length n, reusing its backing array when the
// capacity suffices. Contents are unspecified; callers overwrite before
// reading.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Lanes returns the maximum batch size.
func (r *Replayer) Lanes() int { return r.lanes }

// Replay re-times the next k repetitions (1 <= k <= Lanes) and returns
// the mark clocks, lane-major: the clocks of lane l's marks are
// marks[l*plan.Marks() : (l+1)*plan.Marks()], in the marking rank's
// program order. The returned slice is owned by the Replayer and valid
// until the next call.
//
// ok is false when a lane's walk does not close over the plan (a rank
// left parked or mid-program); that means the plan does not describe a
// self-contained repetition, and the caller must fall back to the
// scheduler engine.
func (r *Replayer) Replay(k int) (marks []float64, ok bool) {
	if k < 1 || k > r.lanes {
		panic(fmt.Errorf("mpi: Replay(%d) outside 1..%d", k, r.lanes))
	}
	p := r.plan
	n := p.nprocs
	// One pre-draw for the whole batch: the stream order is repetition
	// order, so lane l's stripe holds exactly the factors the scheduler
	// would have drawn during repetition l of the batch.
	r.net.DrawJitterInto(r.jit[:k*p.draws])
	for l := 0; l < k; l++ {
		// Chain the lane from the previous repetition's end state.
		r.ports.SeedLane(l, r.last)
		if l != r.last {
			copy(r.clocks[l*n:(l+1)*n], r.clocks[r.last*n:(r.last+1)*n])
		}
		if !r.replayLane(l) {
			return nil, false
		}
		r.last = l
	}
	return r.marks[:k*p.marks], true
}

// replayLane walks one repetition on lane l.
func (r *Replayer) replayLane(l int) bool {
	p := r.plan
	n := p.nprocs
	r.lane = l
	r.laneClock = r.clocks[l*n : (l+1)*n]
	copy(r.cursor, p.rankOff[:n])
	copy(r.pend, p.slotPend)
	for i := range r.reqAt {
		r.reqAt[i] = 0
	}
	for i := range r.parked {
		r.parked[i] = false
	}
	r.heap = r.heap[:0]
	r.barrierN = 0
	r.barrierMax = 0
	r.ji = l * p.draws
	r.mi = l * p.marks
	for rank := 0; rank < n; rank++ {
		r.advance(rank)
	}
	for len(r.heap) > 0 {
		key, rank := r.pop()
		cur := r.cursor[rank]
		r.cursor[rank] = cur + 1
		e := &p.events[cur]
		switch e.kind {
		case evSleep:
			key += p.binds[cur].dur
			r.laneClock[rank] = key
		case evMark:
			r.marks[r.mi] = key
			r.mi++
		case evWait:
			r.laneClock[rank] = key
		case evRecv:
			s := e.slot
			r.reqAt[s] = math.Max(r.reqAt[s], key)
			r.pend[s]--
			// The receive's own rank is busy here, so no wait can be
			// parked on it; no wake needed.
		case evSend:
			b := &p.binds[cur]
			var sc, delivered float64
			if b.lt.Local {
				sc, delivered = r.ports.TransmitLocal(b.lt, key)
			} else {
				f := 1.0
				if b.draws {
					f = r.jit[r.ji]
					r.ji++
				}
				sc, delivered = r.ports.Transmit(l, int(e.srcNIC), int(e.dstNIC), b.lt, key, f)
			}
			r.reqAt[e.slot] = sc
			r.pend[e.slot] = 0
			if ps := e.peerSlot; ps >= 0 {
				r.reqAt[ps] = math.Max(r.reqAt[ps], delivered)
				if r.pend[ps]--; r.pend[ps] == 0 {
					r.wake(int(p.slotOwner[ps]))
				}
			}
			key += b.lt.SendOv
			r.laneClock[rank] = key
		}
		if r.clk != nil {
			r.clk[cur] = key
		}
		r.advance(rank)
	}
	// A well-formed repetition ends with every rank's program exhausted.
	if r.barrierN != 0 {
		return false
	}
	for rank := 0; rank < n; rank++ {
		if r.parked[rank] || r.cursor[rank] != p.rankOff[rank+1] {
			return false
		}
	}
	return true
}

// advance schedules rank's next event: barriers park the rank until all
// have arrived, a wait with unbound requests parks until its last message
// is delivered (wake), everything else joins the frontier at the rank's
// current clock.
func (r *Replayer) advance(rank int) {
	p := r.plan
	cur := r.cursor[rank]
	if cur == p.rankOff[rank+1] {
		return
	}
	e := &p.events[cur]
	switch e.kind {
	case evBarrier:
		r.cursor[rank] = cur + 1
		r.barrierIdx[rank] = cur
		r.barrierMax = math.Max(r.barrierMax, r.laneClock[rank])
		if r.barrierN++; r.barrierN == p.nprocs {
			t := r.barrierMax + p.barrierCost
			r.barrierN = 0
			r.barrierMax = 0
			for i := range r.laneClock {
				r.laneClock[i] = t
			}
			if r.clk != nil {
				for i := 0; i < p.nprocs; i++ {
					r.clk[r.barrierIdx[i]] = t
				}
			}
			for i := 0; i < p.nprocs; i++ {
				r.advance(i)
			}
		}
	case evWait:
		for _, s := range p.waitSlots[e.wOff : e.wOff+e.wLen] {
			if r.pend[s] != 0 {
				r.parked[rank] = true
				return
			}
		}
		r.push(r.waitKey(rank, e), int32(rank))
	default:
		r.push(r.laneClock[rank], int32(rank))
	}
}

// waitKey is the virtual time a wait resolves at: the later of the rank's
// clock and its requests' completion times — the scheduler's scheduleKey.
func (r *Replayer) waitKey(rank int, e *planEvent) float64 {
	t := r.laneClock[rank]
	for _, s := range r.plan.waitSlots[e.wOff : e.wOff+e.wLen] {
		if v := r.reqAt[s]; v > t {
			t = v
		}
	}
	return t
}

// wake re-examines rank's parked wait after a request bound.
func (r *Replayer) wake(rank int) {
	if !r.parked[rank] {
		return
	}
	e := &r.plan.events[r.cursor[rank]]
	for _, s := range r.plan.waitSlots[e.wOff : e.wOff+e.wLen] {
		if r.pend[s] != 0 {
			return
		}
	}
	r.parked[rank] = false
	r.push(r.waitKey(rank, e), int32(rank))
}

// push inserts a frontier entry; the heap never exceeds one entry per
// rank, so its capacity (nprocs) is fixed at construction.
func (r *Replayer) push(key float64, rank int32) {
	h := append(r.heap, heapEnt{key: key, rank: rank})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	r.heap = h
}

func (r *Replayer) pop() (float64, int) {
	h := r.heap
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	if len(h) > 0 {
		h[0] = last
		i := 0
		for {
			l, rt, m := 2*i+1, 2*i+2, i
			if l < len(h) && entLess(h[l], h[m]) {
				m = l
			}
			if rt < len(h) && entLess(h[rt], h[m]) {
				m = rt
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	r.heap = h
	return top.key, int(top.rank)
}

// entLess mirrors the scheduler's opLess: smallest key first, ties by
// rank. A rank has one frontier entry at most, so no third component is
// needed for a total order.
func entLess(a, b heapEnt) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.rank < b.rank
}

// Clocks returns the per-rank clocks after the most recently replayed
// repetition. The slice is owned by the Replayer.
func (r *Replayer) Clocks() []float64 {
	n := r.plan.nprocs
	return r.clocks[r.last*n : (r.last+1)*n]
}

// EchoClocks returns the release clock of every plan event in the most
// recently replayed repetition, indexed like the plan's events. The slice
// is owned by the Replayer and overwritten by the next Replay call; it is
// the time source for Runner.EchoRun. Nil after DiscardEchoClocks.
func (r *Replayer) EchoClocks() []float64 { return r.clk }

// DiscardEchoClocks stops recording per-event release clocks. The
// measurement harness calls it once the echo validation has passed:
// every later repetition then skips one store per event.
func (r *Replayer) DiscardEchoClocks() { r.clk = nil }
