// Package mpi provides a small message-passing runtime with MPI-like
// semantics executed on the simnet virtual cluster. It is the substrate on
// which the Open MPI collective algorithms of package coll run, and it
// plays the role Open MPI 3.1 plays in the paper.
//
// Each rank is a goroutine executing user code against a *Proc handle.
// Virtual time is managed by a single deterministic scheduler: a rank's
// local clock advances only through communication operations, and the
// scheduler always services the operation with the globally smallest
// virtual timestamp (ties broken by rank), so a program's virtual timing is
// bit-reproducible regardless of the Go scheduler, GOMAXPROCS, or wall
// time.
//
// Supported operations mirror the subset of MPI the broadcast algorithms
// need: blocking and non-blocking point-to-point sends and receives with
// (source, tag) matching and the MPI non-overtaking guarantee, Wait /
// WaitAll, a barrier, and virtual compute time (Sleep).
//
// Messages may carry real payload bytes — the collective tests verify that
// every algorithm actually delivers the root's buffer — or may be synthetic
// (nil payload with an explicit size) so that large performance sweeps do
// not pay for memcpy.
//
// The runtime is built for measurement-sweep throughput: a Runner keeps
// one scheduler and one network alive across runs, and the per-operation
// path of a warm Runner — submit, schedule, match, resume — performs no
// heap allocations (request and operation objects are recycled through
// freelists, and all scheduler queues retain their capacity).
package mpi

import (
	"errors"
	"fmt"

	"mpicollperf/internal/obs"
	"mpicollperf/internal/simnet"
)

// ErrDeadlock is wrapped by the error Run returns when every live rank is
// blocked and no progress is possible.
var ErrDeadlock = errors.New("mpi: deadlock")

// errAborted is panicked inside Proc methods when the run has been aborted
// (by deadlock or by another rank's failure); the rank wrapper recovers it.
var errAborted = errors.New("mpi: run aborted")

// Result summarises a completed run.
type Result struct {
	// FinishTimes holds each rank's virtual time when its function returned.
	FinishTimes []float64
	// MakeSpan is the maximum finish time over all ranks.
	MakeSpan float64
	// Transfers is the number of network transfers simulated.
	Transfers int64
	// Ops is the number of operations the scheduler processed.
	Ops int64
}

// Request is the handle of a non-blocking operation. It is owned by the
// rank that created it and must only be waited on by that rank.
//
// Like an MPI_Request, a handle is dead once it has been waited on: the
// runtime recycles waited requests into the owning rank's freelist, and
// the next Isend or Irecv by that rank may reuse the object. Reading
// Bytes is valid between the wait and the owner's next operation.
type Request struct {
	owner    int
	isRecv   bool
	bound    bool    // completion time known
	at       float64 // virtual completion time, valid when bound
	bytes    int     // received message size, valid for receives when bound
	consumed bool    // has been waited on
	slot     int32   // capture-global slot id while a trace is recorded
}

// Bytes returns the size of the received message. It is only meaningful
// for receive requests after they have been waited on, and must be read
// before the owning rank posts another operation (which may recycle the
// handle).
func (r *Request) Bytes() int { return r.bytes }

// Proc is a rank's handle to the runtime. All methods must be called from
// the goroutine running that rank's function. Methods panic on misuse
// (invalid peer, buffer truncation, waiting on a foreign request); Run
// recovers such panics and reports them as errors.
type Proc struct {
	rank   int
	size   int
	sched  *scheduler
	resume chan reply
	clock  float64
	seq    int64

	// reqFree recycles waited-on requests; it persists across the runs of
	// a Runner, so a warm rank allocates no request objects.
	reqFree []*Request
	// waitBuf backs the single-request Wait fast path, avoiding the
	// variadic slice allocation of WaitAll.
	waitBuf [1]*Request

	// echo, when non-nil, routes submitted operations to the echo
	// validator (echo.go) instead of the scheduler.
	echo *echoRank
	// rebind, when non-nil, routes submitted operations to the rebind
	// harvester (rebind.go): the structural pass of Runner.Rebind that
	// binds a plan template to a new operation's sizes.
	rebind *rebindRank
}

// Rank returns this process's rank in 0..Size()-1.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the run.
func (p *Proc) Size() int { return p.size }

// Now returns the rank's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// Sleep advances the rank's virtual clock by d seconds of compute time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Errorf("mpi: rank %d: negative sleep %v", p.rank, d))
	}
	p.submit(operation{kind: opSleep, dur: d})
}

// newRequest takes a request from the rank's freelist, or allocates one.
func (p *Proc) newRequest(isRecv bool) *Request {
	if n := len(p.reqFree); n > 0 {
		r := p.reqFree[n-1]
		p.reqFree = p.reqFree[:n-1]
		*r = Request{owner: p.rank, isRecv: isRecv}
		return r
	}
	return &Request{owner: p.rank, isRecv: isRecv}
}

// Isend posts a non-blocking send of data to rank dst with the given tag
// and returns its request. If data is nil, size synthetic bytes are sent
// without payload; otherwise the payload is copied out immediately
// (buffered semantics) and size must equal len(data) or be negative
// (meaning len(data)).
func (p *Proc) Isend(dst, tag int, data []byte, size int) *Request {
	if data != nil {
		if size < 0 {
			size = len(data)
		} else if size != len(data) {
			panic(fmt.Errorf("mpi: rank %d: Isend size %d != len(data) %d", p.rank, size, len(data)))
		}
	} else if size < 0 {
		panic(fmt.Errorf("mpi: rank %d: Isend with nil data needs explicit size", p.rank))
	}
	p.checkPeer(dst, "Isend")
	var payload []byte
	if data != nil {
		payload = make([]byte, len(data))
		copy(payload, data)
	}
	req := p.newRequest(false)
	p.submit(operation{kind: opIsend, peer: dst, tag: tag, data: payload, bytes: size, req: req})
	return req
}

// Irecv posts a non-blocking receive from rank src with the given tag. If
// buf is non-nil the incoming payload is copied into it and the message
// must fit; a nil buf accepts a message of any size without copying.
func (p *Proc) Irecv(src, tag int, buf []byte) *Request {
	p.checkPeer(src, "Irecv")
	req := p.newRequest(true)
	p.submit(operation{kind: opIrecv, peer: src, tag: tag, data: buf, req: req})
	return req
}

// Wait blocks until the request completes, advancing the rank's clock to
// the completion time.
func (p *Proc) Wait(r *Request) {
	p.waitBuf[0] = r
	p.waitAll(p.waitBuf[:1])
	p.waitBuf[0] = nil
}

// WaitAll blocks until every request completes, advancing the rank's clock
// to the latest completion time. Requests may be waited on only once;
// after the wait returns, the handles are recycled and must not be reused.
func (p *Proc) WaitAll(rs ...*Request) { p.waitAll(rs) }

func (p *Proc) waitAll(rs []*Request) {
	for _, r := range rs {
		if r == nil {
			panic(fmt.Errorf("mpi: rank %d: wait on nil request", p.rank))
		}
		if r.owner != p.rank {
			panic(fmt.Errorf("mpi: rank %d: wait on request owned by rank %d", p.rank, r.owner))
		}
		if r.consumed {
			panic(fmt.Errorf("mpi: rank %d: request waited on twice", p.rank))
		}
	}
	p.submit(operation{kind: opWait, reqs: rs})
	for _, r := range rs {
		r.consumed = true
		p.reqFree = append(p.reqFree, r)
	}
}

// Send is a blocking send: it returns when the send buffer is reusable
// (eager/buffered semantics, matching Open MPI's behaviour for the message
// sizes the collective algorithms use).
func (p *Proc) Send(dst, tag int, data []byte, size int) {
	p.Wait(p.Isend(dst, tag, data, size))
}

// Recv is a blocking receive; it returns the received message size.
func (p *Proc) Recv(src, tag int, buf []byte) int {
	r := p.Irecv(src, tag, buf)
	p.Wait(r)
	return r.bytes
}

// Barrier blocks until every rank has entered the barrier; all ranks leave
// at the same virtual time (the latest arrival plus the configured barrier
// cost). The measurement harness uses it to separate repetitions, exactly
// as the paper's γ(P) experiments do.
func (p *Proc) Barrier() {
	p.submit(operation{kind: opBarrier})
}

// Mark records a timing-neutral marker in the execution trace of a
// capturing run (see Runner.RunCapture): it does not advance the rank's
// clock, costs no virtual time, and has no effect on any other rank's
// timing. The measurement harness brackets repetitions and sample points
// with marks so a captured Plan knows where to read replayed clocks.
// Outside a capturing run a Mark is a no-op.
func (p *Proc) Mark() {
	p.submit(operation{kind: opMark})
}

func (p *Proc) checkPeer(peer int, op string) {
	if peer < 0 || peer >= p.size {
		panic(fmt.Errorf("mpi: rank %d: %s peer %d outside 0..%d", p.rank, op, peer, p.size-1))
	}
	if peer == p.rank {
		panic(fmt.Errorf("mpi: rank %d: %s to self", p.rank, op))
	}
}

// submit hands an operation to the scheduler and blocks for the reply.
// In an echo run there is no scheduler: the operation is validated
// against the plan and the clock comes from the replayed release times.
// In a rebind pass there is no scheduler either: the operation is
// structurally validated against the template and its sizes are harvested
// into the new binding, with the clock frozen.
func (p *Proc) submit(op operation) {
	op.rank = p.rank
	if p.echo != nil {
		p.clock = p.echoStep(&op)
		return
	}
	if p.rebind != nil {
		p.rebindStep(&op)
		return
	}
	op.clock = p.clock
	p.seq++
	op.seq = p.seq
	p.sched.ops <- op
	rep := <-p.resume
	if rep.abort {
		panic(errAborted)
	}
	p.clock = rep.clock
}

type opKind int

const (
	opIsend opKind = iota
	opIrecv
	opWait
	opBarrier
	opSleep
	opMark
	opExit
)

func (k opKind) String() string {
	switch k {
	case opIsend:
		return "isend"
	case opIrecv:
		return "irecv"
	case opWait:
		return "wait"
	case opBarrier:
		return "barrier"
	case opSleep:
		return "sleep"
	case opMark:
		return "mark"
	case opExit:
		return "exit"
	}
	return "unknown"
}

type operation struct {
	kind  opKind
	rank  int
	clock float64
	seq   int64
	// key is the cached schedule key, set by pushPending when the
	// operation enters the pending heap (see scheduleKey).
	key float64
	// isend / irecv
	peer  int
	tag   int
	data  []byte
	bytes int
	req   *Request
	// wait
	reqs []*Request
	// sleep
	dur float64
	// exit
	err error
}

type reply struct {
	clock float64
	abort bool
}

// Options tunes runtime behaviour.
type Options struct {
	// BarrierRounds overrides the number of latency rounds a barrier costs;
	// zero means ceil(log2 P) (dissemination-style).
	BarrierRounds int
	// Metrics, when non-nil, receives run/operation/transfer counters and
	// plan-size histograms from Runners. Metrics only observe completed
	// runs — they never alter scheduling or virtual time, so instrumented
	// and uninstrumented runs are bit-identical.
	Metrics *obs.Registry
}

// Run executes fn on nprocs ranks over a fresh network built from cfg and
// returns the per-rank virtual finish times. nprocs must not exceed
// cfg.Nodes. Any rank returning a non-nil error, panicking, or deadlocking
// aborts the whole run.
func Run(cfg simnet.Config, nprocs int, fn func(*Proc) error) (Result, error) {
	net, err := simnet.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(net, nprocs, fn, Options{})
}

// RunOn is Run on an existing network (which is Reset first), with options.
// Callers running many programs back to back should prefer a Runner, which
// additionally reuses all scheduler state between runs.
func RunOn(net *simnet.Network, nprocs int, fn func(*Proc) error, opts Options) (Result, error) {
	return NewRunnerOn(net, opts).Run(nprocs, fn)
}

// runRank wraps a rank function, converting panics (including runtime
// aborts and API misuse) into an exit operation so the scheduler always
// learns the rank's fate.
func runRank(p *Proc, fn func(*Proc) error) {
	var exitErr error
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errAborted) {
				exitErr = errAborted
			} else if err, ok := r.(error); ok {
				exitErr = err
			} else {
				exitErr = fmt.Errorf("mpi: rank %d panicked: %v", p.rank, r)
			}
		}
		p.seq++
		p.sched.ops <- operation{kind: opExit, rank: p.rank, clock: p.clock, seq: p.seq, err: exitErr}
		// No reply for exit; the goroutine is done.
	}()
	exitErr = fn(p)
}
