// Package mpi provides a small message-passing runtime with MPI-like
// semantics executed on the simnet virtual cluster. It is the substrate on
// which the Open MPI collective algorithms of package coll run, and it
// plays the role Open MPI 3.1 plays in the paper.
//
// Each rank is a goroutine executing user code against a *Proc handle.
// Virtual time is managed by a single deterministic scheduler: a rank's
// local clock advances only through communication operations, and the
// scheduler always services the operation with the globally smallest
// virtual timestamp (ties broken by rank), so a program's virtual timing is
// bit-reproducible regardless of the Go scheduler, GOMAXPROCS, or wall
// time.
//
// Supported operations mirror the subset of MPI the broadcast algorithms
// need: blocking and non-blocking point-to-point sends and receives with
// (source, tag) matching and the MPI non-overtaking guarantee, Wait /
// WaitAll, a barrier, and virtual compute time (Sleep).
//
// Messages may carry real payload bytes — the collective tests verify that
// every algorithm actually delivers the root's buffer — or may be synthetic
// (nil payload with an explicit size) so that large performance sweeps do
// not pay for memcpy.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"mpicollperf/internal/simnet"
)

// ErrDeadlock is wrapped by the error Run returns when every live rank is
// blocked and no progress is possible.
var ErrDeadlock = errors.New("mpi: deadlock")

// errAborted is panicked inside Proc methods when the run has been aborted
// (by deadlock or by another rank's failure); the rank wrapper recovers it.
var errAborted = errors.New("mpi: run aborted")

// Result summarises a completed run.
type Result struct {
	// FinishTimes holds each rank's virtual time when its function returned.
	FinishTimes []float64
	// MakeSpan is the maximum finish time over all ranks.
	MakeSpan float64
	// Transfers is the number of network transfers simulated.
	Transfers int64
}

// Request is the handle of a non-blocking operation. It is owned by the
// rank that created it and must only be waited on by that rank.
type Request struct {
	owner    int
	isRecv   bool
	bound    bool    // completion time known
	at       float64 // virtual completion time, valid when bound
	bytes    int     // received message size, valid for receives when bound
	consumed bool    // has been waited on
}

// Bytes returns the size of the received message. It is only meaningful
// for receive requests after they have been waited on.
func (r *Request) Bytes() int { return r.bytes }

// Proc is a rank's handle to the runtime. All methods must be called from
// the goroutine running that rank's function. Methods panic on misuse
// (invalid peer, buffer truncation, waiting on a foreign request); Run
// recovers such panics and reports them as errors.
type Proc struct {
	rank   int
	size   int
	sched  *scheduler
	resume chan reply
	clock  float64
	seq    int64
}

// Rank returns this process's rank in 0..Size()-1.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the run.
func (p *Proc) Size() int { return p.size }

// Now returns the rank's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// Sleep advances the rank's virtual clock by d seconds of compute time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Errorf("mpi: rank %d: negative sleep %v", p.rank, d))
	}
	p.submit(operation{kind: opSleep, dur: d})
}

// Isend posts a non-blocking send of data to rank dst with the given tag
// and returns its request. If data is nil, size synthetic bytes are sent
// without payload; otherwise the payload is copied out immediately
// (buffered semantics) and size must equal len(data) or be negative
// (meaning len(data)).
func (p *Proc) Isend(dst, tag int, data []byte, size int) *Request {
	if data != nil {
		if size < 0 {
			size = len(data)
		} else if size != len(data) {
			panic(fmt.Errorf("mpi: rank %d: Isend size %d != len(data) %d", p.rank, size, len(data)))
		}
	} else if size < 0 {
		panic(fmt.Errorf("mpi: rank %d: Isend with nil data needs explicit size", p.rank))
	}
	p.checkPeer(dst, "Isend")
	var payload []byte
	if data != nil {
		payload = make([]byte, len(data))
		copy(payload, data)
	}
	req := &Request{owner: p.rank}
	p.submit(operation{kind: opIsend, peer: dst, tag: tag, data: payload, bytes: size, req: req})
	return req
}

// Irecv posts a non-blocking receive from rank src with the given tag. If
// buf is non-nil the incoming payload is copied into it and the message
// must fit; a nil buf accepts a message of any size without copying.
func (p *Proc) Irecv(src, tag int, buf []byte) *Request {
	p.checkPeer(src, "Irecv")
	req := &Request{owner: p.rank, isRecv: true}
	p.submit(operation{kind: opIrecv, peer: src, tag: tag, data: buf, req: req})
	return req
}

// Wait blocks until the request completes, advancing the rank's clock to
// the completion time.
func (p *Proc) Wait(r *Request) { p.WaitAll(r) }

// WaitAll blocks until every request completes, advancing the rank's clock
// to the latest completion time. Requests may be waited on only once.
func (p *Proc) WaitAll(rs ...*Request) {
	for _, r := range rs {
		if r == nil {
			panic(fmt.Errorf("mpi: rank %d: wait on nil request", p.rank))
		}
		if r.owner != p.rank {
			panic(fmt.Errorf("mpi: rank %d: wait on request owned by rank %d", p.rank, r.owner))
		}
		if r.consumed {
			panic(fmt.Errorf("mpi: rank %d: request waited on twice", p.rank))
		}
	}
	p.submit(operation{kind: opWait, reqs: rs})
	for _, r := range rs {
		r.consumed = true
	}
}

// Send is a blocking send: it returns when the send buffer is reusable
// (eager/buffered semantics, matching Open MPI's behaviour for the message
// sizes the collective algorithms use).
func (p *Proc) Send(dst, tag int, data []byte, size int) {
	p.Wait(p.Isend(dst, tag, data, size))
}

// Recv is a blocking receive; it returns the received message size.
func (p *Proc) Recv(src, tag int, buf []byte) int {
	r := p.Irecv(src, tag, buf)
	p.Wait(r)
	return r.bytes
}

// Barrier blocks until every rank has entered the barrier; all ranks leave
// at the same virtual time (the latest arrival plus the configured barrier
// cost). The measurement harness uses it to separate repetitions, exactly
// as the paper's γ(P) experiments do.
func (p *Proc) Barrier() {
	p.submit(operation{kind: opBarrier})
}

func (p *Proc) checkPeer(peer int, op string) {
	if peer < 0 || peer >= p.size {
		panic(fmt.Errorf("mpi: rank %d: %s peer %d outside 0..%d", p.rank, op, peer, p.size-1))
	}
	if peer == p.rank {
		panic(fmt.Errorf("mpi: rank %d: %s to self", p.rank, op))
	}
}

// submit hands an operation to the scheduler and blocks for the reply.
func (p *Proc) submit(op operation) {
	op.rank = p.rank
	op.clock = p.clock
	p.seq++
	op.seq = p.seq
	p.sched.ops <- op
	rep := <-p.resume
	if rep.abort {
		panic(errAborted)
	}
	p.clock = rep.clock
}

type opKind int

const (
	opIsend opKind = iota
	opIrecv
	opWait
	opBarrier
	opSleep
	opExit
)

func (k opKind) String() string {
	switch k {
	case opIsend:
		return "isend"
	case opIrecv:
		return "irecv"
	case opWait:
		return "wait"
	case opBarrier:
		return "barrier"
	case opSleep:
		return "sleep"
	case opExit:
		return "exit"
	}
	return "unknown"
}

type operation struct {
	kind  opKind
	rank  int
	clock float64
	seq   int64
	// isend / irecv
	peer  int
	tag   int
	data  []byte
	bytes int
	req   *Request
	// wait
	reqs []*Request
	// sleep
	dur float64
	// exit
	err error
}

type reply struct {
	clock float64
	abort bool
}

// Options tunes runtime behaviour.
type Options struct {
	// BarrierRounds overrides the number of latency rounds a barrier costs;
	// zero means ceil(log2 P) (dissemination-style).
	BarrierRounds int
}

// Run executes fn on nprocs ranks over a fresh network built from cfg and
// returns the per-rank virtual finish times. nprocs must not exceed
// cfg.Nodes. Any rank returning a non-nil error, panicking, or deadlocking
// aborts the whole run.
func Run(cfg simnet.Config, nprocs int, fn func(*Proc) error) (Result, error) {
	net, err := simnet.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunOn(net, nprocs, fn, Options{})
}

// RunOn is Run on an existing network (which is Reset first), with options.
func RunOn(net *simnet.Network, nprocs int, fn func(*Proc) error, opts Options) (Result, error) {
	if nprocs < 1 {
		return Result{}, fmt.Errorf("mpi: nprocs = %d, need >= 1", nprocs)
	}
	if nprocs > net.Nodes() {
		return Result{}, fmt.Errorf("mpi: nprocs %d exceeds cluster size %d", nprocs, net.Nodes())
	}
	net.Reset()
	s := newScheduler(net, nprocs, opts)
	for r := 0; r < nprocs; r++ {
		p := &Proc{rank: r, size: nprocs, sched: s, resume: s.resumes[r]}
		go runRank(p, fn)
	}
	return s.loop()
}

// runRank wraps a rank function, converting panics (including runtime
// aborts and API misuse) into an exit operation so the scheduler always
// learns the rank's fate.
func runRank(p *Proc, fn func(*Proc) error) {
	var exitErr error
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errAborted) {
				exitErr = errAborted
			} else if err, ok := r.(error); ok {
				exitErr = err
			} else {
				exitErr = fmt.Errorf("mpi: rank %d panicked: %v", p.rank, r)
			}
		}
		p.seq++
		p.sched.ops <- operation{kind: opExit, rank: p.rank, clock: p.clock, seq: p.seq, err: exitErr}
		// No reply for exit; the goroutine is done.
	}()
	exitErr = fn(p)
}

// scheduler is the deterministic coordinator. It owns all mutable state;
// rank goroutines only touch it through the ops channel.
type scheduler struct {
	net     *simnet.Network
	nprocs  int
	opts    Options
	ops     chan operation
	resumes []chan reply

	// running counts ranks currently executing user code (they will submit
	// exactly one operation each before the scheduler may proceed).
	running int
	live    int

	pending   []*operation // schedulable ops, one per rank at most
	blocked   []*operation // waits whose requests are not all bound
	inBarrier []*operation // ranks parked in the current barrier

	// match holds per-destination message matching state.
	match []*matchState

	finish  []float64
	failErr error
	aborted bool
}

// matchState is the matching engine for one destination rank.
type matchState struct {
	// posted receives and unexpected messages, keyed by (src, tag), each
	// FIFO — this provides the MPI non-overtaking guarantee.
	posted     map[matchKey][]*operation
	unexpected map[matchKey][]inFlight
}

type matchKey struct{ src, tag int }

type inFlight struct {
	data      []byte
	bytes     int
	delivered float64
}

func newScheduler(net *simnet.Network, nprocs int, opts Options) *scheduler {
	s := &scheduler{
		net:     net,
		nprocs:  nprocs,
		opts:    opts,
		ops:     make(chan operation, nprocs),
		resumes: make([]chan reply, nprocs),
		running: nprocs,
		live:    nprocs,
		match:   make([]*matchState, nprocs),
		finish:  make([]float64, nprocs),
	}
	for i := range s.resumes {
		s.resumes[i] = make(chan reply, 1)
		s.match[i] = &matchState{
			posted:     make(map[matchKey][]*operation),
			unexpected: make(map[matchKey][]inFlight),
		}
	}
	return s
}

// loop runs the simulation to completion.
func (s *scheduler) loop() (Result, error) {
	for s.live > 0 {
		// Lockstep: wait until every live, unparked rank has submitted its
		// next operation, so min-clock selection sees the full frontier.
		for s.running > 0 {
			op := <-s.ops
			s.running--
			s.admit(op)
		}
		if s.live == 0 {
			break
		}
		op := s.takeNext()
		if op == nil {
			s.abort(s.deadlockError())
			continue
		}
		s.process(op)
	}
	if s.failErr != nil {
		return Result{}, s.failErr
	}
	res := Result{FinishTimes: s.finish, Transfers: s.net.Transfers()}
	for _, t := range s.finish {
		res.MakeSpan = math.Max(res.MakeSpan, t)
	}
	return res, nil
}

// admit routes a freshly submitted operation to the right queue.
func (s *scheduler) admit(op operation) {
	o := &op
	switch op.kind {
	case opExit:
		s.live--
		s.finish[op.rank] = op.clock
		if op.err != nil && !errors.Is(op.err, errAborted) && s.failErr == nil {
			s.failErr = fmt.Errorf("rank %d: %w", op.rank, op.err)
		}
		if op.err != nil && !s.aborted {
			s.abortLater()
		}
	case opBarrier:
		if s.aborted {
			s.release(o.rank, reply{abort: true})
			return
		}
		if s.live < s.nprocs {
			s.abort(fmt.Errorf("mpi: rank %d entered a barrier after another rank already exited", o.rank))
			s.release(o.rank, reply{abort: true})
			return
		}
		s.inBarrier = append(s.inBarrier, o)
		s.maybeReleaseBarrier()
	case opWait:
		if s.aborted {
			s.release(o.rank, reply{abort: true})
			return
		}
		if allBound(o.reqs) {
			s.pending = append(s.pending, o)
		} else {
			s.blocked = append(s.blocked, o)
		}
	default:
		if s.aborted {
			s.release(o.rank, reply{abort: true})
			return
		}
		s.pending = append(s.pending, o)
	}
}

func allBound(rs []*Request) bool {
	for _, r := range rs {
		if !r.bound {
			return false
		}
	}
	return true
}

// scheduleKey returns the virtual time at which processing op takes effect,
// used for min-clock selection.
func scheduleKey(op *operation) float64 {
	if op.kind == opWait {
		t := op.clock
		for _, r := range op.reqs {
			if r.at > t {
				t = r.at
			}
		}
		return t
	}
	return op.clock
}

// takeNext removes and returns the pending operation with the smallest
// schedule key (ties: lowest rank, then submission order). It returns nil
// when nothing is schedulable.
func (s *scheduler) takeNext() *operation {
	best := -1
	for i, op := range s.pending {
		if best < 0 {
			best = i
			continue
		}
		b := s.pending[best]
		ki, kb := scheduleKey(op), scheduleKey(b)
		if ki < kb || (ki == kb && (op.rank < b.rank || (op.rank == b.rank && op.seq < b.seq))) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	op := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	return op
}

// process applies one operation's effects and resumes its rank.
func (s *scheduler) process(op *operation) {
	switch op.kind {
	case opSleep:
		s.release(op.rank, reply{clock: op.clock + op.dur})
	case opWait:
		s.release(op.rank, reply{clock: scheduleKey(op)})
	case opIsend:
		tr, err := s.net.Transmit(op.rank, op.peer, op.bytes, op.clock)
		if err != nil {
			s.abort(fmt.Errorf("rank %d: %w", op.rank, err))
			s.release(op.rank, reply{abort: true})
			return
		}
		op.req.bound = true
		op.req.at = tr.SendComplete
		s.deliver(op.rank, op.peer, op.tag, op.data, op.bytes, tr.Delivered)
		if s.aborted {
			s.release(op.rank, reply{abort: true})
			return
		}
		s.release(op.rank, reply{clock: op.clock + s.net.Config().SendOverhead})
	case opIrecv:
		ms := s.match[op.rank]
		key := matchKey{src: op.peer, tag: op.tag}
		if q := ms.unexpected[key]; len(q) > 0 {
			msg := q[0]
			ms.unexpected[key] = q[1:]
			if !s.bindRecv(op, msg) {
				s.release(op.rank, reply{abort: true})
				return
			}
		} else {
			ms.posted[key] = append(ms.posted[key], op)
		}
		s.release(op.rank, reply{clock: op.clock})
	default:
		s.abort(fmt.Errorf("mpi: internal: unexpected op %v", op.kind))
		s.release(op.rank, reply{abort: true})
	}
}

// deliver matches an arriving message against the destination's posted
// receives or stores it as unexpected.
func (s *scheduler) deliver(src, dst, tag int, data []byte, bytes int, delivered float64) {
	ms := s.match[dst]
	key := matchKey{src: src, tag: tag}
	if q := ms.posted[key]; len(q) > 0 {
		recvOp := q[0]
		ms.posted[key] = q[1:]
		if !s.bindRecv(recvOp, inFlight{data: data, bytes: bytes, delivered: delivered}) {
			return
		}
		s.wakeWaiters(recvOp.rank)
		return
	}
	ms.unexpected[key] = append(ms.unexpected[key], inFlight{data: data, bytes: bytes, delivered: delivered})
}

// bindRecv completes a posted receive with a matched message. It reports
// false if the run was aborted (truncation error).
func (s *scheduler) bindRecv(recvOp *operation, msg inFlight) bool {
	if recvOp.data != nil {
		if msg.bytes > len(recvOp.data) {
			s.failErr = fmt.Errorf("mpi: rank %d: message truncation: %d-byte message from %d (tag %d) into %d-byte buffer",
				recvOp.rank, msg.bytes, recvOp.peer, recvOp.tag, len(recvOp.data))
			s.abort(s.failErr)
			return false
		}
		if msg.data != nil {
			copy(recvOp.data, msg.data)
		}
	}
	recvOp.req.bound = true
	recvOp.req.at = math.Max(msg.delivered, recvOp.clock)
	recvOp.req.bytes = msg.bytes
	return true
}

// wakeWaiters promotes any blocked wait of the given rank whose requests
// are now all bound.
func (s *scheduler) wakeWaiters(rank int) {
	for i := 0; i < len(s.blocked); i++ {
		op := s.blocked[i]
		if op.rank == rank && allBound(op.reqs) {
			s.blocked = append(s.blocked[:i], s.blocked[i+1:]...)
			s.pending = append(s.pending, op)
			return // a rank has at most one in-flight operation
		}
	}
}

// maybeReleaseBarrier releases the barrier once every rank is in it.
func (s *scheduler) maybeReleaseBarrier() {
	if len(s.inBarrier) < s.nprocs {
		return
	}
	t := 0.0
	for _, op := range s.inBarrier {
		t = math.Max(t, op.clock)
	}
	t += s.barrierCost()
	for _, op := range s.inBarrier {
		s.release(op.rank, reply{clock: t})
	}
	s.inBarrier = s.inBarrier[:0]
}

// barrierCost models a dissemination barrier: ceil(log2 P) rounds of a
// zero-byte exchange.
func (s *scheduler) barrierCost() float64 {
	rounds := s.opts.BarrierRounds
	if rounds <= 0 {
		rounds = ceilLog2(s.nprocs)
	}
	cfg := s.net.Config()
	return float64(rounds) * (cfg.SendOverhead + cfg.Latency + cfg.RecvOverhead)
}

func ceilLog2(n int) int {
	r := 0
	for v := 1; v < n; v <<= 1 {
		r++
	}
	return r
}

// release resumes a rank's goroutine with the given reply.
func (s *scheduler) release(rank int, rep reply) {
	s.running++
	s.resumes[rank] <- rep
}

// abortLater arranges for the run to unwind: every parked rank is released
// with the abort flag, and all future operations are bounced.
func (s *scheduler) abortLater() {
	s.aborted = true
	for _, op := range s.pending {
		s.release(op.rank, reply{abort: true})
	}
	s.pending = s.pending[:0]
	for _, op := range s.blocked {
		s.release(op.rank, reply{abort: true})
	}
	s.blocked = s.blocked[:0]
	for _, op := range s.inBarrier {
		s.release(op.rank, reply{abort: true})
	}
	s.inBarrier = s.inBarrier[:0]
}

func (s *scheduler) abort(err error) {
	if s.failErr == nil {
		s.failErr = err
	}
	s.abortLater()
}

// deadlockError describes why no rank can make progress.
func (s *scheduler) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "%d rank(s) blocked", s.live)
	var states []string
	for _, op := range s.blocked {
		pend := 0
		for _, r := range op.reqs {
			if !r.bound {
				pend++
			}
		}
		states = append(states, fmt.Sprintf("rank %d waiting on %d unmatched request(s) at t=%.9f", op.rank, pend, op.clock))
	}
	for _, op := range s.inBarrier {
		states = append(states, fmt.Sprintf("rank %d in barrier at t=%.9f", op.rank, op.clock))
	}
	sort.Strings(states)
	for _, st := range states {
		b.WriteString("; ")
		b.WriteString(st)
	}
	return fmt.Errorf("%w: %s", ErrDeadlock, b.String())
}
