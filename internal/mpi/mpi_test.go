package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"mpicollperf/internal/simnet"
)

func testConfig(nodes int) simnet.Config {
	return simnet.Config{
		Nodes:        nodes,
		Latency:      20e-6,
		ByteTimeSend: 1e-9,
		ByteTimeRecv: 1e-9,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(testConfig(2), 0, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("nprocs 0 should fail")
	}
	if _, err := Run(testConfig(2), 5, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("nprocs > nodes should fail")
	}
	if _, err := Run(simnet.Config{Nodes: -1}, 1, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("bad network config should fail")
	}
}

func TestSingleRankTrivial(t *testing.T) {
	res, err := Run(testConfig(1), 1, func(p *Proc) error {
		if p.Rank() != 0 || p.Size() != 1 {
			t.Errorf("rank/size = %d/%d", p.Rank(), p.Size())
		}
		p.Sleep(5e-3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakeSpan != 5e-3 {
		t.Fatalf("MakeSpan = %v", res.MakeSpan)
	}
}

func TestPingPongPayload(t *testing.T) {
	msg := []byte("hello collective world")
	var got []byte
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Send(1, 7, msg, -1)
			buf := make([]byte, 64)
			n := p.Recv(1, 8, buf)
			got = append([]byte(nil), buf[:n]...)
		case 1:
			buf := make([]byte, 64)
			n := p.Recv(0, 7, buf)
			reply := bytes.ToUpper(buf[:n])
			p.Send(0, 8, reply, -1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO COLLECTIVE WORLD" {
		t.Fatalf("round trip payload = %q", got)
	}
}

func TestPointToPointTimeMatchesModel(t *testing.T) {
	cfg := testConfig(2)
	const m = 1 << 16
	var recvTime float64
	_, err := Run(cfg, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, m)
		} else {
			p.Recv(0, 0, nil)
			recvTime = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.PointToPointTime(m)
	if math.Abs(recvTime-want) > 1e-12 {
		t.Fatalf("receive completed at %v, Hockney model says %v", recvTime, want)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	// Two messages with the same (src, tag) must be received in send order.
	var first, second int
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 3, []byte{111}, -1)
			p.Send(1, 3, []byte{222}, -1)
		} else {
			a := make([]byte, 1)
			b := make([]byte, 1)
			p.Recv(0, 3, a)
			p.Recv(0, 3, b)
			first, second = int(a[0]), int(b[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 111 || second != 222 {
		t.Fatalf("messages overtook: got %d then %d", first, second)
	}
}

func TestTagSelectivity(t *testing.T) {
	// A receive on tag 2 must match the tag-2 message even when a tag-1
	// message arrived first.
	var tag2Payload byte
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte{10}, -1)
			p.Send(1, 2, []byte{20}, -1)
		} else {
			buf := make([]byte, 1)
			p.Recv(0, 2, buf)
			tag2Payload = buf[0]
			p.Recv(0, 1, buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tag2Payload != 20 {
		t.Fatalf("tag 2 receive got payload %d", tag2Payload)
	}
}

func TestUnexpectedMessageBuffered(t *testing.T) {
	// The send happens long before the receive is posted; the message must
	// wait and the receive completes at the moment of posting.
	var recvAt float64
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 100)
		} else {
			p.Sleep(1.0) // one virtual second, long after delivery
			p.Recv(0, 0, nil)
			recvAt = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvAt != 1.0 {
		t.Fatalf("late-posted receive completed at %v, want 1.0", recvAt)
	}
}

func TestIsendOverlapsComputation(t *testing.T) {
	// Non-blocking sends should let the sender proceed immediately.
	cfg := testConfig(2)
	var afterIsend float64
	_, err := Run(cfg, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			req := p.Isend(1, 0, nil, 1<<20)
			afterIsend = p.Now()
			p.Wait(req)
		} else {
			p.Recv(0, 0, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if afterIsend > cfg.SendOverhead+1e-15 {
		t.Fatalf("Isend blocked the sender until %v", afterIsend)
	}
}

func TestWaitAllAdvancesToLatest(t *testing.T) {
	cfg := testConfig(3)
	var done float64
	_, err := Run(cfg, 3, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			r1 := p.Irecv(1, 0, nil)
			r2 := p.Irecv(2, 0, nil)
			p.WaitAll(r1, r2)
			done = p.Now()
		case 1:
			p.Send(0, 0, nil, 1000)
		case 2:
			p.Sleep(0.25)
			p.Send(0, 0, nil, 1000)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done < 0.25 {
		t.Fatalf("WaitAll returned at %v before the slow sender", done)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	times := make([]float64, 4)
	_, err := Run(testConfig(4), 4, func(p *Proc) error {
		p.Sleep(float64(p.Rank()) * 0.1)
		p.Barrier()
		times[p.Rank()] = p.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if times[r] != times[0] {
			t.Fatalf("ranks left barrier at different times: %v", times)
		}
	}
	if times[0] <= 0.3 {
		t.Fatalf("barrier exit %v not after slowest arrival 0.3", times[0])
	}
}

func TestBarrierAfterExitFails(t *testing.T) {
	_, err := Run(testConfig(3), 3, func(p *Proc) error {
		if p.Rank() == 0 {
			return nil // exits immediately
		}
		p.Sleep(1)
		p.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "barrier") {
		t.Fatalf("err = %v, want barrier-after-exit error", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		// Both ranks receive; nobody sends.
		p.Recv(1-p.Rank(), 0, nil)
		return nil
	})
	if err == nil || !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "unmatched request") {
		t.Fatalf("deadlock report lacks detail: %v", err)
	}
}

func TestDeadlockMixedBarrier(t *testing.T) {
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Barrier()
		} else {
			p.Recv(0, 0, nil) // never satisfied; rank 0 is in barrier
		}
		return nil
	})
	if err == nil || !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "barrier") {
		t.Fatalf("deadlock report should mention barrier: %v", err)
	}
}

func TestUserErrorAbortsRun(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(testConfig(3), 3, func(p *Proc) error {
		if p.Rank() == 1 {
			return boom
		}
		p.Recv((p.Rank()+1)%3, 0, nil) // would deadlock without abort
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error should identify the failing rank: %v", err)
	}
}

func TestUserPanicBecomesError(t *testing.T) {
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		p.Recv(0, 0, nil)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncationError(t *testing.T) {
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]byte, 100), -1)
		} else {
			p.Recv(0, 0, make([]byte, 10))
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "truncation") {
		t.Fatalf("err = %v, want truncation", err)
	}
}

func TestAPIErrorsSurface(t *testing.T) {
	cases := []struct {
		name string
		fn   func(p *Proc) error
	}{
		{"send to self", func(p *Proc) error { p.Send(p.Rank(), 0, nil, 1); return nil }},
		{"peer out of range", func(p *Proc) error { p.Send(99, 0, nil, 1); return nil }},
		{"negative sleep", func(p *Proc) error { p.Sleep(-1); return nil }},
		{"nil data without size", func(p *Proc) error { p.Isend((p.Rank()+1)%2, 0, nil, -1); return nil }},
		{"size mismatch", func(p *Proc) error { p.Isend((p.Rank()+1)%2, 0, []byte{1, 2}, 5); return nil }},
		{"wait on nil", func(p *Proc) error { p.Wait(nil); return nil }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Run(testConfig(2), 2, c.fn); err == nil {
				t.Fatalf("%s: expected error", c.name)
			}
		})
	}
}

func TestDoubleWaitPanics(t *testing.T) {
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			r := p.Isend(1, 0, nil, 4)
			p.Wait(r)
			p.Wait(r)
		} else {
			p.Recv(0, 0, nil)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestForeignRequestPanics(t *testing.T) {
	// Note: rank goroutines must not synchronise with each other outside
	// the runtime (the lockstep scheduler requires every running rank to
	// submit its next operation independently), so we forge a request with
	// a foreign owner instead of smuggling a real one across goroutines.
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Wait(&Request{owner: 0, bound: true})
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "owned by") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := testConfig(8)
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 31415
	program := func(p *Proc) error {
		// An irregular all-to-one-ish exchange with mixed tags.
		if p.Rank() == 0 {
			var rs []*Request
			for src := 1; src < p.Size(); src++ {
				rs = append(rs, p.Irecv(src, src%3, nil))
			}
			p.WaitAll(rs...)
			for dst := 1; dst < p.Size(); dst++ {
				p.Send(dst, 9, nil, 2048)
			}
		} else {
			p.Sleep(float64(p.Rank()) * 1e-6)
			p.Send(0, p.Rank()%3, nil, 1024*p.Rank())
			p.Recv(0, 9, nil)
		}
		p.Barrier()
		return nil
	}
	r1, err := Run(cfg, 8, program)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r2, err := Run(cfg, 8, program)
		if err != nil {
			t.Fatal(err)
		}
		if r2.MakeSpan != r1.MakeSpan {
			t.Fatalf("run %d diverged: %v vs %v", i, r2.MakeSpan, r1.MakeSpan)
		}
		for r := range r1.FinishTimes {
			if r1.FinishTimes[r] != r2.FinishTimes[r] {
				t.Fatalf("rank %d finish diverged", r)
			}
		}
	}
}

func TestRunOnReusesNetwork(t *testing.T) {
	net, err := simnet.New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	prog := func(p *Proc) error {
		if p.Rank() == 0 {
			for d := 1; d < p.Size(); d++ {
				p.Send(d, 0, nil, 4096)
			}
		} else {
			p.Recv(0, 0, nil)
		}
		return nil
	}
	a, err := RunOn(net, 4, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOn(net, 4, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakeSpan != b.MakeSpan {
		t.Fatalf("network reuse changed timing: %v vs %v", a.MakeSpan, b.MakeSpan)
	}
}

func TestSendPortSerialisationVisibleToRanks(t *testing.T) {
	// Root sends to 5 children with non-blocking sends; the last child's
	// receive time must reflect serialisation on the root's send port —
	// the γ(P) effect.
	cfg := testConfig(6)
	const m = 65536
	recvAt := make([]float64, 6)
	_, err := Run(cfg, 6, func(p *Proc) error {
		if p.Rank() == 0 {
			var rs []*Request
			for d := 1; d < 6; d++ {
				rs = append(rs, p.Isend(d, 0, nil, m))
			}
			p.WaitAll(rs...)
		} else {
			p.Recv(0, 0, nil)
			recvAt[p.Rank()] = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p2p := cfg.PointToPointTime(m)
	if recvAt[5] < recvAt[1] {
		t.Fatal("later-targeted child received earlier")
	}
	ratio := recvAt[5] / p2p
	if ratio < 2 {
		t.Fatalf("no serialisation visible: last/first = %v", ratio)
	}
}

func TestManyRanksStress(t *testing.T) {
	// A 64-rank ring with payload verification.
	const n = 64
	cfg := testConfig(n)
	_, err := Run(cfg, n, func(p *Proc) error {
		next := (p.Rank() + 1) % n
		prev := (p.Rank() - 1 + n) % n
		token := []byte{byte(p.Rank())}
		buf := make([]byte, 1)
		if p.Rank() == 0 {
			p.Send(next, 0, token, -1)
			p.Recv(prev, 0, buf)
		} else {
			p.Recv(prev, 0, buf)
			p.Send(next, 0, token, -1)
		}
		if int(buf[0]) != prev {
			return fmt.Errorf("rank %d got token %d, want %d", p.Rank(), buf[0], prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestBytesReportsSize(t *testing.T) {
	_, err := Run(testConfig(2), 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 777)
		} else {
			r := p.Irecv(0, 0, nil)
			p.Wait(r)
			if r.Bytes() != 777 {
				return fmt.Errorf("Bytes = %d", r.Bytes())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransfersCounted(t *testing.T) {
	res, err := Run(testConfig(3), 3, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 1)
			p.Send(2, 0, nil, 1)
		} else {
			p.Recv(0, 0, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != 2 {
		t.Fatalf("Transfers = %d, want 2", res.Transfers)
	}
}
