package mpi

import "testing"

// TestRunnerNewReplayerMatchesFresh is the recycling differential: a
// Runner's recycled replayer, re-initialised across plans of different
// shapes (rank counts, lane counts — growing and shrinking its buffers),
// must replay bit-identically to a fresh package-level NewReplayer on an
// identical capture. This is the contract the sweep's warm path rests on.
func TestRunnerNewReplayerMatchesFresh(t *testing.T) {
	cfg := replayTestConfig(8)
	recycled, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ nprocs, lanes int }{
		{8, 4}, // first use: buffers allocated
		{5, 6}, // fewer ranks, more lanes: mixed grow/shrink
		{8, 3}, // back up: reuse of previously grown stripes
	}
	for _, tc := range cases {
		// Fresh reference: identical capture on an identical, fresh Runner.
		fr, fplan, fres := captureOneRep(t, cfg, tc.nprocs)
		want, err := NewReplayer(fr.Network(), fplan, fres.FinishTimes, tc.lanes)
		if err != nil {
			t.Fatal(err)
		}

		// Same capture on the long-lived Runner, replayer recycled.
		res, cap, err := recycled.RunCapture(tc.nprocs, func(p *Proc) error {
			root := p.Rank() == 0
			if root {
				p.Mark()
			}
			p.Barrier()
			if root {
				p.Mark()
			}
			replayPattern(p)
			p.Barrier()
			if root {
				p.Mark()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := recycled.CompilePlan(cap, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recycled.NewReplayer(plan, res.FinishTimes, tc.lanes)
		if err != nil {
			t.Fatal(err)
		}

		for batch, k := range []int{1, tc.lanes, tc.lanes - 1} {
			wm, wok := want.Replay(k)
			gm, gok := got.Replay(k)
			if wok != gok {
				t.Fatalf("nprocs=%d lanes=%d batch %d: ok %v vs %v", tc.nprocs, tc.lanes, batch, gok, wok)
			}
			if !wok {
				t.Fatalf("nprocs=%d lanes=%d batch %d: reference replay failed", tc.nprocs, tc.lanes, batch)
			}
			if len(wm) != len(gm) {
				t.Fatalf("nprocs=%d lanes=%d batch %d: %d marks vs %d", tc.nprocs, tc.lanes, batch, len(gm), len(wm))
			}
			for i := range wm {
				if gm[i] != wm[i] {
					t.Fatalf("nprocs=%d lanes=%d batch %d mark %d: %v != %v", tc.nprocs, tc.lanes, batch, i, gm[i], wm[i])
				}
			}
			if batch == 0 {
				// Echo clocks must be live (and identical) on first use even
				// though the previous iteration discarded them.
				we, ge := want.EchoClocks(), got.EchoClocks()
				if ge == nil {
					t.Fatalf("nprocs=%d lanes=%d: recycled replayer has no echo clocks", tc.nprocs, tc.lanes)
				}
				for i := range we {
					if ge[i] != we[i] {
						t.Fatalf("nprocs=%d lanes=%d echo clock %d: %v != %v", tc.nprocs, tc.lanes, i, ge[i], we[i])
					}
				}
				want.DiscardEchoClocks()
				got.DiscardEchoClocks()
			}
		}
		wc, gc := want.Clocks(), got.Clocks()
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("nprocs=%d lanes=%d clock %d: %v != %v", tc.nprocs, tc.lanes, i, gc[i], wc[i])
			}
		}
	}
}
