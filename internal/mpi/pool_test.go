package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpicollperf/internal/obs"
)

func testPoolFactory(nodes int, created *atomic.Int64) func() (*Runner, error) {
	cfg := replayTestConfig(nodes)
	return func() (*Runner, error) {
		if created != nil {
			created.Add(1)
		}
		return NewRunner(cfg, Options{})
	}
}

func TestRunnerPoolReusesAndBoundsRunners(t *testing.T) {
	var created atomic.Int64
	m := obs.NewRegistry()
	pool, err := NewRunnerPool(2, testPoolFactory(8, &created), m)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", pool.Cap())
	}
	// Sequential borrow/return cycles must keep handing back the same warm
	// Runner, not construct new ones.
	first, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(first)
	for i := 0; i < 5; i++ {
		r, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if r != first {
			t.Fatalf("cycle %d: got a different Runner from a warm pool", i)
		}
		pool.Put(r)
	}
	if created.Load() != 1 {
		t.Fatalf("factory ran %d times, want 1", created.Load())
	}
	if got := m.Counter("mpi_runner_pool_created_total").Value(); got != 1 {
		t.Fatalf("created_total = %d, want 1", got)
	}
	if got := m.Gauge("mpi_runner_pool_in_use").Value(); got != 0 {
		t.Fatalf("in_use = %v after all Puts, want 0", got)
	}
}

func TestRunnerPoolResultsBitIdenticalToFreshRunner(t *testing.T) {
	cfg := replayTestConfig(8)
	prog := func(p *Proc) error {
		replayPattern(p)
		return nil
	}
	fresh, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(8, prog)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewRunnerPool(1, testPoolFactory(8, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the pooled Runner with a different program, return it, borrow
	// it back: the reused Runner must reproduce the fresh Runner's timings
	// exactly.
	r, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(5, prog); err != nil {
		t.Fatal(err)
	}
	pool.Put(r)
	r, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run(8, prog)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(r)
	if got.MakeSpan != want.MakeSpan || got.Transfers != want.Transfers {
		t.Fatalf("pooled run diverged: %v/%d vs %v/%d",
			got.MakeSpan, got.Transfers, want.MakeSpan, want.Transfers)
	}
	for rk := range want.FinishTimes {
		if got.FinishTimes[rk] != want.FinishTimes[rk] {
			t.Fatalf("rank %d finish diverged on pooled Runner", rk)
		}
	}
}

func TestRunnerPoolBlocksAtCapacity(t *testing.T) {
	pool, err := NewRunnerPool(1, testPoolFactory(4, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Runner)
	go func() {
		r2, err := pool.Get()
		if err != nil {
			panic(err)
		}
		got <- r2
	}()
	select {
	case <-got:
		t.Fatal("Get returned while the pool's only Runner was borrowed")
	case <-time.After(20 * time.Millisecond):
	}
	pool.Put(r)
	select {
	case r2 := <-got:
		if r2 != r {
			t.Fatal("blocked Get received a different Runner than was Put")
		}
	case <-time.After(time.Second):
		t.Fatal("Get still blocked after Put")
	}
}

func TestRunnerPoolFactoryErrorKeepsSlot(t *testing.T) {
	fail := true
	cfg := replayTestConfig(4)
	pool, err := NewRunnerPool(1, func() (*Runner, error) {
		if fail {
			return nil, fmt.Errorf("transient")
		}
		return NewRunner(cfg, Options{})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(); err == nil {
		t.Fatal("Get succeeded with a failing factory")
	}
	// The create token must be back: once the factory recovers, Get works
	// without blocking.
	fail = false
	r, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("Get returned a nil Runner")
	}
	pool.Put(r)
}

func TestRunnerPoolConcurrentBorrowers(t *testing.T) {
	var created atomic.Int64
	pool, err := NewRunnerPool(4, testPoolFactory(8, &created), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog := func(p *Proc) error {
		replayPattern(p)
		return nil
	}
	want, err := Run(replayTestConfig(8), 8, prog)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				r, err := pool.Get()
				if err != nil {
					errs <- err
					return
				}
				res, err := r.Run(8, prog)
				pool.Put(r)
				if err != nil {
					errs <- err
					return
				}
				if res.MakeSpan != want.MakeSpan {
					errs <- fmt.Errorf("pooled makespan %v != %v", res.MakeSpan, want.MakeSpan)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if created.Load() > 4 {
		t.Fatalf("factory ran %d times, capacity is 4", created.Load())
	}
}
