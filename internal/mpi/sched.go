package mpi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"mpicollperf/internal/simnet"
)

// scheduler is the deterministic coordinator. It owns all mutable state;
// rank goroutines only touch it through the ops channel.
//
// The scheduler is designed for reuse: a Runner resets the same scheduler
// between runs, so in steady state the per-operation path — admit, the
// pending heap, message matching, release — performs no heap allocations.
// Operations are recycled through a freelist, the pending queue is an
// indexed binary min-heap with the schedule key cached on the operation,
// and the matching engine reuses its per-(src, tag) FIFO queues.
type scheduler struct {
	net    *simnet.Network
	nprocs int
	opts   Options
	ops    chan operation
	// resumes are per-rank reply channels; they persist across runs of a
	// reused scheduler.
	resumes []chan reply

	// running counts ranks currently executing user code (they will submit
	// exactly one operation each before the scheduler may proceed).
	running int
	live    int

	// pending is a binary min-heap of schedulable operations ordered by
	// (key, rank, seq); a rank has at most one operation in flight, so the
	// heap never exceeds nprocs entries.
	pending []*operation
	// blocked[r] is rank r's wait whose requests are not yet all bound, or
	// nil. A rank has at most one in-flight operation, so a fixed per-rank
	// slot replaces the former scan list.
	blocked   []*operation
	inBarrier []*operation // ranks parked in the current barrier

	// match holds per-destination message matching state.
	match []*matchState

	// opFree recycles operation objects across the whole run (and across
	// runs when the scheduler is reused by a Runner).
	opFree []*operation

	// rec, when non-nil, records the structural execution trace of the run
	// (see plan.go). Recording observes processing order and matching
	// outcomes only; it never changes timing.
	rec *capture

	finish  []float64
	failErr error
	aborted bool
	// nops counts processed operations for Result.Ops; it feeds metrics
	// only and never influences scheduling.
	nops int64
}

// matchState is the matching engine for one destination rank. The queues
// are never removed from the maps once created, so a reused scheduler
// reaches a steady state where matching allocates nothing.
type matchState struct {
	// posted receives and unexpected messages, keyed by (src, tag), each
	// FIFO — this provides the MPI non-overtaking guarantee.
	posted     map[matchKey]*opQueue
	unexpected map[matchKey]*msgQueue
}

type matchKey struct{ src, tag int }

type inFlight struct {
	data      []byte
	bytes     int
	delivered float64
}

// opQueue is a reusable FIFO of posted receives for one (src, tag): pops
// advance a head index, and the backing array is rewound as soon as the
// queue drains, so steady-state traffic never reallocates it.
type opQueue struct {
	head  int
	items []*operation
}

func (q *opQueue) empty() bool { return q.head == len(q.items) }

func (q *opQueue) push(o *operation) { q.items = append(q.items, o) }

func (q *opQueue) pop() *operation {
	o := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.head, q.items = 0, q.items[:0]
	}
	return o
}

// msgQueue is the unexpected-message counterpart of opQueue.
type msgQueue struct {
	head  int
	items []inFlight
}

func (q *msgQueue) empty() bool { return q.head == len(q.items) }

func (q *msgQueue) push(m inFlight) { q.items = append(q.items, m) }

func (q *msgQueue) pop() inFlight {
	m := q.items[q.head]
	q.items[q.head] = inFlight{}
	q.head++
	if q.head == len(q.items) {
		q.head, q.items = 0, q.items[:0]
	}
	return m
}

func newMatchState() *matchState {
	return &matchState{
		posted:     make(map[matchKey]*opQueue),
		unexpected: make(map[matchKey]*msgQueue),
	}
}

// reset drains both queue families in place, recycling leftover posted
// receives (ranks may legally exit with unwaited receives outstanding)
// into the scheduler's operation freelist.
func (ms *matchState) reset(s *scheduler) {
	for _, q := range ms.posted {
		for i := q.head; i < len(q.items); i++ {
			s.putOp(q.items[i])
			q.items[i] = nil
		}
		q.head, q.items = 0, q.items[:0]
	}
	for _, q := range ms.unexpected {
		for i := q.head; i < len(q.items); i++ {
			q.items[i] = inFlight{}
		}
		q.head, q.items = 0, q.items[:0]
	}
}

// reset prepares the scheduler for a fresh run of nprocs ranks. All
// per-rank structures, queue capacities, and the operation freelist are
// retained from previous runs, which is what makes a warm Runner's
// steady-state operation path allocation-free.
func (s *scheduler) reset(net *simnet.Network, nprocs int, opts Options) {
	s.net = net
	s.nprocs = nprocs
	s.opts = opts
	s.running = nprocs
	s.live = nprocs
	s.failErr = nil
	s.aborted = false
	s.nops = 0

	if s.ops == nil || cap(s.ops) < nprocs {
		s.ops = make(chan operation, nprocs)
	}
	for len(s.resumes) < nprocs {
		s.resumes = append(s.resumes, make(chan reply, 1))
	}
	for len(s.match) < nprocs {
		s.match = append(s.match, newMatchState())
	}
	for _, ms := range s.match[:nprocs] {
		ms.reset(s)
	}
	if cap(s.pending) < nprocs {
		s.pending = make([]*operation, 0, nprocs)
	} else {
		for i := range s.pending {
			s.pending[i] = nil
		}
		s.pending = s.pending[:0]
	}
	if cap(s.blocked) < nprocs {
		s.blocked = make([]*operation, nprocs)
	} else {
		s.blocked = s.blocked[:nprocs]
		for i := range s.blocked {
			s.blocked[i] = nil
		}
	}
	if cap(s.inBarrier) < nprocs {
		s.inBarrier = make([]*operation, 0, nprocs)
	} else {
		s.inBarrier = s.inBarrier[:0]
	}
	if cap(s.finish) < nprocs {
		s.finish = make([]float64, nprocs)
	} else {
		s.finish = s.finish[:nprocs]
		for i := range s.finish {
			s.finish[i] = 0
		}
	}
}

// getOp copies a submitted operation into a pooled object.
func (s *scheduler) getOp(op operation) *operation {
	if n := len(s.opFree); n > 0 {
		o := s.opFree[n-1]
		s.opFree = s.opFree[:n-1]
		*o = op
		return o
	}
	o := new(operation)
	*o = op
	return o
}

// putOp recycles a processed operation, dropping payload and request
// references so the freelist never retains user memory.
func (s *scheduler) putOp(o *operation) {
	o.data = nil
	o.req = nil
	o.reqs = nil
	o.err = nil
	s.opFree = append(s.opFree, o)
}

// loop runs the simulation to completion.
func (s *scheduler) loop() (Result, error) {
	for s.live > 0 {
		// Lockstep: wait until every live, unparked rank has submitted its
		// next operation, so min-clock selection sees the full frontier.
		for s.running > 0 {
			op := <-s.ops
			s.running--
			s.admit(op)
		}
		if s.live == 0 {
			break
		}
		op := s.takeNext()
		if op == nil {
			s.abort(s.deadlockError())
			continue
		}
		s.nops++
		s.process(op)
	}
	if s.failErr != nil {
		return Result{}, s.failErr
	}
	// The finish slice is reused by the next run of a shared scheduler, so
	// the caller gets its own copy.
	ft := make([]float64, s.nprocs)
	copy(ft, s.finish[:s.nprocs])
	res := Result{FinishTimes: ft, Transfers: s.net.Transfers(), Ops: s.nops}
	for _, t := range ft {
		res.MakeSpan = math.Max(res.MakeSpan, t)
	}
	return res, nil
}

// admit routes a freshly submitted operation to the right queue.
func (s *scheduler) admit(op operation) {
	switch op.kind {
	case opExit:
		s.live--
		s.finish[op.rank] = op.clock
		if op.err != nil && !errors.Is(op.err, errAborted) && s.failErr == nil {
			s.failErr = fmt.Errorf("rank %d: %w", op.rank, op.err)
		}
		if op.err != nil && !s.aborted {
			s.abortLater()
		}
		return
	}
	if s.aborted {
		s.release(op.rank, reply{abort: true})
		return
	}
	switch op.kind {
	case opBarrier:
		if s.live < s.nprocs {
			s.abort(fmt.Errorf("mpi: rank %d entered a barrier after another rank already exited", op.rank))
			s.release(op.rank, reply{abort: true})
			return
		}
		s.inBarrier = append(s.inBarrier, s.getOp(op))
		s.maybeReleaseBarrier()
	case opWait:
		o := s.getOp(op)
		if allBound(o.reqs) {
			s.pushPending(o)
		} else {
			s.blocked[o.rank] = o
		}
	default:
		s.pushPending(s.getOp(op))
	}
}

func allBound(rs []*Request) bool {
	for _, r := range rs {
		if !r.bound {
			return false
		}
	}
	return true
}

// scheduleKey returns the virtual time at which processing op takes effect,
// used for min-clock selection. For a wait it is only meaningful once all
// of the wait's requests are bound; pushPending caches it on the operation
// at that moment, so it is computed once per enqueue, not once per
// comparison.
func scheduleKey(op *operation) float64 {
	if op.kind == opWait {
		t := op.clock
		for _, r := range op.reqs {
			if r.at > t {
				t = r.at
			}
		}
		return t
	}
	return op.clock
}

// opLess is the strict scheduling order: smallest key first, ties broken
// by lowest rank, then submission order. (rank, seq) is unique per
// operation, so this is a total order and the heap minimum is exactly the
// operation the former linear scan selected — virtual timings are
// bit-identical to the O(n) implementation.
func opLess(a, b *operation) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}

// pushPending inserts op into the pending min-heap, caching its schedule
// key (fixed from this moment: a wait enters only once all its requests
// are bound, and bound completion times never change).
func (s *scheduler) pushPending(o *operation) {
	o.key = scheduleKey(o)
	h := append(s.pending, o)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !opLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.pending = h
}

// takeNext removes and returns the pending operation with the smallest
// schedule key (ties: lowest rank, then submission order). It returns nil
// when nothing is schedulable.
func (s *scheduler) takeNext() *operation {
	h := s.pending
	n := len(h)
	if n == 0 {
		return nil
	}
	top := h[0]
	last := h[n-1]
	h[n-1] = nil
	h = h[:n-1]
	if len(h) > 0 {
		h[0] = last
		i := 0
		for {
			l, r, m := 2*i+1, 2*i+2, i
			if l < len(h) && opLess(h[l], h[m]) {
				m = l
			}
			if r < len(h) && opLess(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	s.pending = h
	return top
}

// process applies one operation's effects and resumes its rank. Every
// non-queued operation is recycled here; posted receives are recycled by
// deliver when a message matches them.
func (s *scheduler) process(op *operation) {
	switch op.kind {
	case opSleep:
		if s.rec != nil {
			s.rec.sleep(op)
		}
		s.release(op.rank, reply{clock: op.clock + op.dur})
		s.putOp(op)
	case opMark:
		if s.rec != nil {
			s.rec.mark(op)
		}
		s.release(op.rank, reply{clock: op.clock})
		s.putOp(op)
	case opWait:
		if s.rec != nil {
			s.rec.wait(op)
		}
		s.release(op.rank, reply{clock: op.key})
		s.putOp(op)
	case opIsend:
		tr, err := s.net.Transmit(op.rank, op.peer, op.bytes, op.clock)
		if err != nil {
			s.abort(fmt.Errorf("rank %d: %w", op.rank, err))
			s.release(op.rank, reply{abort: true})
			s.putOp(op)
			return
		}
		op.req.bound = true
		op.req.at = tr.SendComplete
		if s.rec != nil {
			s.rec.send(op)
		}
		s.deliver(op.rank, op.peer, op.tag, op.data, op.bytes, tr.Delivered)
		if s.aborted {
			s.release(op.rank, reply{abort: true})
			s.putOp(op)
			return
		}
		s.release(op.rank, reply{clock: op.clock + s.net.SendOverheadOf(op.rank)})
		s.putOp(op)
	case opIrecv:
		ms := s.match[op.rank]
		key := matchKey{src: op.peer, tag: op.tag}
		if q := ms.unexpected[key]; q != nil && !q.empty() {
			msg := q.pop()
			if s.rec != nil {
				s.rec.recvPending(op, key)
			}
			if !s.bindRecv(op, msg) {
				s.release(op.rank, reply{abort: true})
				s.putOp(op)
				return
			}
			s.release(op.rank, reply{clock: op.clock})
			s.putOp(op)
		} else {
			if s.rec != nil {
				s.rec.recvPosted(op)
			}
			q := ms.posted[key]
			if q == nil {
				q = &opQueue{}
				ms.posted[key] = q
			}
			q.push(op)
			s.release(op.rank, reply{clock: op.clock})
		}
	default:
		s.abort(fmt.Errorf("mpi: internal: unexpected op %v", op.kind))
		s.release(op.rank, reply{abort: true})
		s.putOp(op)
	}
}

// deliver matches an arriving message against the destination's posted
// receives or stores it as unexpected.
func (s *scheduler) deliver(src, dst, tag int, data []byte, bytes int, delivered float64) {
	ms := s.match[dst]
	key := matchKey{src: src, tag: tag}
	if q := ms.posted[key]; q != nil && !q.empty() {
		recvOp := q.pop()
		if s.rec != nil {
			s.rec.deliverPosted(recvOp)
		}
		ok := s.bindRecv(recvOp, inFlight{data: data, bytes: bytes, delivered: delivered})
		if ok {
			s.wakeWaiters(recvOp.rank)
		}
		s.putOp(recvOp)
		return
	}
	if s.rec != nil {
		s.rec.deliverUnexpected(dst, key)
	}
	q := ms.unexpected[key]
	if q == nil {
		q = &msgQueue{}
		ms.unexpected[key] = q
	}
	q.push(inFlight{data: data, bytes: bytes, delivered: delivered})
}

// bindRecv completes a posted receive with a matched message. It reports
// false if the run was aborted (truncation error).
func (s *scheduler) bindRecv(recvOp *operation, msg inFlight) bool {
	if recvOp.data != nil {
		if msg.bytes > len(recvOp.data) {
			s.failErr = fmt.Errorf("mpi: rank %d: message truncation: %d-byte message from %d (tag %d) into %d-byte buffer",
				recvOp.rank, msg.bytes, recvOp.peer, recvOp.tag, len(recvOp.data))
			s.abort(s.failErr)
			return false
		}
		if msg.data != nil {
			copy(recvOp.data, msg.data)
		}
	}
	recvOp.req.bound = true
	recvOp.req.at = math.Max(msg.delivered, recvOp.clock)
	recvOp.req.bytes = msg.bytes
	return true
}

// wakeWaiters promotes the given rank's blocked wait once its requests are
// all bound. A rank has at most one in-flight operation, so this is a
// single indexed lookup.
func (s *scheduler) wakeWaiters(rank int) {
	op := s.blocked[rank]
	if op != nil && allBound(op.reqs) {
		s.blocked[rank] = nil
		s.pushPending(op)
	}
}

// maybeReleaseBarrier releases the barrier once every rank is in it.
func (s *scheduler) maybeReleaseBarrier() {
	if len(s.inBarrier) < s.nprocs {
		return
	}
	t := 0.0
	for _, op := range s.inBarrier {
		t = math.Max(t, op.clock)
	}
	t += s.barrierCost()
	if s.rec != nil {
		s.rec.barrier()
	}
	for i, op := range s.inBarrier {
		s.release(op.rank, reply{clock: t})
		s.putOp(op)
		s.inBarrier[i] = nil
	}
	s.inBarrier = s.inBarrier[:0]
}

// barrierCost models a dissemination barrier: ceil(log2 P) rounds of a
// zero-byte exchange.
// barrierCost is an analytical constant, deliberately computed from the
// unperturbed Config: barriers are global separators between repetitions,
// and keeping their cost perturbation-free keeps scheduler and replay
// trivially consistent (the plan stores the same constant).
func (s *scheduler) barrierCost() float64 {
	return barrierCostFor(s.opts, s.net.Config(), s.nprocs)
}

// barrierCostFor is the barrier-cost formula shared by the scheduler and
// Runner.Rebind: a rebound plan must carry bit-for-bit the barrier cost a
// capturing run on the same network and options would have recorded.
func barrierCostFor(opts Options, cfg simnet.Config, nprocs int) float64 {
	rounds := opts.BarrierRounds
	if rounds <= 0 {
		rounds = ceilLog2(nprocs)
	}
	return float64(rounds) * (cfg.SendOverhead + cfg.Latency + cfg.RecvOverhead)
}

func ceilLog2(n int) int {
	r := 0
	for v := 1; v < n; v <<= 1 {
		r++
	}
	return r
}

// release resumes a rank's goroutine with the given reply.
func (s *scheduler) release(rank int, rep reply) {
	s.running++
	s.resumes[rank] <- rep
}

// abortLater arranges for the run to unwind: every parked rank is released
// with the abort flag, and all future operations are bounced.
func (s *scheduler) abortLater() {
	s.aborted = true
	for i, op := range s.pending {
		s.release(op.rank, reply{abort: true})
		s.putOp(op)
		s.pending[i] = nil
	}
	s.pending = s.pending[:0]
	for i, op := range s.blocked[:s.nprocs] {
		if op != nil {
			s.release(op.rank, reply{abort: true})
			s.putOp(op)
			s.blocked[i] = nil
		}
	}
	for i, op := range s.inBarrier {
		s.release(op.rank, reply{abort: true})
		s.putOp(op)
		s.inBarrier[i] = nil
	}
	s.inBarrier = s.inBarrier[:0]
}

func (s *scheduler) abort(err error) {
	if s.failErr == nil {
		s.failErr = err
	}
	s.abortLater()
}

// deadlockError describes why no rank can make progress.
func (s *scheduler) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "%d rank(s) blocked", s.live)
	var states []string
	for _, op := range s.blocked[:s.nprocs] {
		if op == nil {
			continue
		}
		pend := 0
		for _, r := range op.reqs {
			if !r.bound {
				pend++
			}
		}
		states = append(states, fmt.Sprintf("rank %d waiting on %d unmatched request(s) at t=%.9f", op.rank, pend, op.clock))
	}
	for _, op := range s.inBarrier {
		states = append(states, fmt.Sprintf("rank %d in barrier at t=%.9f", op.rank, op.clock))
	}
	sort.Strings(states)
	for _, st := range states {
		b.WriteString("; ")
		b.WriteString(st)
	}
	return fmt.Errorf("%w: %s", ErrDeadlock, b.String())
}
