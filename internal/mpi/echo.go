package mpi

import (
	"fmt"
)

// Echo runs: the replay engine's correctness gate. A Replayer re-times a
// Plan without ever running user code, so it must know the program's
// structure is the same in every repetition. Rather than paying for a
// second scheduler-driven repetition to compare traces, an echo run
// re-executes the user function with the scheduler switched off: each
// rank's goroutine streams through its own slice of the plan, comparing
// every operation it submits — kind, peer, tag, byte count, sleep
// duration, wait membership — against the recorded event, and taking its
// clock from the release times a validating replay pass produced
// (Replayer.EchoClocks). There is no cross-rank synchronisation: all
// times are precomputed, so ranks echo fully in parallel.
//
// Soundness: timing-dependent control flow can only change a program's
// structure by changing some rank's own operation stream at the point of
// divergence. Replayed clocks are bit-identical to the scheduler's up to
// the causal frontier of any divergence, so the echoed stream sees
// exactly the clocks the real program would have and diverges at the same
// operation — which the comparison flags. Any mismatch (or panic) aborts
// the echo and the caller falls back to the scheduler engine.

// echoRank is one rank's cursor over the plan during an echo run.
type echoRank struct {
	plan *Plan
	clk  []float64 // release clock per plan event (Replayer.EchoClocks)
	next int32     // next unconsumed event in the rank's slice
	end  int32
}

// echoStep validates one submitted operation against the plan and returns
// the rank's new clock. It panics (recovered by EchoRun) on divergence.
func (p *Proc) echoStep(op *operation) float64 {
	e := p.echo
	if e.next >= e.end {
		panic(fmt.Errorf("mpi: echo: rank %d: %v past the end of its plan", p.rank, op.kind))
	}
	idx := e.next
	e.next++
	pe := &e.plan.events[idx]
	pb := &e.plan.binds[idx]
	want := evKind(0)
	switch op.kind {
	case opSleep:
		want = evSleep
		if pe.kind == evSleep && pb.dur != op.dur {
			p.echoFail(op, idx, "duration changed")
		}
	case opMark:
		want = evMark
	case opBarrier:
		want = evBarrier
	case opIsend:
		want = evSend
		if pe.kind == evSend && (pe.peer != op.peer || pe.tag != op.tag || pb.bytes != op.bytes) {
			p.echoFail(op, idx, "destination, tag, or size changed")
		}
		op.req.slot = pe.slot
	case opIrecv:
		want = evRecv
		if pe.kind == evRecv && (pe.peer != op.peer || pe.tag != op.tag) {
			p.echoFail(op, idx, "source or tag changed")
		}
		op.req.slot = pe.slot
		op.req.bytes = pb.bytes
	case opWait:
		want = evWait
		if pe.kind == evWait {
			if int(pe.wLen) != len(op.reqs) {
				p.echoFail(op, idx, "request count changed")
			}
			for i, r := range op.reqs {
				if r.slot != e.plan.waitSlots[pe.wOff+int32(i)] {
					p.echoFail(op, idx, "request set changed")
				}
			}
		}
	default:
		p.echoFail(op, idx, "operation kind not replayable")
	}
	if pe.kind != want {
		p.echoFail(op, idx, fmt.Sprintf("plan has %v here", pe.kind))
	}
	return e.clk[idx]
}

func (p *Proc) echoFail(op *operation, idx int32, why string) {
	panic(fmt.Errorf("mpi: echo: rank %d: %v at event %d diverges from the plan: %s", p.rank, op.kind, idx, why))
}

func (k evKind) String() string {
	switch k {
	case evSleep:
		return "sleep"
	case evSend:
		return "send"
	case evRecv:
		return "recv"
	case evWait:
		return "wait"
	case evBarrier:
		return "barrier"
	case evMark:
		return "mark"
	}
	return "unknown"
}

// EchoRun re-executes fn against plan: every rank runs fn with the
// scheduler switched off, validating its operation stream against the
// plan's events and taking clocks from clk — the release times of a
// replay pass over the same plan (Replayer.EchoClocks), with start
// holding the per-rank clocks that pass began from. A nil error means
// every rank's stream matched its slice of the plan exactly; any
// divergence, rank error, or panic is reported as an error, telling the
// caller the plan is not structurally stable and replayed timings cannot
// be trusted.
//
// Plans record structure, not data, so an echo run delivers no payload
// bytes; callers must keep payload-carrying programs (Capture.HasPayload)
// on the scheduler engine.
func (r *Runner) EchoRun(plan *Plan, clk []float64, start []float64, fn func(*Proc) error) error {
	n := plan.nprocs
	if len(clk) != len(plan.events) {
		return fmt.Errorf("mpi: echo: %d clocks for a %d-event plan", len(clk), len(plan.events))
	}
	if len(start) != n {
		return fmt.Errorf("mpi: echo: %d start clocks for a %d-rank plan", len(start), n)
	}
	for len(r.procs) < n {
		r.procs = append(r.procs, &Proc{rank: len(r.procs)})
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		p := r.procs[i]
		p.size = n
		p.clock = start[i]
		p.echo = &echoRank{plan: plan, clk: clk, next: plan.rankOff[i], end: plan.rankOff[i+1]}
		go runEchoRank(p, fn, errs)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	for i := 0; i < n; i++ {
		r.procs[i].echo = nil
	}
	return first
}

// runEchoRank wraps one rank's echo, converting panics (divergence, API
// misuse) into errors and checking the rank consumed its whole slice.
func runEchoRank(p *Proc, fn func(*Proc) error, errs chan<- error) {
	var err error
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("mpi: echo: rank %d panicked: %v", p.rank, rec)
			}
		}
		if err == nil && p.echo.next != p.echo.end {
			err = fmt.Errorf("mpi: echo: rank %d stopped %d events short of its plan", p.rank, p.echo.end-p.echo.next)
		}
		errs <- err
	}()
	err = fn(p)
}
