package mpi

import (
	"fmt"
	"sync/atomic"

	"mpicollperf/internal/obs"
)

// RunnerPool hands out warm Runners to concurrent borrowers. A Runner
// amortizes scheduler, capture, plan, and replay buffers across the runs
// it executes — but only for its owner, because a Runner is
// single-threaded. A parallel measurement sweep therefore wants one warm
// Runner per live worker, reused across sweeps, instead of constructing a
// Runner (and its network) per worker per call: the pool provides exactly
// that, bounded at a fixed capacity.
//
// Runners are constructed lazily by the pool's factory, at most capacity
// of them over the pool's lifetime; Get blocks while all are borrowed.
// Borrowed Runners carry whatever warm buffers their previous borrower
// grew, which never affects results: every run Resets the network and
// scheduler state first, so runs on a pooled Runner are bit-identical to
// runs on a fresh one.
//
// A RunnerPool is safe for concurrent use. It needs no Close: an idle
// pool holds plain memory that the garbage collector reclaims with it.
type RunnerPool struct {
	// sem holds one token per unborrowed slot; Get blocks on it, Put
	// releases it. The free list is LIFO so the most recently used — and
	// therefore warmest — Runner is handed out first, and a lone borrower
	// keeps hitting the same Runner instead of round-robining the pool
	// into existence. It is a lock-free Treiber stack: workers returning
	// Runners between grid points pop and push with a single CAS instead
	// of serialising on a pool mutex. Each Put pushes a fresh node, never
	// a recycled one, so a pop CAS can't be fooled by a head that was
	// popped and re-pushed in between (the classic ABA hazard).
	sem     chan struct{}
	free    atomic.Pointer[freeNode]
	factory func() (*Runner, error)
	// tmpl is the pool's plan-template store: borrowers of the same pool
	// measure on the same platform, so structure-class templates captured
	// by one borrower are rebindable by every other — and, because the
	// pool outlives individual sweeps, by later sweeps too.
	tmpl *TemplateStore

	created *obs.Counter
	inUse   *obs.Gauge
}

// freeNode is one Treiber-stack cell of the pool's free list.
type freeNode struct {
	r    *Runner
	next *freeNode
}

// NewRunnerPool builds a pool of at most capacity Runners, constructed on
// demand by factory. The factory must return a fresh, independent Runner
// on every call (distinct networks — pooled Runners run concurrently).
// metrics, which may be nil, receives mpi_runner_pool_created_total and
// the mpi_runner_pool_in_use level gauge.
func NewRunnerPool(capacity int, factory func() (*Runner, error), metrics *obs.Registry) (*RunnerPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("mpi: runner pool capacity %d, need >= 1", capacity)
	}
	if factory == nil {
		return nil, fmt.Errorf("mpi: runner pool needs a factory")
	}
	p := &RunnerPool{
		sem:     make(chan struct{}, capacity),
		factory: factory,
		tmpl:    NewTemplateStore(),
		created: metrics.Counter("mpi_runner_pool_created_total"),
		inUse:   metrics.Gauge("mpi_runner_pool_in_use"),
	}
	for i := 0; i < capacity; i++ {
		p.sem <- struct{}{}
	}
	return p, nil
}

// Cap returns the pool's capacity: the maximum number of Runners borrowed
// at once.
func (p *RunnerPool) Cap() int { return cap(p.sem) }

// Templates returns the pool's plan-template store. It persists for the
// pool's lifetime, so structure classes captured during one sweep are
// rebound — never re-captured — by every later sweep over the pool.
func (p *RunnerPool) Templates() *TemplateStore { return p.tmpl }

// Get borrows a Runner, blocking while all of the pool's Runners are
// borrowed, and constructing one when the free list is empty but a slot
// is. The borrower owns the Runner exclusively until Put.
func (p *RunnerPool) Get() (*Runner, error) {
	<-p.sem
	var r *Runner
	for {
		head := p.free.Load()
		if head == nil {
			break
		}
		if p.free.CompareAndSwap(head, head.next) {
			r = head.r
			break
		}
	}
	if r == nil {
		var err error
		if r, err = p.factory(); err != nil {
			// Release the slot so the pool stays at full capacity.
			p.sem <- struct{}{}
			return nil, err
		}
		p.created.Inc()
	}
	p.inUse.Add(1)
	return r, nil
}

// Put returns a borrowed Runner to the pool. Putting a Runner that was
// not borrowed from this pool grows it past its capacity (and, full,
// blocks); don't.
func (p *RunnerPool) Put(r *Runner) {
	if r == nil {
		return
	}
	p.inUse.Add(-1)
	n := &freeNode{r: r}
	for {
		head := p.free.Load()
		n.next = head
		if p.free.CompareAndSwap(head, n) {
			break
		}
	}
	p.sem <- struct{}{}
}
