package mpi

import (
	"sync"
	"time"
)

// TemplateStore is a concurrency-safe map from structure-class keys to
// plan templates, striped into fixed shards (FNV-1a on the key) so that
// sweep workers publishing and looking up templates contend on a shard,
// never on the whole store — the same discipline as the experiment
// layer's measurement cache.
//
// A template is the plan of the first captured point of its structure
// class; every later point of the class rebinds it (Runner.Rebind)
// instead of re-capturing under the scheduler. Put stores a private
// clone, so callers may pass plans backed by recycled Runner buffers;
// Get hands out the stored plan itself, which must be treated as
// immutable (Rebind never mutates its template).
//
// Captures are single-flight: Acquire elects exactly one leader per
// class, and every concurrent caller of the same class blocks until the
// leader publishes (Put) or abandons (the release closure) its capture —
// a capture costs ≈3.3× a rebind, so letting racing workers duplicate it
// is the main way a parallel sweep wastes multicore cycles. A publish
// with no flight pending (a rebind-divergence refresh) replaces the
// stored template wholesale; readers that already hold the old plan keep
// using it, which is benign — both plans are validated for the class.
type TemplateStore struct {
	shards [templateShards]templateShard
}

const templateShards = 16

type templateShard struct {
	mu sync.RWMutex
	m  map[string]*templateEntry
}

// templateEntry is one structure class's slot: a capture in flight
// (done open), a published template (done closed, plan set), or an
// abandoned flight (removed from the map before done is closed, plan
// nil). plan is written at most once, strictly before done is closed,
// so readers that return from <-done read it without a lock.
type templateEntry struct {
	done chan struct{}
	plan *Plan
}

// completed reports whether the entry's flight has finished. Callers
// must hold the shard lock (close happens under it too, so the select
// never races a concurrent close).
func (e *templateEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// NewTemplateStore builds an empty store.
func NewTemplateStore() *TemplateStore {
	s := &TemplateStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*templateEntry)
	}
	return s
}

// shard picks the shard for a key: FNV-1a, folded to the shard count.
func (s *TemplateStore) shard(key string) *templateShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &s.shards[h%templateShards]
}

// Get returns the template stored under key, or nil. It never blocks: a
// capture in flight reads as absent. The returned plan is shared and
// immutable: rebind it, never mutate it.
func (s *TemplateStore) Get(key string) *Plan {
	sh := s.shard(key)
	sh.mu.RLock()
	e := sh.m[key]
	done := e != nil && e.completed()
	sh.mu.RUnlock()
	if !done {
		return nil
	}
	return e.plan
}

// Acquire resolves key's template with single-flight capture election:
//
//   - Template published: returns (plan, nil, 0) — rebind it.
//   - Nothing known about the class: the caller is elected leader and
//     gets (nil, release, 0). It must capture the class, Put the plan,
//     and then call release; if the capture cannot be published (error,
//     engine fallback), calling release alone abandons the flight and
//     unblocks the waiters empty-handed. release is idempotent and
//     cannot touch any later flight, so deferring it is always safe.
//   - A leader is already capturing: blocks until that flight finishes
//     and returns (plan, nil, waited). plan is nil when the leader
//     abandoned — the caller proceeds leaderless (its own capture-path
//     Put, if any, installs the template for later points).
//
// Blocking callers wait on the leader's publish, not its whole
// measurement, so the wait is bounded by one capture (≈ the scheduler
// repetition plus echo validation).
func (s *TemplateStore) Acquire(key string) (p *Plan, release func(), waited time.Duration) {
	sh := s.shard(key)
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e == nil {
		sh.mu.Lock()
		if e = sh.m[key]; e == nil {
			e = &templateEntry{done: make(chan struct{})}
			sh.m[key] = e
			sh.mu.Unlock()
			return nil, func() { s.abandon(key, e) }, 0
		}
		sh.mu.Unlock()
	}
	select {
	case <-e.done:
		return e.plan, nil, 0
	default:
	}
	start := time.Now()
	<-e.done
	return e.plan, nil, time.Since(start)
}

// abandon ends the flight e without a template: the entry is forgotten
// (so the next Acquire of the class elects a fresh leader) and the
// waiters are released with a nil plan. It is a no-op once the flight
// completed — in particular after the leader's own Put — and can never
// affect a different, later flight under the same key.
func (s *TemplateStore) abandon(key string, e *templateEntry) {
	sh := s.shard(key)
	sh.mu.Lock()
	if sh.m[key] == e && !e.completed() {
		delete(sh.m, key)
		close(e.done)
	}
	sh.mu.Unlock()
}

// Put stores a clone of p under key. A capture flight pending on the key
// is completed in place — its waiters unblock with the plan — and any
// previously published template is replaced.
func (s *TemplateStore) Put(key string, p *Plan) {
	q := p.Clone()
	sh := s.shard(key)
	sh.mu.Lock()
	if e := sh.m[key]; e != nil && !e.completed() {
		e.plan = q
		close(e.done)
	} else {
		done := make(chan struct{})
		close(done)
		sh.m[key] = &templateEntry{done: done, plan: q}
	}
	sh.mu.Unlock()
}

// Len returns the number of published templates (captures in flight do
// not count until their Put).
func (s *TemplateStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			if e.completed() && e.plan != nil {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}
