package mpi

import "sync"

// TemplateStore is a concurrency-safe map from structure-class keys to
// plan templates, striped into fixed shards (FNV-1a on the key) so that
// sweep workers publishing and looking up templates contend on a shard,
// never on the whole store — the same discipline as the experiment
// layer's measurement cache.
//
// A template is the plan of the first captured point of its structure
// class; every later point of the class rebinds it (Runner.Rebind)
// instead of re-capturing under the scheduler. Put stores a private
// clone, so callers may pass plans backed by recycled Runner buffers;
// Get hands out the stored plan itself, which must be treated as
// immutable (Rebind never mutates its template).
//
// Races between workers capturing the same class concurrently are
// benign: both publish equivalent plans and the last write wins.
type TemplateStore struct {
	shards [templateShards]templateShard
}

const templateShards = 16

type templateShard struct {
	mu sync.RWMutex
	m  map[string]*Plan
}

// NewTemplateStore builds an empty store.
func NewTemplateStore() *TemplateStore {
	s := &TemplateStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Plan)
	}
	return s
}

// shard picks the shard for a key: FNV-1a, folded to the shard count.
func (s *TemplateStore) shard(key string) *templateShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &s.shards[h%templateShards]
}

// Get returns the template stored under key, or nil. The returned plan is
// shared and immutable: rebind it, never mutate it.
func (s *TemplateStore) Get(key string) *Plan {
	sh := s.shard(key)
	sh.mu.RLock()
	p := sh.m[key]
	sh.mu.RUnlock()
	return p
}

// Put stores a clone of p under key, replacing any previous template.
func (s *TemplateStore) Put(key string, p *Plan) {
	q := p.Clone()
	sh := s.shard(key)
	sh.mu.Lock()
	sh.m[key] = q
	sh.mu.Unlock()
}

// Len returns the number of stored templates.
func (s *TemplateStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
