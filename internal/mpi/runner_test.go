package mpi

import (
	"testing"

	"mpicollperf/internal/simnet"
)

func TestRunnerMatchesRunOn(t *testing.T) {
	cfg := testConfig(8)
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 2718
	prog := func(p *Proc) error {
		if p.Rank() == 0 {
			for d := 1; d < p.Size(); d++ {
				p.Send(d, 0, nil, 4096*d)
			}
		} else {
			p.Sleep(float64(p.Rank()) * 1e-6)
			p.Recv(0, 0, nil)
		}
		p.Barrier()
		return nil
	}
	want, err := Run(cfg, 8, prog)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := r.Run(8, prog)
		if err != nil {
			t.Fatal(err)
		}
		if got.MakeSpan != want.MakeSpan || got.Transfers != want.Transfers {
			t.Fatalf("run %d diverged from fresh Run: %v/%d vs %v/%d",
				i, got.MakeSpan, got.Transfers, want.MakeSpan, want.Transfers)
		}
		for rk := range want.FinishTimes {
			if got.FinishTimes[rk] != want.FinishTimes[rk] {
				t.Fatalf("run %d rank %d finish diverged", i, rk)
			}
		}
	}
}

func TestRunnerVaryingNprocs(t *testing.T) {
	cfg := testConfig(16)
	r, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := func(p *Proc) error {
		if p.Rank() == 0 {
			for d := 1; d < p.Size(); d++ {
				p.Send(d, 0, nil, 1024)
			}
		} else {
			p.Recv(0, 0, nil)
		}
		return nil
	}
	// Grow, shrink, regrow: per-rank state must be resized and reset
	// correctly, and each size must match a fresh dedicated run.
	for _, np := range []int{4, 16, 2, 9, 16} {
		got, err := r.Run(np, prog)
		if err != nil {
			t.Fatalf("nprocs %d: %v", np, err)
		}
		want, err := Run(cfg, np, prog)
		if err != nil {
			t.Fatal(err)
		}
		if got.MakeSpan != want.MakeSpan || got.Transfers != want.Transfers {
			t.Fatalf("nprocs %d diverged: %v/%d vs %v/%d", np, got.MakeSpan, got.Transfers, want.MakeSpan, want.Transfers)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	r, err := NewRunner(testConfig(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("nprocs 0 should fail")
	}
	if _, err := r.Run(3, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("nprocs > nodes should fail")
	}
	if _, err := NewRunner(simnet.Config{Nodes: -1}, Options{}); err == nil {
		t.Fatal("bad network config should fail")
	}
}

func TestRunnerRecoversAfterFailedRun(t *testing.T) {
	r, err := NewRunner(testConfig(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A deadlocking run, then an aborting run, must leave the pooled
	// scheduler state clean for the next healthy run.
	if _, err := r.Run(2, func(p *Proc) error {
		p.Recv(1-p.Rank(), 0, nil)
		return nil
	}); err == nil {
		t.Fatal("expected deadlock")
	}
	if _, err := r.Run(3, func(p *Proc) error {
		if p.Rank() == 1 {
			panic("induced")
		}
		p.Barrier()
		return nil
	}); err == nil {
		t.Fatal("expected panic error")
	}
	want, err := Run(testConfig(4), 4, pingPongish)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run(4, pingPongish)
	if err != nil {
		t.Fatal(err)
	}
	if got.MakeSpan != want.MakeSpan || got.Transfers != want.Transfers {
		t.Fatalf("post-failure run diverged: %v/%d vs %v/%d", got.MakeSpan, got.Transfers, want.MakeSpan, want.Transfers)
	}
}

// pingPongish is a small healthy program used by the recovery test.
func pingPongish(p *Proc) error {
	next := (p.Rank() + 1) % p.Size()
	prev := (p.Rank() - 1 + p.Size()) % p.Size()
	if p.Rank() == 0 {
		p.Send(next, 0, nil, 256)
		p.Recv(prev, 0, nil)
	} else {
		p.Recv(prev, 0, nil)
		p.Send(next, 0, nil, 256)
	}
	p.Barrier()
	return nil
}

// TestSteadyStateZeroAllocsPerOperation is the acceptance check for the
// allocation-free hot path: on a warm Runner, adding 1000 extra
// send/recv/wait operations to a run must add zero heap allocations. The
// per-run constant (goroutine spawn, the FinishTimes copy, the closure)
// cancels out in the comparison.
func TestSteadyStateZeroAllocsPerOperation(t *testing.T) {
	r, err := NewRunner(testConfig(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(iters int) func(*Proc) error {
		return func(p *Proc) error {
			for i := 0; i < iters; i++ {
				if p.Rank() == 0 {
					p.Send(1, 0, nil, 8192)
					p.Recv(1, 1, nil)
				} else {
					p.Recv(0, 0, nil)
					p.Send(0, 1, nil, 8192)
				}
			}
			return nil
		}
	}
	measure := func(iters int) float64 {
		prog := run(iters)
		return testing.AllocsPerRun(20, func() {
			if _, err := r.Run(2, prog); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Warm the Runner: freelists and queue capacities fill on first use.
	if _, err := r.Run(2, run(1100)); err != nil {
		t.Fatal(err)
	}
	small := measure(100)
	large := measure(1100)
	perOp := (large - small) / 1000 / 4 // 4 operations per round trip
	if perOp > 0.001 {
		t.Fatalf("steady-state path allocates: %.4f allocs/op (runs: %v vs %v allocs)", perOp, small, large)
	}
}
