package mpi

import (
	"testing"

	"mpicollperf/internal/simnet"
)

// replayTestConfig is a noisy cluster for the replay differential tests.
func replayTestConfig(nodes int) simnet.Config {
	cfg := testConfig(nodes)
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 4242
	return cfg
}

// replayDualConfig co-locates pairs of processes on shared NICs, so plans
// contain local (port-free, jitter-free) transfers alongside NIC ones.
func replayDualConfig(procs int) simnet.Config {
	cfg := replayTestConfig(procs)
	cfg.ProcsPerNode = 2
	cfg.IntraNodeLatency = 1e-6
	cfg.IntraNodeByteTime = 1e-10
	return cfg
}

// replayPattern is the communication mix the replay tests exercise: a
// segmented pipeline chain (receive segment s, forward it non-blocking),
// per-rank compute time, and a fan-in of differently-sized acks onto rank
// 0 whose arrival order depends on the jitter (unexpected-message
// pressure).
func replayPattern(p *Proc) {
	n, r := p.Size(), p.Rank()
	const segs = 3
	if r == 0 {
		for s := 0; s < segs; s++ {
			p.Send(1, s, nil, 8192)
		}
	} else {
		var fwd []*Request
		for s := 0; s < segs; s++ {
			p.Recv(r-1, s, nil)
			if r+1 < n {
				fwd = append(fwd, p.Isend(r+1, s, nil, 8192))
			}
		}
		if len(fwd) > 0 {
			p.WaitAll(fwd...)
		}
	}
	p.Sleep(float64(r) * 1e-7)
	if r == 0 {
		for d := 1; d < n; d++ {
			p.Recv(d, 99, nil)
		}
	} else {
		p.Send(0, 99, nil, 256+r)
	}
}

// captureOneRep runs one marked repetition of replayPattern on a fresh
// Runner and compiles it into a plan: boundary mark, open barrier, start
// mark, pattern, close barrier, end mark.
func captureOneRep(t testing.TB, cfg simnet.Config, nprocs int) (*Runner, *Plan, Result) {
	t.Helper()
	r, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, cap, err := r.RunCapture(nprocs, func(p *Proc) error {
		root := p.Rank() == 0
		if root {
			p.Mark()
		}
		p.Barrier()
		if root {
			p.Mark()
		}
		replayPattern(p)
		p.Barrier()
		if root {
			p.Mark()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cap.Plan(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Marks() != 2 {
		t.Fatalf("plan has %d marks, want 2", plan.Marks())
	}
	return r, plan, res
}

// TestReplayMatchesScheduler is the engine differential: replaying a
// captured repetition R times must produce per-repetition durations
// bit-identical to a scheduler run executing the same repetition loop
// R+1 times, on both one-process-per-node and co-located clusters.
func TestReplayMatchesScheduler(t *testing.T) {
	const nprocs, extra = 8, 11
	for name, cfg := range map[string]simnet.Config{
		"one_per_node":  replayTestConfig(nprocs),
		"two_per_node":  replayDualConfig(nprocs),
		"noise_free":    testConfig(nprocs),
		"dual_no_noise": func() simnet.Config { c := replayDualConfig(nprocs); c.NoiseAmplitude = 0; return c }(),
	} {
		t.Run(name, func(t *testing.T) {
			// Scheduler reference: one program running the repetition loop.
			var want []float64
			ref, err := NewRunner(cfg, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ref.Run(nprocs, func(p *Proc) error {
				for rep := 0; rep < extra+1; rep++ {
					p.Barrier()
					start := p.Now()
					replayPattern(p)
					p.Barrier()
					if p.Rank() == 0 {
						want = append(want, p.Now()-start)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Capture one repetition, replay the rest.
			r, plan, res := captureOneRep(t, cfg, nprocs)
			rp, err := NewReplayer(r.Network(), plan, res.FinishTimes, 4)
			if err != nil {
				t.Fatal(err)
			}
			got := []float64{want[0]} // repetition 0 is the captured one
			for len(got) < extra+1 {
				k := 4
				if rem := extra + 1 - len(got); rem < k {
					k = rem
				}
				marks, ok := rp.Replay(k)
				if !ok {
					t.Fatal("replay did not close over the plan")
				}
				for l := 0; l < k; l++ {
					got = append(got, marks[l*2+1]-marks[l*2])
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("repetition %d: replay %x, scheduler %x", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCaptureIsTimingNeutral asserts that recording a trace — including
// Mark calls — changes nothing about a run's virtual timing.
func TestCaptureIsTimingNeutral(t *testing.T) {
	cfg := replayTestConfig(6)
	plain := func(p *Proc) error {
		p.Barrier()
		replayPattern(p)
		p.Barrier()
		return nil
	}
	marked := func(p *Proc) error {
		if p.Rank() == 0 {
			p.Mark()
		}
		p.Barrier()
		if p.Rank() == 0 {
			p.Mark()
		}
		replayPattern(p)
		p.Barrier()
		if p.Rank() == 2 {
			p.Mark()
		}
		return nil
	}
	r1, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := r1.Run(6, plain)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, cap, err := r2.RunCapture(6, marked)
	if err != nil {
		t.Fatal(err)
	}
	if got.MakeSpan != want.MakeSpan || got.Transfers != want.Transfers {
		t.Fatalf("capture changed timing: %x/%d vs %x/%d", got.MakeSpan, got.Transfers, want.MakeSpan, want.Transfers)
	}
	for i := range want.FinishTimes {
		if got.FinishTimes[i] != want.FinishTimes[i] {
			t.Fatalf("rank %d finish: %x vs %x", i, got.FinishTimes[i], want.FinishTimes[i])
		}
	}
	if cap.MarkCount() != 3 {
		t.Fatalf("recorded %d marks, want 3", cap.MarkCount())
	}
}

// TestReplayZeroAllocsPerRep pins the steady-state replay pass at zero
// heap allocations: every buffer is sized at construction.
func TestReplayZeroAllocsPerRep(t *testing.T) {
	r, plan, res := captureOneRep(t, replayTestConfig(8), 8)
	rp, err := NewReplayer(r.Network(), plan, res.FinishTimes, 2)
	if err != nil {
		t.Fatal(err)
	}
	rp.Replay(2) // warm: nothing left to grow
	if avg := testing.AllocsPerRun(20, func() {
		if _, ok := rp.Replay(2); !ok {
			t.Fatal("replay failed")
		}
	}); avg != 0 {
		t.Fatalf("steady-state Replay allocates %v times per batch, want 0", avg)
	}
}

// TestEchoValidatesAndDetectsDivergence: an echo run of the captured
// program against replayed clocks must succeed, and any structural
// deviation — a changed size, an extra operation, a missing one — must be
// reported as an error.
func TestEchoValidatesAndDetectsDivergence(t *testing.T) {
	const nprocs = 6
	r, plan, res := captureOneRep(t, replayTestConfig(nprocs), nprocs)
	rp, err := NewReplayer(r.Network(), plan, res.FinishTimes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rp.Replay(1); !ok {
		t.Fatal("replay failed")
	}
	rep := func(mutate func(p *Proc)) func(*Proc) error {
		return func(p *Proc) error {
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			replayPattern(p)
			if mutate != nil {
				mutate(p)
			}
			p.Barrier()
			if p.Rank() == 0 {
				p.Mark()
			}
			return nil
		}
	}
	if err := r.EchoRun(plan, rp.EchoClocks(), res.FinishTimes, rep(nil)); err != nil {
		t.Fatalf("faithful echo rejected: %v", err)
	}
	// Echoing the same plan twice must work (cursors reset per call).
	if err := r.EchoRun(plan, rp.EchoClocks(), res.FinishTimes, rep(nil)); err != nil {
		t.Fatalf("second faithful echo rejected: %v", err)
	}
	for name, mutate := range map[string]func(p *Proc){
		"extra_sleep":   func(p *Proc) { p.Sleep(1e-9) },
		"extra_message": func(p *Proc) { sendRecvPair(p) },
	} {
		if err := r.EchoRun(plan, rp.EchoClocks(), res.FinishTimes, rep(mutate)); err == nil {
			t.Errorf("%s: diverging echo accepted", name)
		}
	}
	// A changed byte count inside the pattern must also be flagged.
	altered := func(p *Proc) error {
		p.Barrier()
		if p.Rank() == 0 {
			p.Mark()
		}
		if p.Rank() == 0 {
			p.Send(1, 99, nil, 1) // wrong size, wrong point in the stream
		} else if p.Rank() == 1 {
			p.Recv(0, 99, nil)
		}
		replayPattern(p)
		p.Barrier()
		if p.Rank() == 0 {
			p.Mark()
		}
		return nil
	}
	if err := r.EchoRun(plan, rp.EchoClocks(), res.FinishTimes, altered); err == nil {
		t.Error("reordered echo accepted")
	}
	// After echoing, the Runner must still run normal programs.
	if _, err := r.Run(nprocs, func(p *Proc) error {
		p.Barrier()
		return nil
	}); err != nil {
		t.Fatalf("runner broken after echo runs: %v", err)
	}
}

func sendRecvPair(p *Proc) {
	if p.Rank() == 0 {
		p.Send(1, 123, nil, 64)
	} else if p.Rank() == 1 {
		p.Recv(0, 123, nil)
	}
}

// TestEchoRunValidation covers the argument checks of EchoRun.
func TestEchoRunValidation(t *testing.T) {
	r, plan, res := captureOneRep(t, replayTestConfig(4), 4)
	rp, err := NewReplayer(r.Network(), plan, res.FinishTimes, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp.Replay(1)
	if err := r.EchoRun(plan, rp.EchoClocks()[:1], res.FinishTimes, nil); err == nil {
		t.Error("short clock slice accepted")
	}
	if err := r.EchoRun(plan, rp.EchoClocks(), res.FinishTimes[:2], nil); err == nil {
		t.Error("short start slice accepted")
	}
}

// TestPlanRejectsOpenSegments: a plan whose communication reaches across
// its mark boundaries cannot be replayed in isolation and must be refused.
func TestPlanRejectsOpenSegments(t *testing.T) {
	r, err := NewRunner(replayTestConfig(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A request posted before the mark but waited on after it.
	_, cap, err := r.RunCapture(2, func(p *Proc) error {
		if p.Rank() == 0 {
			req := p.Isend(1, 0, nil, 4096)
			p.Mark()
			p.Wait(req)
		} else {
			p.Recv(0, 0, nil)
		}
		p.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, perr := cap.Plan(0, -1); perr == nil {
		t.Error("plan with a request posted outside the segment accepted")
	}
	// Mark-range validation.
	if _, perr := cap.Plan(-1, -1); perr == nil {
		t.Error("negative fromMark accepted")
	}
	if _, perr := cap.Plan(0, 0); perr == nil {
		t.Error("empty mark range accepted")
	}
	if _, perr := cap.Plan(5, -1); perr == nil {
		t.Error("out-of-range fromMark accepted")
	}
}

// BenchmarkReplayRep measures one replayed repetition of the 16-rank
// pipeline/fan-in pattern — the unit of work the measurement harness pays
// per repetition on the replay engine (compare BenchmarkSchedulerPingPong
// territory: the same structure under the scheduler costs a full run).
func BenchmarkReplayRep(b *testing.B) {
	b.ReportAllocs()
	r, plan, res := captureOneRep(b, replayTestConfig(16), 16)
	rp, err := NewReplayer(r.Network(), plan, res.FinishTimes, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rp.Replay(1); !ok {
			b.Fatal("replay failed")
		}
	}
}

// BenchmarkReplayBatch8 is BenchmarkReplayRep with full 8-lane batches:
// the jitter pre-draw and port stripes amortise across the batch.
func BenchmarkReplayBatch8(b *testing.B) {
	b.ReportAllocs()
	r, plan, res := captureOneRep(b, replayTestConfig(16), 16)
	rp, err := NewReplayer(r.Network(), plan, res.FinishTimes, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rp.Replay(8); !ok {
			b.Fatal("replay failed")
		}
	}
}

// BenchmarkReplayCapture measures the one-off cost of the capturing run
// plus plan compilation — what the replay engine pays before its first
// fast repetition.
func BenchmarkReplayCapture(b *testing.B) {
	b.ReportAllocs()
	cfg := replayTestConfig(16)
	r, err := NewRunner(cfg, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cap, err := r.RunCapture(16, func(p *Proc) error {
			if p.Rank() == 0 {
				p.Mark()
			}
			p.Barrier()
			replayPattern(p)
			p.Barrier()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cap.Plan(0, -1); err != nil {
			b.Fatal(err)
		}
	}
}
