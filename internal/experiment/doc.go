// Package experiment implements the measurement layer of the
// reproduction: the paper's statistical methodology for timing a single
// collective invocation (§5.1), the specific communication experiments
// the parameter estimation needs (§4.1, §4.2), and a parallel sweep
// engine that fans whole measurement grids out over a worker pool with
// content-addressed result caching.
//
// # Measurement methodology (paper §5.1)
//
// Measure is modelled on MPIBlib: a collective operation is executed
// repeatedly inside a single MPI program, repetitions separated by
// barriers, until the 95% Student-t confidence interval of the sample
// mean is within 2.5% of the mean (Settings makes both knobs
// adjustable). Normality (Jarque-Bera) and independence (lag-1
// autocorrelation) diagnostics are recorded alongside every measurement.
//
// Two timing modes are provided:
//
//   - RootTime measures the duration observed by the root between the
//     start of the operation and its local completion. The paper's
//     α/β-estimation experiments (§4.2) are designed to "start and finish
//     on the root" (broadcast followed by a gather), so this mode measures
//     them without any global clock.
//   - Completion measures the time until every rank has finished, by
//     closing each repetition with a barrier whose (deterministically
//     calibrated) cost is subtracted. The γ(P) experiments (§4.1) and the
//     algorithm-comparison curves use this mode; subtracting the barrier
//     is a small refinement over the paper's T1(P,N)/N description that
//     keeps barrier cost out of the γ estimate.
//
// # Canned experiments (paper §4)
//
// MeasureBcast times one (algorithm, P, m, segment) broadcast
// configuration in Completion mode — one point of the paper's comparison
// figures. MeasureLinearBcast is the §4.1 γ(P) experiment (non-blocking
// linear broadcast of a single segment), and MeasureBcastThenGather the
// §4.2 estimation experiment (the modelled broadcast followed by a small
// linear gather, timed on the root).
//
// # Sweep engine
//
// Every evaluation in the paper walks a grid — algorithms × communicator
// sizes × message sizes — and each grid point is an independent,
// deterministic simulation. Sweep exploits that: Run measures a []Point
// grid over a bounded worker pool (Workers, default GOMAXPROCS) and
// returns results in grid order regardless of completion order, so
// callers are oblivious to the concurrency. Each point builds its own
// simnet.Network, which makes the results bit-identical to a serial run;
// the first failing point cancels the rest through the context.
//
// Cache adds content-addressed memoisation on top: keys hash the full
// experiment identity (cluster profile including the noise seed, the
// normalised Settings, and the point), in memory via NewCache or spilled
// to a directory of JSON files via NewDiskCache, so repeated pipeline
// stages — fitparams then decisiongen over the same grid — skip
// already-measured points. The Progress hook reports per-point
// completion for CLI front-ends.
package experiment
