package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mpicollperf/internal/cluster"
)

// This file is the measurement cache: content-addressed keys covering the
// complete experiment identity, an in-memory store sharded to stay off
// the sweep workers' critical path, and an optional JSON-file disk layer.

// cacheKeyBlob is the canonical serialisation hashed into a cache key. It
// spells out every input that determines a measurement — the full cluster
// profile (including the simulator's noise seed), the normalised
// measurement settings, and the point — so any change to any of them
// produces a different key. Algorithms are keyed by name, keeping keys
// stable across enum reorderings.
type cacheKeyBlob struct {
	Version  int
	Profile  cluster.Profile
	Settings Settings
	Kind     Kind
	Alg      string
	Procs    int
	MsgBytes int
	SegSize  int
	Gather   int
}

// cacheKeyVersion invalidates every existing cache entry when the
// measurement methodology or the simulator's timing model changes
// incompatibly; bump it on such changes.
const cacheKeyVersion = 1

func cacheKey(pr cluster.Profile, pt Point, set Settings) string {
	blob, err := json.Marshal(cacheKeyBlob{
		Version:  cacheKeyVersion,
		Profile:  pr,
		Settings: set.withDefaults(),
		Kind:     pt.Kind,
		Alg:      pt.Alg.String(),
		Procs:    pt.Procs,
		MsgBytes: pt.MsgBytes,
		SegSize:  pt.SegSize,
		Gather:   pt.GatherBytes,
	})
	if err != nil {
		// Every field is a plain value; Marshal cannot fail on them.
		panic(fmt.Sprintf("experiment: cache key: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// cacheShards is the number of independently locked stripes. 16 is
// comfortably past the worker counts sweeps run with, so two workers
// collide on a stripe lock only by birthday accident, not by design.
const cacheShards = 16

// cacheShard is one independently locked stripe of the in-memory store.
type cacheShard struct {
	mu  sync.Mutex
	mem map[string]Measurement
}

// Cache is a content-addressed measurement store shared by sweeps. Keys
// cover the complete experiment identity, so a cache never returns a
// measurement for a different profile, point, or methodology — reusing
// one cache across clusters and tools is safe.
//
// A Cache always holds entries in memory, sharded across independently
// locked stripes so concurrent sweep workers do not serialise on one
// mutex; NewDiskCache additionally persists each entry as a JSON file
// named <key>.json in a directory, so separate process invocations
// (fitparams, then decisiongen over the same grid) skip already-measured
// points. All methods are safe for concurrent use.
type Cache struct {
	shards [cacheShards]cacheShard
	dir    string
}

// NewCache returns an in-memory cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].mem = make(map[string]Measurement)
	}
	return c
}

// NewDiskCache returns a cache backed by dir, creating it if necessary.
func NewDiskCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: cache dir: %w", err)
	}
	c := NewCache()
	c.dir = dir
	return c, nil
}

// shard maps a key to its stripe (FNV-1a over the key, which is already a
// hash — any byte mix distributes it uniformly).
func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.mem)
		s.mu.Unlock()
	}
	return n
}

func (c *Cache) get(key string) (Measurement, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.mem[key]; ok {
		return m, true
	}
	if c.dir == "" {
		return Measurement{}, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return Measurement{}, false
	}
	var m Measurement
	if err := json.Unmarshal(data, &m); err != nil {
		// A truncated or foreign file is treated as a miss; the fresh
		// measurement will overwrite it.
		return Measurement{}, false
	}
	s.mem[key] = m
	return m, true
}

func (c *Cache) put(key string, m Measurement) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = m
	if c.dir == "" {
		return
	}
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	// Write-then-rename so a concurrent reader never sees a torn file.
	tmp := filepath.Join(c.dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}
