//go:build race

package experiment

// raceEnabled reports whether the race detector is compiled in; timing
// assertions (the sweep scaling smoke test) skip under it, since
// instrumented code is several times slower and unevenly so.
const raceEnabled = true
