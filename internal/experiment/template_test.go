package experiment

import (
	"context"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/simnet"
)

// templateProfile is the noisy 16-node platform the template tests
// measure on.
func templateProfile(t *testing.T) cluster.Profile {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestMeasureReboundBitIdentical is the fast path's core contract: a
// point measured by rebinding its class template — no scheduler run at
// all — must be bit-identical to the scheduler engine, for every
// algorithm, including a same-class point of a different message size.
func TestMeasureReboundBitIdentical(t *testing.T) {
	pr := templateProfile(t)
	set := fastSettings()
	for _, alg := range coll.BcastAlgorithms() {
		// 65536 and 65528 land in the same structure class for every
		// algorithm (same segment count at seg 8192, and unsegmented
		// algorithms share one class per size anyway).
		for _, m := range []int{65536, 65528} {
			want, err := MeasureBcast(pr, 16, alg, m, 8192, Settings{Engine: EngineScheduler, Confidence: set.Confidence, Precision: set.Precision, MinReps: set.MinReps, MaxReps: set.MaxReps, Warmup: set.Warmup})
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			r, err := newProfileRunner(pr, reg)
			if err != nil {
				t.Fatal(err)
			}
			store := mpi.NewTemplateStore()
			// First measurement captures and publishes the template...
			first, err := measureBcastOn(r, pr, 16, alg, 65536, 8192, set, store)
			if err != nil {
				t.Fatalf("%v: capture: %v", alg, err)
			}
			if m == 65536 {
				sameMeasurement(t, alg.String()+" capture", want, first)
			}
			if got := reg.Counter("experiment_plan_templates_total").Value(); got != 1 {
				t.Fatalf("%v: %d templates published, want 1", alg, got)
			}
			// ...and the point under test rebinds it.
			got, err := measureBcastOn(r, pr, 16, alg, m, 8192, set, store)
			if err != nil {
				t.Fatalf("%v m=%d: rebind: %v", alg, m, err)
			}
			sameMeasurement(t, alg.String()+" rebound", want, got)
			if n := reg.Counter("experiment_plan_rebinds_total").Value(); n != 1 {
				t.Fatalf("%v m=%d: %d rebinds counted, want 1", alg, m, n)
			}
			if n := reg.Counter(mFallbacksByWhy[FallbackRebindDivergence]).Value(); n != 0 {
				t.Fatalf("%v m=%d: %d rebind-divergence fallbacks, want 0", alg, m, n)
			}
		}
	}
}

// TestRebindDivergenceFallsBackToCapture: a template published under a
// class key that a later point's structure does not match must be
// detected by the rebind pass; the point is then measured through the
// full capture path (still on the replay engine, bit-identically),
// the divergence is counted, and the refreshed template serves the
// class from then on.
func TestRebindDivergenceFallsBackToCapture(t *testing.T) {
	pr := templateProfile(t)
	set := fastSettings()
	opBinary := func(p *mpi.Proc) { coll.Bcast(p, coll.BcastBinary, 0, coll.Synthetic(65536), 8192) }
	opChain := func(p *mpi.Proc) { coll.Bcast(p, coll.BcastChain, 0, coll.Synthetic(65536), 8192) }

	want, err := MeasureBcast(pr, 16, coll.BcastChain, 65536, 8192, Settings{Engine: EngineScheduler, Confidence: set.Confidence, Precision: set.Precision, MinReps: set.MinReps, MaxReps: set.MaxReps, Warmup: set.Warmup})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	r, err := newProfileRunner(pr, reg)
	if err != nil {
		t.Fatal(err)
	}
	store := mpi.NewTemplateStore()
	// Poison the key: publish the binary tree's template, then measure the
	// chain under the same key.
	cls := planClass{key: "poisoned-class", store: store}
	if _, err := measureOnClass(r, 16, set, Completion, opBinary, cls); err != nil {
		t.Fatal(err)
	}
	got, err := measureOnClass(r, 16, set, Completion, opChain, cls)
	if err != nil {
		t.Fatalf("divergent point failed instead of falling back: %v", err)
	}
	sameMeasurement(t, "diverged point", want, got)
	if got.Fallback != FallbackNone {
		t.Fatalf("measurement carries fallback %q; rebind divergence is metrics-only", got.Fallback)
	}
	if n := reg.Counter(mFallbacksByWhy[FallbackRebindDivergence]).Value(); n != 1 {
		t.Fatalf("%d rebind-divergence fallbacks counted, want 1", n)
	}
	if n := reg.Counter("experiment_plan_templates_total").Value(); n != 2 {
		t.Fatalf("%d templates published, want 2 (capture refreshed the class)", n)
	}
	// The refreshed template now matches: the next chain point rebinds.
	got, err = measureOnClass(r, 16, set, Completion, opChain, cls)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "refreshed class", want, got)
	if n := reg.Counter("experiment_plan_rebinds_total").Value(); n != 1 {
		t.Fatalf("%d rebinds counted after refresh, want 1", n)
	}
}

// distinctClasses counts the structure classes of a bcast grid.
func distinctClasses(points []Point) int {
	keys := make(map[string]bool)
	for _, pt := range points {
		key := coll.BcastClassKey(pt.Alg, pt.Procs, pt.MsgBytes, pt.SegSize)
		if pt.Kind == PointBcastThenGather {
			key += "+gatherlinear"
		}
		keys[key] = true
	}
	return len(keys)
}

// TestSweepTemplatesBitIdentical sweeps a grid (broadcasts and the
// bcast+gather estimation points) with templating on, off, and
// pre-warmed, serial and concurrent, and requires every variant to
// reproduce the scheduler engine's means bit for bit — while the
// template counters account for every point.
func TestSweepTemplatesBitIdentical(t *testing.T) {
	pr := templateProfile(t)
	set := fastSettings()
	grid := BcastGrid(16, coll.BcastAlgorithms(), []int{8192, 131072, 1 << 20}, pr.SegmentSize)
	for _, mg := range []int{64, 4096} {
		grid = append(grid, Point{Kind: PointBcastThenGather, Alg: coll.BcastBinomial, Procs: 16, MsgBytes: 131072, SegSize: pr.SegmentSize, GatherBytes: mg})
	}
	classes := distinctClasses(grid)
	if classes >= len(grid) {
		t.Fatalf("grid has %d classes over %d points; nothing would rebind", classes, len(grid))
	}

	base := Sweep{Profile: pr, Settings: set, Workers: 1, DisableTemplates: true}
	baseSet := base.Settings
	baseSet.Engine = EngineScheduler
	base.Settings = baseSet
	want, err := base.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}

	for _, engine := range []Engine{EngineAuto, EngineReplay} {
		for _, workers := range []int{1, 8} {
			for _, disabled := range []bool{false, true} {
				set := set
				set.Engine = engine
				reg := obs.NewRegistry()
				sw := Sweep{Profile: pr, Settings: set, Workers: workers, DisableTemplates: disabled, Metrics: reg}
				got, err := sw.Run(context.Background(), grid)
				if err != nil {
					t.Fatal(err)
				}
				label := func(what string) string {
					return what + " (engine=" + engine.String() + ")"
				}
				for i := range got {
					if got[i].Meas.Mean != want[i].Meas.Mean {
						t.Fatalf("%s point %v: mean %x, scheduler %x (workers=%d disabled=%v)",
							label("sweep"), got[i].Point, got[i].Meas.Mean, want[i].Meas.Mean, workers, disabled)
					}
					for j := range got[i].Meas.Samples {
						if got[i].Meas.Samples[j] != want[i].Meas.Samples[j] {
							t.Fatalf("%s point %v sample %d diverges", label("sweep"), got[i].Point, j)
						}
					}
				}
				tpls := reg.Counter("experiment_plan_templates_total").Value()
				rebinds := reg.Counter("experiment_plan_rebinds_total").Value()
				if disabled {
					if tpls != 0 || rebinds != 0 {
						t.Fatalf("%s: templating disabled but %d templates / %d rebinds counted", label("metrics"), tpls, rebinds)
					}
					continue
				}
				// Every point either captured (publishing a template) or
				// rebound; racing workers may duplicate a capture but can
				// never miss a class.
				if tpls+rebinds != int64(len(grid)) {
					t.Fatalf("%s: %d templates + %d rebinds != %d points (workers=%d)", label("metrics"), tpls, rebinds, len(grid), workers)
				}
				if tpls < int64(classes) {
					t.Fatalf("%s: %d templates for %d classes (workers=%d)", label("metrics"), tpls, classes, workers)
				}
				if workers == 1 && tpls != int64(classes) {
					t.Fatalf("%s: serial sweep captured %d times for %d classes — capture is not once-per-class", label("metrics"), tpls, classes)
				}
				if n := reg.Counter(mFallbacksByWhy[FallbackRebindDivergence]).Value(); n != 0 {
					t.Fatalf("%s: %d unexplained rebind divergences", label("metrics"), n)
				}
			}
		}
	}

	// A pre-warmed persistent store: a second sweep over the same grid
	// captures nothing at all.
	store := mpi.NewTemplateStore()
	warm := Sweep{Profile: pr, Settings: set, Workers: 4, Templates: store}
	if _, err := warm.Run(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	warm.Metrics = reg
	got, err := warm.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Meas.Mean != want[i].Meas.Mean {
			t.Fatalf("warm sweep point %v: mean %x, scheduler %x", got[i].Point, got[i].Meas.Mean, want[i].Meas.Mean)
		}
	}
	if tpls := reg.Counter("experiment_plan_templates_total").Value(); tpls != 0 {
		t.Fatalf("warm sweep captured %d times, want 0", tpls)
	}
	if rebinds := reg.Counter("experiment_plan_rebinds_total").Value(); rebinds != int64(len(grid)) {
		t.Fatalf("warm sweep rebound %d points, want all %d", rebinds, len(grid))
	}
	if store.Len() != classes {
		t.Fatalf("store holds %d templates, want %d classes", store.Len(), classes)
	}
}

// TestSweepPoolTemplatesPersist: a pool-backed sweep publishes its
// templates into the pool's store, so a later sweep over the same pool
// rebinds every point without a single capture.
func TestSweepPoolTemplatesPersist(t *testing.T) {
	pr := templateProfile(t)
	grid := BcastGrid(16, []coll.BcastAlgorithm{coll.BcastBinary, coll.BcastChain}, []int{8192, 131072}, pr.SegmentSize)
	// The measurement counters live in the Runner's registry, and pooled
	// Runners carry the pool's — so the pool gets the registry here.
	reg := obs.NewRegistry()
	pool, err := NewRunnerPool(pr, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	first := Sweep{Profile: pr, Settings: fastSettings(), Workers: 2, Pool: pool}
	if _, err := first.Run(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	if pool.Templates().Len() == 0 {
		t.Fatal("sweep published nothing into the pool's template store")
	}
	tpls := reg.Counter("experiment_plan_templates_total").Value()
	rebinds := reg.Counter("experiment_plan_rebinds_total").Value()
	if tpls == 0 {
		t.Fatal("first sweep captured nothing")
	}
	second := Sweep{Profile: pr, Settings: fastSettings(), Workers: 2, Pool: pool}
	if _, err := second.Run(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	if d := reg.Counter("experiment_plan_templates_total").Value() - tpls; d != 0 {
		t.Fatalf("second sweep over the pool captured %d times, want 0", d)
	}
	if d := reg.Counter("experiment_plan_rebinds_total").Value() - rebinds; d != int64(len(grid)) {
		t.Fatalf("second sweep rebound %d points, want %d", d, len(grid))
	}
}

// FuzzRebindMatchesCapture is the template fast path's differential fuzz
// target: for any cluster shape, algorithm, and pair of message sizes,
// measuring the two points through a shared template store (capture the
// first, rebind or capture the second, rebind the first again) must be
// bit-identical to measuring each on a fresh-path Runner with no store.
func FuzzRebindMatchesCapture(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint8(0), uint16(64), uint16(64), uint8(1), uint8(50), int64(1))
	f.Add(uint8(16), uint8(2), uint8(3), uint16(256), uint16(255), uint8(2), uint8(30), int64(1001))
	f.Add(uint8(5), uint8(1), uint8(5), uint16(8), uint16(512), uint8(0), uint8(0), int64(7))
	f.Add(uint8(12), uint8(3), uint8(2), uint16(1024), uint16(8), uint8(1), uint8(80), int64(-3))
	f.Add(uint8(3), uint8(2), uint8(4), uint16(1), uint16(2), uint8(3), uint8(10), int64(42))
	f.Fuzz(func(t *testing.T, nodes, ppn, algIdx uint8, m1KB, m2KB uint16, segSel, noiseMil uint8, seed int64) {
		nprocs := 2 + int(nodes)%15 // 2..16
		cfg := simnet.Config{
			Nodes:        nprocs,
			Latency:      20e-6,
			ByteTimeSend: 1e-9,
			ByteTimeRecv: 1e-9,
			SendOverhead: 1e-6,
			RecvOverhead: 1e-6,
		}
		if p := 1 + int(ppn)%3; p > 1 {
			cfg.ProcsPerNode = p
			cfg.IntraNodeLatency = 1e-6
			cfg.IntraNodeByteTime = 1e-10
		}
		if amp := float64(noiseMil%101) / 1000; amp > 0 {
			cfg.NoiseAmplitude = amp
			cfg.NoiseSeed = seed
		}
		algs := coll.BcastAlgorithms()
		alg := algs[int(algIdx)%len(algs)]
		seg := []int{0, 8192, 16384, 65536}[int(segSel)%4]
		sizes := []int{1024 * (1 + int(m1KB)%1024), 1024 * (1 + int(m2KB)%1024)}
		set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 8, Warmup: 1}
		newRunner := func() *mpi.Runner {
			net, err := simnet.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return mpi.NewRunnerOn(net, mpi.Options{})
		}
		measure := func(r *mpi.Runner, m int, store *mpi.TemplateStore) Measurement {
			cls := planClass{}
			if store != nil {
				cls = planClass{key: coll.BcastClassKey(alg, nprocs, m, seg), store: store}
			}
			meas, err := measureOnClass(r, nprocs, set, Completion, func(p *mpi.Proc) {
				coll.Bcast(p, alg, 0, coll.Synthetic(m), seg)
			}, cls)
			if err != nil {
				t.Fatalf("%v m=%d (store=%v): %v", alg, m, store != nil, err)
			}
			return meas
		}
		ref := newRunner()
		templated := newRunner()
		store := mpi.NewTemplateStore()
		// Sequence: m1 captures its class, m2 rebinds or captures, m1
		// rebinds — each must match a store-free measurement bit for bit.
		for _, m := range []int{sizes[0], sizes[1], sizes[0]} {
			want := measure(ref, m, nil)
			got := measure(templated, m, store)
			sameMeasurement(t, alg.String(), want, got)
		}
	})
}
