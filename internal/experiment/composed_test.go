package experiment

import (
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
)

// TestMeasureComposedMatchesBcastThenGather pins the shim contract: the
// old bespoke bcast+gather helper and an explicit MeasureComposed of the
// same two stages are the same measurement, bit for bit, with and without
// a template store attached.
func TestMeasureComposedMatchesBcastThenGather(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	set := fastSettings()
	const (
		nprocs = 8
		m      = 65536
		mg     = 1024
	)
	stages := []Op{
		func(p *mpi.Proc) {
			coll.Bcast(p, coll.BcastBinomial, 0, coll.Synthetic(m), pr.SegmentSize)
		},
		func(p *mpi.Proc) {
			if p.Rank() == 0 {
				coll.Gather(p, coll.GatherLinearNoSync, 0, coll.Synthetic(mg*p.Size()), mg)
			} else {
				coll.Gather(p, coll.GatherLinearNoSync, 0, coll.Synthetic(mg), mg)
			}
		},
	}

	want, err := MeasureBcastThenGather(pr, nprocs, coll.BcastBinomial, m, pr.SegmentSize, mg, set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureComposed(pr, nprocs, set, RootTime, stages...)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "composed vs bespoke", want, got)

	// Template fast path: the first composed measurement of a class
	// captures, the second rebinds — both bit-identical to the shim.
	r, err := newProfileRunner(pr, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := mpi.NewTemplateStore()
	key := "test/bcast+gather/P=8/segs=8"
	for pass, label := range []string{"capture", "rebind"} {
		got, err := MeasureComposedClass(r, pr, nprocs, set, RootTime, key, tmpl, stages...)
		if err != nil {
			t.Fatalf("pass %d (%s): %v", pass, label, err)
		}
		sameMeasurement(t, "templated "+label, want, got)
	}
	if tmpl.Len() != 1 {
		t.Errorf("template store holds %d plans, want 1", tmpl.Len())
	}
}

func TestMeasureComposedErrors(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureComposed(pr, 4, fastSettings(), Completion); err == nil {
		t.Error("MeasureComposed accepted an empty stage list")
	}
	if _, err := MeasureComposed(pr, 8, fastSettings(), Completion, func(p *mpi.Proc) {}); err == nil {
		t.Error("MeasureComposed accepted more procs than the profile has nodes")
	}
}
