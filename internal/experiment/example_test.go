package experiment_test

import (
	"context"
	"fmt"
	"log"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
)

// ExampleSweep measures a small broadcast grid twice over a worker pool:
// the second run is served entirely from the sweep's result cache. The
// results come back in grid order whatever the completion order, and are
// bit-identical to measuring each point serially.
func ExampleSweep() {
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		log.Fatal(err)
	}
	sw := experiment.Sweep{
		Profile:  pr,
		Settings: experiment.Settings{MinReps: 2, MaxReps: 4},
		Workers:  4, // 0 would mean runtime.GOMAXPROCS(0)
		Cache:    experiment.NewCache(),
	}
	grid := experiment.BcastGrid(pr.Nodes,
		[]coll.BcastAlgorithm{coll.BcastBinomial, coll.BcastChain},
		[]int{8192, 1 << 20},
		pr.SegmentSize)

	results, err := sw.Run(context.Background(), grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d points\n", len(results))

	results, err = sw.Run(context.Background(), grid)
	if err != nil {
		log.Fatal(err)
	}
	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	fmt.Printf("second run served %d of %d from the cache\n", cached, len(results))
	// Output:
	// measured 4 points
	// second run served 4 of 4 from the cache
}
