package experiment

import (
	"fmt"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/mpi"
)

// Composed chains stages into a single operation: every rank executes the
// stages back to back within one repetition, exactly as if they were
// written inline in one Op. The composition is what the performance
// guidelines of Hunold & Carpen-Amarie compare collectives against —
// Bcast(m) ≾ Scatter(m)+Allgather(m) is "a broadcast must not lose to the
// composition that implements it" — and what the paper's §4.2 estimation
// experiment (broadcast followed by a gather) is built from.
func Composed(stages ...Op) Op {
	if len(stages) == 1 {
		return stages[0]
	}
	return func(p *mpi.Proc) {
		for _, stage := range stages {
			stage(p)
		}
	}
}

// MeasureComposed measures the chained stages on a fresh Runner built from
// pr: one adaptive measurement of the whole chain in the given mode. At
// least one stage is required.
func MeasureComposed(pr cluster.Profile, nprocs int, set Settings, mode Mode, stages ...Op) (Measurement, error) {
	r, err := newProfileRunner(pr, nil)
	if err != nil {
		return Measurement{}, err
	}
	return MeasureComposedOn(r, pr, nprocs, set, mode, stages...)
}

// MeasureComposedOn is MeasureComposed on a reusable Runner built from pr
// (see newProfileRunner); callers measuring many compositions on the same
// platform keep one warm Runner instead of rebuilding scheduler state per
// measurement.
func MeasureComposedOn(r *mpi.Runner, pr cluster.Profile, nprocs int, set Settings, mode Mode, stages ...Op) (Measurement, error) {
	return MeasureComposedClass(r, pr, nprocs, set, mode, "", nil, stages...)
}

// MeasureComposedClass is MeasureComposedOn with an optional plan-template
// structure class attached: when classKey is non-empty and tmpl is
// non-nil, the first measured composition of the class captures its plan
// under the scheduler and publishes it to tmpl, and every later
// measurement of the class rebinds that template goroutine-free
// (mpi.Runner.Rebind) — with bit-identical samples either way. The class
// key must identify the composition's communication *structure* (ranks,
// peers, tags, segment counts), never its byte counts, which the rebind
// harvests per point; a too-coarse key is safe (the rebind detects
// divergence and falls back to a fresh capture) but wastes the fast path.
func MeasureComposedClass(r *mpi.Runner, pr cluster.Profile, nprocs int, set Settings, mode Mode, classKey string, tmpl *mpi.TemplateStore, stages ...Op) (Measurement, error) {
	if len(stages) == 0 {
		return Measurement{}, fmt.Errorf("experiment: composed measurement needs at least one stage")
	}
	if nprocs > pr.Nodes {
		return Measurement{}, fmt.Errorf("experiment: %d procs exceed %s's %d nodes", nprocs, pr.Name, pr.Nodes)
	}
	cls := planClass{}
	if tmpl != nil && classKey != "" {
		cls = planClass{key: classKey, store: tmpl}
	}
	return measureOnClass(r, nprocs, set, mode, Composed(stages...), cls)
}
