package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/obs"
)

// Kind selects which measurement a grid point runs.
type Kind int

const (
	// PointBcast measures a broadcast in Completion mode (MeasureBcast).
	// The non-blocking linear broadcast of the γ(P) procedure is the
	// special case Alg = coll.BcastLinear, SegSize = 0.
	PointBcast Kind = iota
	// PointBcastThenGather measures the §4.2 estimation experiment — the
	// modelled broadcast followed by a linear-without-synchronisation
	// gather of GatherBytes per rank, timed on the root
	// (MeasureBcastThenGather).
	PointBcastThenGather
)

func (k Kind) String() string {
	switch k {
	case PointBcast:
		return "bcast"
	case PointBcastThenGather:
		return "bcast+gather"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Point is one cell of a measurement grid: a fully specified experiment
// whose outcome is deterministic given the cluster profile and the
// measurement settings.
type Point struct {
	// Kind selects the experiment; the zero value is PointBcast.
	Kind Kind
	// Alg is the broadcast algorithm under measurement.
	Alg coll.BcastAlgorithm
	// Procs is the communicator size.
	Procs int
	// MsgBytes is the broadcast message size m.
	MsgBytes int
	// SegSize is the broadcast segment size (0 = unsegmented).
	SegSize int
	// GatherBytes is the per-rank gather size m_g (PointBcastThenGather
	// only).
	GatherBytes int
}

func (pt Point) String() string {
	s := fmt.Sprintf("%v %v P=%d m=%d seg=%d", pt.Kind, pt.Alg, pt.Procs, pt.MsgBytes, pt.SegSize)
	if pt.Kind == PointBcastThenGather {
		s += fmt.Sprintf(" mg=%d", pt.GatherBytes)
	}
	return s
}

// gatherClassSuffix distinguishes the bcast+gather experiment's structure
// class from the plain broadcast's: the trailing linear gather's
// structure is a function of the communicator size alone (its per-rank
// bytes are harvested by the rebind), so the suffix alone suffices.
const gatherClassSuffix = "+gatherlinear"

// classKey is the point's structure-class key — exactly the key the
// measure* functions register the point's plan template under, so the
// sweep scheduler can group the grid by capture unit without running
// anything. Unknown kinds have no class ("") and are never grouped.
func (pt Point) classKey() string {
	switch pt.Kind {
	case PointBcast:
		return coll.BcastClassKey(pt.Alg, pt.Procs, pt.MsgBytes, pt.SegSize)
	case PointBcastThenGather:
		return coll.BcastClassKey(pt.Alg, pt.Procs, pt.MsgBytes, pt.SegSize) + gatherClassSuffix
	}
	return ""
}

// Result pairs a grid point with its measurement.
type Result struct {
	// Point is the grid point the measurement belongs to.
	Point Point
	// Meas is the measurement outcome.
	Meas Measurement
	// Cached reports that the measurement was served from the sweep's
	// cache instead of being run.
	Cached bool
}

// CountFallbacks tallies, per reason, the sweep results whose measurement
// fell back from the replay engine to the scheduler (Measurement.Fallback).
// The total map is empty when nothing fell back. Cached results never
// count: the fallback reason is observability metadata of the run that
// produced the measurement, not of the measurement itself.
func CountFallbacks(results []Result) map[FallbackReason]int {
	var counts map[FallbackReason]int
	for _, r := range results {
		if r.Cached || r.Meas.Fallback == FallbackNone {
			continue
		}
		if counts == nil {
			counts = make(map[FallbackReason]int)
		}
		counts[r.Meas.Fallback]++
	}
	return counts
}

// Progress observes sweep completion events. It is called once per grid
// point, serialised (never concurrently), with the number of points
// finished so far, the grid size, and the point's result. Completion
// order is nondeterministic under concurrency; only the returned slice
// of Run is ordered.
type Progress func(done, total int, r Result)

// Sweep runs a grid of measurement points over a bounded worker pool.
//
// Every worker owns one reusable mpi.Runner for the duration of a Run (a
// private simulator plus warm scheduler state, reset between points), so
// concurrent measurements share no mutable state and the results are
// bit-identical to running the same grid serially with a fresh simulator
// per point — the scheduler inside each simulated MPI run, the noise
// stream, and the adaptive repetition loop are all per-measurement
// deterministic. Work is handed out in contiguous chunks of grid points
// claimed from an atomic cursor, so workers synchronise once per chunk,
// not once per point.
//
// The zero value is not usable; Profile must be set. All other fields are
// optional.
type Sweep struct {
	// Profile is the simulated platform every point runs on.
	Profile cluster.Profile
	// Settings drive the adaptive measurement of every point; the zero
	// value is normalised exactly as Measure normalises it, so a Sweep
	// and direct Measure* calls with the same Settings agree.
	Settings Settings
	// Workers bounds the number of concurrently measured points.
	// 0 (or negative) means runtime.GOMAXPROCS(0); 1 reproduces the
	// serial path. The effective count is additionally clamped to
	// GOMAXPROCS, the grid size, and (when a Pool is attached) the pool
	// capacity: measurements are pure CPU, so workers beyond the
	// schedulable cores only thrash caches and interleave working sets —
	// the anti-scaling this clamp removes. Worker count never changes
	// results.
	Workers int
	// Pool, if non-nil, lends the workers their Runners instead of each
	// Run constructing new ones: across repeated sweeps (a calibration
	// runs several) the simulators and their warm scheduler, capture,
	// plan, and replay buffers are built once. The pool's Runners must
	// have been built for this Profile (NewRunnerPool does exactly that);
	// lending a pool across different profiles is a programming error.
	Pool *mpi.RunnerPool
	// Templates, if non-nil, is the plan-template store the replay engine
	// uses to capture each structure class once and rebind every other
	// point of the class goroutine-free (mpi.Runner.Rebind). When nil and
	// templating is not disabled, Run uses the Pool's store (which
	// persists across sweeps) or, pool-less, a store scoped to the Run.
	// Templates are keyed by structure class within one platform, so a
	// store must not be shared across Profiles; samples are bit-identical
	// with templating on, off, or partially warm.
	Templates *mpi.TemplateStore
	// DisableTemplates switches the plan-template fast path off: every
	// point captures under the scheduler as in the pre-template engine.
	// Results are bit-identical either way; the switch exists for
	// benchmarking and for pinning that equivalence in tests.
	DisableTemplates bool
	// Cache, if non-nil, is consulted before and filled after each
	// measurement, keyed by the full experiment identity (profile,
	// point, settings).
	Cache *Cache
	// Progress, if non-nil, is invoked after each point completes.
	Progress Progress
	// Metrics, if non-nil, receives sweep counters (points measured and
	// served from cache, per-engine repetition counts, fallback tallies,
	// chunks claimed), level gauges (effective workers, points not yet
	// completed), a sweep_run_seconds span per Run, and the cache size
	// gauge. Workers share the registry; it is never consulted for
	// decisions, so results are bit-identical with or without it.
	Metrics *obs.Registry
}

// NewRunnerPool builds a RunnerPool whose Runners are constructed for pr
// exactly as a pool-less sweep would construct them (a fresh network of
// the profile's full size, metrics threaded through), sized for capacity
// concurrent borrowers. Attach it to every Sweep over pr to amortize
// simulator construction across Runs.
func NewRunnerPool(pr cluster.Profile, capacity int, m *obs.Registry) (*mpi.RunnerPool, error) {
	return mpi.NewRunnerPool(capacity, func() (*mpi.Runner, error) {
		return newProfileRunner(pr, m)
	}, m)
}

// sweepChunk returns the number of grid points a worker claims per visit
// to the shared cursor: enough that claiming is a rounding error next to
// measuring, small enough that the grid tail stays balanced (each worker
// gets ~4 claims' worth of slack to even out point-cost variance).
func sweepChunk(points, workers int) int {
	if workers <= 1 {
		return points
	}
	chunk := points / (workers * 4)
	if chunk < 1 {
		return 1
	}
	if chunk > 32 {
		return 32
	}
	return chunk
}

// Run measures every point of the grid and returns the results in grid
// order (results[i] belongs to points[i]) regardless of completion order.
//
// The first failing point cancels all in-flight work and is returned as
// the error; a cancelled ctx likewise stops the sweep promptly (workers
// finish their current point and exit — individual measurements are not
// interruptible). On error the partial results are discarded.
func (s Sweep) Run(ctx context.Context, points []Point) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(points) == 0 {
		return nil, nil
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Grid points are CPU-bound simulations: concurrency beyond the
	// schedulable cores cannot finish the grid sooner, it can only evict
	// each worker's warm simulator state from cache on every preemption.
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers > len(points) {
		workers = len(points)
	}
	if s.Pool != nil && workers > s.Pool.Cap() {
		workers = s.Pool.Cap()
	}
	// Resolve the plan-template store: an explicit one wins, then the
	// pool's (persistent across sweeps), then a Run-scoped store so that
	// structure classes recurring within this grid still capture once.
	// The scheduler engine never consults templates.
	tmpls := s.Templates
	if tmpls == nil && !s.DisableTemplates && s.Settings.Engine != EngineScheduler {
		if s.Pool != nil {
			tmpls = s.Pool.Templates()
		} else {
			tmpls = mpi.NewTemplateStore()
		}
	}
	if s.DisableTemplates {
		tmpls = nil
	}

	// Class-aware scheduling: group the grid by structure class so each
	// class's expensive template capture (≈3.3× a rebind) runs exactly
	// once, as early as possible, and never twice concurrently. leaders
	// holds the grid index of each class's first point in grid order —
	// the exact points a serial templated sweep would capture — and rest
	// holds everything else (later points of known classes, plus any
	// class-less points). Workers drain leaders one point at a time (one
	// claim = one capture), then fan out over rest in contiguous chunks;
	// a worker that reaches a class whose capture is still in flight
	// blocks briefly on the template future inside the measurement
	// (mpi.TemplateStore.Acquire) instead of duplicating the capture.
	// Untemplated sweeps skip the grouping: leaders stays empty and rest
	// is the whole grid in order, the plain chunked distribution.
	var leaders, rest []int
	if tmpls != nil {
		seen := make(map[string]struct{}, len(points))
		rest = make([]int, 0, len(points))
		for i, pt := range points {
			key := pt.classKey()
			if key == "" {
				rest = append(rest, i)
				continue
			}
			if _, ok := seen[key]; ok {
				rest = append(rest, i)
			} else {
				seen[key] = struct{}{}
				leaders = append(leaders, i)
			}
		}
	} else {
		rest = make([]int, len(points))
		for i := range rest {
			rest[i] = i
		}
	}

	s.Metrics.Gauge("sweep_workers").Set(float64(workers))
	s.Metrics.Gauge("experiment_sweep_class_groups").Set(float64(len(leaders)))
	pending := s.Metrics.Gauge("sweep_points_pending")
	pending.Set(float64(len(points)))
	chunks := s.Metrics.Counter("sweep_chunks_total")
	sp := s.Metrics.Span("sweep_run")
	defer func() {
		sp.End()
		if s.Cache != nil {
			s.Metrics.Gauge("sweep_cache_entries").Set(float64(s.Cache.Len()))
		}
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		results    = make([]Result, len(points))
		nextLeader atomic.Int64 // cursor over leaders: one claim = one capture
		next       atomic.Int64 // cursor: index of the first unclaimed rest entry
		chunk      = int64(sweepChunk(len(rest), workers))
		wg         sync.WaitGroup
		mu         sync.Mutex // guards firstErr, done, and serialises Progress
		firstErr   error
		done       int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // stop the other workers
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one reusable Runner — borrowed from the
			// pool, or built lazily on its first uncached point — so
			// consecutive grid points share warm scheduler state instead of
			// rebuilding it; measurements stay bit-identical to fresh
			// per-point simulators.
			var runner *mpi.Runner
			if s.Pool != nil {
				defer func() {
					if runner != nil {
						s.Pool.Put(runner)
					}
				}()
			}
			acquire := func() (*mpi.Runner, error) {
				if runner != nil {
					return runner, nil
				}
				var err error
				if s.Pool != nil {
					runner, err = s.Pool.Get()
				} else {
					runner, err = newProfileRunner(s.Profile, s.Metrics)
				}
				return runner, err
			}
			// work measures grid point i and records its result. results
			// indices are disjoint across workers, so the slice needs no
			// lock — the WaitGroup publishes the writes to Run's return.
			// Only Progress (serialised by contract) takes the mutex.
			work := func(i int) bool {
				r, err := s.measure(points[i], acquire, tmpls)
				if err != nil {
					fail(fmt.Errorf("sweep point %d (%v): %w", i, points[i], err))
					return false
				}
				results[i] = r
				if s.Progress != nil {
					mu.Lock()
					done++
					s.Progress(done, len(points), r)
					mu.Unlock()
				}
				pending.Add(-1)
				return true
			}
			// Phase 1: capture leaders, one class per claim.
			for {
				li := nextLeader.Add(1) - 1
				if li >= int64(len(leaders)) {
					break
				}
				if ctx.Err() != nil {
					return
				}
				if !work(leaders[li]) {
					return
				}
			}
			// Phase 2: fan the remaining points out in contiguous chunks.
			for {
				end := next.Add(chunk)
				start := end - chunk
				if start >= int64(len(rest)) {
					return
				}
				if end > int64(len(rest)) {
					end = int64(len(rest))
				}
				chunks.Inc()
				for i := start; i < end; i++ {
					if ctx.Err() != nil {
						return
					}
					if !work(rest[i]) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// measure serves one point, through the cache when one is attached.
// acquire returns the worker's Runner, creating or borrowing it on the
// first measured point; cached points never touch a Runner. tmpls, which
// may be nil, is the resolved plan-template store (see Sweep.Templates).
func (s Sweep) measure(pt Point, acquire func() (*mpi.Runner, error), tmpls *mpi.TemplateStore) (Result, error) {
	var key string
	if s.Cache != nil {
		key = cacheKey(s.Profile, pt, s.Settings)
		if m, ok := s.Cache.get(key); ok {
			s.Metrics.Counter("sweep_points_cached_total").Inc()
			return Result{Point: pt, Meas: m, Cached: true}, nil
		}
	}
	runner, err := acquire()
	if err != nil {
		return Result{}, err
	}
	var m Measurement
	switch pt.Kind {
	case PointBcast:
		m, err = measureBcastOn(runner, s.Profile, pt.Procs, pt.Alg, pt.MsgBytes, pt.SegSize, s.Settings, tmpls)
	case PointBcastThenGather:
		m, err = measureBcastThenGatherOn(runner, s.Profile, pt.Procs, pt.Alg, pt.MsgBytes, pt.SegSize, pt.GatherBytes, s.Settings, tmpls)
	default:
		err = fmt.Errorf("experiment: unknown point kind %v", pt.Kind)
	}
	if err != nil {
		return Result{}, err
	}
	s.Metrics.Counter("sweep_points_measured_total").Inc()
	if s.Cache != nil {
		s.Cache.put(key, m)
	}
	return Result{Point: pt, Meas: m}, nil
}

// BcastGrid builds the (message size × algorithm) cross product at a fixed
// communicator and segment size, sizes-major: all algorithms of sizes[0]
// first, matching how the sweep tables are printed.
func BcastGrid(procs int, algs []coll.BcastAlgorithm, sizes []int, segSize int) []Point {
	points := make([]Point, 0, len(sizes)*len(algs))
	for _, m := range sizes {
		for _, alg := range algs {
			points = append(points, Point{Kind: PointBcast, Alg: alg, Procs: procs, MsgBytes: m, SegSize: segSize})
		}
	}
	return points
}
