package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/obs"
)

// Kind selects which measurement a grid point runs.
type Kind int

const (
	// PointBcast measures a broadcast in Completion mode (MeasureBcast).
	// The non-blocking linear broadcast of the γ(P) procedure is the
	// special case Alg = coll.BcastLinear, SegSize = 0.
	PointBcast Kind = iota
	// PointBcastThenGather measures the §4.2 estimation experiment — the
	// modelled broadcast followed by a linear-without-synchronisation
	// gather of GatherBytes per rank, timed on the root
	// (MeasureBcastThenGather).
	PointBcastThenGather
)

func (k Kind) String() string {
	switch k {
	case PointBcast:
		return "bcast"
	case PointBcastThenGather:
		return "bcast+gather"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Point is one cell of a measurement grid: a fully specified experiment
// whose outcome is deterministic given the cluster profile and the
// measurement settings.
type Point struct {
	// Kind selects the experiment; the zero value is PointBcast.
	Kind Kind
	// Alg is the broadcast algorithm under measurement.
	Alg coll.BcastAlgorithm
	// Procs is the communicator size.
	Procs int
	// MsgBytes is the broadcast message size m.
	MsgBytes int
	// SegSize is the broadcast segment size (0 = unsegmented).
	SegSize int
	// GatherBytes is the per-rank gather size m_g (PointBcastThenGather
	// only).
	GatherBytes int
}

func (pt Point) String() string {
	s := fmt.Sprintf("%v %v P=%d m=%d seg=%d", pt.Kind, pt.Alg, pt.Procs, pt.MsgBytes, pt.SegSize)
	if pt.Kind == PointBcastThenGather {
		s += fmt.Sprintf(" mg=%d", pt.GatherBytes)
	}
	return s
}

// Result pairs a grid point with its measurement.
type Result struct {
	// Point is the grid point the measurement belongs to.
	Point Point
	// Meas is the measurement outcome.
	Meas Measurement
	// Cached reports that the measurement was served from the sweep's
	// cache instead of being run.
	Cached bool
}

// CountFallbacks tallies, per reason, the sweep results whose measurement
// fell back from the replay engine to the scheduler (Measurement.Fallback).
// The total map is empty when nothing fell back. Cached results never
// count: the fallback reason is observability metadata of the run that
// produced the measurement, not of the measurement itself.
func CountFallbacks(results []Result) map[FallbackReason]int {
	var counts map[FallbackReason]int
	for _, r := range results {
		if r.Cached || r.Meas.Fallback == FallbackNone {
			continue
		}
		if counts == nil {
			counts = make(map[FallbackReason]int)
		}
		counts[r.Meas.Fallback]++
	}
	return counts
}

// Progress observes sweep completion events. It is called once per grid
// point, serialised (never concurrently), with the number of points
// finished so far, the grid size, and the point's result. Completion
// order is nondeterministic under concurrency; only the returned slice
// of Run is ordered.
type Progress func(done, total int, r Result)

// Sweep runs a grid of measurement points over a bounded worker pool.
//
// Every worker owns one reusable mpi.Runner (a private simulator plus
// warm scheduler state, reset between points), so concurrent measurements
// share no mutable state and the results are bit-identical to running the
// same grid serially with a fresh simulator per point — the scheduler
// inside each simulated MPI run, the noise stream, and the adaptive
// repetition loop are all per-measurement deterministic.
//
// The zero value is not usable; Profile must be set. All other fields are
// optional.
type Sweep struct {
	// Profile is the simulated platform every point runs on.
	Profile cluster.Profile
	// Settings drive the adaptive measurement of every point; the zero
	// value is normalised exactly as Measure normalises it, so a Sweep
	// and direct Measure* calls with the same Settings agree.
	Settings Settings
	// Workers bounds the number of concurrently measured points.
	// 0 (or negative) means runtime.GOMAXPROCS(0); 1 reproduces the
	// serial path.
	Workers int
	// Cache, if non-nil, is consulted before and filled after each
	// measurement, keyed by the full experiment identity (profile,
	// point, settings).
	Cache *Cache
	// Progress, if non-nil, is invoked after each point completes.
	Progress Progress
	// Metrics, if non-nil, receives sweep counters (points measured and
	// served from cache, per-engine repetition counts, fallback tallies),
	// a sweep_run_seconds span per Run, and the cache size gauge. Workers
	// share the registry; it is never consulted for decisions, so results
	// are bit-identical with or without it.
	Metrics *obs.Registry
}

// Run measures every point of the grid and returns the results in grid
// order (results[i] belongs to points[i]) regardless of completion order.
//
// The first failing point cancels all in-flight work and is returned as
// the error; a cancelled ctx likewise stops the sweep promptly (workers
// finish their current point and exit — individual measurements are not
// interruptible). On error the partial results are discarded.
func (s Sweep) Run(ctx context.Context, points []Point) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(points) == 0 {
		return nil, nil
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	sp := s.Metrics.Span("sweep_run")
	defer func() {
		sp.End()
		if s.Cache != nil {
			s.Metrics.Gauge("sweep_cache_entries").Set(float64(s.Cache.Len()))
		}
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		results  = make([]Result, len(points))
		jobs     = make(chan int)
		wg       sync.WaitGroup
		mu       sync.Mutex // guards firstErr, done, and serialises Progress
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // stop the feeder and the other workers
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one reusable Runner (built lazily on its
			// first uncached point) so consecutive grid points share warm
			// scheduler state instead of rebuilding it; measurements stay
			// bit-identical to fresh per-point simulators.
			var runner *mpi.Runner
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				r, err := s.measure(points[i], &runner)
				if err != nil {
					fail(fmt.Errorf("sweep point %d (%v): %w", i, points[i], err))
					return
				}
				mu.Lock()
				results[i] = r
				done++
				if s.Progress != nil {
					s.Progress(done, len(points), r)
				}
				mu.Unlock()
			}
		}()
	}
	// Feed indices until the grid is exhausted or the context dies; the
	// select keeps the feeder from blocking forever once workers bail.
feed:
	for i := range points {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// measure serves one point, through the cache when one is attached. The
// worker's Runner is created on the first measured point and reused for
// the rest of that worker's share of the grid.
func (s Sweep) measure(pt Point, runner **mpi.Runner) (Result, error) {
	var key string
	if s.Cache != nil {
		key = cacheKey(s.Profile, pt, s.Settings)
		if m, ok := s.Cache.get(key); ok {
			s.Metrics.Counter("sweep_points_cached_total").Inc()
			return Result{Point: pt, Meas: m, Cached: true}, nil
		}
	}
	if *runner == nil {
		r, err := newProfileRunner(s.Profile, s.Metrics)
		if err != nil {
			return Result{}, err
		}
		*runner = r
	}
	var (
		m   Measurement
		err error
	)
	switch pt.Kind {
	case PointBcast:
		m, err = MeasureBcastOn(*runner, s.Profile, pt.Procs, pt.Alg, pt.MsgBytes, pt.SegSize, s.Settings)
	case PointBcastThenGather:
		m, err = MeasureBcastThenGatherOn(*runner, s.Profile, pt.Procs, pt.Alg, pt.MsgBytes, pt.SegSize, pt.GatherBytes, s.Settings)
	default:
		err = fmt.Errorf("experiment: unknown point kind %v", pt.Kind)
	}
	if err != nil {
		return Result{}, err
	}
	s.Metrics.Counter("sweep_points_measured_total").Inc()
	if s.Cache != nil {
		s.Cache.put(key, m)
	}
	return Result{Point: pt, Meas: m}, nil
}

// BcastGrid builds the (message size × algorithm) cross product at a fixed
// communicator and segment size, sizes-major: all algorithms of sizes[0]
// first, matching how the sweep tables are printed.
func BcastGrid(procs int, algs []coll.BcastAlgorithm, sizes []int, segSize int) []Point {
	points := make([]Point, 0, len(sizes)*len(algs))
	for _, m := range sizes {
		for _, alg := range algs {
			points = append(points, Point{Kind: PointBcast, Alg: alg, Procs: procs, MsgBytes: m, SegSize: segSize})
		}
	}
	return points
}

// cacheKeyBlob is the canonical serialisation hashed into a cache key. It
// spells out every input that determines a measurement — the full cluster
// profile (including the simulator's noise seed), the normalised
// measurement settings, and the point — so any change to any of them
// produces a different key. Algorithms are keyed by name, keeping keys
// stable across enum reorderings.
type cacheKeyBlob struct {
	Version  int
	Profile  cluster.Profile
	Settings Settings
	Kind     Kind
	Alg      string
	Procs    int
	MsgBytes int
	SegSize  int
	Gather   int
}

// cacheKeyVersion invalidates every existing cache entry when the
// measurement methodology or the simulator's timing model changes
// incompatibly; bump it on such changes.
const cacheKeyVersion = 1

func cacheKey(pr cluster.Profile, pt Point, set Settings) string {
	blob, err := json.Marshal(cacheKeyBlob{
		Version:  cacheKeyVersion,
		Profile:  pr,
		Settings: set.withDefaults(),
		Kind:     pt.Kind,
		Alg:      pt.Alg.String(),
		Procs:    pt.Procs,
		MsgBytes: pt.MsgBytes,
		SegSize:  pt.SegSize,
		Gather:   pt.GatherBytes,
	})
	if err != nil {
		// Every field is a plain value; Marshal cannot fail on them.
		panic(fmt.Sprintf("experiment: cache key: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Cache is a content-addressed measurement store shared by sweeps. Keys
// cover the complete experiment identity, so a cache never returns a
// measurement for a different profile, point, or methodology — reusing
// one cache across clusters and tools is safe.
//
// A Cache always holds entries in memory; NewDiskCache additionally
// persists each entry as a JSON file named <key>.json in a directory, so
// separate process invocations (fitparams, then decisiongen over the same
// grid) skip already-measured points. All methods are safe for concurrent
// use.
type Cache struct {
	mu  sync.Mutex
	mem map[string]Measurement
	dir string
}

// NewCache returns an in-memory cache.
func NewCache() *Cache {
	return &Cache{mem: make(map[string]Measurement)}
}

// NewDiskCache returns a cache backed by dir, creating it if necessary.
func NewDiskCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: cache dir: %w", err)
	}
	return &Cache{mem: make(map[string]Measurement), dir: dir}, nil
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

func (c *Cache) get(key string) (Measurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.mem[key]; ok {
		return m, true
	}
	if c.dir == "" {
		return Measurement{}, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return Measurement{}, false
	}
	var m Measurement
	if err := json.Unmarshal(data, &m); err != nil {
		// A truncated or foreign file is treated as a miss; the fresh
		// measurement will overwrite it.
		return Measurement{}, false
	}
	c.mem[key] = m
	return m, true
}

func (c *Cache) put(key string, m Measurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = m
	if c.dir == "" {
		return
	}
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	// Write-then-rename so a concurrent reader never sees a torn file.
	tmp := filepath.Join(c.dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}
