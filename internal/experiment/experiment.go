package experiment

import (
	"fmt"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/simnet"
	"mpicollperf/internal/stats"
)

// Mode selects what a repetition's sample measures.
type Mode int

const (
	// RootTime samples the root's local duration of the operation.
	RootTime Mode = iota
	// Completion samples the barrier-compensated global completion time.
	Completion
)

// Engine selects how the repetitions of a measurement are executed.
type Engine int

const (
	// EngineAuto (the default) captures the first repetition under the
	// full scheduler, validates the captured plan with an echo run (the
	// program re-executed against replayed clocks, its operation stream
	// byte-compared to the plan), and re-times the remaining repetitions
	// with the plan-replay engine, falling back to the scheduler when the
	// structure diverges. Results are bit-identical to EngineScheduler
	// either way.
	EngineAuto Engine = iota
	// EngineScheduler runs every repetition under the full MPI scheduler.
	EngineScheduler
	// EngineReplay is EngineAuto without the fallback: a measurement whose
	// structure varies across repetitions fails with an error. Useful for
	// asserting that the fast path is actually taken.
	EngineReplay
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineScheduler:
		return "scheduler"
	case EngineReplay:
		return "replay"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto":
		return EngineAuto, nil
	case "scheduler":
		return EngineScheduler, nil
	case "replay":
		return EngineReplay, nil
	default:
		return 0, fmt.Errorf("experiment: unknown engine %q (auto, scheduler, replay)", s)
	}
}

// FallbackReason says why a measurement that was eligible for the replay
// engine ran under the scheduler instead. The empty reason means no
// fallback happened (replay was used, or the scheduler engine was forced).
type FallbackReason string

const (
	// FallbackNone: the replay engine was used (or was never attempted
	// because the scheduler engine was forced).
	FallbackNone FallbackReason = ""
	// FallbackPayload: the program carries real payload bytes, which an
	// echo validation run cannot deliver.
	FallbackPayload FallbackReason = "payload"
	// FallbackMarkInOp: the operation itself calls Mark, so the replay
	// cannot attribute mark clocks to repetition boundaries.
	FallbackMarkInOp FallbackReason = "mark-in-op"
	// FallbackPlan: the captured repetition does not compile into (or
	// replay as) a self-contained plan.
	FallbackPlan FallbackReason = "plan"
	// FallbackEchoDivergence: the echo run's operation stream diverged
	// from the plan — the program's structure depends on the jitter drawn.
	FallbackEchoDivergence FallbackReason = "echo-divergence"
	// FallbackTimeVarying: the network carries a time-windowed
	// perturbation (a brownout), whose effective parameters depend on
	// virtual time; a captured plan cannot be re-timed under it.
	FallbackTimeVarying FallbackReason = "time-varying-perturbation"
	// FallbackRebindDivergence: the point's operation stream diverged from
	// its structure class's plan template during a rebind pass
	// (mpi.Runner.Rebind); the point was re-measured through the full
	// capture path. The measurement still ran on the replay engine, so
	// this reason appears only in the metrics registry, never on a
	// Measurement.
	FallbackRebindDivergence FallbackReason = "rebind-divergence"
)

// Settings controls the adaptive repetition loop.
type Settings struct {
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Precision is the maximum CI half-width relative to the mean at which
	// the sample is accepted (default 0.025, the paper's 2.5%).
	Precision float64
	// MinReps and MaxReps bound the number of measured repetitions
	// (defaults 5 and 100).
	MinReps, MaxReps int
	// Warmup is the number of unmeasured leading repetitions (default 1).
	Warmup int
	// Engine selects the execution engine (default EngineAuto). The
	// engine never changes measured values — replay is bit-identical to
	// the scheduler, with an automatic fallback — so it is excluded from
	// serialised forms (measurement cache keys in particular).
	Engine Engine `json:"-"`
}

// DefaultSettings returns the paper's methodology parameters.
func DefaultSettings() Settings {
	return Settings{Confidence: 0.95, Precision: 0.025, MinReps: 5, MaxReps: 100, Warmup: 1}
}

func (s Settings) withDefaults() Settings {
	d := DefaultSettings()
	if s.Confidence <= 0 || s.Confidence >= 1 {
		s.Confidence = d.Confidence
	}
	if s.Precision <= 0 {
		s.Precision = d.Precision
	}
	if s.MinReps < 2 {
		s.MinReps = d.MinReps
	}
	if s.MaxReps < s.MinReps {
		s.MaxReps = d.MaxReps
		if s.MaxReps < s.MinReps {
			s.MaxReps = s.MinReps
		}
	}
	if s.Warmup < 0 {
		// A zero-value Settings means "no warmup"; warmup is opt-in via
		// DefaultSettings or an explicit value.
		s.Warmup = 0
	}
	return s
}

// Measurement is the outcome of one adaptive measurement.
type Measurement struct {
	// Mean is the sample mean in virtual seconds.
	Mean float64
	// CI is the Student-t confidence interval of the mean.
	CI stats.ConfidenceInterval
	// Reps is the number of measured repetitions.
	Reps int
	// Converged reports whether the precision target was met within
	// MaxReps.
	Converged bool
	// NormalityP is the Jarque-Bera p-value of the sample (small values
	// reject normality).
	NormalityP float64
	// Lag1 is the lag-1 autocorrelation of the repetition sequence.
	Lag1 float64
	// Samples holds the raw repetition times.
	Samples []float64
	// Fallback records why the replay engine was not used (empty when it
	// was, or when the scheduler engine was forced). It is observability
	// metadata, not part of the measured value: samples are bit-identical
	// either way, so it is excluded from serialised forms (a measurement
	// loaded from the disk cache always reports no fallback).
	Fallback FallbackReason `json:"-"`
}

// Op is one invocation of the operation under measurement, executed by
// every rank.
type Op func(p *mpi.Proc)

// Metric names recorded by MeasureOn into the Runner's registry
// (mpi.Options.Metrics). Labelled names are precomputed so the hot path
// never rebuilds them.
var (
	mRepsReplay      = obs.Name("experiment_reps_total", "engine", "replay")
	mRepsScheduler   = obs.Name("experiment_reps_total", "engine", "scheduler")
	mReplayTransfers = "experiment_replay_transfers_total"
	mPlanTemplates   = "experiment_plan_templates_total"
	mPlanRebinds     = "experiment_plan_rebinds_total"
	// mCaptureDedup counts captures avoided by single-flight election: a
	// worker that blocked on another worker's in-flight capture of the
	// same structure class and came back holding the published template.
	// Without the single-flight layer each of those would have been a
	// duplicate scheduler capture (≈3.3× the rebind cost it pays instead).
	mCaptureDedup = "experiment_sweep_capture_dedup_total"
	// mSingleFlightWait times how long blocked workers waited on an
	// in-flight capture (obs.Registry.Span naming: _seconds histogram).
	mSingleFlightWait = "experiment_sweep_singleflight_wait_seconds"
	mFallbacksByWhy   = map[FallbackReason]string{}
	fallbackReasonSet = []FallbackReason{
		FallbackPayload, FallbackMarkInOp, FallbackPlan,
		FallbackEchoDivergence, FallbackTimeVarying,
		FallbackRebindDivergence,
	}
)

func init() {
	for _, why := range fallbackReasonSet {
		mFallbacksByWhy[why] = obs.Name("experiment_fallbacks_total", "reason", string(why))
	}
}

// Measure runs op repeatedly on nprocs ranks over net until the CI
// criterion is met, and returns the measurement.
//
// The repetition loop runs inside a single simulated MPI program: the root
// collects samples and decides whether to continue; the decision is shared
// with the other ranks through a flag written by the root strictly before
// a barrier that the others read strictly after (the runtime's scheduler
// provides the necessary happens-before edges).
func Measure(net *simnet.Network, nprocs int, set Settings, mode Mode, op Op) (Measurement, error) {
	return MeasureOn(mpi.NewRunnerOn(net, mpi.Options{}), nprocs, set, mode, op)
}

// planClass identifies a measurement's structure class for the plan
// template cache: key is the class key (e.g. coll.BcastClassKey) and
// store is where the class's template lives. The zero value disables
// templating: MeasureOn captures and replays as before. With a class
// attached, the first measured point of a class publishes its validated
// plan as the class template, and every later point of the class rebinds
// the template goroutine-free (mpi.Runner.Rebind) instead of capturing
// under the scheduler — with bit-identical samples either way.
type planClass struct {
	key   string
	store *mpi.TemplateStore
}

// enabled reports whether the class can consult a template store.
func (c planClass) enabled() bool { return c.store != nil && c.key != "" }

// MeasureOn is Measure on a reusable Runner: callers measuring many
// points on the same platform (the sweep engine, the calibration loops)
// keep one warm Runner per worker instead of rebuilding scheduler state
// for every point. Results are bit-identical to Measure on the Runner's
// network.
//
// Settings.Engine selects how repetitions execute: the default (auto)
// runs the first repetition under the scheduler while capturing its
// execution plan, and — once an echo run has validated that the
// program's structure is plan-stable — re-times the remaining
// repetitions with the allocation-free replay engine, producing
// bit-identical samples at a fraction of the cost.
func MeasureOn(r *mpi.Runner, nprocs int, set Settings, mode Mode, op Op) (Measurement, error) {
	return measureOnClass(r, nprocs, set, mode, op, planClass{})
}

// measureOnClass is MeasureOn with an optional structure class attached
// (the plan-template fast path; see planClass).
func measureOnClass(r *mpi.Runner, nprocs int, set Settings, mode Mode, op Op, cls planClass) (Measurement, error) {
	set = set.withDefaults()
	m := r.Metrics()
	if set.Engine == EngineScheduler {
		meas, err := measureScheduler(r, nprocs, set, mode, op)
		if err == nil {
			m.Counter(mRepsScheduler).Add(int64(meas.Reps))
		}
		return meas, err
	}
	why := FallbackNone
	if r.Network().ReplayInvariant() {
		var release func() // non-nil iff this call leads its class's capture flight
		if cls.enabled() {
			// Single-flight template resolution: either the class's
			// template is published (rebind it), or this call is elected
			// its capture leader (fall through to the capture path, whose
			// Put completes the flight), or another worker is capturing it
			// right now (block until it publishes, then rebind). release
			// is non-nil exactly for the leader; deferring it guarantees
			// the waiters are unblocked on every exit path — it is a no-op
			// once the template is published.
			var tpl *mpi.Plan
			var waited time.Duration
			tpl, release, waited = cls.store.Acquire(cls.key)
			if release != nil {
				defer release()
			}
			if waited > 0 {
				m.Histogram(mSingleFlightWait).Observe(waited.Seconds())
				if tpl != nil {
					m.Counter(mCaptureDedup).Inc()
				}
			}
			if tpl != nil {
				meas, rerr := measureRebound(r, nprocs, set, mode, op, tpl)
				if rerr == nil {
					m.Counter(mPlanRebinds).Inc()
					m.Counter(mRepsReplay).Add(int64(meas.Reps))
					return meas, nil
				}
				// The point's structure diverged from its class template
				// (or the template no longer fits the network): re-measure
				// through the full capture path, which also refreshes the
				// template. Replay is still used, so this fallback is a
				// metrics-only event.
				m.Counter(mFallbacksByWhy[FallbackRebindDivergence]).Inc()
			}
		}
		meas, reason, err := measureReplay(r, nprocs, set, mode, op, cls)
		if err != nil {
			return Measurement{}, err
		}
		if reason == FallbackNone {
			m.Counter(mRepsReplay).Add(int64(meas.Reps))
			return meas, nil
		}
		why = reason
		if release != nil {
			// The class cannot be templated (payload, marks, plan shape):
			// abandon the flight now, before the slow scheduler rerun
			// below, so same-class waiters don't stall behind it.
			release()
		}
	} else {
		// A time-windowed perturbation makes the effective timing depend on
		// virtual time; don't even capture.
		why = FallbackTimeVarying
	}
	if set.Engine == EngineReplay {
		return Measurement{}, fmt.Errorf("experiment: replay engine: cannot replay this measurement (%s); use the scheduler engine", why)
	}
	m.Counter(mFallbacksByWhy[why]).Inc()
	meas, err := measureScheduler(r, nprocs, set, mode, op)
	meas.Fallback = why
	if err == nil {
		m.Counter(mRepsScheduler).Add(int64(meas.Reps))
	}
	return meas, err
}

// measureScheduler is the full-scheduler repetition loop: one simulated
// MPI program whose root collects samples and decides whether to
// continue; the decision is shared with the other ranks through a flag
// written by the root strictly before a barrier that the others read
// strictly after (the runtime's scheduler provides the necessary
// happens-before edges).
func measureScheduler(r *mpi.Runner, nprocs int, set Settings, mode Mode, op Op) (Measurement, error) {
	var (
		meas Measurement
		stop bool
	)
	// Size the sample buffer for the worst case up front: the append in
	// the hot loop then never regrows, and a sweep's measurement loop
	// allocates one slice per point instead of a regrowth ladder.
	meas.Samples = make([]float64, 0, set.MaxReps)
	_, err := r.Run(nprocs, func(p *mpi.Proc) error {
		root := p.Rank() == 0
		// Calibrate the (deterministic) barrier cost.
		p.Barrier()
		t0 := p.Now()
		p.Barrier()
		barrierCost := p.Now() - t0

		for rep := 0; ; rep++ {
			p.Barrier() // open: align all ranks
			start := p.Now()
			op(p)
			var sample float64
			switch mode {
			case Completion:
				p.Barrier() // close: wait for global completion
				sample = p.Now() - start - barrierCost
			default:
				sample = p.Now() - start
			}
			if root && rep >= set.Warmup {
				meas.Samples = append(meas.Samples, sample)
				n := len(meas.Samples)
				if n >= set.MinReps {
					ci, err := stats.MeanCI(meas.Samples, set.Confidence)
					converged := err == nil && ci.RelativeError() <= set.Precision
					if converged || n >= set.MaxReps {
						meas.CI = ci
						meas.Converged = converged
						stop = true
					}
				}
			}
			p.Barrier() // decide: publish the root's stop flag
			if stop {
				return nil
			}
		}
	})
	if err != nil {
		return Measurement{}, err
	}
	return finishMeasurement(meas), nil
}

func finishMeasurement(meas Measurement) Measurement {
	meas.Mean = stats.Mean(meas.Samples)
	meas.Reps = len(meas.Samples)
	_, meas.NormalityP = stats.JarqueBera(meas.Samples)
	meas.Lag1 = stats.Lag1Autocorrelation(meas.Samples)
	return meas
}

// replayLanes bounds how many repetitions one replay batch re-times; the
// jitter for the whole batch is drawn up front and the mark buffers are
// lane-major (see mpi.Replayer).
const replayLanes = 8

// measureReplay is the capture-then-replay repetition loop. It executes
// repetition 0 under the scheduler in a capturing program whose root
// brackets the repetition with marks, compiles the repetition into a
// Plan, replays repetition 1, and validates the plan with an echo run:
// the repetition's closures re-executed against the replayed clocks,
// every submitted operation byte-compared with the plan (mpi.EchoRun).
// The echo proves the program's structure does not depend on the jitter
// drawn, so repetitions 2..N are re-timed by the same mpi.Replayer,
// which continues the captured program's exact state (clocks, NIC ports,
// noise-stream position). The sample sequence, and therefore the
// Measurement, is bit-identical to measureScheduler's.
//
// A non-empty reason means the measurement belongs to the scheduler
// engine — the echo detected structural divergence, the program carries
// payload bytes (which an echo cannot deliver), or the plan does not
// close over a repetition — and the caller reruns it there.
//
// When a structure class is attached, the plan is published to the
// class's template store once the echo run has validated it, so later
// points of the class rebind it instead of capturing.
func measureReplay(r *mpi.Runner, nprocs int, set Settings, mode Mode, op Op, cls planClass) (meas Measurement, reason FallbackReason, err error) {
	var (
		captured    float64
		barrierCost float64
	)
	res, cap, err := r.RunCapture(nprocs, func(p *mpi.Proc) error {
		root := p.Rank() == 0
		// Calibrate the (deterministic) barrier cost, as measureScheduler
		// does.
		p.Barrier()
		t0 := p.Now()
		p.Barrier()
		bc := p.Now() - t0

		if root {
			p.Mark() // repetition boundary
		}
		p.Barrier() // open: align all ranks
		start := p.Now()
		if root {
			p.Mark() // sample start
		}
		op(p)
		var sample float64
		switch mode {
		case Completion:
			p.Barrier() // close: wait for global completion
			sample = p.Now() - start - bc
		default:
			sample = p.Now() - start
		}
		if root {
			p.Mark() // sample end
			captured = sample
			barrierCost = bc
		}
		p.Barrier() // decide (kept so replayed repetitions chain exactly)
		return nil
	})
	if err != nil {
		return Measurement{}, FallbackNone, err
	}

	// Payload-carrying programs cannot be echo-validated (plans hold
	// structure, not data). The capturing root marked 3 points; anything
	// else means op itself calls Mark, which the replay cannot attribute.
	if cap.HasPayload() {
		return Measurement{}, FallbackPayload, nil
	}
	if cap.MarkCount() != 3 {
		return Measurement{}, FallbackMarkInOp, nil
	}
	// The plan spans everything after the boundary mark: open barrier,
	// sample marks, the operation, and the decide barrier — one complete
	// repetition, chaining into the next exactly as the scheduler's loop
	// iterations do.
	plan, perr := r.CompilePlan(cap, 0, -1)
	if perr != nil || plan.Marks() != 2 {
		return Measurement{}, FallbackPlan, nil
	}

	// Replicate the adaptive decision of the scheduler loop's root over
	// the sample sequence, captured then replayed. As in measureScheduler,
	// the sample buffer is sized for MaxReps once.
	meas.Samples = make([]float64, 0, set.MaxReps)
	stop := false
	push := func(sample float64) {
		meas.Samples = append(meas.Samples, sample)
		n := len(meas.Samples)
		if n >= set.MinReps {
			ci, err := stats.MeanCI(meas.Samples, set.Confidence)
			converged := err == nil && ci.RelativeError() <= set.Precision
			if converged || n >= set.MaxReps {
				meas.CI = ci
				meas.Converged = converged
				stop = true
			}
		}
	}
	if set.Warmup == 0 {
		push(captured)
	}
	rep := 1
	if !stop {
		lanes := replayLanes
		if rem := set.Warmup + set.MaxReps - rep; rem < lanes {
			lanes = rem
		}
		if lanes < 1 {
			// The scheduler loop would already have stopped; defensive.
			return Measurement{}, FallbackPlan, nil
		}
		// The Runner's recycled replayer: bit-identical to a fresh
		// mpi.NewReplayer, without rebuilding the lane buffers per point.
		rp, rerr := r.NewReplayer(plan, res.FinishTimes, lanes)
		if rerr != nil {
			return Measurement{}, FallbackNone, rerr
		}
		// Replay repetition 1 alone, then echo-validate the plan against
		// its clocks before trusting any replayed sample.
		marks, mok := rp.Replay(1)
		if !mok {
			return Measurement{}, FallbackPlan, nil
		}
		eerr := r.EchoRun(plan, rp.EchoClocks(), res.FinishTimes, func(p *mpi.Proc) error {
			root := p.Rank() == 0
			p.Barrier()
			if root {
				p.Mark()
			}
			op(p)
			if mode == Completion {
				p.Barrier()
			}
			if root {
				p.Mark()
			}
			p.Barrier()
			return nil
		})
		if eerr != nil {
			return Measurement{}, FallbackEchoDivergence, nil
		}
		// The plan is validated; later repetitions need no echo clocks.
		rp.DiscardEchoClocks()
		// Publish the validated plan as its structure class's template
		// (Put clones, so the Runner's recycled plan buffer is safe to
		// keep using below).
		if cls.enabled() {
			cls.store.Put(cls.key, plan)
			r.Metrics().Counter(mPlanTemplates).Inc()
		}
		sample := marks[1] - marks[0]
		if mode == Completion {
			sample -= barrierCost
		}
		if rep >= set.Warmup {
			push(sample)
		}
		rep++
		// Repetitions up to the first possible convergence decision can be
		// batched; after that, each repetition may be the last.
		firstDecision := set.Warmup + set.MinReps - 1
		for !stop {
			need := 1
			if rep <= firstDecision {
				need = firstDecision - rep + 1
			}
			k := need
			if k > lanes {
				k = lanes
			}
			if rem := set.Warmup + set.MaxReps - rep; rem < k {
				k = rem
			}
			if k < 1 {
				return Measurement{}, FallbackPlan, nil
			}
			marks, mok := rp.Replay(k)
			if !mok {
				return Measurement{}, FallbackPlan, nil
			}
			for l := 0; l < k && !stop; l++ {
				sample := marks[l*2+1] - marks[l*2]
				if mode == Completion {
					sample -= barrierCost
				}
				if rep >= set.Warmup {
					push(sample)
				}
				rep++
			}
		}
	}
	if m := r.Metrics(); m != nil && rep > 1 {
		// Repetitions 1..rep-1 were re-timed by the replayer, bypassing the
		// scheduler; each walks the plan's send events once.
		m.Counter(mReplayTransfers).Add(int64(rep-1) * int64(plan.Sends()))
	}
	return finishMeasurement(meas), FallbackNone, nil
}

// measureRebound is the plan-template fast path: the point's repetition
// closures are rebound onto its structure class's template
// (mpi.Runner.Rebind) — a goroutine-free structural pass that harvests
// the new byte counts and recomputes link timings — and then *every*
// repetition, including the first, is re-timed by the Replayer. No
// scheduler run happens at all.
//
// Bit-identicality with the capture path: a capturing run's preamble (two
// calibration barriers from clock zero) consumes no jitter and leaves
// every rank's clock at exactly twice the analytical barrier cost, so
// replaying the rebound plan from those clocks, idle ports, and a freshly
// reseeded noise stream performs literally the same floating-point
// arithmetic as the scheduler run of repetition 0 — and the chained lanes
// reproduce repetitions 1..N exactly as the capture path replays them.
// The sample sequence, and hence the Measurement, is bit-identical to
// both other engines.
//
// An error means the point diverged from its template (or the template
// does not fit the Runner's network); the caller falls back to the full
// capture path, which re-publishes a fresh template.
func measureRebound(r *mpi.Runner, nprocs int, set Settings, mode Mode, op Op, tpl *mpi.Plan) (Measurement, error) {
	if tpl.Procs() != nprocs {
		return Measurement{}, fmt.Errorf("experiment: rebind: template spans %d ranks, point has %d", tpl.Procs(), nprocs)
	}
	// Reset first: the rebind pass recomputes link timings from the
	// network's quiet state, and the replay below must consume the noise
	// stream from the exact position a capturing run would have.
	r.Network().Reset()
	plan, err := r.Rebind(tpl, func(p *mpi.Proc) error {
		root := p.Rank() == 0
		p.Barrier() // open: align all ranks
		if root {
			p.Mark() // sample start
		}
		op(p)
		if mode == Completion {
			p.Barrier() // close: wait for global completion
		}
		if root {
			p.Mark() // sample end
		}
		p.Barrier() // decide (chains repetitions exactly as captured)
		return nil
	})
	if err != nil {
		return Measurement{}, err
	}
	// The capturing preamble's two calibration barriers release all ranks
	// at exactly bc and then bc+bc; start the replay from those clocks.
	bc := plan.BarrierCost()
	start := make([]float64, nprocs)
	for i := range start {
		start[i] = bc + bc
	}

	var meas Measurement
	meas.Samples = make([]float64, 0, set.MaxReps)
	stop := false
	push := func(sample float64) {
		meas.Samples = append(meas.Samples, sample)
		n := len(meas.Samples)
		if n >= set.MinReps {
			ci, err := stats.MeanCI(meas.Samples, set.Confidence)
			converged := err == nil && ci.RelativeError() <= set.Precision
			if converged || n >= set.MaxReps {
				meas.CI = ci
				meas.Converged = converged
				stop = true
			}
		}
	}
	lanes := replayLanes
	if rem := set.Warmup + set.MaxReps; rem < lanes {
		lanes = rem
	}
	if lanes < 1 {
		return Measurement{}, fmt.Errorf("experiment: rebind: no repetitions to replay")
	}
	rp, err := r.NewReplayer(plan, start, lanes)
	if err != nil {
		return Measurement{}, err
	}
	// The template was echo-validated when it was captured; no echo run is
	// needed for a structurally identical rebind.
	rp.DiscardEchoClocks()
	rep := 0
	firstDecision := set.Warmup + set.MinReps - 1
	for !stop {
		need := 1
		if rep <= firstDecision {
			need = firstDecision - rep + 1
		}
		k := need
		if k > lanes {
			k = lanes
		}
		if rem := set.Warmup + set.MaxReps - rep; rem < k {
			k = rem
		}
		if k < 1 {
			return Measurement{}, fmt.Errorf("experiment: rebind: replay budget exhausted before a decision")
		}
		marks, mok := rp.Replay(k)
		if !mok {
			return Measurement{}, fmt.Errorf("experiment: rebind: rebound plan does not close over a repetition")
		}
		for l := 0; l < k && !stop; l++ {
			sample := marks[l*2+1] - marks[l*2]
			if mode == Completion {
				sample -= bc
			}
			if rep >= set.Warmup {
				push(sample)
			}
			rep++
		}
	}
	if m := r.Metrics(); m != nil {
		// Every repetition was re-timed by the replayer.
		m.Counter(mReplayTransfers).Add(int64(rep) * int64(plan.Sends()))
	}
	return finishMeasurement(meas), nil
}

// MeasureBcast measures one broadcast configuration on a cluster profile:
// algorithm alg broadcasting m bytes from rank 0 to nprocs ranks with the
// given segment size, in Completion mode (the time until every rank holds
// the message, which is what the paper's comparison figures plot).
func MeasureBcast(pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize int, set Settings) (Measurement, error) {
	r, err := newProfileRunner(pr, nil)
	if err != nil {
		return Measurement{}, err
	}
	return MeasureBcastOn(r, pr, nprocs, alg, m, segSize, set)
}

// MeasureBcastOn is MeasureBcast on a reusable Runner built from pr (see
// newProfileRunner); the sweep engine keeps one warm Runner per worker.
func MeasureBcastOn(r *mpi.Runner, pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize int, set Settings) (Measurement, error) {
	return measureBcastOn(r, pr, nprocs, alg, m, segSize, set, nil)
}

// measureBcastOn is MeasureBcastOn with an optional plan-template store:
// when tmpl is non-nil the point carries its structure-class key
// (coll.BcastClassKey), so the first point of each (algorithm,
// communicator, segment-count) class captures under the scheduler and
// every later point rebinds that class's template goroutine-free.
func measureBcastOn(r *mpi.Runner, pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize int, set Settings, tmpl *mpi.TemplateStore) (Measurement, error) {
	if nprocs > pr.Nodes {
		return Measurement{}, fmt.Errorf("experiment: %d procs exceed %s's %d nodes", nprocs, pr.Name, pr.Nodes)
	}
	cls := planClass{}
	if tmpl != nil {
		cls = planClass{key: coll.BcastClassKey(alg, nprocs, m, segSize), store: tmpl}
	}
	return measureOnClass(r, nprocs, set, Completion, func(p *mpi.Proc) {
		coll.Bcast(p, alg, 0, coll.Synthetic(m), segSize)
	}, cls)
}

// newProfileRunner builds a reusable Runner on a fresh network of the
// profile's full size, so one Runner serves every communicator size the
// profile admits. A non-nil registry is threaded into the Runner's
// Options, where both the Runner and MeasureOn record into it.
func newProfileRunner(pr cluster.Profile, m *obs.Registry) (*mpi.Runner, error) {
	net, err := pr.Network()
	if err != nil {
		return nil, err
	}
	return mpi.NewRunnerOn(net, mpi.Options{Metrics: m}), nil
}

// MeasureBcastThenGather measures the paper's §4.2 communication
// experiment: the modelled broadcast of m bytes followed by a
// linear-without-synchronisation gather of mg bytes per rank onto the
// root, timed on the root (the experiment starts and finishes there).
func MeasureBcastThenGather(pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize, mg int, set Settings) (Measurement, error) {
	r, err := newProfileRunner(pr, nil)
	if err != nil {
		return Measurement{}, err
	}
	return MeasureBcastThenGatherOn(r, pr, nprocs, alg, m, segSize, mg, set)
}

// MeasureBcastThenGatherOn is MeasureBcastThenGather on a reusable Runner
// built from pr.
func MeasureBcastThenGatherOn(r *mpi.Runner, pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize, mg int, set Settings) (Measurement, error) {
	return measureBcastThenGatherOn(r, pr, nprocs, alg, m, segSize, mg, set, nil)
}

// measureBcastThenGatherOn is MeasureBcastThenGatherOn with an optional
// plan-template store — a shim over the general MeasureComposedClass, kept
// because the §4.2 experiment is the sweep engine's PointBcastThenGather
// kind. The linear-without-synchronisation gather's structure is a
// function of the communicator size alone (its per-rank bytes are
// harvested by the rebind), so the class key is the broadcast's with a
// gather suffix.
func measureBcastThenGatherOn(r *mpi.Runner, pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize, mg int, set Settings, tmpl *mpi.TemplateStore) (Measurement, error) {
	key := ""
	if tmpl != nil {
		key = coll.BcastClassKey(alg, nprocs, m, segSize) + gatherClassSuffix
	}
	return MeasureComposedClass(r, pr, nprocs, set, RootTime, key, tmpl,
		func(p *mpi.Proc) {
			coll.Bcast(p, alg, 0, coll.Synthetic(m), segSize)
		},
		func(p *mpi.Proc) {
			if p.Rank() == 0 {
				coll.Gather(p, coll.GatherLinearNoSync, 0, coll.Synthetic(mg*p.Size()), mg)
			} else {
				coll.Gather(p, coll.GatherLinearNoSync, 0, coll.Synthetic(mg), mg)
			}
		})
}

// MeasureLinearBcast measures the non-blocking linear broadcast of one
// segment to nprocs ranks in Completion mode — the T2(P) of the paper's
// γ(P) estimation procedure (§4.1).
func MeasureLinearBcast(pr cluster.Profile, nprocs, segSize int, set Settings) (Measurement, error) {
	return MeasureBcast(pr, nprocs, coll.BcastLinear, segSize, 0, set)
}
