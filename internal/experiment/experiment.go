package experiment

import (
	"fmt"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/simnet"
	"mpicollperf/internal/stats"
)

// Mode selects what a repetition's sample measures.
type Mode int

const (
	// RootTime samples the root's local duration of the operation.
	RootTime Mode = iota
	// Completion samples the barrier-compensated global completion time.
	Completion
)

// Settings controls the adaptive repetition loop.
type Settings struct {
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Precision is the maximum CI half-width relative to the mean at which
	// the sample is accepted (default 0.025, the paper's 2.5%).
	Precision float64
	// MinReps and MaxReps bound the number of measured repetitions
	// (defaults 5 and 100).
	MinReps, MaxReps int
	// Warmup is the number of unmeasured leading repetitions (default 1).
	Warmup int
}

// DefaultSettings returns the paper's methodology parameters.
func DefaultSettings() Settings {
	return Settings{Confidence: 0.95, Precision: 0.025, MinReps: 5, MaxReps: 100, Warmup: 1}
}

func (s Settings) withDefaults() Settings {
	d := DefaultSettings()
	if s.Confidence <= 0 || s.Confidence >= 1 {
		s.Confidence = d.Confidence
	}
	if s.Precision <= 0 {
		s.Precision = d.Precision
	}
	if s.MinReps < 2 {
		s.MinReps = d.MinReps
	}
	if s.MaxReps < s.MinReps {
		s.MaxReps = d.MaxReps
		if s.MaxReps < s.MinReps {
			s.MaxReps = s.MinReps
		}
	}
	if s.Warmup < 0 {
		// A zero-value Settings means "no warmup"; warmup is opt-in via
		// DefaultSettings or an explicit value.
		s.Warmup = 0
	}
	return s
}

// Measurement is the outcome of one adaptive measurement.
type Measurement struct {
	// Mean is the sample mean in virtual seconds.
	Mean float64
	// CI is the Student-t confidence interval of the mean.
	CI stats.ConfidenceInterval
	// Reps is the number of measured repetitions.
	Reps int
	// Converged reports whether the precision target was met within
	// MaxReps.
	Converged bool
	// NormalityP is the Jarque-Bera p-value of the sample (small values
	// reject normality).
	NormalityP float64
	// Lag1 is the lag-1 autocorrelation of the repetition sequence.
	Lag1 float64
	// Samples holds the raw repetition times.
	Samples []float64
}

// Op is one invocation of the operation under measurement, executed by
// every rank.
type Op func(p *mpi.Proc)

// Measure runs op repeatedly on nprocs ranks over net until the CI
// criterion is met, and returns the measurement.
//
// The repetition loop runs inside a single simulated MPI program: the root
// collects samples and decides whether to continue; the decision is shared
// with the other ranks through a flag written by the root strictly before
// a barrier that the others read strictly after (the runtime's scheduler
// provides the necessary happens-before edges).
func Measure(net *simnet.Network, nprocs int, set Settings, mode Mode, op Op) (Measurement, error) {
	return MeasureOn(mpi.NewRunnerOn(net, mpi.Options{}), nprocs, set, mode, op)
}

// MeasureOn is Measure on a reusable Runner: callers measuring many
// points on the same platform (the sweep engine, the calibration loops)
// keep one warm Runner per worker instead of rebuilding scheduler state
// for every point. Results are bit-identical to Measure on the Runner's
// network.
func MeasureOn(r *mpi.Runner, nprocs int, set Settings, mode Mode, op Op) (Measurement, error) {
	set = set.withDefaults()
	var (
		meas Measurement
		stop bool
	)
	_, err := r.Run(nprocs, func(p *mpi.Proc) error {
		root := p.Rank() == 0
		// Calibrate the (deterministic) barrier cost.
		p.Barrier()
		t0 := p.Now()
		p.Barrier()
		barrierCost := p.Now() - t0

		for rep := 0; ; rep++ {
			p.Barrier() // open: align all ranks
			start := p.Now()
			op(p)
			var sample float64
			switch mode {
			case Completion:
				p.Barrier() // close: wait for global completion
				sample = p.Now() - start - barrierCost
			default:
				sample = p.Now() - start
			}
			if root && rep >= set.Warmup {
				meas.Samples = append(meas.Samples, sample)
				n := len(meas.Samples)
				if n >= set.MinReps {
					ci, err := stats.MeanCI(meas.Samples, set.Confidence)
					converged := err == nil && ci.RelativeError() <= set.Precision
					if converged || n >= set.MaxReps {
						meas.CI = ci
						meas.Converged = converged
						stop = true
					}
				}
			}
			p.Barrier() // decide: publish the root's stop flag
			if stop {
				return nil
			}
		}
	})
	if err != nil {
		return Measurement{}, err
	}
	meas.Mean = stats.Mean(meas.Samples)
	meas.Reps = len(meas.Samples)
	_, meas.NormalityP = stats.JarqueBera(meas.Samples)
	meas.Lag1 = stats.Lag1Autocorrelation(meas.Samples)
	return meas, nil
}

// MeasureBcast measures one broadcast configuration on a cluster profile:
// algorithm alg broadcasting m bytes from rank 0 to nprocs ranks with the
// given segment size, in Completion mode (the time until every rank holds
// the message, which is what the paper's comparison figures plot).
func MeasureBcast(pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize int, set Settings) (Measurement, error) {
	r, err := newProfileRunner(pr)
	if err != nil {
		return Measurement{}, err
	}
	return MeasureBcastOn(r, pr, nprocs, alg, m, segSize, set)
}

// MeasureBcastOn is MeasureBcast on a reusable Runner built from pr (see
// newProfileRunner); the sweep engine keeps one warm Runner per worker.
func MeasureBcastOn(r *mpi.Runner, pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize int, set Settings) (Measurement, error) {
	if nprocs > pr.Nodes {
		return Measurement{}, fmt.Errorf("experiment: %d procs exceed %s's %d nodes", nprocs, pr.Name, pr.Nodes)
	}
	return MeasureOn(r, nprocs, set, Completion, func(p *mpi.Proc) {
		coll.Bcast(p, alg, 0, coll.Synthetic(m), segSize)
	})
}

// newProfileRunner builds a reusable Runner on a fresh network of the
// profile's full size, so one Runner serves every communicator size the
// profile admits.
func newProfileRunner(pr cluster.Profile) (*mpi.Runner, error) {
	net, err := pr.Network()
	if err != nil {
		return nil, err
	}
	return mpi.NewRunnerOn(net, mpi.Options{}), nil
}

// MeasureBcastThenGather measures the paper's §4.2 communication
// experiment: the modelled broadcast of m bytes followed by a
// linear-without-synchronisation gather of mg bytes per rank onto the
// root, timed on the root (the experiment starts and finishes there).
func MeasureBcastThenGather(pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize, mg int, set Settings) (Measurement, error) {
	r, err := newProfileRunner(pr)
	if err != nil {
		return Measurement{}, err
	}
	return MeasureBcastThenGatherOn(r, pr, nprocs, alg, m, segSize, mg, set)
}

// MeasureBcastThenGatherOn is MeasureBcastThenGather on a reusable Runner
// built from pr.
func MeasureBcastThenGatherOn(r *mpi.Runner, pr cluster.Profile, nprocs int, alg coll.BcastAlgorithm, m, segSize, mg int, set Settings) (Measurement, error) {
	if nprocs > pr.Nodes {
		return Measurement{}, fmt.Errorf("experiment: %d procs exceed %s's %d nodes", nprocs, pr.Name, pr.Nodes)
	}
	return MeasureOn(r, nprocs, set, RootTime, func(p *mpi.Proc) {
		coll.Bcast(p, alg, 0, coll.Synthetic(m), segSize)
		if p.Rank() == 0 {
			coll.Gather(p, coll.GatherLinearNoSync, 0, coll.Synthetic(mg*p.Size()), mg)
		} else {
			coll.Gather(p, coll.GatherLinearNoSync, 0, coll.Synthetic(mg), mg)
		}
	})
}

// MeasureLinearBcast measures the non-blocking linear broadcast of one
// segment to nprocs ranks in Completion mode — the T2(P) of the paper's
// γ(P) estimation procedure (§4.1).
func MeasureLinearBcast(pr cluster.Profile, nprocs, segSize int, set Settings) (Measurement, error) {
	return MeasureBcast(pr, nprocs, coll.BcastLinear, segSize, 0, set)
}
