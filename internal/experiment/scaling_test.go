package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/stats"
)

// scalingGrid is a mid-size Grisou grid (six algorithms × six sizes at 32
// nodes) — big enough that per-point work dominates per-sweep setup,
// small enough to measure twice per worker count in a test.
func scalingGrid(t testing.TB) (cluster.Profile, []Point) {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(32)
	if err != nil {
		t.Fatal(err)
	}
	sizes := stats.LogSpaceBytes(8192, 4<<20, 6)
	return pr, BcastGrid(pr.Nodes, coll.BcastAlgorithms(), sizes, pr.SegmentSize)
}

// TestSweepScalingNotSlower is the anti-scaling regression guard: adding
// workers to a replay-engine sweep must never cost wall-clock. On a
// single-core box extra workers cannot help, so the assertion is a
// generous "not slower" bound rather than a speedup target; the speedup
// curve itself is recorded by BenchmarkSweep into BENCH_sweepscale.json
// and gated by `make benchdiff`.
func TestSweepScalingNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing assertion; skipped under the race detector")
	}
	pr, grid := scalingGrid(t)
	set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1, Engine: EngineReplay}
	pool, err := NewRunnerPool(pr, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := func(workers int) time.Duration {
		sw := Sweep{Profile: pr, Settings: set, Workers: workers, Pool: pool}
		best := time.Duration(0)
		for i := 0; i < 3; i++ { // min of 3: first run also warms the pool
			start := time.Now()
			if _, err := sw.Run(context.Background(), grid); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	w1 := elapsed(1)
	w8 := elapsed(8)
	t.Logf("workers=1: %v, workers=8: %v (%.2fx)", w1, w8, float64(w1)/float64(w8))
	// 2x headroom over "equal": enough to absorb scheduler noise on a
	// loaded single-core CI box, tight enough that the old anti-scaling
	// regression (2x slower and worse) trips it.
	if w8 > 2*w1 {
		t.Fatalf("workers=8 sweep took %v, more than 2x the workers=1 %v", w8, w1)
	}
}

// TestSweepPoolBitIdenticalAndClamped checks the pooled sweep's two
// contracts: results are bit-identical to a pool-less sweep (across
// repeated Runs, reusing the now-warm Runners), and the effective worker
// count is clamped to the pool's capacity.
func TestSweepPoolBitIdenticalAndClamped(t *testing.T) {
	// Raise GOMAXPROCS so the pool-capacity clamp (not the core-count
	// clamp) decides the worker count, and so the concurrent sweep path
	// actually runs in parallel even on a single-core CI box.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	pr, err := cluster.Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	grid := BcastGrid(pr.Nodes, coll.BcastAlgorithms(), []int{8192, 1 << 20}, pr.SegmentSize)
	set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 8, Warmup: 1}

	want, err := Sweep{Profile: pr, Settings: set, Workers: 1}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}

	m := obs.NewRegistry()
	pool, err := NewRunnerPool(pr, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	sw := Sweep{Profile: pr, Settings: set, Workers: 8, Pool: pool, Metrics: m}
	for pass := 0; pass < 3; pass++ {
		got, err := sw.Run(context.Background(), grid)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Meas.Mean != want[i].Meas.Mean || got[i].Meas.Reps != want[i].Meas.Reps {
				t.Fatalf("pass %d point %d (%v): pooled mean %v (reps %d) != serial %v (reps %d)",
					pass, i, grid[i], got[i].Meas.Mean, got[i].Meas.Reps, want[i].Meas.Mean, want[i].Meas.Reps)
			}
		}
	}
	if got := m.Gauge("sweep_workers").Value(); got != 2 {
		t.Fatalf("sweep_workers = %v, want 2 (Workers=8 clamped to pool capacity)", got)
	}
	if created := m.Counter("mpi_runner_pool_created_total").Value(); created > 2 {
		t.Fatalf("pool built %d Runners across 3 sweeps, capacity is 2", created)
	}
	if inUse := m.Gauge("mpi_runner_pool_in_use").Value(); inUse != 0 {
		t.Fatalf("mpi_runner_pool_in_use = %v after sweeps returned, want 0", inUse)
	}
	if pending := m.Gauge("sweep_points_pending").Value(); pending != 0 {
		t.Fatalf("sweep_points_pending = %v after a complete sweep, want 0", pending)
	}
	if chunks := m.Counter("sweep_chunks_total").Value(); chunks == 0 {
		t.Fatal("sweep_chunks_total = 0; workers claimed no chunks")
	}
}

// TestCacheShardedConcurrent hammers one in-memory cache from many
// goroutines over overlapping keys: every get must return either a miss
// or the exact measurement put under that key, and the final entry count
// must equal the distinct keys written.
func TestCacheShardedConcurrent(t *testing.T) {
	c := NewCache()
	const keys, workers = 64, 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("key-%d", (w+i)%keys)
				want := float64((w + i) % keys)
				if m, ok := c.get(k); ok && m.Mean != want {
					errs <- fmt.Errorf("key %s: got mean %v, want %v", k, m.Mean, want)
					return
				}
				c.put(k, Measurement{Mean: want, Reps: 1})
				if m, ok := c.get(k); !ok || m.Mean != want {
					errs <- fmt.Errorf("key %s: lost own put (ok=%v mean=%v)", k, ok, m.Mean)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Len(); got != keys {
		t.Fatalf("Len() = %d, want %d", got, keys)
	}
}

// TestCacheShardSpread sanity-checks the stripe function: real sha256
// cache keys must land on more than a couple of the 16 shards.
func TestCacheShardSpread(t *testing.T) {
	pr := cluster.Grisou()
	c := NewCache()
	seen := make(map[*cacheShard]bool)
	for m := 1; m <= 64; m++ {
		key := cacheKey(pr, Point{Alg: coll.BcastAlgorithms()[0], Procs: 8, MsgBytes: m * 1024}, Settings{})
		seen[c.shard(key)] = true
	}
	if len(seen) < cacheShards/2 {
		t.Fatalf("64 keys landed on only %d/%d shards", len(seen), cacheShards)
	}
}
