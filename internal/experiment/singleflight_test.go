package experiment

import (
	"context"
	"runtime"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/stats"
)

// TestTemplateSingleFlight is the single-flight stress test (meaningful
// under -race): eight workers sweep a grid whose every point belongs to
// ONE structure class — BcastLinear is unsegmented, so BcastClassKey
// pins segs=1 and all sixteen message sizes share a class — and exactly
// one template capture may occur. Before single-flight election, each
// worker whose chunk started before the first capture published would
// re-capture the class (19.2ms wasted per duplicate vs a 5.8ms rebind)
// and race on TemplateStore.Put; now the class's first point is claimed
// by exactly one leader and everyone else rebinds, blocking briefly on
// the template future if they arrive while the capture is in flight.
func TestTemplateSingleFlight(t *testing.T) {
	// Raise GOMAXPROCS so the 8 workers actually run concurrently even on
	// a single-core CI box (Sweep.Run clamps workers to GOMAXPROCS).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	sizes := stats.LogSpaceBytes(8192, 1<<20, 16)
	grid := BcastGrid(pr.Nodes, []coll.BcastAlgorithm{coll.BcastLinear}, sizes, pr.SegmentSize)
	set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 8, Warmup: 1, Engine: EngineReplay}

	want, err := Sweep{Profile: pr, Settings: set, Workers: 1}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}

	m := obs.NewRegistry()
	sw := Sweep{Profile: pr, Settings: set, Workers: 8, Metrics: m}
	got, err := sw.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Meas.Mean != want[i].Meas.Mean || got[i].Meas.Reps != want[i].Meas.Reps {
			t.Fatalf("point %d (%v): concurrent mean %v (reps %d) != serial %v (reps %d)",
				i, grid[i], got[i].Meas.Mean, got[i].Meas.Reps, want[i].Meas.Mean, want[i].Meas.Reps)
		}
	}

	captures := m.Counter("experiment_plan_templates_total").Value()
	rebinds := m.Counter("experiment_plan_rebinds_total").Value()
	diverged := m.Counter(obs.Name("experiment_fallbacks_total", "reason", "rebind-divergence")).Value()
	if captures != 1 {
		t.Errorf("one structure class captured %d times under 8 workers, want exactly 1", captures)
	}
	if wantRebinds := int64(len(grid) - 1); rebinds != wantRebinds {
		t.Errorf("%d points rebound, want %d (every point but the capture)", rebinds, wantRebinds)
	}
	if diverged != 0 {
		t.Errorf("%d rebind divergences, want 0", diverged)
	}
	if groups := m.Gauge("experiment_sweep_class_groups").Value(); groups != 1 {
		t.Errorf("experiment_sweep_class_groups = %v, want 1", groups)
	}
	// Dedup counts the workers that arrived while the capture was still in
	// flight — scheduling-dependent, but never more than the rebound points.
	if dedup := m.Counter("experiment_sweep_capture_dedup_total").Value(); dedup > rebinds {
		t.Errorf("experiment_sweep_capture_dedup_total = %d > rebinds %d", dedup, rebinds)
	}
}

// TestSweepClassGroupedGridOrder pins the scheduler's output contract:
// class-grouped execution reorders the work (class leaders first, the
// rest in chunks) but the results slice still lines up with the input
// grid, index for index, identical to a serial sweep — deterministic
// grid-order results are what the goldens, the tables, and the fitting
// layers key on.
func TestSweepClassGroupedGridOrder(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	pr, err := cluster.Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	// Sizes-major grid over all six algorithms: points of the same class
	// (same alg, neighbouring sizes for unsegmented algs) are strided
	// apart, the exact interleaving the class grouping reshuffles.
	sizes := stats.LogSpaceBytes(8192, 1<<20, 4)
	grid := BcastGrid(pr.Nodes, coll.BcastAlgorithms(), sizes, pr.SegmentSize)
	set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 8, Warmup: 1}

	want, err := Sweep{Profile: pr, Settings: set, Workers: 1}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sweep{Profile: pr, Settings: set, Workers: 4}.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(grid) {
		t.Fatalf("got %d results for %d grid points", len(got), len(grid))
	}
	for i := range got {
		if got[i].Point != grid[i] {
			t.Fatalf("result %d is for point %v, want grid[%d] = %v", i, got[i].Point, i, grid[i])
		}
		if got[i].Meas.Mean != want[i].Meas.Mean || got[i].Meas.Reps != want[i].Meas.Reps {
			t.Fatalf("point %d (%v): grouped mean %v (reps %d) != serial %v (reps %d)",
				i, grid[i], got[i].Meas.Mean, got[i].Meas.Reps, want[i].Meas.Mean, want[i].Meas.Reps)
		}
	}
}
