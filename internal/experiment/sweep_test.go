package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
)

func sweepTestProfile(t *testing.T) cluster.Profile {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func sweepTestSettings() Settings {
	return Settings{Confidence: 0.95, Precision: 0.05, MinReps: 2, MaxReps: 4, Warmup: 0}
}

// sweepTestGrid is the full six-algorithm grid over a couple of sizes.
func sweepTestGrid(pr cluster.Profile) []Point {
	return BcastGrid(pr.Nodes, coll.BcastAlgorithms(), []int{4096, 65536}, pr.SegmentSize)
}

// marshalMeasurements canonicalises results for byte-identity comparison.
func marshalMeasurements(t *testing.T, res []Result) []byte {
	t.Helper()
	meas := make([]Measurement, len(res))
	for i, r := range res {
		meas[i] = r.Meas
	}
	data, err := json.Marshal(meas)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSweepMatchesSerial asserts the tentpole invariant: a concurrent
// sweep is byte-identical to calling the Measure* functions one point at
// a time, because every point runs on its own simulator.
func TestSweepMatchesSerial(t *testing.T) {
	pr := sweepTestProfile(t)
	set := sweepTestSettings()
	grid := sweepTestGrid(pr)

	var serial []Result
	for _, pt := range grid {
		meas, err := MeasureBcast(pr, pt.Procs, pt.Alg, pt.MsgBytes, pt.SegSize, set)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, Result{Point: pt, Meas: meas})
	}

	sw := Sweep{Profile: pr, Settings: set, Workers: 8}
	parallel, err := sw.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshalMeasurements(t, parallel), marshalMeasurements(t, serial); string(got) != string(want) {
		t.Fatalf("workers=8 sweep differs from the serial path:\n got %s\nwant %s", got, want)
	}
}

// TestSweepDeterministicAcrossWorkerCounts runs the same grid at
// workers=1 and workers=8 and requires byte-identical result slices.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	pr := sweepTestProfile(t)
	set := sweepTestSettings()
	grid := sweepTestGrid(pr)

	run := func(workers int) []byte {
		sw := Sweep{Profile: pr, Settings: set, Workers: workers}
		res, err := sw.Run(context.Background(), grid)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return marshalMeasurements(t, res)
	}
	if one, eight := run(1), run(8); string(one) != string(eight) {
		t.Fatalf("workers=1 and workers=8 disagree:\n  %s\nvs %s", one, eight)
	}
}

// TestSweepGridOrder checks results come back in grid order regardless of
// completion order.
func TestSweepGridOrder(t *testing.T) {
	pr := sweepTestProfile(t)
	grid := sweepTestGrid(pr)
	sw := Sweep{Profile: pr, Settings: sweepTestSettings(), Workers: 4}
	res, err := sw.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(grid) {
		t.Fatalf("got %d results for %d points", len(res), len(grid))
	}
	for i, r := range res {
		if r.Point != grid[i] {
			t.Fatalf("result %d is for %v, want %v", i, r.Point, grid[i])
		}
		if r.Meas.Reps == 0 {
			t.Fatalf("result %d (%v) was never measured", i, r.Point)
		}
	}
}

// TestSweepPropagatesFirstError plants an invalid point in the middle of
// the grid and expects Run to fail with a descriptive error instead of
// hanging or panicking.
func TestSweepPropagatesFirstError(t *testing.T) {
	pr := sweepTestProfile(t)
	grid := sweepTestGrid(pr)
	bad := Point{Kind: PointBcast, Alg: coll.BcastBinomial, Procs: pr.Nodes + 1, MsgBytes: 4096, SegSize: pr.SegmentSize}
	grid[len(grid)/2] = bad

	sw := Sweep{Profile: pr, Settings: sweepTestSettings(), Workers: 4}
	res, err := sw.Run(context.Background(), grid)
	if err == nil {
		t.Fatal("sweep with an invalid point succeeded")
	}
	if res != nil {
		t.Fatalf("failed sweep returned partial results: %v", res)
	}
	if !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("error %q does not describe the failing point", err)
	}
}

// TestSweepContextCancel cancels mid-sweep and requires a prompt error
// return with no leaked worker goroutines.
func TestSweepContextCancel(t *testing.T) {
	pr := sweepTestProfile(t)
	// A long grid so cancellation lands well before completion.
	sizes := make([]int, 40)
	for i := range sizes {
		sizes[i] = 4096 + i // distinct points, all cheap
	}
	grid := BcastGrid(pr.Nodes, coll.BcastAlgorithms(), sizes, pr.SegmentSize)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := Sweep{Profile: pr, Settings: sweepTestSettings(), Workers: 2,
		Progress: func(done, total int, r Result) {
			if done == 1 {
				cancel()
			}
		}}
	start := time.Now()
	res, err := sw.Run(ctx, grid)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled sweep returned results: %d", len(res))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled sweep took %v to return", elapsed)
	}
	// Workers must be gone; allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestSweepMemoryCache re-runs a grid against the same in-memory cache
// and expects every point to be served from it, unchanged.
func TestSweepMemoryCache(t *testing.T) {
	pr := sweepTestProfile(t)
	grid := sweepTestGrid(pr)
	sw := Sweep{Profile: pr, Settings: sweepTestSettings(), Workers: 4, Cache: NewCache()}

	first, err := sw.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range first {
		if r.Cached {
			t.Fatalf("point %d cached on a cold cache", i)
		}
	}
	if sw.Cache.Len() != len(grid) {
		t.Fatalf("cache holds %d entries, want %d", sw.Cache.Len(), len(grid))
	}
	second, err := sw.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if !r.Cached {
			t.Fatalf("point %d (%v) measured again despite the cache", i, r.Point)
		}
	}
	if a, b := marshalMeasurements(t, first), marshalMeasurements(t, second); string(a) != string(b) {
		t.Fatal("cached results differ from measured ones")
	}
}

// TestSweepDiskCache round-trips measurements through the on-disk format:
// a fresh Cache instance over the same directory must serve every point.
func TestSweepDiskCache(t *testing.T) {
	pr := sweepTestProfile(t)
	grid := sweepTestGrid(pr)
	dir := t.TempDir()

	cold, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw := Sweep{Profile: pr, Settings: sweepTestSettings(), Workers: 4, Cache: cold}
	first, err := sw.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(grid) {
		t.Fatalf("disk cache holds %d files, want %d", len(files), len(grid))
	}

	warm, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw.Cache = warm
	second, err := sw.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if !r.Cached {
			t.Fatalf("point %d (%v) measured again despite the disk cache", i, r.Point)
		}
	}
	if a, b := marshalMeasurements(t, first), marshalMeasurements(t, second); string(a) != string(b) {
		t.Fatal("disk-cached results differ from measured ones")
	}

	// A corrupt entry degrades to a miss, not an error.
	if err := os.WriteFile(files[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	sw.Cache, err = NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Run(context.Background(), grid); err != nil {
		t.Fatalf("sweep over a corrupt cache entry failed: %v", err)
	}
}

// TestCacheKeyIdentity pins down what the content-addressed key covers:
// equal inputs collide, any changed input — point, settings, profile,
// noise seed — does not.
func TestCacheKeyIdentity(t *testing.T) {
	pr := sweepTestProfile(t)
	set := sweepTestSettings()
	pt := Point{Kind: PointBcast, Alg: coll.BcastBinomial, Procs: 8, MsgBytes: 4096, SegSize: pr.SegmentSize}

	base := cacheKey(pr, pt, set)
	if base != cacheKey(pr, pt, set) {
		t.Fatal("cache key is not deterministic")
	}

	altPt := pt
	altPt.MsgBytes++
	altSet := set
	altSet.MaxReps++
	altPr := pr
	altPr.Net.NoiseSeed++
	for name, other := range map[string]string{
		"message size": cacheKey(pr, altPt, set),
		"settings":     cacheKey(pr, pt, altSet),
		"noise seed":   cacheKey(altPr, pt, set),
	} {
		if other == base {
			t.Fatalf("changing the %s did not change the cache key", name)
		}
	}

	// Settings normalise before keying, so spelling the same methodology
	// differently (zero value vs explicit normalised values) shares cache
	// entries.
	explicit := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 5, MaxReps: 100, Warmup: 0}
	if cacheKey(pr, pt, Settings{}) != cacheKey(pr, pt, explicit) {
		t.Fatal("zero settings and their explicit normalised form key differently")
	}
}
