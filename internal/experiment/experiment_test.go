package experiment

import (
	"math"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/simnet"
)

func quietConfig(nodes int) simnet.Config {
	return simnet.Config{
		Nodes:        nodes,
		Latency:      20e-6,
		ByteTimeSend: 1e-9,
		ByteTimeRecv: 1e-9,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
	}
}

func noisyConfig(nodes int) simnet.Config {
	cfg := quietConfig(nodes)
	cfg.NoiseAmplitude = 0.05
	cfg.NoiseSeed = 777
	return cfg
}

func fastSettings() Settings {
	return Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 50, Warmup: 1}
}

func TestMeasureNoiseFreeMatchesModel(t *testing.T) {
	cfg := quietConfig(2)
	net, _ := simnet.New(cfg)
	const m = 1 << 16
	meas, err := Measure(net, 2, fastSettings(), Completion, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, m)
		} else {
			p.Recv(0, 0, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.PointToPointTime(m)
	if math.Abs(meas.Mean-want) > 1e-9 {
		t.Fatalf("measured %v, Hockney model %v", meas.Mean, want)
	}
	if !meas.Converged {
		t.Fatal("noise-free measurement should converge")
	}
	if meas.Reps < 3 {
		t.Fatalf("reps = %d", meas.Reps)
	}
}

func TestMeasureConvergesUnderNoise(t *testing.T) {
	net, _ := simnet.New(noisyConfig(4))
	meas, err := Measure(net, 4, fastSettings(), Completion, func(p *mpi.Proc) {
		coll.Bcast(p, coll.BcastBinomial, 0, coll.Synthetic(32768), 8192)
		_ = p
	})
	if err != nil {
		t.Fatal(err)
	}
	if !meas.Converged {
		t.Fatalf("did not converge in %d reps (rel err %v)", meas.Reps, meas.CI.RelativeError())
	}
	if meas.CI.RelativeError() > 0.025 {
		t.Fatalf("CI relative error %v > 2.5%%", meas.CI.RelativeError())
	}
	if meas.Mean <= 0 {
		t.Fatal("non-positive mean")
	}
	// Under noise the samples must actually vary.
	varied := false
	for _, s := range meas.Samples[1:] {
		if s != meas.Samples[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("noisy samples are all identical — noise stream not advancing across reps")
	}
}

func TestMeasureRespectsMaxReps(t *testing.T) {
	net, _ := simnet.New(noisyConfig(2))
	set := Settings{Confidence: 0.95, Precision: 1e-9, MinReps: 2, MaxReps: 7, Warmup: 0}
	meas, err := Measure(net, 2, set, Completion, func(p *mpi.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 4096)
		} else {
			p.Recv(0, 0, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if meas.Converged {
		t.Fatal("cannot converge to 1e-9 precision under 5% noise")
	}
	if meas.Reps != 7 {
		t.Fatalf("reps = %d, want MaxReps=7", meas.Reps)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	run := func() Measurement {
		net, _ := simnet.New(noisyConfig(6))
		m, err := Measure(net, 6, fastSettings(), Completion, func(p *mpi.Proc) {
			coll.Bcast(p, coll.BcastBinary, 0, coll.Synthetic(16384), 8192)
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Mean != b.Mean || a.Reps != b.Reps {
		t.Fatalf("measurement not reproducible: %v/%d vs %v/%d", a.Mean, a.Reps, b.Mean, b.Reps)
	}
}

func TestRootTimeVsCompletion(t *testing.T) {
	// For a broadcast, the root finishes (buffers free) before the leaves
	// have the data: RootTime must be strictly smaller than Completion.
	mk := func(mode Mode) float64 {
		net, _ := simnet.New(quietConfig(8))
		m, err := Measure(net, 8, fastSettings(), mode, func(p *mpi.Proc) {
			coll.Bcast(p, coll.BcastLinear, 0, coll.Synthetic(1<<20), 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Mean
	}
	rt, cp := mk(RootTime), mk(Completion)
	if rt >= cp {
		t.Fatalf("RootTime %v should be < Completion %v for a broadcast", rt, cp)
	}
}

func TestSettingsDefaults(t *testing.T) {
	s := Settings{}.withDefaults()
	d := DefaultSettings()
	d.Warmup = 0 // warmup is opt-in; the zero value means none
	if s != d {
		t.Fatalf("withDefaults() = %+v, want %+v", s, d)
	}
	if DefaultSettings().Warmup != 1 {
		t.Fatal("DefaultSettings should include one warmup repetition")
	}
	// Partial settings keep their values.
	s2 := Settings{Precision: 0.1, MinReps: 4, MaxReps: 9, Warmup: 2, Confidence: 0.9}.withDefaults()
	if s2.Precision != 0.1 || s2.MinReps != 4 || s2.MaxReps != 9 || s2.Warmup != 2 || s2.Confidence != 0.9 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", s2)
	}
	// MaxReps below MinReps is repaired.
	s3 := Settings{MinReps: 50, MaxReps: 10}.withDefaults()
	if s3.MaxReps < s3.MinReps {
		t.Fatalf("MaxReps %d < MinReps %d", s3.MaxReps, s3.MinReps)
	}
}

func TestMeasureBcastOnProfile(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := MeasureBcast(pr, 12, coll.BcastBinomial, 65536, 8192, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Mean <= 0 || !meas.Converged {
		t.Fatalf("measurement = %+v", meas)
	}
	if _, err := MeasureBcast(pr, 99, coll.BcastBinomial, 65536, 8192, fastSettings()); err == nil {
		t.Fatal("too many procs should fail")
	}
}

func TestMeasureBcastThenGatherEndsOnRoot(t *testing.T) {
	pr, err := cluster.Gros().WithNodes(10)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := MeasureBcastThenGather(pr, 10, coll.BcastBinomial, 81920, 8192, 1024, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Mean <= 0 {
		t.Fatalf("mean = %v", meas.Mean)
	}
	// The gather adds P-1 inbound transfers; the experiment must take
	// longer than the broadcast alone measured at the root.
	bOnly, err := MeasureBcast(pr, 10, coll.BcastBinomial, 81920, 8192, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	_ = bOnly // completion vs root-time are not directly comparable; just sanity-check both ran
	if _, err := MeasureBcastThenGather(pr, 999, coll.BcastBinomial, 81920, 8192, 1024, fastSettings()); err == nil {
		t.Fatal("too many procs should fail")
	}
}

func TestMeasureLinearBcastGammaGrowth(t *testing.T) {
	// T2(P) must grow with P — the serialisation γ(P) captures.
	pr := cluster.Grisou()
	var prev float64
	for p := 2; p <= 7; p++ {
		meas, err := MeasureLinearBcast(pr, p, pr.SegmentSize, fastSettings())
		if err != nil {
			t.Fatal(err)
		}
		if p > 2 && meas.Mean <= prev {
			t.Fatalf("T2(%d)=%v not greater than T2(%d)=%v", p, meas.Mean, p-1, prev)
		}
		prev = meas.Mean
	}
}

func TestMeasurePropagatesRankErrors(t *testing.T) {
	net, _ := simnet.New(quietConfig(2))
	_, err := Measure(net, 2, fastSettings(), Completion, func(p *mpi.Proc) {
		p.Recv(1-p.Rank(), 0, nil) // deadlock
	})
	if err == nil {
		t.Fatal("expected deadlock error to propagate")
	}
}

func TestDiagnosticsPopulated(t *testing.T) {
	net, _ := simnet.New(noisyConfig(4))
	set := Settings{MinReps: 20, MaxReps: 20, Precision: 1e-12, Warmup: 0, Confidence: 0.95}
	meas, err := Measure(net, 4, set, Completion, func(p *mpi.Proc) {
		coll.Bcast(p, coll.BcastChain, 0, coll.Synthetic(8192), 8192)
	})
	if err != nil {
		t.Fatal(err)
	}
	if meas.Reps != 20 || len(meas.Samples) != 20 {
		t.Fatalf("reps = %d", meas.Reps)
	}
	if meas.NormalityP < 0 || meas.NormalityP > 1 {
		t.Fatalf("normality p = %v", meas.NormalityP)
	}
	if math.Abs(meas.Lag1) > 1 {
		t.Fatalf("lag1 = %v", meas.Lag1)
	}
}
