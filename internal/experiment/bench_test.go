package experiment

import (
	"context"
	"fmt"
	"os"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/stats"
)

// benchGrid is a full six-algorithm Grisou sweep at two process counts
// (16 and 32 on the 32-node profile) with a reduced repetition budget:
// 72 points over ~80 structure classes, enough work per sweep that the
// worker-scaling curve measures scheduling rather than per-sweep setup
// noise, while one serial pass stays in the seconds range. For a stable
// curve, run with -benchtime=3x or more (one timed sweep per iteration);
// `make bench` records it into BENCH_sweepscale.json.
func benchGrid(b *testing.B) (cluster.Profile, []Point) {
	b.Helper()
	pr, err := cluster.Grisou().WithNodes(32)
	if err != nil {
		b.Fatal(err)
	}
	sizes := stats.LogSpaceBytes(8192, 4<<20, 6)
	grid := BcastGrid(16, coll.BcastAlgorithms(), sizes, pr.SegmentSize)
	return pr, append(grid, BcastGrid(pr.Nodes, coll.BcastAlgorithms(), sizes, pr.SegmentSize)...)
}

// benchSweepSettings honours the SWEEP_ENGINE environment variable
// (scheduler, replay, auto) so `make bench` can record the same sweep
// benchmarks under both execution engines — the names stay identical,
// letting `benchjson -baseline` diff BENCH_replay.json against
// BENCH_sched.json directly.
func benchSweepSettings(b *testing.B) Settings {
	set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1}
	if env := os.Getenv("SWEEP_ENGINE"); env != "" {
		engine, err := ParseEngine(env)
		if err != nil {
			b.Fatalf("SWEEP_ENGINE: %v", err)
		}
		set.Engine = engine
	}
	return set
}

// BenchmarkSweep measures the wall-clock of the full six-algorithm Grisou
// grid at increasing worker counts. Every grid point is an independent
// single-threaded simulation, so on a machine with >= 8 cores the
// workers=8 line approaches an 8x speedup over workers=1 (compare ns/op
// across the sub-benchmarks); on fewer cores it saturates at the core
// count. Results are byte-identical at every worker count, which
// TestSweepDeterministicAcrossWorkerCounts enforces.
func BenchmarkSweep(b *testing.B) {
	pr, grid := benchGrid(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			// The template store persists across the b.N sweeps, as a
			// repeated calibration's does (each run's structure classes are
			// captured once, then every later point — and every later
			// sweep — rebinds); the scheduler-engine record ignores it.
			// Results are bit-identical with or without the store. One
			// untimed warm-up sweep captures the class templates so every
			// timed iteration measures the homogeneous steady state, as
			// BenchmarkSweepWarmPool and BenchmarkSweepCached do; the cold
			// capture cost is recorded per path by BenchmarkPlanCache.
			sw := Sweep{Profile: pr, Settings: benchSweepSettings(b), Workers: workers, Templates: mpi.NewTemplateStore()}
			b.ReportMetric(float64(len(grid)), "points/sweep")
			if _, err := sw.Run(context.Background(), grid); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.Run(context.Background(), grid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCache breaks one grid point's cost down by measurement
// path: the full scheduler loop, the replay engine's capture (scheduler
// repetition + echo validation + replay), and the template fast path
// (goroutine-free rebind + replay). The rebind line is what every point
// after the first of a structure class costs; BENCH_plancache.json
// records the three side by side.
func BenchmarkPlanCache(b *testing.B) {
	pr, err := cluster.Grisou().WithNodes(32)
	if err != nil {
		b.Fatal(err)
	}
	const m = 1 << 20
	set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1}
	reuse, err := newProfileRunner(pr, nil)
	if err != nil {
		b.Fatal(err)
	}
	point := func(b *testing.B, set Settings, store *mpi.TemplateStore) {
		b.Helper()
		if _, err := measureBcastOn(reuse, pr, pr.Nodes, coll.BcastBinomial, m, pr.SegmentSize, set, store); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("path=scheduler", func(b *testing.B) {
		b.ReportAllocs()
		set := set
		set.Engine = EngineScheduler
		for i := 0; i < b.N; i++ {
			point(b, set, nil)
		}
	})
	b.Run("path=capture", func(b *testing.B) {
		b.ReportAllocs()
		set := set
		set.Engine = EngineReplay
		for i := 0; i < b.N; i++ {
			point(b, set, nil)
		}
	})
	b.Run("path=rebind", func(b *testing.B) {
		b.ReportAllocs()
		set := set
		set.Engine = EngineReplay
		store := mpi.NewTemplateStore()
		point(b, set, store) // capture the class template once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			point(b, set, store)
		}
	})
}

// BenchmarkSweepWarmPool is BenchmarkSweep with a pre-warmed RunnerPool
// attached: the delta against the pool-less workers=N line is what Runner
// (and simulator) construction costs a repeated sweep — the situation of
// every multi-stage calibration.
func BenchmarkSweepWarmPool(b *testing.B) {
	pr, grid := benchGrid(b)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			pool, err := NewRunnerPool(pr, workers, nil)
			if err != nil {
				b.Fatal(err)
			}
			sw := Sweep{Profile: pr, Settings: benchSweepSettings(b), Workers: workers, Pool: pool}
			if _, err := sw.Run(context.Background(), grid); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.Run(context.Background(), grid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepCached measures a fully warm sweep: every point served
// from the in-memory cache. The delta against BenchmarkSweep is what the
// cache saves a repeated pipeline stage (fitparams then decisiongen).
func BenchmarkSweepCached(b *testing.B) {
	b.ReportAllocs()
	pr, grid := benchGrid(b)
	sw := Sweep{Profile: pr, Settings: benchSweepSettings(b), Cache: NewCache()}
	if _, err := sw.Run(context.Background(), grid); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Run(context.Background(), grid); err != nil {
			b.Fatal(err)
		}
	}
}
