package experiment

import (
	"fmt"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/perturb"
	"mpicollperf/internal/simnet"
)

// sameMeasurement fails the test unless two measurements are bit-identical
// in every field, sample by sample.
func sameMeasurement(t *testing.T, label string, a, b Measurement) {
	t.Helper()
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("%s: %d vs %d samples", label, len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("%s: sample %d: %x vs %x", label, i, a.Samples[i], b.Samples[i])
		}
	}
	if a.Mean != b.Mean || a.CI != b.CI || a.Reps != b.Reps || a.Converged != b.Converged ||
		a.NormalityP != b.NormalityP || a.Lag1 != b.Lag1 {
		t.Fatalf("%s: measurements differ\n%+v\n%+v", label, a, b)
	}
}

// TestEngineReplayBitIdentical is the engine contract at full strength:
// every broadcast algorithm, measured on the noisy Grisou profile with the
// replay engine forced (no fallback allowed), must reproduce the
// scheduler engine's measurement bit for bit.
func TestEngineReplayBitIdentical(t *testing.T) {
	pr := cluster.Grisou()
	for _, alg := range coll.BcastAlgorithms() {
		ms, err := MeasureBcast(pr, 16, alg, 65536, 8192, Settings{Engine: EngineScheduler})
		if err != nil {
			t.Fatal(err)
		}
		mr, err := MeasureBcast(pr, 16, alg, 65536, 8192, Settings{Engine: EngineReplay})
		if err != nil {
			t.Fatalf("%v: replay: %v", alg, err)
		}
		sameMeasurement(t, alg.String(), ms, mr)
	}
}

// TestEngineAutoFallsBackOnPayload: programs that move real payload bytes
// cannot be echo-validated, so auto must quietly run them on the
// scheduler — bit-identically — and the forced replay engine must refuse.
func TestEngineAutoFallsBackOnPayload(t *testing.T) {
	data := []byte("payload-bytes-for-engine-test")
	op := func(p *mpi.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, data, -1)
		} else {
			buf := make([]byte, len(data))
			p.Recv(0, 0, buf)
		}
	}
	run := func(e Engine) (Measurement, error) {
		net, err := simnet.New(noisyConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		set := fastSettings()
		set.Engine = e
		return Measure(net, 2, set, Completion, op)
	}
	ms, err := run(EngineScheduler)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := run(EngineAuto)
	if err != nil {
		t.Fatalf("auto engine failed on payload program: %v", err)
	}
	sameMeasurement(t, "payload fallback", ms, ma)
	if ms.Fallback != FallbackNone {
		t.Fatalf("scheduler engine reported fallback %q", ms.Fallback)
	}
	if ma.Fallback != FallbackPayload {
		t.Fatalf("auto engine reported fallback %q, want %q", ma.Fallback, FallbackPayload)
	}
	if _, err := run(EngineReplay); err == nil {
		t.Fatal("forced replay engine accepted a payload-carrying program")
	}
}

// TestEngineAutoFallsBackOnStructuralChange: a program whose operation
// stream differs between invocations must be caught by the echo
// validation — auto falls back to the scheduler, forced replay errors.
func TestEngineAutoFallsBackOnStructuralChange(t *testing.T) {
	run := func(e Engine) (Measurement, error) {
		net, err := simnet.New(noisyConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		var calls [2]int
		op := func(p *mpi.Proc) {
			r := p.Rank()
			calls[r]++
			if calls[r] > 1 && r == 0 {
				p.Sleep(1e-6) // appears from the second invocation on
			}
			if r == 0 {
				p.Send(1, 0, nil, 4096)
			} else {
				p.Recv(0, 0, nil)
			}
		}
		set := fastSettings()
		set.Engine = e
		return Measure(net, 2, set, Completion, op)
	}
	ma, err := run(EngineAuto)
	if err != nil {
		t.Fatalf("auto engine failed to fall back: %v", err)
	}
	if ma.Fallback != FallbackEchoDivergence {
		t.Fatalf("auto engine reported fallback %q, want %q", ma.Fallback, FallbackEchoDivergence)
	}
	if _, err := run(EngineReplay); err == nil {
		t.Fatal("forced replay engine accepted a structure-changing program")
	}
}

// TestEngineAutoFallsBackOnMarkInOp: an op that calls Mark itself breaks
// the harness's mark bracketing; auto must fall back, bit-identically.
func TestEngineAutoFallsBackOnMarkInOp(t *testing.T) {
	op := func(p *mpi.Proc) {
		p.Mark()
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 4096)
		} else {
			p.Recv(0, 0, nil)
		}
	}
	run := func(e Engine) (Measurement, error) {
		net, err := simnet.New(noisyConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		set := fastSettings()
		set.Engine = e
		return Measure(net, 2, set, Completion, op)
	}
	ms, err := run(EngineScheduler)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := run(EngineAuto)
	if err != nil {
		t.Fatalf("auto engine failed on mark-calling op: %v", err)
	}
	sameMeasurement(t, "mark fallback", ms, ma)
	if ma.Fallback != FallbackMarkInOp {
		t.Fatalf("auto engine reported fallback %q, want %q", ma.Fallback, FallbackMarkInOp)
	}
	if _, err := run(EngineReplay); err == nil {
		t.Fatal("forced replay engine accepted a mark-calling op")
	}
}

// TestEngineFallsBackOnTimeVaryingPerturbation: a brownout makes the
// effective link parameters depend on virtual time, so a captured plan
// cannot be re-timed. Auto must fall back (before even capturing) with
// the reason surfaced, bit-identically; forced replay must refuse.
func TestEngineFallsBackOnTimeVaryingPerturbation(t *testing.T) {
	spec, err := perturb.Parse("brownout:src=0,dst=1,start=0,end=1,bw=25")
	if err != nil {
		t.Fatal(err)
	}
	op := func(p *mpi.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 4096)
		} else {
			p.Recv(0, 0, nil)
		}
	}
	run := func(e Engine) (Measurement, error) {
		cfg := noisyConfig(2)
		cfg.Perturb = spec
		net, err := simnet.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		set := fastSettings()
		set.Engine = e
		return Measure(net, 2, set, Completion, op)
	}
	ms, err := run(EngineScheduler)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := run(EngineAuto)
	if err != nil {
		t.Fatalf("auto engine failed under brownout: %v", err)
	}
	sameMeasurement(t, "brownout fallback", ms, ma)
	if ma.Fallback != FallbackTimeVarying {
		t.Fatalf("auto engine reported fallback %q, want %q", ma.Fallback, FallbackTimeVarying)
	}
	if _, err := run(EngineReplay); err == nil {
		t.Fatal("forced replay engine accepted a time-varying perturbation")
	}
}

// TestCountFallbacks runs a small sweep on a brownout-perturbed profile
// and asserts the per-reason fallback tally, then checks that the same
// sweep unperturbed (and a cached rerun of the perturbed one) counts
// nothing.
func TestCountFallbacks(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	points := BcastGrid(8, []coll.BcastAlgorithm{coll.BcastBinary, coll.BcastChain}, []int{4096}, 0)

	quiet := Sweep{Profile: pr, Settings: fastSettings()}
	res, err := quiet.Run(nil, points)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountFallbacks(res); len(n) != 0 {
		t.Fatalf("unperturbed sweep counted fallbacks: %v", n)
	}

	spec, err := perturb.Parse("brownout:src=0,dst=1,start=0,end=0.001,bw=10")
	if err != nil {
		t.Fatal(err)
	}
	prp := pr
	prp.Net.Perturb = spec
	cache := NewCache()
	sw := Sweep{Profile: prp, Settings: fastSettings(), Cache: cache}
	res, err = sw.Run(nil, points)
	if err != nil {
		t.Fatal(err)
	}
	counts := CountFallbacks(res)
	if counts[FallbackTimeVarying] != len(points) {
		t.Fatalf("counted %v, want %d × %q", counts, len(points), FallbackTimeVarying)
	}
	// Cached reruns count nothing: the fallback belongs to the run that
	// produced the measurement.
	res, err = sw.Run(nil, points)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.Cached {
			t.Fatalf("point %v not served from cache", r.Point)
		}
	}
	if n := CountFallbacks(res); len(n) != 0 {
		t.Fatalf("cached sweep counted fallbacks: %v", n)
	}
}

// TestPerturbedReplayMatchesScheduler is the differential determinism
// check over random perturbation specs: for deterministically generated
// time-invariant specs across seeds and intensities, the auto engine must
// (a) take the replay path and (b) reproduce the scheduler engine bit for
// bit; and the same seed + spec must reproduce itself exactly.
func TestPerturbedReplayMatchesScheduler(t *testing.T) {
	base, err := cluster.Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		for _, intensity := range []float64{0.1, 0.5, 1.0} {
			spec := perturb.Random(seed, intensity, base.Net.NICs())
			if spec == nil {
				t.Fatalf("seed %d intensity %g: nil spec", seed, intensity)
			}
			if !spec.TimeInvariant() {
				t.Fatalf("seed %d intensity %g: Random emitted a time-varying spec", seed, intensity)
			}
			pr := base
			pr.Net.Perturb = spec
			run := func(e Engine) Measurement {
				set := fastSettings()
				set.Engine = e
				m, err := MeasureBcast(pr, 12, coll.BcastSplitBinary, 65536, 8192, set)
				if err != nil {
					t.Fatalf("seed %d intensity %g engine %v: %v", seed, intensity, e, err)
				}
				return m
			}
			label := fmt.Sprintf("seed=%d ε=%g", seed, intensity)
			ms := run(EngineScheduler)
			ma := run(EngineAuto)
			sameMeasurement(t, label, ms, ma)
			if ma.Fallback != FallbackNone {
				t.Fatalf("%s: auto fell back (%q) under a time-invariant spec", label, ma.Fallback)
			}
			sameMeasurement(t, label+" rerun", ms, run(EngineScheduler))
		}
	}
}

func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{
		"auto": EngineAuto, "scheduler": EngineScheduler, "replay": EngineReplay,
	} {
		e, err := ParseEngine(s)
		if err != nil || e != want {
			t.Errorf("ParseEngine(%q) = %v, %v", s, e, err)
		}
		if e.String() != s {
			t.Errorf("%v.String() = %q, want %q", e, e.String(), s)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine accepted an unknown engine")
	}
}

// FuzzReplayMatchesScheduler fuzzes the engine equivalence over cluster
// shape, co-location, algorithm, message and segment size, noise, and
// random perturbation specs: for any configuration, the auto engine
// (replay with fallback) must produce a measurement bit-identical to the
// scheduler engine.
func FuzzReplayMatchesScheduler(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint8(0), uint16(64), uint8(1), uint8(50), int64(1), uint8(0))
	f.Add(uint8(16), uint8(2), uint8(3), uint16(256), uint8(2), uint8(30), int64(1001), uint8(0))
	f.Add(uint8(5), uint8(1), uint8(5), uint16(8), uint8(0), uint8(0), int64(7), uint8(40))
	f.Add(uint8(12), uint8(3), uint8(2), uint16(1024), uint8(1), uint8(80), int64(-3), uint8(100))
	f.Add(uint8(3), uint8(2), uint8(1), uint16(1), uint8(3), uint8(10), int64(42), uint8(75))
	f.Fuzz(func(t *testing.T, nodes, ppn, algIdx uint8, msgKB uint16, segSel, noiseMil uint8, seed int64, pertCent uint8) {
		nprocs := 2 + int(nodes)%15 // 2..16
		cfg := simnet.Config{
			Nodes:        nprocs,
			Latency:      20e-6,
			ByteTimeSend: 1e-9,
			ByteTimeRecv: 1e-9,
			SendOverhead: 1e-6,
			RecvOverhead: 1e-6,
		}
		if p := 1 + int(ppn)%3; p > 1 {
			cfg.ProcsPerNode = p
			cfg.IntraNodeLatency = 1e-6
			cfg.IntraNodeByteTime = 1e-10
		}
		if amp := float64(noiseMil%101) / 1000; amp > 0 {
			cfg.NoiseAmplitude = amp
			cfg.NoiseSeed = seed
		}
		if intensity := float64(pertCent%101) / 100; intensity > 0 {
			// Random specs are time-invariant, so replay must still match.
			cfg.Perturb = perturb.Random(seed, intensity, cfg.NICs())
		}
		algs := coll.BcastAlgorithms()
		alg := algs[int(algIdx)%len(algs)]
		msg := 1024 * (1 + int(msgKB)%1024)
		seg := []int{0, 8192, 16384, 65536}[int(segSel)%4]
		set := Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 8, Warmup: 1}
		op := func(p *mpi.Proc) {
			coll.Bcast(p, alg, 0, coll.Synthetic(msg), seg)
		}
		run := func(e Engine) Measurement {
			net, err := simnet.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			set := set
			set.Engine = e
			m, err := Measure(net, nprocs, set, Completion, op)
			if err != nil {
				t.Fatalf("engine %v: %v", e, err)
			}
			return m
		}
		sameMeasurement(t, alg.String(), run(EngineScheduler), run(EngineAuto))
	})
}
