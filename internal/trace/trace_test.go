package trace

import (
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/simnet"
)

func runTraced(t *testing.T, nprocs int, fn func(p *mpi.Proc) error) *Collector {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(nprocs)
	if err != nil {
		t.Fatal(err)
	}
	pr.Net.NoiseAmplitude = 0
	net, err := pr.Network()
	if err != nil {
		t.Fatal(err)
	}
	c := Attach(net)
	if _, err := mpi.RunOn(net, nprocs, fn, mpi.Options{}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCollectorRecordsBcast(t *testing.T) {
	const nprocs = 8
	c := runTraced(t, nprocs, func(p *mpi.Proc) error {
		coll.Bcast(p, coll.BcastBinomial, 0, coll.Synthetic(65536), 8192)
		return nil
	})
	rep := c.Analyze()
	// A binomial broadcast on 8 ranks with 8 segments: every non-root rank
	// receives 8 segments, so 7*8 = 56 transfers.
	if rep.Transfers != 56 {
		t.Fatalf("transfers = %d, want 56", rep.Transfers)
	}
	if rep.Bytes != 7*65536 {
		t.Fatalf("bytes = %d", rep.Bytes)
	}
	if rep.Duration() <= 0 {
		t.Fatal("non-positive duration")
	}
	// The root (node 0) must be the bottleneck sender in a binomial tree.
	if rep.MaxSendBusy.Node != 0 {
		t.Fatalf("bottleneck sender = node %d, want the root", rep.MaxSendBusy.Node)
	}
	// Every rank except the root received something.
	if len(rep.Nodes) != nprocs {
		t.Fatalf("nodes with activity = %d", len(rep.Nodes))
	}
}

func TestChainBottleneckIsNotRoot(t *testing.T) {
	// In a chain every interior node forwards everything, so send-port
	// busy time is roughly equal for all but the tail; the root must NOT
	// dominate the way it does in the linear algorithm.
	cLinear := runTraced(t, 8, func(p *mpi.Proc) error {
		coll.Bcast(p, coll.BcastLinear, 0, coll.Synthetic(1<<20), 0)
		return nil
	})
	repLin := cLinear.Analyze()
	if repLin.MaxSendBusy.Node != 0 || repLin.MaxSendBusy.SentMessages != 7 {
		t.Fatalf("linear: root should send everything: %+v", repLin.MaxSendBusy)
	}
	cChain := runTraced(t, 8, func(p *mpi.Proc) error {
		coll.Bcast(p, coll.BcastChain, 0, coll.Synthetic(1<<20), 8192)
		return nil
	})
	repChain := cChain.Analyze()
	rootBusy := 0.0
	for _, n := range repChain.Nodes {
		if n.Node == 0 {
			rootBusy = n.SendBusy
		}
	}
	if repLin.MaxSendBusy.SendBusy <= 2*rootBusy {
		t.Fatalf("linear root (%v) should be far busier than chain root (%v)",
			repLin.MaxSendBusy.SendBusy, rootBusy)
	}
}

func TestReportRender(t *testing.T) {
	c := runTraced(t, 4, func(p *mpi.Proc) error {
		coll.Bcast(p, coll.BcastBinary, 0, coll.Synthetic(8192), 8192)
		return nil
	})
	out := c.Analyze().Render()
	for _, want := range []string{"transfers:", "bottleneck send port", "bottleneck recv port"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTimeline(t *testing.T) {
	c := runTraced(t, 4, func(p *mpi.Proc) error {
		coll.Bcast(p, coll.BcastChain, 0, coll.Synthetic(32768), 8192)
		return nil
	})
	tl := c.Timeline(60)
	if !strings.Contains(tl, "node   0") || !strings.Contains(tl, "#") {
		t.Fatalf("timeline:\n%s", tl)
	}
	// Chain: nodes 0..2 send, node 3 is the tail and must not appear.
	if strings.Contains(tl, "node   3") {
		t.Fatalf("tail node should have no send row:\n%s", tl)
	}
	if (&Collector{}).Timeline(40) != "(no transfers)\n" {
		t.Fatal("empty timeline")
	}
}

func TestCriticalPathChain(t *testing.T) {
	// In a single-segment chain the critical path is exactly the chain.
	c := runTraced(t, 5, func(p *mpi.Proc) error {
		coll.Bcast(p, coll.BcastChain, 0, coll.Synthetic(8192), 8192)
		return nil
	})
	path := c.CriticalPath()
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4 hops", len(path))
	}
	for i, tr := range path {
		if tr.Src != i || tr.Dst != i+1 {
			t.Fatalf("hop %d is %d->%d, want %d->%d", i, tr.Src, tr.Dst, i, i+1)
		}
	}
	// Path must be time-ordered.
	for i := 1; i < len(path); i++ {
		if path[i].Issued < path[i-1].Delivered {
			t.Fatal("path hops overlap impossibly")
		}
	}
}

func TestResetAndEmpty(t *testing.T) {
	net, err := simnet.New(cluster.Grisou().Net)
	if err != nil {
		t.Fatal(err)
	}
	c := Attach(net)
	if rep := c.Analyze(); rep.Transfers != 0 {
		t.Fatal("fresh collector should be empty")
	}
	if c.CriticalPath() != nil {
		t.Fatal("empty critical path")
	}
	_, _ = net.Transmit(0, 1, 100, 0)
	if len(c.Transfers()) != 1 {
		t.Fatal("hook not recording")
	}
	c.Reset()
	if len(c.Transfers()) != 0 {
		t.Fatal("reset failed")
	}
}
