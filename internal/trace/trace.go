// Package trace records and analyses the transfer-level behaviour of a
// simulated collective: which links were used, how busy each NIC port
// was, and where the critical path ran. It answers the question the
// analytical models compress away — *why* one algorithm beats another on
// a given fabric — and is the debugging companion to package model: when
// a model misses, the trace shows which phase (fill, steady state,
// exchange) diverged.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mpicollperf/internal/simnet"
)

// Collector accumulates transfers from a simnet trace hook.
type Collector struct {
	transfers []simnet.Transfer
}

// Attach registers the collector on a network (replacing any existing
// hook) and returns it.
func Attach(net *simnet.Network) *Collector {
	c := &Collector{}
	net.SetTrace(func(tr simnet.Transfer) {
		c.transfers = append(c.transfers, tr)
	})
	return c
}

// Reset discards everything recorded so far.
func (c *Collector) Reset() { c.transfers = c.transfers[:0] }

// Transfers returns the recorded transfers in simulation order.
func (c *Collector) Transfers() []simnet.Transfer { return c.transfers }

// NodeStats aggregates one node's port activity.
type NodeStats struct {
	Node int
	// SentMessages / SentBytes cover the send port, RecvMessages /
	// RecvBytes the receive port.
	SentMessages, RecvMessages int
	SentBytes, RecvBytes       int64
	// SendBusy and RecvBusy are the total port occupancy times in
	// virtual seconds.
	SendBusy, RecvBusy float64
}

// Report is the digest of a recorded execution.
type Report struct {
	// Transfers is the total message count, Bytes the total payload
	// volume (each byte counted once, on the wire).
	Transfers int
	Bytes     int64
	// Start and Finish span the first injection to the last delivery.
	Start, Finish float64
	// Nodes holds per-node statistics for nodes that communicated.
	Nodes []NodeStats
	// MaxSendBusy / MaxRecvBusy identify the bottleneck ports.
	MaxSendBusy, MaxRecvBusy NodeStats
}

// Analyze digests the recorded transfers.
func (c *Collector) Analyze() Report {
	rep := Report{}
	if len(c.transfers) == 0 {
		return rep
	}
	byNode := make(map[int]*NodeStats)
	get := func(n int) *NodeStats {
		s, ok := byNode[n]
		if !ok {
			s = &NodeStats{Node: n}
			byNode[n] = s
		}
		return s
	}
	rep.Start = c.transfers[0].Issued
	for _, tr := range c.transfers {
		rep.Transfers++
		rep.Bytes += int64(tr.Bytes)
		if tr.Issued < rep.Start {
			rep.Start = tr.Issued
		}
		if tr.Delivered > rep.Finish {
			rep.Finish = tr.Delivered
		}
		s := get(tr.Src)
		s.SentMessages++
		s.SentBytes += int64(tr.Bytes)
		s.SendBusy += tr.SendComplete - tr.StartTx
		d := get(tr.Dst)
		d.RecvMessages++
		d.RecvBytes += int64(tr.Bytes)
		// Receive-port occupancy: delivery minus arrival bounds queueing
		// plus drain; use the drain component implied by byte counts when
		// available is overkill — record the span.
		d.RecvBusy += tr.Delivered - tr.Arrival
	}
	rep.Nodes = make([]NodeStats, 0, len(byNode))
	for _, s := range byNode {
		rep.Nodes = append(rep.Nodes, *s)
		if s.SendBusy > rep.MaxSendBusy.SendBusy {
			rep.MaxSendBusy = *s
		}
		if s.RecvBusy > rep.MaxRecvBusy.RecvBusy {
			rep.MaxRecvBusy = *s
		}
	}
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].Node < rep.Nodes[j].Node })
	return rep
}

// Duration returns the report's makespan.
func (r Report) Duration() float64 { return r.Finish - r.Start }

// Render formats the report as a text summary.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transfers: %d, bytes: %d, span: %.6fs\n", r.Transfers, r.Bytes, r.Duration())
	fmt.Fprintf(&b, "bottleneck send port: node %d busy %.6fs (%d msgs, %d B)\n",
		r.MaxSendBusy.Node, r.MaxSendBusy.SendBusy, r.MaxSendBusy.SentMessages, r.MaxSendBusy.SentBytes)
	fmt.Fprintf(&b, "bottleneck recv port: node %d busy %.6fs (%d msgs, %d B)\n",
		r.MaxRecvBusy.Node, r.MaxRecvBusy.RecvBusy, r.MaxRecvBusy.RecvMessages, r.MaxRecvBusy.RecvBytes)
	return b.String()
}

// Timeline renders an ASCII Gantt chart of send-port activity: one row per
// node, '#' where the port is busy, '.' where idle, over width columns
// spanning the execution. Rows for nodes that never sent are omitted.
func (c *Collector) Timeline(width int) string {
	if width < 10 {
		width = 10
	}
	rep := c.Analyze()
	if rep.Transfers == 0 {
		return "(no transfers)\n"
	}
	span := rep.Finish - rep.Start
	if span <= 0 {
		span = 1
	}
	rows := make(map[int][]byte)
	for _, tr := range c.transfers {
		row, ok := rows[tr.Src]
		if !ok {
			row = []byte(strings.Repeat(".", width))
			rows[tr.Src] = row
		}
		lo := int(float64(width-1) * (tr.StartTx - rep.Start) / span)
		hi := int(float64(width-1) * (tr.SendComplete - rep.Start) / span)
		for i := lo; i <= hi && i < width; i++ {
			if i >= 0 {
				row[i] = '#'
			}
		}
	}
	nodes := make([]int, 0, len(rows))
	for n := range rows {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	var b strings.Builder
	fmt.Fprintf(&b, "send-port activity, %.6fs span\n", span)
	for _, n := range nodes {
		fmt.Fprintf(&b, "node %3d |%s|\n", n, rows[n])
	}
	return b.String()
}

// CriticalPath walks backwards from the last delivery through the chain
// of transfers that gated it: for each hop it finds the latest transfer
// into the current node that delivered before the hop was issued. The
// result is a lower-bound reconstruction of the dependency chain (the
// runtime does not expose true causality), which in tree broadcasts
// recovers the actual root-to-leaf path.
func (c *Collector) CriticalPath() []simnet.Transfer {
	if len(c.transfers) == 0 {
		return nil
	}
	// Last delivery overall.
	last := c.transfers[0]
	for _, tr := range c.transfers {
		if tr.Delivered > last.Delivered {
			last = tr
		}
	}
	path := []simnet.Transfer{last}
	cur := last
	for {
		var best *simnet.Transfer
		for i := range c.transfers {
			tr := &c.transfers[i]
			if tr.Dst != cur.Src || tr.Delivered > cur.Issued {
				continue
			}
			if best == nil || tr.Delivered > best.Delivered {
				best = tr
			}
		}
		if best == nil {
			break
		}
		path = append(path, *best)
		cur = *best
	}
	// Reverse into chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
