package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
)

// BarrierAlgorithm identifies a barrier implementation built from
// point-to-point messages (unlike Proc.Barrier, which is the runtime's
// built-in zero-cost-model barrier used to separate measurements).
type BarrierAlgorithm int

const (
	// BarrierDissemination is the classic dissemination barrier:
	// ceil(log2 P) rounds in which rank r signals (r+2^k) mod P and waits
	// for (r-2^k) mod P.
	BarrierDissemination BarrierAlgorithm = iota
	// BarrierFanInFanOut gathers zero-byte tokens up a binomial tree and
	// broadcasts the release down it.
	BarrierFanInFanOut

	numBarrierAlgorithms = iota
)

// String returns the algorithm's name.
func (a BarrierAlgorithm) String() string {
	switch a {
	case BarrierDissemination:
		return "dissemination"
	case BarrierFanInFanOut:
		return "fan_in_fan_out"
	}
	return fmt.Sprintf("BarrierAlgorithm(%d)", int(a))
}

// BarrierAlgorithms lists all barrier algorithms.
func BarrierAlgorithms() []BarrierAlgorithm {
	out := make([]BarrierAlgorithm, numBarrierAlgorithms)
	for i := range out {
		out[i] = BarrierAlgorithm(i)
	}
	return out
}

// Barrier blocks until all ranks have entered it, using real
// point-to-point messages.
func Barrier(p *mpi.Proc, alg BarrierAlgorithm) {
	if p.Size() == 1 {
		return
	}
	switch alg {
	case BarrierDissemination:
		barrierDissemination(p)
	case BarrierFanInFanOut:
		barrierFanInFanOut(p)
	default:
		panic(fmt.Errorf("coll: unknown barrier algorithm %d", int(alg)))
	}
}

func barrierDissemination(p *mpi.Proc) {
	size := p.Size()
	me := p.Rank()
	for dist := 1; dist < size; dist <<= 1 {
		to := (me + dist) % size
		from := (me - dist + size) % size
		rs := p.Isend(to, tagBarrier, nil, 0)
		rr := p.Irecv(from, tagBarrier, nil)
		p.WaitAll(rs, rr)
	}
}

func barrierFanInFanOut(p *mpi.Proc) {
	// Gather zero-byte tokens up a binomial tree rooted at 0, then release
	// down it.
	Gather(p, GatherBinomial, 0, Synthetic(0), 0)
	Bcast(p, BcastBinomial, 0, Synthetic(0), 0)
}
