package coll

import (
	"fmt"
	"testing"
	"testing/quick"

	"mpicollperf/internal/mpi"
)

func runReduceScatter(t *testing.T, alg ReduceScatterAlgorithm, nprocs, blockSize int) {
	t.Helper()
	// Rank r contributes value (r+1) in every byte of block b scaled by
	// (b+1); the reduced block b is Σ_r (r+1)·(b+1) mod 256.
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		me := p.Rank()
		vec := make([]byte, blockSize*nprocs)
		for b := 0; b < nprocs; b++ {
			for i := 0; i < blockSize; i++ {
				vec[b*blockSize+i] = byte((me + 1) * (b + 1))
			}
		}
		ReduceScatter(p, alg, Bytes(vec), OpSum, blockSize)
		sum := 0
		for r := 0; r < nprocs; r++ {
			sum += r + 1
		}
		want := byte(sum * (me + 1))
		for i := 0; i < blockSize; i++ {
			if got := vec[me*blockSize+i]; got != want {
				return fmt.Errorf("rank %d byte %d = %d, want %d (alg %v, P=%d, bs=%d)",
					me, i, got, want, alg, nprocs, blockSize)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterAllAlgorithms(t *testing.T) {
	for _, alg := range ReduceScatterAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 4, 5, 8, 11, 16} {
				for _, bs := range []int{1, 16, 200} {
					runReduceScatter(t, alg, nprocs, bs)
				}
			}
		})
	}
}

func TestReduceScatterSynthetic(t *testing.T) {
	for _, alg := range ReduceScatterAlgorithms() {
		alg := alg
		_, err := mpi.Run(testConfig(8), 8, func(p *mpi.Proc) error {
			ReduceScatter(p, alg, Synthetic(8*4096), nil, 4096)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestReduceScatterValidation(t *testing.T) {
	_, err := mpi.Run(testConfig(3), 3, func(p *mpi.Proc) error {
		ReduceScatter(p, ReduceScatterRing, Synthetic(10), nil, 100)
		return nil
	})
	if err == nil {
		t.Fatal("size mismatch should fail")
	}
	_, err = mpi.Run(testConfig(2), 2, func(p *mpi.Proc) error {
		ReduceScatter(p, ReduceScatterRing, Bytes(make([]byte, 4)), nil, 2)
		return nil
	})
	if err == nil {
		t.Fatal("real data without op should fail")
	}
}

func TestReduceScatterSingleRank(t *testing.T) {
	_, err := mpi.Run(testConfig(1), 1, func(p *mpi.Proc) error {
		ReduceScatter(p, ReduceScatterHalving, Bytes([]byte{1, 2}), OpSum, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterRingBeatsNaiveForLargeVectors(t *testing.T) {
	timeFor := func(alg ReduceScatterAlgorithm) float64 {
		res, err := mpi.Run(testConfig(16), 16, func(p *mpi.Proc) error {
			ReduceScatter(p, alg, Synthetic(16*262144), nil, 262144)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	if timeFor(ReduceScatterRing) >= timeFor(ReduceScatterReduceThenScatter) {
		t.Fatal("ring should beat reduce+scatter for 4MB vectors at P=16")
	}
}

// Property: all three algorithms agree bit-for-bit on every rank's block.
func TestReduceScatterAlgorithmsAgreeProperty(t *testing.T) {
	f := func(npRaw, bsRaw uint8) bool {
		nprocs := int(npRaw%10) + 2
		bs := int(bsRaw%60) + 1
		var results [][]byte
		for _, alg := range ReduceScatterAlgorithms() {
			collected := make([]byte, bs*nprocs)
			_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
				vec := make([]byte, bs*nprocs)
				for i := range vec {
					vec[i] = byte((p.Rank()*7 + i) % 251)
				}
				ReduceScatter(p, alg, Bytes(vec), OpSum, bs)
				copy(collected[p.Rank()*bs:(p.Rank()+1)*bs], vec[p.Rank()*bs:(p.Rank()+1)*bs])
				return nil
			})
			if err != nil {
				return false
			}
			results = append(results, collected)
		}
		for i := 1; i < len(results); i++ {
			for j := range results[0] {
				if results[0][j] != results[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
