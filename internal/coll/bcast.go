package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
	"mpicollperf/internal/topo"
)

// BcastAlgorithm identifies one of the Open MPI 3.1 broadcast algorithms.
type BcastAlgorithm int

const (
	// BcastLinear is ompi_coll_base_bcast_intra_basic_linear: the root
	// posts non-blocking sends of the whole message to every other rank
	// and waits for all of them; no segmentation.
	BcastLinear BcastAlgorithm = iota
	// BcastChain is Open MPI's "pipeline": a single chain of processes,
	// segmented (the paper's Chain tree algorithm).
	BcastChain
	// BcastKChain is Open MPI's "chain" with fanout K (default 4): the
	// non-root ranks form K parallel chains fed by the root (the paper's
	// K-Chain tree algorithm).
	BcastKChain
	// BcastBinary runs the segmented generic engine over the balanced
	// binary tree.
	BcastBinary
	// BcastSplitBinary splits the message in two halves pipelined down the
	// two subtrees of a binary tree, followed by a pairwise exchange of
	// halves between the subtrees.
	BcastSplitBinary
	// BcastBinomial runs the segmented generic engine over the binomial
	// tree (the algorithm modelled in detail in the paper's §3.1).
	BcastBinomial

	numBcastAlgorithms = iota
)

// DefaultKChainFanout is the number of chains the K-chain algorithm uses,
// matching Open MPI's default chain fanout.
const DefaultKChainFanout = 4

// BcastAlgorithms lists all algorithms in a stable order.
func BcastAlgorithms() []BcastAlgorithm {
	out := make([]BcastAlgorithm, numBcastAlgorithms)
	for i := range out {
		out[i] = BcastAlgorithm(i)
	}
	return out
}

// String returns the paper's name for the algorithm.
func (a BcastAlgorithm) String() string {
	switch a {
	case BcastLinear:
		return "linear"
	case BcastChain:
		return "chain"
	case BcastKChain:
		return "k_chain"
	case BcastBinary:
		return "binary"
	case BcastSplitBinary:
		return "split_binary"
	case BcastBinomial:
		return "binomial"
	}
	return fmt.Sprintf("BcastAlgorithm(%d)", int(a))
}

// ParseBcastAlgorithm converts a name produced by String back to the
// algorithm identifier.
func ParseBcastAlgorithm(name string) (BcastAlgorithm, error) {
	for _, a := range BcastAlgorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("coll: unknown broadcast algorithm %q", name)
}

// Segmented reports whether the algorithm uses message segmentation.
func (a BcastAlgorithm) Segmented() bool { return a != BcastLinear }

// BcastClassKey returns the structure-class key of a broadcast: two
// configurations with the same key submit bit-identical operation
// *structures* (kinds, peers, tags, request wiring) and differ only in
// byte counts. The communication pattern of every shipped algorithm is a
// function of the tree shape — fixed by the communicator size — and of
// the segment count n_s = NumSegments(size, segSize); unsegmented
// algorithms ignore the segment size entirely, so their key pins segs=1
// and every message size shares one class. The replay engine's template
// cache captures one plan per class and rebinds it for every other point
// of the class (mpi.TemplateStore, Runner.Rebind).
func BcastClassKey(alg BcastAlgorithm, procs, size, segSize int) string {
	segs := 1
	if alg.Segmented() {
		segs = NumSegments(size, segSize)
	}
	return fmt.Sprintf("bcast/%v/P=%d/segs=%d", alg, procs, segs)
}

// Bcast broadcasts m from root to all ranks using the chosen algorithm and
// segment size (ignored by the linear algorithm). On the root, m carries
// the payload; on other ranks, m is the destination. It must be called by
// every rank.
func Bcast(p *mpi.Proc, alg BcastAlgorithm, root int, m Msg, segSize int) {
	checkRoot(p, root)
	m.check()
	if p.Size() == 1 {
		return
	}
	switch alg {
	case BcastLinear:
		bcastBasicLinear(p, root, m)
	case BcastChain:
		bcastGeneric(p, root, m, segSize, mustTree(topo.BuildChain(p.Size(), root, 1)))
	case BcastKChain:
		bcastGeneric(p, root, m, segSize, mustTree(topo.BuildChain(p.Size(), root, DefaultKChainFanout)))
	case BcastBinary:
		bcastGeneric(p, root, m, segSize, mustTree(topo.BuildKAry(p.Size(), root, 2)))
	case BcastSplitBinary:
		bcastSplitBinary(p, root, m, segSize)
	case BcastBinomial:
		bcastGeneric(p, root, m, segSize, mustTree(topo.BuildBinomial(p.Size(), root)))
	default:
		panic(fmt.Errorf("coll: unknown broadcast algorithm %d", int(alg)))
	}
}

// bcastBasicLinear mirrors ompi_coll_base_bcast_intra_basic_linear. It is
// also the "linear tree broadcast algorithm with non-blocking
// communication" whose slowdown relative to a single point-to-point
// transfer defines the paper's γ(P) (§4.1): all P-1 sends are posted
// concurrently and serialise on the root's NIC.
func bcastBasicLinear(p *mpi.Proc, root int, m Msg) {
	me := p.Rank()
	if me != root {
		p.Recv(root, tagBcast, m.Data)
		return
	}
	reqs := make([]*mpi.Request, 0, p.Size()-1)
	for r := 0; r < p.Size(); r++ {
		if r == root {
			continue
		}
		reqs = append(reqs, p.Isend(r, tagBcast, m.Data, m.Size))
	}
	p.WaitAll(reqs...)
}

// splitPlan captures the deterministic structure every rank derives
// locally for the split-binary broadcast: which subtree each rank is in,
// the two halves, and the pairing for the final exchange.
type splitPlan struct {
	tree *topo.Tree
	// subtree[r] is 0 (left), 1 (right) or -1 for the root.
	subtree []int
	// halves[h] is the byte range [lo,hi) of half h.
	lo, hi [2]int
	// partner[r] is the rank r exchanges halves with, or -1 if r has no
	// partner (the subtrees differ in size).
	partner []int
	// serves[r] lists unpaired ranks of the opposite subtree that rank r
	// additionally sends its half to, and server[u] is the rank an
	// unpaired rank u receives its missing half from.
	serves map[int][]int
	server map[int]int
}

// planSplitBinary computes the split-binary structure for P >= 3.
func planSplitBinary(size, root int, m Msg, segSize int) splitPlan {
	pl := splitPlan{tree: mustTree(topo.BuildKAry(size, root, 2))}
	pl.subtree = make([]int, size)
	pl.partner = make([]int, size)
	for r := range pl.subtree {
		pl.subtree[r] = -1
		pl.partner[r] = -1
	}
	// BFS from each of the root's (two) children to label subtrees in a
	// deterministic order; the BFS orders also drive the pairing.
	var order [2][]int
	for h, head := range pl.tree.Children[root] {
		queue := []int{head}
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			pl.subtree[r] = h
			order[h] = append(order[h], r)
			queue = append(queue, pl.tree.Children[r]...)
		}
	}
	// Split the segments between the halves: the left half gets
	// ceil(ns/2) segments, like Open MPI rounds the split point to a
	// segment boundary.
	s := segmented(m, segSize)
	nsLeft := (s.segments + 1) / 2
	pl.lo[0], pl.hi[0] = 0, min(nsLeft*s.segSize, m.Size)
	if s.segments == 1 {
		pl.hi[0] = m.Size
	}
	pl.lo[1], pl.hi[1] = pl.hi[0], m.Size
	// Pair the i-th node of the left BFS order with the i-th of the right.
	n := min(len(order[0]), len(order[1]))
	for i := 0; i < n; i++ {
		a, b := order[0][i], order[1][i]
		pl.partner[a] = b
		pl.partner[b] = a
	}
	// The array-embedded binary tree can leave the subtrees unequal (for
	// P=90 the split is 58/31), so the surplus ranks of the bigger subtree
	// have no partner. Each fetches its missing half from a node of the
	// smaller subtree, which holds that half natively from the pipeline
	// phase; the extra sends are spread round-robin so no single node
	// serialises more than ceil(surplus/n) additional transfers. (Open MPI
	// instead falls back for awkward sizes; the relay keeps the algorithm
	// defined for every P while preserving its cost structure.)
	pl.serves = make(map[int][]int)
	pl.server = make(map[int]int)
	for h := 0; h < 2; h++ {
		for i := n; i < len(order[h]); i++ {
			u := order[h][i]
			srv := order[1-h][i%n]
			pl.server[u] = srv
			pl.serves[srv] = append(pl.serves[srv], u)
		}
	}
	return pl
}

// bcastSplitBinary mirrors ompi_coll_base_bcast_intra_split_bintree: the
// message is cut in two halves; half h is pipelined down subtree h of a
// balanced binary tree, and afterwards every rank swaps halves with a
// partner from the opposite subtree. Ranks left without a partner (the
// subtrees may differ in size by more than the pairing covers) receive
// their missing half from the root. With fewer than 3 ranks or fewer than
// 2 segments the split is meaningless and the binary tree algorithm is
// used, mirroring Open MPI's fallback to a non-split broadcast.
func bcastSplitBinary(p *mpi.Proc, root int, m Msg, segSize int) {
	size := p.Size()
	s := segmented(m, segSize)
	if size < 3 || s.segments < 2 || m.Size < 2 {
		bcastGeneric(p, root, m, segSize, mustTree(topo.BuildKAry(size, root, 2)))
		return
	}
	pl := planSplitBinary(size, root, m, segSize)
	me := p.Rank()

	if me == root {
		// Pipeline half h to child h, one segment of each half per step.
		halves := [2]segmentation{
			segmented(m.slice(pl.lo[0], pl.hi[0]), segSize),
			segmented(m.slice(pl.lo[1], pl.hi[1]), segSize),
		}
		children := pl.tree.Children[root]
		steps := halves[0].segments
		if len(children) > 1 && halves[1].segments > steps {
			steps = halves[1].segments
		}
		var reqs []*mpi.Request
		for i := 0; i < steps; i++ {
			reqs = reqs[:0]
			for h, child := range children {
				if i < halves[h].segments {
					seg := halves[h].seg(i)
					reqs = append(reqs, p.Isend(child, tagBcast, seg.Data, seg.Size))
				}
			}
			p.WaitAll(reqs...)
		}
		return
	}

	// Non-root: receive and forward my half down my subtree.
	h := pl.subtree[me]
	myHalf := m.slice(pl.lo[h], pl.hi[h])
	bcastHalfPipelined(p, pl.tree, myHalf, segSize)

	// Exchange halves: paired ranks swap with their partner; ranks serving
	// unpaired surplus nodes of the opposite subtree additionally send
	// them their native half; unpaired ranks receive from their server.
	other := m.slice(pl.lo[1-h], pl.hi[1-h])
	var reqs []*mpi.Request
	if partner := pl.partner[me]; partner >= 0 {
		reqs = append(reqs,
			p.Irecv(partner, tagXchg, other.Data),
			p.Isend(partner, tagXchg, myHalf.Data, myHalf.Size))
	} else {
		reqs = append(reqs, p.Irecv(pl.server[me], tagXchg, other.Data))
	}
	for _, u := range pl.serves[me] {
		reqs = append(reqs, p.Isend(u, tagXchg, myHalf.Data, myHalf.Size))
	}
	p.WaitAll(reqs...)
}

// bcastHalfPipelined is the interior/leaf part of the generic engine,
// operating on one half of the message within the caller's subtree.
func bcastHalfPipelined(p *mpi.Proc, tree *topo.Tree, half Msg, segSize int) {
	s := segmented(half, segSize)
	me := p.Rank()
	parent := tree.Parent[me]
	children := tree.Children[me]
	var recvReqs [2]*mpi.Request
	sendReqs := make([]*mpi.Request, len(children))
	recvReqs[0] = p.Irecv(parent, tagBcast, s.seg(0).Data)
	for i := 1; i < s.segments; i++ {
		cur := i & 1
		recvReqs[cur] = p.Irecv(parent, tagBcast, s.seg(i).Data)
		p.Wait(recvReqs[cur^1])
		prev := s.seg(i - 1)
		for c, child := range children {
			sendReqs[c] = p.Isend(child, tagBcast, prev.Data, prev.Size)
		}
		p.WaitAll(sendReqs...)
	}
	p.Wait(recvReqs[(s.segments-1)&1])
	seg := s.seg(s.segments - 1)
	for c, child := range children {
		sendReqs[c] = p.Isend(child, tagBcast, seg.Data, seg.Size)
	}
	p.WaitAll(sendReqs...)
}
