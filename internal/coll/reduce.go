package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
	"mpicollperf/internal/topo"
)

// ReduceOp combines src into dst element-wise; both slices have equal
// length. Operations must be associative and commutative (the tree
// algorithms reorder the combines).
type ReduceOp func(dst, src []byte)

// OpSum adds byte-wise modulo 256; enough to verify reduction dataflow in
// tests while staying allocation-free.
func OpSum(dst, src []byte) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// OpMax keeps the byte-wise maximum.
func OpMax(dst, src []byte) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// ReduceAlgorithm identifies a reduce implementation.
type ReduceAlgorithm int

const (
	// ReduceLinear has the root receive every rank's contribution and
	// combine them locally.
	ReduceLinear ReduceAlgorithm = iota
	// ReduceBinomial combines partial results up the binomial tree.
	ReduceBinomial
	// ReducePipeline combines segment-by-segment along a chain, the
	// reduction mirror of the pipelined broadcast.
	ReducePipeline

	numReduceAlgorithms = iota
)

// String returns the algorithm's name.
func (a ReduceAlgorithm) String() string {
	switch a {
	case ReduceLinear:
		return "linear"
	case ReduceBinomial:
		return "binomial"
	case ReducePipeline:
		return "pipeline"
	}
	return fmt.Sprintf("ReduceAlgorithm(%d)", int(a))
}

// ReduceAlgorithms lists all reduce algorithms.
func ReduceAlgorithms() []ReduceAlgorithm {
	out := make([]ReduceAlgorithm, numReduceAlgorithms)
	for i := range out {
		out[i] = ReduceAlgorithm(i)
	}
	return out
}

// Reduce combines every rank's m under op at the root. Each rank passes
// its own contribution in m; on the root, m is combined in place into the
// final result. op is ignored in synthetic mode. segSize is used only by
// the pipeline algorithm.
func Reduce(p *mpi.Proc, alg ReduceAlgorithm, root int, m Msg, op ReduceOp, segSize int) {
	checkRoot(p, root)
	m.check()
	if m.Data != nil && op == nil {
		panic(fmt.Errorf("coll: reduce with real data needs an op"))
	}
	if p.Size() == 1 {
		return
	}
	switch alg {
	case ReduceLinear:
		reduceLinear(p, root, m, op)
	case ReduceBinomial:
		reduceTree(p, root, m, op, mustTree(topo.BuildBinomial(p.Size(), root)))
	case ReducePipeline:
		reducePipeline(p, root, m, op, segSize)
	default:
		panic(fmt.Errorf("coll: unknown reduce algorithm %d", int(alg)))
	}
}

func reduceLinear(p *mpi.Proc, root int, m Msg, op ReduceOp) {
	me := p.Rank()
	if me != root {
		p.Send(root, tagReduce, m.Data, m.Size)
		return
	}
	tmp := makeScratch(m)
	for r := 0; r < p.Size(); r++ {
		if r == root {
			continue
		}
		p.Recv(r, tagReduce, tmp.Data)
		combine(m, tmp, op)
	}
}

// reduceTree combines children's partial results into the local
// contribution, then forwards the accumulated value to the parent.
func reduceTree(p *mpi.Proc, root int, m Msg, op ReduceOp, tree *topo.Tree) {
	me := p.Rank()
	tmp := makeScratch(m)
	for _, c := range tree.Children[me] {
		p.Recv(c, tagReduce, tmp.Data)
		combine(m, tmp, op)
	}
	if me != root {
		p.Send(tree.Parent[me], tagReduce, m.Data, m.Size)
	}
}

// reducePipeline streams segments down a single chain toward the root,
// combining at each hop: the reduction mirror of the chain broadcast, with
// the same (P-2+n_s)-stage cost structure.
func reducePipeline(p *mpi.Proc, root int, m Msg, op ReduceOp, segSize int) {
	tree := mustTree(topo.BuildChain(p.Size(), root, 1))
	s := segmented(m, segSize)
	me := p.Rank()
	children := tree.Children[me]
	tmp := makeScratch(s.seg(0))
	for i := 0; i < s.segments; i++ {
		seg := s.seg(i)
		if len(children) > 0 {
			// Exactly one child in a chain.
			p.Recv(children[0], tagReduce, sliceData(tmp, 0, seg.Size))
			combine(seg, Msg{Data: sliceData(tmp, 0, seg.Size), Size: seg.Size}, op)
		}
		if me != root {
			p.Send(tree.Parent[me], tagReduce, seg.Data, seg.Size)
		}
	}
}

// makeScratch allocates a receive buffer shaped like m (nil in synthetic
// mode).
func makeScratch(m Msg) Msg {
	if m.Data == nil {
		return Synthetic(m.Size)
	}
	return Bytes(make([]byte, m.Size))
}

func combine(dst, src Msg, op ReduceOp) {
	if dst.Data != nil && op != nil {
		op(dst.Data, src.Data[:dst.Size])
	}
}
