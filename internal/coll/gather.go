package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
	"mpicollperf/internal/topo"
)

// GatherAlgorithm identifies a gather implementation.
type GatherAlgorithm int

const (
	// GatherLinearNoSync is the "linear-without-synchronisation" gather of
	// the paper's §4.2: every non-root rank sends its block to the root
	// immediately, and the root collects them with non-blocking receives.
	// The P-1 inbound transfers serialise on the root's receive port, which
	// is why the paper models it as (P-1)·(α + m_g·β) (Formula 8).
	GatherLinearNoSync GatherAlgorithm = iota
	// GatherLinearSync is Open MPI's synchronised linear gather: the root
	// polls each rank in order with a zero-byte ready message before
	// receiving its block, trading time for bounded unexpected-message
	// buffering.
	GatherLinearSync
	// GatherBinomial gathers blocks up a binomial tree; interior nodes
	// forward their whole accumulated subtree block.
	GatherBinomial

	numGatherAlgorithms = iota
)

// String returns the algorithm's name.
func (a GatherAlgorithm) String() string {
	switch a {
	case GatherLinearNoSync:
		return "linear_nosync"
	case GatherLinearSync:
		return "linear_sync"
	case GatherBinomial:
		return "binomial"
	}
	return fmt.Sprintf("GatherAlgorithm(%d)", int(a))
}

// GatherAlgorithms lists all gather algorithms.
func GatherAlgorithms() []GatherAlgorithm {
	out := make([]GatherAlgorithm, numGatherAlgorithms)
	for i := range out {
		out[i] = GatherAlgorithm(i)
	}
	return out
}

// Gather collects blockSize bytes from every rank at the root. On the
// root, m must cover Size()*blockSize bytes and receives rank r's block at
// offset r*blockSize (the root's own block is copied locally); on other
// ranks, m is the blockSize-byte block to contribute. Synthetic messages
// are supported as everywhere else.
func Gather(p *mpi.Proc, alg GatherAlgorithm, root int, m Msg, blockSize int) {
	checkRoot(p, root)
	m.check()
	if blockSize < 0 {
		panic(fmt.Errorf("coll: negative gather block size %d", blockSize))
	}
	if p.Rank() == root {
		if m.Size != blockSize*p.Size() {
			panic(fmt.Errorf("coll: gather root buffer %d bytes, want %d", m.Size, blockSize*p.Size()))
		}
	} else if m.Size != blockSize {
		panic(fmt.Errorf("coll: gather contribution %d bytes, want %d", m.Size, blockSize))
	}
	if p.Size() == 1 {
		return
	}
	switch alg {
	case GatherLinearNoSync:
		gatherLinear(p, root, m, blockSize, false)
	case GatherLinearSync:
		gatherLinear(p, root, m, blockSize, true)
	case GatherBinomial:
		gatherBinomial(p, root, m, blockSize)
	default:
		panic(fmt.Errorf("coll: unknown gather algorithm %d", int(alg)))
	}
}

func gatherLinear(p *mpi.Proc, root int, m Msg, blockSize int, sync bool) {
	me := p.Rank()
	if me != root {
		if sync {
			p.Recv(root, tagGather, nil)
		}
		p.Send(root, tagGather, m.Data, m.Size)
		return
	}
	if sync {
		for r := 0; r < p.Size(); r++ {
			if r == root {
				continue
			}
			p.Send(r, tagGather, nil, 0)
			block := m.slice(r*blockSize, (r+1)*blockSize)
			p.Recv(r, tagGather, block.Data)
		}
		return
	}
	reqs := make([]*mpi.Request, 0, p.Size()-1)
	for r := 0; r < p.Size(); r++ {
		if r == root {
			continue
		}
		block := m.slice(r*blockSize, (r+1)*blockSize)
		reqs = append(reqs, p.Irecv(r, tagGather, block.Data))
	}
	p.WaitAll(reqs...)
}

// gatherBinomial gathers up the binomial tree. In vrank space, the subtree
// rooted at v covers the contiguous vrank range [v, v+subtreeSize(v)), so
// each interior node assembles one contiguous block and sends it upward in
// a single message.
func gatherBinomial(p *mpi.Proc, root int, m Msg, blockSize int) {
	size := p.Size()
	me := p.Rank()
	tree := mustTree(topo.BuildBinomial(size, root))
	vr := func(r int) int { return (r - root + size) % size }
	sub := binomialSubtreeSize(vr(me), size)

	// Assemble my subtree's block in a staging buffer laid out by vrank;
	// the root unshifts it into the rank-ordered result at the end.
	var buf Msg
	if m.Data != nil {
		buf = Bytes(make([]byte, sub*blockSize))
	} else {
		buf = Synthetic(sub * blockSize)
	}
	// My own block sits at the front of my staging buffer.
	if m.Data != nil {
		if me == root {
			copy(buf.Data[:blockSize], m.Data[root*blockSize:(root+1)*blockSize])
		} else {
			copy(buf.Data[:blockSize], m.Data)
		}
	}
	// Receive each child's contiguous subtree block.
	children := tree.Children[me]
	reqs := make([]*mpi.Request, 0, len(children))
	for _, c := range children {
		off := (vr(c) - vr(me)) * blockSize
		csub := binomialSubtreeSize(vr(c), size)
		reqs = append(reqs, p.Irecv(c, tagGather, sliceData(buf, off, off+csub*blockSize)))
	}
	p.WaitAll(reqs...)
	if me != root {
		p.Send(tree.Parent[me], tagGather, buf.Data, buf.Size)
		return
	}
	// Unshift: staging is vrank-ordered; m is rank-ordered.
	if m.Data != nil {
		for v := 0; v < size; v++ {
			r := (v + root) % size
			copy(m.Data[r*blockSize:(r+1)*blockSize], buf.Data[v*blockSize:(v+1)*blockSize])
		}
	}
}

// sliceData returns the byte sub-slice of a message, or nil in synthetic
// mode.
func sliceData(m Msg, lo, hi int) []byte {
	if m.Data == nil {
		return nil
	}
	return m.Data[lo:hi]
}

// binomialSubtreeSize returns the number of vranks in the binomial subtree
// rooted at vrank v for a tree over size ranks: the range [v, v+2^k) ∩
// [0, size) where 2^k is v's lowest set bit (the whole tree for v = 0).
func binomialSubtreeSize(v, size int) int {
	if v == 0 {
		return size
	}
	low := v & (-v)
	if v+low > size {
		return size - v
	}
	return low
}
