// Package coll implements the collective communication algorithms of Open
// MPI 3.1's coll/base component on top of the mpi runtime. It contains the
// six MPI_Bcast algorithms the paper models — linear, chain, K-chain,
// binary, split-binary and binomial — plus the gather algorithm used by
// the paper's parameter-estimation experiments and several additional
// collectives (scatter, reduce, barrier) that round the library out.
//
// The broadcast implementations deliberately mirror the structure of
// ompi_coll_base_bcast_intra_generic and its callers: segmented pipelining
// with double-buffered non-blocking receives, per-segment non-blocking
// sends to children completed before the next segment, and the same tree
// topologies (package topo). The analytical models in package model are
// *derived from this code*, which is exactly the paper's methodology
// ("implementation-derived analytical models").
//
// Every collective works in two payload modes: real mode, where []byte
// buffers are actually moved and can be verified, and synthetic mode
// (nil data with an explicit size), where only virtual time is simulated —
// used by the large benchmark sweeps.
package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
	"mpicollperf/internal/topo"
)

// Message tags; a single tag per collective suffices because the runtime
// preserves MPI non-overtaking order per (source, tag).
const (
	tagBcast     = 100
	tagGather    = 101
	tagScatter   = 102
	tagReduce    = 103
	tagBarrier   = 104
	tagXchg      = 105 // split-binary pair exchange
	tagAllgather = 106
	tagAllreduce = 107
	tagAlltoall  = 108
)

// Msg describes a collective payload: either a real buffer (Data non-nil,
// Size == len(Data)) or a synthetic message of Size bytes with no payload.
type Msg struct {
	Data []byte
	Size int
}

// Bytes returns a real-mode message over data.
func Bytes(data []byte) Msg { return Msg{Data: data, Size: len(data)} }

// Synthetic returns a payload-free message of n bytes.
func Synthetic(n int) Msg { return Msg{Size: n} }

// check panics when the message is malformed; collective entry points call
// it once.
func (m Msg) check() {
	if m.Data != nil && len(m.Data) != m.Size {
		panic(fmt.Errorf("coll: Msg.Size %d != len(Data) %d", m.Size, len(m.Data)))
	}
	if m.Size < 0 {
		panic(fmt.Errorf("coll: negative Msg.Size %d", m.Size))
	}
}

// slice returns the sub-message covering bytes [lo, hi).
func (m Msg) slice(lo, hi int) Msg {
	if lo < 0 || hi > m.Size || lo > hi {
		panic(fmt.Errorf("coll: slice [%d,%d) of %d-byte message", lo, hi, m.Size))
	}
	if m.Data != nil {
		return Msg{Data: m.Data[lo:hi], Size: hi - lo}
	}
	return Msg{Size: hi - lo}
}

// segmentation describes how a message is cut into segments of at most
// segSize bytes, mirroring Open MPI's COLL_BASE_COMPUTED_SEGCOUNT.
type segmentation struct {
	msg      Msg
	segSize  int
	segments int
}

// segmented validates segSize and returns the segmentation of m. A zero or
// negative segSize, or one at least as large as the message, yields a
// single segment (Open MPI's "segsize 0 = no segmentation" convention).
// Zero-byte messages still produce one (empty) segment so that every rank
// performs the communication pattern.
func segmented(m Msg, segSize int) segmentation {
	m.check()
	if segSize <= 0 || segSize >= m.Size {
		segSize = m.Size
	}
	n := 1
	if m.Size > 0 && segSize > 0 {
		n = (m.Size + segSize - 1) / segSize
	}
	return segmentation{msg: m, segSize: segSize, segments: n}
}

// seg returns segment i.
func (s segmentation) seg(i int) Msg {
	if i < 0 || i >= s.segments {
		panic(fmt.Errorf("coll: segment %d of %d", i, s.segments))
	}
	if s.segments == 1 {
		return s.msg
	}
	lo := i * s.segSize
	hi := lo + s.segSize
	if hi > s.msg.Size {
		hi = s.msg.Size
	}
	return s.msg.slice(lo, hi)
}

// NumSegments reports how many segments a message of size bytes splits
// into at the given segment size (n_s in the paper's formulas).
func NumSegments(size, segSize int) int {
	return segmented(Msg{Size: size}, segSize).segments
}

// bcastGeneric is the segmented, pipelined tree broadcast engine — a
// faithful port of ompi_coll_base_bcast_intra_generic:
//
//   - the root sends each segment to all children with non-blocking sends
//     and completes them before starting the next segment;
//   - interior nodes keep two receive requests in flight (double
//     buffering): they post the receive for segment i+1, wait for segment
//     i, forward it to all children with non-blocking sends, and complete
//     those sends before the next iteration;
//   - leaves pipeline double-buffered receives.
func bcastGeneric(p *mpi.Proc, root int, m Msg, segSize int, tree *topo.Tree) {
	s := segmented(m, segSize)
	me := p.Rank()
	children := tree.Children[me]
	switch {
	case me == root:
		reqs := make([]*mpi.Request, len(children))
		for i := 0; i < s.segments; i++ {
			seg := s.seg(i)
			for c, child := range children {
				reqs[c] = p.Isend(child, tagBcast, seg.Data, seg.Size)
			}
			p.WaitAll(reqs...)
		}
	case len(children) > 0:
		parent := tree.Parent[me]
		var recvReqs [2]*mpi.Request
		sendReqs := make([]*mpi.Request, len(children))
		recvReqs[0] = p.Irecv(parent, tagBcast, s.seg(0).Data)
		for i := 1; i < s.segments; i++ {
			cur := i & 1
			recvReqs[cur] = p.Irecv(parent, tagBcast, s.seg(i).Data)
			p.Wait(recvReqs[cur^1])
			prev := s.seg(i - 1)
			for c, child := range children {
				sendReqs[c] = p.Isend(child, tagBcast, prev.Data, prev.Size)
			}
			p.WaitAll(sendReqs...)
		}
		last := (s.segments - 1) & 1
		p.Wait(recvReqs[last])
		seg := s.seg(s.segments - 1)
		for c, child := range children {
			sendReqs[c] = p.Isend(child, tagBcast, seg.Data, seg.Size)
		}
		p.WaitAll(sendReqs...)
	default:
		parent := tree.Parent[me]
		var recvReqs [2]*mpi.Request
		recvReqs[0] = p.Irecv(parent, tagBcast, s.seg(0).Data)
		for i := 1; i < s.segments; i++ {
			cur := i & 1
			recvReqs[cur] = p.Irecv(parent, tagBcast, s.seg(i).Data)
			p.Wait(recvReqs[cur^1])
		}
		p.Wait(recvReqs[(s.segments-1)&1])
	}
}

// checkRoot panics unless root is a valid rank for p's communicator.
func checkRoot(p *mpi.Proc, root int) {
	if root < 0 || root >= p.Size() {
		panic(fmt.Errorf("coll: root %d outside 0..%d", root, p.Size()-1))
	}
}

func mustTree(t *topo.Tree, err error) *topo.Tree {
	if err != nil {
		panic(err)
	}
	return t
}
