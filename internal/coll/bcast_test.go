package coll

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpicollperf/internal/mpi"
	"mpicollperf/internal/simnet"
)

func testConfig(nodes int) simnet.Config {
	return simnet.Config{
		Nodes:        nodes,
		Latency:      20e-6,
		ByteTimeSend: 1e-9,
		ByteTimeRecv: 1e-9,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
	}
}

// pattern fills a deterministic, position-dependent payload so that any
// misdirected or reordered segment corrupts the checksum.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 ^ seed ^ byte(i>>8)
	}
	return b
}

// runBcast broadcasts a pattern payload and verifies every rank received
// it intact.
func runBcast(t *testing.T, alg BcastAlgorithm, nprocs, size, segSize, root int) {
	t.Helper()
	payload := pattern(size, byte(root)+1)
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		var m Msg
		if p.Rank() == root {
			m = Bytes(append([]byte(nil), payload...))
		} else {
			m = Bytes(make([]byte, size))
		}
		Bcast(p, alg, root, m, segSize)
		if !bytes.Equal(m.Data, payload) {
			return fmt.Errorf("rank %d: corrupted broadcast (alg %v, P=%d, m=%d, seg=%d, root=%d)",
				p.Rank(), alg, nprocs, size, segSize, root)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllAlgorithmsDeliver(t *testing.T) {
	for _, alg := range BcastAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 4, 5, 7, 8, 12, 16, 23} {
				for _, size := range []int{1, 64, 1000, 4096} {
					runBcast(t, alg, nprocs, size, 512, 0)
				}
			}
		})
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	for _, alg := range BcastAlgorithms() {
		for _, root := range []int{1, 3, 6} {
			runBcast(t, alg, 7, 777, 128, root)
		}
	}
}

func TestBcastSingleSegment(t *testing.T) {
	// Segment size >= message: no segmentation, still correct.
	for _, alg := range BcastAlgorithms() {
		runBcast(t, alg, 6, 100, 1<<20, 0)
		runBcast(t, alg, 6, 100, 0, 0) // segsize 0 = unsegmented
	}
}

func TestBcastSingleRank(t *testing.T) {
	_, err := mpi.Run(testConfig(1), 1, func(p *mpi.Proc) error {
		Bcast(p, BcastBinomial, 0, Bytes([]byte{1, 2, 3}), 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastZeroBytes(t *testing.T) {
	for _, alg := range BcastAlgorithms() {
		alg := alg
		_, err := mpi.Run(testConfig(5), 5, func(p *mpi.Proc) error {
			Bcast(p, alg, 0, Synthetic(0), 8192)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestBcastSyntheticMode(t *testing.T) {
	// Synthetic payloads must complete and take identical virtual time to
	// real payloads of the same size.
	for _, alg := range BcastAlgorithms() {
		alg := alg
		const size, seg = 10000, 1024
		realRes, err := mpi.Run(testConfig(9), 9, func(p *mpi.Proc) error {
			var m Msg
			if p.Rank() == 0 {
				m = Bytes(pattern(size, 3))
			} else {
				m = Bytes(make([]byte, size))
			}
			Bcast(p, alg, 0, m, seg)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		synRes, err := mpi.Run(testConfig(9), 9, func(p *mpi.Proc) error {
			Bcast(p, alg, 0, Synthetic(size), seg)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if realRes.MakeSpan != synRes.MakeSpan {
			t.Fatalf("%v: synthetic timing %v != real timing %v",
				alg, synRes.MakeSpan, realRes.MakeSpan)
		}
	}
}

func TestBcastInvalidArgs(t *testing.T) {
	cases := []struct {
		name string
		fn   func(p *mpi.Proc)
	}{
		{"bad root", func(p *mpi.Proc) { Bcast(p, BcastBinomial, 99, Synthetic(8), 4) }},
		{"bad alg", func(p *mpi.Proc) { Bcast(p, BcastAlgorithm(42), 0, Synthetic(8), 4) }},
		{"size mismatch", func(p *mpi.Proc) { Bcast(p, BcastBinomial, 0, Msg{Data: []byte{1}, Size: 5}, 4) }},
		{"negative size", func(p *mpi.Proc) { Bcast(p, BcastBinomial, 0, Msg{Size: -2}, 4) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := mpi.Run(testConfig(3), 3, func(p *mpi.Proc) error {
				c.fn(p)
				return nil
			})
			if err == nil {
				t.Fatalf("%s: expected error", c.name)
			}
		})
	}
}

func TestParseBcastAlgorithm(t *testing.T) {
	for _, a := range BcastAlgorithms() {
		got, err := ParseBcastAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip failed for %v", a)
		}
	}
	if _, err := ParseBcastAlgorithm("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if BcastAlgorithm(99).String() == "" {
		t.Fatal("unknown algorithm should still stringify")
	}
}

func TestSegmentedProperties(t *testing.T) {
	s := segmented(Msg{Size: 10000}, 1024)
	if s.segments != 10 {
		t.Fatalf("segments = %d", s.segments)
	}
	total := 0
	for i := 0; i < s.segments; i++ {
		total += s.seg(i).Size
		if i < s.segments-1 && s.seg(i).Size != 1024 {
			t.Fatalf("segment %d size %d", i, s.seg(i).Size)
		}
	}
	if total != 10000 {
		t.Fatalf("segments cover %d bytes", total)
	}
	if NumSegments(4<<20, 8192) != 512 {
		t.Fatalf("NumSegments(4MB, 8KB) = %d", NumSegments(4<<20, 8192))
	}
	if NumSegments(100, 0) != 1 || NumSegments(0, 8192) != 1 {
		t.Fatal("degenerate segment counts")
	}
}

// Property: segmentation covers the message exactly, in order, for any
// (size, segSize).
func TestSegmentationCoversProperty(t *testing.T) {
	f := func(sizeRaw uint16, segRaw uint8) bool {
		size := int(sizeRaw)
		seg := int(segRaw)
		s := segmented(Msg{Size: size}, seg)
		total := 0
		for i := 0; i < s.segments; i++ {
			m := s.seg(i)
			if m.Size < 0 {
				return false
			}
			total += m.Size
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every broadcast algorithm delivers an arbitrary payload for
// arbitrary (P, size, segSize, root).
func TestBcastDeliversProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(algRaw, npRaw, rootRaw uint8, sizeRaw uint16, segRaw uint8) bool {
		alg := BcastAlgorithm(int(algRaw) % numBcastAlgorithms)
		nprocs := int(npRaw%20) + 2
		root := int(rootRaw) % nprocs
		size := int(sizeRaw%5000) + 1
		segSize := int(segRaw)%700 + 1
		payload := make([]byte, size)
		rng.Read(payload)
		ok := true
		_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
			var m Msg
			if p.Rank() == root {
				m = Bytes(append([]byte(nil), payload...))
			} else {
				m = Bytes(make([]byte, size))
			}
			Bcast(p, alg, root, m, segSize)
			if !bytes.Equal(m.Data, payload) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBinaryPairingCoversAllRanks(t *testing.T) {
	// Every non-root rank must end up with a source for its missing half.
	for size := 3; size <= 64; size++ {
		pl := planSplitBinary(size, 0, Msg{Size: 16384}, 1024)
		for r := 1; r < size; r++ {
			if pl.subtree[r] < 0 {
				t.Fatalf("P=%d: rank %d not assigned to a subtree", size, r)
			}
			if pl.partner[r] < 0 {
				if _, ok := pl.server[r]; !ok {
					t.Fatalf("P=%d: rank %d has neither partner nor server", size, r)
				}
			}
		}
		// Partners must be in opposite subtrees.
		for r := 1; r < size; r++ {
			if q := pl.partner[r]; q >= 0 && pl.subtree[q] == pl.subtree[r] {
				t.Fatalf("P=%d: pair (%d,%d) in same subtree", size, r, q)
			}
		}
		// Halves must tile the message.
		if pl.lo[0] != 0 || pl.hi[0] != pl.lo[1] || pl.hi[1] != 16384 {
			t.Fatalf("P=%d: halves don't tile: %v %v", size, pl.lo, pl.hi)
		}
	}
}

func TestChainIsPipelineTopology(t *testing.T) {
	// The chain algorithm's completion time must scale with P + n_s, not
	// P * n_s: with pipelining, doubling the segments should add roughly
	// the per-segment time, not double the total.
	cfg := testConfig(16)
	timeFor := func(segs int) float64 {
		const seg = 8192
		res, err := mpi.Run(cfg, 16, func(p *mpi.Proc) error {
			Bcast(p, BcastChain, 0, Synthetic(seg*segs), seg)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	t8, t16 := timeFor(8), timeFor(16)
	if t16 > 1.6*t8 {
		t.Fatalf("chain not pipelined: t(16 segs)=%v vs t(8 segs)=%v", t16, t8)
	}
}

func TestLinearSlowerThanTreesAtLargeP(t *testing.T) {
	// For many processes and a large message, the linear algorithm's
	// serialised root must lose to the pipelined chain — the basic fact
	// that motivates algorithm selection.
	cfg := testConfig(24)
	const size = 1 << 20
	timeFor := func(alg BcastAlgorithm) float64 {
		res, err := mpi.Run(cfg, 24, func(p *mpi.Proc) error {
			Bcast(p, alg, 0, Synthetic(size), 8192)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	lin, chain := timeFor(BcastLinear), timeFor(BcastChain)
	if lin <= chain {
		t.Fatalf("linear (%v) should be slower than chain (%v) at P=24, m=1MB", lin, chain)
	}
}

func TestBinomialBeatsChainForSmallMessages(t *testing.T) {
	// Small message, many processes: latency dominates, so the log-depth
	// binomial tree must beat the P-deep chain.
	cfg := testConfig(32)
	timeFor := func(alg BcastAlgorithm) float64 {
		res, err := mpi.Run(cfg, 32, func(p *mpi.Proc) error {
			Bcast(p, alg, 0, Synthetic(8192), 8192)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	bin, chain := timeFor(BcastBinomial), timeFor(BcastChain)
	if bin >= chain {
		t.Fatalf("binomial (%v) should beat chain (%v) for one small segment", bin, chain)
	}
}
