package coll

import (
	"bytes"
	"testing"

	"mpicollperf/internal/mpi"
)

// TestBcastEdgeCases drives every broadcast algorithm through the
// boundary geometries where tree construction and segmentation degenerate:
// a lone process, the two-process tree, non-power-of-two communicators,
// empty and single-byte payloads, and a segment size exceeding the
// message. Each case must deliver the payload intact on every rank.
func TestBcastEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		nprocs  int
		size    int
		segSize int
	}{
		{"P1/empty", 1, 0, 8192},
		{"P1/one-byte", 1, 1, 8192},
		{"P2/empty", 2, 0, 8192},
		{"P2/one-byte", 2, 1, 8192},
		{"P2/seg-exceeds-msg", 2, 100, 1 << 20},
		{"P3/empty", 3, 0, 8192},
		{"P3/one-byte", 3, 1, 8192},
		{"P5/empty", 5, 0, 8192},
		{"P5/one-byte", 5, 1, 8192},
		{"P5/seg-exceeds-msg", 5, 4095, 8192},
		{"P7/one-byte", 7, 1, 8192},
		{"P7/seg-exceeds-msg", 7, 8191, 8192},
		{"P12/empty", 12, 0, 8192},
		{"P12/one-byte", 12, 1, 8192},
		{"P13/seg-exceeds-msg", 13, 777, 1024},
	}
	for _, alg := range BcastAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, c := range cases {
				t.Run(c.name, func(t *testing.T) {
					payload := pattern(c.size, 7)
					_, err := mpi.Run(testConfig(c.nprocs), c.nprocs, func(p *mpi.Proc) error {
						var m Msg
						if p.Rank() == 0 {
							m = Bytes(append([]byte{}, payload...))
						} else {
							m = Bytes(make([]byte, c.size))
						}
						Bcast(p, alg, 0, m, c.segSize)
						if !bytes.Equal(m.Data, payload) {
							t.Errorf("rank %d: corrupted payload", p.Rank())
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}
