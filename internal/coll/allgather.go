package coll

import (
	"fmt"
	"math/bits"

	"mpicollperf/internal/mpi"
)

// AllgatherAlgorithm identifies an allgather implementation. These mirror
// Open MPI's coll/base allgather algorithms and extend the reproduction
// toward the paper's stated future work (model-based selection for other
// collectives).
type AllgatherAlgorithm int

const (
	// AllgatherRing passes blocks around a ring for P-1 steps; each step
	// every rank sends its newest block to the right neighbour.
	AllgatherRing AllgatherAlgorithm = iota
	// AllgatherRecursiveDoubling exchanges doubling block ranges with a
	// partner at distance 2^k; it requires a power-of-two rank count and
	// falls back to the ring otherwise, like Open MPI.
	AllgatherRecursiveDoubling
	// AllgatherBruck runs ceil(log2 P) store-and-forward rounds and works
	// for any P.
	AllgatherBruck
	// AllgatherGatherBcast gathers everything to rank 0 (binomial) and
	// broadcasts the result (binomial), Open MPI's two-phase fallback.
	AllgatherGatherBcast

	numAllgatherAlgorithms = iota
)

// String returns the algorithm's name.
func (a AllgatherAlgorithm) String() string {
	switch a {
	case AllgatherRing:
		return "ring"
	case AllgatherRecursiveDoubling:
		return "recursive_doubling"
	case AllgatherBruck:
		return "bruck"
	case AllgatherGatherBcast:
		return "gather_bcast"
	}
	return fmt.Sprintf("AllgatherAlgorithm(%d)", int(a))
}

// AllgatherAlgorithms lists all allgather algorithms.
func AllgatherAlgorithms() []AllgatherAlgorithm {
	out := make([]AllgatherAlgorithm, numAllgatherAlgorithms)
	for i := range out {
		out[i] = AllgatherAlgorithm(i)
	}
	return out
}

// Allgather collects blockSize bytes from every rank at every rank. m must
// cover Size()*blockSize bytes on every rank; on entry, rank r's own block
// occupies m[r*blockSize:(r+1)*blockSize]; on return all blocks are filled.
func Allgather(p *mpi.Proc, alg AllgatherAlgorithm, m Msg, blockSize int) {
	m.check()
	if blockSize < 0 {
		panic(fmt.Errorf("coll: negative allgather block size %d", blockSize))
	}
	if m.Size != blockSize*p.Size() {
		panic(fmt.Errorf("coll: allgather buffer %d bytes, want %d", m.Size, blockSize*p.Size()))
	}
	if p.Size() == 1 {
		return
	}
	switch alg {
	case AllgatherRing:
		allgatherRing(p, m, blockSize)
	case AllgatherRecursiveDoubling:
		if bits.OnesCount(uint(p.Size())) != 1 {
			allgatherRing(p, m, blockSize) // Open MPI-style fallback
			return
		}
		allgatherRecDbl(p, m, blockSize)
	case AllgatherBruck:
		allgatherBruck(p, m, blockSize)
	case AllgatherGatherBcast:
		const root = 0
		if p.Rank() == root {
			Gather(p, GatherBinomial, root, m, blockSize)
		} else {
			own := m.slice(p.Rank()*blockSize, (p.Rank()+1)*blockSize)
			Gather(p, GatherBinomial, root, own, blockSize)
		}
		Bcast(p, BcastBinomial, root, m, blockSize)
	default:
		panic(fmt.Errorf("coll: unknown allgather algorithm %d", int(alg)))
	}
}

func allgatherRing(p *mpi.Proc, m Msg, bs int) {
	size := p.Size()
	me := p.Rank()
	right := (me + 1) % size
	left := (me - 1 + size) % size
	// In step k we send the block that originated at rank (me-k) mod P and
	// receive the one from (me-k-1) mod P.
	for k := 0; k < size-1; k++ {
		sendOrigin := (me - k + size) % size
		recvOrigin := (me - k - 1 + size) % size
		sb := m.slice(sendOrigin*bs, (sendOrigin+1)*bs)
		rb := m.slice(recvOrigin*bs, (recvOrigin+1)*bs)
		rs := p.Isend(right, tagAllgather, sb.Data, sb.Size)
		rr := p.Irecv(left, tagAllgather, rb.Data)
		p.WaitAll(rs, rr)
	}
}

func allgatherRecDbl(p *mpi.Proc, m Msg, bs int) {
	size := p.Size()
	me := p.Rank()
	// After round k each rank holds the 2^(k+1)-aligned group containing
	// it; exchange the whole held range with the partner me XOR 2^k.
	for dist := 1; dist < size; dist <<= 1 {
		partner := me ^ dist
		myLo := me &^ (dist - 1) // base of my currently held range
		partnerLo := partner &^ (dist - 1)
		held := dist * bs
		sb := m.slice(myLo*bs, myLo*bs+held)
		rb := m.slice(partnerLo*bs, partnerLo*bs+held)
		rs := p.Isend(partner, tagAllgather, sb.Data, sb.Size)
		rr := p.Irecv(partner, tagAllgather, rb.Data)
		p.WaitAll(rs, rr)
	}
}

// allgatherBruck implements the Bruck algorithm: rank r works in a rotated
// index space where its own block is slot 0; in round k it sends its first
// min(2^k, P-2^k) slots to rank r-2^k and receives the next slots from
// rank r+2^k. A final local rotation restores rank order (free in
// synthetic mode).
func allgatherBruck(p *mpi.Proc, m Msg, bs int) {
	size := p.Size()
	me := p.Rank()
	// Staging buffer in rotated order: slot i holds the block of rank
	// (me+i) mod P.
	var stage Msg
	if m.Data != nil {
		stage = Bytes(make([]byte, m.Size))
		copy(stage.Data[:bs], m.Data[me*bs:(me+1)*bs])
	} else {
		stage = Synthetic(m.Size)
	}
	have := 1
	for dist := 1; dist < size; dist <<= 1 {
		cnt := min(have, size-have)
		to := (me - dist + size) % size
		from := (me + dist) % size
		sb := stage.slice(0, cnt*bs)
		rb := stage.slice(have*bs, (have+cnt)*bs)
		rs := p.Isend(to, tagAllgather, sb.Data, sb.Size)
		rr := p.Irecv(from, tagAllgather, rb.Data)
		p.WaitAll(rs, rr)
		have += cnt
	}
	// Un-rotate into rank order.
	if m.Data != nil {
		for i := 0; i < size; i++ {
			r := (me + i) % size
			copy(m.Data[r*bs:(r+1)*bs], stage.Data[i*bs:(i+1)*bs])
		}
	}
}
