package coll

import (
	"fmt"
	"math/bits"

	"mpicollperf/internal/mpi"
)

// AllreduceAlgorithm identifies an allreduce implementation.
type AllreduceAlgorithm int

const (
	// AllreduceReduceBcast reduces to rank 0 (binomial) and broadcasts the
	// result (binomial) — the basic two-phase composition.
	AllreduceReduceBcast AllreduceAlgorithm = iota
	// AllreduceRecursiveDoubling exchanges and combines full vectors with
	// partners at doubling distances; power-of-two rank counts only, with
	// a reduce+bcast fallback otherwise.
	AllreduceRecursiveDoubling
	// AllreduceRing is the bandwidth-optimal ring (Rabenseifner style):
	// a reduce-scatter ring pass followed by an allgather ring pass, with
	// each rank owning the P-th chunk of the vector.
	AllreduceRing

	numAllreduceAlgorithms = iota
)

// String returns the algorithm's name.
func (a AllreduceAlgorithm) String() string {
	switch a {
	case AllreduceReduceBcast:
		return "reduce_bcast"
	case AllreduceRecursiveDoubling:
		return "recursive_doubling"
	case AllreduceRing:
		return "ring"
	}
	return fmt.Sprintf("AllreduceAlgorithm(%d)", int(a))
}

// AllreduceAlgorithms lists all allreduce algorithms.
func AllreduceAlgorithms() []AllreduceAlgorithm {
	out := make([]AllreduceAlgorithm, numAllreduceAlgorithms)
	for i := range out {
		out[i] = AllreduceAlgorithm(i)
	}
	return out
}

// Allreduce combines every rank's m under op and leaves the result in m on
// every rank. op is ignored in synthetic mode.
func Allreduce(p *mpi.Proc, alg AllreduceAlgorithm, m Msg, op ReduceOp, segSize int) {
	m.check()
	if m.Data != nil && op == nil {
		panic(fmt.Errorf("coll: allreduce with real data needs an op"))
	}
	if p.Size() == 1 {
		return
	}
	switch alg {
	case AllreduceReduceBcast:
		Reduce(p, ReduceBinomial, 0, m, op, segSize)
		Bcast(p, BcastBinomial, 0, m, segSize)
	case AllreduceRecursiveDoubling:
		if bits.OnesCount(uint(p.Size())) != 1 {
			Reduce(p, ReduceBinomial, 0, m, op, segSize)
			Bcast(p, BcastBinomial, 0, m, segSize)
			return
		}
		allreduceRecDbl(p, m, op)
	case AllreduceRing:
		allreduceRing(p, m, op)
	default:
		panic(fmt.Errorf("coll: unknown allreduce algorithm %d", int(alg)))
	}
}

func allreduceRecDbl(p *mpi.Proc, m Msg, op ReduceOp) {
	size := p.Size()
	me := p.Rank()
	tmp := makeScratch(m)
	for dist := 1; dist < size; dist <<= 1 {
		partner := me ^ dist
		rs := p.Isend(partner, tagAllreduce, m.Data, m.Size)
		rr := p.Irecv(partner, tagAllreduce, tmp.Data)
		p.WaitAll(rs, rr)
		combine(m, tmp, op)
	}
}

// allreduceRing splits the vector into P chunks. Phase 1 (reduce-scatter):
// P-1 ring steps after which rank r holds the fully reduced chunk
// (r+1) mod P. Phase 2 (allgather): P-1 ring steps circulating the reduced
// chunks. Total traffic per rank: 2·(P-1)/P of the vector — bandwidth
// optimal.
func allreduceRing(p *mpi.Proc, m Msg, op ReduceOp) {
	size := p.Size()
	me := p.Rank()
	right := (me + 1) % size
	left := (me - 1 + size) % size
	// Chunk boundaries (the last chunk absorbs the remainder).
	chunk := func(i int) (lo, hi int) {
		c := m.Size / size
		lo = i * c
		hi = lo + c
		if i == size-1 {
			hi = m.Size
		}
		return
	}
	maxChunk := m.Size - (size-1)*(m.Size/size)
	if c := m.Size / size; c > maxChunk {
		maxChunk = c
	}
	tmp := makeScratch(Msg{Size: maxChunk, Data: nil})
	if m.Data != nil {
		tmp = Bytes(make([]byte, maxChunk))
	}
	// Phase 1: reduce-scatter. In step k, send chunk (me-k) and combine
	// incoming chunk (me-k-1).
	for k := 0; k < size-1; k++ {
		si := (me - k + size) % size
		ri := (me - k - 1 + size) % size
		slo, shi := chunk(si)
		rlo, rhi := chunk(ri)
		sb := m.slice(slo, shi)
		rs := p.Isend(right, tagAllreduce, sb.Data, sb.Size)
		rr := p.Irecv(left, tagAllreduce, sliceData(tmp, 0, rhi-rlo))
		p.WaitAll(rs, rr)
		dst := m.slice(rlo, rhi)
		combine(dst, Msg{Data: sliceData(tmp, 0, rhi-rlo), Size: rhi - rlo}, op)
	}
	// After phase 1, rank me holds the reduced chunk (me+1) mod P.
	// Phase 2: allgather of the reduced chunks around the same ring.
	for k := 0; k < size-1; k++ {
		si := (me + 1 - k + 2*size) % size
		ri := (me - k + size) % size
		slo, shi := chunk(si)
		rlo, rhi := chunk(ri)
		sb := m.slice(slo, shi)
		rb := m.slice(rlo, rhi)
		rs := p.Isend(right, tagAllreduce, sb.Data, sb.Size)
		rr := p.Irecv(left, tagAllreduce, rb.Data)
		p.WaitAll(rs, rr)
	}
}
