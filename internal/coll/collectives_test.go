package coll

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mpicollperf/internal/mpi"
)

func runScatter(t *testing.T, alg ScatterAlgorithm, nprocs, blockSize, root int) {
	t.Helper()
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		var m Msg
		if p.Rank() == root {
			full := make([]byte, blockSize*nprocs)
			for r := 0; r < nprocs; r++ {
				copy(full[r*blockSize:(r+1)*blockSize], pattern(blockSize, byte(r)))
			}
			m = Bytes(full)
		} else {
			m = Bytes(make([]byte, blockSize))
		}
		Scatter(p, alg, root, m, blockSize)
		if p.Rank() != root {
			if !bytes.Equal(m.Data, pattern(blockSize, byte(p.Rank()))) {
				return fmt.Errorf("rank %d: wrong scatter block (alg %v, P=%d, root=%d)",
					p.Rank(), alg, nprocs, root)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterAllAlgorithms(t *testing.T) {
	for _, alg := range ScatterAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 5, 8, 13} {
				for _, bs := range []int{1, 33, 256} {
					runScatter(t, alg, nprocs, bs, 0)
				}
			}
		})
	}
}

func TestScatterNonZeroRoot(t *testing.T) {
	for _, alg := range ScatterAlgorithms() {
		for _, root := range []int{2, 5} {
			runScatter(t, alg, 6, 48, root)
		}
	}
}

func TestScatterBinomialBeatsLinearWhenOverheadDominates(t *testing.T) {
	// Binomial scatter sends O(log P) messages from the root instead of
	// P-1, so when the per-message CPU overhead dominates (high o_s, low
	// latency) it must beat the linear scatter. The opposite holds on
	// latency-dominated networks — both directions are what makes
	// algorithm selection non-trivial.
	cfg := testConfig(32)
	cfg.SendOverhead = 10e-6
	cfg.Latency = 2e-6
	timeFor := func(alg ScatterAlgorithm) float64 {
		res, err := mpi.Run(cfg, 32, func(p *mpi.Proc) error {
			if p.Rank() == 0 {
				Scatter(p, alg, 0, Synthetic(32*64), 64)
			} else {
				Scatter(p, alg, 0, Synthetic(64), 64)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	lin, bin := timeFor(ScatterLinear), timeFor(ScatterBinomial)
	if bin >= lin {
		t.Fatalf("binomial scatter (%v) should beat linear (%v) for small blocks at P=32", bin, lin)
	}
}

func runReduce(t *testing.T, alg ReduceAlgorithm, nprocs, size, root, segSize int) {
	t.Helper()
	// Every rank contributes its rank value repeated; byte-wise sum at the
	// root must equal sum(0..P-1) mod 256 in every position.
	wantByte := byte((nprocs * (nprocs - 1) / 2) % 256)
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		contrib := make([]byte, size)
		for i := range contrib {
			contrib[i] = byte(p.Rank())
		}
		Reduce(p, alg, root, Bytes(contrib), OpSum, segSize)
		if p.Rank() == root {
			for i, b := range contrib {
				if b != wantByte {
					return fmt.Errorf("root byte %d = %d, want %d (alg %v, P=%d)",
						i, b, wantByte, alg, nprocs)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAllAlgorithms(t *testing.T) {
	for _, alg := range ReduceAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 5, 9, 16} {
				for _, size := range []int{1, 100, 4000} {
					runReduce(t, alg, nprocs, size, 0, 512)
				}
			}
		})
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	for _, alg := range ReduceAlgorithms() {
		runReduce(t, alg, 7, 123, 3, 64)
	}
}

func TestReduceOpMax(t *testing.T) {
	_, err := mpi.Run(testConfig(4), 4, func(p *mpi.Proc) error {
		contrib := []byte{byte(p.Rank() * 10), byte(100 - p.Rank())}
		Reduce(p, ReduceBinomial, 0, Bytes(contrib), OpMax, 0)
		if p.Rank() == 0 {
			if contrib[0] != 30 || contrib[1] != 100 {
				return fmt.Errorf("max reduce = %v", contrib)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSynthetic(t *testing.T) {
	for _, alg := range ReduceAlgorithms() {
		alg := alg
		_, err := mpi.Run(testConfig(6), 6, func(p *mpi.Proc) error {
			Reduce(p, alg, 0, Synthetic(10000), nil, 1024)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestReduceNeedsOpForRealData(t *testing.T) {
	_, err := mpi.Run(testConfig(2), 2, func(p *mpi.Proc) error {
		Reduce(p, ReduceLinear, 0, Bytes([]byte{1}), nil, 0)
		return nil
	})
	if err == nil {
		t.Fatal("real-data reduce without op should fail")
	}
}

func TestBarrierAlgorithms(t *testing.T) {
	for _, alg := range BarrierAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{1, 2, 3, 7, 8, 15} {
				after := make([]float64, nprocs)
				_, err := mpi.Run(testConfig(max(nprocs, 1)), nprocs, func(p *mpi.Proc) error {
					d := float64(p.Rank()) * 1e-4
					p.Sleep(d)
					Barrier(p, alg)
					after[p.Rank()] = p.Now()
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				// No rank may leave the barrier before the slowest entered.
				for r, tm := range after {
					if nprocs > 1 && tm < float64(nprocs-1)*1e-4 {
						t.Fatalf("P=%d: rank %d left barrier at %v before slowest arrival", nprocs, r, tm)
					}
				}
			}
		})
	}
}

// Property: reduce result is permutation-independent data-wise — the sum
// over ranks is fixed regardless of algorithm.
func TestReduceAlgorithmsAgreeProperty(t *testing.T) {
	f := func(npRaw, sizeRaw uint8) bool {
		nprocs := int(npRaw%12) + 2
		size := int(sizeRaw%200) + 1
		results := make([][]byte, 0, numReduceAlgorithms)
		for _, alg := range ReduceAlgorithms() {
			var got []byte
			_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
				contrib := pattern(size, byte(p.Rank()*7))
				Reduce(p, alg, 0, Bytes(contrib), OpSum, 64)
				if p.Rank() == 0 {
					got = append([]byte(nil), contrib...)
				}
				return nil
			})
			if err != nil {
				return false
			}
			results = append(results, got)
		}
		for i := 1; i < len(results); i++ {
			if !bytes.Equal(results[0], results[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
