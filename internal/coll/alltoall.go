package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
)

// AlltoallAlgorithm identifies an all-to-all personalised exchange
// implementation.
type AlltoallAlgorithm int

const (
	// AlltoallLinear posts all P-1 sends and receives at once (Open MPI's
	// basic linear algorithm).
	AlltoallLinear AlltoallAlgorithm = iota
	// AlltoallPairwise runs P-1 rounds; in round k every rank exchanges
	// with partner (rank XOR k adjusted for non-powers: (rank+k) mod P
	// send, (rank-k) mod P receive), keeping exactly one exchange in
	// flight per rank.
	AlltoallPairwise
	// AlltoallBruck is the log-round store-and-forward algorithm: messages
	// whose destination's k-th base-2 digit is set travel together in
	// round k, trading bandwidth (each payload moves up to log2 P times)
	// for latency.
	AlltoallBruck

	numAlltoallAlgorithms = iota
)

// String returns the algorithm's name.
func (a AlltoallAlgorithm) String() string {
	switch a {
	case AlltoallLinear:
		return "linear"
	case AlltoallPairwise:
		return "pairwise"
	case AlltoallBruck:
		return "bruck"
	}
	return fmt.Sprintf("AlltoallAlgorithm(%d)", int(a))
}

// AlltoallAlgorithms lists all alltoall algorithms.
func AlltoallAlgorithms() []AlltoallAlgorithm {
	out := make([]AlltoallAlgorithm, numAlltoallAlgorithms)
	for i := range out {
		out[i] = AlltoallAlgorithm(i)
	}
	return out
}

// Alltoall performs a personalised exchange: send holds Size()*blockSize
// bytes with the block for rank r at offset r*blockSize, and recv (same
// layout) receives rank r's block for this rank at offset r*blockSize. A
// rank's block for itself is copied locally.
func Alltoall(p *mpi.Proc, alg AlltoallAlgorithm, send, recv Msg, blockSize int) {
	send.check()
	recv.check()
	if blockSize < 0 {
		panic(fmt.Errorf("coll: negative alltoall block size %d", blockSize))
	}
	want := blockSize * p.Size()
	if send.Size != want || recv.Size != want {
		panic(fmt.Errorf("coll: alltoall buffers (%d, %d) bytes, want %d", send.Size, recv.Size, want))
	}
	if (send.Data == nil) != (recv.Data == nil) {
		panic(fmt.Errorf("coll: alltoall buffers must both be real or both synthetic"))
	}
	me := p.Rank()
	if send.Data != nil {
		copy(recv.Data[me*blockSize:(me+1)*blockSize], send.Data[me*blockSize:(me+1)*blockSize])
	}
	if p.Size() == 1 {
		return
	}
	switch alg {
	case AlltoallLinear:
		alltoallLinear(p, send, recv, blockSize)
	case AlltoallPairwise:
		alltoallPairwise(p, send, recv, blockSize)
	case AlltoallBruck:
		alltoallBruck(p, send, recv, blockSize)
	default:
		panic(fmt.Errorf("coll: unknown alltoall algorithm %d", int(alg)))
	}
}

func alltoallLinear(p *mpi.Proc, send, recv Msg, bs int) {
	size := p.Size()
	me := p.Rank()
	reqs := make([]*mpi.Request, 0, 2*(size-1))
	for r := 0; r < size; r++ {
		if r == me {
			continue
		}
		rb := recv.slice(r*bs, (r+1)*bs)
		reqs = append(reqs, p.Irecv(r, tagAlltoall, rb.Data))
	}
	for r := 0; r < size; r++ {
		if r == me {
			continue
		}
		sb := send.slice(r*bs, (r+1)*bs)
		reqs = append(reqs, p.Isend(r, tagAlltoall, sb.Data, sb.Size))
	}
	p.WaitAll(reqs...)
}

func alltoallPairwise(p *mpi.Proc, send, recv Msg, bs int) {
	size := p.Size()
	me := p.Rank()
	for k := 1; k < size; k++ {
		to := (me + k) % size
		from := (me - k + size) % size
		sb := send.slice(to*bs, (to+1)*bs)
		rb := recv.slice(from*bs, (from+1)*bs)
		rs := p.Isend(to, tagAlltoall, sb.Data, sb.Size)
		rr := p.Irecv(from, tagAlltoall, rb.Data)
		p.WaitAll(rs, rr)
	}
}

// alltoallBruck works in a rotated block space: rank r first rotates its
// send blocks so that the block for destination (r+i) mod P sits at slot
// i. In round k (distance d = 2^k) every slot whose index has bit k set is
// shipped to rank (r+d) mod P in a single aggregated message... after
// ceil(log2 P) rounds slot i holds the block *from* rank (r-i) mod P, and
// a final rotation restores rank order.
func alltoallBruck(p *mpi.Proc, send, recv Msg, bs int) {
	size := p.Size()
	me := p.Rank()
	real := send.Data != nil

	// work[i] = payload currently in slot i (destination (me+i) mod P).
	var work [][]byte
	if real {
		work = make([][]byte, size)
		for i := 0; i < size; i++ {
			dst := (me + i) % size
			blk := make([]byte, bs)
			copy(blk, send.Data[dst*bs:(dst+1)*bs])
			work[i] = blk
		}
	}
	for dist := 1; dist < size; dist <<= 1 {
		// Collect the slots with this bit set.
		var slots []int
		for i := 1; i < size; i++ {
			if i&dist != 0 {
				slots = append(slots, i)
			}
		}
		n := len(slots)
		to := (me + dist) % size
		from := (me - dist + size) % size
		var sendBuf, recvBuf []byte
		if real {
			sendBuf = make([]byte, n*bs)
			for j, s := range slots {
				copy(sendBuf[j*bs:(j+1)*bs], work[s])
			}
			recvBuf = make([]byte, n*bs)
		}
		rs := p.Isend(to, tagAlltoall, sendBuf, n*bs)
		rr := p.Irecv(from, tagAlltoall, recvBuf)
		p.WaitAll(rs, rr)
		if real {
			for j, s := range slots {
				copy(work[s], recvBuf[j*bs:(j+1)*bs])
			}
		}
	}
	// Slot i now holds the block sent *to me* by rank (me-i) mod P.
	if real {
		for i := 0; i < size; i++ {
			src := (me - i + size) % size
			copy(recv.Data[src*bs:(src+1)*bs], work[i])
		}
	}
}
