package coll

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mpicollperf/internal/mpi"
)

func runAllgather(t *testing.T, alg AllgatherAlgorithm, nprocs, blockSize int) {
	t.Helper()
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		m := Bytes(make([]byte, blockSize*nprocs))
		me := p.Rank()
		copy(m.Data[me*blockSize:(me+1)*blockSize], pattern(blockSize, byte(me)))
		Allgather(p, alg, m, blockSize)
		for r := 0; r < nprocs; r++ {
			if !bytes.Equal(m.Data[r*blockSize:(r+1)*blockSize], pattern(blockSize, byte(r))) {
				return fmt.Errorf("rank %d: block %d corrupted (alg %v, P=%d, bs=%d)",
					me, r, alg, nprocs, blockSize)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherAllAlgorithms(t *testing.T) {
	for _, alg := range AllgatherAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 4, 5, 7, 8, 13, 16} {
				for _, bs := range []int{1, 33, 256} {
					runAllgather(t, alg, nprocs, bs)
				}
			}
		})
	}
}

func TestAllgatherSynthetic(t *testing.T) {
	for _, alg := range AllgatherAlgorithms() {
		alg := alg
		_, err := mpi.Run(testConfig(6), 6, func(p *mpi.Proc) error {
			Allgather(p, alg, Synthetic(6*512), 512)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestAllgatherSingleRank(t *testing.T) {
	_, err := mpi.Run(testConfig(1), 1, func(p *mpi.Proc) error {
		Allgather(p, AllgatherRing, Bytes([]byte{1, 2}), 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherBadSizes(t *testing.T) {
	_, err := mpi.Run(testConfig(3), 3, func(p *mpi.Proc) error {
		Allgather(p, AllgatherRing, Synthetic(10), 100)
		return nil
	})
	if err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestAllgatherRecDblFallsBackForNonPowerOfTwo(t *testing.T) {
	// P=6 must still be correct (handled via the ring fallback).
	runAllgather(t, AllgatherRecursiveDoubling, 6, 64)
	runAllgather(t, AllgatherRecursiveDoubling, 11, 64)
}

func TestAllgatherBruckFewerRoundsThanRing(t *testing.T) {
	// Bruck finishes in O(log P) rounds vs the ring's P-1: for small
	// blocks at P=16 it must be faster.
	timeFor := func(alg AllgatherAlgorithm) float64 {
		res, err := mpi.Run(testConfig(16), 16, func(p *mpi.Proc) error {
			Allgather(p, alg, Synthetic(16*64), 64)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	if timeFor(AllgatherBruck) >= timeFor(AllgatherRing) {
		t.Fatal("bruck should beat ring for latency-bound allgather")
	}
}

func runAllreduce(t *testing.T, alg AllreduceAlgorithm, nprocs, size int) {
	t.Helper()
	wantByte := byte((nprocs * (nprocs - 1) / 2) % 256)
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		contrib := make([]byte, size)
		for i := range contrib {
			contrib[i] = byte(p.Rank())
		}
		Allreduce(p, alg, Bytes(contrib), OpSum, 512)
		for i, b := range contrib {
			if b != wantByte {
				return fmt.Errorf("rank %d byte %d = %d, want %d (alg %v, P=%d, n=%d)",
					p.Rank(), i, b, wantByte, alg, nprocs, size)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceAllAlgorithms(t *testing.T) {
	for _, alg := range AllreduceAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 4, 5, 8, 9, 16} {
				for _, size := range []int{1, 17, 1000, 4096} {
					runAllreduce(t, alg, nprocs, size)
				}
			}
		})
	}
}

func TestAllreduceSynthetic(t *testing.T) {
	for _, alg := range AllreduceAlgorithms() {
		alg := alg
		_, err := mpi.Run(testConfig(8), 8, func(p *mpi.Proc) error {
			Allreduce(p, alg, Synthetic(100000), nil, 8192)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestAllreduceRingBandwidthOptimal(t *testing.T) {
	// For a large vector on many ranks, the ring must beat reduce+bcast.
	timeFor := func(alg AllreduceAlgorithm) float64 {
		res, err := mpi.Run(testConfig(16), 16, func(p *mpi.Proc) error {
			Allreduce(p, alg, Synthetic(4<<20), nil, 8192)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	ring, rb := timeFor(AllreduceRing), timeFor(AllreduceReduceBcast)
	if ring >= rb {
		t.Fatalf("ring (%v) should beat reduce+bcast (%v) for 4MB at P=16", ring, rb)
	}
}

func runAlltoall(t *testing.T, alg AlltoallAlgorithm, nprocs, blockSize int) {
	t.Helper()
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		me := p.Rank()
		send := Bytes(make([]byte, blockSize*nprocs))
		recv := Bytes(make([]byte, blockSize*nprocs))
		for d := 0; d < nprocs; d++ {
			// The block from rank s to rank d is pattern(seed = s*31+d).
			copy(send.Data[d*blockSize:(d+1)*blockSize], pattern(blockSize, byte(me*31+d)))
		}
		Alltoall(p, alg, send, recv, blockSize)
		for s := 0; s < nprocs; s++ {
			want := pattern(blockSize, byte(s*31+me))
			if !bytes.Equal(recv.Data[s*blockSize:(s+1)*blockSize], want) {
				return fmt.Errorf("rank %d: block from %d corrupted (alg %v, P=%d, bs=%d)",
					me, s, alg, nprocs, blockSize)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallAllAlgorithms(t *testing.T) {
	for _, alg := range AlltoallAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 4, 5, 7, 8, 12, 16} {
				for _, bs := range []int{1, 19, 128} {
					runAlltoall(t, alg, nprocs, bs)
				}
			}
		})
	}
}

func TestAlltoallSynthetic(t *testing.T) {
	for _, alg := range AlltoallAlgorithms() {
		alg := alg
		_, err := mpi.Run(testConfig(6), 6, func(p *mpi.Proc) error {
			Alltoall(p, alg, Synthetic(6*1024), Synthetic(6*1024), 1024)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestAlltoallMixedModeRejected(t *testing.T) {
	_, err := mpi.Run(testConfig(2), 2, func(p *mpi.Proc) error {
		Alltoall(p, AlltoallLinear, Bytes(make([]byte, 2)), Synthetic(2), 1)
		return nil
	})
	if err == nil {
		t.Fatal("mixed real/synthetic buffers should fail")
	}
}

func TestAlltoallBruckLatencyWin(t *testing.T) {
	// Tiny blocks, many ranks: Bruck's log rounds beat pairwise's P-1.
	timeFor := func(alg AlltoallAlgorithm) float64 {
		res, err := mpi.Run(testConfig(32), 32, func(p *mpi.Proc) error {
			Alltoall(p, alg, Synthetic(32*16), Synthetic(32*16), 16)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	if timeFor(AlltoallBruck) >= timeFor(AlltoallPairwise) {
		t.Fatal("bruck should beat pairwise for tiny blocks at P=32")
	}
}

// Property: allgather delivers arbitrary blocks for every algorithm and
// any (P, blockSize).
func TestAllgatherProperty(t *testing.T) {
	f := func(algRaw, npRaw, bsRaw uint8) bool {
		alg := AllgatherAlgorithm(int(algRaw) % numAllgatherAlgorithms)
		nprocs := int(npRaw%14) + 2
		bs := int(bsRaw%100) + 1
		ok := true
		_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
			m := Bytes(make([]byte, bs*nprocs))
			copy(m.Data[p.Rank()*bs:(p.Rank()+1)*bs], pattern(bs, byte(p.Rank())))
			Allgather(p, alg, m, bs)
			for r := 0; r < nprocs; r++ {
				if !bytes.Equal(m.Data[r*bs:(r+1)*bs], pattern(bs, byte(r))) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three allreduce algorithms agree bit-for-bit.
func TestAllreduceAlgorithmsAgreeProperty(t *testing.T) {
	f := func(npRaw uint8, sizeRaw uint16) bool {
		nprocs := int(npRaw%10) + 2
		size := int(sizeRaw%300) + 1
		var results [][]byte
		for _, alg := range AllreduceAlgorithms() {
			var got []byte
			_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
				contrib := pattern(size, byte(p.Rank()*13))
				Allreduce(p, alg, Bytes(contrib), OpSum, 64)
				if p.Rank() == 0 {
					got = append([]byte(nil), contrib...)
				}
				return nil
			})
			if err != nil {
				return false
			}
			results = append(results, got)
		}
		for i := 1; i < len(results); i++ {
			if !bytes.Equal(results[0], results[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
