package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
)

// This file adds the van de Geijn large-message broadcast used by MPICH
// (and surveyed by Chan et al., the paper's refs [10, 11]): scatter the
// message into P pieces down a binomial tree, then allgather the pieces.
// Total traffic per rank is ≈ 2·(P-1)/P of the message — asymptotically
// bandwidth-optimal — at the price of O(P) or O(log P) extra latency
// rounds. It is deliberately *not* part of the six-algorithm
// BcastAlgorithm enum, which mirrors Open MPI 3.1 exactly as the paper
// evaluates it; it extends the library the way MPICH's decision function
// would need.

// VanDeGeijnVariant selects the allgather phase.
type VanDeGeijnVariant int

const (
	// VanDeGeijnRing uses the ring allgather (MPICH's choice for large
	// messages and any P).
	VanDeGeijnRing VanDeGeijnVariant = iota
	// VanDeGeijnRecDoubling uses recursive doubling (MPICH's choice for
	// medium messages on power-of-two communicators; falls back to the
	// ring otherwise).
	VanDeGeijnRecDoubling
)

// String returns the variant's name.
func (v VanDeGeijnVariant) String() string {
	switch v {
	case VanDeGeijnRing:
		return "scatter_ring_allgather"
	case VanDeGeijnRecDoubling:
		return "scatter_rdb_allgather"
	}
	return fmt.Sprintf("VanDeGeijnVariant(%d)", int(v))
}

// BcastVanDeGeijn broadcasts m from root using binomial scatter followed
// by an allgather of the pieces. The message is split into P near-equal
// pieces on block boundaries; trailing ranks may own empty pieces when
// m < P, which degenerates gracefully.
func BcastVanDeGeijn(p *mpi.Proc, variant VanDeGeijnVariant, root int, m Msg) {
	checkRoot(p, root)
	m.check()
	size := p.Size()
	if size == 1 {
		return
	}
	// Piece size: ceil(m/P); the last pieces may be short or empty. To
	// keep the scatter/allgather block interfaces uniform we round the
	// buffer up virtually: each rank handles block [r·bs, min((r+1)·bs, m)).
	bs := (m.Size + size - 1) / size
	if bs == 0 {
		// Zero-byte broadcast: nothing to move, but match the paper's
		// convention that the communication pattern still runs.
		Bcast(p, BcastBinomial, root, m, 0)
		return
	}

	// Phase 1: binomial scatter of the pieces. We reuse scatterBinomial's
	// vrank-contiguous blocks by scattering a padded buffer; padding is
	// synthetic-size only (no copies beyond the real payload).
	padded := size * bs
	var full, mine Msg
	if m.Data != nil {
		if p.Rank() == root {
			buf := make([]byte, padded)
			copy(buf, m.Data)
			full = Bytes(buf)
		}
		mine = Bytes(make([]byte, bs))
	} else {
		full = Synthetic(padded)
		mine = Synthetic(bs)
	}
	if p.Rank() == root {
		Scatter(p, ScatterBinomial, root, full, bs)
	} else {
		Scatter(p, ScatterBinomial, root, mine, bs)
	}

	// Phase 2: allgather the pieces into the padded layout.
	var gathered Msg
	if m.Data != nil {
		buf := make([]byte, padded)
		if p.Rank() == root {
			copy(buf, m.Data)
		} else {
			copy(buf[p.Rank()*bs:(p.Rank()+1)*bs], mine.Data)
		}
		gathered = Bytes(buf)
	} else {
		gathered = Synthetic(padded)
	}
	switch variant {
	case VanDeGeijnRing:
		Allgather(p, AllgatherRing, gathered, bs)
	case VanDeGeijnRecDoubling:
		Allgather(p, AllgatherRecursiveDoubling, gathered, bs)
	default:
		panic(fmt.Errorf("coll: unknown van de Geijn variant %d", int(variant)))
	}
	if m.Data != nil && p.Rank() != root {
		copy(m.Data, gathered.Data[:m.Size])
	}
}

// VanDeGeijnCoefficients returns the (a, b) implementation-derived model
// of the composed algorithm: a binomial scatter (height rounds, (P-1)/P·m
// through the root) plus the chosen allgather of m/P-size blocks.
func VanDeGeijnCoefficients(variant VanDeGeijnVariant, P, m int) (a, b float64) {
	if P <= 1 || m <= 0 {
		return 0, 0
	}
	bs := (m + P - 1) / P
	h := 0
	for v := 1; v < P; v <<= 1 {
		h++
	}
	// Scatter: h rounds; the root injects (P-1)·bs bytes in halving chunks.
	sa, sb := float64(h), float64(P-1)*float64(bs)
	switch variant {
	case VanDeGeijnRing:
		return sa + float64(P-1), sb + float64(P-1)*float64(bs)
	case VanDeGeijnRecDoubling:
		if P&(P-1) != 0 {
			return sa + float64(P-1), sb + float64(P-1)*float64(bs)
		}
		return sa + float64(h), sb + float64(P-1)*float64(bs)
	}
	panic(fmt.Errorf("coll: unknown van de Geijn variant %d", int(variant)))
}
