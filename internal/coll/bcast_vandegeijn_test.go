package coll

import (
	"bytes"
	"fmt"
	"testing"

	"mpicollperf/internal/mpi"
)

func runVanDeGeijn(t *testing.T, variant VanDeGeijnVariant, nprocs, size, root int) {
	t.Helper()
	payload := pattern(size, byte(root)+7)
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		var m Msg
		if p.Rank() == root {
			m = Bytes(append([]byte(nil), payload...))
		} else {
			m = Bytes(make([]byte, size))
		}
		BcastVanDeGeijn(p, variant, root, m)
		if !bytes.Equal(m.Data, payload) {
			return fmt.Errorf("rank %d: corrupted broadcast (%v, P=%d, m=%d, root=%d)",
				p.Rank(), variant, nprocs, size, root)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVanDeGeijnDelivers(t *testing.T) {
	for _, variant := range []VanDeGeijnVariant{VanDeGeijnRing, VanDeGeijnRecDoubling} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 4, 5, 7, 8, 13, 16} {
				for _, size := range []int{1, 5, 1000, 4096, 100000} {
					runVanDeGeijn(t, variant, nprocs, size, 0)
				}
			}
		})
	}
}

func TestVanDeGeijnNonZeroRoot(t *testing.T) {
	for _, root := range []int{1, 4, 6} {
		runVanDeGeijn(t, VanDeGeijnRing, 7, 12345, root)
		runVanDeGeijn(t, VanDeGeijnRecDoubling, 7, 12345, root)
	}
}

func TestVanDeGeijnTinyMessages(t *testing.T) {
	// m < P: trailing ranks own empty pieces.
	runVanDeGeijn(t, VanDeGeijnRing, 16, 3, 0)
	// Zero bytes still completes.
	_, err := mpi.Run(testConfig(4), 4, func(p *mpi.Proc) error {
		BcastVanDeGeijn(p, VanDeGeijnRing, 0, Synthetic(0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVanDeGeijnSynthetic(t *testing.T) {
	for _, variant := range []VanDeGeijnVariant{VanDeGeijnRing, VanDeGeijnRecDoubling} {
		variant := variant
		_, err := mpi.Run(testConfig(9), 9, func(p *mpi.Proc) error {
			BcastVanDeGeijn(p, variant, 0, Synthetic(1<<20))
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
	}
}

func TestVanDeGeijnBandwidthAdvantage(t *testing.T) {
	// For a very large message, scatter+ring-allgather moves ≈ 2m/P per
	// port versus the binomial tree's m per hop, so it must win at scale.
	cfg := testConfig(16)
	const m = 8 << 20
	vdg, err := mpi.Run(cfg, 16, func(p *mpi.Proc) error {
		BcastVanDeGeijn(p, VanDeGeijnRing, 0, Synthetic(m))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	binom, err := mpi.Run(cfg, 16, func(p *mpi.Proc) error {
		Bcast(p, BcastBinomial, 0, Synthetic(m), 0) // unsegmented binomial
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vdg.MakeSpan >= binom.MakeSpan {
		t.Fatalf("van de Geijn (%v) should beat unsegmented binomial (%v) for 8MB at P=16",
			vdg.MakeSpan, binom.MakeSpan)
	}
}

func TestVanDeGeijnCoefficients(t *testing.T) {
	// P=8, m=8000: bs=1000, h=3.
	a, b := VanDeGeijnCoefficients(VanDeGeijnRing, 8, 8000)
	if a != 3+7 {
		t.Fatalf("ring a = %v", a)
	}
	if b != 7*1000+7*1000 {
		t.Fatalf("ring b = %v", b)
	}
	a, _ = VanDeGeijnCoefficients(VanDeGeijnRecDoubling, 8, 8000)
	if a != 3+3 {
		t.Fatalf("rdb a = %v", a)
	}
	// Non-power-of-two rdb falls back to ring rounds.
	a, _ = VanDeGeijnCoefficients(VanDeGeijnRecDoubling, 6, 6000)
	ra, _ := VanDeGeijnCoefficients(VanDeGeijnRing, 6, 6000)
	if a != ra {
		t.Fatal("rdb fallback should match ring")
	}
	if a, b := VanDeGeijnCoefficients(VanDeGeijnRing, 1, 100); a != 0 || b != 0 {
		t.Fatal("P=1 should be free")
	}
}
