package coll

import (
	"fmt"

	"mpicollperf/internal/mpi"
	"mpicollperf/internal/topo"
)

// ScatterAlgorithm identifies a scatter implementation.
type ScatterAlgorithm int

const (
	// ScatterLinear is the basic linear scatter: the root sends each rank
	// its block with non-blocking sends.
	ScatterLinear ScatterAlgorithm = iota
	// ScatterBinomial sends whole subtree blocks down the binomial tree,
	// halving the data forwarded at each level.
	ScatterBinomial

	numScatterAlgorithms = iota
)

// String returns the algorithm's name.
func (a ScatterAlgorithm) String() string {
	switch a {
	case ScatterLinear:
		return "linear"
	case ScatterBinomial:
		return "binomial"
	}
	return fmt.Sprintf("ScatterAlgorithm(%d)", int(a))
}

// ScatterAlgorithms lists all scatter algorithms.
func ScatterAlgorithms() []ScatterAlgorithm {
	out := make([]ScatterAlgorithm, numScatterAlgorithms)
	for i := range out {
		out[i] = ScatterAlgorithm(i)
	}
	return out
}

// Scatter distributes blockSize bytes to every rank from the root. On the
// root, m must cover Size()*blockSize bytes laid out by rank; on other
// ranks, m is the blockSize-byte destination.
func Scatter(p *mpi.Proc, alg ScatterAlgorithm, root int, m Msg, blockSize int) {
	checkRoot(p, root)
	m.check()
	if blockSize < 0 {
		panic(fmt.Errorf("coll: negative scatter block size %d", blockSize))
	}
	if p.Rank() == root {
		if m.Size != blockSize*p.Size() {
			panic(fmt.Errorf("coll: scatter root buffer %d bytes, want %d", m.Size, blockSize*p.Size()))
		}
	} else if m.Size != blockSize {
		panic(fmt.Errorf("coll: scatter destination %d bytes, want %d", m.Size, blockSize))
	}
	if p.Size() == 1 {
		return
	}
	switch alg {
	case ScatterLinear:
		scatterLinear(p, root, m, blockSize)
	case ScatterBinomial:
		scatterBinomial(p, root, m, blockSize)
	default:
		panic(fmt.Errorf("coll: unknown scatter algorithm %d", int(alg)))
	}
}

func scatterLinear(p *mpi.Proc, root int, m Msg, blockSize int) {
	me := p.Rank()
	if me != root {
		p.Recv(root, tagScatter, m.Data)
		return
	}
	reqs := make([]*mpi.Request, 0, p.Size()-1)
	for r := 0; r < p.Size(); r++ {
		if r == root {
			continue
		}
		block := m.slice(r*blockSize, (r+1)*blockSize)
		reqs = append(reqs, p.Isend(r, tagScatter, block.Data, block.Size))
	}
	p.WaitAll(reqs...)
}

// scatterBinomial pushes vrank-contiguous subtree blocks down the binomial
// tree (the mirror image of gatherBinomial).
func scatterBinomial(p *mpi.Proc, root int, m Msg, blockSize int) {
	size := p.Size()
	me := p.Rank()
	tree := mustTree(topo.BuildBinomial(size, root))
	vr := func(r int) int { return (r - root + size) % size }
	sub := binomialSubtreeSize(vr(me), size)

	// Receive my subtree's vrank-ordered block (the root builds it from m).
	var buf Msg
	if m.Data != nil {
		buf = Bytes(make([]byte, sub*blockSize))
	} else {
		buf = Synthetic(sub * blockSize)
	}
	if me == root {
		if m.Data != nil {
			for v := 0; v < size; v++ {
				r := (v + root) % size
				copy(buf.Data[v*blockSize:(v+1)*blockSize], m.Data[r*blockSize:(r+1)*blockSize])
			}
		}
	} else {
		p.Recv(tree.Parent[me], tagScatter, buf.Data)
	}
	// Forward each child its subtree slice, largest subtree first (the
	// children are already in that order).
	reqs := make([]*mpi.Request, 0, len(tree.Children[me]))
	for _, c := range tree.Children[me] {
		off := (vr(c) - vr(me)) * blockSize
		csub := binomialSubtreeSize(vr(c), size)
		blk := buf.slice(off, off+csub*blockSize)
		reqs = append(reqs, p.Isend(c, tagScatter, blk.Data, blk.Size))
	}
	p.WaitAll(reqs...)
	// Keep my own block.
	if me != root && m.Data != nil {
		copy(m.Data, buf.Data[:blockSize])
	}
}
