package coll

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mpicollperf/internal/mpi"
)

// runGather gathers rank-stamped blocks and verifies the root's assembly.
func runGather(t *testing.T, alg GatherAlgorithm, nprocs, blockSize, root int) {
	t.Helper()
	_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
		var m Msg
		if p.Rank() == root {
			full := make([]byte, blockSize*nprocs)
			// Pre-fill the root's own block.
			copy(full[root*blockSize:(root+1)*blockSize], pattern(blockSize, byte(root)))
			m = Bytes(full)
		} else {
			m = Bytes(pattern(blockSize, byte(p.Rank())))
		}
		Gather(p, alg, root, m, blockSize)
		if p.Rank() == root {
			for r := 0; r < nprocs; r++ {
				want := pattern(blockSize, byte(r))
				got := m.Data[r*blockSize : (r+1)*blockSize]
				if !bytes.Equal(got, want) {
					return fmt.Errorf("root: block %d corrupted (alg %v, P=%d, bs=%d, root=%d)",
						r, alg, nprocs, blockSize, root)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllAlgorithms(t *testing.T) {
	for _, alg := range GatherAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for _, nprocs := range []int{2, 3, 5, 8, 13, 16} {
				for _, bs := range []int{1, 17, 256} {
					runGather(t, alg, nprocs, bs, 0)
				}
			}
		})
	}
}

func TestGatherNonZeroRoot(t *testing.T) {
	for _, alg := range GatherAlgorithms() {
		for _, root := range []int{1, 4, 7} {
			runGather(t, alg, 8, 64, root)
		}
	}
}

func TestGatherSingleRank(t *testing.T) {
	_, err := mpi.Run(testConfig(1), 1, func(p *mpi.Proc) error {
		Gather(p, GatherBinomial, 0, Bytes([]byte{9}), 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherSynthetic(t *testing.T) {
	for _, alg := range GatherAlgorithms() {
		alg := alg
		_, err := mpi.Run(testConfig(6), 6, func(p *mpi.Proc) error {
			if p.Rank() == 2 {
				Gather(p, alg, 2, Synthetic(6*100), 100)
			} else {
				Gather(p, alg, 2, Synthetic(100), 100)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestGatherBadSizes(t *testing.T) {
	_, err := mpi.Run(testConfig(3), 3, func(p *mpi.Proc) error {
		Gather(p, GatherLinearNoSync, 0, Synthetic(5), 100) // wrong everywhere
		return nil
	})
	if err == nil {
		t.Fatal("expected size validation error")
	}
}

func TestGatherNoSyncFasterThanSync(t *testing.T) {
	// The synchronised gather adds a round trip per rank; without
	// synchronisation must be faster.
	timeFor := func(alg GatherAlgorithm) float64 {
		res, err := mpi.Run(testConfig(12), 12, func(p *mpi.Proc) error {
			if p.Rank() == 0 {
				Gather(p, alg, 0, Synthetic(12*4096), 4096)
			} else {
				Gather(p, alg, 0, Synthetic(4096), 4096)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	if timeFor(GatherLinearNoSync) >= timeFor(GatherLinearSync) {
		t.Fatal("nosync gather should be faster than sync gather")
	}
}

func TestBinomialSubtreeSize(t *testing.T) {
	cases := []struct{ v, size, want int }{
		{0, 8, 8}, {4, 8, 4}, {2, 8, 2}, {6, 8, 2}, {1, 8, 1},
		{4, 6, 2}, {4, 5, 1}, {0, 1, 1}, {2, 3, 1},
	}
	for _, c := range cases {
		if got := binomialSubtreeSize(c.v, c.size); got != c.want {
			t.Errorf("subtree(%d, %d) = %d, want %d", c.v, c.size, got, c.want)
		}
	}
}

// Property: subtree sizes of a binomial tree partition the rank space.
func TestBinomialSubtreePartitionProperty(t *testing.T) {
	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw%120) + 1
		// The root's subtree is everything; children partition [1, size).
		total := 1
		for mask := 1; mask < size; mask <<= 1 {
			total += binomialSubtreeSize(mask, size)
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: gather assembles arbitrary blocks for arbitrary (alg, P, root).
func TestGatherProperty(t *testing.T) {
	f := func(algRaw, npRaw, rootRaw, bsRaw uint8) bool {
		alg := GatherAlgorithm(int(algRaw) % numGatherAlgorithms)
		nprocs := int(npRaw%16) + 2
		root := int(rootRaw) % nprocs
		bs := int(bsRaw%120) + 1
		ok := true
		_, err := mpi.Run(testConfig(nprocs), nprocs, func(p *mpi.Proc) error {
			var m Msg
			if p.Rank() == root {
				full := make([]byte, bs*nprocs)
				copy(full[root*bs:(root+1)*bs], pattern(bs, byte(root)))
				m = Bytes(full)
			} else {
				m = Bytes(pattern(bs, byte(p.Rank())))
			}
			Gather(p, alg, root, m, bs)
			if p.Rank() == root {
				for r := 0; r < nprocs; r++ {
					if !bytes.Equal(m.Data[r*bs:(r+1)*bs], pattern(bs, byte(r))) {
						ok = false
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
