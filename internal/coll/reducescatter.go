package coll

import (
	"fmt"
	"math/bits"

	"mpicollperf/internal/mpi"
)

// ReduceScatterAlgorithm identifies a block reduce-scatter implementation
// (every rank contributes a P·blockSize vector; rank r ends up with the
// fully reduced block r).
type ReduceScatterAlgorithm int

const (
	// ReduceScatterRing is the P-1-step ring used inside the Rabenseifner
	// allreduce: bandwidth-optimal, each rank forwards partial sums.
	ReduceScatterRing ReduceScatterAlgorithm = iota
	// ReduceScatterHalving is recursive halving: log2 P rounds exchanging
	// halves of the remaining range (power-of-two ranks; ring fallback).
	ReduceScatterHalving
	// ReduceScatterReduceThenScatter reduces everything to rank 0 and
	// scatters the blocks — the naive composition.
	ReduceScatterReduceThenScatter

	numReduceScatterAlgorithms = iota
)

// String returns the algorithm's name.
func (a ReduceScatterAlgorithm) String() string {
	switch a {
	case ReduceScatterRing:
		return "ring"
	case ReduceScatterHalving:
		return "recursive_halving"
	case ReduceScatterReduceThenScatter:
		return "reduce_scatter"
	}
	return fmt.Sprintf("ReduceScatterAlgorithm(%d)", int(a))
}

// ReduceScatterAlgorithms lists all reduce-scatter algorithms.
func ReduceScatterAlgorithms() []ReduceScatterAlgorithm {
	out := make([]ReduceScatterAlgorithm, numReduceScatterAlgorithms)
	for i := range out {
		out[i] = ReduceScatterAlgorithm(i)
	}
	return out
}

// ReduceScatter combines the P·blockSize-byte vectors of all ranks under
// op and leaves the reduced block r in m[r*blockSize:(r+1)*blockSize] of
// rank r (the rest of m is scratch on return).
func ReduceScatter(p *mpi.Proc, alg ReduceScatterAlgorithm, m Msg, op ReduceOp, blockSize int) {
	m.check()
	if blockSize < 0 {
		panic(fmt.Errorf("coll: negative reduce-scatter block size %d", blockSize))
	}
	if m.Size != blockSize*p.Size() {
		panic(fmt.Errorf("coll: reduce-scatter buffer %d bytes, want %d", m.Size, blockSize*p.Size()))
	}
	if m.Data != nil && op == nil {
		panic(fmt.Errorf("coll: reduce-scatter with real data needs an op"))
	}
	if p.Size() == 1 {
		return
	}
	switch alg {
	case ReduceScatterRing:
		reduceScatterRing(p, m, op, blockSize)
	case ReduceScatterHalving:
		if bits.OnesCount(uint(p.Size())) != 1 {
			reduceScatterRing(p, m, op, blockSize)
			return
		}
		reduceScatterHalving(p, m, op, blockSize)
	case ReduceScatterReduceThenScatter:
		Reduce(p, ReduceBinomial, 0, m, op, 0)
		if p.Rank() == 0 {
			Scatter(p, ScatterBinomial, 0, m, blockSize)
		} else {
			own := m.slice(p.Rank()*blockSize, (p.Rank()+1)*blockSize)
			Scatter(p, ScatterBinomial, 0, own, blockSize)
		}
	default:
		panic(fmt.Errorf("coll: unknown reduce-scatter algorithm %d", int(alg)))
	}
}

// reduceScatterRing: in step k each rank sends the partial block
// (me-k) mod P to the right and combines the incoming block (me-k-1) mod P
// into its local vector; after P-1 steps rank me holds the full reduction
// of block (me+1) mod P... which is then moved to the conventional slot.
func reduceScatterRing(p *mpi.Proc, m Msg, op ReduceOp, bs int) {
	size := p.Size()
	me := p.Rank()
	right := (me + 1) % size
	left := (me - 1 + size) % size
	tmp := makeScratch(Msg{Size: bs})
	if m.Data != nil {
		tmp = Bytes(make([]byte, bs))
	}
	for k := 0; k < size-1; k++ {
		si := (me - k + size) % size
		ri := (me - k - 1 + size) % size
		sb := m.slice(si*bs, (si+1)*bs)
		rs := p.Isend(right, tagReduce, sb.Data, sb.Size)
		rr := p.Irecv(left, tagReduce, tmp.Data)
		p.WaitAll(rs, rr)
		dst := m.slice(ri*bs, (ri+1)*bs)
		combine(dst, tmp, op)
	}
	// Rank me now holds block (me+1) mod P fully reduced; ship it one hop
	// to its owner so the external contract (rank r owns block r) holds.
	owned := (me + 1) % size
	ob := m.slice(owned*bs, (owned+1)*bs)
	rs := p.Isend(owned, tagReduce, ob.Data, ob.Size)
	mine := m.slice(me*bs, (me+1)*bs)
	rr := p.Irecv(left, tagReduce, mine.Data)
	p.WaitAll(rs, rr)
}

// reduceScatterHalving: classic recursive halving. In round k (distance
// d = P/2^(k+1) within the current range) each rank exchanges the half of
// the range it does not own with its partner and combines the half it
// does; after log2 P rounds each rank holds its own fully reduced block.
func reduceScatterHalving(p *mpi.Proc, m Msg, op ReduceOp, bs int) {
	size := p.Size()
	me := p.Rank()
	tmp := makeScratch(Msg{Size: size / 2 * bs})
	if m.Data != nil {
		tmp = Bytes(make([]byte, size/2*bs))
	}
	lo, hi := 0, size // current block range [lo, hi)
	for hi-lo > 1 {
		half := (hi - lo) / 2
		mid := lo + half
		var partner int
		var sendLo, keepLo int
		if me < mid {
			partner = me + half
			sendLo, keepLo = mid, lo
			hi = mid
		} else {
			partner = me - half
			sendLo, keepLo = lo, mid
			lo = mid
		}
		n := half * bs
		sb := m.slice(sendLo*bs, sendLo*bs+n)
		rs := p.Isend(partner, tagReduce, sb.Data, sb.Size)
		rr := p.Irecv(partner, tagReduce, sliceData(tmp, 0, n))
		p.WaitAll(rs, rr)
		dst := m.slice(keepLo*bs, keepLo*bs+n)
		combine(dst, Msg{Data: sliceData(tmp, 0, n), Size: n}, op)
	}
}
