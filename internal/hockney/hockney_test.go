package hockney

import (
	"math"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
)

func fastSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

func TestEstimatePingPongRecoversLinkParameters(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{0, 4096, 65536, 262144, 1048576}
	par, err := EstimatePingPong(pr, sizes, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	// The simulator's point-to-point time is c' + m(G_s + G_r) with
	// c' = 47.5 µs and G_s + G_r = 1.6 ns/B on Grisou. Ping-pong recovers
	// them to within noise (uniform 0..3% on transmission time).
	if math.Abs(par.Alpha-47.5e-6) > 5e-6 {
		t.Fatalf("α = %v, want ≈ 47.5 µs", par.Alpha)
	}
	if math.Abs(par.Beta-1.6e-9) > 0.15e-9 {
		t.Fatalf("β = %v, want ≈ 1.6 ns/B", par.Beta)
	}
}

func TestEstimatePingPongValidation(t *testing.T) {
	pr, _ := cluster.Grisou().WithNodes(2)
	if _, err := EstimatePingPong(pr, []int{8}, fastSettings()); err == nil {
		t.Fatal("one size should fail")
	}
	if _, err := EstimatePingPong(pr, []int{8, -2}, fastSettings()); err == nil {
		t.Fatal("negative size should fail")
	}
}

func TestTraditionalModelsBasicShape(t *testing.T) {
	par := Params{Alpha: 40e-6, Beta: 1.6e-9}
	const P, seg = 90, 8192
	for _, m := range []int{8192, 1 << 20, 4 << 20} {
		chain := TraditionalBcast(coll.BcastChain, par, P, m, seg)
		binom := TraditionalBcast(coll.BcastBinomial, par, P, m, seg)
		binary := TraditionalBcast(coll.BcastBinary, par, P, m, seg)
		if chain <= 0 || binom <= 0 || binary <= 0 {
			t.Fatalf("non-positive prediction at m=%d", m)
		}
		// For one segment (m = seg), log-depth trees beat the P-deep chain.
		if m == seg && binom >= chain {
			t.Fatalf("traditional binomial (%v) should beat chain (%v) at one segment", binom, chain)
		}
	}
}

func TestTraditionalLinearIgnoresSerialisation(t *testing.T) {
	// The defining flaw of the textbook linear model: it predicts the same
	// time regardless of P (all sends "concurrent"), while the
	// implementation-derived model carries γ(P).
	par := Params{Alpha: 40e-6, Beta: 1.6e-9}
	t10 := TraditionalBcast(coll.BcastLinear, par, 10, 1<<20, 8192)
	t90 := TraditionalBcast(coll.BcastLinear, par, 90, 1<<20, 8192)
	if t10 != t90 {
		t.Fatalf("traditional linear model should be P-independent: %v vs %v", t10, t90)
	}
}

func TestTraditionalDegenerate(t *testing.T) {
	par := Params{Alpha: 1e-6, Beta: 1e-9}
	for _, alg := range coll.BcastAlgorithms() {
		if v := TraditionalBcast(alg, par, 1, 100, 10); v != 0 {
			t.Fatalf("%v: P=1 should cost 0", alg)
		}
		if v := TraditionalBcast(alg, par, 5, -1, 10); v != 0 {
			t.Fatalf("%v: negative m should cost 0", alg)
		}
	}
}

func TestTraditionalUnderestimatesMeasuredBinary(t *testing.T) {
	// The Fig. 1 phenomenon in miniature: the textbook binary-tree model
	// with ping-pong parameters misestimates the measured segmented
	// broadcast. We check the two disagree by a clear margin at scale —
	// the disagreement is the paper's whole motivation.
	pr, err := cluster.Grisou().WithNodes(24)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EstimatePingPong(pr, []int{0, 8192, 262144, 1048576}, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	const m = 1 << 20
	meas, err := experiment.MeasureBcast(pr, 24, coll.BcastBinary, m, pr.SegmentSize, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	pred := TraditionalBcast(coll.BcastBinary, par, 24, m, pr.SegmentSize)
	relErr := math.Abs(pred-meas.Mean) / meas.Mean
	if relErr < 0.10 {
		t.Fatalf("traditional model agrees with measurement to %v%% — Fig. 1's gap should be visible",
			relErr*100)
	}
}

func TestP2P(t *testing.T) {
	par := Params{Alpha: 2e-6, Beta: 1e-9}
	if par.P2P(0) != 2e-6 {
		t.Fatal("P2P(0) != alpha")
	}
	if par.P2P(1000) != 2e-6+1e-6 {
		t.Fatal("P2P(1000)")
	}
}
