// Package hockney implements the *traditional* performance-modelling
// pipeline that the paper improves upon (§2 and Fig. 1): Hockney model
// parameters α (latency) and β (reciprocal bandwidth) estimated from
// point-to-point ping-pong experiments, and textbook analytical models of
// the broadcast algorithms built from high-level mathematical definitions
// rather than from the implementation.
//
// The package exists for two reproduction artifacts:
//
//   - Fig. 1, which contrasts predictions of these traditional models with
//     measured broadcast curves and shows they are not accurate enough for
//     algorithm selection;
//   - the ablation benchmarks, which rerun the paper's selection procedure
//     with traditional parameters/models in place of the
//     implementation-derived ones to quantify each innovation.
package hockney

import (
	"fmt"
	"math"
	"math/bits"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/stats"
)

// Params are Hockney point-to-point parameters: T_p2p(m) = Alpha + Beta·m.
type Params struct {
	Alpha float64 // latency, seconds
	Beta  float64 // reciprocal bandwidth, seconds per byte
}

// P2P returns the modelled point-to-point time for an m-byte message.
func (p Params) P2P(m int) float64 { return p.Alpha + p.Beta*float64(m) }

// EstimatePingPong measures Params the traditional way: round-trip
// ping-pong experiments between two processes over the given message
// sizes, halving each round trip and fitting α + β·m by least squares.
func EstimatePingPong(pr cluster.Profile, sizes []int, set experiment.Settings) (Params, error) {
	if len(sizes) < 2 {
		return Params{}, fmt.Errorf("hockney: need at least 2 message sizes, got %d", len(sizes))
	}
	xs := make([]float64, 0, len(sizes))
	ys := make([]float64, 0, len(sizes))
	for _, m := range sizes {
		if m < 0 {
			return Params{}, fmt.Errorf("hockney: negative message size %d", m)
		}
		net, err := pr.Network()
		if err != nil {
			return Params{}, err
		}
		meas, err := experiment.Measure(net, 2, set, experiment.RootTime, func(p *mpi.Proc) {
			if p.Rank() == 0 {
				p.Send(1, 0, nil, m)
				p.Recv(1, 1, nil)
			} else {
				p.Recv(0, 0, nil)
				p.Send(0, 1, nil, m)
			}
		})
		if err != nil {
			return Params{}, err
		}
		xs = append(xs, float64(m))
		ys = append(ys, meas.Mean/2)
	}
	fit, err := stats.OLS(xs, ys)
	if err != nil {
		return Params{}, err
	}
	return Params{Alpha: fit.Intercept, Beta: fit.Slope}, nil
}

// TraditionalBcast predicts the execution time of a broadcast algorithm
// from its high-level mathematical definition and point-to-point Hockney
// parameters — the state of the art the paper's §2.1 reviews. m is the
// total message size; segSize is the segment size for segmented
// algorithms (ignored by linear).
//
// The formulas are the standard ones (Thakur et al., Pjesivac-Grbovic et
// al.): every communication step costs α + m_s·β, steps on independent
// pairs are free, and no account is taken of non-blocking send
// serialisation (γ), which is precisely what makes them inaccurate.
func TraditionalBcast(alg coll.BcastAlgorithm, par Params, P, m, segSize int) float64 {
	if P <= 1 || m < 0 {
		return 0
	}
	ns := float64(coll.NumSegments(m, segSize))
	ms := float64(m) / ns
	ts := par.Alpha + par.Beta*ms
	switch alg {
	case coll.BcastLinear:
		// P-1 independent sends from the root, assumed concurrent.
		return par.P2P(m)
	case coll.BcastChain:
		// Pipelined chain: P-1 hops for the first segment, one step each
		// for the rest.
		return (float64(P-2) + ns) * ts
	case coll.BcastKChain:
		// K chains of length ceil((P-1)/K); the root feeds K heads each
		// step (assumed concurrent in the textbook model).
		k := coll.DefaultKChainFanout
		l := float64((P - 2 + k) / k)
		return (l - 1 + ns) * ts
	case coll.BcastBinary:
		// Balanced binary tree of height floor(log2 P); each step costs
		// two child sends in the textbook serial-send variant.
		h := float64(bits.Len(uint(P)) - 1)
		return (ns + h - 1) * 2 * ts
	case coll.BcastSplitBinary:
		// Halves pipelined down the two subtrees, then a pairwise
		// exchange of m/2.
		h := float64(bits.Len(uint(P)) - 1)
		return (math.Ceil(ns/2)+h-1)*2*ts + par.P2P(m/2)
	case coll.BcastBinomial:
		// ceil(log2 P) steps, each a (segmented) point-to-point.
		steps := float64(bits.Len(uint(P - 1)))
		return (ns + steps - 1) * ts
	}
	panic(fmt.Errorf("hockney: unknown algorithm %v", alg))
}
