package topo

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestBuildKAryBinaryShape(t *testing.T) {
	tr, err := BuildKAry(7, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full binary tree on 7 nodes: root 0 -> {1,2}, 1 -> {3,4}, 2 -> {5,6}.
	want := map[int][]int{0: {1, 2}, 1: {3, 4}, 2: {5, 6}}
	for r, cs := range want {
		got := tr.Children[r]
		if len(got) != len(cs) {
			t.Fatalf("children[%d] = %v, want %v", r, got, cs)
		}
		for i := range cs {
			if got[i] != cs[i] {
				t.Fatalf("children[%d] = %v, want %v", r, got, cs)
			}
		}
	}
	if tr.Height() != 2 {
		t.Fatalf("height = %d", tr.Height())
	}
	for _, leaf := range []int{3, 4, 5, 6} {
		if !tr.IsLeaf(leaf) {
			t.Fatalf("rank %d should be a leaf", leaf)
		}
	}
}

func TestBuildKAryNonZeroRoot(t *testing.T) {
	tr, err := BuildKAry(5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root != 3 || tr.Parent[3] != -1 {
		t.Fatalf("root handling broken: %+v", tr)
	}
	// vrank 1 and 2 are real ranks 4 and 0.
	if tr.Parent[4] != 3 || tr.Parent[0] != 3 {
		t.Fatalf("parents = %v", tr.Parent)
	}
}

func TestBuildBinomialShape(t *testing.T) {
	tr, err := BuildBinomial(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Root children largest-subtree-first: 4, 2, 1.
	got := tr.Children[0]
	want := []int{4, 2, 1}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("root children = %v, want %v", got, want)
	}
	// Node 4's children: 6, 5. Node 6's child: 7.
	if len(tr.Children[4]) != 2 || tr.Children[4][0] != 6 || tr.Children[4][1] != 5 {
		t.Fatalf("children[4] = %v", tr.Children[4])
	}
	if len(tr.Children[6]) != 1 || tr.Children[6][0] != 7 {
		t.Fatalf("children[6] = %v", tr.Children[6])
	}
	if tr.Height() != 3 {
		t.Fatalf("height = %d, want log2(8)", tr.Height())
	}
}

func TestBinomialHeightIsFloorLog2(t *testing.T) {
	// Paper §3.1: H = floor(log2 P) for the balanced binomial tree.
	for p := 1; p <= 130; p++ {
		tr, err := BuildBinomial(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := bits.Len(uint(p)) - 1 // floor(log2 p)
		if tr.Height() != want {
			t.Fatalf("P=%d: height %d, want %d", p, tr.Height(), want)
		}
	}
}

func TestBinomialRootDegree(t *testing.T) {
	// The root of a binomial tree over P nodes has ceil(log2 P) children.
	for _, c := range []struct{ p, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {90, 7}, {124, 7},
	} {
		tr, _ := BuildBinomial(c.p, 0)
		if got := len(tr.Children[0]); got != c.want {
			t.Errorf("P=%d: root degree %d, want %d", c.p, got, c.want)
		}
	}
}

func TestBuildChainSingle(t *testing.T) {
	tr, err := BuildChain(5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 0 -> 1 -> 2 -> 3 -> 4.
	for r := 0; r < 4; r++ {
		if len(tr.Children[r]) != 1 || tr.Children[r][0] != r+1 {
			t.Fatalf("chain broken at %d: %v", r, tr.Children[r])
		}
	}
	if tr.Height() != 4 {
		t.Fatalf("height = %d", tr.Height())
	}
}

func TestBuildChainMultiple(t *testing.T) {
	tr, err := BuildChain(10, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Children[0]); got != 3 {
		t.Fatalf("root has %d chains, want 3", got)
	}
	// 9 non-root ranks over 3 chains: 3+3+3.
	if h := tr.Height(); h != 3 {
		t.Fatalf("height = %d, want 3", h)
	}
	// Interior chain nodes have exactly one child.
	for r := 1; r < 10; r++ {
		if n := len(tr.Children[r]); n > 1 {
			t.Fatalf("chain node %d has %d children", r, n)
		}
	}
}

func TestBuildChainMoreChainsThanRanks(t *testing.T) {
	tr, err := BuildChain(3, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Children[0]) != 2 || tr.Height() != 1 {
		t.Fatalf("degenerate chain wrong: %+v", tr)
	}
}

func TestBuildLinear(t *testing.T) {
	tr, err := BuildLinear(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Children[2]) != 5 || tr.Height() != 1 {
		t.Fatalf("linear tree wrong: %+v", tr)
	}
}

func TestArgValidation(t *testing.T) {
	if _, err := BuildKAry(0, 0, 2); err == nil {
		t.Error("size 0")
	}
	if _, err := BuildKAry(4, 9, 2); err == nil {
		t.Error("root out of range")
	}
	if _, err := BuildKAry(4, 0, 0); err == nil {
		t.Error("fanout 0")
	}
	if _, err := BuildChain(4, 0, 0); err == nil {
		t.Error("nchains 0")
	}
	if _, err := BuildBinomial(3, -1); err == nil {
		t.Error("negative root")
	}
}

func TestSingleRankTrees(t *testing.T) {
	for _, build := range []func() (*Tree, error){
		func() (*Tree, error) { return BuildKAry(1, 0, 2) },
		func() (*Tree, error) { return BuildBinomial(1, 0) },
		func() (*Tree, error) { return BuildChain(1, 0, 4) },
		func() (*Tree, error) { return BuildLinear(1, 0) },
	} {
		tr, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.Height() != 0 {
			t.Fatal("single-rank tree should have height 0")
		}
	}
}

func TestStageWidthsBinomial(t *testing.T) {
	tr, _ := BuildBinomial(8, 0)
	w := tr.StageWidths()
	// Depth-0 busiest node is the root with 3 children; depth-1 busiest is
	// node 4 with 2; depth-2 busiest is node 6 with 1.
	want := []int{3, 2, 1}
	if len(w) != len(want) {
		t.Fatalf("widths = %v", w)
	}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("widths = %v, want %v", w, want)
		}
	}
}

// Property: every builder yields a valid spanning tree for any size, root
// and fanout, with every rank's depth consistent and height bounded.
func TestAllBuildersValidProperty(t *testing.T) {
	f := func(sizeRaw uint8, rootRaw uint8, fanRaw uint8, kind uint8) bool {
		size := int(sizeRaw%130) + 1
		root := int(rootRaw) % size
		fan := int(fanRaw%6) + 1
		var tr *Tree
		var err error
		switch kind % 4 {
		case 0:
			tr, err = BuildKAry(size, root, fan)
		case 1:
			tr, err = BuildBinomial(size, root)
		case 2:
			tr, err = BuildChain(size, root, fan)
		case 3:
			tr, err = BuildLinear(size, root)
		}
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		return tr.Height() <= size-1 || size == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: root shifting is a relabelling — the tree for root r is the
// root-0 tree with all ranks shifted by r.
func TestRootShiftIsRelabellingProperty(t *testing.T) {
	f := func(sizeRaw, rootRaw uint8) bool {
		size := int(sizeRaw%60) + 2
		root := int(rootRaw) % size
		t0, err0 := BuildBinomial(size, 0)
		tr, errR := BuildBinomial(size, root)
		if err0 != nil || errR != nil {
			return false
		}
		for v := 0; v < size; v++ {
			r := (v + root) % size
			p0 := t0.Parent[v]
			pr := tr.Parent[r]
			if p0 == -1 {
				if pr != -1 {
					return false
				}
				continue
			}
			if pr != (p0+root)%size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
