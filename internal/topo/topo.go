// Package topo builds the virtual tree topologies the Open MPI collective
// algorithms run over, mirroring ompi/mca/coll/base/coll_base_topo.c.
//
// All trees are computed on virtual ranks (vrank = (rank-root+P) mod P, so
// the root is vrank 0) and then translated back to real ranks. The paper's
// implementation-derived models depend on structural properties of these
// trees — the binomial tree's stage structure (Fig. 2/3), the number of
// children of interior binary-tree nodes, chain lengths — so the builders
// here are the ground truth both for the algorithms (package coll) and for
// the analytical models (package model).
package topo

import "fmt"

// Tree is a rooted spanning tree over ranks 0..P-1.
type Tree struct {
	// Size is the number of ranks.
	Size int
	// Root is the rank at the tree root.
	Root int
	// Parent maps each rank to its parent rank; the root maps to -1.
	Parent []int
	// Children maps each rank to its ordered children. The order is the
	// order in which the broadcast algorithms send to them, which the
	// models rely on (e.g. the binomial tree sends to the largest subtree
	// first, exactly like Open MPI's bmtree).
	Children [][]int
}

// vrank returns the virtual rank of r for root.
func vrank(r, root, size int) int { return (r - root + size) % size }

// rrank returns the real rank of virtual rank v for root.
func rrank(v, root, size int) int { return (v + root) % size }

func newTree(size, root int) *Tree {
	t := &Tree{
		Size:     size,
		Root:     root,
		Parent:   make([]int, size),
		Children: make([][]int, size),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	return t
}

func checkArgs(size, root int) error {
	if size < 1 {
		return fmt.Errorf("topo: size %d < 1", size)
	}
	if root < 0 || root >= size {
		return fmt.Errorf("topo: root %d outside 0..%d", root, size-1)
	}
	return nil
}

// BuildKAry builds the k-ary tree of coll_base_topo_build_tree: virtual
// rank v has children fanout·v+1 … fanout·v+fanout (array embedding), so
// fanout 2 yields the balanced binary tree used by the binary and
// split-binary broadcast algorithms.
func BuildKAry(size, root, fanout int) (*Tree, error) {
	if err := checkArgs(size, root); err != nil {
		return nil, err
	}
	if fanout < 1 {
		return nil, fmt.Errorf("topo: fanout %d < 1", fanout)
	}
	t := newTree(size, root)
	for v := 0; v < size; v++ {
		r := rrank(v, root, size)
		if v > 0 {
			t.Parent[r] = rrank((v-1)/fanout, root, size)
		}
		for c := fanout*v + 1; c <= fanout*v+fanout && c < size; c++ {
			t.Children[r] = append(t.Children[r], rrank(c, root, size))
		}
	}
	return t, nil
}

// BuildBinomial builds the binomial tree of coll_base_topo_build_bmtree:
// the parent of virtual rank v is v with its lowest set bit cleared, and
// children are emitted from the largest subtree down (v|mask for
// decreasing mask), matching the send order of Open MPI's binomial
// broadcast and the stage structure in the paper's Fig. 3.
func BuildBinomial(size, root int) (*Tree, error) {
	if err := checkArgs(size, root); err != nil {
		return nil, err
	}
	t := newTree(size, root)
	for v := 0; v < size; v++ {
		r := rrank(v, root, size)
		// Find the lowest set bit: the parent link.
		low := 0
		for mask := 1; mask < size; mask <<= 1 {
			if v&mask != 0 {
				low = mask
				break
			}
		}
		if v > 0 {
			t.Parent[r] = rrank(v&^low, root, size)
		}
		// Children: v | mask for mask below low (or any mask for the root),
		// largest first.
		top := low
		if v == 0 {
			top = 1
			for top < size {
				top <<= 1
			}
		}
		for mask := top >> 1; mask > 0; mask >>= 1 {
			c := v | mask
			if c != v && c < size {
				t.Children[r] = append(t.Children[r], rrank(c, root, size))
			}
		}
	}
	return t, nil
}

// BuildChain builds the chain topology of coll_base_topo_build_chain: the
// P-1 non-root ranks are split into nchains consecutive chains; the root's
// children are the chain heads and every other node has exactly one child.
// nchains = 1 is the pipeline topology; nchains = K is the paper's K-Chain
// tree.
func BuildChain(size, root, nchains int) (*Tree, error) {
	if err := checkArgs(size, root); err != nil {
		return nil, err
	}
	if nchains < 1 {
		return nil, fmt.Errorf("topo: nchains %d < 1", nchains)
	}
	t := newTree(size, root)
	rest := size - 1
	if nchains > rest && rest > 0 {
		nchains = rest
	}
	if rest == 0 {
		return t, nil
	}
	base := rest / nchains
	extra := rest % nchains
	v := 1
	rootRank := rrank(0, root, size)
	for c := 0; c < nchains; c++ {
		length := base
		if c < extra {
			length++
		}
		if length == 0 {
			continue
		}
		head := rrank(v, root, size)
		t.Children[rootRank] = append(t.Children[rootRank], head)
		t.Parent[head] = rootRank
		prev := head
		for i := 1; i < length; i++ {
			cur := rrank(v+i, root, size)
			t.Parent[cur] = prev
			t.Children[prev] = append(t.Children[prev], cur)
			prev = cur
		}
		v += length
	}
	return t, nil
}

// BuildLinear builds the flat tree of the basic linear broadcast: the root
// is the parent of every other rank.
func BuildLinear(size, root int) (*Tree, error) {
	if err := checkArgs(size, root); err != nil {
		return nil, err
	}
	t := newTree(size, root)
	for v := 1; v < size; v++ {
		r := rrank(v, root, size)
		t.Parent[r] = root
		t.Children[root] = append(t.Children[root], r)
	}
	return t, nil
}

// Depth returns the number of tree edges between the root and rank r.
func (t *Tree) Depth(r int) int {
	d := 0
	for t.Parent[r] != -1 {
		r = t.Parent[r]
		d++
	}
	return d
}

// Height returns the maximum Depth over all ranks.
func (t *Tree) Height() int {
	h := 0
	for r := 0; r < t.Size; r++ {
		if d := t.Depth(r); d > h {
			h = d
		}
	}
	return h
}

// MaxChildren returns the largest number of children of any rank.
func (t *Tree) MaxChildren() int {
	m := 0
	for _, cs := range t.Children {
		if len(cs) > m {
			m = len(cs)
		}
	}
	return m
}

// IsLeaf reports whether rank r has no children.
func (t *Tree) IsLeaf(r int) bool { return len(t.Children[r]) == 0 }

// Validate checks the structural invariants every topology must satisfy:
// exactly one root, parent/child links mutually consistent, all ranks
// reachable from the root, and no cycles. The property-based tests run it
// over randomly drawn (size, root, fanout) triples.
func (t *Tree) Validate() error {
	if t.Size < 1 || len(t.Parent) != t.Size || len(t.Children) != t.Size {
		return fmt.Errorf("topo: malformed tree container")
	}
	if t.Root < 0 || t.Root >= t.Size {
		return fmt.Errorf("topo: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("topo: root %d has parent %d", t.Root, t.Parent[t.Root])
	}
	for r := 0; r < t.Size; r++ {
		if r != t.Root && (t.Parent[r] < 0 || t.Parent[r] >= t.Size) {
			return fmt.Errorf("topo: rank %d has invalid parent %d", r, t.Parent[r])
		}
		for _, c := range t.Children[r] {
			if c < 0 || c >= t.Size {
				return fmt.Errorf("topo: rank %d has invalid child %d", r, c)
			}
			if t.Parent[c] != r {
				return fmt.Errorf("topo: child link %d->%d not mirrored by parent link (parent[%d]=%d)", r, c, c, t.Parent[c])
			}
		}
	}
	// Reachability via BFS from the root; also catches cycles since a tree
	// reaching all Size nodes with Size-1 edges cannot have one.
	seen := make([]bool, t.Size)
	queue := []int{t.Root}
	seen[t.Root] = true
	count := 1
	edges := 0
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, c := range t.Children[r] {
			edges++
			if seen[c] {
				return fmt.Errorf("topo: rank %d reached twice", c)
			}
			seen[c] = true
			count++
			queue = append(queue, c)
		}
	}
	if count != t.Size {
		return fmt.Errorf("topo: only %d of %d ranks reachable from root", count, t.Size)
	}
	if edges != t.Size-1 {
		return fmt.Errorf("topo: %d edges, want %d", edges, t.Size-1)
	}
	return nil
}

// StageWidths returns, for each broadcast stage i (a stage is one tree
// level), the number of children of the busiest node at depth i-1. The
// binomial model uses this to reason about the per-stage linear broadcasts
// of the paper's Fig. 3.
func (t *Tree) StageWidths() []int {
	h := t.Height()
	widths := make([]int, h)
	for r := 0; r < t.Size; r++ {
		if len(t.Children[r]) == 0 {
			continue
		}
		d := t.Depth(r)
		if d < h && len(t.Children[r]) > widths[d] {
			widths[d] = len(t.Children[r])
		}
	}
	return widths
}
