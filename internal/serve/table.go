package serve

import (
	"sync"
	"sync/atomic"

	"mpicollperf/internal/core"
)

// tableEntry is one resolvable selector: the calibrated selector plus
// the canonical interned key string the select handler echoes back
// without allocating.
type tableEntry struct {
	key string
	sel *core.Selector
}

// Table is the daemon's hot selector table: an immutable map swapped
// atomically on every update (copy-on-write), so the select path reads
// it with one atomic load and zero locking or allocation. Updates are
// rare (a calibration finishing, a lazy load) and serialised by mu.
type Table struct {
	mu sync.Mutex
	p  atomic.Pointer[map[string]*tableEntry]
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{}
	m := make(map[string]*tableEntry)
	t.p.Store(&m)
	return t
}

// Lookup resolves a selector by key bytes (profile name or digest)
// without allocating; nil means unknown to the hot table.
func (t *Table) Lookup(key []byte) *tableEntry {
	return (*t.p.Load())[string(key)]
}

// Set publishes sel under every key in keys (each key echoes itself as
// the canonical name in responses).
func (t *Table) Set(sel *core.Selector, keys ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.p.Load()
	m := make(map[string]*tableEntry, len(old)+len(keys))
	for k, v := range old {
		m[k] = v
	}
	for _, k := range keys {
		m[k] = &tableEntry{key: k, sel: sel}
	}
	t.p.Store(&m)
}

// Len reports the number of published keys.
func (t *Table) Len() int {
	return len(*t.p.Load())
}
