// Package serve implements mpicollperfd, the calibration-as-a-service
// daemon: an HTTP/JSON server answering run-time algorithm-selection
// queries from calibrated models at memory speed, and running
// calibration sweeps as cancellable asynchronous jobs.
//
// The wire contract lives in the versioned subpackage
// internal/serve/wire. Endpoints:
//
//	POST   /v1/select             hot path: (profile, op, P, m) → winner
//	POST   /v1/calibrations       submit an async calibration job (202)
//	GET    /v1/calibrations       list jobs
//	GET    /v1/calibrations/{id}  job status + sweep progress
//	DELETE /v1/calibrations/{id}  cancel a job
//	GET    /metrics               Prometheus exposition (internal/obs)
//	GET    /healthz               liveness
//
// The select path is allocation-free after warm-up: pooled request
// buffers, the wire package's zero-copy codec, a copy-on-write selector
// table read with one atomic load, and core.Selector.BestFor's
// allocation-free argmin. Finished calibrations are persisted in a
// content-addressed store (profile digest + schema version) and served
// from an in-memory LRU; selects against a profile calibrated by an
// earlier daemon process lazily reload it from the store.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/serve/wire"
)

// bufPool pools request/response buffers for the hot select path. Get
// and Put trade *[]byte so the slice header itself never escapes to the
// heap per request.
type bufPool struct {
	p sync.Pool
}

func (bp *bufPool) Get() *[]byte {
	if v := bp.p.Get(); v != nil {
		return v.(*[]byte)
	}
	b := make([]byte, 0, 512)
	return &b
}

func (bp *bufPool) Put(ptr *[]byte, buf []byte) {
	*ptr = buf[:0]
	bp.p.Put(ptr)
}

// Config parameterises a Server.
type Config struct {
	// StoreDir is the calibration store directory (required).
	StoreDir string
	// Workers bounds concurrently running calibration jobs (default 1).
	Workers int
	// CacheCap bounds the store's in-memory selector LRU (default 8).
	CacheCap int
	// MeasureWorkers bounds each calibration sweep's measurement
	// concurrency (0 = GOMAXPROCS).
	MeasureWorkers int
	// Metrics receives request and calibration metrics; nil means a
	// fresh registry (exposed on /metrics either way).
	Metrics *obs.Registry
	// MaxBody bounds request body sizes in bytes (default 1 MiB).
	MaxBody int
}

// endpointMetrics are one endpoint's precomputed metric handles —
// resolved once at construction so the hot path never touches the
// registry's name-keyed maps.
type endpointMetrics struct {
	reqs *obs.Counter
	errs *obs.Counter
	lat  *obs.Histogram
}

func newEndpointMetrics(reg *obs.Registry, endpoint string) endpointMetrics {
	return endpointMetrics{
		reqs: reg.Counter(obs.Name("serve_requests_total", "endpoint", endpoint)),
		errs: reg.Counter(obs.Name("serve_errors_total", "endpoint", endpoint)),
		lat:  reg.Histogram(obs.Name("serve_request_seconds", "endpoint", endpoint)),
	}
}

// Server is the daemon's HTTP handler plus its backing state: hot
// selector table, calibration store, and job manager. Create with New,
// serve via http.Server, stop with Close.
type Server struct {
	cfg     Config
	metrics *obs.Registry
	store   *Store
	table   *Table
	jobs    *Manager

	mSelect  endpointMetrics
	mCals    endpointMetrics
	mCal     endpointMetrics
	mMetrics endpointMetrics
	mHealth  endpointMetrics

	buffers bufPool
}

// New builds a Server from cfg, opening (or creating) the calibration
// store.
func New(cfg Config) (*Server, error) {
	if cfg.StoreDir == "" {
		return nil, errors.New("serve: Config.StoreDir is required")
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 8
	}
	if cfg.MaxBody == 0 {
		cfg.MaxBody = 1 << 20
	}
	store, err := NewStore(cfg.StoreDir, cfg.CacheCap)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		metrics:  reg,
		store:    store,
		table:    NewTable(),
		mSelect:  newEndpointMetrics(reg, "select"),
		mCals:    newEndpointMetrics(reg, "calibrations"),
		mCal:     newEndpointMetrics(reg, "calibration"),
		mMetrics: newEndpointMetrics(reg, "metrics"),
		mHealth:  newEndpointMetrics(reg, "healthz"),
	}
	s.jobs = NewManager(cfg.Workers, s.runJob)
	return s, nil
}

// Close drains in-flight calibration jobs and rejects new submissions;
// the graceful-shutdown path after http.Server.Shutdown.
func (s *Server) Close() {
	s.jobs.Close()
}

// ServeHTTP routes the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch path := r.URL.Path; {
	case path == "/v1/select":
		s.handleSelect(w, r)
	case path == "/v1/calibrations":
		s.handleCalibrations(w, r)
	case strings.HasPrefix(path, "/v1/calibrations/"):
		s.handleCalibration(w, r, path[len("/v1/calibrations/"):])
	case path == "/metrics":
		s.handleMetrics(w, r)
	case path == "/healthz":
		s.handleHealth(w, r)
	default:
		s.writeError(w, http.StatusNotFound, wire.CodeNotFound, "no such endpoint")
	}
}

// jsonCT is the shared Content-Type value; assigning it into the header
// map directly avoids the per-request slice allocation of Header().Set.
var jsonCT = []string{"application/json"}

// opIntern maps collective-family names (and the "" default) to
// canonical interned strings, so the hot path converts the parsed op
// bytes to a string without allocating.
var opIntern = func() map[string]string {
	m := map[string]string{"": core.OpBcast, core.OpBcast: core.OpBcast}
	for name := range estimate.AllSpecFamilies() {
		m[name] = name
	}
	return m
}()

// handleSelect is the hot path: parse, look up, select, encode — all
// allocation-free once the profile is resident in the hot table.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mSelect.reqs.Inc()
	if r.Method != http.MethodPost {
		s.mSelect.errs.Inc()
		s.writeError(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "select is POST-only")
		return
	}
	bp := s.buffers.Get()
	buf, err := readInto(r.Body, (*bp)[:0], s.cfg.MaxBody)
	if err != nil {
		s.buffers.Put(bp, buf)
		s.selectError(w, http.StatusBadRequest, wire.CodeBadRequest, "reading body: "+err.Error())
		return
	}

	var v wire.SelectRequestView
	if err := wire.ParseSelectRequest(buf, &v); err != nil {
		s.buffers.Put(bp, buf)
		s.selectError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	if v.Version != 0 && v.Version != wire.Version {
		s.buffers.Put(bp, buf)
		s.selectError(w, http.StatusBadRequest, wire.CodeUnsupportedVersion,
			fmt.Sprintf("wire version %d not supported (this daemon speaks %d)", v.Version, wire.Version))
		return
	}
	if v.P < 1 || v.M < 0 || len(v.Profile) == 0 {
		s.buffers.Put(bp, buf)
		s.selectError(w, http.StatusBadRequest, wire.CodeBadRequest, "need profile, p >= 1, m >= 0")
		return
	}
	op, ok := opIntern[string(v.Op)]
	if !ok {
		s.buffers.Put(bp, buf)
		s.selectError(w, http.StatusBadRequest, wire.CodeBadRequest, "unknown collective family "+string(v.Op))
		return
	}

	entry := s.table.Lookup(v.Profile)
	if entry == nil {
		// Slow path (once per profile): resolve the name and pull the
		// calibration from the store into the hot table.
		var status int
		var code, msg string
		entry, status, code, msg = s.resolveCold(string(v.Profile))
		if entry == nil {
			s.buffers.Put(bp, buf)
			s.selectError(w, status, code, msg)
			return
		}
	}

	choice, err := entry.sel.BestFor(op, v.P, v.M)
	if err != nil {
		s.buffers.Put(bp, buf)
		if errors.Is(err, core.ErrNotCalibrated) {
			s.selectError(w, http.StatusNotFound, wire.CodeNotCalibrated, err.Error())
		} else {
			s.selectError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
		}
		return
	}

	// The request bytes are fully extracted; reuse the buffer for the
	// response body.
	resp := wire.SelectResponse{
		Version:   wire.Version,
		Profile:   entry.key,
		Op:        choice.Op,
		Algorithm: choice.Algorithm,
		SegSize:   choice.SegSize,
		Predicted: choice.Predicted,
	}
	out := wire.AppendSelectResponse(buf[:0], &resp)
	h := w.Header()
	h["Content-Type"] = jsonCT
	w.WriteHeader(http.StatusOK)
	w.Write(out)
	s.buffers.Put(bp, out)
	s.mSelect.lat.Observe(time.Since(start).Seconds())
}

// selectError records and writes a select-path error (not hot; may
// allocate).
func (s *Server) selectError(w http.ResponseWriter, status int, code, msg string) {
	s.mSelect.errs.Inc()
	s.writeError(w, status, code, msg)
}

// resolveCold loads a profile's calibration from the store into the hot
// table, keyed by both name and digest. On failure it returns a nil
// entry plus the HTTP status, wire code, and message to report.
func (s *Server) resolveCold(name string) (_ *tableEntry, status int, code, msg string) {
	pr, err := cluster.ByName(name)
	if err != nil {
		return nil, http.StatusNotFound, wire.CodeUnknownProfile, err.Error()
	}
	digest := ProfileDigest(pr)
	sel, err := s.store.Get(pr, digest)
	if errors.Is(err, core.ErrNotCalibrated) {
		return nil, http.StatusNotFound, wire.CodeNotCalibrated,
			fmt.Sprintf("profile %s has no stored calibration; submit one via POST /v1/calibrations", name)
	}
	if err != nil {
		return nil, http.StatusInternalServerError, wire.CodeInternal, err.Error()
	}
	s.table.Set(sel, name, digest)
	return s.table.Lookup([]byte(name)), 0, "", ""
}

// fastServeSettings are the low-repetition measurement settings behind
// CalibrationRequest.Fast — the same shape the repo's tests use.
var fastServeSettings = experiment.Settings{
	Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1,
}

// resolveProfile turns a calibration request into a platform profile.
func resolveProfile(req wire.CalibrationRequest) (cluster.Profile, error) {
	pr, err := cluster.ByName(req.Profile)
	if err != nil {
		return cluster.Profile{}, err
	}
	if req.Nodes > 0 {
		pr, err = pr.WithNodes(req.Nodes)
		if err != nil {
			return cluster.Profile{}, err
		}
	}
	return pr, nil
}

// runJob executes one calibration job: the broadcast pipeline, any
// requested extended families, then persistence and hot-table
// publication. Extended-family selectors live in memory only — the
// store's schema persists the broadcast models; a daemon restart
// re-runs extended calibrations.
func (s *Server) runJob(ctx context.Context, j *job) (string, error) {
	pr, err := resolveProfile(j.req)
	if err != nil {
		return "", err
	}
	cfg := estimate.AlphaBetaConfig{
		Procs:    j.req.Procs,
		Sizes:    j.req.Sizes,
		Workers:  s.cfg.MeasureWorkers,
		Metrics:  s.metrics,
		Progress: func(done, total int, _ experiment.Result) { j.progress(done, total) },
	}
	if j.req.Fast {
		cfg.Settings = fastServeSettings
	}
	sel, err := core.CalibrateCtx(ctx, pr, cfg)
	if err != nil {
		return "", err
	}
	for _, op := range j.req.Ops {
		if err := sel.CalibrateExtendedOp(ctx, op, cfg); err != nil {
			return "", err
		}
	}
	digest := ProfileDigest(pr)
	if err := s.store.Put(digest, sel); err != nil {
		return "", err
	}
	s.table.Set(sel, pr.Name, digest)
	return digest, nil
}

// handleCalibrations serves POST (submit) and GET (list) on
// /v1/calibrations.
func (s *Server) handleCalibrations(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mCals.reqs.Inc()
	defer func() { s.mCals.lat.Observe(time.Since(start).Seconds()) }()
	switch r.Method {
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, s.jobs.List())
	case http.MethodPost:
		var req wire.CalibrationRequest
		dec := json.NewDecoder(io.LimitReader(r.Body, int64(s.cfg.MaxBody)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.mCals.errs.Inc()
			s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
			return
		}
		if req.Version != 0 && req.Version != wire.Version {
			s.mCals.errs.Inc()
			s.writeError(w, http.StatusBadRequest, wire.CodeUnsupportedVersion,
				fmt.Sprintf("wire version %d not supported", req.Version))
			return
		}
		pr, err := cluster.ByName(req.Profile)
		if err != nil {
			s.mCals.errs.Inc()
			s.writeError(w, http.StatusNotFound, wire.CodeUnknownProfile, err.Error())
			return
		}
		if req.Nodes > 0 {
			if _, err := pr.WithNodes(req.Nodes); err != nil {
				s.mCals.errs.Inc()
				s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
				return
			}
		}
		fams := estimate.AllSpecFamilies()
		for _, op := range req.Ops {
			if _, ok := fams[op]; !ok {
				s.mCals.errs.Inc()
				s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
					"unknown collective family "+op)
				return
			}
		}
		for _, m := range req.Sizes {
			if m < 1 {
				s.mCals.errs.Inc()
				s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "sizes must be positive")
				return
			}
		}
		job, err := s.jobs.Submit(req.Profile, req)
		if err != nil {
			s.mCals.errs.Inc()
			s.writeError(w, http.StatusServiceUnavailable, wire.CodeInternal, err.Error())
			return
		}
		s.writeJSON(w, http.StatusAccepted, job)
	default:
		s.mCals.errs.Inc()
		s.writeError(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "GET or POST")
	}
}

// handleCalibration serves GET (status) and DELETE (cancel) on
// /v1/calibrations/{id}.
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request, id string) {
	start := time.Now()
	s.mCal.reqs.Inc()
	defer func() { s.mCal.lat.Observe(time.Since(start).Seconds()) }()
	switch r.Method {
	case http.MethodGet:
		job, ok := s.jobs.Snapshot(id)
		if !ok {
			s.mCal.errs.Inc()
			s.writeError(w, http.StatusNotFound, wire.CodeNotFound, "no such job "+id)
			return
		}
		s.writeJSON(w, http.StatusOK, job)
	case http.MethodDelete:
		if !s.jobs.Cancel(id) {
			s.mCal.errs.Inc()
			s.writeError(w, http.StatusNotFound, wire.CodeNotFound, "no such job "+id)
			return
		}
		job, _ := s.jobs.Snapshot(id)
		s.writeJSON(w, http.StatusOK, job)
	default:
		s.mCal.errs.Inc()
		s.writeError(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "GET or DELETE")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mMetrics.reqs.Inc()
	if r.Method != http.MethodGet {
		s.mMetrics.errs.Inc()
		s.writeError(w, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mHealth.reqs.Inc()
	s.writeJSON(w, http.StatusOK, wire.Health{Version: wire.Version, Status: "ok"})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	h := w.Header()
	h["Content-Type"] = jsonCT
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, wire.Error{Version: wire.Version, Code: code, Message: msg})
}

// readInto reads body into buf (reusing its capacity) up to max bytes.
func readInto(body io.Reader, buf []byte, max int) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			if len(buf) >= max {
				return buf, errors.New("request body too large")
			}
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
