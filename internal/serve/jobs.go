package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mpicollperf/internal/serve/wire"
)

// runFunc executes one calibration job body. It must honour ctx and
// return the store digest the finished calibration was published
// under.
type runFunc func(ctx context.Context, j *job) (digest string, err error)

// job is one asynchronous calibration: wire-visible state guarded by
// the manager's mutex, sweep progress in atomics so the measurement
// callback never contends with status queries.
type job struct {
	id      string
	profile string
	req     wire.CalibrationRequest

	done  atomic.Int64
	total atomic.Int64

	cancel context.CancelFunc

	// Guarded by Manager.mu.
	state  wire.JobState
	digest string
	errMsg string
}

// progress is the job's experiment.Progress-shaped sink.
func (j *job) progress(done, total int) {
	j.done.Store(int64(done))
	j.total.Store(int64(total))
}

// Manager owns the daemon's calibration jobs: submissions queue on a
// bounded worker pool, every job carries its own cancellation context,
// and Close drains in-flight work for graceful shutdown.
type Manager struct {
	sem chan struct{}
	run runFunc
	wg  sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	next   int
	closed bool
}

// NewManager returns a manager running at most workers jobs at once
// (minimum 1) through run.
func NewManager(workers int, run runFunc) *Manager {
	if workers < 1 {
		workers = 1
	}
	return &Manager{
		sem:  make(chan struct{}, workers),
		run:  run,
		jobs: make(map[string]*job),
	}
}

// Submit queues a calibration job and returns its wire snapshot
// (state queued). Submissions after Close are rejected.
func (m *Manager) Submit(profile string, req wire.CalibrationRequest) (wire.Job, error) {
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return wire.Job{}, errors.New("serve: job manager shutting down")
	}
	m.next++
	j := &job{
		id:      fmt.Sprintf("cal-%d", m.next),
		profile: profile,
		req:     req,
		cancel:  cancel,
		state:   wire.JobQueued,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	snap := m.snapshotLocked(j)
	m.wg.Add(1)
	m.mu.Unlock()

	go func() {
		defer m.wg.Done()
		defer cancel()
		select {
		case m.sem <- struct{}{}:
			defer func() { <-m.sem }()
		case <-ctx.Done():
			m.finish(j, wire.JobCancelled, "", "")
			return
		}
		if ctx.Err() != nil {
			m.finish(j, wire.JobCancelled, "", "")
			return
		}
		m.setState(j, wire.JobRunning)
		digest, err := m.run(ctx, j)
		switch {
		case err == nil:
			m.finish(j, wire.JobDone, digest, "")
		case errors.Is(err, context.Canceled):
			m.finish(j, wire.JobCancelled, "", "")
		default:
			m.finish(j, wire.JobFailed, "", err.Error())
		}
	}()
	return snap, nil
}

// Cancel requests cancellation of a job. Queued jobs cancel
// immediately; running jobs stop at the sweep's next cancellation
// check. Unknown IDs report false.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// Snapshot returns the wire view of one job.
func (m *Manager) Snapshot(id string) (wire.Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return wire.Job{}, false
	}
	return m.snapshotLocked(j), true
}

// List returns every job in submission order.
func (m *Manager) List() wire.JobList {
	m.mu.Lock()
	defer m.mu.Unlock()
	list := wire.JobList{Version: wire.Version, Jobs: make([]wire.Job, 0, len(m.order))}
	for _, id := range m.order {
		list.Jobs = append(list.Jobs, m.snapshotLocked(m.jobs[id]))
	}
	return list
}

// Close rejects further submissions and waits for in-flight jobs to
// drain — the graceful-shutdown path. It does not cancel running jobs.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
}

func (m *Manager) setState(j *job, s wire.JobState) {
	m.mu.Lock()
	if j.state == wire.JobQueued || j.state == wire.JobRunning {
		j.state = s
	}
	m.mu.Unlock()
}

func (m *Manager) finish(j *job, s wire.JobState, digest, errMsg string) {
	m.mu.Lock()
	if j.state == wire.JobQueued || j.state == wire.JobRunning {
		j.state = s
		j.digest = digest
		j.errMsg = errMsg
	}
	m.mu.Unlock()
}

func (m *Manager) snapshotLocked(j *job) wire.Job {
	return wire.Job{
		Version: wire.Version,
		ID:      j.id,
		State:   j.state,
		Profile: j.profile,
		Digest:  j.digest,
		Done:    int(j.done.Load()),
		Total:   int(j.total.Load()),
		Error:   j.errMsg,
	}
}
