// Package wire defines version 1 of the mpicollperfd HTTP/JSON wire
// schema: every request and response body the daemon and its clients
// exchange, plus a hand-rolled codec for the hot select path that
// parses and encodes without allocating.
//
// The schema is versioned as a whole: Version stamps every response,
// and requests may carry it for forward-compatibility checks. Adding a
// field is backward compatible (unknown fields are skipped); changing
// the meaning of an existing field requires bumping Version.
package wire

import (
	"errors"
	"strconv"
)

// Version is the wire-schema version this package speaks. Every
// response body carries it as "version"; requests may include it and
// the daemon rejects versions it does not understand.
const Version = 1

// Machine-readable error codes carried in Error.Code. Clients switch on
// these instead of parsing messages.
const (
	// CodeBadRequest: the request body or parameters were malformed.
	CodeBadRequest = "bad_request"
	// CodeUnknownProfile: the named platform profile is not known to
	// the daemon.
	CodeUnknownProfile = "unknown_profile"
	// CodeNotCalibrated: the profile is known but has no calibrated
	// models for the requested collective yet.
	CodeNotCalibrated = "not_calibrated"
	// CodeNotFound: the requested resource (e.g. a job ID) does not
	// exist.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the endpoint exists but not for this HTTP
	// method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeUnsupportedVersion: the request declared a wire-schema
	// version the daemon does not speak.
	CodeUnsupportedVersion = "unsupported_version"
	// CodeInternal: the daemon failed; the message carries detail.
	CodeInternal = "internal"
)

// Error is the uniform error response body of every endpoint.
type Error struct {
	Version int    `json:"version"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// SelectRequest asks which algorithm wins for one (profile, collective,
// P, m) point. Op defaults to "bcast" when empty.
type SelectRequest struct {
	Version int    `json:"version,omitempty"`
	Profile string `json:"profile"`
	Op      string `json:"op,omitempty"`
	P       int    `json:"p"`
	M       int    `json:"m"`
}

// SelectResponse is the winning algorithm for a SelectRequest.
type SelectResponse struct {
	Version   int     `json:"version"`
	Profile   string  `json:"profile"`
	Op        string  `json:"op"`
	Algorithm string  `json:"algorithm"`
	SegSize   int     `json:"seg_size"`
	Predicted float64 `json:"predicted_seconds"`
}

// CalibrationRequest submits an asynchronous calibration sweep. Profile
// names a built-in platform (grisou, gros, grisou2); Nodes optionally
// shrinks it. Zero values of Procs/Sizes fall back to the paper's
// defaults; Fast swaps in quick low-repetition measurement settings.
// Ops lists extended collective families to calibrate after broadcast.
type CalibrationRequest struct {
	Version int      `json:"version,omitempty"`
	Profile string   `json:"profile"`
	Nodes   int      `json:"nodes,omitempty"`
	Procs   int      `json:"procs,omitempty"`
	Sizes   []int    `json:"sizes,omitempty"`
	Ops     []string `json:"ops,omitempty"`
	Fast    bool     `json:"fast,omitempty"`
}

// JobState is the lifecycle state of a calibration job.
type JobState string

// The calibration job lifecycle: queued → running → one of
// done/failed/cancelled.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job reports one calibration job: identity, state, sweep progress, and
// — once done — the content digest under which the calibration is
// stored and selectable.
type Job struct {
	Version int      `json:"version"`
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Profile string   `json:"profile"`
	Digest  string   `json:"digest,omitempty"`
	Done    int      `json:"points_done"`
	Total   int      `json:"points_total"`
	Error   string   `json:"error,omitempty"`
}

// JobList is the response of GET /v1/calibrations.
type JobList struct {
	Version int   `json:"version"`
	Jobs    []Job `json:"jobs"`
}

// Health is the /healthz response body.
type Health struct {
	Version int    `json:"version"`
	Status  string `json:"status"`
}

// SelectRequestView is a zero-copy view of a parsed SelectRequest: the
// string fields alias the request buffer passed to ParseSelectRequest
// and are only valid until that buffer is reused.
type SelectRequestView struct {
	Profile []byte
	Op      []byte
	P       int
	M       int
	Version int
}

// ErrMalformed reports a select request body the zero-allocation parser
// rejects: invalid JSON, a string containing escapes, or trailing data.
var ErrMalformed = errors.New("wire: malformed request body")

// ParseSelectRequest parses a v1 select request from b into v without
// allocating. Unknown fields are skipped; string values must be
// escape-free (profile and collective names always are). The view
// aliases b.
func ParseSelectRequest(b []byte, v *SelectRequestView) error {
	*v = SelectRequestView{}
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '{' {
		return ErrMalformed
	}
	i = skipWS(b, i+1)
	if i < len(b) && b[i] == '}' {
		i++
	} else {
		for {
			key, j, err := scanString(b, i)
			if err != nil {
				return err
			}
			i = skipWS(b, j)
			if i >= len(b) || b[i] != ':' {
				return ErrMalformed
			}
			i = skipWS(b, i+1)
			switch string(key) {
			case "profile":
				v.Profile, i, err = scanString(b, i)
			case "op":
				v.Op, i, err = scanString(b, i)
			case "p":
				v.P, i, err = scanInt(b, i)
			case "m":
				v.M, i, err = scanInt(b, i)
			case "version":
				v.Version, i, err = scanInt(b, i)
			default:
				i, err = skipValue(b, i)
			}
			if err != nil {
				return err
			}
			i = skipWS(b, i)
			if i >= len(b) {
				return ErrMalformed
			}
			if b[i] == '}' {
				i++
				break
			}
			if b[i] != ',' {
				return ErrMalformed
			}
			i = skipWS(b, i+1)
		}
	}
	if skipWS(b, i) != len(b) {
		return ErrMalformed
	}
	return nil
}

// AppendSelectResponse appends the JSON encoding of r to dst and
// returns the extended slice. The output is byte-identical to
// encoding/json's, provided the string fields are escape-free (they
// are: the daemon only emits its own profile and algorithm names).
func AppendSelectResponse(dst []byte, r *SelectResponse) []byte {
	dst = append(dst, `{"version":`...)
	dst = strconv.AppendInt(dst, int64(r.Version), 10)
	dst = append(dst, `,"profile":"`...)
	dst = append(dst, r.Profile...)
	dst = append(dst, `","op":"`...)
	dst = append(dst, r.Op...)
	dst = append(dst, `","algorithm":"`...)
	dst = append(dst, r.Algorithm...)
	dst = append(dst, `","seg_size":`...)
	dst = strconv.AppendInt(dst, int64(r.SegSize), 10)
	dst = append(dst, `,"predicted_seconds":`...)
	dst = appendFloat(dst, r.Predicted)
	dst = append(dst, '}')
	return dst
}

// appendFloat mirrors encoding/json's float formatting: shortest
// round-trip representation, 'e' only for very large/small magnitudes.
func appendFloat(dst []byte, f float64) []byte {
	abs := f
	if abs < 0 {
		abs = -abs
	}
	fmtByte := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		fmtByte = 'e'
	}
	dst = strconv.AppendFloat(dst, f, fmtByte, -1, 64)
	if fmtByte == 'e' {
		// encoding/json trims a leading zero in the exponent: 1e-07 → 1e-7.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// scanString scans a JSON string at b[i:], returning its inner bytes.
// Escapes are rejected — the select schema never needs them.
func scanString(b []byte, i int) ([]byte, int, error) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, ErrMalformed
	}
	start := i + 1
	for j := start; j < len(b); j++ {
		switch b[j] {
		case '"':
			return b[start:j], j + 1, nil
		case '\\':
			return nil, j, ErrMalformed
		default:
			if b[j] < 0x20 {
				return nil, j, ErrMalformed
			}
		}
	}
	return nil, len(b), ErrMalformed
}

// scanInt scans a JSON integer at b[i:]. Fractions and exponents are
// rejected — the select schema's numbers are all integers.
func scanInt(b []byte, i int) (int, int, error) {
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	start := i
	n := 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		if i-start >= 18 {
			return 0, i, ErrMalformed
		}
		n = n*10 + int(b[i]-'0')
		i++
	}
	if i == start {
		return 0, i, ErrMalformed
	}
	if neg {
		n = -n
	}
	return n, i, nil
}

// skipValue skips any JSON value at b[i:], including nested containers.
func skipValue(b []byte, i int) (int, error) {
	if i >= len(b) {
		return i, ErrMalformed
	}
	switch c := b[i]; {
	case c == '"':
		_, j, err := scanString(b, i)
		return j, err
	case c == '{' || c == '[':
		var stack [32]byte // open-container kinds; bounds nesting depth
		depth := 0
		for i < len(b) {
			switch b[i] {
			case '{', '[':
				if depth == len(stack) {
					return i, ErrMalformed
				}
				stack[depth] = b[i]
				depth++
			case '}', ']':
				depth--
				if depth < 0 ||
					(b[i] == '}' && stack[depth] != '{') ||
					(b[i] == ']' && stack[depth] != '[') {
					return i, ErrMalformed
				}
				if depth == 0 {
					return i + 1, nil
				}
			case '"':
				_, j, err := scanString(b, i)
				if err != nil {
					return j, err
				}
				i = j
				continue
			}
			i++
		}
		return i, ErrMalformed
	case c == 't':
		return expect(b, i, "true")
	case c == 'f':
		return expect(b, i, "false")
	case c == 'n':
		return expect(b, i, "null")
	case c == '-' || (c >= '0' && c <= '9'):
		i++
		for i < len(b) {
			switch c := b[i]; {
			case c >= '0' && c <= '9', c == '.', c == 'e', c == 'E', c == '+', c == '-':
				i++
			default:
				return i, nil
			}
		}
		return i, nil
	default:
		return i, ErrMalformed
	}
}

func expect(b []byte, i int, lit string) (int, error) {
	if len(b)-i < len(lit) || string(b[i:i+len(lit)]) != lit {
		return i, ErrMalformed
	}
	return i + len(lit), nil
}
