package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestGoldenSchemaV1 pins the v1 wire schema byte-for-byte: each
// response type marshals to exactly these documents, and each golden
// document unmarshals back to the original value. Changing any of these
// strings is a wire-schema break and requires bumping Version.
func TestGoldenSchemaV1(t *testing.T) {
	cases := []struct {
		name   string
		value  any
		fresh  func() any
		golden string
	}{
		{
			name: "select_request",
			value: SelectRequest{
				Version: 1, Profile: "grisou", Op: "bcast", P: 90, M: 1 << 20,
			},
			fresh:  func() any { return new(SelectRequest) },
			golden: `{"version":1,"profile":"grisou","op":"bcast","p":90,"m":1048576}`,
		},
		{
			name: "select_response",
			value: SelectResponse{
				Version: 1, Profile: "grisou", Op: "bcast",
				Algorithm: "bcast/split_binary", SegSize: 8192, Predicted: 0.0030125,
			},
			fresh:  func() any { return new(SelectResponse) },
			golden: `{"version":1,"profile":"grisou","op":"bcast","algorithm":"bcast/split_binary","seg_size":8192,"predicted_seconds":0.0030125}`,
		},
		{
			name: "calibration_request",
			value: CalibrationRequest{
				Version: 1, Profile: "gros", Nodes: 16, Procs: 8,
				Sizes: []int{8192, 65536}, Ops: []string{"gather"}, Fast: true,
			},
			fresh:  func() any { return new(CalibrationRequest) },
			golden: `{"version":1,"profile":"gros","nodes":16,"procs":8,"sizes":[8192,65536],"ops":["gather"],"fast":true}`,
		},
		{
			name: "job",
			value: Job{
				Version: 1, ID: "cal-1", State: JobRunning, Profile: "grisou",
				Done: 12, Total: 60,
			},
			fresh:  func() any { return new(Job) },
			golden: `{"version":1,"id":"cal-1","state":"running","profile":"grisou","points_done":12,"points_total":60}`,
		},
		{
			name: "job_done",
			value: Job{
				Version: 1, ID: "cal-2", State: JobDone, Profile: "grisou",
				Digest: "sha256:abc", Done: 60, Total: 60,
			},
			fresh:  func() any { return new(Job) },
			golden: `{"version":1,"id":"cal-2","state":"done","profile":"grisou","digest":"sha256:abc","points_done":60,"points_total":60}`,
		},
		{
			name:   "job_list",
			value:  JobList{Version: 1, Jobs: []Job{}},
			fresh:  func() any { return new(JobList) },
			golden: `{"version":1,"jobs":[]}`,
		},
		{
			name:   "error",
			value:  Error{Version: 1, Code: CodeNotCalibrated, Message: "no models for gather"},
			fresh:  func() any { return new(Error) },
			golden: `{"version":1,"code":"not_calibrated","message":"no models for gather"}`,
		},
		{
			name:   "health",
			value:  Health{Version: 1, Status: "ok"},
			fresh:  func() any { return new(Health) },
			golden: `{"version":1,"status":"ok"}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.value)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.golden {
				t.Fatalf("marshal drifted from golden:\n got %s\nwant %s", got, tc.golden)
			}
			back := tc.fresh()
			if err := json.Unmarshal([]byte(tc.golden), back); err != nil {
				t.Fatal(err)
			}
			if got := reflect.ValueOf(back).Elem().Interface(); !reflect.DeepEqual(got, tc.value) {
				t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, tc.value)
			}
		})
	}
}

// TestParseSelectRequestAgreesWithEncodingJSON cross-checks the
// zero-allocation parser against the stdlib on a spread of valid
// bodies, including unknown fields and whitespace.
func TestParseSelectRequestAgreesWithEncodingJSON(t *testing.T) {
	bodies := []string{
		`{"profile":"grisou","p":90,"m":1048576}`,
		`{"version":1,"profile":"gros","op":"gather","p":16,"m":8192}`,
		`{ "p" : 4 , "m" : 65536 , "profile" : "grisou2" }`,
		"{\n\t\"profile\": \"grisou\",\n\t\"op\": \"bcast\",\n\t\"p\": 8,\n\t\"m\": 512\n}",
		`{"profile":"g","p":-1,"m":0}`,
		`{"future_field":{"nested":[1,2,{"x":"y"}]},"profile":"grisou","p":2,"m":3,"flag":true,"f2":null,"f3":1.5e-3}`,
		`{"u1":"skipped string","u2":true,"u3":false,"u4":null,"u5":-1.5e3,"p":7}`,
		`{"u":["str in array",false,null],"m":12}`,
		`{}`,
	}
	for _, body := range bodies {
		var want SelectRequest
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatalf("stdlib rejects %q: %v", body, err)
		}
		var v SelectRequestView
		if err := ParseSelectRequest([]byte(body), &v); err != nil {
			t.Fatalf("ParseSelectRequest(%q) = %v", body, err)
		}
		got := SelectRequest{
			Version: v.Version, Profile: string(v.Profile), Op: string(v.Op), P: v.P, M: v.M,
		}
		if got != want {
			t.Fatalf("%q: parser %+v, stdlib %+v", body, got, want)
		}
	}
}

func TestParseSelectRequestRejectsMalformed(t *testing.T) {
	bodies := []string{
		``,
		`[]`,
		`{"profile":"grisou"`,
		`{"profile":"gri\"sou","p":1,"m":1}`, // escapes rejected by design
		`{"p":1.5,"m":1}`,                    // non-integer p
		`{"p":1,"m":1}{"p":2}`,               // trailing data
		`{"p":1,,"m":1}`,
		`{"p":}`,
		`{"p":999999999999999999999,"m":1}`, // overflow guard
		`{"unknown":{"a":[}],"p":1}`,
		`{"p" 1}`,              // missing colon
		`{"op":"unterminated`,  // string runs off the end
		`{"u":`,                // value runs off the end
		`{"u":[1,2`,            // container runs off the end
		`{"u":123`,             // number runs off the end
		`{"u":@}`,              // not a JSON value
		`{"u":tru}`,            // broken literal
		`{"u":["a\"b"],"p":1}`, // escape inside skipped container
		`{"u":` + strings.Repeat("[", 33) + strings.Repeat("]", 33) + `}`, // nesting over the 32 bound
	}
	for _, body := range bodies {
		var v SelectRequestView
		if err := ParseSelectRequest([]byte(body), &v); !errors.Is(err, ErrMalformed) {
			t.Fatalf("ParseSelectRequest(%q) = %v, want ErrMalformed", body, err)
		}
	}
}

// TestAppendSelectResponseMatchesEncodingJSON pins the hand-rolled
// encoder to the stdlib's output across float shapes, including the
// exponent forms encoding/json special-cases.
func TestAppendSelectResponseMatchesEncodingJSON(t *testing.T) {
	for _, p := range []float64{0, 0.0030125, 1.0 / 3.0, 5e-7, 1e-9, 3.25e21, 42, -1.5, -2.5e-8, math.MaxFloat64} {
		r := SelectResponse{
			Version: Version, Profile: "grisou", Op: "bcast",
			Algorithm: "bcast/binomial", SegSize: 8192, Predicted: p,
		}
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendSelectResponse(nil, &r)
		if !bytes.Equal(got, want) {
			t.Fatalf("predicted=%g:\n got %s\nwant %s", p, got, want)
		}
	}
}

// TestCodecZeroAlloc is the hot-path contract: parsing a request and
// encoding a response into a reused buffer allocates nothing.
func TestCodecZeroAlloc(t *testing.T) {
	body := []byte(`{"version":1,"profile":"grisou","op":"bcast","p":90,"m":1048576}`)
	var v SelectRequestView
	resp := SelectResponse{
		Version: Version, Profile: "grisou", Op: "bcast",
		Algorithm: "bcast/split_binary", SegSize: 8192, Predicted: 0.0030125,
	}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		if err := ParseSelectRequest(body, &v); err != nil {
			t.Fatal(err)
		}
		buf = AppendSelectResponse(buf[:0], &resp)
	})
	if allocs != 0 {
		t.Fatalf("codec allocates %.1f per op, want 0", allocs)
	}
}
