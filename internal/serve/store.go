package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/core"
)

// ProfileDigest content-addresses a platform profile for the
// calibration store: the SHA-256 of the profile's canonical JSON form
// prefixed with the calibration schema version. Two profiles digest
// equal exactly when a calibration fitted on one is valid for the
// other, and a schema bump invalidates every stored calibration at
// once.
func ProfileDigest(pr cluster.Profile) string {
	canon, err := json.Marshal(pr)
	if err != nil {
		// Profile is a plain struct of scalars and slices; Marshal cannot
		// fail on it. Guard anyway so a future field keeps digests honest.
		panic(fmt.Sprintf("serve: profile not canonicalisable: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "v%d:", core.CalibrationSchemaVersion)
	h.Write(canon)
	return "sha256-" + hex.EncodeToString(h.Sum(nil))[:32]
}

// Store is the daemon's content-addressed calibration store: fitted
// models persisted as JSON files keyed by profile digest, fronted by a
// bounded in-memory LRU of attached selectors. Safe for concurrent
// use.
type Store struct {
	dir string
	cap int

	mu    sync.Mutex
	cache map[string]*storeEntry // digest -> entry (also linked LRU)
	head  *storeEntry            // most recently used
	tail  *storeEntry            // least recently used
}

type storeEntry struct {
	digest     string
	sel        *core.Selector
	prev, next *storeEntry
}

// NewStore opens (creating if needed) a calibration store rooted at
// dir, keeping at most cacheCap selectors in memory (minimum 1).
func NewStore(dir string, cacheCap int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening store %s: %w", dir, err)
	}
	if cacheCap < 1 {
		cacheCap = 1
	}
	return &Store{dir: dir, cap: cacheCap, cache: make(map[string]*storeEntry)}, nil
}

func (st *Store) path(digest string) string {
	return filepath.Join(st.dir, digest+".json")
}

// Put persists a calibrated selector under its digest and caches it.
func (st *Store) Put(digest string, sel *core.Selector) error {
	if err := sel.SaveModels(st.path(digest)); err != nil {
		return fmt.Errorf("serve: persisting calibration %s: %w", digest, err)
	}
	st.mu.Lock()
	st.insert(digest, sel)
	st.mu.Unlock()
	return nil
}

// Get returns the calibrated selector stored under digest, attached to
// pr — from memory if cached, from disk otherwise. A digest that was
// never calibrated reports core.ErrNotCalibrated.
func (st *Store) Get(pr cluster.Profile, digest string) (*core.Selector, error) {
	st.mu.Lock()
	if e, ok := st.cache[digest]; ok {
		st.moveToFront(e)
		sel := e.sel
		st.mu.Unlock()
		return sel, nil
	}
	st.mu.Unlock()

	sel, err := core.LoadModels(pr, st.path(digest))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("serve: no calibration stored for %s: %w", digest, core.ErrNotCalibrated)
	}
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.insert(digest, sel)
	st.mu.Unlock()
	return sel, nil
}

// Len reports the number of cached selectors (not files on disk).
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.cache)
}

// insert adds or refreshes an entry at the LRU front and evicts past
// capacity. Caller holds st.mu.
func (st *Store) insert(digest string, sel *core.Selector) {
	if e, ok := st.cache[digest]; ok {
		e.sel = sel
		st.moveToFront(e)
		return
	}
	e := &storeEntry{digest: digest, sel: sel}
	st.cache[digest] = e
	st.pushFront(e)
	for len(st.cache) > st.cap {
		lru := st.tail
		st.unlink(lru)
		delete(st.cache, lru.digest)
	}
}

func (st *Store) pushFront(e *storeEntry) {
	e.prev, e.next = nil, st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
}

func (st *Store) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (st *Store) moveToFront(e *storeEntry) {
	if st.head == e {
		return
	}
	st.unlink(e)
	st.pushFront(e)
}
