package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/serve/wire"
)

func fastSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

// calibrateGrisou fits a quick real calibration on a 16-node Grisou.
func calibrateGrisou(t testing.TB) (*core.Selector, cluster.Profile) {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.Calibrate(pr, estimate.AlphaBetaConfig{
		Procs:    8,
		Sizes:    []int{8192, 65536, 524288},
		Settings: fastSettings(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sel, pr
}

func newTestServer(t testing.TB) *Server {
	t.Helper()
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 2, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do performs one in-process request against the server.
func do(t testing.TB, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

func decode[T any](t testing.TB, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

func wantError(t *testing.T, w *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d (%s), want %d", w.Code, w.Body.String(), status)
	}
	e := decode[wire.Error](t, w)
	if e.Code != code || e.Version != wire.Version {
		t.Fatalf("error = %+v, want code %q", e, code)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	w := do(t, s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if h := decode[wire.Health](t, w); h.Status != "ok" || h.Version != wire.Version {
		t.Fatalf("health = %+v", h)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
}

func TestUnknownEndpoint(t *testing.T) {
	s := newTestServer(t)
	wantError(t, do(t, s, http.MethodGet, "/v2/nope", ""), http.StatusNotFound, wire.CodeNotFound)
}

func TestSelectValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name, method, body string
		status             int
		code               string
	}{
		{"method", http.MethodGet, "", http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed},
		{"malformed", http.MethodPost, `{"profile":`, http.StatusBadRequest, wire.CodeBadRequest},
		{"version", http.MethodPost, `{"version":99,"profile":"grisou","p":4,"m":1}`, http.StatusBadRequest, wire.CodeUnsupportedVersion},
		{"no_profile", http.MethodPost, `{"p":4,"m":1}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"bad_p", http.MethodPost, `{"profile":"grisou","p":0,"m":1}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"bad_op", http.MethodPost, `{"profile":"grisou","op":"scan","p":4,"m":1}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"unknown_profile", http.MethodPost, `{"profile":"summit","p":4,"m":1}`, http.StatusNotFound, wire.CodeUnknownProfile},
		{"not_calibrated", http.MethodPost, `{"profile":"grisou","p":4,"m":1}`, http.StatusNotFound, wire.CodeNotCalibrated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantError(t, do(t, s, tc.method, "/v1/select", tc.body), tc.status, tc.code)
		})
	}
}

// publish installs a calibrated selector into the server's store and
// hot table the way a finished job would.
func publish(t testing.TB, s *Server, sel *core.Selector, pr cluster.Profile) string {
	t.Helper()
	digest := ProfileDigest(pr)
	if err := s.store.Put(digest, sel); err != nil {
		t.Fatal(err)
	}
	s.table.Set(sel, pr.Name, digest)
	return digest
}

func TestSelectHotAndByDigest(t *testing.T) {
	s := newTestServer(t)
	sel, pr := calibrateGrisou(t)
	digest := publish(t, s, sel, pr)

	for _, key := range []string{pr.Name, digest} {
		w := do(t, s, http.MethodPost, "/v1/select",
			fmt.Sprintf(`{"profile":%q,"op":"bcast","p":16,"m":1048576}`, key))
		if w.Code != http.StatusOK {
			t.Fatalf("key %s: status %d (%s)", key, w.Code, w.Body.String())
		}
		resp := decode[wire.SelectResponse](t, w)
		if resp.Version != wire.Version || resp.Profile != key || resp.Op != core.OpBcast {
			t.Fatalf("response %+v", resp)
		}
		if !strings.HasPrefix(resp.Algorithm, "bcast/") || resp.Predicted <= 0 {
			t.Fatalf("response %+v", resp)
		}
		want, err := sel.BestFor(core.OpBcast, 16, 1<<20)
		if err != nil || resp.Algorithm != want.Algorithm {
			t.Fatalf("daemon picked %q, library picked %q (%v)", resp.Algorithm, want.Algorithm, err)
		}
	}

	// Uncalibrated extended family on a calibrated profile.
	w := do(t, s, http.MethodPost, "/v1/select", `{"profile":"grisou","op":"gather","p":16,"m":8192}`)
	wantError(t, w, http.StatusNotFound, wire.CodeNotCalibrated)
}

// TestSelectColdLoad pins the restart story: a second daemon process
// over the same store serves selects for a profile it never calibrated.
func TestSelectColdLoad(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	sel, _ := calibrateGrisou(t)
	// Persist under the canonical full-grisou digest, where a cold
	// ByName resolution will look. The 16-node calibration carries
	// cluster name "grisou", so attaching it to the full profile is
	// valid.
	if err := a.store.Put(ProfileDigest(cluster.Grisou()), sel); err != nil {
		t.Fatal(err)
	}

	b, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	w := do(t, b, http.MethodPost, "/v1/select", `{"profile":"grisou","p":8,"m":65536}`)
	if w.Code != http.StatusOK {
		t.Fatalf("cold select: %d (%s)", w.Code, w.Body.String())
	}
	if resp := decode[wire.SelectResponse](t, w); !strings.HasPrefix(resp.Algorithm, "bcast/") {
		t.Fatalf("cold select response %+v", resp)
	}
	// Second select hits the hot table.
	if w := do(t, b, http.MethodPost, "/v1/select", `{"profile":"grisou","p":8,"m":65536}`); w.Code != http.StatusOK {
		t.Fatalf("warm select: %d", w.Code)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"bad_json", `{"profile":`, http.StatusBadRequest, wire.CodeBadRequest},
		{"unknown_field", `{"profile":"grisou","reps":9}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"version", `{"version":3,"profile":"grisou"}`, http.StatusBadRequest, wire.CodeUnsupportedVersion},
		{"unknown_profile", `{"profile":"summit"}`, http.StatusNotFound, wire.CodeUnknownProfile},
		{"bad_nodes", `{"profile":"grisou","nodes":5000}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"bad_op", `{"profile":"grisou","ops":["scan"]}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"bad_size", `{"profile":"grisou","sizes":[0]}`, http.StatusBadRequest, wire.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantError(t, do(t, s, http.MethodPost, "/v1/calibrations", tc.body), tc.status, tc.code)
		})
	}
	wantError(t, do(t, s, http.MethodPut, "/v1/calibrations", ""),
		http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed)
	wantError(t, do(t, s, http.MethodGet, "/v1/calibrations/cal-999", ""),
		http.StatusNotFound, wire.CodeNotFound)
	wantError(t, do(t, s, http.MethodDelete, "/v1/calibrations/cal-999", ""),
		http.StatusNotFound, wire.CodeNotFound)
	wantError(t, do(t, s, http.MethodPut, "/v1/calibrations/cal-1", ""),
		http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed)
}

// waitJob polls a job until it reaches a terminal state.
func waitJob(t testing.TB, s *Server, id string) wire.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		w := do(t, s, http.MethodGet, "/v1/calibrations/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("status poll: %d (%s)", w.Code, w.Body.String())
		}
		j := decode[wire.Job](t, w)
		switch j.State {
		case wire.JobDone, wire.JobFailed, wire.JobCancelled:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCalibrationLifecycle drives the real pipeline end to end over
// HTTP: submit → progress → done → select, including an extended
// family.
func TestCalibrationLifecycle(t *testing.T) {
	s := newTestServer(t)
	w := do(t, s, http.MethodPost, "/v1/calibrations",
		`{"profile":"grisou","nodes":16,"procs":8,"sizes":[8192,65536,524288],"ops":["gather"],"fast":true}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", w.Code, w.Body.String())
	}
	sub := decode[wire.Job](t, w)
	if sub.ID == "" || (sub.State != wire.JobQueued && sub.State != wire.JobRunning) {
		t.Fatalf("submitted job %+v", sub)
	}

	j := waitJob(t, s, sub.ID)
	if j.State != wire.JobDone {
		t.Fatalf("job finished %s: %+v", j.State, j)
	}
	if j.Digest == "" || j.Done == 0 || j.Total == 0 || j.Done != j.Total {
		t.Fatalf("done job missing digest/progress: %+v", j)
	}

	// Broadcast and the calibrated extended family both serve.
	for _, body := range []string{
		`{"profile":"grisou","p":16,"m":1048576}`,
		fmt.Sprintf(`{"profile":%q,"op":"gather","p":16,"m":8192}`, j.Digest),
	} {
		w := do(t, s, http.MethodPost, "/v1/select", body)
		if w.Code != http.StatusOK {
			t.Fatalf("select %s: %d (%s)", body, w.Code, w.Body.String())
		}
		if resp := decode[wire.SelectResponse](t, w); resp.Predicted <= 0 {
			t.Fatalf("select %s: %+v", body, resp)
		}
	}

	// The job shows up in the listing.
	lw := do(t, s, http.MethodGet, "/v1/calibrations", "")
	if lw.Code != http.StatusOK {
		t.Fatalf("list: %d", lw.Code)
	}
	list := decode[wire.JobList](t, lw)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("list = %+v", list)
	}

	// The calibration also landed in the on-disk store.
	if s.store.Len() == 0 {
		t.Fatal("store cache empty after calibration")
	}

	// /metrics exposes the per-endpoint counters.
	mw := do(t, s, http.MethodGet, "/metrics", "")
	if mw.Code != http.StatusOK {
		t.Fatalf("metrics: %d", mw.Code)
	}
	if body := mw.Body.String(); !strings.Contains(body, "serve_requests_total") ||
		!strings.Contains(body, `endpoint="select"`) {
		t.Fatalf("metrics exposition missing serve counters:\n%s", body)
	}
}

// stubJobs replaces the server's manager with one whose runner blocks
// until cancelled, for deterministic lifecycle tests.
func stubJobs(s *Server, workers int) (started chan string) {
	started = make(chan string, 16)
	s.jobs = NewManager(workers, func(ctx context.Context, j *job) (string, error) {
		started <- j.id
		j.progress(1, 10)
		<-ctx.Done()
		return "", ctx.Err()
	})
	return started
}

func TestCancelRunningAndQueued(t *testing.T) {
	s := newTestServer(t)
	started := stubJobs(s, 1)

	wa := do(t, s, http.MethodPost, "/v1/calibrations", `{"profile":"grisou","fast":true}`)
	a := decode[wire.Job](t, wa)
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job A never started")
	}
	wb := do(t, s, http.MethodPost, "/v1/calibrations", `{"profile":"gros","fast":true}`)
	b := decode[wire.Job](t, wb)

	// B is queued behind A on the single worker: cancelling it must not
	// need A to finish.
	if w := do(t, s, http.MethodDelete, "/v1/calibrations/"+b.ID, ""); w.Code != http.StatusOK {
		t.Fatalf("cancel queued: %d", w.Code)
	}
	if j := waitJob(t, s, b.ID); j.State != wire.JobCancelled {
		t.Fatalf("queued job ended %s", j.State)
	}

	// Cancel the running job; the runner observes ctx and stops.
	if w := do(t, s, http.MethodDelete, "/v1/calibrations/"+a.ID, ""); w.Code != http.StatusOK {
		t.Fatalf("cancel running: %d", w.Code)
	}
	if j := waitJob(t, s, a.ID); j.State != wire.JobCancelled {
		t.Fatalf("running job ended %s", j.State)
	}

	// Terminal states are sticky: cancelling again stays cancelled.
	if w := do(t, s, http.MethodDelete, "/v1/calibrations/"+a.ID, ""); w.Code != http.StatusOK {
		t.Fatalf("re-cancel: %d", w.Code)
	}
	if j, _ := s.jobs.Snapshot(a.ID); j.State != wire.JobCancelled {
		t.Fatalf("re-cancel flipped state to %s", j.State)
	}
}

func TestManagerCloseRejectsSubmit(t *testing.T) {
	m := NewManager(1, func(ctx context.Context, j *job) (string, error) { return "d", nil })
	if _, err := m.Submit("grisou", wire.CalibrationRequest{}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Submit("grisou", wire.CalibrationRequest{}); err == nil {
		t.Fatal("submit after Close must fail")
	}
}

func TestJobFailureSurfaced(t *testing.T) {
	s := newTestServer(t)
	s.jobs = NewManager(1, func(ctx context.Context, j *job) (string, error) {
		return "", errors.New("sweep exploded")
	})
	w := do(t, s, http.MethodPost, "/v1/calibrations", `{"profile":"grisou"}`)
	sub := decode[wire.Job](t, w)
	j := waitJob(t, s, sub.ID)
	if j.State != wire.JobFailed || !strings.Contains(j.Error, "sweep exploded") {
		t.Fatalf("failed job %+v", j)
	}
}

// TestConcurrentSubmitCancelSelect hammers the daemon from many
// goroutines at once — selects on the hot path racing submissions,
// cancellations, listings, and metric scrapes. Run under -race this
// pins the copy-on-write table and job manager synchronisation.
func TestConcurrentSubmitCancelSelect(t *testing.T) {
	s := newTestServer(t)
	sel, pr := calibrateGrisou(t)
	publish(t, s, sel, pr)
	stubJobs(s, 2)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w := do(t, s, http.MethodPost, "/v1/select", `{"profile":"grisou","p":16,"m":65536}`)
				if w.Code != http.StatusOK {
					t.Errorf("select: %d", w.Code)
					return
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				w := do(t, s, http.MethodPost, "/v1/calibrations", `{"profile":"gros","fast":true}`)
				if w.Code != http.StatusAccepted {
					t.Errorf("submit: %d", w.Code)
					return
				}
				j := decode[wire.Job](t, w)
				do(t, s, http.MethodGet, "/v1/calibrations/"+j.ID, "")
				do(t, s, http.MethodDelete, "/v1/calibrations/"+j.ID, "")
				do(t, s, http.MethodGet, "/v1/calibrations", "")
				do(t, s, http.MethodGet, "/metrics", "")
			}
		}()
	}
	wg.Wait()

	// Every submitted job must drain to a terminal state.
	list := s.jobs.List()
	for _, j := range list.Jobs {
		if got := waitJob(t, s, j.ID); got.State != wire.JobCancelled && got.State != wire.JobDone {
			t.Fatalf("job %s ended %s", j.ID, got.State)
		}
	}
}

func TestProfileDigest(t *testing.T) {
	a := ProfileDigest(cluster.Grisou())
	if a != ProfileDigest(cluster.Grisou()) {
		t.Fatal("digest not deterministic")
	}
	if !strings.HasPrefix(a, "sha256-") {
		t.Fatalf("digest %q", a)
	}
	small, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	if ProfileDigest(small) == a || ProfileDigest(cluster.Gros()) == a {
		t.Fatal("different platforms must digest differently")
	}
}

func TestStoreLRUAndMiss(t *testing.T) {
	st, err := NewStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sel, pr := calibrateGrisou(t)
	d1 := ProfileDigest(pr)
	if err := st.Put(d1, sel); err != nil {
		t.Fatal(err)
	}
	// A second digest evicts the first from the 1-entry cache...
	if err := st.Put("sha256-other", sel); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("cache len %d, want 1", st.Len())
	}
	// ...but the first still loads from disk.
	got, err := st.Get(pr, d1)
	if err != nil || got == nil {
		t.Fatalf("reload after eviction: %v", err)
	}
	// Unknown digests report ErrNotCalibrated.
	if _, err := st.Get(pr, "sha256-missing"); !errors.Is(err, core.ErrNotCalibrated) {
		t.Fatalf("missing digest error = %v", err)
	}
}

func TestTableCopyOnWrite(t *testing.T) {
	tab := NewTable()
	if tab.Lookup([]byte("x")) != nil || tab.Len() != 0 {
		t.Fatal("empty table")
	}
	sel := &core.Selector{}
	tab.Set(sel, "grisou", "sha256-abc")
	if tab.Len() != 2 {
		t.Fatalf("len %d", tab.Len())
	}
	e := tab.Lookup([]byte("grisou"))
	if e == nil || e.sel != sel || e.key != "grisou" {
		t.Fatalf("entry %+v", e)
	}
	if e := tab.Lookup([]byte("sha256-abc")); e == nil || e.key != "sha256-abc" {
		t.Fatalf("digest entry %+v", e)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without StoreDir must fail")
	}
}
