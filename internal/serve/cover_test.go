package serve

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/core"
	"mpicollperf/internal/serve/wire"
)

// TestNewStoreErrors pins the store constructor's failure and clamping
// behaviour: a store rooted at a path occupied by a regular file cannot
// be created, and a sub-1 cache capacity clamps to 1.
func TestNewStoreErrors(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(file, 4); err == nil {
		t.Fatal("NewStore over a regular file should fail")
	}
	// New surfaces the same failure.
	if _, err := New(Config{StoreDir: file}); err == nil {
		t.Fatal("New over a regular file store dir should fail")
	}

	st, err := NewStore(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.cap != 1 {
		t.Fatalf("cacheCap 0 should clamp to 1, got %d", st.cap)
	}
}

// TestStoreLRUMoveToFront exercises the cache-hit path: with capacity
// two, touching the older entry via Get must protect it from the next
// eviction.
func TestStoreLRUMoveToFront(t *testing.T) {
	sel, pr := calibrateGrisou(t)
	st, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"sha256-aa", "sha256-bb"} {
		if err := st.Put(d, sel); err != nil {
			t.Fatal(err)
		}
	}
	// Cache hit on the LRU entry moves it to the front...
	if _, err := st.Get(pr, "sha256-aa"); err != nil {
		t.Fatal(err)
	}
	// ...and a repeat hit on the now-front entry is a no-op move.
	if _, err := st.Get(pr, "sha256-aa"); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("sha256-cc", sel); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	_, aCached := st.cache["sha256-aa"]
	_, bCached := st.cache["sha256-bb"]
	st.mu.Unlock()
	if !aCached || bCached {
		t.Fatalf("after touch+insert: want aa cached, bb evicted; got aa=%v bb=%v", aCached, bCached)
	}
	// Re-putting a cached digest refreshes in place rather than growing.
	if err := st.Put("sha256-cc", sel); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
}

// TestStorePutAndGetErrors pins the disk failure paths: Put where the
// target path is a directory, and Get over a corrupt calibration file.
func TestStorePutAndGetErrors(t *testing.T) {
	sel, pr := calibrateGrisou(t)
	dir := t.TempDir()
	st, err := NewStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(st.path("sha256-dir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("sha256-dir", sel); err == nil {
		t.Fatal("Put over a directory should fail")
	}
	if err := os.WriteFile(st.path("sha256-bad"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Get(pr, "sha256-bad")
	if err == nil || errors.Is(err, core.ErrNotCalibrated) {
		t.Fatalf("corrupt file should fail with a non-ErrNotCalibrated error, got %v", err)
	}
}

// TestSelectColdLoadCorrupt drives the resolveCold internal-error
// branch over HTTP: a corrupt calibration file under a builtin
// profile's digest must surface as 500 internal, not 404.
func TestSelectColdLoadCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{StoreDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	digest := ProfileDigest(cluster.Grisou())
	if err := os.WriteFile(filepath.Join(dir, digest+".json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, "POST", "/v1/select", `{"version":1,"profile":"grisou","op":"bcast","p":16,"m":1024}`)
	wantError(t, rec, 500, wire.CodeInternal)
}

// TestSelectBodyLimits pins readInto's growth and overflow behaviour:
// a padded body larger than the pool's initial buffer still parses,
// and a body over MaxBody is rejected before parsing.
func TestSelectBodyLimits(t *testing.T) {
	s := newTestServer(t)
	sel, pr := calibrateGrisou(t)
	publish(t, s, sel, pr)

	padded := `{"version":1,` + strings.Repeat(" ", 2048) +
		`"profile":"grisou","op":"bcast","p":16,"m":1024}`
	rec := do(t, s, "POST", "/v1/select", padded)
	if rec.Code != 200 {
		t.Fatalf("padded select = %d, want 200: %s", rec.Code, rec.Body)
	}

	// The pool's buffers start at 512 bytes, so MaxBody only bites once a
	// body forces growth: the same padded request against a 16-byte limit
	// must be rejected while reading, before parsing.
	small, err := New(Config{StoreDir: t.TempDir(), MaxBody: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	rec = do(t, small, "POST", "/v1/select", padded)
	wantError(t, rec, 400, wire.CodeBadRequest)
}

// errReader fails with a non-EOF error after its content is drained.
type errReader struct{ n int }

func (r *errReader) Read(p []byte) (int, error) {
	if r.n > 0 {
		r.n--
		p[0] = ' '
		return 1, nil
	}
	return 0, errors.New("connection reset")
}

func TestReadIntoError(t *testing.T) {
	if _, err := readInto(&errReader{n: 2}, nil, 1<<20); err == nil {
		t.Fatal("readInto should surface non-EOF read errors")
	}
	if _, err := readInto(io.LimitReader(&errReader{n: 1 << 30}, 64), nil, 32); err == nil {
		t.Fatal("readInto should reject bodies over max")
	}
}

// TestMetricsMethodNotAllowed pins /metrics as GET-only.
func TestMetricsMethodNotAllowed(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "POST", "/metrics", "")
	wantError(t, rec, 405, wire.CodeMethodNotAllowed)
}

// TestSubmitAfterClose drives the HTTP-level 503 when the job manager
// is draining.
func TestSubmitAfterClose(t *testing.T) {
	s := newTestServer(t)
	s.jobs.Close()
	rec := do(t, s, "POST", "/v1/calibrations", `{"version":1,"profile":"grisou","fast":true}`)
	wantError(t, rec, 503, wire.CodeInternal)
}

// TestResolveProfile covers the request→profile translation directly:
// unknown names and impossible node counts fail, a node override is
// applied.
func TestResolveProfile(t *testing.T) {
	if _, err := resolveProfile(wire.CalibrationRequest{Profile: "nope"}); err == nil {
		t.Fatal("unknown profile should fail")
	}
	if _, err := resolveProfile(wire.CalibrationRequest{Profile: "grisou", Nodes: 1 << 20}); err == nil {
		t.Fatal("node count beyond the physical cluster should fail")
	}
	pr, err := resolveProfile(wire.CalibrationRequest{Profile: "grisou", Nodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Nodes != 16 {
		t.Fatalf("nodes = %d, want 16", pr.Nodes)
	}
}

// TestRunJobErrors drives runJob's failure branches directly: a request
// that no longer resolves, a cancelled calibration context, an invalid
// extended family, and a store that cannot persist the result.
func TestRunJobErrors(t *testing.T) {
	s := newTestServer(t)

	j := &job{req: wire.CalibrationRequest{Profile: "nope"}}
	if _, err := s.runJob(context.Background(), j); err == nil {
		t.Fatal("unresolvable profile should fail")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j = &job{req: wire.CalibrationRequest{Profile: "grisou", Nodes: 16, Procs: 8, Sizes: []int{8192, 65536}, Fast: true}}
	if _, err := s.runJob(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled calibration = %v, want context.Canceled", err)
	}

	// Submit-side validation normally rejects unknown families; a direct
	// run must still fail cleanly rather than publish a partial result.
	j = &job{req: wire.CalibrationRequest{Profile: "grisou", Nodes: 16, Procs: 8, Sizes: []int{8192, 65536}, Ops: []string{"bogus"}, Fast: true}}
	if _, err := s.runJob(context.Background(), j); err == nil {
		t.Fatal("unknown extended family should fail")
	}

	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.store.path(ProfileDigest(pr)), 0o755); err != nil {
		t.Fatal(err)
	}
	j = &job{req: wire.CalibrationRequest{Profile: "grisou", Nodes: 16, Procs: 8, Sizes: []int{8192, 65536}, Fast: true}}
	if _, err := s.runJob(context.Background(), j); err == nil {
		t.Fatal("unwritable store path should fail the job")
	}
}
