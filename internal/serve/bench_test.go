package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// nullResponseWriter measures handler-level cost: headers land in a
// reused map, the body is discarded. The daemon's acceptance criterion
// (zero allocations, ≥10k QPS on the select path) is about the handler
// — net/http's per-connection machinery is outside it.
type nullResponseWriter struct {
	h http.Header
}

func (n *nullResponseWriter) Header() http.Header         { return n.h }
func (n *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (n *nullResponseWriter) WriteHeader(int)             {}

// replayBody is an io.ReadCloser that can rewind, so one request value
// serves every benchmark iteration.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *replayBody) Close() error { return nil }

// selectHarness wires a calibrated server to a replayable select
// request against the null writer.
func selectHarness(tb testing.TB) (*Server, *http.Request, *replayBody, *nullResponseWriter) {
	s := newTestServer(tb)
	sel, pr := calibrateGrisou(tb)
	publish(tb, s, sel, pr)
	body := &replayBody{data: []byte(`{"version":1,"profile":"grisou","op":"bcast","p":16,"m":1048576}`)}
	req := httptest.NewRequest(http.MethodPost, "/v1/select", nil)
	req.Body = body
	w := &nullResponseWriter{h: make(http.Header)}
	return s, req, body, w
}

// TestSelectHandlerZeroAlloc pins the hot-path contract directly:
// after one warm-up request, a select allocates nothing.
func TestSelectHandlerZeroAlloc(t *testing.T) {
	s, req, body, w := selectHarness(t)
	body.off = 0
	s.ServeHTTP(w, req) // warm up: cold table load, pool priming

	allocs := testing.AllocsPerRun(500, func() {
		body.off = 0
		s.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("select handler allocates %.1f per request, want 0", allocs)
	}
	if got := s.mSelect.errs.Value(); got != 0 {
		t.Fatalf("select errors counted: %d", got)
	}
}

// BenchmarkSelectEndpoint measures the single-core select throughput
// the daemon sustains at handler level; the qps metric is the
// acceptance number (target ≥10k).
func BenchmarkSelectEndpoint(b *testing.B) {
	s, req, body, w := selectHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		s.ServeHTTP(w, req)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}
