// Package profiling wires runtime/pprof into the command-line tools: one
// Start call at the top of main turns -cpuprofile/-memprofile (and
// -mutexprofile/-blockprofile) flags into profile files that `go tool
// pprof` reads directly.
//
// The package exists so every tool validates and finalises profiles the
// same way — profile files are created eagerly (a typo'd directory fails
// at startup, not after a long sweep), and the returned stop function is
// what actually makes them valid: a CPU profile is empty until
// StopCPUProfile runs, the heap profile is written only at stop time,
// after a forced GC, so it reflects live memory at the end of the run,
// and the mutex/block profiles are sampled between Start and stop (the
// runtime sampling rates are switched on by Start and back off by stop,
// so an unprofiled run pays nothing).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config names the profile outputs a tool wants. Every path is optional;
// an empty path skips that profile.
type Config struct {
	// CPUPath receives a CPU profile covering Start..stop.
	CPUPath string
	// MemPath receives a heap profile of live memory at stop time.
	MemPath string
	// MutexPath receives a mutex-contention profile: stacks that held
	// mutexes other goroutines stalled on, with full sampling
	// (SetMutexProfileFraction(1)) between Start and stop. This is the
	// profile that drove the parallel-sweep contention diagnosis.
	MutexPath string
	// BlockPath receives a blocking profile: stacks that waited on
	// channels and sync primitives, with full sampling
	// (SetBlockProfileRate(1)) between Start and stop.
	BlockPath string
}

// Start begins CPU profiling into cpuPath and arranges for a heap profile
// to be written to memPath when the returned stop function runs. It is
// StartWith restricted to the two original profiles; tools that also want
// mutex/block profiles call StartWith directly.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	return StartWith(Config{CPUPath: cpuPath, MemPath: memPath})
}

// StartWith begins profiling per cfg. With every path empty it is a no-op
// and stop still must be called (it returns nil).
//
// The stop function is not idempotent and must be called exactly once,
// after the work being profiled — typically via defer in main. Its error
// reports the first failed profile write. stop also restores the
// mutex/block sampling rates to their off defaults.
func StartWith(cfg Config) (stop func() error, err error) {
	// Create every requested file eagerly so a bad path fails at startup,
	// not after a long sweep.
	var files [4]*os.File
	paths := [4]string{cfg.CPUPath, cfg.MemPath, cfg.MutexPath, cfg.BlockPath}
	cleanup := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	for i, p := range paths {
		if p == "" {
			continue
		}
		if files[i], err = os.Create(p); err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	cpuFile, memFile, mutexFile, blockFile := files[0], files[1], files[2], files[3]
	if cpuFile != nil {
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	// Sampling rate 1 records every contention event — the tools profile
	// short bounded runs, so completeness beats sampling overhead.
	if mutexFile != nil {
		runtime.SetMutexProfileFraction(1)
	}
	if blockFile != nil {
		runtime.SetBlockProfileRate(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		var firstErr error
		write := func(name string, f *os.File) {
			if f == nil {
				return
			}
			defer f.Close()
			if err := pprof.Lookup(name).WriteTo(f, 0); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: write %s profile: %w", name, err)
			}
		}
		if mutexFile != nil {
			write("mutex", mutexFile)
			runtime.SetMutexProfileFraction(0)
		}
		if blockFile != nil {
			write("block", blockFile)
			runtime.SetBlockProfileRate(0)
		}
		if memFile != nil {
			defer memFile.Close()
			// Materialise pending frees so the profile shows live objects,
			// not garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
