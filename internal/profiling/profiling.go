// Package profiling wires runtime/pprof into the command-line tools: one
// Start call at the top of main turns -cpuprofile/-memprofile flags into
// profile files that `go tool pprof` reads directly.
//
// The package exists so every tool validates and finalises profiles the
// same way — profile files are created eagerly (a typo'd directory fails
// at startup, not after a long sweep), and the returned stop function is
// what actually makes them valid: a CPU profile is empty until
// StopCPUProfile runs, and the heap profile is written only at stop time,
// after a forced GC, so it reflects live memory at the end of the run.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges for a heap profile
// to be written to memPath when the returned stop function runs. Either
// path may be empty to skip that profile; with both empty, Start is a
// no-op and stop still must be called (it returns nil).
//
// The stop function is not idempotent and must be called exactly once,
// after the work being profiled — typically via defer in main. Its error
// reports a failed heap-profile write.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	var memFile *os.File
	if memPath != "" {
		memFile, err = os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memFile == nil {
			return nil
		}
		defer memFile.Close()
		// Materialise pending frees so the profile shows live objects, not
		// garbage awaiting collection.
		runtime.GC()
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			return fmt.Errorf("profiling: write heap profile: %w", err)
		}
		return nil
	}, nil
}
