package profiling

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<12))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", filepath.Base(path))
		}
	}
}

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("empty heap profile")
	}
}

func TestStartWithMutexAndBlockProfiles(t *testing.T) {
	dir := t.TempDir()
	mutexPath := filepath.Join(dir, "mutex.pprof")
	blockPath := filepath.Join(dir, "block.pprof")
	stop, err := StartWith(Config{MutexPath: mutexPath, BlockPath: blockPath})
	if err != nil {
		t.Fatal(err)
	}
	if runtime.SetMutexProfileFraction(-1) != 1 {
		t.Error("mutex profiling not enabled between StartWith and stop")
	}
	// Generate some contention so the profiles have events to record.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				mu.Lock()
				for k := 0; k < 100; k++ {
					_ = k * k
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if runtime.SetMutexProfileFraction(-1) != 0 {
		t.Error("mutex profiling still enabled after stop")
	}
	for _, path := range []string{mutexPath, blockPath} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", filepath.Base(path))
		}
	}
}

func TestStartWithBadMutexPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "mutex.pprof")
	if _, err := StartWith(Config{MutexPath: bad}); err == nil {
		t.Fatal("expected error for unwritable mutex profile path")
	}
	if runtime.SetMutexProfileFraction(-1) != 0 {
		t.Error("mutex profiling left enabled after failed StartWith")
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected error for unwritable CPU profile path")
	}
	if _, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")); err == nil {
		t.Fatal("expected error for unwritable heap profile path")
	}
}
