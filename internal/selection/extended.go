package selection

import (
	"fmt"
	"math"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/model"
)

// ExtendedSelector applies the paper's model-based selection to any
// collective family calibrated through estimate.AlphaBetaCollective —
// allgather, allreduce, alltoall — realising the paper's future-work
// claim that the approach generalises beyond broadcast.
type ExtendedSelector struct {
	// Cluster names the platform.
	Cluster string
	// SegSize is the platform segment size forwarded to the models.
	SegSize int
	// Gamma is the platform's γ(P).
	Gamma model.Gamma
	// Specs are the calibrated algorithms of one collective family.
	Specs []estimate.CollectiveSpec
	// Params holds fitted per-algorithm parameters, indexed like Specs.
	Params []model.Hockney
}

// CalibrateExtended fits per-algorithm parameters for a collective family
// on a platform, reusing an already-estimated γ.
func CalibrateExtended(pr cluster.Profile, specs []estimate.CollectiveSpec, g model.Gamma, cfg estimate.AlphaBetaConfig) (*ExtendedSelector, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("selection: no specs to calibrate")
	}
	sel := &ExtendedSelector{
		Cluster: pr.Name,
		SegSize: pr.SegmentSize,
		Gamma:   g,
		Specs:   specs,
		Params:  make([]model.Hockney, len(specs)),
	}
	for i, spec := range specs {
		res, err := estimate.AlphaBetaCollective(pr, spec, g, cfg)
		if err != nil {
			return nil, err
		}
		sel.Params[i] = res.Params
	}
	return sel, nil
}

// Predict returns the modelled time of spec i for (P, m).
func (s *ExtendedSelector) Predict(i, P, m int) float64 {
	a, b := s.Specs[i].Coefficients(P, m, s.SegSize, s.Gamma)
	return a*s.Params[i].Alpha + b*s.Params[i].Beta
}

// Best returns the index and name of the algorithm with the smallest
// predicted time for (P, m).
func (s *ExtendedSelector) Best(P, m int) (int, string) {
	best, bestT := 0, math.Inf(1)
	for i := range s.Specs {
		if t := s.Predict(i, P, m); t < bestT {
			best, bestT = i, t
		}
	}
	return best, s.Specs[best].Name
}
