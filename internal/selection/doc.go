// Package selection implements the three broadcast-algorithm selectors the
// paper compares (§5.3, Fig. 5, Table 3):
//
//   - ModelBased — the paper's contribution: evaluate the
//     implementation-derived analytical model of every algorithm with its
//     per-algorithm fitted parameters and pick the minimum. This is the
//     run-time decision function; its cost is a handful of floating-point
//     operations per algorithm (benchmarked in the repository root).
//   - OpenMPIFixed — a port of Open MPI 3.1's hard-coded broadcast
//     decision function (coll_tuned_decision_fixed.c), including its
//     segment-size choices.
//   - Oracle — the empirical best: measure every algorithm and return the
//     fastest (the paper's green line). The per-algorithm measurements
//     fan out over experiment.Sweep; OracleSweep exposes the engine so
//     callers can bound workers, share a measurement cache across (P, m)
//     evaluation points, and cancel mid-flight.
//
// Compare evaluates all three for one (P, m) — one row of the paper's
// Table 3 — reporting each selector's measured time and its degradation
// relative to the oracle. ExtendedSelector (extended.go) applies the
// model-based selection to the beyond-broadcast collective families
// calibrated through estimate.AlphaBetaCollective.
//
// In the paper's terms: internal/model supplies the analytical models
// (§3), internal/estimate their parameters (§4), and this package the
// head-to-head selection experiment those feed (§5.3).
package selection
