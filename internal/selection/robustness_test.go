package selection

import (
	"context"
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
)

func robustnessFixture(t *testing.T) (cluster.Profile, ModelBased, RobustnessConfig) {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 5, Warmup: 1}
	cfg := RobustnessConfig{
		P:           8,
		Sizes:       []int{8192, 65536},
		Intensities: []float64{0, 0.5},
		Seed:        3,
		Settings:    set,
	}
	return pr, ModelBased{Models: fuzzModels()}, cfg
}

func TestRobustnessReport(t *testing.T) {
	pr, sel, cfg := robustnessFixture(t)
	rep, err := Robustness(context.Background(), pr, sel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(cfg.Intensities) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(cfg.Intensities))
	}
	if rep.Rows[0].Spec != "none" {
		t.Fatalf("intensity 0 spec = %q, want none", rep.Rows[0].Spec)
	}
	if rep.Rows[1].Spec == "none" {
		t.Fatal("intensity 0.5 produced no perturbation")
	}
	for _, row := range rep.Rows {
		// Degradation vs the oracle is non-negative by construction (the
		// oracle rank includes every algorithm the model can pick) and the
		// mean never exceeds the max.
		if row.Model.MeanDegradation < 0 || row.Model.MeanDegradation > row.Model.MaxDegradation {
			t.Errorf("ε=%g: inconsistent model score %+v", row.Intensity, row.Model)
		}
		if row.Model.Wins < 0 || row.Model.Wins > len(cfg.Sizes) {
			t.Errorf("ε=%g: wins %d outside 0..%d", row.Intensity, row.Model.Wins, len(cfg.Sizes))
		}
		// perturb.Random is brownout-free, so nothing may fall back.
		if len(row.Fallbacks) != 0 {
			t.Errorf("ε=%g: unexpected fallbacks %v", row.Intensity, row.Fallbacks)
		}
	}

	// Same seed and config ⇒ bit-identical report.
	again, err := Robustness(context.Background(), pr, sel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render() != again.Render() || rep.CSV() != again.CSV() {
		t.Fatal("robustness report not deterministic")
	}

	text := rep.Render()
	for _, want := range []string{"Robustness", pr.Name, "ompi", "none"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render() missing %q:\n%s", want, text)
		}
	}
	csv := rep.CSV()
	if lines := strings.Count(csv, "\n"); lines != 1+len(rep.Rows) {
		t.Errorf("CSV has %d lines, want %d:\n%s", lines, 1+len(rep.Rows), csv)
	}
}

func TestRobustnessRejectsBadConfig(t *testing.T) {
	pr, sel, cfg := robustnessFixture(t)
	bad := cfg
	bad.P = 1
	if _, err := Robustness(context.Background(), pr, sel, bad); err == nil {
		t.Error("P=1 accepted")
	}
	bad = cfg
	bad.P = pr.Nodes + 1
	if _, err := Robustness(context.Background(), pr, sel, bad); err == nil {
		t.Error("oversized P accepted")
	}
	bad = cfg
	bad.Sizes = nil
	if _, err := Robustness(context.Background(), pr, sel, bad); err == nil {
		t.Error("empty size grid accepted")
	}
	bad = cfg
	bad.Intensities = nil
	if _, err := Robustness(context.Background(), pr, sel, bad); err == nil {
		t.Error("empty intensity grid accepted")
	}
}

func TestRenderFallbacksDeterministic(t *testing.T) {
	got := renderFallbacks(map[experiment.FallbackReason]int{
		experiment.FallbackTimeVarying: 3,
		experiment.FallbackPayload:     1,
	})
	if got != "payload×1, time-varying-perturbation×3" {
		t.Fatalf("renderFallbacks = %q", got)
	}
}
