package selection

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/perturb"
)

// Robustness experiment: the paper's selector comparison (Table 3) is run
// on a quiet, homogeneous platform. This file stress-tests the same
// selectors on degraded ones: for a grid of perturbation intensities, a
// deterministic random perturbation spec (perturb.Random) is composed
// onto the platform, the oracle re-ranks every algorithm on the degraded
// cluster, and each selector's penalty versus that oracle is scored. The
// selectors still decide from the *unperturbed* platform's knowledge —
// the model-based selector from models fitted on the quiet cluster, Open
// MPI from its hard-coded thresholds — which is exactly the deployment
// situation when a production cluster degrades under the tuning tables.

// RobustnessConfig parameterises a robustness sweep.
type RobustnessConfig struct {
	// P is the communicator size.
	P int
	// Sizes are the broadcast message sizes scored at each intensity.
	Sizes []int
	// Intensities is the perturbation intensity grid; 0 is the unperturbed
	// baseline and is allowed.
	Intensities []float64
	// Seed drives perturb.Random; the whole sweep is deterministic in it.
	Seed int64
	// Settings drive every measurement.
	Settings experiment.Settings
	// Workers bounds each sweep's worker pool (0 = GOMAXPROCS).
	Workers int
	// Cache, if non-nil, is shared by every intensity's sweep; perturbed
	// platforms never collide with quiet ones (the spec is part of the
	// platform identity, and so of the cache key).
	Cache *experiment.Cache
	// Metrics, if non-nil, receives each intensity's sweep counters plus
	// the selector-agreement tallies
	// selection_choices_total{selector,agrees} — how often each selector's
	// choice matched the degraded oracle's best algorithm. Scores are
	// bit-identical with or without it.
	Metrics *obs.Registry
}

// SelectorScore aggregates one selector's penalty over the message sizes
// of one perturbation intensity.
type SelectorScore struct {
	// MeanDegradation and MaxDegradation are the average and worst
	// percentage by which the selector's choice exceeded the oracle's best
	// time over the scored sizes.
	MeanDegradation float64
	MaxDegradation  float64
	// Wins counts scored sizes where the selector matched (or beat) the
	// oracle's best time.
	Wins int
}

// IntensityRow is the outcome of one perturbation intensity.
type IntensityRow struct {
	// Intensity is the perturbation intensity ε.
	Intensity float64
	// Spec is the generated perturbation ("none" when empty).
	Spec string
	// Model and OMPI score the model-based and Open MPI fixed selectors.
	Model SelectorScore
	OMPI  SelectorScore
	// Fallbacks tallies, per reason, measurements that fell back from the
	// replay engine to the scheduler during this intensity's sweep.
	Fallbacks map[experiment.FallbackReason]int
}

// RobustnessReport scores the selectors over a perturbation-intensity
// grid on one platform.
type RobustnessReport struct {
	Cluster string
	P       int
	Sizes   []int
	Seed    int64
	Rows    []IntensityRow
}

// Robustness runs the robustness sweep: for each intensity it composes
// the deterministic random spec onto pr, measures every algorithm at the
// platform segment size plus Open MPI's chosen configuration for every
// message size (one combined sweep per intensity), and scores both
// selectors against the degraded oracle. Same seed and config ⇒
// bit-identical report.
func Robustness(ctx context.Context, pr cluster.Profile, sel ModelBased, cfg RobustnessConfig) (RobustnessReport, error) {
	if cfg.P < 2 || cfg.P > pr.Nodes {
		return RobustnessReport{}, fmt.Errorf("selection: robustness P=%d outside 2..%d on %s", cfg.P, pr.Nodes, pr.Name)
	}
	if len(cfg.Sizes) == 0 || len(cfg.Intensities) == 0 {
		return RobustnessReport{}, fmt.Errorf("selection: robustness needs message sizes and intensities")
	}
	rep := RobustnessReport{Cluster: pr.Name, P: cfg.P, Sizes: cfg.Sizes, Seed: cfg.Seed}
	algs := coll.BcastAlgorithms()
	for _, intensity := range cfg.Intensities {
		spec := perturb.Random(cfg.Seed, intensity, pr.Net.NICs())
		prp := pr.Perturbed(spec)

		// One combined grid per intensity: the oracle's algorithms at the
		// platform segment size for every size, then Open MPI's choice (its
		// own algorithm and segment size) per size.
		points := experiment.BcastGrid(cfg.P, algs, cfg.Sizes, pr.SegmentSize)
		ompiAt := make([]int, len(cfg.Sizes))
		for i, m := range cfg.Sizes {
			oc := OpenMPIFixed(cfg.P, m)
			ompiAt[i] = len(points)
			points = append(points, experiment.Point{
				Kind: experiment.PointBcast, Alg: oc.Alg, Procs: cfg.P, MsgBytes: m, SegSize: oc.SegSize,
			})
		}
		sw := experiment.Sweep{Profile: prp, Settings: cfg.Settings, Workers: cfg.Workers, Cache: cfg.Cache, Metrics: cfg.Metrics}
		results, err := sw.Run(ctx, points)
		if err != nil {
			return RobustnessReport{}, fmt.Errorf("selection: robustness at ε=%g: %w", intensity, err)
		}

		row := IntensityRow{Intensity: intensity, Spec: spec.String(), Fallbacks: experiment.CountFallbacks(results)}
		for i, m := range cfg.Sizes {
			oracle := OracleResult{Times: make(map[coll.BcastAlgorithm]float64, len(algs))}
			bestT := math.Inf(1)
			for j, alg := range algs {
				t := results[i*len(algs)+j].Meas.Mean
				oracle.Times[alg] = t
				if t < bestT {
					bestT = t
					oracle.Best = alg
				}
			}
			mc, err := sel.Select(cfg.P, m)
			if err != nil {
				return RobustnessReport{}, err
			}
			countAgreement(cfg.Metrics, "model", mc.Alg == oracle.Best)
			countAgreement(cfg.Metrics, "ompi", OpenMPIFixed(cfg.P, m).Alg == oracle.Best)
			score(&row.Model, Degradation(oracle.Times[mc.Alg], bestT))
			score(&row.OMPI, Degradation(results[ompiAt[i]].Meas.Mean, bestT))
		}
		finishScore(&row.Model, len(cfg.Sizes))
		finishScore(&row.OMPI, len(cfg.Sizes))
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// countAgreement tallies one selector decision against the degraded
// oracle's best algorithm. The four labelled counters are precomputed so
// the scoring loop never rebuilds names.
var mAgreement = map[bool]map[string]string{}

func init() {
	for _, agrees := range []bool{false, true} {
		names := make(map[string]string, 2)
		for _, sel := range []string{"model", "ompi"} {
			names[sel] = obs.Name("selection_choices_total",
				"selector", sel, "agrees", fmt.Sprintf("%t", agrees))
		}
		mAgreement[agrees] = names
	}
}

func countAgreement(m *obs.Registry, selector string, agrees bool) {
	if m == nil {
		return
	}
	m.Counter(mAgreement[agrees][selector]).Inc()
}

// score accumulates one size's degradation into a SelectorScore
// (MeanDegradation holds the running sum until finishScore).
func score(s *SelectorScore, deg float64) {
	s.MeanDegradation += deg
	if deg > s.MaxDegradation {
		s.MaxDegradation = deg
	}
	if deg <= 0 {
		s.Wins++
	}
}

func finishScore(s *SelectorScore, n int) {
	s.MeanDegradation /= float64(n)
}

// Render formats the report as the experiment's text table.
func (r RobustnessReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness: selector penalty vs oracle on %s (P=%d, %d sizes, seed %d)\n",
		r.Cluster, r.P, len(r.Sizes), r.Seed)
	fmt.Fprintf(&b, "%9s  %27s  %27s  %s\n", "ε", "model mean/max deg (wins)", "ompi mean/max deg (wins)", "spec")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%9.2f  %10.1f%% /%7.1f%% (%2d)  %10.1f%% /%7.1f%% (%2d)  %s\n",
			row.Intensity,
			row.Model.MeanDegradation, row.Model.MaxDegradation, row.Model.Wins,
			row.OMPI.MeanDegradation, row.OMPI.MaxDegradation, row.OMPI.Wins,
			row.Spec)
		if len(row.Fallbacks) > 0 {
			fmt.Fprintf(&b, "%9s  engine fallbacks: %s\n", "", renderFallbacks(row.Fallbacks))
		}
	}
	return b.String()
}

// CSV formats the report as a flat csv artifact (one row per intensity).
func (r RobustnessReport) CSV() string {
	var b strings.Builder
	b.WriteString("cluster,P,seed,intensity,model_mean_deg,model_max_deg,model_wins,ompi_mean_deg,ompi_max_deg,ompi_wins,spec\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%g,%.4f,%.4f,%d,%.4f,%.4f,%d,%q\n",
			r.Cluster, r.P, r.Seed, row.Intensity,
			row.Model.MeanDegradation, row.Model.MaxDegradation, row.Model.Wins,
			row.OMPI.MeanDegradation, row.OMPI.MaxDegradation, row.OMPI.Wins,
			row.Spec)
	}
	return b.String()
}

// renderFallbacks formats a fallback tally deterministically (sorted by
// reason).
func renderFallbacks(counts map[experiment.FallbackReason]int) string {
	reasons := make([]string, 0, len(counts))
	for r := range counts {
		reasons = append(reasons, string(r))
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s×%d", r, counts[experiment.FallbackReason(r)])
	}
	return strings.Join(parts, ", ")
}
