package selection

import (
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/estimate"
)

// TestCrossScaleSelection reproduces the paper's deployment scenario: the
// parameters are estimated once on roughly half the cluster (the paper
// uses 40 of Grisou's 90 processes) and the selector must then be accurate
// at *other* process counts — that is what distinguishes a model from a
// lookup table.
func TestCrossScaleSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-scale pipeline is expensive")
	}
	pr, err := cluster.Grisou().WithNodes(40)
	if err != nil {
		t.Fatal(err)
	}
	bm, _, err := estimate.Models(pr, estimate.AlphaBetaConfig{
		Procs:    20, // estimation at half the platform
		Sizes:    []int{8192, 65536, 524288, 2 << 20},
		Settings: fastSettings(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := ModelBased{Models: bm}
	// Selection evaluated at the full platform (2x the estimation size).
	for _, m := range []int{16384, 131072, 1 << 20, 4 << 20} {
		cmp, err := Compare(pr, sel, 40, m, fastSettings())
		if err != nil {
			t.Fatal(err)
		}
		if cmp.ModelDegradation > 25 {
			t.Errorf("m=%d: cross-scale pick %v degrades %.0f%% vs best %v",
				m, cmp.ModelChoice.Alg, cmp.ModelDegradation, cmp.Oracle.Best)
		}
	}
}

// TestSelectionStableUnderRecalibration: two independent calibrations of
// the same platform must produce the same selections (the noise stream is
// seeded, so this is exact here; on a real cluster it would hold up to
// measurement noise).
func TestSelectionStableUnderRecalibration(t *testing.T) {
	pr, err := cluster.Gros().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := estimate.AlphaBetaConfig{
		Procs:    8,
		Sizes:    []int{8192, 131072, 1 << 20},
		Settings: fastSettings(),
	}
	a, _, err := estimate.Models(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := estimate.Models(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	selA, selB := ModelBased{Models: a}, ModelBased{Models: b}
	for p := 2; p <= 16; p += 2 {
		for _, m := range []int{4096, 65536, 2 << 20} {
			ca, err1 := selA.Select(p, m)
			cb, err2 := selB.Select(p, m)
			if err1 != nil || err2 != nil || ca != cb {
				t.Fatalf("P=%d m=%d: %v/%v vs %v/%v", p, m, ca, err1, cb, err2)
			}
		}
	}
}
