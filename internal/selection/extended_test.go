package selection

import (
	"math"
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/mpi"
)

// measureExtended measures one spec's operation in Completion mode.
func measureExtended(t *testing.T, pr cluster.Profile, spec estimate.CollectiveSpec, P, m int) float64 {
	t.Helper()
	net, err := pr.Network()
	if err != nil {
		t.Fatal(err)
	}
	meas, err := experiment.Measure(net, P, fastSettings(), experiment.Completion, func(p *mpi.Proc) {
		spec.Run(p, m, pr.SegmentSize)
	})
	if err != nil {
		t.Fatal(err)
	}
	return meas.Mean
}

func extendedHarness(t *testing.T, specs []estimate.CollectiveSpec, sizes []int, worstTol float64) {
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := estimate.Gamma(pr, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	cfg := estimate.AlphaBetaConfig{Procs: 16, Sizes: sizes, Settings: fastSettings()}
	sel, err := CalibrateExtended(pr, specs, gr.Gamma, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction accuracy per algorithm at a held-out size, and selection
	// quality: the picked algorithm must be within worstTol of the
	// measured best.
	held := (sizes[1] + sizes[2]) / 2
	times := make([]float64, len(specs))
	bestT := math.Inf(1)
	for i, spec := range specs {
		times[i] = measureExtended(t, pr, spec, 16, held)
		if times[i] < bestT {
			bestT = times[i]
		}
		pred := sel.Predict(i, 16, held)
		if rel := math.Abs(pred/times[i] - 1); rel > 0.6 {
			t.Errorf("%s: prediction %v vs measured %v (%.0f%% off)", spec.Name, pred, times[i], rel*100)
		}
	}
	pick, name := sel.Best(16, held)
	if deg := times[pick]/bestT - 1; deg > worstTol {
		t.Errorf("selected %s degrades %.0f%% vs best", name, deg*100)
	}
}

func TestExtendedSelectorAllgather(t *testing.T) {
	extendedHarness(t, estimate.AllgatherSpecs(), []int{1024, 8192, 65536, 262144}, 0.25)
}

func TestExtendedSelectorAllreduce(t *testing.T) {
	extendedHarness(t, estimate.AllreduceSpecs(), []int{8192, 65536, 524288, 2 << 20}, 0.25)
}

func TestExtendedSelectorAlltoall(t *testing.T) {
	extendedHarness(t, estimate.AlltoallSpecs(), []int{512, 4096, 32768, 131072}, 0.25)
}

func TestExtendedSelectorValidation(t *testing.T) {
	pr, _ := cluster.Grisou().WithNodes(8)
	gr, err := estimate.Gamma(pr, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CalibrateExtended(pr, nil, gr.Gamma, estimate.AlphaBetaConfig{}); err == nil {
		t.Fatal("empty specs should fail")
	}
	if _, err := estimate.AlphaBetaCollective(pr, estimate.CollectiveSpec{Name: "x"}, gr.Gamma,
		estimate.AlphaBetaConfig{Procs: 4, Sizes: []int{1024, 2048}, Settings: fastSettings()}); err == nil {
		t.Fatal("incomplete spec should fail")
	}
}

func TestExtendedSpecNames(t *testing.T) {
	for _, specs := range [][]estimate.CollectiveSpec{
		estimate.AllgatherSpecs(), estimate.AllreduceSpecs(), estimate.AlltoallSpecs(),
	} {
		for _, s := range specs {
			if !strings.Contains(s.Name, "/") {
				t.Errorf("spec name %q should be family/algorithm", s.Name)
			}
			if s.Run == nil || s.Coefficients == nil {
				t.Errorf("spec %q incomplete", s.Name)
			}
		}
	}
}

// TestExtendedSelectionCrossover checks a qualitative law the models must
// express: for allreduce, recursive doubling (latency-optimal) wins for
// small vectors while the ring (bandwidth-optimal) wins for large ones.
func TestExtendedSelectionCrossover(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := estimate.Gamma(pr, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	specs := estimate.AllreduceSpecs()
	cfg := estimate.AlphaBetaConfig{Procs: 16, Sizes: []int{8192, 65536, 524288, 2 << 20}, Settings: fastSettings()}
	sel, err := CalibrateExtended(pr, specs, gr.Gamma, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, smallPick := sel.Best(16, 1024)
	_, largePick := sel.Best(16, 8<<20)
	if smallPick == largePick {
		t.Fatalf("no crossover: %s picked for both 1KB and 8MB", smallPick)
	}
	if !strings.Contains(largePick, "ring") {
		t.Errorf("8MB allreduce should pick the ring, got %s", largePick)
	}
	// And the picks must be measurably right.
	for _, c := range []struct {
		m    int
		pick string
	}{{1024, smallPick}, {8 << 20, largePick}} {
		bestT := math.Inf(1)
		var pickT float64
		for _, spec := range specs {
			tm := measureExtended(t, pr, spec, 16, c.m)
			if tm < bestT {
				bestT = tm
			}
			if spec.Name == c.pick {
				pickT = tm
			}
		}
		if pickT > 1.3*bestT {
			t.Errorf("m=%d: pick %s measured %v vs best %v", c.m, c.pick, pickT, bestT)
		}
	}
}
