package selection

import (
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
)

func fastSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

func TestOpenMPIFixedDecisionRegions(t *testing.T) {
	cases := []struct {
		p, m    int
		wantAlg coll.BcastAlgorithm
		wantSeg int
	}{
		// Small messages: binomial without segmentation.
		{90, 0, coll.BcastBinomial, 0},
		{90, 1024, coll.BcastBinomial, 0},
		{4, 2047, coll.BcastBinomial, 0},
		// Intermediate: split-binary with 1 KB segments.
		{90, 2048, coll.BcastSplitBinary, 1024},
		{90, 8192, coll.BcastSplitBinary, 1024},
		{90, 262144, coll.BcastSplitBinary, 1024},
		{124, 370727, coll.BcastSplitBinary, 1024},
		// Large: the paper's Table 3 shows chain (pipeline) selected for
		// m >= 512 KB on both clusters.
		{90, 524288, coll.BcastChain, 8192},
		{90, 1 << 20, coll.BcastChain, 8192},
		{90, 4 << 20, coll.BcastChain, 8192},
		{100, 524288, coll.BcastChain, 8192},
		{100, 4 << 20, coll.BcastChain, 8192},
		// Very large messages on small communicators: pipeline with huge
		// segments (P < a_p128·m + b_p128).
		{8, 64 << 20, coll.BcastChain, 131072},
		// Small communicator, large-but-not-huge message: split-binary 8KB.
		{8, 524288, coll.BcastSplitBinary, 8192},
	}
	for _, c := range cases {
		got := OpenMPIFixed(c.p, c.m)
		if got.Alg != c.wantAlg || got.SegSize != c.wantSeg {
			t.Errorf("OpenMPIFixed(P=%d, m=%d) = %v, want %v/%d",
				c.p, c.m, got, c.wantAlg, c.wantSeg)
		}
	}
}

func TestOpenMPIFixedMatchesPaperTable3Selections(t *testing.T) {
	// Paper Table 3: on both clusters Open MPI picks split_binary for
	// 8 KB..256 KB and chain for 512 KB..4 MB.
	for _, p := range []int{90, 100} {
		for m := 8192; m <= 262144; m *= 2 {
			if got := OpenMPIFixed(p, m); got.Alg != coll.BcastSplitBinary {
				t.Errorf("P=%d m=%d: got %v, paper says split_binary", p, m, got)
			}
		}
		for m := 524288; m <= 4<<20; m *= 2 {
			if got := OpenMPIFixed(p, m); got.Alg != coll.BcastChain {
				t.Errorf("P=%d m=%d: got %v, paper says chain", p, m, got)
			}
		}
	}
}

func TestChoiceString(t *testing.T) {
	c := Choice{Alg: coll.BcastChain, SegSize: 8192}
	if c.String() != "chain/8KB" {
		t.Fatalf("String = %q", c.String())
	}
	u := Choice{Alg: coll.BcastBinomial}
	if u.String() != "binomial" {
		t.Fatalf("String = %q", u.String())
	}
}

func TestDegradation(t *testing.T) {
	if Degradation(1.5, 1.0) != 50 {
		t.Fatal("50% degradation expected")
	}
	if Degradation(1.0, 1.0) != 0 {
		t.Fatal("0% expected")
	}
	if Degradation(1.0, 0) != 0 {
		t.Fatal("degenerate best handled")
	}
}

func TestModelBasedSelectValidation(t *testing.T) {
	empty := ModelBased{Models: model.BcastModels{Cluster: "x", SegSize: 8192}}
	if _, err := empty.Select(10, 8192); err == nil {
		t.Fatal("no models should error")
	}
}

func TestModelBasedPicksObviousWinners(t *testing.T) {
	// Hand-crafted parameters where every algorithm has identical α/β:
	// the structural coefficients alone decide, so for one segment at
	// large P the selector must avoid chain and linear; for very large
	// messages it must avoid linear.
	g, err := model.NewGamma(map[int]float64{2: 1, 3: 1.1, 4: 1.2, 5: 1.3, 6: 1.4, 7: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	par := model.Hockney{Alpha: 45e-6, Beta: 1.6e-9}
	bm := model.BcastModels{
		Cluster: "synthetic",
		SegSize: 8192,
		Gamma:   g,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney),
	}
	for _, alg := range coll.BcastAlgorithms() {
		bm.Params[alg] = par
	}
	sel := ModelBased{Models: bm}

	small, err := sel.Select(90, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if small.Alg == coll.BcastChain || small.Alg == coll.BcastLinear || small.Alg == coll.BcastKChain {
		t.Fatalf("one segment at P=90: selected %v, want a log-depth tree", small.Alg)
	}
	big, err := sel.Select(90, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if big.Alg == coll.BcastLinear {
		t.Fatal("4MB at P=90: linear must never win")
	}
	if len(sel.PredictAll(90, 8192)) != len(coll.BcastAlgorithms()) {
		t.Fatal("PredictAll should cover all algorithms")
	}
}

func TestOracleRanksAlgorithms(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Oracle(pr, 16, 65536, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != len(coll.BcastAlgorithms()) {
		t.Fatalf("oracle measured %d algorithms", len(res.Times))
	}
	ranked := res.Ranked()
	if ranked[0] != res.Best {
		t.Fatal("ranking head disagrees with Best")
	}
	for i := 1; i < len(ranked); i++ {
		if res.Times[ranked[i]] < res.Times[ranked[i-1]] {
			t.Fatal("ranking not sorted")
		}
	}
	if res.BestTime() <= 0 {
		t.Fatal("non-positive best time")
	}
}

// TestEndToEndSelectionAccuracy is the package's core scientific check —
// the miniature version of the paper's Table 3 result: after the full §4
// estimation pipeline, the model-based selection's measured time must be
// close to the empirical best, and on average better than Open MPI's
// fixed decision function.
func TestEndToEndSelectionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("estimation pipeline is expensive")
	}
	pr, err := cluster.Grisou().WithNodes(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := estimate.AlphaBetaConfig{
		Procs:    16,
		Sizes:    []int{8192, 32768, 131072, 524288, 2 << 20},
		Settings: fastSettings(),
	}
	bm, _, err := estimate.Models(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel := ModelBased{Models: bm}

	var modelTotal, ompiTotal, bestTotal float64
	for _, m := range []int{8192, 65536, 524288, 2 << 20} {
		cmp, err := Compare(pr, sel, 32, m, fastSettings())
		if err != nil {
			t.Fatal(err)
		}
		if cmp.ModelDegradation > 60 {
			t.Errorf("m=%d: model-based pick %v degrades %.0f%% vs best %v",
				m, cmp.ModelChoice.Alg, cmp.ModelDegradation, cmp.Oracle.Best)
		}
		modelTotal += cmp.ModelTime
		ompiTotal += cmp.OMPITime
		bestTotal += cmp.Oracle.BestTime()
	}
	if modelTotal > ompiTotal {
		t.Errorf("model-based selection (%v total) should beat Open MPI's fixed decision (%v total)",
			modelTotal, ompiTotal)
	}
	if modelTotal > 1.5*bestTotal {
		t.Errorf("model-based selection (%v) strays too far from the oracle (%v)", modelTotal, bestTotal)
	}
}
