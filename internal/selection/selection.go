package selection

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
)

// Choice is a selected algorithm together with the segment size it should
// run with (0 = unsegmented).
type Choice struct {
	Alg     coll.BcastAlgorithm
	SegSize int
}

func (c Choice) String() string {
	if c.SegSize > 0 {
		return fmt.Sprintf("%v/%dKB", c.Alg, c.SegSize/1024)
	}
	return c.Alg.String()
}

// ModelBased selects broadcast algorithms by evaluating analytical models.
type ModelBased struct {
	Models model.BcastModels
}

// Select returns the algorithm with the smallest predicted time for a
// broadcast of m bytes over P processes, at the platform's segment size.
func (s ModelBased) Select(P, m int) (Choice, error) {
	best := Choice{SegSize: s.Models.SegSize}
	bestT := math.Inf(1)
	found := false
	for _, alg := range coll.BcastAlgorithms() {
		t, err := s.Models.Predict(alg, P, m)
		if err != nil {
			continue
		}
		if t < bestT {
			bestT = t
			best.Alg = alg
			found = true
		}
	}
	if !found {
		return Choice{}, fmt.Errorf("selection: no models available for %s", s.Models.Cluster)
	}
	return best, nil
}

// PredictAll returns every algorithm's predicted time (algorithms without
// fitted parameters are omitted).
func (s ModelBased) PredictAll(P, m int) map[coll.BcastAlgorithm]float64 {
	out := make(map[coll.BcastAlgorithm]float64, len(s.Models.Params))
	for _, alg := range coll.BcastAlgorithms() {
		if t, err := s.Models.Predict(alg, P, m); err == nil {
			out[alg] = t
		}
	}
	return out
}

// Open MPI 3.1 fixed-decision constants for MPI_Bcast
// (ompi/mca/coll/tuned/coll_tuned_decision_fixed.c). The a/b pairs define
// communicator-size thresholds that are linear in the message size and
// govern the pipeline segment-size choice.
const (
	ompiSmallMessageSize        = 2048
	ompiIntermediateMessageSize = 370728
	ompiAP128                   = 1.6761e-6
	ompiBP128                   = -1.0513
	ompiAP64                    = 2.3679e-6
	ompiBP64                    = 1.1787
	ompiAP16                    = 3.2118e-6
	ompiBP16                    = 8.7936
)

// OpenMPIFixed is Open MPI 3.1's broadcast decision function: binomial
// (unsegmented) for small messages, split-binary with 1 KB segments for
// intermediate ones, and the pipeline ("chain" in the paper's tables) with
// a size-dependent segment size for large ones.
func OpenMPIFixed(P, m int) Choice {
	msg := float64(m)
	switch {
	case m < ompiSmallMessageSize:
		return Choice{Alg: coll.BcastBinomial, SegSize: 0}
	case m < ompiIntermediateMessageSize:
		return Choice{Alg: coll.BcastSplitBinary, SegSize: 1024}
	case float64(P) < ompiAP128*msg+ompiBP128:
		return Choice{Alg: coll.BcastChain, SegSize: 1024 << 7}
	case P < 13:
		return Choice{Alg: coll.BcastSplitBinary, SegSize: 1024 << 3}
	case float64(P) < ompiAP64*msg+ompiBP64:
		return Choice{Alg: coll.BcastChain, SegSize: 1024 << 6}
	case float64(P) < ompiAP16*msg+ompiBP16:
		return Choice{Alg: coll.BcastChain, SegSize: 1024 << 4}
	default:
		return Choice{Alg: coll.BcastChain, SegSize: 1024 << 3}
	}
}

// OracleResult holds the measured time of every algorithm for one (P, m).
type OracleResult struct {
	// Times maps each algorithm (at the platform segment size) to its
	// measured mean execution time.
	Times map[coll.BcastAlgorithm]float64
	// Best is the fastest algorithm.
	Best coll.BcastAlgorithm
}

// BestTime returns the oracle's winning time.
func (o OracleResult) BestTime() float64 { return o.Times[o.Best] }

// Ranked returns the algorithms sorted fastest-first.
func (o OracleResult) Ranked() []coll.BcastAlgorithm {
	algs := make([]coll.BcastAlgorithm, 0, len(o.Times))
	for a := range o.Times {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool {
		ti, tj := o.Times[algs[i]], o.Times[algs[j]]
		if ti == tj {
			return algs[i] < algs[j]
		}
		return ti < tj
	})
	return algs
}

// Oracle measures every broadcast algorithm at the platform's segment size
// and returns the empirical ranking. The per-algorithm measurements are
// independent and fan out over a default-width experiment.Sweep; results
// are identical to measuring serially.
func Oracle(pr cluster.Profile, P, m int, set experiment.Settings) (OracleResult, error) {
	return OracleSweep(context.Background(), experiment.Sweep{Profile: pr, Settings: set}, P, m)
}

// OracleSweep is Oracle running on a caller-supplied sweep engine, letting
// callers bound the worker pool, reuse a measurement cache across (P, m)
// points, and cancel mid-flight. sw.Profile names the platform.
func OracleSweep(ctx context.Context, sw experiment.Sweep, P, m int) (OracleResult, error) {
	algs := coll.BcastAlgorithms()
	points := experiment.BcastGrid(P, algs, []int{m}, sw.Profile.SegmentSize)
	measured, err := sw.Run(ctx, points)
	if err != nil {
		return OracleResult{}, fmt.Errorf("selection: oracle at (P=%d, m=%d): %w", P, m, err)
	}
	res := OracleResult{Times: make(map[coll.BcastAlgorithm]float64, len(algs))}
	bestT := math.Inf(1)
	for i, alg := range algs {
		t := measured[i].Meas.Mean
		res.Times[alg] = t
		if t < bestT {
			bestT = t
			res.Best = alg
		}
	}
	return res, nil
}

// Degradation returns the percentage by which t exceeds best (the paper's
// braces in Table 3).
func Degradation(t, best float64) float64 {
	if best <= 0 {
		return 0
	}
	return (t/best - 1) * 100
}

// Comparison is one row of the paper's Table 3 / one x-position of Fig. 5:
// the three selectors' choices and measured performance for a given (P, m).
type Comparison struct {
	P, M int
	// Oracle ranking at the platform segment size.
	Oracle OracleResult
	// ModelChoice and its measured time and degradation vs the oracle.
	ModelChoice      Choice
	ModelTime        float64
	ModelDegradation float64
	// OMPIChoice (with Open MPI's own segment size) and its measured time
	// and degradation.
	OMPIChoice      Choice
	OMPITime        float64
	OMPIDegradation float64
}

// Compare evaluates the three selectors for one (P, m) on a platform. The
// model-based and oracle selections run at the platform's segment size;
// the Open MPI selection runs with the segment size its decision function
// dictates, exactly as the paper evaluates it.
func Compare(pr cluster.Profile, sel ModelBased, P, m int, set experiment.Settings) (Comparison, error) {
	cmp := Comparison{P: P, M: m}
	oracle, err := Oracle(pr, P, m, set)
	if err != nil {
		return Comparison{}, err
	}
	cmp.Oracle = oracle

	mc, err := sel.Select(P, m)
	if err != nil {
		return Comparison{}, err
	}
	cmp.ModelChoice = mc
	// The model-based choice at the platform segment size was already
	// measured by the oracle pass.
	cmp.ModelTime = oracle.Times[mc.Alg]
	cmp.ModelDegradation = Degradation(cmp.ModelTime, oracle.BestTime())

	oc := OpenMPIFixed(P, m)
	cmp.OMPIChoice = oc
	meas, err := experiment.MeasureBcast(pr, P, oc.Alg, m, oc.SegSize, set)
	if err != nil {
		return Comparison{}, err
	}
	cmp.OMPITime = meas.Mean
	// Open MPI's pick can even beat the fixed-segment oracle when its
	// segment size is better; degradation is still reported against the
	// oracle, like the paper.
	cmp.OMPIDegradation = Degradation(cmp.OMPITime, oracle.BestTime())
	return cmp, nil
}
