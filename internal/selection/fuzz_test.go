package selection

import (
	"testing"

	"mpicollperf/internal/coll"
	"mpicollperf/internal/model"
)

// fuzzModels builds a fully-populated synthetic model set: every
// algorithm gets distinct but well-formed Hockney parameters, so the
// model-based selector always has a prediction to rank.
func fuzzModels() model.BcastModels {
	params := make(map[coll.BcastAlgorithm]model.Hockney)
	for i, alg := range coll.BcastAlgorithms() {
		params[alg] = model.Hockney{Alpha: 1e-5 * float64(i+1), Beta: 1e-9 * float64(i+2)}
	}
	return model.BcastModels{Cluster: "fuzz", SegSize: 8192, Gamma: model.UnitGamma(), Params: params}
}

// knownAlgorithm reports whether a is one of the six named broadcast
// algorithms (String round-trips through ParseBcastAlgorithm only for
// valid identifiers).
func knownAlgorithm(a coll.BcastAlgorithm) bool {
	got, err := coll.ParseBcastAlgorithm(a.String())
	return err == nil && got == a
}

// FuzzSelectorTotal checks that both selectors are total functions of
// (P, m): for arbitrary communicator and message sizes they return one of
// the six known algorithms with a non-negative segment size, and never
// panic. A selector that fell off its decision thresholds into an invalid
// choice would send the measurement layer an algorithm it cannot run.
func FuzzSelectorTotal(f *testing.F) {
	f.Add(uint16(2), uint32(0))
	f.Add(uint16(1), uint32(1))
	f.Add(uint16(12), uint32(ompiSmallMessageSize))
	f.Add(uint16(13), uint32(ompiIntermediateMessageSize))
	f.Add(uint16(90), uint32(1<<20))
	f.Add(uint16(124), uint32(4<<20))
	f.Add(uint16(4096), uint32(1<<31-1))
	sel := ModelBased{Models: fuzzModels()}
	f.Fuzz(func(t *testing.T, pRaw uint16, mRaw uint32) {
		P := int(pRaw)
		if P < 1 {
			P = 1
		}
		m := int(mRaw)

		oc := OpenMPIFixed(P, m)
		if !knownAlgorithm(oc.Alg) {
			t.Fatalf("OpenMPIFixed(%d, %d) chose unknown algorithm %d", P, m, int(oc.Alg))
		}
		if oc.SegSize < 0 {
			t.Fatalf("OpenMPIFixed(%d, %d) chose negative segment size %d", P, m, oc.SegSize)
		}

		mc, err := sel.Select(P, m)
		if err != nil {
			t.Fatalf("ModelBased.Select(%d, %d): %v", P, m, err)
		}
		if !knownAlgorithm(mc.Alg) {
			t.Fatalf("ModelBased.Select(%d, %d) chose unknown algorithm %d", P, m, int(mc.Alg))
		}
		if mc.SegSize < 0 {
			t.Fatalf("ModelBased.Select(%d, %d) chose negative segment size %d", P, m, mc.SegSize)
		}
	})
}
