package tables

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/selection"
)

// ExtRow is one (family, size) row of the extension table: the model-based
// pick versus the measured best across a collective family's algorithms.
type ExtRow struct {
	Family string
	M      int
	// Times maps spec name to its measured mean time.
	Times map[string]float64
	// Best is the fastest spec, Pick the model-selected one.
	Best, Pick string
	// Degradation is Pick's slowdown vs Best in percent.
	Degradation float64
}

// ExtTable carries the extension results for one platform — the paper's
// future-work claim ("the approach can be successful ... for MPI
// collective operations" generally) made concrete.
type ExtTable struct {
	Cluster string
	P       int
	Rows    []ExtRow
}

// GenerateExtTable calibrates every extended collective family on the
// platform and evaluates its model-based selection against exhaustive
// measurement over the given sizes.
func GenerateExtTable(pr cluster.Profile, P int, sizes []int, set experiment.Settings) (ExtTable, error) {
	if len(sizes) == 0 {
		sizes = []int{4096, 65536, 1 << 20}
	}
	gr, err := estimate.Gamma(pr, set)
	if err != nil {
		return ExtTable{}, err
	}
	out := ExtTable{Cluster: pr.Name, P: P}
	cfg := estimate.AlphaBetaConfig{Procs: P, Sizes: sizes, Settings: set}
	families := estimate.AllSpecFamilies()
	for _, family := range []string{
		"allgather", "allreduce", "alltoall", "reduce", "gather", "scatter", "reduce_scatter",
	} {
		specs := families[family]
		sel, err := selection.CalibrateExtended(pr, specs, gr.Gamma, cfg)
		if err != nil {
			return ExtTable{}, fmt.Errorf("tables: ext %s: %w", family, err)
		}
		for _, m := range sizes {
			row := ExtRow{Family: family, M: m, Times: make(map[string]float64, len(specs))}
			best := math.Inf(1)
			for _, spec := range specs {
				tm, err := measureSpec(pr, spec, P, m, set)
				if err != nil {
					return ExtTable{}, err
				}
				row.Times[spec.Name] = tm
				if tm < best {
					best = tm
					row.Best = spec.Name
				}
			}
			_, row.Pick = sel.Best(P, m)
			row.Degradation = selection.Degradation(row.Times[row.Pick], best)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func measureSpec(pr cluster.Profile, spec estimate.CollectiveSpec, P, m int, set experiment.Settings) (float64, error) {
	net, err := pr.Network()
	if err != nil {
		return 0, err
	}
	meas, err := experiment.Measure(net, P, set, experiment.Completion, func(p *mpi.Proc) {
		spec.Run(p, m, pr.SegmentSize)
	})
	if err != nil {
		return 0, fmt.Errorf("tables: measuring %s at m=%d: %w", spec.Name, m, err)
	}
	return meas.Mean, nil
}

// Render formats the extension table.
func (t ExtTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — model-based selection beyond broadcast (%s, P=%d)\n", t.Cluster, t.P)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "collective\tm\tbest\tmodel pick\tdegradation")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.1f%%\n",
			r.Family, kb(r.M), trimFamily(r.Best), trimFamily(r.Pick), r.Degradation)
	}
	w.Flush()
	return b.String()
}

// CSV emits the extension table.
func (t ExtTable) CSV() string {
	var b strings.Builder
	b.WriteString("cluster,P,collective,m_bytes,best,model_pick,degradation_pct\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%s,%d,%s,%s,%.2f\n",
			t.Cluster, t.P, r.Family, r.M, trimFamily(r.Best), trimFamily(r.Pick), r.Degradation)
	}
	return b.String()
}

// MaxDegradation returns the worst model-pick slowdown in the table.
func (t ExtTable) MaxDegradation() float64 {
	worst := 0.0
	for _, r := range t.Rows {
		if r.Degradation > worst {
			worst = r.Degradation
		}
	}
	return worst
}

func trimFamily(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}
