package tables

import (
	"strings"
	"testing"
)

func TestGenerateExtTable(t *testing.T) {
	pr := smallProfiles(t)[0]
	tab, err := GenerateExtTable(pr, 8, []int{4096, 262144}, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	// 7 families x 2 sizes.
	if len(tab.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(tab.Rows))
	}
	families := map[string]bool{}
	for _, r := range tab.Rows {
		families[r.Family] = true
		if r.Best == "" || r.Pick == "" {
			t.Fatalf("row %+v incomplete", r)
		}
		if r.Degradation < 0 {
			t.Fatalf("negative degradation in %+v", r)
		}
		if len(r.Times) < 2 {
			t.Fatalf("family %s has %d algorithms", r.Family, len(r.Times))
		}
	}
	if len(families) != 7 {
		t.Fatalf("families covered: %v", families)
	}
	// The model-based picks must be collectively sane: worst degradation
	// bounded (the per-family tests in selection assert tighter bounds).
	if tab.MaxDegradation() > 100 {
		t.Fatalf("worst extension degradation %.0f%%", tab.MaxDegradation())
	}
	out := tab.Render()
	if !strings.Contains(out, "Extension") || !strings.Contains(out, "reduce_scatter") {
		t.Fatalf("render:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "cluster,P,collective") || strings.Count(csv, "\n") != 15 {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestTrimFamily(t *testing.T) {
	if trimFamily("allgather/ring") != "ring" || trimFamily("plain") != "plain" {
		t.Fatal("trimFamily")
	}
}
