package tables

import (
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	s := []Series{
		{Name: "up", Marker: 'u', X: []float64{1, 10, 100, 1000}, Y: []float64{1, 2, 4, 8}},
		{Name: "down", Marker: 'd', X: []float64{1, 10, 100, 1000}, Y: []float64{8, 4, 2, 1}},
	}
	out := Plot("test chart", "x", "y", 40, 10, s)
	for _, want := range []string{"test chart", "u = up", "d = down", "(log scale)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear in the grid.
	if strings.Count(out, "u") < 2 || strings.Count(out, "d") < 2 {
		t.Fatalf("markers missing:\n%s", out)
	}
	// An increasing series' first marker is on a lower row than its last:
	// find rows containing 'u'.
	lines := strings.Split(out, "\n")
	firstU, lastU := -1, -1
	for i, line := range lines {
		if strings.Contains(line, "|") && strings.Contains(line, "u") {
			if firstU < 0 {
				firstU = i
			}
			lastU = i
		}
	}
	if firstU < 0 || firstU == lastU {
		t.Fatalf("u series occupies a single row:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	// No plottable points.
	out := Plot("empty", "x", "y", 30, 8, []Series{{Name: "z", Marker: 'z', X: []float64{0}, Y: []float64{-1}}})
	if !strings.Contains(out, "no plottable points") {
		t.Fatalf("degenerate plot:\n%s", out)
	}
	// Single point (zero extent axes) must not panic.
	out = Plot("one", "x", "y", 30, 8, []Series{{Name: "p", Marker: 'p', X: []float64{5}, Y: []float64{7}}})
	if !strings.Contains(out, "p = p") {
		t.Fatalf("single-point plot:\n%s", out)
	}
	// Tiny dimensions are clamped.
	out = Plot("tiny", "x", "y", 1, 1, []Series{{Name: "p", Marker: 'p', X: []float64{1, 2}, Y: []float64{1, 2}}})
	if len(out) == 0 {
		t.Fatal("clamped plot empty")
	}
}

func TestFmtSI(t *testing.T) {
	cases := map[float64]string{
		2e9:    "2G",
		3.5e6:  "3.5M",
		8192:   "8.19k",
		42:     "42",
		0.0021: "2.1m",
		4.2e-6: "4.2u",
		7e-9:   "7n",
	}
	for v, want := range cases {
		if got := fmtSI(v); got != want {
			t.Errorf("fmtSI(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPlotFigures(t *testing.T) {
	fig := Fig1{
		Cluster: "grisou", P: 90,
		Rows: []Fig1Row{
			{M: 8192, TradBinary: 1e-3, TradBinomial: 2e-3, MeasBinary: 0.5e-3, MeasBinomial: 0.4e-3},
			{M: 1 << 20, TradBinary: 0.1, TradBinomial: 0.2, MeasBinary: 0.01, MeasBinomial: 0.02},
		},
	}
	out := fig.PlotFig1(60, 15)
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "measured binomial") {
		t.Fatalf("fig1 plot:\n%s", out)
	}
	panel := Fig5Panel{
		Cluster: "gros", P: 100,
		Points: []Fig5Point{
			{M: 8192, OMPITime: 1e-3, ModelTime: 0.9e-3, BestTime: 0.8e-3},
			{M: 1 << 20, OMPITime: 0.1, ModelTime: 0.01, BestTime: 0.01},
		},
	}
	out = panel.PlotFig5(60, 15)
	if !strings.Contains(out, "Fig. 5") || !strings.Contains(out, "open mpi decision") {
		t.Fatalf("fig5 plot:\n%s", out)
	}
}
