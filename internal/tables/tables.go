// Package tables regenerates every table and figure of the paper's
// evaluation (§5) from the simulated platforms:
//
//	Fig. 1  — traditional analytical models vs measured curves (binary and
//	          binomial broadcast), showing why the textbook approach fails.
//	Table 1 — estimated γ(P) for P = 3..7 on both clusters.
//	Table 2 — per-algorithm fitted α and β on both clusters.
//	Fig. 5  — execution time vs message size of the algorithm chosen by
//	          the Open MPI decision function, the model-based selector and
//	          the empirical best, for three process counts per cluster.
//	Table 3 — the same data tabulated for one process count per cluster,
//	          with per-selection performance degradation percentages.
//
// Each Generate* function returns a structured result with Render (aligned
// text) and CSV methods, so the cmd tools can emit either.
package tables

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/hockney"
	"mpicollperf/internal/model"
	"mpicollperf/internal/selection"
	"mpicollperf/internal/stats"
)

// PaperSizes returns the paper's message grid: 10 sizes from 8 KB to 4 MB
// separated by a constant logarithmic step.
func PaperSizes() []int { return stats.LogSpaceBytes(8192, 4<<20, 10) }

// kb formats a byte count the way the paper's tables do.
func kb(m int) string {
	if m >= 1<<20 && m%(1<<20) == 0 {
		return fmt.Sprintf("%dMB", m/(1<<20))
	}
	return fmt.Sprintf("%dKB", (m+512)/1024)
}

// ---------------------------------------------------------------- Fig. 1

// Fig1Row is one message size of the Fig. 1 comparison.
type Fig1Row struct {
	M int
	// TradBinary and TradBinomial are the textbook-model predictions with
	// ping-pong Hockney parameters.
	TradBinary, TradBinomial float64
	// MeasBinary and MeasBinomial are the measured execution times.
	MeasBinary, MeasBinomial float64
}

// Fig1 is the reproduction of the paper's Fig. 1 for one platform.
type Fig1 struct {
	Cluster  string
	P        int
	PingPong hockney.Params
	Rows     []Fig1Row
}

// GenerateFig1 builds Fig. 1: traditional-model estimation (a) vs
// experimental curves (b) for the binary and binomial tree broadcasts.
func GenerateFig1(pr cluster.Profile, P int, sizes []int, set experiment.Settings) (Fig1, error) {
	if len(sizes) == 0 {
		sizes = PaperSizes()
	}
	pp, err := hockney.EstimatePingPong(pr, []int{0, 8192, 65536, 524288, 2 << 20}, set)
	if err != nil {
		return Fig1{}, err
	}
	fig := Fig1{Cluster: pr.Name, P: P, PingPong: pp}
	for _, m := range sizes {
		row := Fig1Row{M: m}
		row.TradBinary = hockney.TraditionalBcast(coll.BcastBinary, pp, P, m, pr.SegmentSize)
		row.TradBinomial = hockney.TraditionalBcast(coll.BcastBinomial, pp, P, m, pr.SegmentSize)
		mb, err := experiment.MeasureBcast(pr, P, coll.BcastBinary, m, pr.SegmentSize, set)
		if err != nil {
			return Fig1{}, err
		}
		row.MeasBinary = mb.Mean
		mn, err := experiment.MeasureBcast(pr, P, coll.BcastBinomial, m, pr.SegmentSize, set)
		if err != nil {
			return Fig1{}, err
		}
		row.MeasBinomial = mn.Mean
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Render formats the figure as an aligned text table.
func (f Fig1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — traditional models vs experiment (%s, P=%d)\n", f.Cluster, f.P)
	fmt.Fprintf(&b, "ping-pong Hockney parameters: alpha=%.3e s, beta=%.3e s/B\n", f.PingPong.Alpha, f.PingPong.Beta)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "m\ttrad binary\ttrad binomial\tmeas binary\tmeas binomial\ttrad/meas binary\ttrad/meas binomial")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%s\t%.6f\t%.6f\t%.6f\t%.6f\t%.2fx\t%.2fx\n",
			kb(r.M), r.TradBinary, r.TradBinomial, r.MeasBinary, r.MeasBinomial,
			r.TradBinary/r.MeasBinary, r.TradBinomial/r.MeasBinomial)
	}
	w.Flush()
	return b.String()
}

// CSV emits the figure's series.
func (f Fig1) CSV() string {
	var b strings.Builder
	b.WriteString("cluster,P,m_bytes,trad_binary_s,trad_binomial_s,meas_binary_s,meas_binomial_s\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%g,%g,%g,%g\n",
			f.Cluster, f.P, r.M, r.TradBinary, r.TradBinomial, r.MeasBinary, r.MeasBinomial)
	}
	return b.String()
}

// --------------------------------------------------------------- Table 1

// Table1 is the reproduction of the paper's Table 1: γ(P) per cluster.
type Table1 struct {
	// Clusters in presentation order.
	Clusters []string
	// Gamma[cluster][P] for P in 3..MaxLinearFanout.
	Gamma map[string]map[int]float64
	// MaxP is the largest P column.
	MaxP int
}

// GenerateTable1 estimates γ on every profile.
func GenerateTable1(profiles []cluster.Profile, set experiment.Settings) (Table1, error) {
	t := Table1{Gamma: make(map[string]map[int]float64)}
	for _, pr := range profiles {
		res, err := estimate.Gamma(pr, set)
		if err != nil {
			return Table1{}, fmt.Errorf("tables: γ on %s: %w", pr.Name, err)
		}
		row := make(map[int]float64)
		for p := 3; p <= pr.MaxLinearFanout; p++ {
			row[p] = res.Gamma.At(p)
			if p > t.MaxP {
				t.MaxP = p
			}
		}
		t.Gamma[pr.Name] = row
		t.Clusters = append(t.Clusters, pr.Name)
	}
	return t, nil
}

// Render formats Table 1.
func (t Table1) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — estimated γ(P)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "P")
	for _, c := range t.Clusters {
		fmt.Fprintf(w, "\t%s", c)
	}
	fmt.Fprintln(w)
	for p := 3; p <= t.MaxP; p++ {
		fmt.Fprintf(w, "%d", p)
		for _, c := range t.Clusters {
			fmt.Fprintf(w, "\t%.3f", t.Gamma[c][p])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// CSV emits the table.
func (t Table1) CSV() string {
	var b strings.Builder
	b.WriteString("cluster,P,gamma\n")
	for _, c := range t.Clusters {
		ps := make([]int, 0, len(t.Gamma[c]))
		for p := range t.Gamma[c] {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		for _, p := range ps {
			fmt.Fprintf(&b, "%s,%d,%g\n", c, p, t.Gamma[c][p])
		}
	}
	return b.String()
}

// --------------------------------------------------------------- Table 2

// Table2Row is one (cluster, algorithm) parameter pair.
type Table2Row struct {
	Cluster   string
	Algorithm coll.BcastAlgorithm
	Alpha     float64
	Beta      float64
}

// Table2 is the reproduction of the paper's Table 2: per-algorithm fitted
// α and β on each cluster.
type Table2 struct {
	Rows []Table2Row
	// Models carries the full fitted model sets keyed by cluster, so that
	// downstream artifacts (Fig. 5, Table 3) can reuse them without
	// re-estimating.
	Models map[string]model.BcastModels
}

// GenerateTable2 runs the full §4.2 estimation for every algorithm on
// every profile. procs maps cluster name to the process count used for
// the estimation experiments (the paper: 40 on Grisou, 124 on Gros); zero
// or missing means the estimate package default.
func GenerateTable2(profiles []cluster.Profile, procs map[string]int, set experiment.Settings) (Table2, error) {
	t := Table2{Models: make(map[string]model.BcastModels)}
	for _, pr := range profiles {
		cfg := estimate.AlphaBetaConfig{Procs: procs[pr.Name], Settings: set}
		bm, _, err := estimate.Models(pr, cfg)
		if err != nil {
			return Table2{}, fmt.Errorf("tables: α/β on %s: %w", pr.Name, err)
		}
		t.Models[pr.Name] = bm
		for _, alg := range coll.BcastAlgorithms() {
			par := bm.Params[alg]
			t.Rows = append(t.Rows, Table2Row{
				Cluster: pr.Name, Algorithm: alg, Alpha: par.Alpha, Beta: par.Beta,
			})
		}
	}
	return t, nil
}

// Render formats Table 2.
func (t Table2) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — estimated per-algorithm α and β\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "cluster\talgorithm\talpha (s)\tbeta (s/B)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s\t%v\t%.3e\t%.3e\n", r.Cluster, r.Algorithm, r.Alpha, r.Beta)
	}
	w.Flush()
	return b.String()
}

// CSV emits the table.
func (t Table2) CSV() string {
	var b strings.Builder
	b.WriteString("cluster,algorithm,alpha_s,beta_s_per_byte\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%v,%g,%g\n", r.Cluster, r.Algorithm, r.Alpha, r.Beta)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 5

// Fig5Point is one x-position of a Fig. 5 panel.
type Fig5Point struct {
	M         int
	OMPITime  float64
	ModelTime float64
	BestTime  float64
	OMPIPick  selection.Choice
	ModelPick selection.Choice
	BestPick  coll.BcastAlgorithm
}

// Fig5Panel is one subfigure: a (cluster, P) pair swept over message sizes.
type Fig5Panel struct {
	Cluster string
	P       int
	Points  []Fig5Point
}

// GenerateFig5Panel measures the three selector curves for one (cluster,
// P) pair.
func GenerateFig5Panel(pr cluster.Profile, sel selection.ModelBased, P int, sizes []int, set experiment.Settings) (Fig5Panel, error) {
	if len(sizes) == 0 {
		sizes = PaperSizes()
	}
	panel := Fig5Panel{Cluster: pr.Name, P: P}
	for _, m := range sizes {
		cmp, err := selection.Compare(pr, sel, P, m, set)
		if err != nil {
			return Fig5Panel{}, fmt.Errorf("tables: fig5 %s P=%d m=%d: %w", pr.Name, P, m, err)
		}
		panel.Points = append(panel.Points, Fig5Point{
			M:         m,
			OMPITime:  cmp.OMPITime,
			ModelTime: cmp.ModelTime,
			BestTime:  cmp.Oracle.BestTime(),
			OMPIPick:  cmp.OMPIChoice,
			ModelPick: cmp.ModelChoice,
			BestPick:  cmp.Oracle.Best,
		})
	}
	return panel, nil
}

// Render formats the panel.
func (p Fig5Panel) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — selector comparison (%s, P=%d)\n", p.Cluster, p.P)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "m\topen mpi (s)\tmodel-based (s)\tbest (s)\tompi pick\tmodel pick\tbest pick")
	for _, pt := range p.Points {
		fmt.Fprintf(w, "%s\t%.6f\t%.6f\t%.6f\t%v\t%v\t%v\n",
			kb(pt.M), pt.OMPITime, pt.ModelTime, pt.BestTime, pt.OMPIPick, pt.ModelPick, pt.BestPick)
	}
	w.Flush()
	return b.String()
}

// CSV emits the panel's series.
func (p Fig5Panel) CSV() string {
	var b strings.Builder
	b.WriteString("cluster,P,m_bytes,ompi_s,model_s,best_s,ompi_pick,model_pick,best_pick\n")
	for _, pt := range p.Points {
		fmt.Fprintf(&b, "%s,%d,%d,%g,%g,%g,%v,%v,%v\n",
			p.Cluster, p.P, pt.M, pt.OMPITime, pt.ModelTime, pt.BestTime,
			pt.OMPIPick, pt.ModelPick, pt.BestPick)
	}
	return b.String()
}

// --------------------------------------------------------------- Table 3

// Table3 is the reproduction of the paper's Table 3 for one (cluster, P).
type Table3 struct {
	Cluster string
	P       int
	Rows    []selection.Comparison
}

// GenerateTable3 builds the selection-accuracy table.
func GenerateTable3(pr cluster.Profile, sel selection.ModelBased, P int, sizes []int, set experiment.Settings) (Table3, error) {
	if len(sizes) == 0 {
		sizes = PaperSizes()
	}
	t := Table3{Cluster: pr.Name, P: P}
	for _, m := range sizes {
		cmp, err := selection.Compare(pr, sel, P, m, set)
		if err != nil {
			return Table3{}, fmt.Errorf("tables: table3 %s P=%d m=%d: %w", pr.Name, P, m, err)
		}
		t.Rows = append(t.Rows, cmp)
	}
	return t, nil
}

// Render formats Table 3 in the paper's layout.
func (t Table3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — P=%d, MPI_Bcast, %s\n", t.P, t.Cluster)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "m\tbest\tmodel-based (%)\topen mpi (%)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s\t%v\t%v (%.0f)\t%v (%.0f)\n",
			kb(r.M), r.Oracle.Best,
			r.ModelChoice.Alg, r.ModelDegradation,
			r.OMPIChoice.Alg, r.OMPIDegradation)
	}
	w.Flush()
	return b.String()
}

// CSV emits the table.
func (t Table3) CSV() string {
	var b strings.Builder
	b.WriteString("cluster,P,m_bytes,best,model_pick,model_degradation_pct,ompi_pick,ompi_degradation_pct\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%v,%v,%.2f,%v,%.2f\n",
			t.Cluster, t.P, r.M, r.Oracle.Best,
			r.ModelChoice.Alg, r.ModelDegradation,
			r.OMPIChoice.Alg, r.OMPIDegradation)
	}
	return b.String()
}

// MaxModelDegradation returns the worst model-based degradation in the
// table — the paper's headline accuracy number (≤ 3% on Grisou, ≤ 10% on
// Gros).
func (t Table3) MaxModelDegradation() float64 {
	worst := 0.0
	for _, r := range t.Rows {
		if r.ModelDegradation > worst {
			worst = r.ModelDegradation
		}
	}
	return worst
}
