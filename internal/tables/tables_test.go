package tables

import (
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/selection"
)

func fastSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

func smallProfiles(t *testing.T) []cluster.Profile {
	t.Helper()
	g, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := cluster.Gros().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	return []cluster.Profile{g, gr}
}

func TestPaperSizes(t *testing.T) {
	sizes := PaperSizes()
	if len(sizes) != 10 {
		t.Fatalf("paper grid has 10 sizes, got %d", len(sizes))
	}
	if sizes[0] != 8192 || sizes[9] != 4<<20 {
		t.Fatalf("grid endpoints: %v", sizes)
	}
}

func TestKBFormatting(t *testing.T) {
	cases := map[int]string{
		8192:    "8KB",
		524288:  "512KB",
		1 << 20: "1MB",
		4 << 20: "4MB",
		16384:   "16KB",
	}
	for m, want := range cases {
		if got := kb(m); got != want {
			t.Errorf("kb(%d) = %q, want %q", m, got, want)
		}
	}
}

func TestGenerateTable1(t *testing.T) {
	profiles := smallProfiles(t)
	tab, err := GenerateTable1(profiles, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Clusters) != 2 || tab.MaxP != 7 {
		t.Fatalf("table1 shape: %+v", tab.Clusters)
	}
	for _, c := range tab.Clusters {
		for p := 3; p <= 7; p++ {
			g := tab.Gamma[c][p]
			if g < 1 || g > 3 {
				t.Errorf("%s: γ(%d) = %v outside plausible range", c, p, g)
			}
		}
	}
	text := tab.Render()
	if !strings.Contains(text, "Table 1") || !strings.Contains(text, "grisou") {
		t.Fatalf("render missing content:\n%s", text)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "cluster,P,gamma\n") || strings.Count(csv, "\n") != 11 {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestGenerateFig1(t *testing.T) {
	pr := smallProfiles(t)[0]
	fig, err := GenerateFig1(pr, 16, []int{8192, 131072, 1 << 20}, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.MeasBinary <= 0 || r.MeasBinomial <= 0 || r.TradBinary <= 0 || r.TradBinomial <= 0 {
			t.Fatalf("non-positive entries: %+v", r)
		}
	}
	// The Fig. 1 phenomenon: at the largest size the traditional model
	// misses the measured value by a clear margin for at least one of the
	// two algorithms.
	last := fig.Rows[len(fig.Rows)-1]
	errBinary := relErr(last.TradBinary, last.MeasBinary)
	errBinomial := relErr(last.TradBinomial, last.MeasBinomial)
	if errBinary < 0.15 && errBinomial < 0.15 {
		t.Fatalf("traditional models too accurate (%.2f, %.2f) — Fig. 1's gap should appear",
			errBinary, errBinomial)
	}
	if !strings.Contains(fig.Render(), "Fig. 1") {
		t.Fatal("render header")
	}
	if !strings.HasPrefix(fig.CSV(), "cluster,P,m_bytes") {
		t.Fatal("csv header")
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a/b - 1
	if d < 0 {
		d = -d
	}
	return d
}

func TestGenerateTable2AndDownstream(t *testing.T) {
	if testing.Short() {
		t.Skip("full estimation pipeline")
	}
	profiles := smallProfiles(t)[:1]
	pr := profiles[0]
	tab2, err := GenerateTable2(profiles, map[string]int{pr.Name: 8}, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows) != 6 {
		t.Fatalf("table2 rows = %d", len(tab2.Rows))
	}
	for _, r := range tab2.Rows {
		if r.Beta <= 0 {
			t.Errorf("%s/%v: β = %v", r.Cluster, r.Algorithm, r.Beta)
		}
	}
	if !strings.Contains(tab2.Render(), "alpha (s)") {
		t.Fatal("table2 render")
	}
	sel := selection.ModelBased{Models: tab2.Models[pr.Name]}

	sizes := []int{8192, 131072, 2 << 20}
	panel, err := GenerateFig5Panel(pr, sel, 16, sizes, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Points) != 3 {
		t.Fatalf("panel points = %d", len(panel.Points))
	}
	for _, pt := range panel.Points {
		if pt.BestTime <= 0 || pt.ModelTime < pt.BestTime {
			t.Fatalf("inconsistent point: %+v (model cannot beat the oracle at the same segment size)", pt)
		}
	}
	if !strings.Contains(panel.Render(), "Fig. 5") || !strings.Contains(panel.CSV(), "ompi_s") {
		t.Fatal("panel rendering")
	}

	tab3, err := GenerateTable3(pr, sel, 16, sizes, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab3.Rows) != 3 {
		t.Fatalf("table3 rows = %d", len(tab3.Rows))
	}
	if tab3.MaxModelDegradation() < 0 {
		t.Fatal("negative degradation")
	}
	// The paper's core claim at miniature scale: model-based selection
	// stays within a modest factor of the best.
	if tab3.MaxModelDegradation() > 60 {
		t.Fatalf("model-based selection degrades up to %.0f%%", tab3.MaxModelDegradation())
	}
	if !strings.Contains(tab3.Render(), "Table 3") {
		t.Fatal("table3 render")
	}
	if !strings.HasPrefix(tab3.CSV(), "cluster,P,m_bytes,best") {
		t.Fatal("table3 csv")
	}
}
