package tables

import (
	"fmt"
	"math"
	"strings"
)

// Series is one curve of an ASCII plot.
type Series struct {
	Name   string
	Marker byte
	X      []float64
	Y      []float64
}

// Plot renders a log-log ASCII line chart of the given series — enough to
// eyeball the crossovers the paper's figures show without leaving the
// terminal. Width and height are the plot area in characters (sensible
// minimums are enforced).
func Plot(title, xlabel, ylabel string, width, height int, series []Series) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	// Bounds over all finite positive points (log axes).
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if x <= 0 || y <= 0 || math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		return title + "\n(no plottable points)\n"
	}
	// Avoid a zero-extent axis.
	if minX == maxX {
		maxX = minX * 2
	}
	if minY == maxY {
		maxY = minY * 2
	}
	lx0, lx1 := math.Log(minX), math.Log(maxX)
	ly0, ly1 := math.Log(minY), math.Log(maxY)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		f := (math.Log(x) - lx0) / (lx1 - lx0)
		c := int(math.Round(f * float64(width-1)))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		f := (math.Log(y) - ly0) / (ly1 - ly0)
		r := (height - 1) - int(math.Round(f*float64(height-1)))
		return clampInt(r, 0, height-1)
	}
	for _, s := range series {
		prevC, prevR := -1, -1
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			c, r := col(s.X[i]), row(s.Y[i])
			// Connect consecutive points with a sparse line.
			if prevC >= 0 {
				steps := maxInt(absInt(c-prevC), absInt(r-prevR))
				for k := 1; k < steps; k++ {
					ic := prevC + (c-prevC)*k/steps
					ir := prevR + (r-prevR)*k/steps
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			grid[r][c] = s.Marker
			prevC, prevR = c, r
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s (log scale)\n", ylabel)
	for r := 0; r < height; r++ {
		var label string
		switch r {
		case 0:
			label = fmtSI(maxY)
		case height - 1:
			label = fmtSI(minY)
		}
		fmt.Fprintf(&b, "%10s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", width-len(fmtSI(maxX)), fmtSI(minX), fmtSI(maxX))
	fmt.Fprintf(&b, "%10s  %s (log scale)\n", "", xlabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", s.Marker, s.Name)
	}
	return b.String()
}

// fmtSI formats a value with an engineering suffix.
func fmtSI(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case v >= 1:
		return fmt.Sprintf("%.3g", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3gm", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%.3gu", v*1e6)
	case v > 0:
		return fmt.Sprintf("%.3gn", v*1e9)
	}
	return fmt.Sprintf("%g", v)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PlotFig1 renders the Fig. 1 comparison as an ASCII chart.
func (f Fig1) PlotFig1(width, height int) string {
	xs := make([]float64, len(f.Rows))
	tb := make([]float64, len(f.Rows))
	tn := make([]float64, len(f.Rows))
	mb := make([]float64, len(f.Rows))
	mn := make([]float64, len(f.Rows))
	for i, r := range f.Rows {
		xs[i] = float64(r.M)
		tb[i], tn[i], mb[i], mn[i] = r.TradBinary, r.TradBinomial, r.MeasBinary, r.MeasBinomial
	}
	return Plot(
		fmt.Sprintf("Fig. 1 — traditional models vs experiment (%s, P=%d)", f.Cluster, f.P),
		"message size (B)", "time (s)", width, height,
		[]Series{
			{Name: "traditional binary", Marker: 'B', X: xs, Y: tb},
			{Name: "traditional binomial", Marker: 'N', X: xs, Y: tn},
			{Name: "measured binary", Marker: 'b', X: xs, Y: mb},
			{Name: "measured binomial", Marker: 'n', X: xs, Y: mn},
		})
}

// PlotFig5 renders a Fig. 5 panel as an ASCII chart.
func (p Fig5Panel) PlotFig5(width, height int) string {
	xs := make([]float64, len(p.Points))
	om := make([]float64, len(p.Points))
	mo := make([]float64, len(p.Points))
	be := make([]float64, len(p.Points))
	for i, pt := range p.Points {
		xs[i] = float64(pt.M)
		om[i], mo[i], be[i] = pt.OMPITime, pt.ModelTime, pt.BestTime
	}
	return Plot(
		fmt.Sprintf("Fig. 5 — selector comparison (%s, P=%d)", p.Cluster, p.P),
		"message size (B)", "time (s)", width, height,
		[]Series{
			{Name: "open mpi decision", Marker: 'o', X: xs, Y: om},
			{Name: "model-based", Marker: 'm', X: xs, Y: mo},
			{Name: "best", Marker: '*', X: xs, Y: be},
		})
}
