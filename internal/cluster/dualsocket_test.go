package cluster

import (
	"testing"

	"mpicollperf/internal/simnet"
)

func TestGrisouDualSocketProfile(t *testing.T) {
	pr := GrisouDualSocket()
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if pr.Name != "grisou2" || pr.Net.ProcsPerNode != 2 {
		t.Fatalf("profile: %+v", pr)
	}
	if got, err := ByName("grisou2"); err != nil || got.Name != "grisou2" {
		t.Fatalf("ByName: %v %v", got, err)
	}
	// The paper's artifact set stays the two calibrated platforms.
	if len(All()) != 2 {
		t.Fatalf("All() should remain the paper platforms, got %d", len(All()))
	}
}

func TestDualSocketIntraNodeFasterOnNetwork(t *testing.T) {
	pr := GrisouDualSocket()
	pr.Net.NoiseAmplitude = 0
	net, err := simnet.New(pr.Net)
	if err != nil {
		t.Fatal(err)
	}
	const m = 65536
	intra, err := net.Transmit(0, 1, m, 0) // same node
	if err != nil {
		t.Fatal(err)
	}
	inter, err := net.Transmit(0, 2, m, 0) // across nodes
	if err != nil {
		t.Fatal(err)
	}
	if intra.Delivered >= inter.Delivered {
		t.Fatalf("intra-node (%v) should beat inter-node (%v)", intra.Delivered, inter.Delivered)
	}
}
