package cluster

import (
	"strings"
	"testing"

	"mpicollperf/internal/perturb"
)

func TestPerturbed(t *testing.T) {
	spec, err := perturb.Parse("straggler:node=0,cpu=2,nic=2")
	if err != nil {
		t.Fatal(err)
	}
	pr := Grisou()
	prp := pr.Perturbed(spec)
	if prp.Net.Perturb != spec {
		t.Fatal("spec not threaded into the network config")
	}
	if !strings.HasPrefix(prp.Name, pr.Name+"+") || !strings.Contains(prp.Name, "straggler") {
		t.Fatalf("perturbed name %q must carry the spec", prp.Name)
	}
	if err := prp.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := prp.Network(); err != nil {
		t.Fatal(err)
	}
	// The original profile is untouched (value semantics).
	if pr.Net.Perturb != nil || pr.Name != "grisou" {
		t.Fatal("Perturbed mutated its receiver")
	}
	// A nil spec composes to the unperturbed platform under the same name.
	quiet := pr.Perturbed(nil)
	if quiet.Name != pr.Name || quiet.Net.Perturb != nil {
		t.Fatalf("nil spec changed the profile: %+v", quiet.Name)
	}
	// An out-of-range spec surfaces at Validate/Network time.
	bad := pr.Perturbed(&perturb.Spec{Stragglers: []perturb.Straggler{{Node: 9999, NIC: 2}}})
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range spec passed Validate")
	}
	if _, err := bad.Network(); err == nil {
		t.Fatal("out-of-range spec passed Network")
	}
}
