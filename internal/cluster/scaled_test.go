package cluster

import "testing"

func TestScaled(t *testing.T) {
	pr := Grisou()

	big, err := pr.Scaled(1024)
	if err != nil {
		t.Fatal(err)
	}
	if big.Nodes != 1024 || big.Net.Nodes != 1024 {
		t.Fatalf("Scaled(1024) nodes = %d/%d", big.Nodes, big.Net.Nodes)
	}
	if big.Name != "grisou@1024" {
		t.Fatalf("Scaled(1024) name = %q, want grisou@1024", big.Name)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if big.Net.Latency != pr.Net.Latency || big.Net.ByteTimeSend != pr.Net.ByteTimeSend {
		t.Fatal("Scaled changed link parameters")
	}

	// Shrinking matches WithNodes exactly, name included.
	small, err := pr.Scaled(16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pr.WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	if small != want {
		t.Fatalf("Scaled(16) = %+v, want WithNodes(16) = %+v", small, want)
	}

	if _, err := pr.Scaled(0); err == nil {
		t.Fatal("Scaled(0) accepted")
	}
}
