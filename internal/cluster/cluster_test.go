package cluster

import (
	"math"
	"testing"
)

func TestBuiltinsValid(t *testing.T) {
	for _, pr := range All() {
		if err := pr.Validate(); err != nil {
			t.Errorf("%s: %v", pr.Name, err)
		}
		if _, err := pr.Network(); err != nil {
			t.Errorf("%s: %v", pr.Name, err)
		}
	}
}

func TestPaperScales(t *testing.T) {
	g := Grisou()
	if g.Nodes != 90 {
		t.Errorf("grisou nodes = %d, want 90 (paper's max process count)", g.Nodes)
	}
	gr := Gros()
	if gr.Nodes != 124 {
		t.Errorf("gros nodes = %d, want 124", gr.Nodes)
	}
	for _, pr := range All() {
		if pr.SegmentSize != 8192 {
			t.Errorf("%s: segment size %d, want the paper's 8 KB", pr.Name, pr.SegmentSize)
		}
		if pr.MaxLinearFanout != 7 {
			t.Errorf("%s: max fanout %d, want 7 (= ceil(log2 P))", pr.Name, pr.MaxLinearFanout)
		}
	}
}

func TestGrosIsFasterNetwork(t *testing.T) {
	g, gr := Grisou(), Gros()
	if gr.Net.ByteTimeSend >= g.Net.ByteTimeSend {
		t.Error("gros (25 Gbps) must have smaller per-byte time than grisou (10 Gbps)")
	}
	if gr.Net.Latency >= g.Net.Latency {
		t.Error("gros should be calibrated with lower latency")
	}
}

// gammaClosedForm is the simulator's analytical γ(P) for a profile (see
// the package comment): T(P)/T(2) with T(P) = c' + (P-1)msG + ms g.
func gammaClosedForm(pr Profile, p int) float64 {
	cfg := pr.Net
	cPrime := cfg.SendOverhead + cfg.Latency + cfg.RecvOverhead
	ms := float64(pr.SegmentSize)
	T := func(n int) float64 {
		return cPrime + float64(n-1)*ms*cfg.ByteTimeSend + ms*cfg.ByteTimeRecv
	}
	return T(p) / T(2)
}

func TestGammaCalibrationMatchesPaperTable1(t *testing.T) {
	paper := map[string][]float64{
		// P = 3, 4, 5, 6, 7
		"grisou": {1.114, 1.219, 1.283, 1.451, 1.540},
		"gros":   {1.084, 1.170, 1.254, 1.339, 1.424},
	}
	for _, pr := range All() {
		want := paper[pr.Name]
		for i, p := 0, 3; p <= 7; i, p = i+1, p+1 {
			got := gammaClosedForm(pr, p)
			if math.Abs(got-want[i]) > 0.06 {
				t.Errorf("%s: γ(%d) = %.3f, paper %.3f (calibration drifted)", pr.Name, p, got, want[i])
			}
		}
		// Monotone growth, γ(2) = 1 by definition.
		if gammaClosedForm(pr, 2) != 1 {
			t.Errorf("%s: γ(2) != 1", pr.Name)
		}
		for p := 3; p <= 7; p++ {
			if gammaClosedForm(pr, p) <= gammaClosedForm(pr, p-1) {
				t.Errorf("%s: γ not increasing at P=%d", pr.Name, p)
			}
		}
	}
}

func TestWithNodes(t *testing.T) {
	pr, err := Grisou().WithNodes(50)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Nodes != 50 || pr.Net.Nodes != 50 {
		t.Fatalf("WithNodes: %+v", pr)
	}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Grisou().WithNodes(0); err == nil {
		t.Fatal("0 nodes should fail")
	}
	if _, err := Grisou().WithNodes(91); err == nil {
		t.Fatal("more nodes than the platform has should fail")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"grisou", "gros"} {
		pr, err := ByName(name)
		if err != nil || pr.Name != name {
			t.Fatalf("ByName(%q): %v %v", name, pr, err)
		}
	}
	if _, err := ByName("fugaku"); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestCustom(t *testing.T) {
	pr, err := Custom("lab", 16, 10e-6, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.Net.ByteTimeSend-0.8e-9) > 1e-15 {
		t.Fatalf("byte time = %v", pr.Net.ByteTimeSend)
	}
	if _, err := Custom("bad", 4, 1e-6, 0); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	if _, err := Custom("bad", 0, 1e-6, 1e9); err == nil {
		t.Fatal("zero nodes should fail")
	}
}
