// Package cluster defines the simulated experimental platforms. The paper
// evaluates on two Grid'5000 clusters — Grisou (51 dual-CPU nodes, 10 Gbps
// Ethernet; the paper runs up to 90 processes, one per CPU) and Gros (124
// nodes, 25 Gbps Ethernet, up to 124 processes) — which this package maps
// to simnet configurations.
//
// Calibration. The profiles are calibrated against the paper's Table 1
// (γ(P) for P = 3..7). On the simulator, the non-blocking linear broadcast
// of one m_s-byte segment to P-1 children completes at
//
//	T(P) = c′ + (P-1)·m_s·G + m_s·g,   c′ = o_s + L + o_r,
//
// so γ(P) = T(P)/T(2) is an affine-over-affine function of P. The paper's
// measured γ tables fit this form almost exactly, which pins down c′ once
// G is taken from the link speed:
//
//	Grisou: G = g = 0.8 ns/B (10 Gbps), c′ = 47.5 µs → γ(3..7) =
//	        1.108, 1.216, 1.325, 1.433, 1.540  (paper: 1.114, 1.219,
//	        1.283, 1.451, 1.540)
//	Gros:   G = g = 0.32 ns/B (25 Gbps), c′ = 25.7 µs → γ(3..7) =
//	        1.085, 1.170, 1.254, 1.339, 1.424  (paper: 1.084, 1.170,
//	        1.254, 1.339, 1.424)
//
// Absolute broadcast times are not expected to match the paper's testbeds;
// the point of the calibration is that the relative cost structure — and
// therefore which algorithm wins where — is preserved.
package cluster

import (
	"fmt"

	"mpicollperf/internal/perturb"
	"mpicollperf/internal/simnet"
)

// Profile describes a simulated cluster platform.
type Profile struct {
	// Name identifies the platform in reports ("grisou", "gros", ...).
	Name string
	// Nodes is the maximum number of single-process nodes available.
	Nodes int
	// Net is the network configuration handed to the simulator.
	Net simnet.Config
	// SegmentSize is the broadcast segment size m_s used on this platform
	// (8 KB in all of the paper's experiments).
	SegmentSize int
	// MaxLinearFanout is the largest number of children any node has in
	// the segmented broadcast algorithms here (the binomial root's degree,
	// ceil(log2 P) = 7 for both clusters), bounding the range over which
	// γ(P) must be estimated.
	MaxLinearFanout int
}

// Network builds a fresh simulator for the profile.
func (pr Profile) Network() (*simnet.Network, error) {
	return simnet.New(pr.Net)
}

// Perturbed returns a copy of the profile with the perturbation spec
// composed onto its network (nil removes any existing perturbation). The
// name is suffixed with the spec's compact form so reports and
// measurement-cache keys distinguish perturbed platforms at a glance.
func (pr Profile) Perturbed(spec *perturb.Spec) Profile {
	out := pr
	out.Net.Perturb = spec
	if !spec.Empty() {
		out.Name = pr.Name + "+" + spec.String()
	}
	return out
}

// WithNodes returns a copy of the profile restricted to n nodes.
func (pr Profile) WithNodes(n int) (Profile, error) {
	if n < 1 || n > pr.Nodes {
		return Profile{}, fmt.Errorf("cluster: %d nodes outside 1..%d on %s", n, pr.Nodes, pr.Name)
	}
	out := pr
	out.Net.Nodes = n
	out.Nodes = n
	return out, nil
}

// Scaled returns a copy of the profile resized to n nodes, allowing n to
// exceed the physical cluster (which WithNodes refuses). The per-link
// parameters are kept, so a scaled profile is the "what if this fabric
// were bigger" platform for production-sized sweeps — P into the
// thousands — not a measurement of the real machine; the name is suffixed
// with "@n" so reports and measurement-cache keys cannot be mistaken for
// the physical platform. Shrinking (n <= Nodes) keeps the name and
// matches WithNodes exactly.
func (pr Profile) Scaled(n int) (Profile, error) {
	if n <= pr.Nodes {
		return pr.WithNodes(n)
	}
	out := pr
	out.Net.Nodes = n
	out.Nodes = n
	out.Name = fmt.Sprintf("%s@%d", pr.Name, n)
	return out, nil
}

// Validate checks internal consistency.
func (pr Profile) Validate() error {
	if pr.Name == "" {
		return fmt.Errorf("cluster: empty name")
	}
	if pr.SegmentSize <= 0 {
		return fmt.Errorf("cluster %s: segment size %d", pr.Name, pr.SegmentSize)
	}
	if pr.MaxLinearFanout < 2 {
		return fmt.Errorf("cluster %s: max fanout %d", pr.Name, pr.MaxLinearFanout)
	}
	if pr.Net.Nodes != pr.Nodes {
		return fmt.Errorf("cluster %s: node count mismatch %d != %d", pr.Name, pr.Net.Nodes, pr.Nodes)
	}
	return pr.Net.Validate()
}

// Grisou models the Grid'5000 Nancy Grisou cluster: 10 Gbps Ethernet,
// up to 90 processes (the paper's maximum).
func Grisou() Profile {
	return Profile{
		Name:  "grisou",
		Nodes: 90,
		Net: simnet.Config{
			Nodes:          90,
			Latency:        43.5e-6,
			ByteTimeSend:   0.8e-9,
			ByteTimeRecv:   0.8e-9,
			SendOverhead:   2e-6,
			RecvOverhead:   2e-6,
			NoiseAmplitude: 0.03,
			NoiseSeed:      1001,
		},
		SegmentSize:     8192,
		MaxLinearFanout: 7,
	}
}

// Gros models the Grid'5000 Nancy Gros cluster: 25 Gbps Ethernet, up to
// 124 processes.
func Gros() Profile {
	return Profile{
		Name:  "gros",
		Nodes: 124,
		Net: simnet.Config{
			Nodes:          124,
			Latency:        22.7e-6,
			ByteTimeSend:   0.32e-9,
			ByteTimeRecv:   0.32e-9,
			SendOverhead:   1.5e-6,
			RecvOverhead:   1.5e-6,
			NoiseAmplitude: 0.03,
			NoiseSeed:      2002,
		},
		SegmentSize:     8192,
		MaxLinearFanout: 7,
	}
}

// Custom builds a profile from raw hardware characteristics: node count,
// one-way latency in seconds, and link bandwidth in bytes per second.
// Overheads default to small per-message CPU costs and noise to 3%.
func Custom(name string, nodes int, latency, bandwidthBps float64) (Profile, error) {
	if bandwidthBps <= 0 {
		return Profile{}, fmt.Errorf("cluster: bandwidth must be positive")
	}
	pr := Profile{
		Name:  name,
		Nodes: nodes,
		Net: simnet.Config{
			Nodes:          nodes,
			Latency:        latency,
			ByteTimeSend:   1 / bandwidthBps,
			ByteTimeRecv:   1 / bandwidthBps,
			SendOverhead:   2e-6,
			RecvOverhead:   2e-6,
			NoiseAmplitude: 0.03,
			NoiseSeed:      4242,
		},
		SegmentSize:     8192,
		MaxLinearFanout: 8,
	}
	if err := pr.Validate(); err != nil {
		return Profile{}, err
	}
	return pr, nil
}

// GrisouDualSocket models Grisou at the paper's literal deployment
// (§5.1): dual-CPU nodes with one process per CPU, so consecutive process
// pairs share a node's NIC and talk over shared memory with each other.
// The paper's artifacts use the calibrated one-process-per-node Grisou()
// (the calibration absorbs the NIC sharing); this variant exposes the
// co-location effects explicitly for studies that need them.
func GrisouDualSocket() Profile {
	pr := Grisou()
	pr.Name = "grisou2"
	pr.Net.ProcsPerNode = 2
	pr.Net.IntraNodeLatency = 1.5e-6
	pr.Net.IntraNodeByteTime = 0.05e-9 // ~20 GB/s shared memory
	return pr
}

// All returns the built-in paper platforms.
func All() []Profile { return []Profile{Grisou(), Gros()} }

// ByName returns the built-in profile with the given name.
func ByName(name string) (Profile, error) {
	for _, pr := range append(All(), GrisouDualSocket()) {
		if pr.Name == name {
			return pr, nil
		}
	}
	return Profile{}, fmt.Errorf("cluster: unknown profile %q (have grisou, gros, grisou2)", name)
}
