package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRelativeHuberExactLine(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 + 3*x
	}
	fit, err := RelativeHuberRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Intercept, 5, 1e-9) || !almostEqual(fit.Slope, 3, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestRelativeHuberRecoversInterceptAcrossDecades(t *testing.T) {
	// The motivating case: y spans four decades with multiplicative noise.
	// Plain (absolute-residual) Huber fits the largest points and loses
	// the intercept; the relative variant recovers it.
	rng := rand.New(rand.NewSource(17))
	const a, b = 40e-6, 1.6e-9 // α ≈ 40 µs, β ≈ 1.6 ns/B
	var xs, ys []float64
	for m := 8192.0; m <= 4<<20; m *= 2 {
		y := (a + b*m) * (1 + 0.02*rng.NormFloat64())
		xs = append(xs, m)
		ys = append(ys, y)
	}
	rel, err := RelativeHuberRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := HuberRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	relErrA := math.Abs(rel.Intercept/a - 1)
	absErrA := math.Abs(abs.Intercept/a - 1)
	if relErrA > 0.25 {
		t.Fatalf("relative fit intercept %v, want ≈ %v", rel.Intercept, a)
	}
	if relErrA >= absErrA {
		t.Fatalf("relative fit (%.0f%%) should beat absolute fit (%.0f%%) on the intercept",
			relErrA*100, absErrA*100)
	}
	if math.Abs(rel.Slope/b-1) > 0.05 {
		t.Fatalf("slope %v, want ≈ %v", rel.Slope, b)
	}
}

func TestRelativeHuberResistsOutliers(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 + 2*x
	}
	ys[3] *= 5 // gross multiplicative outlier
	fit, err := RelativeHuberRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-10) > 2 || math.Abs(fit.Slope-2) > 0.3 {
		t.Fatalf("outlier corrupted the fit: %+v", fit)
	}
}

func TestRelativeHuberValidation(t *testing.T) {
	if _, err := RelativeHuberRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should fail")
	}
	if _, err := RelativeHuberRegression([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Fatal("non-positive y should fail")
	}
	if _, err := RelativeHuberRegression([]float64{1, 2}, []float64{-1, 2}); err == nil {
		t.Fatal("negative y should fail")
	}
	if _, err := RelativeHuberRegression([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
