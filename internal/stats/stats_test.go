package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Unbiased sample variance of this classic data set is 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("Variance of single sample != 0")
	}
	if Mean([]float64{42}) != 42 {
		t.Fatal("Mean of single sample")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5}, 5},
		{nil, 0},
		{[]float64{-1, -5, 7, 7}, 3},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Median mutated its input: %v", in)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
}

func TestMAD(t *testing.T) {
	// For {1,2,3,4,5} the deviations from the median 3 are {2,1,0,1,2},
	// whose median is 1, so MAD = 1.4826.
	if got := MAD([]float64{1, 2, 3, 4, 5}); !almostEqual(got, 1.4826, 1e-12) {
		t.Fatalf("MAD = %v", got)
	}
	if MAD(nil) != 0 {
		t.Fatal("MAD(nil) != 0")
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p, df, want, tol float64
	}{
		{0.975, 1, 12.706, 1e-3},
		{0.975, 2, 4.303, 1e-3},
		{0.975, 10, 2.228, 1e-3},
		{0.975, 30, 2.042, 1e-3},
		{0.975, 120, 1.980, 1e-3},
		{0.95, 10, 1.812, 1e-3},
		{0.995, 10, 3.169, 1e-3},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > c.tol*c.want {
			t.Errorf("TQuantile(%v, %v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 9, 40} {
		hi := TQuantile(0.9, df)
		lo := TQuantile(0.1, df)
		if !almostEqual(hi, -lo, 1e-9) {
			t.Errorf("df=%v: quantiles not symmetric: %v vs %v", df, hi, lo)
		}
	}
	if TQuantile(0.5, 7) != 0 {
		t.Error("median quantile should be 0")
	}
}

func TestTQuantileInvalidP(t *testing.T) {
	if !math.IsNaN(TQuantile(0, 5)) || !math.IsNaN(TQuantile(1, 5)) {
		t.Fatal("out-of-range p should give NaN")
	}
}

func TestTCDFRoundTrip(t *testing.T) {
	for _, df := range []float64{2, 5, 29} {
		for _, p := range []float64{0.6, 0.9, 0.975, 0.999} {
			q := TQuantile(p, df)
			if got := TCDF(q, df); math.Abs(got-p) > 1e-9 {
				t.Errorf("TCDF(TQuantile(%v,%v)) = %v", p, df, got)
			}
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("RegIncBeta bounds")
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.42, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(1,b) = 1-(1-x)^b.
	if got := RegIncBeta(1, 4, 0.3); !almostEqual(got, 1-math.Pow(0.7, 4), 1e-10) {
		t.Errorf("I_0.3(1,4) = %v", got)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 10.5, 9.5}
	ci, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.N != 6 || ci.Level != 0.95 {
		t.Fatalf("CI metadata wrong: %+v", ci)
	}
	want := TQuantile(0.975, 5) * StdDev(xs) / math.Sqrt(6)
	if !almostEqual(ci.HalfWidth, want, 1e-9) {
		t.Fatalf("HalfWidth = %v, want %v", ci.HalfWidth, want)
	}
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Fatal("expected error on single sample")
	}
}

func TestRelativeError(t *testing.T) {
	ci := ConfidenceInterval{Mean: 100, HalfWidth: 2}
	if ci.RelativeError() != 0.02 {
		t.Fatal("relative error")
	}
	zero := ConfidenceInterval{Mean: 0, HalfWidth: 1}
	if !math.IsInf(zero.RelativeError(), 1) {
		t.Fatal("zero mean should be infinite relative error")
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// A strictly alternating sequence is strongly negatively correlated.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if ac := Lag1Autocorrelation(alt); ac > -0.5 {
		t.Fatalf("alternating autocorr = %v, want strongly negative", ac)
	}
	// A linear ramp is strongly positively correlated.
	ramp := make([]float64, 50)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if ac := Lag1Autocorrelation(ramp); ac < 0.8 {
		t.Fatalf("ramp autocorr = %v, want strongly positive", ac)
	}
	if Lag1Autocorrelation([]float64{1, 2}) != 0 {
		t.Fatal("short input should give 0")
	}
	if Lag1Autocorrelation([]float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant input should give 0")
	}
}

func TestJarqueBera(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	normal := make([]float64, 500)
	for i := range normal {
		normal[i] = rng.NormFloat64()
	}
	_, pNormal := JarqueBera(normal)
	if pNormal < 0.01 {
		t.Fatalf("JB rejected normal data, p=%v", pNormal)
	}
	// Exponential data is heavily skewed and should be rejected.
	expo := make([]float64, 500)
	for i := range expo {
		expo[i] = rng.ExpFloat64()
	}
	_, pExp := JarqueBera(expo)
	if pExp > 0.01 {
		t.Fatalf("JB accepted exponential data, p=%v", pExp)
	}
	if _, p := JarqueBera([]float64{1, 2, 3}); p != 1 {
		t.Fatal("tiny samples should not reject")
	}
	if _, p := JarqueBera([]float64{2, 2, 2, 2, 2}); p != 1 {
		t.Fatal("constant samples should not reject")
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-9) {
			t.Fatalf("LogSpace = %v", xs)
		}
	}
	if got := LogSpace(5, 500, 1); len(got) != 1 || got[0] != 5 {
		t.Fatal("n=1 should return {lo}")
	}
}

func TestLogSpaceConstantLogStep(t *testing.T) {
	xs := LogSpace(8192, 4<<20, 10) // paper's 8KB..4MB grid
	if len(xs) != 10 {
		t.Fatalf("len = %d", len(xs))
	}
	step := math.Log(xs[1]) - math.Log(xs[0])
	for i := 2; i < len(xs); i++ {
		s := math.Log(xs[i]) - math.Log(xs[i-1])
		if math.Abs(s-step) > 1e-9 {
			t.Fatalf("log steps not constant: %v vs %v", s, step)
		}
	}
}

func TestLogSpaceBytes(t *testing.T) {
	xs := LogSpaceBytes(8192, 4<<20, 10)
	if xs[0] != 8192 || xs[len(xs)-1] != 4<<20 {
		t.Fatalf("endpoints wrong: %v", xs)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("not strictly increasing: %v", xs)
		}
	}
	// Degenerate range collapses to unique values.
	if got := LogSpaceBytes(4, 5, 10); len(got) > 2 {
		t.Fatalf("dedup failed: %v", got)
	}
}

func TestOLSExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Intercept, 1, 1e-12) || !almostEqual(fit.Slope, 2, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if r2 := fit.RSquared(xs, ys); !almostEqual(r2, 1, 1e-12) {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestOLSDegenerate(t *testing.T) {
	if _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should error")
	}
	if _, err := OLS([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x should error")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestHuberMatchesOLSOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2.5 + 0.75*xs[i] + 0.01*rng.NormFloat64()
	}
	h, err := HuberRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := OLS(xs, ys)
	if math.Abs(h.Intercept-o.Intercept) > 0.05 || math.Abs(h.Slope-o.Slope) > 0.005 {
		t.Fatalf("huber %+v vs ols %+v diverge on clean data", h, o)
	}
}

func TestHuberResistsOutliers(t *testing.T) {
	// y = 10 + 3x with two gross outliers; OLS is pulled away, Huber is not.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 + 3*x
	}
	ys[2] += 500
	ys[7] -= 300
	h, err := HuberRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := OLS(xs, ys)
	hErr := math.Abs(h.Slope-3) + math.Abs(h.Intercept-10)
	oErr := math.Abs(o.Slope-3) + math.Abs(o.Intercept-10)
	if hErr > 0.5 {
		t.Fatalf("huber fit corrupted by outliers: %+v", h)
	}
	if hErr >= oErr {
		t.Fatalf("huber (%v) should beat ols (%v) on contaminated data", hErr, oErr)
	}
}

func TestHuberPerfectFitShortCircuits(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 2, 3, 4}
	fit, err := HuberRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Intercept, 1, 1e-12) || !almostEqual(fit.Slope, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestHuberLoss(t *testing.T) {
	if HuberLoss(0.5, 1) != 0.125 {
		t.Fatal("quadratic region")
	}
	// |r| > delta: delta*(|r| - delta/2).
	if got := HuberLoss(3, 1); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("linear region = %v", got)
	}
	if HuberLoss(-3, 1) != HuberLoss(3, 1) {
		t.Fatal("loss should be even")
	}
}

// Property: OLS on any non-degenerate exact line recovers it.
func TestOLSRecoversLineProperty(t *testing.T) {
	f := func(a, b float64, seed int64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = a + b*xs[i]
		}
		// Ensure non-degenerate spread.
		xs[0], xs[1] = 0, 100
		ys[0], ys[1] = a, a+100*b
		fit, err := OLS(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Intercept, a, 1e-6) && almostEqual(fit.Slope, b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MeanCI half-width shrinks as samples repeat (more data, same
// distribution => narrower interval).
func TestCIShrinksProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := make([]float64, 8)
	for i := range base {
		base[i] = 100 + rng.NormFloat64()
	}
	small, err := MeanCI(base, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]float64, 0, 64)
	for i := 0; i < 8; i++ {
		for _, b := range base {
			big = append(big, b+0.01*rng.NormFloat64())
		}
	}
	large, err := MeanCI(big, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if large.HalfWidth >= small.HalfWidth {
		t.Fatalf("CI did not shrink: %v -> %v", small.HalfWidth, large.HalfWidth)
	}
}

// Property: Huber and OLS agree exactly when residuals are all zero.
func TestHuberEqualsOLSWhenExact(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		xs := []float64{0, 1, 2, 5, 9}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*x
		}
		h, err1 := HuberRegression(xs, ys)
		o, err2 := OLS(xs, ys)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(h.Intercept, o.Intercept, 1e-9) && almostEqual(h.Slope, o.Slope, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
