// Package stats provides the statistical machinery used throughout the
// reproduction: descriptive statistics, Student-t confidence intervals,
// ordinary least squares and robust (Huber) linear regression, normality
// and independence diagnostics, and helpers for building logarithmic
// parameter grids.
//
// The package is self-contained (stdlib only). Quantile functions are
// implemented via the regularised incomplete beta function, which is exact
// enough for the 95% confidence intervals the measurement methodology of
// the paper requires (MPIBlib-style adaptive benchmarking).
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when an estimator is given fewer samples
// than it mathematically requires.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (divisor n-1).
// It returns 0 when fewer than two samples are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	insertionSort(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// insertionSort sorts small slices in place; the sample sizes handled here
// (benchmark repetitions, regression residuals) are tens to hundreds of
// elements, where this is perfectly adequate and allocation-free.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// MAD returns the median absolute deviation of xs scaled by 1.4826 so that
// it estimates the standard deviation for normally distributed data. The
// Huber regressor uses it as a robust scale estimate.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return 1.4826 * Median(dev)
}

// ConfidenceInterval holds a two-sided Student-t confidence interval for a
// sample mean.
type ConfidenceInterval struct {
	Mean      float64 // sample mean
	HalfWidth float64 // t_{1-a/2, n-1} * s/sqrt(n)
	Level     float64 // confidence level, e.g. 0.95
	N         int     // sample size
}

// RelativeError reports the CI half-width as a fraction of the mean. The
// paper's stopping rule accepts a sample once this drops below 0.025.
func (ci ConfidenceInterval) RelativeError() float64 {
	if ci.Mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(ci.HalfWidth / ci.Mean)
}

// MeanCI computes the two-sided Student-t confidence interval of the mean of
// xs at the given confidence level (0 < level < 1). It requires at least two
// samples.
func MeanCI(xs []float64, level float64) (ConfidenceInterval, error) {
	n := len(xs)
	if n < 2 {
		return ConfidenceInterval{}, ErrInsufficientData
	}
	m := Mean(xs)
	se := StdDev(xs) / math.Sqrt(float64(n))
	t := TQuantile(1-(1-level)/2, float64(n-1))
	return ConfidenceInterval{Mean: m, HalfWidth: t * se, Level: level, N: n}, nil
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom, computed by bisection on the CDF. p must lie in (0,1).
func TQuantile(p, df float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	// The CDF is monotone; bracket the quantile and bisect. t quantiles for
	// the levels used here are well inside (-200, 200) even for df = 1.
	lo, hi := -200.0, 200.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// TCDF returns P(T <= t) for Student's t distribution with df degrees of
// freedom, via the regularised incomplete beta function.
func TCDF(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	ib := RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// RegIncBeta returns the regularised incomplete beta function I_x(a, b),
// evaluated with the standard continued-fraction expansion (Numerical
// Recipes betacf form).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Lag1Autocorrelation returns the lag-1 sample autocorrelation of xs. The
// measurement methodology uses it as an independence diagnostic: values far
// from zero indicate that consecutive repetitions are correlated (warm-up
// effects, interference) and the sample should not be trusted.
func Lag1Autocorrelation(xs []float64) float64 {
	n := len(xs)
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
		if i+1 < n {
			num += d * (xs[i+1] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// JarqueBera returns the Jarque-Bera normality statistic of xs and the
// corresponding approximate p-value (chi-squared with 2 degrees of freedom).
// Small p-values reject normality. The paper checks that repetition
// populations follow the normal distribution before accepting a mean.
func JarqueBera(xs []float64) (statistic, pvalue float64) {
	n := len(xs)
	if n < 4 {
		return 0, 1
	}
	m := Mean(xs)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	fn := float64(n)
	m2 /= fn
	m3 /= fn
	m4 /= fn
	if m2 == 0 {
		return 0, 1
	}
	skew := m3 / math.Pow(m2, 1.5)
	kurt := m4 / (m2 * m2)
	jb := fn / 6 * (skew*skew + (kurt-3)*(kurt-3)/4)
	// p = P(chi2_2 > jb) = exp(-jb/2) for 2 degrees of freedom.
	return jb, math.Exp(-jb / 2)
}

// LogSpace returns n values from lo to hi (inclusive) separated by a
// constant step in logarithmic scale, exactly as the paper spaces its
// message sizes ("log m_{i-1} - log m_i = const"). lo and hi must be
// positive and n >= 2; a degenerate request (n <= 1 or a non-positive
// bound) falls back to the single-point grid [lo], which cannot cover
// hi — callers offering n as a knob must validate it themselves, as
// cmd/bcastbench does.
func LogSpace(lo, hi float64, n int) []float64 {
	if n <= 1 || lo <= 0 || hi <= 0 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = math.Exp(llo + f*(lhi-llo))
	}
	out[0], out[n-1] = lo, hi
	return out
}

// LogSpaceBytes is LogSpace for message sizes: it rounds each point to the
// nearest integer byte count and deduplicates while preserving order.
func LogSpaceBytes(lo, hi, n int) []int {
	fs := LogSpace(float64(lo), float64(hi), n)
	out := make([]int, 0, len(fs))
	last := -1
	for _, f := range fs {
		v := int(math.Round(f))
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}
