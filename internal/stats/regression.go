package stats

import "math"

// LinearFit holds the result of fitting y ≈ Intercept + Slope*x.
//
// In the paper's notation the canonical per-experiment equation is
// α + β·m̃ = T̃, so for parameter estimation Intercept plays the role of α
// and Slope the role of β.
type LinearFit struct {
	Intercept float64
	Slope     float64
	// Iterations is the number of IRLS iterations a robust fit performed
	// (1 for plain OLS).
	Iterations int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// Residuals returns y[i] - Predict(x[i]) for each point.
func (f LinearFit) Residuals(xs, ys []float64) []float64 {
	rs := make([]float64, len(xs))
	for i := range xs {
		rs[i] = ys[i] - f.Predict(xs[i])
	}
	return rs
}

// OLS fits y ≈ a + b*x by ordinary least squares. It requires at least two
// points with distinct x values.
func OLS(xs, ys []float64) (LinearFit, error) {
	return WeightedOLS(xs, ys, nil)
}

// WeightedOLS fits y ≈ a + b*x minimising Σ w_i (y_i - a - b x_i)².
// A nil weight slice means uniform weights.
func WeightedOLS(xs, ys, ws []float64) (LinearFit, error) {
	n := len(xs)
	if n < 2 || len(ys) != n || (ws != nil && len(ws) != n) {
		return LinearFit{}, ErrInsufficientData
	}
	var sw, swx, swy, swxx, swxy float64
	for i := 0; i < n; i++ {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		sw += w
		swx += w * xs[i]
		swy += w * ys[i]
		swxx += w * xs[i] * xs[i]
		swxy += w * xs[i] * ys[i]
	}
	det := sw*swxx - swx*swx
	if det == 0 || sw == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	b := (sw*swxy - swx*swy) / det
	a := (swy - b*swx) / sw
	return LinearFit{Intercept: a, Slope: b, Iterations: 1}, nil
}

// HuberRegression fits y ≈ a + b*x with the Huber M-estimator solved by
// iteratively reweighted least squares (IRLS). The scale is re-estimated
// each iteration from the residual MAD, and delta is the usual 1.345·σ
// tuning constant giving 95% efficiency under normal errors.
//
// This is the regressor the paper uses (§4.2, ref. [25]) to solve the
// per-algorithm system of canonical equations α + β·m̃_i = T̃_i: timing
// experiments occasionally produce gross outliers, and Huber loss prevents
// a single contaminated run from corrupting α and β.
func HuberRegression(xs, ys []float64) (LinearFit, error) {
	const (
		tuning  = 1.345
		maxIter = 100
		tol     = 1e-12
	)
	fit, err := OLS(xs, ys)
	if err != nil {
		return LinearFit{}, err
	}
	n := len(xs)
	ws := make([]float64, n)
	for iter := 1; iter <= maxIter; iter++ {
		res := fit.Residuals(xs, ys)
		sigma := MAD(res)
		if sigma == 0 {
			// Perfect fit (or degenerate residuals): nothing to robustify.
			fit.Iterations = iter
			return fit, nil
		}
		delta := tuning * sigma
		for i, r := range res {
			ar := math.Abs(r)
			if ar <= delta {
				ws[i] = 1
			} else {
				ws[i] = delta / ar
			}
		}
		next, err := WeightedOLS(xs, ys, ws)
		if err != nil {
			return LinearFit{}, err
		}
		next.Iterations = iter + 1
		converged := math.Abs(next.Intercept-fit.Intercept) <= tol*(1+math.Abs(fit.Intercept)) &&
			math.Abs(next.Slope-fit.Slope) <= tol*(1+math.Abs(fit.Slope))
		fit = next
		if converged {
			break
		}
	}
	return fit, nil
}

// RelativeHuberRegression fits y ≈ a + b·x minimising the Huber loss of
// the *relative* residuals (y_i - a - b·x_i)/y_i. All y values must be
// positive.
//
// Plain least squares (and plain Huber) weight equations by their absolute
// residuals, so in a system whose right-hand sides span orders of
// magnitude — the paper's §4.2 message grid runs from 8 KB to 4 MB, three
// decades of experiment times — the small-message equations contribute
// almost nothing and the fitted α loses its meaning. Relative weighting
// makes each message size count equally, which matters on platforms where
// α is not negligible.
func RelativeHuberRegression(xs, ys []float64) (LinearFit, error) {
	const (
		tuning  = 1.345
		maxIter = 100
		tol     = 1e-12
	)
	n := len(xs)
	if n < 2 || len(ys) != n {
		return LinearFit{}, ErrInsufficientData
	}
	base := make([]float64, n)
	for i, y := range ys {
		if y <= 0 {
			return LinearFit{}, ErrInsufficientData
		}
		base[i] = 1 / (y * y)
	}
	fit, err := WeightedOLS(xs, ys, base)
	if err != nil {
		return LinearFit{}, err
	}
	ws := make([]float64, n)
	rel := make([]float64, n)
	for iter := 1; iter <= maxIter; iter++ {
		for i := range xs {
			rel[i] = (ys[i] - fit.Predict(xs[i])) / ys[i]
		}
		sigma := MAD(rel)
		if sigma == 0 {
			fit.Iterations = iter
			return fit, nil
		}
		delta := tuning * sigma
		for i, r := range rel {
			h := 1.0
			if ar := math.Abs(r); ar > delta {
				h = delta / ar
			}
			ws[i] = base[i] * h
		}
		next, err := WeightedOLS(xs, ys, ws)
		if err != nil {
			return LinearFit{}, err
		}
		next.Iterations = iter + 1
		converged := math.Abs(next.Intercept-fit.Intercept) <= tol*(1+math.Abs(fit.Intercept)) &&
			math.Abs(next.Slope-fit.Slope) <= tol*(1+math.Abs(fit.Slope))
		fit = next
		if converged {
			break
		}
	}
	return fit, nil
}

// HuberLoss evaluates the Huber loss ρ_δ(r) of a residual r for tuning
// constant delta. Exported mainly for tests and documentation: IRLS above
// minimises Σ ρ_δ(y_i - a - b x_i).
func HuberLoss(r, delta float64) float64 {
	ar := math.Abs(r)
	if ar <= delta {
		return 0.5 * r * r
	}
	return delta * (ar - 0.5*delta)
}

// RSquared returns the coefficient of determination of the fit on (xs, ys).
func (f LinearFit) RSquared(xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - f.Predict(xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
