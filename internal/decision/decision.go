package decision

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mpicollperf/internal/coll"
	"mpicollperf/internal/model"
	"mpicollperf/internal/selection"
	"mpicollperf/internal/stats"
)

// Rule is one compiled decision interval: for communicator sizes up to
// MaxProcs (exclusive of the next rule's range) and message sizes up to
// MaxBytes, use Alg.
type Rule struct {
	// MaxBytes is the inclusive upper bound of the message-size interval.
	MaxBytes int `json:"max_bytes"`
	// Alg is the selected algorithm.
	Alg string `json:"algorithm"`
}

// Row is the rule list for one communicator-size grid point.
type Row struct {
	// Procs is the communicator-size grid point; a lookup uses the row
	// with the smallest Procs >= P (or the last row).
	Procs int `json:"procs"`
	// Rules are ordered by MaxBytes; the last rule's MaxBytes is ignored
	// (it covers everything larger).
	Rules []Rule `json:"rules"`
}

// Table is a compiled decision function for one platform.
type Table struct {
	Cluster string `json:"cluster"`
	SegSize int    `json:"segment_size"`
	Rows    []Row  `json:"rows"`
}

// CompileConfig controls the grid.
type CompileConfig struct {
	// ProcGrid lists the communicator sizes to compile rows for; empty
	// means {2, 4, 8, ..., up to MaxProcs} plus MaxProcs itself.
	ProcGrid []int
	// MaxProcs bounds the default grid (required if ProcGrid is empty).
	MaxProcs int
	// MinBytes/MaxBytes/Points define the message grid (defaults: 1 B to
	// 16 MB, 49 log-spaced points).
	MinBytes, MaxBytes, Points int
}

func (c CompileConfig) withDefaults() (CompileConfig, error) {
	if len(c.ProcGrid) == 0 {
		if c.MaxProcs < 2 {
			return c, fmt.Errorf("decision: need ProcGrid or MaxProcs >= 2")
		}
		for p := 2; p < c.MaxProcs; p *= 2 {
			c.ProcGrid = append(c.ProcGrid, p)
		}
		c.ProcGrid = append(c.ProcGrid, c.MaxProcs)
	}
	sort.Ints(c.ProcGrid)
	for _, p := range c.ProcGrid {
		if p < 2 {
			return c, fmt.Errorf("decision: grid point %d < 2", p)
		}
	}
	if c.MinBytes <= 0 {
		c.MinBytes = 1
	}
	if c.MaxBytes <= c.MinBytes {
		c.MaxBytes = 16 << 20
	}
	if c.Points < 2 {
		c.Points = 49
	}
	return c, nil
}

// Compile evaluates the model-based selector over the grid and compresses
// the result into a Table.
func Compile(bm model.BcastModels, cfg CompileConfig) (Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Table{}, err
	}
	if len(bm.Params) == 0 {
		return Table{}, fmt.Errorf("decision: model set for %q has no parameters", bm.Cluster)
	}
	sel := selection.ModelBased{Models: bm}
	sizes := stats.LogSpaceBytes(cfg.MinBytes, cfg.MaxBytes, cfg.Points)
	tab := Table{Cluster: bm.Cluster, SegSize: bm.SegSize}
	for _, p := range cfg.ProcGrid {
		row := Row{Procs: p}
		var lastAlg string
		for _, m := range sizes {
			choice, err := sel.Select(p, m)
			if err != nil {
				return Table{}, err
			}
			name := choice.Alg.String()
			if name == lastAlg && len(row.Rules) > 0 {
				// Extend the current interval.
				row.Rules[len(row.Rules)-1].MaxBytes = m
				continue
			}
			row.Rules = append(row.Rules, Rule{MaxBytes: m, Alg: name})
			lastAlg = name
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Lookup returns the compiled selection for (P, m): the row with the
// smallest grid Procs >= P (the last row for larger P), then the first
// rule whose MaxBytes >= m (the last rule for larger m). The cost is two
// binary searches.
func (t Table) Lookup(P, m int) (string, error) {
	if len(t.Rows) == 0 {
		return "", fmt.Errorf("decision: empty table")
	}
	ri := sort.Search(len(t.Rows), func(i int) bool { return t.Rows[i].Procs >= P })
	if ri == len(t.Rows) {
		ri = len(t.Rows) - 1
	}
	rules := t.Rows[ri].Rules
	if len(rules) == 0 {
		return "", fmt.Errorf("decision: row %d has no rules", t.Rows[ri].Procs)
	}
	ci := sort.Search(len(rules), func(i int) bool { return rules[i].MaxBytes >= m })
	if ci == len(rules) {
		ci = len(rules) - 1
	}
	return rules[ci].Alg, nil
}

// LookupAlgorithm is Lookup returning the typed algorithm.
func (t Table) LookupAlgorithm(P, m int) (coll.BcastAlgorithm, error) {
	name, err := t.Lookup(P, m)
	if err != nil {
		return 0, err
	}
	return coll.ParseBcastAlgorithm(name)
}

// Save writes the table as JSON.
func (t Table) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a table written by Save.
func Load(path string) (Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Table{}, err
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return Table{}, fmt.Errorf("decision: parsing %s: %w", path, err)
	}
	if len(t.Rows) == 0 {
		return Table{}, fmt.Errorf("decision: %s has no rows", path)
	}
	return t, nil
}

// GoSource renders the table as a self-contained Go function, the way a
// library maintainer would vendor it (compare Open MPI's
// coll_tuned_decision_fixed.c, which was produced the same way from
// empirical sweeps — the difference is that this table comes from
// calibrated models and can be regenerated per platform).
func (t Table) GoSource(funcName string) string {
	out := fmt.Sprintf("// %s was generated by mpicollperf's decision compiler for\n", funcName)
	out += fmt.Sprintf("// platform %q (segment size %d). Do not edit.\n", t.Cluster, t.SegSize)
	out += fmt.Sprintf("func %s(procs, msgBytes int) string {\n", funcName)
	out += "\tswitch {\n"
	for i, row := range t.Rows {
		cond := fmt.Sprintf("procs <= %d", row.Procs)
		if i == len(t.Rows)-1 {
			cond = "true"
		}
		out += fmt.Sprintf("\tcase %s:\n\t\tswitch {\n", cond)
		for j, rule := range row.Rules {
			if j == len(row.Rules)-1 {
				out += fmt.Sprintf("\t\tdefault:\n\t\t\treturn %q\n", rule.Alg)
			} else {
				out += fmt.Sprintf("\t\tcase msgBytes <= %d:\n\t\t\treturn %q\n", rule.MaxBytes, rule.Alg)
			}
		}
		out += "\t\t}\n"
	}
	out += "\t}\n\tpanic(\"unreachable\")\n}\n"
	return out
}
