package decision

import (
	"path/filepath"
	"strings"
	"testing"

	"mpicollperf/internal/coll"
	"mpicollperf/internal/model"
	"mpicollperf/internal/selection"
)

// syntheticModels builds a model set with uniform parameters so the
// structural coefficients decide, giving deterministic regions to test
// against.
func syntheticModels(t *testing.T) model.BcastModels {
	t.Helper()
	g, err := model.NewGamma(map[int]float64{2: 1, 3: 1.11, 4: 1.22, 5: 1.33, 6: 1.43, 7: 1.54})
	if err != nil {
		t.Fatal(err)
	}
	bm := model.BcastModels{
		Cluster: "synthetic",
		SegSize: 8192,
		Gamma:   g,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney),
	}
	for _, alg := range coll.BcastAlgorithms() {
		bm.Params[alg] = model.Hockney{Alpha: 45e-6, Beta: 1.6e-9}
	}
	return bm
}

func TestCompileMatchesDirectSelectionOnGrid(t *testing.T) {
	bm := syntheticModels(t)
	cfg := CompileConfig{MaxProcs: 96, MinBytes: 1024, MaxBytes: 8 << 20, Points: 25}
	tab, err := Compile(bm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.ModelBased{Models: bm}
	resolved, _ := cfg.withDefaults()
	for _, p := range resolved.ProcGrid {
		for _, m := range []int{1024, 9000, 65536, 524288, 8 << 20} {
			direct, err := sel.Select(p, m)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := tab.Lookup(p, m)
			if err != nil {
				t.Fatal(err)
			}
			if compiled != direct.Alg.String() {
				t.Errorf("P=%d m=%d: compiled %s, direct %v", p, m, compiled, direct.Alg)
			}
		}
	}
}

func TestCompileIntervalsAreOrdered(t *testing.T) {
	tab, err := Compile(syntheticModels(t), CompileConfig{MaxProcs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if len(row.Rules) == 0 {
			t.Fatalf("P=%d: no rules", row.Procs)
		}
		for i := 1; i < len(row.Rules); i++ {
			if row.Rules[i].MaxBytes <= row.Rules[i-1].MaxBytes {
				t.Fatalf("P=%d: rule bounds not increasing: %+v", row.Procs, row.Rules)
			}
			if row.Rules[i].Alg == row.Rules[i-1].Alg {
				t.Fatalf("P=%d: adjacent rules not coalesced: %+v", row.Procs, row.Rules)
			}
		}
	}
	// Proc grid strictly increasing.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Procs <= tab.Rows[i-1].Procs {
			t.Fatal("proc grid not increasing")
		}
	}
}

func TestLookupEdges(t *testing.T) {
	tab, err := Compile(syntheticModels(t), CompileConfig{ProcGrid: []int{4, 16, 64}})
	if err != nil {
		t.Fatal(err)
	}
	// P beyond the grid clamps to the last row; m beyond clamps to the
	// last rule; neither may error.
	if _, err := tab.Lookup(1000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Lookup(2, 1<<30); err != nil {
		t.Fatal(err)
	}
	if alg, err := tab.LookupAlgorithm(16, 65536); err != nil || alg.String() == "" {
		t.Fatalf("typed lookup: %v %v", alg, err)
	}
	if _, err := (Table{}).Lookup(4, 4); err == nil {
		t.Fatal("empty table should error")
	}
}

func TestCompileValidation(t *testing.T) {
	bm := syntheticModels(t)
	if _, err := Compile(bm, CompileConfig{}); err == nil {
		t.Fatal("missing grid should fail")
	}
	if _, err := Compile(bm, CompileConfig{ProcGrid: []int{1}}); err == nil {
		t.Fatal("grid point < 2 should fail")
	}
	empty := bm
	empty.Params = nil
	if _, err := Compile(empty, CompileConfig{MaxProcs: 8}); err == nil {
		t.Fatal("empty params should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab, err := Compile(syntheticModels(t), CompileConfig{MaxProcs: 32})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.json")
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 7, 32, 90} {
		for _, m := range []int{100, 8192, 1 << 20} {
			a, _ := tab.Lookup(p, m)
			b, _ := loaded.Lookup(p, m)
			if a != b {
				t.Fatalf("round trip diverged at (%d, %d): %s vs %s", p, m, a, b)
			}
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestGoSource(t *testing.T) {
	tab, err := Compile(syntheticModels(t), CompileConfig{ProcGrid: []int{8, 64}})
	if err != nil {
		t.Fatal(err)
	}
	src := tab.GoSource("selectBcast")
	for _, want := range []string{
		"func selectBcast(procs, msgBytes int) string",
		"procs <= 8",
		"default:",
		"return",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated source missing %q:\n%s", want, src)
		}
	}
}
