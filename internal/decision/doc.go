// Package decision compiles a calibrated model set into a static decision
// table — the deployment form factor the paper's motivation calls for.
//
// Open MPI's fixed decision function (the hand-tuned thresholds of
// coll_tuned_decision_fixed.c that §5.3 shows degrading badly) is fast
// because it is a handful of threshold comparisons; the paper's selector
// is equally fast but needs the models at run time. This package bridges
// the two: Compile evaluates the models (§3, with the §4-fitted
// parameters) offline over a (P, m) grid, coalesces the argmin into
// per-P message-size intervals, and emits a Table that an MPI library
// could embed verbatim — Lookup is two binary searches and zero floating
// point. Save/Load give the table a JSON wire form and GoSource emits it
// as a compilable Go function, the moral equivalent of regenerating
// coll_tuned_decision_fixed.c from models instead of hand tuning
// (cmd/decisiongen is the CLI wrapper).
//
// The compiled table is exact on the grid by construction; between grid
// points it inherits the models' piecewise regularity (algorithm regions
// in m are contiguous for these cost shapes), which the tests check
// against direct model evaluation.
package decision
