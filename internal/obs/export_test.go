package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// populated builds a registry exercising every metric kind, including a
// labelled name.
func populated() *Registry {
	r := NewRegistry()
	r.Counter("sweep_points_total").Add(18)
	r.Counter(Name("reps_total", "engine", "replay")).Add(90)
	r.Gauge("cache_entries").Set(42)
	h := r.Histogram("measure_reps")
	for _, v := range []float64{3, 5, 5, 8} {
		h.Observe(v)
	}
	return r
}

// TestJSONRoundTrip: the JSON artifact is exactly the Snapshot schema and
// must unmarshal back into an equal Snapshot.
func TestJSONRoundTrip(t *testing.T) {
	r := populated()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if want := r.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestWriteJSONFile(t *testing.T) {
	r := populated()
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Fatal("file contents differ from WriteJSON output")
	}
	if err := r.WriteJSONFile(filepath.Join(t.TempDir(), "no", "such", "dir.json")); err == nil {
		t.Fatal("unwritable path should fail")
	}
}

// TestPrometheusRoundTrip parses the exposition output back into
// name→value samples and checks every metric against the snapshot —
// counters and gauges verbatim, histograms via their _sum/_count/_bucket
// series (cumulative, with an explicit +Inf bucket).
func TestPrometheusRoundTrip(t *testing.T) {
	r := populated()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]float64)
	types := make(map[string]string)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]] = f[3]
			continue
		}
		// name and value separated by the last space (label values are
		// quoted and never contain spaces here).
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	s := r.Snapshot()
	for _, c := range s.Counters {
		if samples[c.Name] != float64(c.Value) {
			t.Errorf("counter %s = %g, want %d", c.Name, samples[c.Name], c.Value)
		}
		if types[metricBase(c.Name)] != "counter" {
			t.Errorf("counter %s typed %q", c.Name, types[metricBase(c.Name)])
		}
	}
	for _, g := range s.Gauges {
		if samples[g.Name] != g.Value {
			t.Errorf("gauge %s = %g, want %g", g.Name, samples[g.Name], g.Value)
		}
	}
	for _, h := range s.Histograms {
		if samples[h.Name+"_sum"] != h.Sum {
			t.Errorf("%s_sum = %g, want %g", h.Name, samples[h.Name+"_sum"], h.Sum)
		}
		if samples[h.Name+"_count"] != float64(h.Count) {
			t.Errorf("%s_count = %g, want %d", h.Name, samples[h.Name+"_count"], h.Count)
		}
		inf := h.Name + `_bucket{le="+Inf"}`
		if samples[inf] != float64(h.Count) {
			t.Errorf("+Inf bucket = %g, want %d", samples[inf], h.Count)
		}
		for _, b := range h.Buckets {
			name := h.Name + `_bucket{le="` + formatFloat(b.UpperBound) + `"}`
			if samples[name] != float64(b.Count) {
				t.Errorf("%s = %g, want %d", name, samples[name], b.Count)
			}
		}
		if types[metricBase(h.Name)] != "histogram" {
			t.Errorf("histogram %s typed %q", h.Name, types[metricBase(h.Name)])
		}
	}
}

// TestPrometheusLabelledBuckets pins the label-merging corner: a
// histogram whose name already carries labels must get `le` appended
// inside the existing block.
func TestPrometheusLabelledBuckets(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Name("fit", "alg", "chain")).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fit histogram\n",
		`fit_bucket{alg="chain",le="1"} 1` + "\n",
		`fit_bucket{alg="chain",le="+Inf"} 1` + "\n",
		`fit_sum{alg="chain"} 0.5` + "\n",
		`fit_count{alg="chain"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTableRoundTrip parses the human-readable table back and checks
// every metric appears with its exact value.
func TestTableRoundTrip(t *testing.T) {
	r := populated()
	var buf bytes.Buffer
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]string) // name -> "type value..."
	sc := bufio.NewScanner(&buf)
	sc.Scan() // header
	if !strings.HasPrefix(sc.Text(), "metric") {
		t.Fatalf("missing header, got %q", sc.Text())
	}
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		rows[f[0]] = strings.Join(f[1:], " ")
	}
	s := r.Snapshot()
	for _, c := range s.Counters {
		if want := "counter " + strconv.FormatInt(c.Value, 10); rows[c.Name] != want {
			t.Errorf("row %s = %q, want %q", c.Name, rows[c.Name], want)
		}
	}
	for _, g := range s.Gauges {
		if want := "gauge " + formatFloat(g.Value); rows[g.Name] != want {
			t.Errorf("row %s = %q, want %q", g.Name, rows[g.Name], want)
		}
	}
	for _, h := range s.Histograms {
		want := "histogram count=" + strconv.FormatInt(h.Count, 10) +
			" mean=" + formatFloat(h.Sum/float64(h.Count)) +
			" sum=" + formatFloat(h.Sum)
		if rows[h.Name] != want {
			t.Errorf("row %s = %q, want %q", h.Name, rows[h.Name], want)
		}
	}
}

func TestEmptyRegistryExports(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("empty prometheus export: %q, %v", buf.String(), err)
	}
	buf.Reset()
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "metric") {
		t.Fatalf("table header missing: %q", buf.String())
	}
}

func TestHelpers(t *testing.T) {
	if metricBase(`x{a="b"}`) != "x" || metricBase("x") != "x" {
		t.Fatal("metricBase")
	}
	if got := labelledName("x", "_bucket", "le", "+Inf"); got != `x_bucket{le="+Inf"}` {
		t.Fatalf("labelledName unlabelled: %q", got)
	}
	if got := labelledName(`x{a="b"}`, "_bucket", "le", "1"); got != `x_bucket{a="b",le="1"}` {
		t.Fatalf("labelledName labelled: %q", got)
	}
	if suffixName("x", "_s") != "x_s" || suffixName(`x{a="b"}`, "_s") != `x_s{a="b"}` {
		t.Fatal("suffixName")
	}
}
