package obs

import (
	"sync"
	"testing"
)

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(2.5)
	g.Add(-4)
	if got := g.Value(); got != 8.5 {
		t.Fatalf("Value() = %v, want 8.5", got)
	}

	// Level-gauge contract: concurrent up/down movements must not lose
	// updates (the reason Add exists instead of Set(Value()+d)).
	var lvl Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				lvl.Add(1)
				lvl.Add(-1)
			}
			lvl.Add(3)
		}()
	}
	wg.Wait()
	if got := lvl.Value(); got != 24 {
		t.Fatalf("concurrent Add lost updates: Value() = %v, want 24", got)
	}
}

func TestGaugeAddNilSafe(t *testing.T) {
	var g *Gauge
	g.Add(1) // must not panic
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value() = %v", got)
	}
}
