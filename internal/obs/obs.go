// Package obs is the repository's zero-dependency observability layer:
// typed counters, gauges and histograms collected in a Registry, scoped
// Span timers for pipeline stages, and three exporters (a JSON artifact,
// Prometheus text exposition format, and a human-readable table — see
// export.go).
//
// The design goal is that instrumentation can stay compiled into the hot
// layers permanently. Every entry point is nil-safe: a nil *Registry
// hands out nil metric handles whose methods do nothing, so an
// uninstrumented run pays one nil check per metric touch and the
// instrumented path allocates nothing in steady state (handles are
// created once and the update paths are atomic or fixed-bucket).
// Registries and all metric handles are safe for concurrent use; the
// sweep engine updates one registry from every worker.
//
// Metric identity is the full name string. Labelled metrics spell their
// labels in the name in Prometheus exposition form — built with Name,
// e.g. Name("experiment_reps_total", "engine", "replay") ==
// `experiment_reps_total{engine="replay"}` — so the exporters need no
// separate label model and the JSON artifact keys stay self-describing.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. The zero value is not usable; build one
// with NewRegistry. A nil *Registry is valid everywhere and records
// nothing.
//
// Lookups are lock-free after a metric's first use (sync.Map read path):
// sweep workers resolving handles by name on every grid point share the
// registry without serialising on a registry-wide mutex, which the mutex
// profile showed as a contention source at high worker counts.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil handle, whose methods do nothing.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil handle, whose methods do nothing.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it on first use with
// the default log-spaced bucket bounds (powers of ten from 1e-9 to 1e9 —
// wide enough for virtual durations, repetition counts, and plan sizes
// alike). A nil registry returns a nil handle, whose methods do nothing.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram())
	return v.(*Histogram)
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers keep counters monotone; Add does not enforce it).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative deltas decrease it), atomically
// with respect to concurrent Add and Set calls. It exists for level-style
// gauges — queue depths, in-use pool slots — that many workers move up and
// down concurrently, where read-modify-write through Set would lose
// updates.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the last recorded value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBounds are the default bucket upper bounds: 10^-9 .. 10^9.
var histBounds = func() []float64 {
	b := make([]float64, 0, 19)
	for e := -9; e <= 9; e++ {
		b = append(b, math.Pow(10, float64(e)))
	}
	return b
}()

// Histogram is a fixed-bucket distribution metric: per-bucket counts plus
// exact count and sum, so exporters can report both the shape and the
// mean. Buckets are allocated at creation; Observe never allocates and
// never locks — every field updates atomically (the sum through a CAS
// loop, like Gauge.Add), so concurrent sweep workers observing into one
// histogram never serialise. The trade is snapshot granularity: a
// snapshot taken mid-Observe can see the bucket without the sum (or vice
// versa) for that one in-flight observation; quiesced reads — every
// exporter use in this repository — are exact.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; values above the last land in the overflow count
	counts  []atomic.Int64 // len(bounds)+1, last is the overflow bucket
	n       atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram() *Histogram {
	return &Histogram{bounds: histBounds, counts: make([]atomic.Int64, len(histBounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observation, or 0 before the first one.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Span is a running stage timer started by Registry.Span. End records the
// elapsed wall-clock time. The zero Span (from a nil registry) is valid
// and records nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

// Span starts a timer whose End records the elapsed seconds into the
// histogram named name + "_seconds" (the suffix is spliced before any
// label block, so Span(Name("estimate_fit", "alg", "chain")) feeds
// `estimate_fit_seconds{alg="chain"}`). The histogram's count doubles as
// the number of times the stage ran.
func (r *Registry) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(suffixName(name, "_seconds")), start: time.Now()}
}

// End stops the span and records its duration.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// suffixName appends suffix to the base of a possibly-labelled metric
// name: suffixName(`x{a="b"}`, "_seconds") == `x_seconds{a="b"}`.
func suffixName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// Name builds a labelled metric name in Prometheus exposition form:
// Name("x_total", "engine", "replay") == `x_total{engine="replay"}`.
// Labels are key/value pairs; Name panics on an odd count (a programming
// error, like a bad fmt verb).
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	if len(labels)%2 != 0 {
		panic("obs: Name requires key/value label pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
