package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Bucket is one histogram bucket: the cumulative count of observations
// <= the upper bound (Prometheus `le` semantics). Only finite bounds are
// exported; the histogram's Count is the implicit +Inf bucket.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, with every section
// sorted by metric name — the canonical, deterministic exchange form all
// three exporters render.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state. A nil registry yields
// an empty snapshot. Concurrent updates during the snapshot land in
// either the snapshot or the next one; every field is read atomically,
// though a histogram snapshotted mid-Observe may show that one in-flight
// observation in its bucket row but not yet in Count/Sum (or vice
// versa). Quiesced registries — how every exporter in this repository is
// used — snapshot exactly.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters = append(s.Counters, CounterSnapshot{Name: k.(string), Value: v.(*Counter).Value()})
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: k.(string), Value: v.(*Gauge).Value()})
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms = append(s.Histograms, v.(*Histogram).snapshot(k.(string)))
		return true
	})
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// snapshot exports one histogram with cumulative bucket counts, trimming
// trailing buckets that hold every observation already (the full default
// bound grid would bury the signal in 19 rows per histogram).
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum()}
	var cum int64
	buckets := make([]Bucket, 0, len(h.bounds))
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		buckets = append(buckets, Bucket{UpperBound: ub, Count: cum})
	}
	// Trim the saturated tail: keep one bucket that already covers Count.
	end := len(buckets)
	for end > 1 && buckets[end-2].Count == hs.Count {
		end--
	}
	hs.Buckets = buckets[:end]
	return hs
}

// WriteJSON writes the registry as an indented JSON artifact — the format
// behind the tools' -metrics flags and the `reproduce metrics` target.
// The document is exactly the Snapshot schema, so it round-trips through
// json.Unmarshal into a Snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteJSONFile writes the JSON artifact to path (0644, truncating).
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` headers, counters and gauges as bare
// samples, histograms as the conventional _bucket/_sum/_count triplet
// with an explicit +Inf bucket. Labelled metric names (built with Name)
// pass through verbatim, which is what makes them scrapeable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	lastType := ""
	header := func(name, typ string) {
		base := metricBase(name)
		key := base + " " + typ
		if key != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
			lastType = key
		}
	}
	for _, c := range s.Counters {
		header(c.Name, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		header(g.Name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		header(h.Name, "histogram")
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s %d\n", labelledName(h.Name, "_bucket", "le", formatFloat(bk.UpperBound)), bk.Count)
		}
		fmt.Fprintf(&b, "%s %d\n", labelledName(h.Name, "_bucket", "le", "+Inf"), h.Count)
		fmt.Fprintf(&b, "%s %s\n", suffixName(h.Name, "_sum"), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s %d\n", suffixName(h.Name, "_count"), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTable writes a human-readable summary: one row per metric, with
// histograms condensed to count/mean/sum.
func (r *Registry) WriteTable(w io.Writer) error {
	s := r.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\ttype\tvalue")
	for _, c := range s.Counters {
		fmt.Fprintf(tw, "%s\tcounter\t%d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(tw, "%s\tgauge\t%s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(tw, "%s\thistogram\tcount=%d mean=%s sum=%s\n",
			h.Name, h.Count, formatFloat(mean), formatFloat(h.Sum))
	}
	return tw.Flush()
}

// metricBase strips a label block: metricBase(`x{a="b"}`) == "x".
func metricBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelledName appends suffix to the base name and merges one more label
// into the (possibly empty) label block:
// labelledName(`x{a="b"}`, "_bucket", "le", "0.1") == `x_bucket{a="b",le="0.1"}`.
func labelledName(name, suffix, key, value string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = name[i+1:len(name)-1] + ","
	}
	return fmt.Sprintf("%s%s{%s%s=%q}", base, suffix, labels, key, value)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
