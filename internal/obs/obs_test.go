package obs

import (
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsInert: every entry point must be callable through a
// nil registry — that is the whole deal that lets instrumentation stay
// compiled into the hot layers.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	r.Gauge("g").Set(3.5)
	if v := r.Gauge("g").Value(); v != 0 {
		t.Fatalf("nil gauge value = %g", v)
	}
	h := r.Histogram("h")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram recorded something")
	}
	sp := r.Span("stage")
	sp.End() // must not panic
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("same name should return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Set(-1.25)
	if g.Value() != -1.25 {
		t.Fatalf("gauge = %g, want -1.25", g.Value())
	}
	if r.Gauge("depth") != g {
		t.Fatal("same name should return the same gauge")
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("reps")
	for _, v := range []float64{0.5, 3, 3, 40, 1e12} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 0.5+3+3+40+1e12 {
		t.Fatalf("sum = %g", h.Sum())
	}
	if want := h.Sum() / 5; h.Mean() != want {
		t.Fatalf("mean = %g, want %g", h.Mean(), want)
	}
	hs := h.snapshot("reps")
	// Cumulative semantics: the le=1 bucket holds only 0.5; le=10 holds
	// 0.5, 3, 3; le=100 adds 40. 1e12 exceeds every finite bound, so no
	// finite bucket reaches Count and nothing is trimmed.
	find := func(ub float64) int64 {
		for _, b := range hs.Buckets {
			if b.UpperBound == ub {
				return b.Count
			}
		}
		t.Fatalf("bucket %g missing", ub)
		return 0
	}
	if find(1) != 1 || find(10) != 3 || find(100) != 4 || find(1e9) != 4 {
		t.Fatalf("cumulative buckets wrong: %+v", hs.Buckets)
	}
}

func TestHistogramSnapshotTrimsSaturatedTail(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("small")
	h.Observe(0.5) // lands in le=1
	hs := h.snapshot("small")
	// Everything above le=1 is saturated; exactly one covering bucket kept.
	last := hs.Buckets[len(hs.Buckets)-1]
	if last.Count != 1 || last.UpperBound != 1 {
		t.Fatalf("trim kept %+v", hs.Buckets)
	}
}

func TestSpanRecordsSeconds(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("stage")
	time.Sleep(time.Millisecond)
	sp.End()
	h := r.Histogram("stage_seconds")
	if h.Count() != 1 {
		t.Fatalf("span count = %d", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("span recorded %g seconds", h.Sum())
	}
}

func TestSpanSuffixSplicesBeforeLabels(t *testing.T) {
	r := NewRegistry()
	r.Span(Name("estimate_fit", "alg", "chain")).End()
	if r.Histogram(`estimate_fit_seconds{alg="chain"}`).Count() != 1 {
		t.Fatal("labelled span landed under the wrong name")
	}
}

func TestName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatalf("unlabelled: %q", got)
	}
	if got := Name("x_total", "engine", "replay"); got != `x_total{engine="replay"}` {
		t.Fatalf("one label: %q", got)
	}
	if got := Name("x", "a", "1", "b", "2"); got != `x{a="1",b="2"}` {
		t.Fatalf("two labels: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd label count should panic")
		}
	}()
	Name("x", "keyonly")
}

// TestConcurrentUpdates drives one registry from many goroutines, the way
// the sweep worker pool does, under -race.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("points_total").Inc()
				r.Gauge("last").Set(float64(i))
				r.Histogram("reps").Observe(float64(i % 7))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("points_total").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("reps").Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}

// TestSteadyStateUpdatesDoNotAllocate pins the contract the hot layers
// rely on: once a handle exists, counter adds and histogram observations
// allocate nothing.
func TestSteadyStateUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	g := r.Gauge("g")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(1.5)
		h.Observe(2.5)
		r.Counter("c").Inc() // lookup of an existing handle
	})
	if allocs != 0 {
		t.Fatalf("steady-state metric updates allocated %v per run", allocs)
	}
}
