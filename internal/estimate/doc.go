// Package estimate implements the paper's second contribution (§4): the
// estimation of analytical-model parameters from communication experiments
// that *contain the modelled collective algorithm itself*, instead of the
// traditional point-to-point ping-pongs.
//
// # Estimators
//
// Two estimators map directly onto the paper's two procedures:
//
//   - Gamma (§4.1) measures T2(P), the mean time of the non-blocking
//     linear broadcast of one m_s-byte segment to P-1 children, for P from
//     2 to the platform's maximum linear fanout, and forms
//     γ(P) = T2(P)/T2(2). A linear regression over the table doubles as
//     the extrapolation for larger fanouts.
//
//   - AlphaBeta (§4.2, Fig. 4) runs, for M message sizes, a communication
//     experiment consisting of the modelled broadcast algorithm followed
//     by a linear-without-synchronisation gather, measured on the root.
//     With γ known, each experiment yields one linear equation
//     a_i·α + b_i·β = T_i whose coefficients come from the
//     implementation-derived model of the algorithm plus the gather model
//     (Formula 8). The system is brought to the canonical form
//     α + β·(b_i/a_i) = T_i/a_i and solved with the Huber regressor.
//
// Models chains the two into the full offline calibration a platform
// needs, and AlphaBetaCollective (extended.go) generalises the §4.2
// procedure to the other collective families, realising the paper's
// future-work claim.
//
// # Concurrency
//
// Every experiment in both procedures is an independent simulation, so
// the estimators dispatch their grids through experiment.Sweep.
// AlphaBetaConfig exposes the engine's knobs (Workers, Cache, Progress);
// Models goes furthest and submits the γ grid and all algorithms' size
// grids as one sweep, since γ only enters the coefficient computation
// *after* the measurements. Results are bit-identical to the serial
// loops regardless of worker count.
package estimate
