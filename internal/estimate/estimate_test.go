package estimate

import (
	"context"
	"math"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
)

func fastSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

func smallProfile(t *testing.T, nodes int) cluster.Profile {
	t.Helper()
	pr, err := cluster.Grisou().WithNodes(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestGammaEstimation(t *testing.T) {
	pr := cluster.Grisou()
	res, err := Gamma(pr, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Gamma.At(2); got != 1 {
		t.Fatalf("γ(2) = %v", got)
	}
	prev := 1.0
	for p := 3; p <= pr.MaxLinearFanout; p++ {
		g := res.Gamma.At(p)
		if g <= prev {
			t.Fatalf("γ(%d) = %v not above γ(%d) = %v", p, g, p-1, prev)
		}
		prev = g
	}
	// Against the calibration target (paper Table 1 Grisou γ(7) = 1.540).
	if g7 := res.Gamma.At(7); math.Abs(g7-1.54) > 0.12 {
		t.Fatalf("γ(7) = %v, want ≈ 1.54", g7)
	}
	// The linear extrapolation continues the trend.
	if res.Gamma.At(12) <= res.Gamma.At(7) {
		t.Fatal("extrapolation should continue growing")
	}
	// Diagnostics present for every P.
	for p := 2; p <= pr.MaxLinearFanout; p++ {
		if _, ok := res.Measurements[p]; !ok {
			t.Fatalf("no measurement recorded for P=%d", p)
		}
		if res.T2[p] <= 0 {
			t.Fatalf("T2(%d) = %v", p, res.T2[p])
		}
	}
}

func TestGammaTooSmallPlatform(t *testing.T) {
	pr := smallProfile(t, 1)
	if _, err := Gamma(pr, fastSettings()); err == nil {
		t.Fatal("single-node platform should fail γ estimation")
	}
}

func TestAlphaBetaConfigValidation(t *testing.T) {
	pr := smallProfile(t, 16)
	g := model.UnitGamma()
	if _, err := AlphaBeta(pr, coll.BcastBinomial, g, AlphaBetaConfig{GatherBytes: pr.SegmentSize}); err == nil {
		t.Fatal("m_g == m_s must be rejected (paper requires m_g ≠ m_s)")
	}
	if _, err := AlphaBeta(pr, coll.BcastBinomial, g, AlphaBetaConfig{Procs: 99}); err == nil {
		t.Fatal("too many procs should fail")
	}
	if _, err := AlphaBeta(pr, coll.BcastBinomial, g, AlphaBetaConfig{Sizes: []int{8192}}); err == nil {
		t.Fatal("single size should fail")
	}
	if _, err := AlphaBeta(pr, coll.BcastBinomial, g, AlphaBetaConfig{GatherBytes: -1}); err == nil {
		t.Fatal("negative gather size should fail")
	}
}

func TestAlphaBetaProducesUsableParameters(t *testing.T) {
	pr := smallProfile(t, 24)
	gr, err := Gamma(pr, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	cfg := AlphaBetaConfig{
		Procs:    12,
		Sizes:    []int{8192, 32768, 131072, 524288, 1 << 20},
		Settings: fastSettings(),
	}
	res, err := AlphaBeta(pr, coll.BcastBinomial, gr.Gamma, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.Alpha < 0 || res.Params.Beta <= 0 {
		t.Fatalf("params = %+v", res.Params)
	}
	if len(res.Equations) != len(cfg.Sizes) {
		t.Fatalf("recorded %d equations, want %d", len(res.Equations), len(cfg.Sizes))
	}
	for _, eq := range res.Equations {
		if eq.A <= 0 || eq.B <= 0 || eq.T <= 0 {
			t.Fatalf("degenerate equation %+v", eq)
		}
	}

	// The fitted model must predict the measured broadcast time at an
	// *unseen* message size to reasonable accuracy — this is the whole
	// point of the estimation procedure. (Tolerance is loose: the model is
	// a closed form over a contended network.)
	const unseen = 262144
	pred := model.Predict(coll.BcastBinomial, cfg.Procs, unseen, pr.SegmentSize, res.Params, gr.Gamma)
	meas, err := experiment.MeasureBcast(pr, cfg.Procs, coll.BcastBinomial, unseen, pr.SegmentSize, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(pred-meas.Mean) / meas.Mean
	if relErr > 0.40 {
		t.Fatalf("prediction %v vs measured %v: relative error %.0f%%", pred, meas.Mean, relErr*100)
	}
}

func TestModelsFullPipeline(t *testing.T) {
	pr := smallProfile(t, 20)
	cfg := AlphaBetaConfig{
		Procs:    10,
		Sizes:    []int{8192, 65536, 262144, 1 << 20},
		Settings: fastSettings(),
	}
	bm, gr, err := Models(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Cluster != pr.Name || bm.SegSize != pr.SegmentSize {
		t.Fatalf("metadata wrong: %+v", bm)
	}
	if len(bm.Params) != len(coll.BcastAlgorithms()) {
		t.Fatalf("params for %d algorithms, want %d", len(bm.Params), len(coll.BcastAlgorithms()))
	}
	for _, alg := range coll.BcastAlgorithms() {
		v, err := bm.Predict(alg, 10, 1<<20)
		if err != nil || v <= 0 {
			t.Fatalf("%v: predict = %v, %v", alg, v, err)
		}
	}
	_ = gr

	// Model-based prediction accuracy per algorithm at a mid-grid size:
	// every algorithm's prediction should land within 50% of measurement
	// (the selection experiments in package selection check the sharper
	// property — that the *ranking* is right).
	for _, alg := range coll.BcastAlgorithms() {
		meas, err := experiment.MeasureBcast(pr, 10, alg, 131072, pr.SegmentSize, fastSettings())
		if err != nil {
			t.Fatal(err)
		}
		pred, _ := bm.Predict(alg, 10, 131072)
		relErr := math.Abs(pred-meas.Mean) / meas.Mean
		if relErr > 0.50 {
			t.Errorf("%v: prediction %v vs measured %v (%.0f%% off)", alg, pred, meas.Mean, relErr*100)
		}
	}
}

func TestAlphaBetaDeterministic(t *testing.T) {
	pr := smallProfile(t, 12)
	g := model.UnitGamma()
	cfg := AlphaBetaConfig{Procs: 6, Sizes: []int{8192, 65536, 262144}, Settings: fastSettings()}
	a, err := AlphaBeta(pr, coll.BcastChain, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AlphaBeta(pr, coll.BcastChain, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Params != b.Params {
		t.Fatalf("estimation not reproducible: %+v vs %+v", a.Params, b.Params)
	}
}

// TestModelsCombinedSweepMatchesComponents checks that Models — which
// submits the γ grid and every algorithm's α/β grid as one combined
// parallel sweep — produces exactly the parameters of running Gamma and
// AlphaBeta separately, i.e. that batching and concurrency change
// nothing about the estimation.
func TestModelsCombinedSweepMatchesComponents(t *testing.T) {
	pr := smallProfile(t, 12)
	cfg := AlphaBetaConfig{Procs: 6, Sizes: []int{8192, 65536, 262144}, Settings: fastSettings(), Workers: 8}

	bm, gr, err := Models(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	grAlone, err := Gamma(pr, cfg.Settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.T2) != len(grAlone.T2) {
		t.Fatalf("γ tables differ in size: %d vs %d", len(gr.T2), len(grAlone.T2))
	}
	for p, t2 := range grAlone.T2 {
		if gr.T2[p] != t2 {
			t.Errorf("T2(%d): combined %v, standalone %v", p, gr.T2[p], t2)
		}
	}

	for _, alg := range coll.BcastAlgorithms() {
		ab, err := AlphaBeta(pr, alg, grAlone.Gamma, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bm.Params[alg] != ab.Params {
			t.Errorf("%v: combined %+v, standalone %+v", alg, bm.Params[alg], ab.Params)
		}
	}
}

// TestModelsCtxCancellation checks the calibration sweep honours its
// context.
func TestModelsCtxCancellation(t *testing.T) {
	pr := smallProfile(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ModelsCtx(ctx, pr, AlphaBetaConfig{Procs: 6, Sizes: []int{8192, 65536}, Settings: fastSettings()}); err == nil {
		t.Fatal("cancelled calibration succeeded")
	}
}
