// Package estimate implements the paper's second contribution (§4): the
// estimation of analytical-model parameters from communication experiments
// that *contain the modelled collective algorithm itself*, instead of the
// traditional point-to-point ping-pongs.
//
// Two estimators are provided:
//
//   - Gamma (§4.1) measures T2(P), the mean time of the non-blocking
//     linear broadcast of one m_s-byte segment to P-1 children, for P from
//     2 to the platform's maximum linear fanout, and forms
//     γ(P) = T2(P)/T2(2). A linear regression over the table doubles as
//     the extrapolation for larger fanouts.
//
//   - AlphaBeta (§4.2, Fig. 4) runs, for M message sizes, a communication
//     experiment consisting of the modelled broadcast algorithm followed
//     by a linear-without-synchronisation gather, measured on the root.
//     With γ known, each experiment yields one linear equation
//     a_i·α + b_i·β = T_i whose coefficients come from the
//     implementation-derived model of the algorithm plus the gather model
//     (Formula 8). The system is brought to the canonical form
//     α + β·(b_i/a_i) = T_i/a_i and solved with the Huber regressor.
package estimate

import (
	"fmt"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/stats"
)

// GammaResult is the outcome of the γ(P) estimation.
type GammaResult struct {
	Gamma model.Gamma
	// T2 holds the measured mean linear-broadcast times per P.
	T2 map[int]float64
	// Measurements holds the full per-P measurement diagnostics.
	Measurements map[int]experiment.Measurement
}

// Gamma estimates γ(P) for P = 2..pr.MaxLinearFanout on the profile,
// broadcasting one segment of pr.SegmentSize bytes, following §4.1.
func Gamma(pr cluster.Profile, set experiment.Settings) (GammaResult, error) {
	maxP := pr.MaxLinearFanout
	if maxP > pr.Nodes {
		maxP = pr.Nodes
	}
	if maxP < 2 {
		return GammaResult{}, fmt.Errorf("estimate: platform %s too small for γ estimation", pr.Name)
	}
	res := GammaResult{
		T2:           make(map[int]float64, maxP-1),
		Measurements: make(map[int]experiment.Measurement, maxP-1),
	}
	for p := 2; p <= maxP; p++ {
		meas, err := experiment.MeasureLinearBcast(pr, p, pr.SegmentSize, set)
		if err != nil {
			return GammaResult{}, fmt.Errorf("estimate: γ at P=%d: %w", p, err)
		}
		res.T2[p] = meas.Mean
		res.Measurements[p] = meas
	}
	base := res.T2[2]
	if base <= 0 {
		return GammaResult{}, fmt.Errorf("estimate: non-positive T2(2) = %v", base)
	}
	table := make(map[int]float64, maxP-1)
	for p := 2; p <= maxP; p++ {
		g := res.T2[p] / base
		if g < 1 {
			g = 1 // measurement noise can nudge tiny ratios below 1
		}
		table[p] = g
	}
	gamma, err := model.NewGamma(table)
	if err != nil {
		return GammaResult{}, err
	}
	res.Gamma = gamma
	return res, nil
}

// AlphaBetaConfig parameterises the §4.2 experiments.
type AlphaBetaConfig struct {
	// Procs is the number of processes used in the experiments; the paper
	// uses about half the cluster on Grisou (40) and the full cluster on
	// Gros (124). Zero means half the platform (minimum 4).
	Procs int
	// Sizes are the broadcast message sizes; zero-length means the paper's
	// grid of 10 log-spaced sizes from 8 KB to 4 MB.
	Sizes []int
	// GatherBytes is m_g, the per-rank gather contribution; it must differ
	// from the segment size (the paper's m_g ≠ m_s) and should be small —
	// the paper designs the experiment so that "the total time ... would
	// be dominated by the time of [the algorithm's] execution", and a
	// large m_g lets the gather model's imperfections bleed into the
	// algorithm's fitted parameters. Zero means 256 bytes.
	GatherBytes int
	// Settings drive the adaptive measurements.
	Settings experiment.Settings
}

func (c AlphaBetaConfig) withDefaults(pr cluster.Profile) (AlphaBetaConfig, error) {
	if c.Procs == 0 {
		c.Procs = pr.Nodes / 2
		if c.Procs < 4 {
			c.Procs = min(4, pr.Nodes)
		}
	}
	if c.Procs < 2 || c.Procs > pr.Nodes {
		return c, fmt.Errorf("estimate: %d procs outside 2..%d on %s", c.Procs, pr.Nodes, pr.Name)
	}
	if len(c.Sizes) == 0 {
		c.Sizes = stats.LogSpaceBytes(8192, 4<<20, 10)
	}
	if len(c.Sizes) < 2 {
		return c, fmt.Errorf("estimate: need at least 2 message sizes")
	}
	if c.GatherBytes == 0 {
		c.GatherBytes = 256
	}
	if c.GatherBytes < 0 {
		return c, fmt.Errorf("estimate: negative gather size")
	}
	if c.GatherBytes == pr.SegmentSize {
		return c, fmt.Errorf("estimate: m_g must differ from the segment size %d (paper §4.2)", pr.SegmentSize)
	}
	return c, nil
}

// Equation is one row of the Fig. 4 system, kept for inspection.
type Equation struct {
	MsgBytes    int
	GatherBytes int
	// A and B are the α and β coefficients of the full experiment
	// (broadcast + gather).
	A, B float64
	// T is the measured experiment time.
	T float64
}

// AlphaBetaResult carries the fitted parameters and the system they came
// from.
type AlphaBetaResult struct {
	Params    model.Hockney
	Equations []Equation
	// Fit is the Huber regression over the canonical form.
	Fit stats.LinearFit
}

// AlphaBeta estimates the algorithm-specific Hockney parameters for alg on
// the profile, given the platform's γ.
func AlphaBeta(pr cluster.Profile, alg coll.BcastAlgorithm, g model.Gamma, cfg AlphaBetaConfig) (AlphaBetaResult, error) {
	cfg, err := cfg.withDefaults(pr)
	if err != nil {
		return AlphaBetaResult{}, err
	}
	res := AlphaBetaResult{Equations: make([]Equation, 0, len(cfg.Sizes))}
	xs := make([]float64, 0, len(cfg.Sizes))
	ys := make([]float64, 0, len(cfg.Sizes))
	for _, m := range cfg.Sizes {
		meas, err := experiment.MeasureBcastThenGather(pr, cfg.Procs, alg, m, pr.SegmentSize, cfg.GatherBytes, cfg.Settings)
		if err != nil {
			return AlphaBetaResult{}, fmt.Errorf("estimate: α/β for %v at m=%d: %w", alg, m, err)
		}
		ab, bb := model.Coefficients(alg, cfg.Procs, m, pr.SegmentSize, g)
		ag, bg := model.GatherLinearCoefficients(cfg.Procs, cfg.GatherBytes)
		eq := Equation{
			MsgBytes:    m,
			GatherBytes: cfg.GatherBytes,
			A:           ab + ag,
			B:           bb + bg,
			T:           meas.Mean,
		}
		if eq.A <= 0 {
			return AlphaBetaResult{}, fmt.Errorf("estimate: degenerate coefficient a=%v for %v at m=%d", eq.A, alg, m)
		}
		res.Equations = append(res.Equations, eq)
		// Canonical form: α + β·(B/A) = T/A.
		xs = append(xs, eq.B/eq.A)
		ys = append(ys, eq.T/eq.A)
	}
	// Huber regression on relative residuals: the experiment times span
	// three decades across the message grid, and relative weighting keeps
	// the small-message equations (which pin down α) from being drowned by
	// the large-message ones (which pin down β).
	fit, err := stats.RelativeHuberRegression(xs, ys)
	if err != nil {
		return AlphaBetaResult{}, err
	}
	res.Fit = fit
	res.Params = model.Hockney{Alpha: fit.Intercept, Beta: fit.Slope}
	// Timing experiments cannot produce negative costs; clamp tiny
	// negative intercepts that the regression may emit when α is far
	// below the resolution of the experiments (the paper's fitted α are
	// as small as 1e-13 s).
	if res.Params.Alpha < 0 {
		res.Params.Alpha = 0
	}
	if res.Params.Beta < 0 {
		res.Params.Beta = 0
	}
	return res, nil
}

// Models runs the full §4 pipeline for a platform: γ estimation followed
// by per-algorithm α/β estimation for every broadcast algorithm, producing
// the BcastModels used by the run-time selector.
func Models(pr cluster.Profile, cfg AlphaBetaConfig) (model.BcastModels, GammaResult, error) {
	gr, err := Gamma(pr, cfg.Settings)
	if err != nil {
		return model.BcastModels{}, GammaResult{}, err
	}
	bm := model.BcastModels{
		Cluster: pr.Name,
		SegSize: pr.SegmentSize,
		Gamma:   gr.Gamma,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney, len(coll.BcastAlgorithms())),
	}
	for _, alg := range coll.BcastAlgorithms() {
		ab, err := AlphaBeta(pr, alg, gr.Gamma, cfg)
		if err != nil {
			return model.BcastModels{}, GammaResult{}, err
		}
		bm.Params[alg] = ab.Params
	}
	return bm, gr, nil
}
