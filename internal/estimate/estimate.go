package estimate

import (
	"context"
	"fmt"
	"math"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/stats"
)

// GammaResult is the outcome of the γ(P) estimation.
type GammaResult struct {
	Gamma model.Gamma
	// T2 holds the measured mean linear-broadcast times per P.
	T2 map[int]float64
	// Measurements holds the full per-P measurement diagnostics.
	Measurements map[int]experiment.Measurement
}

// gammaMaxP returns the largest fanout the γ(P) experiments cover on the
// profile.
func gammaMaxP(pr cluster.Profile) (int, error) {
	maxP := pr.MaxLinearFanout
	if maxP > pr.Nodes {
		maxP = pr.Nodes
	}
	if maxP < 2 {
		return 0, fmt.Errorf("estimate: platform %s too small for γ estimation", pr.Name)
	}
	return maxP, nil
}

// gammaPoints builds the §4.1 grid: the non-blocking linear broadcast of
// one segment for P = 2..maxP.
func gammaPoints(pr cluster.Profile, maxP int) []experiment.Point {
	points := make([]experiment.Point, 0, maxP-1)
	for p := 2; p <= maxP; p++ {
		points = append(points, experiment.Point{
			Kind:     experiment.PointBcast,
			Alg:      coll.BcastLinear,
			Procs:    p,
			MsgBytes: pr.SegmentSize,
			SegSize:  0,
		})
	}
	return points
}

// Gamma estimates γ(P) for P = 2..pr.MaxLinearFanout on the profile,
// broadcasting one segment of pr.SegmentSize bytes, following §4.1. The
// per-P experiments are independent and run through a default-width
// sweep; results are identical to the serial loop.
func Gamma(pr cluster.Profile, set experiment.Settings) (GammaResult, error) {
	maxP, err := gammaMaxP(pr)
	if err != nil {
		return GammaResult{}, err
	}
	sw := experiment.Sweep{Profile: pr, Settings: set}
	res, err := sw.Run(context.Background(), gammaPoints(pr, maxP))
	if err != nil {
		return GammaResult{}, fmt.Errorf("estimate: γ: %w", err)
	}
	return gammaFromResults(maxP, res)
}

// gammaFromResults assembles a GammaResult from the measured §4.1 grid
// (res[i] is the P = i+2 experiment).
func gammaFromResults(maxP int, measured []experiment.Result) (GammaResult, error) {
	res := GammaResult{
		T2:           make(map[int]float64, maxP-1),
		Measurements: make(map[int]experiment.Measurement, maxP-1),
	}
	for i, r := range measured {
		p := i + 2
		res.T2[p] = r.Meas.Mean
		res.Measurements[p] = r.Meas
	}
	base := res.T2[2]
	if base <= 0 {
		return GammaResult{}, fmt.Errorf("estimate: non-positive T2(2) = %v", base)
	}
	table := make(map[int]float64, maxP-1)
	for p := 2; p <= maxP; p++ {
		g := res.T2[p] / base
		if g < 1 {
			g = 1 // measurement noise can nudge tiny ratios below 1
		}
		table[p] = g
	}
	gamma, err := model.NewGamma(table)
	if err != nil {
		return GammaResult{}, err
	}
	res.Gamma = gamma
	return res, nil
}

// AlphaBetaConfig parameterises the §4.2 experiments.
type AlphaBetaConfig struct {
	// Procs is the number of processes used in the experiments; the paper
	// uses about half the cluster on Grisou (40) and the full cluster on
	// Gros (124). Zero means half the platform (minimum 4).
	Procs int
	// Sizes are the broadcast message sizes; zero-length means the paper's
	// grid of 10 log-spaced sizes from 8 KB to 4 MB.
	Sizes []int
	// GatherBytes is m_g, the per-rank gather contribution; it must differ
	// from the segment size (the paper's m_g ≠ m_s) and should be small —
	// the paper designs the experiment so that "the total time ... would
	// be dominated by the time of [the algorithm's] execution", and a
	// large m_g lets the gather model's imperfections bleed into the
	// algorithm's fitted parameters. Zero means 256 bytes.
	GatherBytes int
	// Settings drive the adaptive measurements.
	Settings experiment.Settings
	// Workers bounds the measurement concurrency of the estimation
	// sweeps: 0 means runtime.GOMAXPROCS(0), 1 reproduces the serial
	// path. Concurrency never changes the results — every experiment
	// runs on its own simulator instance.
	Workers int
	// Cache, if non-nil, serves already-measured grid points (see
	// experiment.Cache); repeated calibrations of the same profile with
	// the same settings skip their measurements entirely.
	Cache *experiment.Cache
	// DisablePlanTemplates switches off the calibration sweep's
	// plan-template fast path (capture one execution plan per structure
	// class, rebind it goroutine-free for every other grid point); every
	// replay-eligible point then captures its own plan. Fitted parameters
	// are bit-identical either way; the switch exists for benchmarking
	// and debugging.
	DisablePlanTemplates bool
	// Progress, if non-nil, observes every completed measurement.
	Progress experiment.Progress
	// Metrics, if non-nil, receives the calibration sweep's counters plus
	// per-algorithm fit spans, Huber iteration counts, and residual norms
	// (see fitAlphaBeta). Purely observational: fitted parameters are
	// bit-identical with or without it.
	Metrics *obs.Registry
}

// sweep builds the measurement engine the config describes.
func (c AlphaBetaConfig) sweep(pr cluster.Profile) experiment.Sweep {
	return experiment.Sweep{
		Profile:          pr,
		Settings:         c.Settings,
		Workers:          c.Workers,
		Cache:            c.Cache,
		DisableTemplates: c.DisablePlanTemplates,
		Progress:         c.Progress,
		Metrics:          c.Metrics,
	}
}

func (c AlphaBetaConfig) withDefaults(pr cluster.Profile) (AlphaBetaConfig, error) {
	if c.Procs == 0 {
		c.Procs = pr.Nodes / 2
		if c.Procs < 4 {
			c.Procs = min(4, pr.Nodes)
		}
	}
	if c.Procs < 2 || c.Procs > pr.Nodes {
		return c, fmt.Errorf("estimate: %d procs outside 2..%d on %s", c.Procs, pr.Nodes, pr.Name)
	}
	if len(c.Sizes) == 0 {
		c.Sizes = stats.LogSpaceBytes(8192, 4<<20, 10)
	}
	if len(c.Sizes) < 2 {
		return c, fmt.Errorf("estimate: need at least 2 message sizes")
	}
	if c.GatherBytes == 0 {
		c.GatherBytes = 256
	}
	if c.GatherBytes < 0 {
		return c, fmt.Errorf("estimate: negative gather size")
	}
	if c.GatherBytes == pr.SegmentSize {
		return c, fmt.Errorf("estimate: m_g must differ from the segment size %d (paper §4.2)", pr.SegmentSize)
	}
	return c, nil
}

// Equation is one row of the Fig. 4 system, kept for inspection.
type Equation struct {
	MsgBytes    int
	GatherBytes int
	// A and B are the α and β coefficients of the full experiment
	// (broadcast + gather).
	A, B float64
	// T is the measured experiment time.
	T float64
}

// AlphaBetaResult carries the fitted parameters and the system they came
// from.
type AlphaBetaResult struct {
	Params    model.Hockney
	Equations []Equation
	// Fit is the Huber regression over the canonical form.
	Fit stats.LinearFit
}

// alphaBetaPoints builds the §4.2 grid for one algorithm: the modelled
// broadcast followed by the small gather, one point per message size.
func alphaBetaPoints(pr cluster.Profile, alg coll.BcastAlgorithm, cfg AlphaBetaConfig) []experiment.Point {
	points := make([]experiment.Point, 0, len(cfg.Sizes))
	for _, m := range cfg.Sizes {
		points = append(points, experiment.Point{
			Kind:        experiment.PointBcastThenGather,
			Alg:         alg,
			Procs:       cfg.Procs,
			MsgBytes:    m,
			SegSize:     pr.SegmentSize,
			GatherBytes: cfg.GatherBytes,
		})
	}
	return points
}

// AlphaBeta estimates the algorithm-specific Hockney parameters for alg on
// the profile, given the platform's γ. The per-size experiments are
// independent and fan out over cfg.Workers; results are identical to the
// serial loop.
func AlphaBeta(pr cluster.Profile, alg coll.BcastAlgorithm, g model.Gamma, cfg AlphaBetaConfig) (AlphaBetaResult, error) {
	cfg, err := cfg.withDefaults(pr)
	if err != nil {
		return AlphaBetaResult{}, err
	}
	measured, err := cfg.sweep(pr).Run(context.Background(), alphaBetaPoints(pr, alg, cfg))
	if err != nil {
		return AlphaBetaResult{}, fmt.Errorf("estimate: α/β for %v: %w", alg, err)
	}
	return fitAlphaBeta(pr, alg, g, cfg, measured)
}

// fitAlphaBeta solves the Fig. 4 system for one algorithm from its
// measured §4.2 grid (measured[i] is the cfg.Sizes[i] experiment).
func fitAlphaBeta(pr cluster.Profile, alg coll.BcastAlgorithm, g model.Gamma, cfg AlphaBetaConfig, measured []experiment.Result) (AlphaBetaResult, error) {
	sp := cfg.Metrics.Span(obs.Name("estimate_fit", "alg", alg.String()))
	defer sp.End()
	res := AlphaBetaResult{Equations: make([]Equation, 0, len(cfg.Sizes))}
	xs := make([]float64, 0, len(cfg.Sizes))
	ys := make([]float64, 0, len(cfg.Sizes))
	for i, m := range cfg.Sizes {
		ab, bb := model.Coefficients(alg, cfg.Procs, m, pr.SegmentSize, g)
		ag, bg := model.GatherLinearCoefficients(cfg.Procs, cfg.GatherBytes)
		eq := Equation{
			MsgBytes:    m,
			GatherBytes: cfg.GatherBytes,
			A:           ab + ag,
			B:           bb + bg,
			T:           measured[i].Meas.Mean,
		}
		if eq.A <= 0 {
			return AlphaBetaResult{}, fmt.Errorf("estimate: degenerate coefficient a=%v for %v at m=%d", eq.A, alg, m)
		}
		res.Equations = append(res.Equations, eq)
		// Canonical form: α + β·(B/A) = T/A.
		xs = append(xs, eq.B/eq.A)
		ys = append(ys, eq.T/eq.A)
	}
	// Huber regression on relative residuals: the experiment times span
	// three decades across the message grid, and relative weighting keeps
	// the small-message equations (which pin down α) from being drowned by
	// the large-message ones (which pin down β).
	fit, err := stats.RelativeHuberRegression(xs, ys)
	if err != nil {
		return AlphaBetaResult{}, err
	}
	res.Fit = fit
	if m := cfg.Metrics; m != nil {
		m.Gauge(obs.Name("estimate_fit_iterations", "alg", alg.String())).Set(float64(fit.Iterations))
		// Residual norm on the relative scale the regression minimised:
		// sqrt(mean((r_i / y_i)^2)) over the canonical-form equations.
		var ss float64
		for i, r := range fit.Residuals(xs, ys) {
			rel := r / ys[i]
			ss += rel * rel
		}
		m.Gauge(obs.Name("estimate_fit_residual_norm", "alg", alg.String())).Set(math.Sqrt(ss / float64(len(xs))))
	}
	res.Params = model.Hockney{Alpha: fit.Intercept, Beta: fit.Slope}
	// Timing experiments cannot produce negative costs; clamp tiny
	// negative intercepts that the regression may emit when α is far
	// below the resolution of the experiments (the paper's fitted α are
	// as small as 1e-13 s).
	if res.Params.Alpha < 0 {
		res.Params.Alpha = 0
	}
	if res.Params.Beta < 0 {
		res.Params.Beta = 0
	}
	return res, nil
}

// Models runs the full §4 pipeline for a platform: γ estimation followed
// by per-algorithm α/β estimation for every broadcast algorithm, producing
// the BcastModels used by the run-time selector.
//
// The whole calibration is dispatched as one sweep: the γ(P) experiments
// and every algorithm's per-size experiments are measurement-independent
// (γ only enters the coefficient computation after the fact), so all
// (maxP-1) + algorithms × sizes grid points fan out over cfg.Workers at
// once. Results are bit-identical to the serial pipeline.
func Models(pr cluster.Profile, cfg AlphaBetaConfig) (model.BcastModels, GammaResult, error) {
	return ModelsCtx(context.Background(), pr, cfg)
}

// ModelsCtx is Models with cancellation: a cancelled ctx stops the
// calibration sweep promptly.
func ModelsCtx(ctx context.Context, pr cluster.Profile, cfg AlphaBetaConfig) (model.BcastModels, GammaResult, error) {
	cfg, err := cfg.withDefaults(pr)
	if err != nil {
		return model.BcastModels{}, GammaResult{}, err
	}
	maxP, err := gammaMaxP(pr)
	if err != nil {
		return model.BcastModels{}, GammaResult{}, err
	}
	algs := coll.BcastAlgorithms()
	points := gammaPoints(pr, maxP)
	gammaN := len(points)
	for _, alg := range algs {
		points = append(points, alphaBetaPoints(pr, alg, cfg)...)
	}
	measured, err := cfg.sweep(pr).Run(ctx, points)
	if err != nil {
		return model.BcastModels{}, GammaResult{}, fmt.Errorf("estimate: calibration: %w", err)
	}
	gr, err := gammaFromResults(maxP, measured[:gammaN])
	if err != nil {
		return model.BcastModels{}, GammaResult{}, err
	}
	bm := model.BcastModels{
		Cluster: pr.Name,
		SegSize: pr.SegmentSize,
		Gamma:   gr.Gamma,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney, len(algs)),
	}
	for i, alg := range algs {
		ab, err := fitAlphaBeta(pr, alg, gr.Gamma, cfg, measured[gammaN+i*len(cfg.Sizes):gammaN+(i+1)*len(cfg.Sizes)])
		if err != nil {
			return model.BcastModels{}, GammaResult{}, err
		}
		bm.Params[alg] = ab.Params
	}
	return bm, gr, nil
}
