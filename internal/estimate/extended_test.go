package estimate

import (
	"math"
	"strings"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/mpi"
)

func TestAllSpecFamiliesComplete(t *testing.T) {
	fams := AllSpecFamilies()
	want := map[string]int{
		"allgather":      4,
		"allreduce":      3,
		"alltoall":       3,
		"reduce":         3,
		"gather":         3,
		"scatter":        2,
		"reduce_scatter": 3,
	}
	if len(fams) != len(want) {
		t.Fatalf("families = %d, want %d", len(fams), len(want))
	}
	for name, n := range want {
		specs := fams[name]
		if len(specs) != n {
			t.Errorf("%s: %d specs, want %d", name, len(specs), n)
		}
		for _, s := range specs {
			if !strings.HasPrefix(s.Name, name+"/") {
				t.Errorf("spec %q not under family %q", s.Name, name)
			}
			if s.Run == nil || s.Coefficients == nil {
				t.Errorf("spec %q incomplete", s.Name)
			}
		}
	}
}

// TestEverySpecRunsAndFits smoke-tests the generic estimation over every
// extended spec: the operation executes, the system is well-formed, and
// the fitted β is positive.
func TestEverySpecRunsAndFits(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	g := model.UnitGamma()
	cfg := AlphaBetaConfig{Procs: 8, Sizes: []int{2048, 16384, 131072}, Settings: fastSettings()}
	for name, specs := range AllSpecFamilies() {
		for _, spec := range specs {
			res, err := AlphaBetaCollective(pr, spec, g, cfg)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if res.Params.Beta <= 0 {
				t.Errorf("%s: β = %v", spec.Name, res.Params.Beta)
			}
			if len(res.Equations) != 3 {
				t.Errorf("%s: %d equations", spec.Name, len(res.Equations))
			}
			for _, eq := range res.Equations {
				if eq.A <= 0 || eq.T <= 0 {
					t.Errorf("%s: degenerate equation %+v", spec.Name, eq)
				}
			}
		}
		_ = name
	}
}

// TestSpecPredictionAccuracy checks that, for a representative spec of
// each family, the fitted model predicts a held-out size within tolerance.
func TestSpecPredictionAccuracy(t *testing.T) {
	pr, err := cluster.Grisou().WithNodes(16)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Gamma(pr, fastSettings())
	if err != nil {
		t.Fatal(err)
	}
	cfg := AlphaBetaConfig{Procs: 16, Sizes: []int{4096, 32768, 262144, 1 << 20}, Settings: fastSettings()}
	const held = 131072
	for _, spec := range []CollectiveSpec{
		AllgatherSpecs()[0],     // ring
		AllreduceSpecs()[2],     // ring
		AlltoallSpecs()[1],      // pairwise
		ReduceSpecs()[1],        // binomial
		GatherSpecs()[0],        // linear nosync
		ScatterSpecs()[1],       // binomial
		ReduceScatterSpecs()[0], // ring
	} {
		res, err := AlphaBetaCollective(pr, spec, gr.Gamma, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b := spec.Coefficients(16, held, pr.SegmentSize, gr.Gamma)
		pred := a*res.Params.Alpha + b*res.Params.Beta
		net, err := pr.Network()
		if err != nil {
			t.Fatal(err)
		}
		meas, err := experiment.Measure(net, 16, fastSettings(), experiment.Completion, func(p *mpi.Proc) {
			spec.Run(p, held, pr.SegmentSize)
		})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(pred/meas.Mean - 1)
		if rel > 0.35 {
			t.Errorf("%s: prediction %v vs measured %v (%.0f%% off)",
				spec.Name, pred, meas.Mean, rel*100)
		}
	}
}

func TestAlphaBetaCollectiveValidation(t *testing.T) {
	pr, _ := cluster.Grisou().WithNodes(8)
	g := model.UnitGamma()
	good := AllgatherSpecs()[0]
	if _, err := AlphaBetaCollective(pr, CollectiveSpec{Name: "nil"}, g,
		AlphaBetaConfig{Procs: 4, Sizes: []int{1024, 2048}, Settings: fastSettings()}); err == nil {
		t.Fatal("nil spec members should fail")
	}
	if _, err := AlphaBetaCollective(pr, good, g,
		AlphaBetaConfig{Procs: 999, Sizes: []int{1024, 2048}, Settings: fastSettings()}); err == nil {
		t.Fatal("bad procs should fail")
	}
	// Degenerate coefficients (P forced to 1 via spec) are rejected.
	degenerate := CollectiveSpec{
		Name:         "degenerate",
		Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) { return 0, 0 },
		Run:          good.Run,
	}
	if _, err := AlphaBetaCollective(pr, degenerate, g,
		AlphaBetaConfig{Procs: 4, Sizes: []int{1024, 2048}, Settings: fastSettings()}); err == nil {
		t.Fatal("zero coefficient should fail")
	}
}
