package estimate

import (
	"fmt"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/stats"
)

// CollectiveSpec generalises the paper's per-algorithm estimation beyond
// broadcast: any collective whose implementation-derived model is linear
// in (α, β) can be calibrated by measuring it over a size grid and solving
// the resulting system — the extension the paper's conclusion projects.
type CollectiveSpec struct {
	// Name identifies the (collective, algorithm) pair, e.g.
	// "allgather/ring".
	Name string
	// Coefficients returns the (a, b) of T = a·α + b·β for the operation
	// at the given process count and size parameter.
	Coefficients func(P, m, segSize int, g model.Gamma) (a, b float64)
	// Run executes one instance of the operation on every rank; m is the
	// same size parameter passed to Coefficients.
	Run func(p *mpi.Proc, m, segSize int)
}

// AlphaBetaCollective estimates the algorithm-specific Hockney parameters
// for an arbitrary collective, measuring complete executions (Completion
// mode: the operation involves every rank symmetrically, so there is no
// root-only finish to exploit) over the configured size grid.
func AlphaBetaCollective(pr cluster.Profile, spec CollectiveSpec, g model.Gamma, cfg AlphaBetaConfig) (AlphaBetaResult, error) {
	cfg, err := cfg.withDefaults(pr)
	if err != nil {
		return AlphaBetaResult{}, err
	}
	if spec.Coefficients == nil || spec.Run == nil {
		return AlphaBetaResult{}, fmt.Errorf("estimate: incomplete spec %q", spec.Name)
	}
	res := AlphaBetaResult{Equations: make([]Equation, 0, len(cfg.Sizes))}
	xs := make([]float64, 0, len(cfg.Sizes))
	ys := make([]float64, 0, len(cfg.Sizes))
	net, err := pr.Network()
	if err != nil {
		return AlphaBetaResult{}, err
	}
	for _, m := range cfg.Sizes {
		meas, err := experiment.Measure(net, cfg.Procs, cfg.Settings, experiment.Completion, func(p *mpi.Proc) {
			spec.Run(p, m, pr.SegmentSize)
		})
		if err != nil {
			return AlphaBetaResult{}, fmt.Errorf("estimate: %s at m=%d: %w", spec.Name, m, err)
		}
		a, b := spec.Coefficients(cfg.Procs, m, pr.SegmentSize, g)
		if a <= 0 {
			return AlphaBetaResult{}, fmt.Errorf("estimate: degenerate coefficient a=%v for %s at m=%d", a, spec.Name, m)
		}
		res.Equations = append(res.Equations, Equation{MsgBytes: m, A: a, B: b, T: meas.Mean})
		xs = append(xs, b/a)
		ys = append(ys, meas.Mean/a)
	}
	fit, err := stats.RelativeHuberRegression(xs, ys)
	if err != nil {
		return AlphaBetaResult{}, err
	}
	res.Fit = fit
	res.Params = model.Hockney{Alpha: fit.Intercept, Beta: fit.Slope}
	if res.Params.Alpha < 0 {
		res.Params.Alpha = 0
	}
	if res.Params.Beta < 0 {
		res.Params.Beta = 0
	}
	return res, nil
}

// AllgatherSpecs returns estimation specs for every allgather algorithm;
// the size parameter m is the per-rank block size.
func AllgatherSpecs() []CollectiveSpec {
	specs := make([]CollectiveSpec, 0, len(coll.AllgatherAlgorithms()))
	for _, alg := range coll.AllgatherAlgorithms() {
		alg := alg
		specs = append(specs, CollectiveSpec{
			Name: "allgather/" + alg.String(),
			Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) {
				return model.AllgatherCoefficients(alg, P, m, segSize, g)
			},
			Run: func(p *mpi.Proc, m, segSize int) {
				coll.Allgather(p, alg, coll.Synthetic(m*p.Size()), m)
			},
		})
	}
	return specs
}

// AllreduceSpecs returns estimation specs for every allreduce algorithm;
// the size parameter m is the vector length in bytes.
func AllreduceSpecs() []CollectiveSpec {
	specs := make([]CollectiveSpec, 0, len(coll.AllreduceAlgorithms()))
	for _, alg := range coll.AllreduceAlgorithms() {
		alg := alg
		specs = append(specs, CollectiveSpec{
			Name: "allreduce/" + alg.String(),
			Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) {
				return model.AllreduceCoefficients(alg, P, m, segSize, g)
			},
			Run: func(p *mpi.Proc, m, segSize int) {
				coll.Allreduce(p, alg, coll.Synthetic(m), nil, segSize)
			},
		})
	}
	return specs
}

// ReduceSpecs returns estimation specs for every reduce algorithm; the
// size parameter m is the vector length in bytes.
func ReduceSpecs() []CollectiveSpec {
	specs := make([]CollectiveSpec, 0, len(coll.ReduceAlgorithms()))
	for _, alg := range coll.ReduceAlgorithms() {
		alg := alg
		specs = append(specs, CollectiveSpec{
			Name: "reduce/" + alg.String(),
			Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) {
				return model.ReduceCoefficients(alg, P, m, segSize, g)
			},
			Run: func(p *mpi.Proc, m, segSize int) {
				coll.Reduce(p, alg, 0, coll.Synthetic(m), nil, segSize)
			},
		})
	}
	return specs
}

// GatherSpecs returns estimation specs for every gather algorithm; the
// size parameter m is the per-rank block size.
func GatherSpecs() []CollectiveSpec {
	specs := make([]CollectiveSpec, 0, len(coll.GatherAlgorithms()))
	for _, alg := range coll.GatherAlgorithms() {
		alg := alg
		specs = append(specs, CollectiveSpec{
			Name: "gather/" + alg.String(),
			Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) {
				return model.GatherCoefficients(alg, P, m, g)
			},
			Run: func(p *mpi.Proc, m, segSize int) {
				if p.Rank() == 0 {
					coll.Gather(p, alg, 0, coll.Synthetic(m*p.Size()), m)
				} else {
					coll.Gather(p, alg, 0, coll.Synthetic(m), m)
				}
			},
		})
	}
	return specs
}

// ScatterSpecs returns estimation specs for every scatter algorithm; the
// size parameter m is the per-rank block size.
func ScatterSpecs() []CollectiveSpec {
	specs := make([]CollectiveSpec, 0, len(coll.ScatterAlgorithms()))
	for _, alg := range coll.ScatterAlgorithms() {
		alg := alg
		specs = append(specs, CollectiveSpec{
			Name: "scatter/" + alg.String(),
			Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) {
				return model.ScatterCoefficients(alg, P, m, g)
			},
			Run: func(p *mpi.Proc, m, segSize int) {
				if p.Rank() == 0 {
					coll.Scatter(p, alg, 0, coll.Synthetic(m*p.Size()), m)
				} else {
					coll.Scatter(p, alg, 0, coll.Synthetic(m), m)
				}
			},
		})
	}
	return specs
}

// ReduceScatterSpecs returns estimation specs for every reduce-scatter
// algorithm; the size parameter m is the per-rank block size.
func ReduceScatterSpecs() []CollectiveSpec {
	specs := make([]CollectiveSpec, 0, len(coll.ReduceScatterAlgorithms()))
	for _, alg := range coll.ReduceScatterAlgorithms() {
		alg := alg
		specs = append(specs, CollectiveSpec{
			Name: "reduce_scatter/" + alg.String(),
			Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) {
				return model.ReduceScatterCoefficients(alg, P, m, segSize, g)
			},
			Run: func(p *mpi.Proc, m, segSize int) {
				coll.ReduceScatter(p, alg, coll.Synthetic(m*p.Size()), nil, m)
			},
		})
	}
	return specs
}

// AllSpecFamilies returns every extended collective family, keyed by name.
func AllSpecFamilies() map[string][]CollectiveSpec {
	return map[string][]CollectiveSpec{
		"allgather":      AllgatherSpecs(),
		"allreduce":      AllreduceSpecs(),
		"alltoall":       AlltoallSpecs(),
		"reduce":         ReduceSpecs(),
		"gather":         GatherSpecs(),
		"scatter":        ScatterSpecs(),
		"reduce_scatter": ReduceScatterSpecs(),
	}
}

// AlltoallSpecs returns estimation specs for every alltoall algorithm; the
// size parameter m is the per-pair block size.
func AlltoallSpecs() []CollectiveSpec {
	specs := make([]CollectiveSpec, 0, len(coll.AlltoallAlgorithms()))
	for _, alg := range coll.AlltoallAlgorithms() {
		alg := alg
		specs = append(specs, CollectiveSpec{
			Name: "alltoall/" + alg.String(),
			Coefficients: func(P, m, segSize int, g model.Gamma) (float64, float64) {
				return model.AlltoallCoefficients(alg, P, m, g)
			},
			Run: func(p *mpi.Proc, m, segSize int) {
				n := m * p.Size()
				coll.Alltoall(p, alg, coll.Synthetic(n), coll.Synthetic(n), m)
			},
		})
	}
	return specs
}
