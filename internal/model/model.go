// Package model implements the paper's first contribution: analytical
// performance models of the Open MPI broadcast algorithms *derived from
// the code that implements them* (package coll), rather than from textbook
// definitions.
//
// Every model is linear in the Hockney parameters: the predicted time of
// algorithm A for (P, m) is
//
//	T_A(P, m) = a_A(P, m, n_s, γ)·α_A + b_A(P, m, n_s, γ)·β_A,
//
// where the coefficients a and b encode the stage structure of the
// implementation (number of pipelined stages, which stages are non-blocking
// linear broadcasts and therefore carry a γ(P') factor, the split-binary
// half exchange, ...). Writing models this way serves both halves of the
// paper: prediction (Predict multiplies coefficients by fitted α, β) and
// estimation (package estimate uses the same coefficients to build the
// canonical linear system of Fig. 4 whose unknowns are α and β).
//
// γ(P') is the slowdown of a non-blocking linear broadcast to P'-1
// children relative to a single point-to-point transfer (Formula 3); it is
// a platform property estimated once per cluster (§4.1) and shared by all
// algorithm models.
package model

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"mpicollperf/internal/coll"
	"mpicollperf/internal/stats"
)

// Gamma is the estimated γ(P) function: a table for the small P range the
// segmented algorithms need (2..maxLinearFanout), plus a linear fit used
// to extrapolate beyond the table — the regression alternative the paper
// describes for large platforms. γ(2) = 1 by definition.
type Gamma struct {
	// Table maps P to γ(P) for the measured range.
	Table map[int]float64
	// Fit is the linear approximation γ(P) ≈ Intercept + Slope·P used
	// outside the table.
	Fit stats.LinearFit
}

// UnitGamma returns the degenerate γ ≡ 1, which turns the
// implementation-derived models back into their textbook shapes — used by
// the ablation experiments.
func UnitGamma() Gamma {
	return Gamma{Table: map[int]float64{2: 1}, Fit: stats.LinearFit{Intercept: 1}}
}

// NewGamma builds a Gamma from a measured table, fitting the linear
// extrapolation by least squares over the table points.
func NewGamma(table map[int]float64) (Gamma, error) {
	if len(table) == 0 {
		return Gamma{}, fmt.Errorf("model: empty gamma table")
	}
	ps := make([]int, 0, len(table))
	for p, g := range table {
		if p < 2 {
			return Gamma{}, fmt.Errorf("model: gamma table key %d < 2", p)
		}
		if g < 1 {
			return Gamma{}, fmt.Errorf("model: γ(%d) = %v < 1 (a linear broadcast cannot beat a point-to-point)", p, g)
		}
		ps = append(ps, p)
	}
	sort.Ints(ps)
	g := Gamma{Table: make(map[int]float64, len(table))}
	xs := make([]float64, 0, len(table))
	ys := make([]float64, 0, len(table))
	for _, p := range ps {
		g.Table[p] = table[p]
		xs = append(xs, float64(p))
		ys = append(ys, table[p])
	}
	if len(xs) >= 2 {
		fit, err := stats.OLS(xs, ys)
		if err != nil {
			return Gamma{}, err
		}
		g.Fit = fit
	} else {
		g.Fit = stats.LinearFit{Intercept: ys[0]}
	}
	return g, nil
}

// At returns γ(P), from the table when available and from the linear fit
// otherwise. Values below 1 are clamped to 1 (γ is a slowdown).
func (g Gamma) At(p int) float64 {
	if p <= 2 {
		return 1
	}
	if v, ok := g.Table[p]; ok {
		return v
	}
	v := g.Fit.Predict(float64(p))
	if v < 1 {
		return 1
	}
	return v
}

// Hockney are per-algorithm Hockney parameters. Unlike the traditional
// approach, each collective algorithm gets its own α and β (the paper's
// second contribution): the average cost of a point-to-point transfer
// depends on the communication context the algorithm creates.
type Hockney struct {
	Alpha float64
	Beta  float64
}

// Coefficients returns (a, b) with T = a·α + b·β for one execution of the
// broadcast algorithm on P processes, message size m, segment size
// segSize, under the γ function g.
//
// The derivation follows the paper's methodology — read the implementation
// (package coll), not the textbook definition — applied to our substrate.
// Every segmented algorithm decomposes into a *fill* phase (the first
// segment descends the tree, paying the full per-hop transfer time
// α + m_s·β at each of D hops) and a *steady state* (once the pipeline is
// full, one segment completes per emission period of the busiest node; the
// period is bandwidth-bound, m_s·β weighted by the γ factor of that node's
// non-blocking fan-out, with no latency term — latency is hidden by
// pipelining, which is exactly what the textbook models miss):
//
//	T = D·(α + m_s·β) + (n_s - 1)·W·m_s·β
//
//	alg          D (fill hops)        W (steady-state weight)
//	chain        P-1                  1          (one child per node)
//	k_chain      ceil((P-1)/K)        γ(K+1)     (root feeds K heads)
//	binary       floor(log2 P)        γ(3)       (two children per node)
//	binomial     floor(log2 P)        γ(⌈log2 P⌉+1)  (root is busiest)
//
// The linear algorithm is not segmented: it *is* the non-blocking linear
// broadcast, T = γ(P)·(α + m·β) (paper Formula 2). Split-binary pipelines
// ceil(n_s/2) segments down each half-tree of depth H-1 and then exchanges
// the halves pairwise, with one extra m/2 relay hop when the array-embedded
// subtrees are unequal:
//
//	T = (H-1)·(α + m_s·β) + (ceil(n_s/2) - 1)·γ(3)·m_s·β + x·(α + (m/2)·β)
//
// with x ∈ {1, 2}. The paper's own binomial model (its Formula 6) is kept
// in PaperBinomialCoefficients for comparison; on a substrate where the
// per-hop latency is not negligible relative to m_s·β, the fill/steady
// split predicts the implementation markedly better (see the ablation
// benchmarks).
func Coefficients(alg coll.BcastAlgorithm, P, m, segSize int, g Gamma) (a, b float64) {
	if P <= 1 || m < 0 {
		return 0, 0
	}
	ns := float64(coll.NumSegments(m, segSize))
	ms := float64(m) / ns
	fill := func(d, w float64) (float64, float64) {
		return d, d*ms + (ns-1)*w*ms
	}
	switch alg {
	case coll.BcastLinear:
		c := g.At(P)
		return c, c * float64(m)
	case coll.BcastChain:
		return fill(float64(P-1), 1)
	case coll.BcastKChain:
		k := coll.DefaultKChainFanout
		if k > P-1 {
			k = P - 1
		}
		l := float64((P - 2 + k) / k) // ceil((P-1)/K)
		return fill(l, g.At(k+1))
	case coll.BcastBinary:
		h := float64(bits.Len(uint(P)) - 1)
		return fill(math.Max(h, 1), g.At(3))
	case coll.BcastSplitBinary:
		if P < 3 || ns < 2 {
			// The implementation falls back to the plain binary tree.
			return Coefficients(coll.BcastBinary, P, m, segSize, g)
		}
		h := float64(bits.Len(uint(P)) - 1)
		d := math.Max(h-1, 1)
		x := 1.0
		if splitBinaryHasSurplus(P) {
			x = 2
		}
		a = d + x
		b = d*ms + (math.Ceil(ns/2)-1)*g.At(3)*ms + x*float64(m)/2
		return a, b
	case coll.BcastBinomial:
		h := bits.Len(uint(P - 1)) // ceil(log2 P) for P >= 2
		d := float64(bits.Len(uint(P)) - 1)
		return fill(math.Max(d, 1), g.At(h+1))
	}
	panic(fmt.Errorf("model: unknown algorithm %v", alg))
}

// PaperBinomialCoefficients is the paper's Formula 6 for the binomial tree
// broadcast, in (a, b) form:
//
//	T = (n_s·γ(⌈log2 P⌉+1) + Σ_{i=1}^{⌊log2 P⌋-1} γ(⌈log2 P⌉-i+1) - 1)
//	    ·(α + (m/n_s)·β).
//
// It treats every stage — fill and steady state alike — as a non-blocking
// linear broadcast costing a γ-weighted full point-to-point time. On the
// paper's clusters the fitted α is ≈ 0, making the two formulations agree;
// the ablation benches quantify the difference on this substrate.
func PaperBinomialCoefficients(P, m, segSize int, g Gamma) (a, b float64) {
	if P <= 1 || m < 0 {
		return 0, 0
	}
	ns := float64(coll.NumSegments(m, segSize))
	ms := float64(m) / ns
	hi := bits.Len(uint(P - 1)) // ceil(log2 P)
	lo := bits.Len(uint(P)) - 1 // floor(log2 P)
	c := ns * g.At(hi+1)
	for i := 1; i <= lo-1; i++ {
		c += g.At(hi - i + 1)
	}
	c -= 1
	if c < 1 {
		c = 1
	}
	return c, c * ms
}

// splitBinaryHasSurplus reports whether the array-embedded binary tree over
// P ranks has unequal subtrees, in which case the split-binary exchange
// needs the extra relay hop (see coll.planSplitBinary).
func splitBinaryHasSurplus(P int) bool {
	n := P - 1 // non-root nodes, vranks 1..P-1
	return subtreeSize(1, n) != subtreeSize(2, n)
}

// subtreeSize counts the descendants of vrank v (inclusive) in the array
// embedding over vranks 1..n, where v's children are 2v+1 and 2v+2. The
// subtree's level d spans a contiguous vrank range, so the count walks
// level ranges instead of recursing — this sits on the run-time selection
// hot path (split-binary coefficients), which must not allocate.
func subtreeSize(v, n int) int {
	size := 0
	for lo, hi := v, v; lo <= n; lo, hi = 2*lo+1, 2*hi+2 {
		if hi > n {
			hi = n
		}
		size += hi - lo + 1
	}
	return size
}

// Predict returns the modelled execution time of the algorithm for the
// given per-algorithm Hockney parameters.
func Predict(alg coll.BcastAlgorithm, P, m, segSize int, par Hockney, g Gamma) float64 {
	a, b := Coefficients(alg, P, m, segSize, g)
	return a*par.Alpha + b*par.Beta
}

// GatherLinearCoefficients returns (a, b) for the linear-without-
// synchronisation gather of mg bytes per rank onto the root, derived from
// the implementation (coll.GatherLinearNoSync): all P-1 contributions are
// posted concurrently, so their latencies overlap (one α) while the
// payloads serialise on the root's inbound port ((P-1)·m_g·β):
//
//	T = α + (P-1)·m_g·β.
//
// The paper's Formula 8 instead charges a full α per contribution; it is
// kept in PaperGatherCoefficients. On the paper's clusters the fitted α is
// ≈ 0, making the two indistinguishable there, but charging (P-1)·α on a
// substrate with non-negligible latency would bias the §4.2 system and
// drag every algorithm's fitted α toward zero.
func GatherLinearCoefficients(P, mg int) (a, b float64) {
	if P <= 1 {
		return 0, 0
	}
	return 1, float64(P-1) * float64(mg)
}

// PaperGatherCoefficients is the paper's Formula 8 for the linear gather:
// T = (P-1)·(α + m_g·β).
func PaperGatherCoefficients(P, mg int) (a, b float64) {
	if P <= 1 {
		return 0, 0
	}
	c := float64(P - 1)
	return c, c * float64(mg)
}

// BcastModels bundles everything needed to predict any broadcast
// algorithm's time on a platform: the shared γ and per-algorithm α/β.
type BcastModels struct {
	// Cluster names the platform the parameters were estimated on.
	Cluster string
	// SegSize is the segment size m_s the models assume (8 KB in the
	// paper).
	SegSize int
	// Gamma is the platform's γ(P).
	Gamma Gamma
	// Params maps each algorithm to its fitted Hockney parameters.
	Params map[coll.BcastAlgorithm]Hockney
}

// Predict returns the modelled time of alg broadcasting m bytes on P
// processes, or an error if the algorithm has no fitted parameters.
func (bm BcastModels) Predict(alg coll.BcastAlgorithm, P, m int) (float64, error) {
	par, ok := bm.Params[alg]
	if !ok {
		return 0, fmt.Errorf("model: no parameters for %v on %s", alg, bm.Cluster)
	}
	return Predict(alg, P, m, bm.SegSize, par, bm.Gamma), nil
}
