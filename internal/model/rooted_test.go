package model

import (
	"testing"

	"mpicollperf/internal/coll"
)

func TestReduceCoefficientsHandComputed(t *testing.T) {
	g := testGamma()
	// Linear: one latency, P-1 vectors through the root.
	a, b := ReduceCoefficients(coll.ReduceLinear, 9, 1000, 8192, g)
	if a != 1 || b != 8000 {
		t.Fatalf("linear (a,b) = (%v,%v)", a, b)
	}
	// Binomial at P=8: 3 rounds of full vectors.
	a, b = ReduceCoefficients(coll.ReduceBinomial, 8, 1000, 8192, g)
	if a != 3 || b != 3000 {
		t.Fatalf("binomial (a,b) = (%v,%v)", a, b)
	}
	// Binomial at P=2 clamps the height to 1.
	a, _ = ReduceCoefficients(coll.ReduceBinomial, 2, 1000, 8192, g)
	if a != 1 {
		t.Fatalf("P=2 binomial a = %v", a)
	}
	// Pipeline: (P-1) fill hops + (n_s-1) steady segments.
	a, b = ReduceCoefficients(coll.ReducePipeline, 5, 4*8192, 8192, g)
	if a != 4 || b != 4*8192+3*8192 {
		t.Fatalf("pipeline (a,b) = (%v,%v)", a, b)
	}
	// Degenerate.
	if a, b := ReduceCoefficients(coll.ReduceLinear, 1, 10, 8192, g); a != 0 || b != 0 {
		t.Fatal("P=1 should be free")
	}
}

func TestGatherCoefficientsHandComputed(t *testing.T) {
	g := testGamma()
	a, b := GatherCoefficients(coll.GatherLinearNoSync, 40, 4096, g)
	if a != 1 || b != 39*4096 {
		t.Fatalf("nosync (a,b) = (%v,%v)", a, b)
	}
	a, b = GatherCoefficients(coll.GatherLinearSync, 40, 4096, g)
	if a != 78 || b != 39*4096 {
		t.Fatalf("sync (a,b) = (%v,%v)", a, b)
	}
	a, b = GatherCoefficients(coll.GatherBinomial, 8, 4096, g)
	if a != 3 || b != 7*4096 {
		t.Fatalf("binomial (a,b) = (%v,%v)", a, b)
	}
	if a, b := GatherCoefficients(coll.GatherBinomial, 1, 10, g); a != 0 || b != 0 {
		t.Fatal("P=1 should be free")
	}
}

func TestScatterCoefficientsHandComputed(t *testing.T) {
	g := testGamma()
	a, b := ScatterCoefficients(coll.ScatterLinear, 10, 500, g)
	if a != 1 || b != 9*500 {
		t.Fatalf("linear (a,b) = (%v,%v)", a, b)
	}
	a, b = ScatterCoefficients(coll.ScatterBinomial, 16, 500, g)
	if a != 4 || b != 15*500 {
		t.Fatalf("binomial (a,b) = (%v,%v)", a, b)
	}
	if a, b := ScatterCoefficients(coll.ScatterLinear, 1, 10, g); a != 0 || b != 0 {
		t.Fatal("P=1 should be free")
	}
}

func TestReduceScatterCoefficientsHandComputed(t *testing.T) {
	g := testGamma()
	// Ring: P rounds (P-1 combines + ownership hop), P blocks moved.
	a, b := ReduceScatterCoefficients(coll.ReduceScatterRing, 8, 1000, 8192, g)
	if a != 8 || b != 8000 {
		t.Fatalf("ring (a,b) = (%v,%v)", a, b)
	}
	// Halving at P=8: 3 rounds, 7 blocks.
	a, b = ReduceScatterCoefficients(coll.ReduceScatterHalving, 8, 1000, 8192, g)
	if a != 3 || b != 7000 {
		t.Fatalf("halving (a,b) = (%v,%v)", a, b)
	}
	// Non-power halving falls back to the ring shape.
	a, b = ReduceScatterCoefficients(coll.ReduceScatterHalving, 6, 1000, 8192, g)
	ra, rb := ReduceScatterCoefficients(coll.ReduceScatterRing, 6, 1000, 8192, g)
	if a != ra || b != rb {
		t.Fatal("halving fallback mismatch")
	}
	// Composition includes the reduce and scatter pieces.
	a, _ = ReduceScatterCoefficients(coll.ReduceScatterReduceThenScatter, 8, 1000, 8192, g)
	r, _ := ReduceCoefficients(coll.ReduceBinomial, 8, 8000, 8192, g)
	s, _ := ScatterCoefficients(coll.ScatterBinomial, 8, 1000, g)
	if a != r+s {
		t.Fatalf("composed a = %v, want %v", a, r+s)
	}
	if a, b := ReduceScatterCoefficients(coll.ReduceScatterRing, 1, 10, 8192, g); a != 0 || b != 0 {
		t.Fatal("P=1 should be free")
	}
}
