package model

import (
	"math"
	"testing"
	"testing/quick"

	"mpicollperf/internal/coll"
)

func testGamma() Gamma {
	g, err := NewGamma(map[int]float64{
		2: 1, 3: 1.11, 4: 1.22, 5: 1.33, 6: 1.43, 7: 1.54,
	})
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewGammaValidation(t *testing.T) {
	if _, err := NewGamma(nil); err == nil {
		t.Fatal("empty table should fail")
	}
	if _, err := NewGamma(map[int]float64{1: 1}); err == nil {
		t.Fatal("P < 2 should fail")
	}
	if _, err := NewGamma(map[int]float64{3: 0.8}); err == nil {
		t.Fatal("γ < 1 should fail")
	}
	g, err := NewGamma(map[int]float64{4: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(4) != 1.5 {
		t.Fatal("single-entry table lookup")
	}
}

func TestGammaAt(t *testing.T) {
	g := testGamma()
	if g.At(2) != 1 || g.At(1) != 1 || g.At(0) != 1 {
		t.Fatal("γ(P<=2) must be 1")
	}
	if g.At(5) != 1.33 {
		t.Fatalf("table lookup = %v", g.At(5))
	}
	// Extrapolation beyond the table follows the near-linear trend.
	g20 := g.At(20)
	if g20 <= g.At(7) {
		t.Fatalf("extrapolated γ(20) = %v not above table end", g20)
	}
	// The table is nearly linear with slope ~0.105/process.
	want := 1 + 0.105*float64(20-2)
	if math.Abs(g20-want) > 0.35 {
		t.Fatalf("γ(20) = %v, expected near %v", g20, want)
	}
}

func TestUnitGamma(t *testing.T) {
	g := UnitGamma()
	for _, p := range []int{2, 3, 10, 100} {
		if g.At(p) != 1 {
			t.Fatalf("UnitGamma(%d) = %v", p, g.At(p))
		}
	}
}

func TestGammaClampsBelowOne(t *testing.T) {
	// A decreasing fit cannot drive extrapolated γ below 1.
	g, err := NewGamma(map[int]float64{2: 1.5, 3: 1.2, 4: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(50) < 1 {
		t.Fatalf("γ(50) = %v < 1", g.At(50))
	}
}

func TestLinearModelMatchesDefinition(t *testing.T) {
	g := testGamma()
	a, b := Coefficients(coll.BcastLinear, 7, 1<<20, 8192, g)
	if a != g.At(7) {
		t.Fatalf("a = %v, want γ(7)", a)
	}
	if b != g.At(7)*float64(1<<20) {
		t.Fatalf("b = %v", b)
	}
}

func TestChainModelFillAndSteadyState(t *testing.T) {
	// T = (P-1)(α + m_s β) + (n_s-1) m_s β:
	// P=10, m=64KB, seg=8KB → n_s=8 → a=9, b=9·8192 + 7·8192.
	g := testGamma()
	a, b := Coefficients(coll.BcastChain, 10, 65536, 8192, g)
	if a != 9 {
		t.Fatalf("a = %v, want 9 fill hops", a)
	}
	if b != 9*8192+7*8192 {
		t.Fatalf("b = %v, want %v", b, 9*8192+7*8192)
	}
}

func TestBinomialModelHandComputed(t *testing.T) {
	// P=8: fill depth floor(log2 8)=3, root fanout ceil(log2 8)=3 → γ(4).
	g := testGamma()
	const m, seg = 4 * 8192, 8192 // n_s = 4
	a, b := Coefficients(coll.BcastBinomial, 8, m, seg, g)
	if a != 3 {
		t.Fatalf("a = %v, want 3", a)
	}
	wantB := 3*8192.0 + 3*g.At(4)*8192
	if math.Abs(b-wantB) > 1e-9 {
		t.Fatalf("b = %v, want %v", b, wantB)
	}
}

func TestPaperBinomialFormula6HandComputed(t *testing.T) {
	// P=8: ceil(log2 P)=3, floor(log2 P)=3.
	// c = n_s·γ(4) + γ(3) + γ(2) - 1 (the sum runs i=1..2).
	g := testGamma()
	const m, seg = 4 * 8192, 8192 // n_s = 4
	a, b := PaperBinomialCoefficients(8, m, seg, g)
	want := 4*g.At(4) + g.At(3) + g.At(2) - 1
	if math.Abs(a-want) > 1e-12 {
		t.Fatalf("a = %v, want %v", a, want)
	}
	if math.Abs(b-want*8192) > 1e-9 {
		t.Fatalf("b = %v", b)
	}
	if a0, b0 := PaperBinomialCoefficients(1, m, seg, g); a0 != 0 || b0 != 0 {
		t.Fatal("P=1 should cost 0")
	}
}

func TestKChainUsesGammaOfFanoutPlusOne(t *testing.T) {
	g := testGamma()
	// P=13, K=4 → chains of ceil(12/4)=3 → fill depth 3, weight γ(5).
	const m, seg = 2 * 8192, 8192 // n_s = 2
	a, b := Coefficients(coll.BcastKChain, 13, m, seg, g)
	if a != 3 {
		t.Fatalf("a = %v, want 3", a)
	}
	wantB := 3*8192.0 + 1*g.At(5)*8192
	if math.Abs(b-wantB) > 1e-9 {
		t.Fatalf("b = %v, want %v", b, wantB)
	}
	// Tiny communicators clamp K to P-1.
	a2, _ := Coefficients(coll.BcastKChain, 3, m, seg, g)
	if a2 != 1 {
		t.Fatalf("P=3: a = %v, want 1 (chains of length 1)", a2)
	}
}

func TestSplitBinaryFallsBackForTinyInputs(t *testing.T) {
	g := testGamma()
	// P=2: must equal the binary model.
	a1, b1 := Coefficients(coll.BcastSplitBinary, 2, 65536, 8192, g)
	a2, b2 := Coefficients(coll.BcastBinary, 2, 65536, 8192, g)
	if a1 != a2 || b1 != b2 {
		t.Fatal("split-binary should fall back to binary for P=2")
	}
	// Single segment: same fallback.
	a3, b3 := Coefficients(coll.BcastSplitBinary, 16, 100, 8192, g)
	a4, b4 := Coefficients(coll.BcastBinary, 16, 100, 8192, g)
	if a3 != a4 || b3 != b4 {
		t.Fatal("split-binary should fall back to binary for one segment")
	}
}

func TestSplitBinaryExchangeTerm(t *testing.T) {
	g := testGamma()
	// The b coefficient must include the m/2 exchange: compare split vs a
	// hypothetical without it by checking b grows at least m/2 faster than
	// the pipelined part alone.
	const P, seg = 16, 8192
	m := 64 * 8192
	a, b := Coefficients(coll.BcastSplitBinary, P, m, seg, g)
	if a <= 0 || b <= 0 {
		t.Fatal("non-positive coefficients")
	}
	if b < float64(m)/2 {
		t.Fatalf("b = %v misses the m/2 exchange term", b)
	}
}

func TestPredictLinearInParams(t *testing.T) {
	g := testGamma()
	par := Hockney{Alpha: 3e-6, Beta: 2e-9}
	for _, alg := range coll.BcastAlgorithms() {
		t1 := Predict(alg, 24, 1<<20, 8192, par, g)
		t2 := Predict(alg, 24, 1<<20, 8192, Hockney{Alpha: 2 * par.Alpha, Beta: 2 * par.Beta}, g)
		if math.Abs(t2-2*t1) > 1e-12*t1 {
			t.Fatalf("%v: prediction not linear in (α, β)", alg)
		}
	}
}

func TestGatherLinearCoefficients(t *testing.T) {
	// Implementation-derived: one latency, P-1 serialised payloads.
	a, b := GatherLinearCoefficients(40, 4096)
	if a != 1 || b != 39*4096 {
		t.Fatalf("(a,b) = (%v,%v)", a, b)
	}
	a0, b0 := GatherLinearCoefficients(1, 4096)
	if a0 != 0 || b0 != 0 {
		t.Fatal("single-rank gather should be free")
	}
	// The paper's Formula 8 charges a full α per contribution.
	pa, pb := PaperGatherCoefficients(40, 4096)
	if pa != 39 || pb != 39*4096 {
		t.Fatalf("formula 8 (a,b) = (%v,%v)", pa, pb)
	}
	if pa0, pb0 := PaperGatherCoefficients(1, 4096); pa0 != 0 || pb0 != 0 {
		t.Fatal("single-rank paper gather should be free")
	}
}

func TestBcastModelsPredict(t *testing.T) {
	bm := BcastModels{
		Cluster: "test",
		SegSize: 8192,
		Gamma:   testGamma(),
		Params: map[coll.BcastAlgorithm]Hockney{
			coll.BcastBinomial: {Alpha: 40e-6, Beta: 1.6e-9},
		},
	}
	v, err := bm.Predict(coll.BcastBinomial, 50, 1<<20)
	if err != nil || v <= 0 {
		t.Fatalf("Predict = %v, %v", v, err)
	}
	if _, err := bm.Predict(coll.BcastChain, 50, 1<<20); err == nil {
		t.Fatal("missing params should error")
	}
}

// Property: all coefficients are non-negative and non-decreasing in the
// message size for every algorithm and any (P, segSize).
func TestCoefficientsMonotoneProperty(t *testing.T) {
	g := testGamma()
	f := func(algRaw, pRaw uint8, mRaw uint16) bool {
		alg := coll.BcastAlgorithm(int(algRaw) % 6)
		P := int(pRaw%126) + 2
		m := int(mRaw) * 64
		const seg = 8192
		a1, b1 := Coefficients(alg, P, m, seg, g)
		a2, b2 := Coefficients(alg, P, m+8192, seg, g)
		if a1 < 0 || b1 < 0 {
			return false
		}
		return b2 >= b1 && a2 >= 0 && (a1 > 0 || m == 0 || P < 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions scale up with P for the serialised linear
// algorithm (its γ grows), and the chain model grows linearly in P.
func TestModelGrowthWithP(t *testing.T) {
	g := testGamma()
	par := Hockney{Alpha: 40e-6, Beta: 1.6e-9}
	for p := 3; p <= 120; p++ {
		tPrev := Predict(coll.BcastChain, p-1, 1<<20, 8192, par, g)
		tCur := Predict(coll.BcastChain, p, 1<<20, 8192, par, g)
		if tCur < tPrev {
			t.Fatalf("chain prediction decreased at P=%d", p)
		}
	}
	if Predict(coll.BcastLinear, 90, 1<<20, 8192, par, g) <=
		Predict(coll.BcastLinear, 10, 1<<20, 8192, par, g) {
		t.Fatal("linear prediction should grow with P")
	}
}

func TestDegenerateInputs(t *testing.T) {
	g := testGamma()
	for _, alg := range coll.BcastAlgorithms() {
		if a, b := Coefficients(alg, 1, 100, 8192, g); a != 0 || b != 0 {
			t.Fatalf("%v: single process should cost nothing", alg)
		}
		if a, b := Coefficients(alg, 8, -1, 8192, g); a != 0 || b != 0 {
			t.Fatalf("%v: negative size should cost nothing", alg)
		}
	}
}

func TestSplitBinarySurplusDetection(t *testing.T) {
	// P=4: non-root {1,2,3}; left subtree {1,3}, right {2} → surplus.
	if !splitBinaryHasSurplus(4) {
		t.Fatal("P=4 has unequal subtrees")
	}
	// P=3: {1} vs {2} → balanced.
	if splitBinaryHasSurplus(3) {
		t.Fatal("P=3 is balanced")
	}
	// P=7: full tree, {1,3,4} vs {2,5,6} → balanced.
	if splitBinaryHasSurplus(7) {
		t.Fatal("P=7 is balanced")
	}
	if !splitBinaryHasSurplus(90) {
		t.Fatal("P=90 (paper's Grisou scale) has unequal subtrees")
	}
}

// TestSubtreeSizeMatchesRecursion pins the level-walking subtree count
// against the straightforward recursive definition over every P the
// selectors can see, so the allocation-free form cannot drift.
func TestSubtreeSizeMatchesRecursion(t *testing.T) {
	var recurse func(v, n int) int
	recurse = func(v, n int) int {
		if v > n {
			return 0
		}
		return 1 + recurse(2*v+1, n) + recurse(2*v+2, n)
	}
	for n := 0; n <= 300; n++ {
		for _, v := range []int{1, 2} {
			if got, want := subtreeSize(v, n), recurse(v, n); got != want {
				t.Fatalf("subtreeSize(%d, %d) = %d, want %d", v, n, got, want)
			}
		}
	}
}
