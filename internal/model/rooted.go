package model

import (
	"fmt"
	"math/bits"

	"mpicollperf/internal/coll"
)

// Implementation-derived models for the rooted collectives (reduce,
// gather, scatter) and reduce-scatter, same discipline as extended.go.

// ReduceCoefficients models the reduce algorithms for an n-byte vector.
//
//	linear:    the root receives P-1 full vectors back to back (they
//	           serialise on its inbound port): T = α + (P-1)·n·β.
//	binomial:  height rounds; on the critical path each round receives one
//	           full vector: T = H·(α + n·β).
//	pipeline:  a chain of P-1 hops streaming n_s segments:
//	           T = (P-1)·(α + m_s·β) + (n_s-1)·m_s·β (the broadcast chain's
//	           mirror image).
func ReduceCoefficients(alg coll.ReduceAlgorithm, P, n, segSize int, g Gamma) (a, b float64) {
	if P <= 1 || n < 0 {
		return 0, 0
	}
	fn := float64(n)
	switch alg {
	case coll.ReduceLinear:
		return 1, float64(P-1) * fn
	case coll.ReduceBinomial:
		h := float64(bits.Len(uint(P)) - 1)
		if h < 1 {
			h = 1
		}
		return h, h * fn
	case coll.ReducePipeline:
		ns := float64(coll.NumSegments(n, segSize))
		ms := fn / ns
		d := float64(P - 1)
		return d, d*ms + (ns-1)*ms
	}
	panic(fmt.Errorf("model: unknown reduce algorithm %v", alg))
}

// GatherCoefficients models the gather algorithms for per-rank blocks of
// m bytes.
//
//	linear_nosync: one latency, P-1 blocks through the root's inbound
//	               port: T = α + (P-1)·m·β (GatherLinearCoefficients).
//	linear_sync:   the root polls each rank with a zero-byte token before
//	               its block — a round trip per rank:
//	               T = 2(P-1)·α + (P-1)·m·β.
//	binomial:      height rounds; the root's port carries (P-1)·m in
//	               halving chunks; the last and largest chunk is P/2·m:
//	               T = H·α + (P-1)·m·β.
func GatherCoefficients(alg coll.GatherAlgorithm, P, m int, g Gamma) (a, b float64) {
	if P <= 1 || m < 0 {
		return 0, 0
	}
	fm := float64(m)
	switch alg {
	case coll.GatherLinearNoSync:
		return GatherLinearCoefficients(P, m)
	case coll.GatherLinearSync:
		c := float64(P - 1)
		return 2 * c, c * fm
	case coll.GatherBinomial:
		h := float64(bits.Len(uint(P)) - 1)
		if h < 1 {
			h = 1
		}
		return h, float64(P-1) * fm
	}
	panic(fmt.Errorf("model: unknown gather algorithm %v", alg))
}

// ScatterCoefficients models the scatter algorithms (mirror images of the
// gathers).
func ScatterCoefficients(alg coll.ScatterAlgorithm, P, m int, g Gamma) (a, b float64) {
	if P <= 1 || m < 0 {
		return 0, 0
	}
	fm := float64(m)
	switch alg {
	case coll.ScatterLinear:
		return 1, float64(P-1) * fm
	case coll.ScatterBinomial:
		h := float64(bits.Len(uint(P)) - 1)
		if h < 1 {
			h = 1
		}
		return h, float64(P-1) * fm
	}
	panic(fmt.Errorf("model: unknown scatter algorithm %v", alg))
}

// ReduceScatterCoefficients models the reduce-scatter algorithms for
// per-rank blocks of m bytes (vectors of P·m).
//
//	ring:              P-1 combine steps plus the ownership hop, one block
//	                   each way per step: T = P·α + P·m·β.
//	recursive_halving: log2 P rounds, round k moving P·m/2^(k+1):
//	                   T = log2 P·α + (P-1)·m·β.
//	reduce_scatter:    binomial reduce of the P·m vector plus a binomial
//	                   scatter.
func ReduceScatterCoefficients(alg coll.ReduceScatterAlgorithm, P, m, segSize int, g Gamma) (a, b float64) {
	if P <= 1 || m < 0 {
		return 0, 0
	}
	fm := float64(m)
	switch alg {
	case coll.ReduceScatterRing:
		return float64(P), float64(P) * fm
	case coll.ReduceScatterHalving:
		if P&(P-1) != 0 {
			return ReduceScatterCoefficients(coll.ReduceScatterRing, P, m, segSize, g)
		}
		rounds := float64(bits.Len(uint(P - 1)))
		return rounds, float64(P-1) * fm
	case coll.ReduceScatterReduceThenScatter:
		ra, rb := ReduceCoefficients(coll.ReduceBinomial, P, P*m, segSize, g)
		sa, sb := ScatterCoefficients(coll.ScatterBinomial, P, m, g)
		return ra + sa, rb + sb
	}
	panic(fmt.Errorf("model: unknown reduce-scatter algorithm %v", alg))
}
