package model

import (
	"fmt"
	"math/bits"

	"mpicollperf/internal/coll"
)

// This file extends the paper's implementation-derived modelling approach
// to the other collectives implemented in package coll — the direction the
// paper's conclusion names as future work. Every model follows the same
// discipline as the broadcast models: read the implementation, decompose
// into rounds, charge α per round on the critical path and β per byte that
// crosses the bottleneck port, and return (a, b) with T = a·α + b·β so the
// same estimation machinery (package estimate) fits per-algorithm
// parameters.

// AllgatherCoefficients models the allgather algorithms. m is the
// per-rank block size.
//
//	ring:                P-1 rounds, one block each way per round:
//	                     T = (P-1)·α + (P-1)·m·β.
//	recursive_doubling:  log2 P rounds exchanging doubling ranges; total
//	                     received bytes (P-1)·m:
//	                     T = ceil(log2 P)·α + (P-1)·m·β.
//	bruck:               same round/byte structure as recursive doubling
//	                     for any P.
//	gather_bcast:        binomial gather up (height hops, (P-1)·m bytes
//	                     through the root) plus a binomial broadcast of
//	                     the P·m result.
func AllgatherCoefficients(alg coll.AllgatherAlgorithm, P, m, segSize int, g Gamma) (a, b float64) {
	if P <= 1 || m < 0 {
		return 0, 0
	}
	fm := float64(m)
	switch alg {
	case coll.AllgatherRing:
		c := float64(P - 1)
		return c, c * fm
	case coll.AllgatherRecursiveDoubling:
		if P&(P-1) != 0 {
			// The implementation falls back to the ring.
			return AllgatherCoefficients(coll.AllgatherRing, P, m, segSize, g)
		}
		rounds := float64(bits.Len(uint(P - 1)))
		return rounds, float64(P-1) * fm
	case coll.AllgatherBruck:
		rounds := float64(bits.Len(uint(P - 1)))
		return rounds, float64(P-1) * fm
	case coll.AllgatherGatherBcast:
		h := float64(bits.Len(uint(P)) - 1)
		ga, gb := h, float64(P-1)*fm
		ba, bb := Coefficients(coll.BcastBinomial, P, P*m, segSize, g)
		return ga + ba, gb + bb
	}
	panic(fmt.Errorf("model: unknown allgather algorithm %v", alg))
}

// AllreduceCoefficients models the allreduce algorithms for an n-byte
// vector.
//
//	reduce_bcast:        binomial reduce (height rounds, full vector per
//	                     round on the critical path) plus binomial
//	                     broadcast.
//	recursive_doubling:  log2 P rounds of full-vector exchange:
//	                     T = log2 P·(α + n·β); ring fallback shape for
//	                     non-powers via reduce_bcast (as implemented).
//	ring:                2(P-1) rounds of n/P-byte chunks:
//	                     T = 2(P-1)·α + 2·n·β·(P-1)/P.
func AllreduceCoefficients(alg coll.AllreduceAlgorithm, P, n, segSize int, g Gamma) (a, b float64) {
	if P <= 1 || n < 0 {
		return 0, 0
	}
	fn := float64(n)
	switch alg {
	case coll.AllreduceReduceBcast:
		h := float64(bits.Len(uint(P)) - 1)
		ra, rb := h, h*fn
		ba, bb := Coefficients(coll.BcastBinomial, P, n, segSize, g)
		return ra + ba, rb + bb
	case coll.AllreduceRecursiveDoubling:
		if P&(P-1) != 0 {
			return AllreduceCoefficients(coll.AllreduceReduceBcast, P, n, segSize, g)
		}
		rounds := float64(bits.Len(uint(P - 1)))
		return rounds, rounds * fn
	case coll.AllreduceRing:
		c := 2 * float64(P-1)
		return c, 2 * fn * float64(P-1) / float64(P)
	}
	panic(fmt.Errorf("model: unknown allreduce algorithm %v", alg))
}

// AlltoallCoefficients models the all-to-all algorithms for per-pair block
// size m.
//
//	linear:    all P-1 sends and receives posted at once; latency once,
//	           (P-1)·m bytes serialise on each port:
//	           T = α + (P-1)·m·β.
//	pairwise:  P-1 synchronised exchange rounds:
//	           T = (P-1)·α + (P-1)·m·β.
//	bruck:     ceil(log2 P) rounds; round k ships every block whose slot
//	           index has bit k set, so the total shipped volume is
//	           Σ_k |slots_k| blocks (≈ (P/2)·log2 P):
//	           T = ceil(log2 P)·α + Σ_k |slots_k|·m·β.
func AlltoallCoefficients(alg coll.AlltoallAlgorithm, P, m int, g Gamma) (a, b float64) {
	if P <= 1 || m < 0 {
		return 0, 0
	}
	fm := float64(m)
	switch alg {
	case coll.AlltoallLinear:
		return 1, float64(P-1) * fm
	case coll.AlltoallPairwise:
		c := float64(P - 1)
		return c, c * fm
	case coll.AlltoallBruck:
		rounds := 0
		shipped := 0
		for dist := 1; dist < P; dist <<= 1 {
			rounds++
			for i := 1; i < P; i++ {
				if i&dist != 0 {
					shipped++
				}
			}
		}
		return float64(rounds), float64(shipped) * fm
	}
	panic(fmt.Errorf("model: unknown alltoall algorithm %v", alg))
}
