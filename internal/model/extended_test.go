package model

import (
	"math"
	"testing"
	"testing/quick"

	"mpicollperf/internal/coll"
)

func TestAllgatherCoefficientsHandComputed(t *testing.T) {
	g := testGamma()
	// Ring at P=8, m=1000: 7 rounds, 7000 bytes.
	a, b := AllgatherCoefficients(coll.AllgatherRing, 8, 1000, 8192, g)
	if a != 7 || b != 7000 {
		t.Fatalf("ring (a,b) = (%v,%v)", a, b)
	}
	// Recursive doubling at P=8: 3 rounds, 7000 bytes.
	a, b = AllgatherCoefficients(coll.AllgatherRecursiveDoubling, 8, 1000, 8192, g)
	if a != 3 || b != 7000 {
		t.Fatalf("recdbl (a,b) = (%v,%v)", a, b)
	}
	// Non-power-of-two falls back to the ring shape.
	a, b = AllgatherCoefficients(coll.AllgatherRecursiveDoubling, 6, 1000, 8192, g)
	ra, rb := AllgatherCoefficients(coll.AllgatherRing, 6, 1000, 8192, g)
	if a != ra || b != rb {
		t.Fatal("non-power-of-two recdbl should match ring")
	}
	// Bruck at P=6: ceil(log2 6)=3 rounds, 5000 bytes.
	a, b = AllgatherCoefficients(coll.AllgatherBruck, 6, 1000, 8192, g)
	if a != 3 || b != 5000 {
		t.Fatalf("bruck (a,b) = (%v,%v)", a, b)
	}
	// gather_bcast includes the binomial broadcast of the whole buffer.
	a, _ = AllgatherCoefficients(coll.AllgatherGatherBcast, 8, 1000, 8192, g)
	ba, _ := Coefficients(coll.BcastBinomial, 8, 8000, 8192, g)
	if a != 3+ba {
		t.Fatalf("gather_bcast a = %v, want %v", a, 3+ba)
	}
}

func TestAllreduceCoefficientsHandComputed(t *testing.T) {
	g := testGamma()
	// Recursive doubling at P=16, n=4096: 4 rounds of full vectors.
	a, b := AllreduceCoefficients(coll.AllreduceRecursiveDoubling, 16, 4096, 8192, g)
	if a != 4 || b != 4*4096 {
		t.Fatalf("recdbl (a,b) = (%v,%v)", a, b)
	}
	// Ring at P=8, n=8000: 14 rounds, 2·8000·7/8 = 14000 bytes.
	a, b = AllreduceCoefficients(coll.AllreduceRing, 8, 8000, 8192, g)
	if a != 14 || math.Abs(b-14000) > 1e-9 {
		t.Fatalf("ring (a,b) = (%v,%v)", a, b)
	}
	// Non-power recursive doubling falls back to reduce_bcast.
	a, b = AllreduceCoefficients(coll.AllreduceRecursiveDoubling, 6, 4096, 8192, g)
	fa, fb := AllreduceCoefficients(coll.AllreduceReduceBcast, 6, 4096, 8192, g)
	if a != fa || b != fb {
		t.Fatal("fallback mismatch")
	}
}

func TestAlltoallCoefficientsHandComputed(t *testing.T) {
	g := testGamma()
	a, b := AlltoallCoefficients(coll.AlltoallLinear, 10, 500, g)
	if a != 1 || b != 9*500 {
		t.Fatalf("linear (a,b) = (%v,%v)", a, b)
	}
	a, b = AlltoallCoefficients(coll.AlltoallPairwise, 10, 500, g)
	if a != 9 || b != 9*500 {
		t.Fatalf("pairwise (a,b) = (%v,%v)", a, b)
	}
	// Bruck at P=4: rounds {1,2}; slots with bit0: {1,3}, bit1: {2,3} →
	// 4 blocks shipped over 2 rounds.
	a, b = AlltoallCoefficients(coll.AlltoallBruck, 4, 500, g)
	if a != 2 || b != 4*500 {
		t.Fatalf("bruck (a,b) = (%v,%v)", a, b)
	}
}

// Property: all extended coefficients are non-negative (and, for the
// unsegmented models whose coefficients are exactly linear in the size,
// monotone in it — the segmented ones may dip slightly at segment-count
// boundaries because the average segment size m/n_s shrinks there).
func TestExtendedCoefficientsProperty(t *testing.T) {
	g := testGamma()
	f := func(pRaw uint8, mRaw uint16, kind uint8) bool {
		P := int(pRaw%126) + 2
		m := int(mRaw)
		var a1, b1, a2, b2 float64
		monotone := true
		switch kind % 3 {
		case 0:
			alg := coll.AllgatherAlgorithm(int(kind/3) % 4)
			monotone = alg != coll.AllgatherGatherBcast // contains a segmented bcast
			a1, b1 = AllgatherCoefficients(alg, P, m, 8192, g)
			a2, b2 = AllgatherCoefficients(alg, P, m+100, 8192, g)
		case 1:
			alg := coll.AllreduceAlgorithm(int(kind/3) % 3)
			monotone = alg != coll.AllreduceReduceBcast &&
				!(alg == coll.AllreduceRecursiveDoubling && P&(P-1) != 0)
			a1, b1 = AllreduceCoefficients(alg, P, m, 8192, g)
			a2, b2 = AllreduceCoefficients(alg, P, m+100, 8192, g)
		default:
			alg := coll.AlltoallAlgorithm(int(kind/3) % 3)
			a1, b1 = AlltoallCoefficients(alg, P, m, g)
			a2, b2 = AlltoallCoefficients(alg, P, m+100, g)
		}
		if a1 < 0 || b1 < 0 || a2 < 0 || b2 < 0 {
			return false
		}
		if monotone && (b2 < b1 || a2 < a1-1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	for _, alg := range coll.AllgatherAlgorithms() {
		if a, b := AllgatherCoefficients(alg, 1, 100, 8192, g); a != 0 || b != 0 {
			t.Errorf("%v: P=1 should be free", alg)
		}
	}
	for _, alg := range coll.AllreduceAlgorithms() {
		if a, b := AllreduceCoefficients(alg, 1, 100, 8192, g); a != 0 || b != 0 {
			t.Errorf("%v: P=1 should be free", alg)
		}
	}
	for _, alg := range coll.AlltoallAlgorithms() {
		if a, b := AlltoallCoefficients(alg, 1, 100, g); a != 0 || b != 0 {
			t.Errorf("%v: P=1 should be free", alg)
		}
	}
}
