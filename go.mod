module mpicollperf

go 1.22
