# CI entry points for the reproduction. `make ci` is the gate: it vets,
# builds, runs the test suite twice (plain and -race), and enforces that
# every internal/* package carries a godoc package comment.

GO ?= go

.PHONY: ci vet build test race doccheck bench benchpaper benchsmoke

ci: vet build test race benchsmoke doccheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scheduler hot-path and sweep-engine benchmarks, recorded as
# BENCH_sched.json (benchmark name -> ns/op, B/op, allocs/op) so the
# numbers can be diffed mechanically across commits. The raw text goes
# through a temp file, not a pipe, so a benchmark failure fails the
# target.
bench:
	$(GO) test -bench=Scheduler -benchmem -run='^$$' ./internal/mpi/ > .bench_sched.txt
	$(GO) test -bench=Sweep -benchmem -run='^$$' ./internal/experiment/ >> .bench_sched.txt
	$(GO) run ./cmd/benchjson < .bench_sched.txt > BENCH_sched.json
	@rm -f .bench_sched.txt
	@echo "wrote BENCH_sched.json"

# The per-artifact paper benchmarks (tables and figures at reduced scale).
benchpaper:
	$(GO) test -bench=. -benchmem .

# One iteration of every scheduler/sweep benchmark: catches benchmarks
# that no longer compile or crash without paying for stable timings.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./internal/mpi/ ./internal/experiment/

# Every internal/* package must have a package comment: `go doc` prints
# the comment starting on line 3 (line 1 is the package clause, line 2 is
# blank) and package comments conventionally start with "Package <name>";
# when the comment is missing, line 3 is the first symbol summary instead.
doccheck:
	@fail=0; \
	for d in internal/*/; do \
		case "$$($(GO) doc ./$$d 2>/dev/null | sed -n 3p)" in \
			Package*) ;; \
			*) echo "doccheck: $$d has no package comment"; fail=1 ;; \
		esac; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "doccheck: all internal packages documented"
