# CI entry points for the reproduction. `make ci` is the gate: it vets,
# builds, runs the test suite twice (plain and -race), and enforces that
# every internal/* package carries a godoc package comment.

GO ?= go

.PHONY: ci vet build test race doccheck bench benchdiff benchpaper benchsmoke fuzzseed covercheck apicheck apiupdate guidelines servecheck

ci: vet build test race benchsmoke fuzzseed guidelines servecheck covercheck doccheck apicheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path and sweep-engine benchmarks, recorded twice: BENCH_sched.json
# forces the scheduler engine (SWEEP_ENGINE=scheduler) and covers the
# scheduler micro-benchmarks; BENCH_replay.json runs the same sweep
# benchmarks under the default auto engine (plan capture + replay) plus
# the replay micro-benchmarks. The sweep benchmark names are identical in
# both files, so `benchjson -baseline` can diff them directly. The same
# replay-engine sweep run also yields BENCH_sweepscale.json, the
# workers=1-relative scaling curve (`benchjson -scaling`; threshold -1 =
# record only, the gate lives in benchdiff). The raw text goes through a
# temp file, not a pipe, so a benchmark failure fails the target.
bench:
	$(GO) test -bench=Scheduler -benchmem -run='^$$' ./internal/mpi/ > .bench_sched.txt
	SWEEP_ENGINE=scheduler $(GO) test -bench=Sweep -benchmem -run='^$$' ./internal/experiment/ >> .bench_sched.txt
	$(GO) run ./cmd/benchjson < .bench_sched.txt > BENCH_sched.json
	@rm -f .bench_sched.txt
	$(GO) test -bench=Replay -benchmem -run='^$$' ./internal/mpi/ > .bench_replay.txt
	$(GO) test -bench=Sweep -benchmem -run='^$$' ./internal/experiment/ > .bench_sweep.txt
	cat .bench_sweep.txt >> .bench_replay.txt
	$(GO) run ./cmd/benchjson < .bench_replay.txt > BENCH_replay.json
	@rm -f .bench_replay.txt
	$(GO) run ./cmd/benchjson -scaling -scaling-out BENCH_sweepscale.json -threshold -1 < .bench_sweep.txt
	@rm -f .bench_sweep.txt
	$(GO) test -bench=PlanCache -benchmem -run='^$$' ./internal/experiment/ > .bench_plancache.txt
	$(GO) run ./cmd/benchjson < .bench_plancache.txt > BENCH_plancache.json
	@rm -f .bench_plancache.txt
	@echo "wrote BENCH_sched.json, BENCH_replay.json, BENCH_sweepscale.json and BENCH_plancache.json"

# Regression gate: re-run the sweep benchmarks and compare against a
# recorded baseline (default: the scheduler-engine record). Fails when
# any benchmark's ns/op regresses by more than 20%, and — via the
# -scaling pass over the same run — when the worker-scaling curve fails
# either bound:
#
#   * SCALING_THRESHOLD (anti-regression): no workers>1 line may be more
#     than 50% slower than its workers=1 sibling.
#   * SCALING_MIN_SPEEDUP (speedup requirement): every workers=N line
#     must reach min(SCALING_MIN_SPEEDUP, 0.8·min(N, cpus))× the
#     workers=1 speed, with cpus read from the benchmark name's
#     GOMAXPROCS suffix. On a multi-core box workers=8 must therefore be
#     ≥2.0× faster than workers=1; on a single-core box — where every
#     worker count runs the same clamped serial sweep — the requirement
#     degrades to the 0.8× anti-regression floor, because no amount of
#     scheduling can conjure parallel speedup out of one core.
#
# The plan-cache breakdown (scheduler vs capture vs rebind per point) is
# gated against its own record, so a rebind-path slowdown cannot hide
# inside the sweep aggregate.
BASELINE ?= BENCH_sched.json
PLANCACHE_BASELINE ?= BENCH_plancache.json
SCALING_THRESHOLD ?= 0.5
SCALING_MIN_SPEEDUP ?= 2.0
benchdiff:
	$(GO) test -bench=Sweep -benchmem -run='^$$' ./internal/experiment/ > .bench_diff.txt
	$(GO) run ./cmd/benchjson -baseline $(BASELINE) < .bench_diff.txt
	$(GO) run ./cmd/benchjson -scaling -threshold $(SCALING_THRESHOLD) -min-speedup $(SCALING_MIN_SPEEDUP) < .bench_diff.txt
	@rm -f .bench_diff.txt
	$(GO) test -bench=PlanCache -benchmem -run='^$$' ./internal/experiment/ > .bench_pc_diff.txt
	$(GO) run ./cmd/benchjson -baseline $(PLANCACHE_BASELINE) < .bench_pc_diff.txt
	@rm -f .bench_pc_diff.txt

# The per-artifact paper benchmarks (tables and figures at reduced scale).
benchpaper:
	$(GO) test -bench=. -benchmem .

# One iteration of every scheduler/replay/sweep benchmark: catches
# benchmarks that no longer compile or crash without paying for stable
# timings.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./internal/mpi/ ./internal/experiment/

# Run the fuzz targets over their seed corpus only (no fuzzing time):
# each f.Add seed must keep the replay and scheduler engines
# bit-identical (experiment) and both selectors total (selection).
fuzzseed:
	$(GO) test -run='^Fuzz' ./internal/experiment/ ./internal/selection/ ./internal/guideline/

# Performance-guideline smoke gate: verify the self-consistency registry
# on a reduced grid (one cluster, one random perturbation, small P × m
# grid). Zero violations tolerated — the command exits non-zero on any.
guidelines:
	$(GO) run ./cmd/mpicollperf verify-guidelines -quick -out ""

# Daemon smoke gate: boot mpicollperfd on an ephemeral port and drive a
# full client cycle — submit a calibration, poll to completion, query
# selections (broadcast + one extended family), cancel a full-scale job,
# and drain the daemon with SIGTERM. See scripts/servecheck.sh.
servecheck:
	GO="$(GO)" sh scripts/servecheck.sh

# Coverage regression gate: total statement coverage of internal/... must
# not drop below the recorded baseline (in percent, measured with a
# shuffled, uncached run when the gate was introduced).
COVER_BASELINE = 92.2
covercheck:
	$(GO) test -count=1 -shuffle=on -coverprofile=.cover.out ./internal/...
	@total=$$($(GO) tool cover -func=.cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover.out; \
	echo "covercheck: total internal coverage $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit (t+0 < b+0) ? 1 : 0 }' || \
		{ echo "covercheck: coverage dropped below baseline"; exit 1; }

# API surface gate: the facade's exported surface (everything `go doc
# -all` prints for the root package, declarations and doc comments) is
# recorded in api/mpicollperf.txt. apicheck fails when the surface drifts
# from the record, so facade changes show up as a reviewable diff; after
# an intentional change, regenerate the record with `make apiupdate`.
apicheck:
	@$(GO) doc -all . > .api_current.txt
	@if ! diff -u api/mpicollperf.txt .api_current.txt; then \
		rm -f .api_current.txt; \
		echo "apicheck: facade surface drifted from api/mpicollperf.txt; run 'make apiupdate' and review the diff"; \
		exit 1; \
	fi
	@rm -f .api_current.txt
	@echo "apicheck: facade surface matches api/mpicollperf.txt"

apiupdate:
	@mkdir -p api
	$(GO) doc -all . > api/mpicollperf.txt
	@echo "apiupdate: wrote api/mpicollperf.txt"

# Every internal/* package must have a package comment: `go doc` prints
# the comment starting on line 3 (line 1 is the package clause, line 2 is
# blank) and package comments conventionally start with "Package <name>";
# when the comment is missing, line 3 is the first symbol summary instead.
doccheck:
	@fail=0; \
	for d in internal/*/; do \
		case "$$($(GO) doc ./$$d 2>/dev/null | sed -n 3p)" in \
			Package*) ;; \
			*) echo "doccheck: $$d has no package comment"; fail=1 ;; \
		esac; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "doccheck: all internal packages documented"
