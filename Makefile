# CI entry points for the reproduction. `make ci` is the gate: it vets,
# builds, runs the test suite twice (plain and -race), and enforces that
# every internal/* package carries a godoc package comment.

GO ?= go

.PHONY: ci vet build test race doccheck bench

ci: vet build test race doccheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sweep-engine scaling and the per-artifact paper benchmarks.
bench:
	$(GO) test -bench=Sweep -benchmem ./internal/experiment/
	$(GO) test -bench=. -benchmem .

# Every internal/* package must have a package comment: `go doc` prints
# the comment starting on line 3 (line 1 is the package clause, line 2 is
# blank) and package comments conventionally start with "Package <name>";
# when the comment is missing, line 3 is the first symbol summary instead.
doccheck:
	@fail=0; \
	for d in internal/*/; do \
		case "$$($(GO) doc ./$$d 2>/dev/null | sed -n 3p)" in \
			Package*) ;; \
			*) echo "doccheck: $$d has no package comment"; fail=1 ;; \
		esac; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "doccheck: all internal packages documented"
