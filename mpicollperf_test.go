package mpicollperf

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// TestFacadeWorkflow exercises the whole public API surface the README
// advertises: build a platform, calibrate (options API), select, predict,
// persist, reload.
func TestFacadeWorkflow(t *testing.T) {
	profile, err := Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	set := MeasureSettings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
	sel, err := Calibrate(context.Background(), profile,
		WithProcs(6),
		WithSizes(8192, 65536, 524288),
		WithMeasureSettings(set),
	)
	if err != nil {
		t.Fatal(err)
	}

	choice, err := sel.Best(12, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if choice.SegSize != profile.SegmentSize {
		t.Fatalf("segment size = %d", choice.SegSize)
	}
	found := false
	for _, alg := range BcastAlgorithms() {
		if alg == choice.Alg {
			found = true
		}
	}
	if !found {
		t.Fatalf("choice %v not among the six algorithms", choice.Alg)
	}

	ompi := OpenMPIDecision(12, 1<<20)
	if ompi.Alg != BcastSplitBinary && ompi.Alg != BcastChain && ompi.Alg != BcastBinomial {
		t.Fatalf("open mpi decision %v outside its known range", ompi)
	}

	path := filepath.Join(t.TempDir(), "cal.json")
	if err := sel.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCalibration(profile, path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := loaded.Best(12, 1<<20)
	if err != nil || again != choice {
		t.Fatalf("reloaded selection %v/%v, want %v", again, err, choice)
	}
}

// testSettings are quick measurement settings shared by the facade tests.
var testSettings = MeasureSettings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}

// TestFacadeExtendedCollectives exercises the collective-generic surface:
// Collectives/CollectiveSpecs enumeration, CalibrateExtended, the
// Selector.BestFor bundle, and the daemon-facing sentinel errors.
func TestFacadeExtendedCollectives(t *testing.T) {
	fams := Collectives()
	if len(fams) < 7 {
		t.Fatalf("extended families = %v, want at least the seven paper collectives", fams)
	}
	if !sort.StringsAreSorted(fams) {
		t.Fatalf("Collectives() not sorted: %v", fams)
	}
	if _, err := CollectiveSpecs("no_such_collective"); err == nil {
		t.Fatal("unknown collective family must error")
	}

	profile, err := Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Calibrate(context.Background(), profile,
		WithProcs(6), WithSizes(8192, 524288), WithMeasureSettings(testSettings))
	if err != nil {
		t.Fatal(err)
	}

	// BestFor on the broadcast family agrees with Best.
	bc, err := sel.BestFor(OpBcast, 12, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	best, err := sel.Best(12, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if want := OpBcast + "/" + best.Alg.String(); bc.Algorithm != want {
		t.Fatalf("BestFor bcast = %q, Best = %q", bc.Algorithm, want)
	}

	// An uncalibrated extended family reports ErrNotCalibrated.
	if _, err := sel.BestFor("gather", 12, 1<<20); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("uncalibrated gather error = %v, want ErrNotCalibrated", err)
	}

	// CalibrateExtended fits a family standalone; its Best matches what
	// BestFor reports once the family is attached to the selector.
	specs, err := CollectiveSpecs("gather")
	if err != nil {
		t.Fatal(err)
	}
	cfg := CalibrationConfig{Procs: 6, Sizes: []int{8192, 524288}, Settings: testSettings}
	es, err := CalibrateExtended(profile, specs, sel.Models.Gamma, cfg)
	if err != nil {
		t.Fatal(err)
	}
	i, name := es.Best(12, 1<<20)
	if name == "" || es.Predict(i, 12, 1<<20) <= 0 {
		t.Fatalf("extended best = (%d, %q)", i, name)
	}
	if err := sel.CalibrateExtendedOp(context.Background(), "gather", cfg); err != nil {
		t.Fatal(err)
	}
	oc, err := sel.BestFor("gather", 12, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Algorithm != name {
		t.Fatalf("BestFor gather = %q, standalone CalibrateExtended best = %q", oc.Algorithm, name)
	}
	if oc.Predicted <= 0 {
		t.Fatalf("predicted time %v", oc.Predicted)
	}
}

// TestFacadeOptionsCompose checks that option order does not matter for
// the engine/settings interaction, that WithEngine is honoured (replay
// would fail loudly on a program it cannot replay), and that WithWorkers,
// WithCache, and WithMetrics thread through to the pipeline.
func TestFacadeOptionsCompose(t *testing.T) {
	profile, err := Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMeasurementCache()
	metrics := NewMetricsRegistry()
	base := []Option{WithProcs(6), WithSizes(8192, 524288), WithWorkers(2), WithCache(cache), WithMetrics(metrics)}
	a, err := Calibrate(context.Background(), profile,
		append([]Option{WithEngine(EngineScheduler), WithMeasureSettings(testSettings)}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed engine/settings order, warm cache: same models.
	b, err := Calibrate(context.Background(), profile,
		append([]Option{WithMeasureSettings(testSettings), WithEngine(EngineScheduler)}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Models, b.Models) {
		t.Fatal("option order changed the calibration")
	}
	if cache.Len() == 0 {
		t.Fatal("WithCache did not reach the sweep")
	}
	s := metrics.Snapshot()
	if len(s.Counters) == 0 {
		t.Fatal("WithMetrics did not reach the sweep")
	}
	// The second calibration was served from cache; the registry saw it.
	var cached int64
	for _, c := range s.Counters {
		if c.Name == "sweep_points_cached_total" {
			cached = c.Value
		}
	}
	if cached == 0 {
		t.Fatalf("expected cached points in %+v", s.Counters)
	}
}

// TestFacadePerturbationAndRobustness exercises the re-exported
// perturbation and robustness surfaces end to end on a tiny grid.
func TestFacadePerturbationAndRobustness(t *testing.T) {
	profile, err := Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	spec := RandomPerturbation(7, 0.5, profile.Net.NICs())
	if spec == nil || spec.Empty() {
		t.Fatal("random perturbation at intensity 0.5 should not be empty")
	}
	if _, err := ParsePerturbation("straggler:node=1,cpu=2.0;jitter:uniform"); err != nil {
		t.Fatalf("parse perturbation: %v", err)
	}
	perturbed := profile.Perturbed(spec)
	if perturbed.Name == profile.Name {
		t.Fatal("perturbed profile should be renamed")
	}

	sel, err := Calibrate(context.Background(), profile,
		WithProcs(6), WithSizes(8192, 524288), WithMeasureSettings(testSettings))
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetricsRegistry()
	rep, err := Robustness(context.Background(), profile, sel, RobustnessConfig{
		P:           6,
		Sizes:       []int{65536},
		Intensities: []float64{0, 0.5},
		Seed:        7,
		Settings:    MeasureSettings{MinReps: 2, MaxReps: 4},
		Metrics:     metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("robustness rows = %d, want 2", len(rep.Rows))
	}
	if rep.Render() == "" || rep.CSV() == "" {
		t.Fatal("empty robustness renderings")
	}
	var agreement int64
	for _, c := range metrics.Snapshot().Counters {
		if base := c.Name; len(base) > len("selection_choices_total") && base[:len("selection_choices_total")] == "selection_choices_total" {
			agreement += c.Value
		}
	}
	if agreement != 4 { // 2 selectors × 1 size × 2 intensities
		t.Fatalf("selection agreement tally = %d, want 4", agreement)
	}
}

// TestLoadCalibrationVersion pins the model-file versioning contract:
// current files carry version 1 and round-trip; files with any other
// version are rejected with *UnsupportedVersionError.
func TestLoadCalibrationVersion(t *testing.T) {
	profile, err := Grisou().WithNodes(8)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Calibrate(context.Background(), profile,
		WithProcs(4), WithSizes(8192, 524288), WithMeasureSettings(testSettings))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := sel.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["version"] != float64(1) {
		t.Fatalf("saved version = %v, want 1", doc["version"])
	}
	for _, v := range []any{float64(99), nil} {
		if v == nil {
			delete(doc, "version") // pre-versioning file
		} else {
			doc["version"] = v
		}
		tampered, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadCalibration(profile, path)
		var verr *UnsupportedVersionError
		if !errors.As(err, &verr) {
			t.Fatalf("version %v: error = %v, want UnsupportedVersionError", v, err)
		}
	}
}

func TestFacadePlatforms(t *testing.T) {
	if Grisou().Nodes != 90 || Gros().Nodes != 124 {
		t.Fatal("paper platform sizes")
	}
	custom, err := CustomCluster("lab", 8, 5e-6, 1e9)
	if err != nil || custom.Nodes != 8 {
		t.Fatalf("custom cluster: %v %v", custom, err)
	}
	if _, err := CustomCluster("bad", 8, 5e-6, -1); err == nil {
		t.Fatal("negative bandwidth should fail")
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	algs := BcastAlgorithms()
	if len(algs) != 6 {
		t.Fatalf("expected the paper's six algorithms, got %d", len(algs))
	}
	seen := map[BcastAlgorithm]bool{}
	for _, a := range []BcastAlgorithm{
		BcastLinear, BcastChain, BcastKChain, BcastBinary, BcastSplitBinary, BcastBinomial,
	} {
		if seen[a] {
			t.Fatalf("duplicate constant %v", a)
		}
		seen[a] = true
	}
	if DefaultMeasureSettings().Precision != 0.025 {
		t.Fatal("paper precision is 2.5%")
	}
}
