package mpicollperf

import (
	"path/filepath"
	"testing"
)

// TestFacadeWorkflow exercises the whole public API surface the README
// advertises: build a platform, calibrate, select, predict, persist,
// reload.
func TestFacadeWorkflow(t *testing.T) {
	profile, err := Grisou().WithNodes(12)
	if err != nil {
		t.Fatal(err)
	}
	set := MeasureSettings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
	sel, err := Calibrate(profile, CalibrationConfig{
		Procs:    6,
		Sizes:    []int{8192, 65536, 524288},
		Settings: set,
	})
	if err != nil {
		t.Fatal(err)
	}

	choice, err := sel.Best(12, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if choice.SegSize != profile.SegmentSize {
		t.Fatalf("segment size = %d", choice.SegSize)
	}
	found := false
	for _, alg := range BcastAlgorithms() {
		if alg == choice.Alg {
			found = true
		}
	}
	if !found {
		t.Fatalf("choice %v not among the six algorithms", choice.Alg)
	}

	ompi := OpenMPIDecision(12, 1<<20)
	if ompi.Alg != BcastSplitBinary && ompi.Alg != BcastChain && ompi.Alg != BcastBinomial {
		t.Fatalf("open mpi decision %v outside its known range", ompi)
	}

	path := filepath.Join(t.TempDir(), "cal.json")
	if err := sel.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCalibration(profile, path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := loaded.Best(12, 1<<20)
	if err != nil || again != choice {
		t.Fatalf("reloaded selection %v/%v, want %v", again, err, choice)
	}
}

func TestFacadePlatforms(t *testing.T) {
	if Grisou().Nodes != 90 || Gros().Nodes != 124 {
		t.Fatal("paper platform sizes")
	}
	custom, err := CustomCluster("lab", 8, 5e-6, 1e9)
	if err != nil || custom.Nodes != 8 {
		t.Fatalf("custom cluster: %v %v", custom, err)
	}
	if _, err := CustomCluster("bad", 8, 5e-6, -1); err == nil {
		t.Fatal("negative bandwidth should fail")
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	algs := BcastAlgorithms()
	if len(algs) != 6 {
		t.Fatalf("expected the paper's six algorithms, got %d", len(algs))
	}
	seen := map[BcastAlgorithm]bool{}
	for _, a := range []BcastAlgorithm{
		BcastLinear, BcastChain, BcastKChain, BcastBinary, BcastSplitBinary, BcastBinomial,
	} {
		if seen[a] {
			t.Fatalf("duplicate constant %v", a)
		}
		seen[a] = true
	}
	if DefaultMeasureSettings().Precision != 0.025 {
		t.Fatal("paper precision is 2.5%")
	}
}
