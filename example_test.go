package mpicollperf_test

import (
	"context"
	"fmt"
	"log"

	"mpicollperf"
)

// ExampleCalibrate calibrates the model-based selector on a scaled-down
// simulated platform with the functional-options API and asks it which
// broadcast algorithm to use for a 1 MB message over 12 ranks. The
// simulation is deterministic, so the selection is reproducible.
func ExampleCalibrate() {
	profile, err := mpicollperf.Grisou().WithNodes(12)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := mpicollperf.Calibrate(context.Background(), profile,
		mpicollperf.WithProcs(6),
		mpicollperf.WithSizes(8192, 65536, 524288),
		mpicollperf.WithMeasureSettings(mpicollperf.MeasureSettings{
			Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1,
		}),
		mpicollperf.WithWorkers(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	choice, err := sel.Best(12, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(choice.Alg)
	// Output: chain
}
